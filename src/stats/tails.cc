#include "stats/tails.h"

#include <cmath>

namespace multiclust {

double HoeffdingUpperTail(size_t n, double /*p*/, double t) {
  if (t < 0.0) return 1.0;
  return std::exp(-2.0 * static_cast<double>(n) * t * t);
}

double SchismThresholdFraction(size_t s, size_t xi, size_t n, double tau) {
  const double expected =
      std::pow(1.0 / static_cast<double>(xi), static_cast<double>(s));
  const double slack =
      std::sqrt(std::log(1.0 / tau) / (2.0 * static_cast<double>(n)));
  double frac = expected + slack;
  if (frac > 1.0) frac = 1.0;
  return frac;
}

double LogChoose(size_t n, size_t k) {
  if (k > n) return -INFINITY;
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double BinomialUpperTail(size_t n, size_t k, double p) {
  if (k == 0) return 1.0;
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  const double logp = std::log(p);
  const double log1mp = std::log1p(-p);
  // Sum P[X = i] for i in [k, n] in log space with running max subtraction.
  double max_log = -INFINITY;
  for (size_t i = k; i <= n; ++i) {
    const double lg = LogChoose(n, i) + static_cast<double>(i) * logp +
                      static_cast<double>(n - i) * log1mp;
    if (lg > max_log) max_log = lg;
  }
  if (!std::isfinite(max_log)) return 0.0;
  double sum = 0.0;
  for (size_t i = k; i <= n; ++i) {
    const double lg = LogChoose(n, i) + static_cast<double>(i) * logp +
                      static_cast<double>(n - i) * log1mp;
    sum += std::exp(lg - max_log);
  }
  double tail = std::exp(max_log) * sum;
  if (tail > 1.0) tail = 1.0;
  return tail;
}

}  // namespace multiclust
