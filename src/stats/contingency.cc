#include "stats/contingency.h"

#include <cmath>
#include <map>

namespace multiclust {

size_t DenseRelabel(const std::vector<int>& labels, std::vector<int>* out) {
  std::map<int, int> remap;
  out->resize(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] < 0) {
      (*out)[i] = -1;
      continue;
    }
    auto it = remap.find(labels[i]);
    if (it == remap.end()) {
      it = remap.emplace(labels[i], static_cast<int>(remap.size())).first;
    }
    (*out)[i] = it->second;
  }
  return remap.size();
}

Result<ContingencyTable> ContingencyTable::Build(const std::vector<int>& a,
                                                 const std::vector<int>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("ContingencyTable: size mismatch");
  }
  std::vector<int> da, db;
  const size_t ka = DenseRelabel(a, &da);
  const size_t kb = DenseRelabel(b, &db);

  ContingencyTable t;
  t.counts_.assign(ka, std::vector<size_t>(kb, 0));
  t.row_totals_.assign(ka, 0);
  t.col_totals_.assign(kb, 0);
  for (size_t i = 0; i < da.size(); ++i) {
    if (da[i] < 0 || db[i] < 0) continue;
    ++t.counts_[da[i]][db[i]];
    ++t.row_totals_[da[i]];
    ++t.col_totals_[db[i]];
    ++t.total_;
  }
  return t;
}

ContingencyTable::PairCounts ContingencyTable::pair_counts() const {
  auto choose2 = [](double n) { return n * (n - 1.0) / 2.0; };
  double sum_cells = 0.0;
  for (const auto& row : counts_) {
    for (size_t c : row) sum_cells += choose2(static_cast<double>(c));
  }
  double sum_rows = 0.0;
  for (size_t r : row_totals_) sum_rows += choose2(static_cast<double>(r));
  double sum_cols = 0.0;
  for (size_t c : col_totals_) sum_cols += choose2(static_cast<double>(c));
  const double total_pairs = choose2(static_cast<double>(total_));

  PairCounts pc;
  pc.same_both = sum_cells;
  pc.same_a_only = sum_rows - sum_cells;
  pc.same_b_only = sum_cols - sum_cells;
  pc.same_neither = total_pairs - sum_rows - sum_cols + sum_cells;
  return pc;
}

double ContingencyTable::UniformityDeviation() const {
  const size_t cells = rows() * cols();
  if (cells == 0 || total_ == 0) return 0.0;
  const double uniform = static_cast<double>(total_) /
                         static_cast<double>(cells);
  double tv = 0.0;
  for (const auto& row : counts_) {
    for (size_t c : row) tv += std::fabs(static_cast<double>(c) - uniform);
  }
  // Maximum total variation: all mass in one cell.
  const double max_tv =
      2.0 * (static_cast<double>(total_) - uniform);
  if (max_tv <= 0.0) return 0.0;
  return tv / max_tv;
}

}  // namespace multiclust
