#include "stats/entropy.h"

#include <cmath>

#include "stats/contingency.h"

namespace multiclust {

double EntropyFromCounts(const std::vector<size_t>& counts) {
  double total = 0.0;
  for (size_t c : counts) total += static_cast<double>(c);
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / total;
    h -= p * std::log(p);
  }
  return h;
}

double EntropyFromProbs(const std::vector<double>& probs) {
  double h = 0.0;
  for (double p : probs) {
    if (p <= 0.0) continue;
    h -= p * std::log(p);
  }
  return h;
}

double LabelEntropy(const std::vector<int>& labels) {
  std::vector<int> dense;
  const size_t k = DenseRelabel(labels, &dense);
  std::vector<size_t> counts(k, 0);
  for (int l : dense) {
    if (l >= 0) ++counts[l];
  }
  return EntropyFromCounts(counts);
}

Result<double> MutualInformation(const std::vector<int>& a,
                                 const std::vector<int>& b) {
  MC_ASSIGN_OR_RETURN(ContingencyTable t, ContingencyTable::Build(a, b));
  const double n = static_cast<double>(t.total());
  if (n <= 0.0) return 0.0;
  double mi = 0.0;
  for (size_t i = 0; i < t.rows(); ++i) {
    for (size_t j = 0; j < t.cols(); ++j) {
      const size_t nij = t.at(i, j);
      if (nij == 0) continue;
      const double pij = static_cast<double>(nij) / n;
      const double pi = static_cast<double>(t.row_totals()[i]) / n;
      const double pj = static_cast<double>(t.col_totals()[j]) / n;
      mi += pij * std::log(pij / (pi * pj));
    }
  }
  return mi < 0.0 ? 0.0 : mi;
}

Result<double> ConditionalEntropy(const std::vector<int>& a,
                                  const std::vector<int>& b) {
  MC_ASSIGN_OR_RETURN(ContingencyTable t, ContingencyTable::Build(a, b));
  const double n = static_cast<double>(t.total());
  if (n <= 0.0) return 0.0;
  double h = 0.0;
  for (size_t j = 0; j < t.cols(); ++j) {
    const double nj = static_cast<double>(t.col_totals()[j]);
    if (nj <= 0.0) continue;
    for (size_t i = 0; i < t.rows(); ++i) {
      const size_t nij = t.at(i, j);
      if (nij == 0) continue;
      const double pij = static_cast<double>(nij) / n;
      h -= pij * std::log(static_cast<double>(nij) / nj);
    }
  }
  return h < 0.0 ? 0.0 : h;
}

Result<double> JointEntropy(const std::vector<int>& a,
                            const std::vector<int>& b) {
  MC_ASSIGN_OR_RETURN(ContingencyTable t, ContingencyTable::Build(a, b));
  const double n = static_cast<double>(t.total());
  if (n <= 0.0) return 0.0;
  double h = 0.0;
  for (size_t i = 0; i < t.rows(); ++i) {
    for (size_t j = 0; j < t.cols(); ++j) {
      const size_t nij = t.at(i, j);
      if (nij == 0) continue;
      const double p = static_cast<double>(nij) / n;
      h -= p * std::log(p);
    }
  }
  return h;
}

double KlDivergence(const std::vector<double>& p, const std::vector<double>& q,
                    double eps) {
  double kl = 0.0;
  const size_t n = p.size() < q.size() ? p.size() : q.size();
  for (size_t i = 0; i < n; ++i) {
    if (p[i] <= 0.0) continue;
    const double qi = q[i] > eps ? q[i] : eps;
    kl += p[i] * std::log(p[i] / qi);
  }
  return kl;
}

}  // namespace multiclust
