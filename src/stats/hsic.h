#ifndef MULTICLUST_STATS_HSIC_H_
#define MULTICLUST_STATS_HSIC_H_

#include "common/result.h"
#include "linalg/matrix.h"

namespace multiclust {

/// Gaussian (RBF) kernel matrix of the rows of `data`. `gamma <= 0` selects
/// the median-heuristic bandwidth (gamma = 1 / median squared distance).
Matrix GaussianKernelMatrix(const Matrix& data, double gamma = 0.0);

/// Biased empirical Hilbert-Schmidt Independence Criterion between two
/// multivariate samples with paired rows (Gretton et al. 2005; used by
/// mSC, tutorial slide 90, to steer subspace search towards statistically
/// independent subspaces). Returns HSIC = tr(K H L H) / (n-1)^2, which is
/// ~0 for independent views and grows with dependence.
Result<double> Hsic(const Matrix& x, const Matrix& y, double gamma_x = 0.0,
                    double gamma_y = 0.0);

}  // namespace multiclust

#endif  // MULTICLUST_STATS_HSIC_H_
