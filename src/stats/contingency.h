#ifndef MULTICLUST_STATS_CONTINGENCY_H_
#define MULTICLUST_STATS_CONTINGENCY_H_

#include <vector>

#include "common/result.h"

namespace multiclust {

/// Contingency table between two labelings of the same objects.
///
/// Labels may be arbitrary non-negative integers; -1 marks noise/unassigned
/// objects, which are excluded from the table (the convention used by all
/// comparison measures in this library). Used both by partition-similarity
/// measures and by the Hossain et al. style dissimilarity-via-uniformity
/// arguments of the tutorial (slide 44).
class ContingencyTable {
 public:
  /// Builds the table; labelings must have equal length.
  static Result<ContingencyTable> Build(const std::vector<int>& a,
                                        const std::vector<int>& b);

  size_t rows() const { return counts_.size(); }
  size_t cols() const { return rows() == 0 ? 0 : counts_[0].size(); }

  /// Count of objects with a-label i and b-label j (dense re-indexed ids).
  size_t at(size_t i, size_t j) const { return counts_[i][j]; }

  /// Row marginals (objects per a-cluster).
  const std::vector<size_t>& row_totals() const { return row_totals_; }
  /// Column marginals (objects per b-cluster).
  const std::vector<size_t>& col_totals() const { return col_totals_; }
  /// Total objects counted (excludes noise in either labeling).
  size_t total() const { return total_; }

  /// Pair-counting statistics over the table:
  /// pairs in the same cluster in both labelings (a11), in a only (a10),
  /// in b only (a01), in neither (a00).
  struct PairCounts {
    double same_both = 0;    ///< a11
    double same_a_only = 0;  ///< a10
    double same_b_only = 0;  ///< a01
    double same_neither = 0; ///< a00
  };
  PairCounts pair_counts() const;

  /// Deviation from a uniform joint distribution, in [0, 1]:
  /// 0 = perfectly uniform table (maximally dissimilar clusterings under the
  /// Hossain et al. argument), 1 = all mass in one cell. Computed as the
  /// normalised total-variation distance to the uniform table.
  double UniformityDeviation() const;

 private:
  std::vector<std::vector<size_t>> counts_;
  std::vector<size_t> row_totals_;
  std::vector<size_t> col_totals_;
  size_t total_ = 0;
};

/// Re-indexes labels to a dense 0..k-1 range, preserving -1 as noise.
/// Returns the number of distinct non-noise labels.
size_t DenseRelabel(const std::vector<int>& labels, std::vector<int>* out);

}  // namespace multiclust

#endif  // MULTICLUST_STATS_CONTINGENCY_H_
