#ifndef MULTICLUST_STATS_GRID_H_
#define MULTICLUST_STATS_GRID_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace multiclust {

/// Axis-aligned equal-width grid over a data matrix, the shared substrate of
/// the grid-based subspace algorithms (CLIQUE, ENCLUS, SCHISM; tutorial
/// slide 69): each dimension is split into `xi` equal-length intervals
/// between the observed min and max.
class Grid {
 public:
  /// Builds the grid; requires xi >= 1 and a non-empty matrix.
  static Result<Grid> Build(const Matrix& data, size_t xi);

  size_t xi() const { return xi_; }
  size_t num_dims() const { return mins_.size(); }
  size_t num_objects() const { return cells_.size(); }

  /// Interval index of `value` in dimension `dim`, clamped to [0, xi).
  int Interval(size_t dim, double value) const;

  /// Precomputed interval index of object `i` in dimension `dim`.
  int CellOf(size_t i, size_t dim) const { return cells_[i][dim]; }

  /// Lower/upper bound of interval `interval` in dimension `dim`.
  double IntervalLower(size_t dim, int interval) const;
  double IntervalUpper(size_t dim, int interval) const;

  /// Entropy (nats) of the cell-occupancy distribution over the grid
  /// restricted to subspace `dims` (ENCLUS's H(X), slide 89). Cells are the
  /// cross product of per-dimension intervals; empty cells contribute 0.
  double SubspaceEntropy(const std::vector<size_t>& dims) const;

  /// Number of distinct non-empty cells in subspace `dims` (the coverage of
  /// a CLIQUE-style clustering of that subspace).
  size_t NonEmptyCells(const std::vector<size_t>& dims) const;

 private:
  size_t xi_ = 0;
  std::vector<double> mins_;
  std::vector<double> widths_;  // interval width per dim (>= tiny epsilon)
  std::vector<std::vector<int>> cells_;  // [object][dim] -> interval
};

/// A grid *unit*: a conjunction of (dimension, interval) constraints over
/// distinct dimensions, kept sorted by dimension. The elementary dense
/// region of CLIQUE/SCHISM.
struct GridUnit {
  std::vector<std::pair<size_t, int>> constraints;
  /// Objects falling into the unit (ascending ids).
  std::vector<int> objects;

  /// Dimensions of the unit's subspace.
  std::vector<size_t> Dims() const;
  bool SameSubspace(const GridUnit& other) const;
};

/// Mines all units whose support satisfies `min_support(|dims|)` using the
/// apriori bottom-up search with the monotonicity property (slide 71):
/// a unit can only be dense if all its (k-1)-dim projections are dense.
/// `min_support` maps subspace dimensionality to the minimum object count.
/// `max_dims` caps the search depth (0 = unlimited).
std::vector<GridUnit> MineDenseUnits(
    const Grid& grid, const std::vector<size_t>& support_threshold_by_dim,
    size_t max_dims);

}  // namespace multiclust

#endif  // MULTICLUST_STATS_GRID_H_
