#include "stats/kde.h"

#include <algorithm>
#include <cmath>

#include "stats/contingency.h"

namespace multiclust {

Result<KernelDensity> KernelDensity::Fit(const Matrix& data,
                                         double bandwidth) {
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("KernelDensity: empty data");
  }
  KernelDensity kde;
  kde.data_ = data;
  const size_t n = data.rows();
  const size_t d = data.cols();
  kde.bandwidths_.assign(d, bandwidth);
  if (bandwidth <= 0.0) {
    // Silverman's rule of thumb per dimension.
    const std::vector<double> mean = RowMean(data);
    for (size_t j = 0; j < d; ++j) {
      double var = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double diff = data.at(i, j) - mean[j];
        var += diff * diff;
      }
      var /= std::max<size_t>(1, n - 1);
      const double sigma = std::sqrt(std::max(var, 1e-12));
      kde.bandwidths_[j] =
          sigma * std::pow(4.0 / ((d + 2.0) * n), 1.0 / (d + 4.0));
      kde.bandwidths_[j] = std::max(kde.bandwidths_[j], 1e-6);
    }
  }
  double log_norm = -0.5 * static_cast<double>(d) * std::log(2.0 * M_PI);
  for (double h : kde.bandwidths_) log_norm -= std::log(h);
  kde.log_norm_ = log_norm;
  return kde;
}

double KernelDensity::Density(const std::vector<double>& x) const {
  const size_t n = data_.rows();
  const size_t d = data_.cols();
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double* row = data_.row_data(i);
    double q = 0.0;
    for (size_t j = 0; j < d && j < x.size(); ++j) {
      const double z = (x[j] - row[j]) / bandwidths_[j];
      q += z * z;
    }
    sum += std::exp(-0.5 * q);
  }
  return std::exp(log_norm_) * sum / static_cast<double>(n);
}

double KernelDensity::MeanLogDensity(const Matrix& points) const {
  if (points.rows() == 0) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < points.rows(); ++i) {
    const double dens = Density(points.Row(i));
    s += std::log(std::max(dens, 1e-300));
  }
  return s / static_cast<double>(points.rows());
}

Result<Matrix> DensityProfile(const std::vector<double>& values,
                              const std::vector<int>& labels, size_t bins) {
  if (values.size() != labels.size()) {
    return Status::InvalidArgument("DensityProfile: size mismatch");
  }
  if (bins == 0) return Status::InvalidArgument("DensityProfile: bins == 0");
  std::vector<int> dense;
  const size_t k = DenseRelabel(labels, &dense);
  if (k == 0) return Matrix(0, bins);

  double lo = values.empty() ? 0.0 : values[0];
  double hi = lo;
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double width = (hi - lo > 1e-12 ? hi - lo : 1.0) /
                       static_cast<double>(bins);

  Matrix profile(k, bins);
  std::vector<double> totals(k, 0.0);
  for (size_t i = 0; i < values.size(); ++i) {
    if (dense[i] < 0) continue;
    int b = static_cast<int>((values[i] - lo) / width);
    if (b < 0) b = 0;
    if (b >= static_cast<int>(bins)) b = static_cast<int>(bins) - 1;
    profile.at(dense[i], b) += 1.0;
    totals[dense[i]] += 1.0;
  }
  for (size_t c = 0; c < k; ++c) {
    if (totals[c] <= 0) continue;
    for (size_t b = 0; b < bins; ++b) profile.at(c, b) /= totals[c];
  }
  return profile;
}

}  // namespace multiclust
