#include "stats/hsic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel.h"
#include "common/trace.h"

namespace multiclust {

namespace {

double MedianSquaredDistance(const Matrix& data) {
  const size_t n = data.rows();
  if (n < 2) return 1.0;
  std::vector<double> dists(n * (n - 1) / 2);
  // Pair (i, j), j > i, lands at a closed-form offset, so rows fill
  // disjoint slices in parallel and the vector matches the serial fill.
  ParallelFor(0, n, 16, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      size_t idx = i * (n - 1) - i * (i - 1) / 2;
      for (size_t j = i + 1; j < n; ++j) {
        double s = 0.0;
        for (size_t k = 0; k < data.cols(); ++k) {
          const double d = data.at(i, k) - data.at(j, k);
          s += d * d;
        }
        dists[idx++] = s;
      }
    }
  });
  if (dists.empty()) return 1.0;
  std::nth_element(dists.begin(), dists.begin() + dists.size() / 2,
                   dists.end());
  const double med = dists[dists.size() / 2];
  return med > 1e-12 ? med : 1.0;
}

}  // namespace

Matrix GaussianKernelMatrix(const Matrix& data, double gamma) {
  MULTICLUST_TRACE_SPAN("stats.hsic.kernel");
  const size_t n = data.rows();
  if (gamma <= 0.0) gamma = 1.0 / MedianSquaredDistance(data);
  Matrix k(n, n);
  // Upper triangle in parallel (each row owned by one chunk), then a
  // mirror pass for the lower triangle. Every entry is computed by the
  // same expression as the serial loop, so the matrix is bit-identical
  // for any thread count.
  ParallelFor(0, n, 16, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      k.at(i, i) = 1.0;
      for (size_t j = i + 1; j < n; ++j) {
        double s = 0.0;
        for (size_t c = 0; c < data.cols(); ++c) {
          const double d = data.at(i, c) - data.at(j, c);
          s += d * d;
        }
        k.at(i, j) = std::exp(-gamma * s);
      }
    }
  });
  ParallelFor(0, n, 64, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      for (size_t j = 0; j < i; ++j) k.at(i, j) = k.at(j, i);
    }
  });
  return k;
}

Result<double> Hsic(const Matrix& x, const Matrix& y, double gamma_x,
                    double gamma_y) {
  if (x.rows() != y.rows()) {
    return Status::InvalidArgument("Hsic: samples must be paired (same rows)");
  }
  const size_t n = x.rows();
  if (n < 2) return Status::InvalidArgument("Hsic: need at least 2 rows");

  const Matrix k = GaussianKernelMatrix(x, gamma_x);
  const Matrix l = GaussianKernelMatrix(y, gamma_y);

  // Centre both kernel matrices: Kc = H K H with H = I - 11^T / n, then
  // HSIC = tr(Kc * Lc) / (n-1)^2 = sum_ij Kc_ij * Lc_ij / (n-1)^2.
  auto centre = [n](const Matrix& m) {
    std::vector<double> row_mean(n, 0.0);
    ParallelFor(0, n, 128, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        double s = 0.0;
        for (size_t j = 0; j < n; ++j) s += m.at(i, j);
        row_mean[i] = s / static_cast<double>(n);
      }
    });
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) total += row_mean[i];
    total /= static_cast<double>(n);
    Matrix c(n, n);
    ParallelFor(0, n, 128, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        for (size_t j = 0; j < n; ++j) {
          c.at(i, j) = m.at(i, j) - row_mean[i] - row_mean[j] + total;
        }
      }
    });
    return c;
  };

  const Matrix kc = centre(k);
  const Matrix lc = centre(l);
  const double trace = ParallelReduce(
      0, n, 256, 0.0,
      [&](size_t lo, size_t hi) {
        double s = 0.0;
        for (size_t i = lo; i < hi; ++i) {
          for (size_t j = 0; j < n; ++j) s += kc.at(i, j) * lc.at(j, i);
        }
        return s;
      },
      [](double a, double b) { return a + b; });
  const double denom = static_cast<double>(n - 1) * static_cast<double>(n - 1);
  return trace / denom;
}

}  // namespace multiclust
