#include "stats/hsic.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace multiclust {

namespace {

double MedianSquaredDistance(const Matrix& data) {
  const size_t n = data.rows();
  std::vector<double> dists;
  dists.reserve(n * (n - 1) / 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double s = 0.0;
      for (size_t k = 0; k < data.cols(); ++k) {
        const double d = data.at(i, k) - data.at(j, k);
        s += d * d;
      }
      dists.push_back(s);
    }
  }
  if (dists.empty()) return 1.0;
  std::nth_element(dists.begin(), dists.begin() + dists.size() / 2,
                   dists.end());
  const double med = dists[dists.size() / 2];
  return med > 1e-12 ? med : 1.0;
}

}  // namespace

Matrix GaussianKernelMatrix(const Matrix& data, double gamma) {
  const size_t n = data.rows();
  if (gamma <= 0.0) gamma = 1.0 / MedianSquaredDistance(data);
  Matrix k(n, n);
  for (size_t i = 0; i < n; ++i) {
    k.at(i, i) = 1.0;
    for (size_t j = i + 1; j < n; ++j) {
      double s = 0.0;
      for (size_t c = 0; c < data.cols(); ++c) {
        const double d = data.at(i, c) - data.at(j, c);
        s += d * d;
      }
      const double v = std::exp(-gamma * s);
      k.at(i, j) = v;
      k.at(j, i) = v;
    }
  }
  return k;
}

Result<double> Hsic(const Matrix& x, const Matrix& y, double gamma_x,
                    double gamma_y) {
  if (x.rows() != y.rows()) {
    return Status::InvalidArgument("Hsic: samples must be paired (same rows)");
  }
  const size_t n = x.rows();
  if (n < 2) return Status::InvalidArgument("Hsic: need at least 2 rows");

  const Matrix k = GaussianKernelMatrix(x, gamma_x);
  const Matrix l = GaussianKernelMatrix(y, gamma_y);

  // Centre both kernel matrices: Kc = H K H with H = I - 11^T / n, then
  // HSIC = tr(Kc * Lc) / (n-1)^2 = sum_ij Kc_ij * Lc_ij / (n-1)^2.
  auto centre = [n](const Matrix& m) {
    std::vector<double> row_mean(n, 0.0);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) row_mean[i] += m.at(i, j);
      total += row_mean[i];
      row_mean[i] /= static_cast<double>(n);
    }
    total /= static_cast<double>(n) * static_cast<double>(n);
    Matrix c(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        c.at(i, j) = m.at(i, j) - row_mean[i] - row_mean[j] + total;
      }
    }
    return c;
  };

  const Matrix kc = centre(k);
  const Matrix lc = centre(l);
  double trace = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) trace += kc.at(i, j) * lc.at(j, i);
  }
  const double denom = static_cast<double>(n - 1) * static_cast<double>(n - 1);
  return trace / denom;
}

}  // namespace multiclust
