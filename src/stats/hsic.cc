#include "stats/hsic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel.h"
#include "common/trace.h"
#include "linalg/kernels.h"

namespace multiclust {

namespace {

double MedianSquaredDistance(const Matrix& data) {
  const size_t n = data.rows();
  if (n < 2) return 1.0;
  std::vector<double> dists(n * (n - 1) / 2);
  // Pair (i, j), j > i, lands at a closed-form offset, so rows fill
  // disjoint slices in parallel and the vector matches the serial fill.
  ParallelFor(0, n, 16, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      size_t idx = i * (n - 1) - i * (i - 1) / 2;
      for (size_t j = i + 1; j < n; ++j) {
        dists[idx++] = kernels::SquaredDistance(data.row_data(i),
                                                data.row_data(j), data.cols());
      }
    }
  });
  if (dists.empty()) return 1.0;
  std::nth_element(dists.begin(), dists.begin() + dists.size() / 2,
                   dists.end());
  const double med = dists[dists.size() / 2];
  return med > 1e-12 ? med : 1.0;
}

}  // namespace

Matrix GaussianKernelMatrix(const Matrix& data, double gamma) {
  MULTICLUST_TRACE_SPAN("stats.hsic.kernel");
  const size_t n = data.rows();
  if (gamma <= 0.0) gamma = 1.0 / MedianSquaredDistance(data);
  Matrix k(n, n);
  // Upper triangle in parallel (each row owned by one chunk), then a
  // mirror pass for the lower triangle. Every entry is computed by the
  // same expression as the serial loop, so the matrix is bit-identical
  // for any thread count.
  ParallelFor(0, n, 16, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      k.at(i, i) = 1.0;
      if (i + 1 >= n) continue;
      // Fused exp-row kernel over the contiguous tail rows i+1..n-1:
      // vectorized distances, scalar libm exp, no temporaries.
      kernels::GaussianRow(data.row_data(i), data.row_data(i + 1), n - i - 1,
                           data.cols(), gamma, &k.at(i, i + 1));
    }
  });
  ParallelFor(0, n, 64, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      for (size_t j = 0; j < i; ++j) k.at(i, j) = k.at(j, i);
    }
  });
  return k;
}

Result<double> Hsic(const Matrix& x, const Matrix& y, double gamma_x,
                    double gamma_y) {
  if (x.rows() != y.rows()) {
    return Status::InvalidArgument("Hsic: samples must be paired (same rows)");
  }
  const size_t n = x.rows();
  if (n < 2) return Status::InvalidArgument("Hsic: need at least 2 rows");

  const Matrix k = GaussianKernelMatrix(x, gamma_x);
  const Matrix l = GaussianKernelMatrix(y, gamma_y);

  // Centre both kernel matrices: Kc = H K H with H = I - 11^T / n, then
  // HSIC = tr(Kc * Lc) / (n-1)^2 = sum_ij Kc_ij * Lc_ij / (n-1)^2.
  auto centre = [n](const Matrix& m) {
    std::vector<double> row_mean(n, 0.0);
    ParallelFor(0, n, 128, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        row_mean[i] = kernels::Sum(m.row_data(i), n) / static_cast<double>(n);
      }
    });
    const double total =
        kernels::Sum(row_mean.data(), n) / static_cast<double>(n);
    Matrix c(n, n);
    ParallelFor(0, n, 128, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        kernels::CenterRow(m.row_data(i), row_mean[i], row_mean.data(), total,
                           c.row_data(i), n);
      }
    });
    return c;
  };

  const Matrix kc = centre(k);
  const Matrix lc = centre(l);
  // Lc is symmetric (up to centring round-off), so the trace contracts
  // row-against-row: sum_i <Kc_i, Lc_i> — contiguous dots instead of the
  // strided column walk lc.at(j, i).
  const double trace = ParallelReduce(
      0, n, 256, 0.0,
      [&](size_t lo, size_t hi) {
        double s = 0.0;
        for (size_t i = lo; i < hi; ++i) {
          s += kernels::Dot(kc.row_data(i), lc.row_data(i), n);
        }
        return s;
      },
      [](double a, double b) { return a + b; });
  const double denom = static_cast<double>(n - 1) * static_cast<double>(n - 1);
  return trace / denom;
}

}  // namespace multiclust
