#ifndef MULTICLUST_STATS_TAILS_H_
#define MULTICLUST_STATS_TAILS_H_

#include <cstddef>

namespace multiclust {

/// Hoeffding upper bound on P[X >= n(p + t)] for X ~ Binomial(n, p):
/// exp(-2 n t^2). Valid for t >= 0 (returns 1 for t < 0).
double HoeffdingUpperTail(size_t n, double p, double t);

/// SCHISM's dimensionality-adaptive support threshold (tutorial slide 73):
///   tau(s) = (1/xi)^s + sqrt(ln(1/tau) / (2 n))
/// expressed as a *fraction* of the n objects that an s-dimensional grid
/// cell must contain to be interesting. `xi` is the number of intervals per
/// dimension and `tau` the significance level in (0, 1).
double SchismThresholdFraction(size_t s, size_t xi, size_t n, double tau);

/// Exact upper tail P[X >= k] for X ~ Binomial(n, p), computed by stable
/// summation of log-pmf terms. Suitable for the n used in this library
/// (up to ~10^5). Used by STATPC-style significance tests.
double BinomialUpperTail(size_t n, size_t k, double p);

/// log(n choose k) via lgamma.
double LogChoose(size_t n, size_t k);

}  // namespace multiclust

#endif  // MULTICLUST_STATS_TAILS_H_
