#include "stats/grid.h"

#include <algorithm>
#include <iterator>
#include <map>

#include "common/parallel.h"
#include "stats/entropy.h"

namespace multiclust {

Result<Grid> Grid::Build(const Matrix& data, size_t xi) {
  if (xi == 0) return Status::InvalidArgument("Grid: xi must be >= 1");
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("Grid: empty data");
  }
  Grid g;
  g.xi_ = xi;
  const size_t n = data.rows();
  const size_t d = data.cols();
  g.mins_.resize(d);
  g.widths_.resize(d);
  for (size_t j = 0; j < d; ++j) {
    double lo = data.at(0, j), hi = data.at(0, j);
    for (size_t i = 1; i < n; ++i) {
      lo = std::min(lo, data.at(i, j));
      hi = std::max(hi, data.at(i, j));
    }
    g.mins_[j] = lo;
    const double span = hi - lo;
    g.widths_[j] = (span > 1e-12 ? span : 1.0) / static_cast<double>(xi);
  }
  g.cells_.assign(n, std::vector<int>(d));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      g.cells_[i][j] = g.Interval(j, data.at(i, j));
    }
  }
  return g;
}

int Grid::Interval(size_t dim, double value) const {
  int idx = static_cast<int>((value - mins_[dim]) / widths_[dim]);
  if (idx < 0) idx = 0;
  if (idx >= static_cast<int>(xi_)) idx = static_cast<int>(xi_) - 1;
  return idx;
}

double Grid::IntervalLower(size_t dim, int interval) const {
  return mins_[dim] + widths_[dim] * interval;
}

double Grid::IntervalUpper(size_t dim, int interval) const {
  return mins_[dim] + widths_[dim] * (interval + 1);
}

double Grid::SubspaceEntropy(const std::vector<size_t>& dims) const {
  std::map<std::vector<int>, size_t> counts;
  std::vector<int> key(dims.size());
  for (const auto& row : cells_) {
    for (size_t j = 0; j < dims.size(); ++j) key[j] = row[dims[j]];
    ++counts[key];
  }
  std::vector<size_t> values;
  values.reserve(counts.size());
  for (const auto& [k, c] : counts) values.push_back(c);
  return EntropyFromCounts(values);
}

size_t Grid::NonEmptyCells(const std::vector<size_t>& dims) const {
  std::map<std::vector<int>, size_t> counts;
  std::vector<int> key(dims.size());
  for (const auto& row : cells_) {
    for (size_t j = 0; j < dims.size(); ++j) key[j] = row[dims[j]];
    ++counts[key];
  }
  return counts.size();
}

std::vector<size_t> GridUnit::Dims() const {
  std::vector<size_t> dims;
  dims.reserve(constraints.size());
  for (const auto& [d, iv] : constraints) dims.push_back(d);
  return dims;
}

bool GridUnit::SameSubspace(const GridUnit& other) const {
  if (constraints.size() != other.constraints.size()) return false;
  for (size_t i = 0; i < constraints.size(); ++i) {
    if (constraints[i].first != other.constraints[i].first) return false;
  }
  return true;
}

std::vector<GridUnit> MineDenseUnits(
    const Grid& grid, const std::vector<size_t>& support_threshold_by_dim,
    size_t max_dims) {
  std::vector<GridUnit> result;
  const size_t n = grid.num_objects();
  const size_t d = grid.num_dims();
  if (max_dims == 0 || max_dims > d) max_dims = d;

  auto threshold_for = [&](size_t dims) -> size_t {
    if (support_threshold_by_dim.empty()) return 1;
    const size_t idx = std::min(dims, support_threshold_by_dim.size() - 1);
    return support_threshold_by_dim[idx];
  };

  // Concatenation in ascending chunk order reproduces the serial append
  // order exactly, so the parallel scans below stay deterministic.
  const auto concat = [](std::vector<GridUnit> acc, std::vector<GridUnit> b) {
    acc.insert(acc.end(), std::make_move_iterator(b.begin()),
               std::make_move_iterator(b.end()));
    return acc;
  };

  // Level 1: one unit per non-empty (dim, interval) with enough support.
  // Dimensions are scanned in parallel (one chunk per dimension).
  std::vector<GridUnit> level = ParallelReduce(
      0, d, 1, std::vector<GridUnit>{},
      [&](size_t lo, size_t hi) {
        std::vector<GridUnit> local;
        for (size_t dim = lo; dim < hi; ++dim) {
          std::map<int, std::vector<int>> buckets;
          for (size_t i = 0; i < n; ++i) {
            buckets[grid.CellOf(i, dim)].push_back(static_cast<int>(i));
          }
          for (auto& [interval, objs] : buckets) {
            if (objs.size() < threshold_for(1)) continue;
            GridUnit u;
            u.constraints = {{dim, interval}};
            u.objects = std::move(objs);
            local.push_back(std::move(u));
          }
        }
        return local;
      },
      concat);
  for (const GridUnit& u : level) result.push_back(u);

  // Levels 2..max_dims: apriori join of units sharing all but the last
  // constraint, intersecting their object lists.
  for (size_t depth = 2; depth <= max_dims && level.size() >= 2; ++depth) {
    // Units are kept sorted by constraint vector, so joinable pairs are
    // adjacent in prefix blocks.
    std::sort(level.begin(), level.end(),
              [](const GridUnit& a, const GridUnit& b) {
                return a.constraints < b.constraints;
              });
    // Each left unit i joins only units after it in its prefix block, so
    // the i-scan parallelizes over read-only `level`; per-chunk outputs
    // concatenated in chunk order equal the serial append order.
    std::vector<GridUnit> next = ParallelReduce(
        0, level.size(), 8, std::vector<GridUnit>{},
        [&](size_t lo, size_t hi) {
          std::vector<GridUnit> local;
          for (size_t i = lo; i < hi; ++i) {
            for (size_t j = i + 1; j < level.size(); ++j) {
              const auto& ca = level[i].constraints;
              const auto& cb = level[j].constraints;
              // Join requires identical (k-2)-prefix.
              bool prefix_equal = true;
              for (size_t p = 0; p + 1 < ca.size(); ++p) {
                if (ca[p] != cb[p]) {
                  prefix_equal = false;
                  break;
                }
              }
              if (!prefix_equal) break;  // sorted: later j cannot match
              // Last constraints must be on distinct dimensions.
              if (ca.back().first >= cb.back().first) continue;
              GridUnit cand;
              cand.constraints = ca;
              cand.constraints.push_back(cb.back());
              // Support by intersection of sorted object lists.
              cand.objects.reserve(
                  std::min(level[i].objects.size(), level[j].objects.size()));
              std::set_intersection(level[i].objects.begin(),
                                    level[i].objects.end(),
                                    level[j].objects.begin(),
                                    level[j].objects.end(),
                                    std::back_inserter(cand.objects));
              if (cand.objects.size() < threshold_for(depth)) continue;
              local.push_back(std::move(cand));
            }
          }
          return local;
        },
        concat);
    for (const GridUnit& u : next) result.push_back(u);
    level = std::move(next);
  }
  return result;
}

}  // namespace multiclust
