#ifndef MULTICLUST_STATS_ENTROPY_H_
#define MULTICLUST_STATS_ENTROPY_H_

#include <vector>

#include "common/result.h"

namespace multiclust {

/// Shannon entropy (nats) of a discrete distribution given as counts.
double EntropyFromCounts(const std::vector<size_t>& counts);

/// Shannon entropy (nats) of a discrete distribution given as probabilities;
/// non-positive entries are skipped.
double EntropyFromProbs(const std::vector<double>& probs);

/// Entropy H(A) of a labeling (noise labels -1 excluded).
double LabelEntropy(const std::vector<int>& labels);

/// Mutual information I(A; B) between two labelings (nats).
Result<double> MutualInformation(const std::vector<int>& a,
                                 const std::vector<int>& b);

/// Conditional entropy H(A | B) (nats).
Result<double> ConditionalEntropy(const std::vector<int>& a,
                                  const std::vector<int>& b);

/// Joint entropy H(A, B) (nats).
Result<double> JointEntropy(const std::vector<int>& a,
                            const std::vector<int>& b);

/// Kullback-Leibler divergence KL(p || q) for discrete distributions;
/// q entries are floored at `eps` to keep the value finite.
double KlDivergence(const std::vector<double>& p, const std::vector<double>& q,
                    double eps = 1e-12);

}  // namespace multiclust

#endif  // MULTICLUST_STATS_ENTROPY_H_
