#ifndef MULTICLUST_STATS_KDE_H_
#define MULTICLUST_STATS_KDE_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace multiclust {

/// Gaussian kernel density estimator with a diagonal (per-dimension)
/// bandwidth. Used for density-profile comparisons between clusterings
/// (Bae et al. 2010 style, tutorial slide 34) and for non-parametric quality
/// scores.
class KernelDensity {
 public:
  /// Fits on the rows of `data`. `bandwidth <= 0` selects Silverman's rule
  /// per dimension.
  static Result<KernelDensity> Fit(const Matrix& data, double bandwidth = 0.0);

  /// Density estimate at point `x` (length = data dims).
  double Density(const std::vector<double>& x) const;

  /// Average log-density of the rows of `points` under this estimate.
  double MeanLogDensity(const Matrix& points) const;

  /// Per-dimension bandwidths in use.
  const std::vector<double>& bandwidths() const { return bandwidths_; }

 private:
  Matrix data_;
  std::vector<double> bandwidths_;
  double log_norm_ = 0.0;  // log of the kernel normalisation constant
};

/// Histogram density profile of a labeling along one attribute: for each
/// cluster, the normalised histogram of member values over `bins` equal
/// intervals. Two clusterings are "density dissimilar" when their profiles
/// differ (Bae et al. 2010). Rows = clusters (dense relabeled), cols = bins.
Result<Matrix> DensityProfile(const std::vector<double>& values,
                              const std::vector<int>& labels, size_t bins);

}  // namespace multiclust

#endif  // MULTICLUST_STATS_KDE_H_
