// Fast-path kernel instantiation. This TU is the only one compiled with
// arch-specific flags (-mavx2 on x86_64 when MULTICLUST_SIMD is ON) and,
// like kernels_ref.cc, with -ffp-contract=off so MulAdd keeps its two
// roundings on every backend.

#include "linalg/kernels.h"

#include "common/profile.h"
#include "linalg/kernel_impl.h"
#include "linalg/simd.h"

namespace multiclust {
namespace kernels {

using simd::Double4;
using simd::Float8;

SimdInfo Info() {
  SimdInfo info;
  info.backend = MULTICLUST_SIMD_BACKEND_NAME;
#if defined(MULTICLUST_SIMD)
  info.compiled_simd = true;
#else
  info.compiled_simd = false;
#endif
  info.double_lanes = Double4::kLanes;
  info.float_lanes = Float8::kLanes;
  return info;
}

std::string RuntimeIsa() {
#if defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx512f")) return "avx512f";
  if (__builtin_cpu_supports("avx2")) return "avx2";
  if (__builtin_cpu_supports("sse2")) return "sse2";
#endif
  return "unknown";
#elif defined(__ARM_NEON)
  return "neon";
#else
  return "unknown";
#endif
}

double Dot(const double* a, const double* b, size_t n) {
  return impl::Dot<Double4>(a, b, n);
}
double Sum(const double* x, size_t n) { return impl::Sum<Double4>(x, n); }
double SquaredNorm(const double* x, size_t n) {
  return impl::SquaredNorm<Double4>(x, n);
}
double SquaredDistance(const double* a, const double* b, size_t n) {
  return impl::SquaredDistance<Double4>(a, b, n);
}
double QuadDiag(const double* x, const double* mean, const double* var,
                size_t n) {
  return impl::QuadDiag<Double4>(x, mean, var, n);
}
void Add(double* acc, const double* x, size_t n) {
  impl::Add<Double4>(acc, x, n);
}
void Axpy(double alpha, const double* x, double* y, size_t n) {
  impl::Axpy<Double4>(alpha, x, y, n);
}
void AxpyDiff(double alpha, const double* x, const double* m, double* y,
              size_t n) {
  impl::AxpyDiff<Double4>(alpha, x, m, y, n);
}
void AxpySqDiff(double alpha, const double* x, const double* m, double* y,
                size_t n) {
  impl::AxpySqDiff<Double4>(alpha, x, m, y, n);
}
void CenterRow(const double* row, double rm_i, const double* rm, double total,
               double* out, size_t n) {
  impl::CenterRow<Double4>(row, rm_i, rm, total, out, n);
}
void GaussianRow(const double* x, const double* rows, size_t count, size_t d,
                 double gamma, double* out) {
  // Telemetry FLOP tally at call granularity (one row against `count`
  // rows): ~3 flops per element for the squared distance plus the exp.
  telemetry::CountFlops(3 * count * d + count,
                        (count * d + d + count) * sizeof(double));
  impl::GaussianRow<Double4>(x, rows, count, d, gamma, out);
}
int NearestSquared(const double* x, const double* centers, size_t k,
                   size_t d) {
  return impl::NearestSquared<Double4>(x, centers, k, d);
}
int NearestNormForm(const double* x, const double* centers, size_t k, size_t d,
                    double x_norm, const double* center_norms) {
  return impl::NearestNormForm<Double4>(x, centers, k, d, x_norm,
                                        center_norms);
}
void GemmRows(const double* a, size_t acols, const double* b, size_t bcols,
              double* c, size_t row_begin, size_t row_end) {
  // Telemetry FLOP tally at call granularity (one row block per call —
  // never inside the blocked inner loops): 2mnk flops, m(k + n) + kn
  // doubles touched.
  const size_t m = row_end - row_begin;
  telemetry::CountFlops(2 * m * acols * bcols,
                        (m * (acols + bcols) + acols * bcols) *
                            sizeof(double));
  impl::GemmRows<Double4>(a, acols, b, bcols, c, row_begin, row_end);
}

float DotF(const float* a, const float* b, size_t n) {
  return impl::DotF<Float8>(a, b, n);
}
float SquaredNormF(const float* x, size_t n) {
  return impl::SquaredNormF<Float8>(x, n);
}
float SquaredDistanceF(const float* a, const float* b, size_t n) {
  return impl::SquaredDistanceF<Float8>(a, b, n);
}
int NearestSquaredF(const float* x, const float* centers, size_t k, size_t d) {
  return impl::NearestSquaredF<Float8>(x, centers, k, d);
}

}  // namespace kernels
}  // namespace multiclust
