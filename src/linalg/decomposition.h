#ifndef MULTICLUST_LINALG_DECOMPOSITION_H_
#define MULTICLUST_LINALG_DECOMPOSITION_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace multiclust {

/// Eigendecomposition of a symmetric matrix: A = V * diag(values) * V^T.
/// `values` are sorted descending; column j of `vectors` is the eigenvector
/// for `values[j]`.
struct SymmetricEigen {
  std::vector<double> values;
  Matrix vectors;
};

/// Computes the full eigendecomposition of symmetric `a` with the cyclic
/// Jacobi method. Returns InvalidArgument for non-square input and
/// ComputationError if rotation sweeps fail to converge.
Result<SymmetricEigen> EigenSymmetric(const Matrix& a,
                                      double tol = 1e-12,
                                      int max_sweeps = 64);

/// Thin singular value decomposition A = U * diag(sigma) * V^T for an
/// m x n matrix with any m, n. U is m x r, V is n x r, r = min(m, n);
/// singular values are sorted descending and non-negative.
struct Svd {
  Matrix u;
  std::vector<double> sigma;
  Matrix v;
};

/// One-sided Jacobi SVD; robust for the small/medium dense matrices used
/// throughout the library.
Result<Svd> ComputeSvd(const Matrix& a, double tol = 1e-12,
                       int max_sweeps = 64);

/// Cholesky factor L (lower triangular) with A = L * L^T. Fails with
/// ComputationError when `a` is not (numerically) positive definite.
Result<Matrix> Cholesky(const Matrix& a);

/// Solves A x = b for symmetric positive definite A via Cholesky.
Result<std::vector<double>> SolveSpd(const Matrix& a,
                                     const std::vector<double>& b);

/// General inverse via Gauss-Jordan with partial pivoting. Fails on
/// (numerically) singular input.
Result<Matrix> Inverse(const Matrix& a);

/// Symmetric (principal) matrix square root A^{1/2} via eigendecomposition.
/// Negative eigenvalues are clamped to `eps` before taking roots.
Result<Matrix> SqrtSymmetric(const Matrix& a, double eps = 1e-12);

/// Symmetric inverse square root A^{-1/2}; eigenvalues below `eps` are
/// clamped to `eps` (pseudo-inverse style regularisation). Used by the
/// Qi & Davidson alternative-clustering transformation.
Result<Matrix> InverseSqrtSymmetric(const Matrix& a, double eps = 1e-8);

/// Householder QR: A (m x n, m >= n) = Q (m x n, orthonormal cols) * R
/// (n x n upper triangular).
struct Qr {
  Matrix q;
  Matrix r;
};

/// Computes the thin QR decomposition; requires rows >= cols.
Result<Qr> ComputeQr(const Matrix& a);

}  // namespace multiclust

#endif  // MULTICLUST_LINALG_DECOMPOSITION_H_
