#ifndef MULTICLUST_LINALG_KERNEL_IMPL_H_
#define MULTICLUST_LINALG_KERNEL_IMPL_H_

/// Templated kernel bodies shared by the fast (kernels.cc, whatever SIMD
/// backend the build selected) and reference (kernels_ref.cc, forced
/// scalar lane emulation) instantiations. One algorithm, two codegen
/// targets — this is what makes "SIMD-on and SIMD-off are bit-identical"
/// a structural property instead of a hand-maintained promise.
///
/// Conventions:
///  - f64 dot/sum/distance reductions stride by 8, accumulating into TWO
///    independent 4-lane vectors (the single-vector chain would serialize
///    on add latency); the tail (n % 8) is zero-padded into an 8-slot
///    buffer so every length takes the same combine path. The final
///    combine is one vector add (acc0 + acc1) followed by the fixed lane
///    order documented on ReduceSum — fixed for every backend, which is
///    all the bit-identity contract needs.
///  - elementwise kernels (axpy & friends) vectorize the main body and
///    finish the tail scalar; per-element operation order is identical to
///    the plain scalar loop, so they are bit-identical to it by
///    construction.
///  - transcendentals (exp, log) always go through libm, one element at a
///    time — no vendor vector-math libraries, whose polynomials differ.

#include <cmath>
#include <cstddef>

#include "linalg/simd.h"

namespace multiclust {
namespace kernels {
namespace impl {

// --- f64 reductions (4-lane model). ---

template <typename V>
double Dot(const double* a, const double* b, size_t n) {
  V acc0 = V::Zero(), acc1 = V::Zero();
  const size_t main = n & ~static_cast<size_t>(7);
  size_t i = 0;
  for (; i < main; i += 8) {
    acc0 = V::MulAdd(V::Load(a + i), V::Load(b + i), acc0);
    acc1 = V::MulAdd(V::Load(a + i + 4), V::Load(b + i + 4), acc1);
  }
  if (i < n) {
    double ta[8] = {0, 0, 0, 0, 0, 0, 0, 0}, tb[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (size_t j = 0; i + j < n; ++j) {
      ta[j] = a[i + j];
      tb[j] = b[i + j];
    }
    acc0 = V::MulAdd(V::Load(ta), V::Load(tb), acc0);
    acc1 = V::MulAdd(V::Load(ta + 4), V::Load(tb + 4), acc1);
  }
  return (acc0 + acc1).ReduceSum();
}

template <typename V>
double Sum(const double* x, size_t n) {
  V acc0 = V::Zero(), acc1 = V::Zero();
  const size_t main = n & ~static_cast<size_t>(7);
  size_t i = 0;
  for (; i < main; i += 8) {
    acc0 = acc0 + V::Load(x + i);
    acc1 = acc1 + V::Load(x + i + 4);
  }
  if (i < n) {
    double t[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (size_t j = 0; i + j < n; ++j) t[j] = x[i + j];
    acc0 = acc0 + V::Load(t);
    acc1 = acc1 + V::Load(t + 4);
  }
  return (acc0 + acc1).ReduceSum();
}

template <typename V>
double SquaredNorm(const double* x, size_t n) {
  return Dot<V>(x, x, n);
}

template <typename V>
double SquaredDistance(const double* a, const double* b, size_t n) {
  V acc0 = V::Zero(), acc1 = V::Zero();
  const size_t main = n & ~static_cast<size_t>(7);
  size_t i = 0;
  for (; i < main; i += 8) {
    const V d0 = V::Load(a + i) - V::Load(b + i);
    const V d1 = V::Load(a + i + 4) - V::Load(b + i + 4);
    acc0 = V::MulAdd(d0, d0, acc0);
    acc1 = V::MulAdd(d1, d1, acc1);
  }
  if (i < n) {
    double ta[8] = {0, 0, 0, 0, 0, 0, 0, 0}, tb[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (size_t j = 0; i + j < n; ++j) {
      ta[j] = a[i + j];
      tb[j] = b[i + j];
    }
    const V d0 = V::Load(ta) - V::Load(tb);
    const V d1 = V::Load(ta + 4) - V::Load(tb + 4);
    acc0 = V::MulAdd(d0, d0, acc0);
    acc1 = V::MulAdd(d1, d1, acc1);
  }
  return (acc0 + acc1).ReduceSum();
}

// sum_j (x[j] - mean[j])^2 / var[j] — the diagonal-covariance Gaussian
// quadratic form. The tail pads var with 1.0 so padded lanes contribute
// 0/1 = 0 instead of 0/0 = NaN.
template <typename V>
double QuadDiag(const double* x, const double* mean, const double* var,
                size_t n) {
  V acc = V::Zero();
  const size_t main = n & ~static_cast<size_t>(3);
  size_t i = 0;
  for (; i < main; i += 4) {
    const V d = V::Load(x + i) - V::Load(mean + i);
    acc = acc + (d * d) / V::Load(var + i);
  }
  if (i < n) {
    double tx[4] = {0, 0, 0, 0}, tm[4] = {0, 0, 0, 0}, tv[4] = {1, 1, 1, 1};
    for (size_t j = 0; i + j < n; ++j) {
      tx[j] = x[i + j];
      tm[j] = mean[i + j];
      tv[j] = var[i + j];
    }
    const V d = V::Load(tx) - V::Load(tm);
    acc = acc + (d * d) / V::Load(tv);
  }
  return acc.ReduceSum();
}

// --- f64 elementwise (bit-identical to the plain scalar loop). ---

template <typename V>
void Add(double* acc, const double* x, size_t n) {
  const size_t main = n & ~static_cast<size_t>(3);
  size_t i = 0;
  for (; i < main; i += 4) (V::Load(acc + i) + V::Load(x + i)).Store(acc + i);
  for (; i < n; ++i) acc[i] = acc[i] + x[i];
}

template <typename V>
void Axpy(double alpha, const double* x, double* y, size_t n) {
  const V a = V::Broadcast(alpha);
  const size_t main = n & ~static_cast<size_t>(3);
  size_t i = 0;
  for (; i < main; i += 4) {
    V::MulAdd(a, V::Load(x + i), V::Load(y + i)).Store(y + i);
  }
  for (; i < n; ++i) y[i] = y[i] + (alpha * x[i]);
}

// y[j] += alpha * (x[j] - m[j])
template <typename V>
void AxpyDiff(double alpha, const double* x, const double* m, double* y,
              size_t n) {
  const V a = V::Broadcast(alpha);
  const size_t main = n & ~static_cast<size_t>(3);
  size_t i = 0;
  for (; i < main; i += 4) {
    V::MulAdd(a, V::Load(x + i) - V::Load(m + i), V::Load(y + i)).Store(y + i);
  }
  for (; i < n; ++i) y[i] = y[i] + (alpha * (x[i] - m[i]));
}

// y[j] += alpha * (x[j] - m[j])^2
template <typename V>
void AxpySqDiff(double alpha, const double* x, const double* m, double* y,
                size_t n) {
  const V a = V::Broadcast(alpha);
  const size_t main = n & ~static_cast<size_t>(3);
  size_t i = 0;
  for (; i < main; i += 4) {
    const V d = V::Load(x + i) - V::Load(m + i);
    V::MulAdd(a, d * d, V::Load(y + i)).Store(y + i);
  }
  for (; i < n; ++i) {
    const double d = x[i] - m[i];
    y[i] = y[i] + (alpha * (d * d));
  }
}

// out[j] = ((row[j] - rm_i) - rm[j]) + total — the HSIC double-centering.
template <typename V>
void CenterRow(const double* row, double rm_i, const double* rm, double total,
               double* out, size_t n) {
  const V ri = V::Broadcast(rm_i);
  const V tot = V::Broadcast(total);
  const size_t main = n & ~static_cast<size_t>(3);
  size_t i = 0;
  for (; i < main; i += 4) {
    (((V::Load(row + i) - ri) - V::Load(rm + i)) + tot).Store(out + i);
  }
  for (; i < n; ++i) out[i] = ((row[i] - rm_i) - rm[i]) + total;
}

// --- fused / composite f64 kernels. ---

// out[j] = exp(-gamma * ||x - rows_j||^2) for j in [0, count); rows_j is
// rows + j*d. Distances are vectorized; exp stays scalar libm.
template <typename V>
void GaussianRow(const double* x, const double* rows, size_t count, size_t d,
                 double gamma, double* out) {
  for (size_t j = 0; j < count; ++j) {
    const double s = SquaredDistance<V>(x, rows + j * d, d);
    out[j] = std::exp(-gamma * s);
  }
}

// argmin_c ||x - centers_c||^2 with strict-< tie-breaking (lowest index).
template <typename V>
int NearestSquared(const double* x, const double* centers, size_t k,
                   size_t d) {
  double best = 0.0;
  int best_c = 0;
  for (size_t c = 0; c < k; ++c) {
    const double s = SquaredDistance<V>(x, centers + c * d, d);
    if (c == 0 || s < best) {
      best = s;
      best_c = static_cast<int>(c);
    }
  }
  return best_c;
}

// argmin_c ||x||^2 - 2 x.c + ||c||^2 given precomputed norms.
template <typename V>
int NearestNormForm(const double* x, const double* centers, size_t k, size_t d,
                    double x_norm, const double* center_norms) {
  double best = 0.0;
  int best_c = 0;
  for (size_t c = 0; c < k; ++c) {
    const double dot = Dot<V>(x, centers + c * d, d);
    const double dist = x_norm - 2.0 * dot + center_norms[c];
    if (c == 0 || dist < best) {
      best = dist;
      best_c = static_cast<int>(c);
    }
  }
  return best_c;
}

// Cache-blocked row-major GEMM: c[i,:] = a[i,:] * b for i in
// [row_begin, row_end). a is (? x acols), b is (acols x bcols), c rows
// must be zero-initialized. Blocked over columns (kNc) and the inner
// dimension (kKc); for every output element the inner-dimension
// accumulation order stays ascending regardless of blocking, so the
// result is independent of the block sizes.
template <typename V>
void GemmRows(const double* a, size_t acols, const double* b, size_t bcols,
              double* c, size_t row_begin, size_t row_end) {
  constexpr size_t kNc = 256;  // column panel width
  constexpr size_t kKc = 64;   // inner-dim panel depth
  // Loop order jb -> kb -> i: the (kKc x kNc) panel of b (128 KiB at the
  // defaults) is reused across every row of a before moving on, instead
  // of being re-streamed from memory once per row. For any output element
  // the k accumulation still runs ascending (kb ascending outside, k
  // ascending inside), so the loop order is invisible in the bits.
  for (size_t jb = 0; jb < bcols; jb += kNc) {
    const size_t jend = jb + kNc < bcols ? jb + kNc : bcols;
    const size_t width = jend - jb;
    for (size_t kb = 0; kb < acols; kb += kKc) {
      const size_t kend = kb + kKc < acols ? kb + kKc : acols;
      const double* bpanel = b + jb;
      for (size_t i = row_begin; i < row_end; ++i) {
        const double* arow = a + i * acols;
        double* crow = c + i * bcols + jb;
        // Register block: each c vector is accumulated over the whole k
        // panel in a register (the k-ascending order per element is the
        // same as a memory-resident sweep, so blocking stays invisible
        // in the bits). Four vectors in flight hide the add latency.
        size_t j = 0;
        for (; j + 16 <= width; j += 16) {
          V c0 = V::Load(crow + j);
          V c1 = V::Load(crow + j + 4);
          V c2 = V::Load(crow + j + 8);
          V c3 = V::Load(crow + j + 12);
          for (size_t k = kb; k < kend; ++k) {
            const V av = V::Broadcast(arow[k]);
            const double* brow = bpanel + k * bcols + j;
            c0 = V::MulAdd(av, V::Load(brow), c0);
            c1 = V::MulAdd(av, V::Load(brow + 4), c1);
            c2 = V::MulAdd(av, V::Load(brow + 8), c2);
            c3 = V::MulAdd(av, V::Load(brow + 12), c3);
          }
          c0.Store(crow + j);
          c1.Store(crow + j + 4);
          c2.Store(crow + j + 8);
          c3.Store(crow + j + 12);
        }
        for (; j + 4 <= width; j += 4) {
          V c0 = V::Load(crow + j);
          for (size_t k = kb; k < kend; ++k) {
            c0 = V::MulAdd(V::Broadcast(arow[k]),
                           V::Load(bpanel + k * bcols + j), c0);
          }
          c0.Store(crow + j);
        }
        for (; j < width; ++j) {
          double acc = crow[j];
          for (size_t k = kb; k < kend; ++k) {
            acc = acc + (arow[k] * bpanel[k * bcols + j]);
          }
          crow[j] = acc;
        }
      }
    }
  }
}

// --- f32 kernels (8-lane model); the opt-in low-precision distance path.

template <typename V8>
float DotF(const float* a, const float* b, size_t n) {
  V8 acc = V8::Zero();
  const size_t main = n & ~static_cast<size_t>(7);
  size_t i = 0;
  for (; i < main; i += 8) {
    acc = V8::MulAdd(V8::Load(a + i), V8::Load(b + i), acc);
  }
  if (i < n) {
    float ta[8] = {0, 0, 0, 0, 0, 0, 0, 0}, tb[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (size_t j = 0; i + j < n; ++j) {
      ta[j] = a[i + j];
      tb[j] = b[i + j];
    }
    acc = V8::MulAdd(V8::Load(ta), V8::Load(tb), acc);
  }
  return acc.ReduceSum();
}

template <typename V8>
float SquaredNormF(const float* x, size_t n) {
  return DotF<V8>(x, x, n);
}

template <typename V8>
float SquaredDistanceF(const float* a, const float* b, size_t n) {
  V8 acc = V8::Zero();
  const size_t main = n & ~static_cast<size_t>(7);
  size_t i = 0;
  for (; i < main; i += 8) {
    const V8 d = V8::Load(a + i) - V8::Load(b + i);
    acc = V8::MulAdd(d, d, acc);
  }
  if (i < n) {
    float ta[8] = {0, 0, 0, 0, 0, 0, 0, 0}, tb[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (size_t j = 0; i + j < n; ++j) {
      ta[j] = a[i + j];
      tb[j] = b[i + j];
    }
    const V8 d = V8::Load(ta) - V8::Load(tb);
    acc = V8::MulAdd(d, d, acc);
  }
  return acc.ReduceSum();
}

template <typename V8>
int NearestSquaredF(const float* x, const float* centers, size_t k, size_t d) {
  float best = 0.f;
  int best_c = 0;
  for (size_t c = 0; c < k; ++c) {
    const float s = SquaredDistanceF<V8>(x, centers + c * d, d);
    if (c == 0 || s < best) {
      best = s;
      best_c = static_cast<int>(c);
    }
  }
  return best_c;
}

}  // namespace impl
}  // namespace kernels
}  // namespace multiclust

#endif  // MULTICLUST_LINALG_KERNEL_IMPL_H_
