#ifndef MULTICLUST_LINALG_PCA_H_
#define MULTICLUST_LINALG_PCA_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace multiclust {

/// Principal component analysis of a data matrix (rows = objects).
struct PcaModel {
  std::vector<double> mean;         ///< column means of the training data
  std::vector<double> eigenvalues;  ///< descending variances per component
  Matrix components;                ///< d x d; column j = j-th principal axis

  /// Projects `x` (length d) onto the first `p` components (centred).
  std::vector<double> Project(const std::vector<double>& x, size_t p) const;

  /// Projects every row of `data` onto the first `p` components; returns
  /// an n x p matrix. Rows are processed in parallel; each output row
  /// matches `Project` on that row exactly.
  Matrix ProjectRows(const Matrix& data, size_t p) const;

  /// Returns the d x p matrix of the leading `p` component columns.
  Matrix LeadingComponents(size_t p) const;

  /// Smallest p whose components explain at least `fraction` of variance.
  size_t ComponentsForVariance(double fraction) const;
};

/// Fits PCA on the rows of `data` via eigendecomposition of the covariance.
Result<PcaModel> FitPca(const Matrix& data);

}  // namespace multiclust

#endif  // MULTICLUST_LINALG_PCA_H_
