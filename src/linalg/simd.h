#ifndef MULTICLUST_LINALG_SIMD_H_
#define MULTICLUST_LINALG_SIMD_H_

/// Portable fixed-width SIMD value types: `Double4` (4 x f64) and
/// `Float8` (8 x f32).
///
/// Lane model / determinism contract
/// ---------------------------------
/// Every kernel in kernel_impl.h is written against a FIXED lane count (4
/// doubles / 8 floats) regardless of what the hardware offers, and every
/// reduction combines its lanes in one fixed scalar order. The backend is
/// chosen at compile time:
///
///   MULTICLUST_SIMD + __AVX2__     -> AVX2 intrinsics
///   MULTICLUST_SIMD + __ARM_NEON   -> NEON intrinsics (2 x 128-bit halves)
///   otherwise                      -> scalar lane emulation (double v[4])
///
/// Because the lane count, the tail handling and the lane-combine order
/// are identical across backends — and because `MulAdd` is always a
/// separately-rounded multiply + add (never a fused FMA; the kernel TUs
/// are compiled with -ffp-contract=off so the scalar backend cannot be
/// contracted either) — a kernel produces bit-identical results whether
/// the build is SIMD-on or SIMD-off. tests/simd_kernel_test.cc and
/// determinism_test enforce this against the always-scalar `kernels::ref`
/// instantiation.
///
/// A translation unit may define MULTICLUST_SIMD_FORCE_SCALAR before
/// including this header to get the scalar backend regardless of the
/// build configuration (kernels_ref.cc does exactly that).

#include <cstddef>

#if !defined(MULTICLUST_SIMD_FORCE_SCALAR) && defined(MULTICLUST_SIMD) && \
    defined(__AVX2__)
#define MULTICLUST_SIMD_BACKEND_AVX2 1
#define MULTICLUST_SIMD_BACKEND_NAME "avx2"
#include <immintrin.h>
#elif !defined(MULTICLUST_SIMD_FORCE_SCALAR) && defined(MULTICLUST_SIMD) && \
    defined(__ARM_NEON)
#define MULTICLUST_SIMD_BACKEND_NEON 1
#define MULTICLUST_SIMD_BACKEND_NAME "neon"
#include <arm_neon.h>
#else
#define MULTICLUST_SIMD_BACKEND_SCALAR 1
#define MULTICLUST_SIMD_BACKEND_NAME "scalar"
#endif

namespace multiclust {
namespace simd {

// Each backend lives in its own *inline* namespace. Call sites just say
// simd::Double4, but the mangled type name differs per backend, so the
// template instantiations in kernels.cc (intrinsics) and kernels_ref.cc
// (forced scalar) get distinct symbols. Without this they would share one
// comdat symbol and the linker would silently collapse the "fast" and
// "ref" kernels onto whichever definition it saw first — an ODR violation
// that makes the fast-vs-ref bit-identity oracle vacuous.

#if defined(MULTICLUST_SIMD_BACKEND_AVX2)

inline namespace backend_avx2 {

struct Double4 {
  __m256d v;
  static constexpr int kLanes = 4;

  static Double4 Zero() { return {_mm256_setzero_pd()}; }
  static Double4 Broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static Double4 Load(const double* p) { return {_mm256_loadu_pd(p)}; }
  void Store(double* p) const { _mm256_storeu_pd(p, v); }

  Double4 operator+(Double4 o) const { return {_mm256_add_pd(v, o.v)}; }
  Double4 operator-(Double4 o) const { return {_mm256_sub_pd(v, o.v)}; }
  Double4 operator*(Double4 o) const { return {_mm256_mul_pd(v, o.v)}; }
  Double4 operator/(Double4 o) const { return {_mm256_div_pd(v, o.v)}; }

  /// acc + a * b with two roundings (mul then add; deliberately not FMA).
  static Double4 MulAdd(Double4 a, Double4 b, Double4 acc) {
    return {_mm256_add_pd(acc.v, _mm256_mul_pd(a.v, b.v))};
  }

  /// Lane sum in the fixed order (l0 + l1) + (l2 + l3).
  double ReduceSum() const {
    alignas(32) double lane[4];
    _mm256_store_pd(lane, v);
    return (lane[0] + lane[1]) + (lane[2] + lane[3]);
  }
};

struct Float8 {
  __m256 v;
  static constexpr int kLanes = 8;

  static Float8 Zero() { return {_mm256_setzero_ps()}; }
  static Float8 Broadcast(float x) { return {_mm256_set1_ps(x)}; }
  static Float8 Load(const float* p) { return {_mm256_loadu_ps(p)}; }
  void Store(float* p) const { _mm256_storeu_ps(p, v); }

  Float8 operator+(Float8 o) const { return {_mm256_add_ps(v, o.v)}; }
  Float8 operator-(Float8 o) const { return {_mm256_sub_ps(v, o.v)}; }
  Float8 operator*(Float8 o) const { return {_mm256_mul_ps(v, o.v)}; }

  static Float8 MulAdd(Float8 a, Float8 b, Float8 acc) {
    return {_mm256_add_ps(acc.v, _mm256_mul_ps(a.v, b.v))};
  }

  /// Lane sum in the fixed order ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)).
  float ReduceSum() const {
    alignas(32) float lane[8];
    _mm256_store_ps(lane, v);
    return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
           ((lane[4] + lane[5]) + (lane[6] + lane[7]));
  }
};

}  // inline namespace backend_avx2

#elif defined(MULTICLUST_SIMD_BACKEND_NEON)

inline namespace backend_neon {

struct Double4 {
  float64x2_t lo, hi;
  static constexpr int kLanes = 4;

  static Double4 Zero() { return {vdupq_n_f64(0.0), vdupq_n_f64(0.0)}; }
  static Double4 Broadcast(double x) { return {vdupq_n_f64(x), vdupq_n_f64(x)}; }
  static Double4 Load(const double* p) {
    return {vld1q_f64(p), vld1q_f64(p + 2)};
  }
  void Store(double* p) const {
    vst1q_f64(p, lo);
    vst1q_f64(p + 2, hi);
  }

  Double4 operator+(Double4 o) const {
    return {vaddq_f64(lo, o.lo), vaddq_f64(hi, o.hi)};
  }
  Double4 operator-(Double4 o) const {
    return {vsubq_f64(lo, o.lo), vsubq_f64(hi, o.hi)};
  }
  Double4 operator*(Double4 o) const {
    return {vmulq_f64(lo, o.lo), vmulq_f64(hi, o.hi)};
  }
  Double4 operator/(Double4 o) const {
    return {vdivq_f64(lo, o.lo), vdivq_f64(hi, o.hi)};
  }

  static Double4 MulAdd(Double4 a, Double4 b, Double4 acc) {
    // vaddq(vmulq) keeps two roundings; vfmaq would fuse and break the
    // cross-backend bit-identity contract.
    return {vaddq_f64(acc.lo, vmulq_f64(a.lo, b.lo)),
            vaddq_f64(acc.hi, vmulq_f64(a.hi, b.hi))};
  }

  double ReduceSum() const {
    return (vgetq_lane_f64(lo, 0) + vgetq_lane_f64(lo, 1)) +
           (vgetq_lane_f64(hi, 0) + vgetq_lane_f64(hi, 1));
  }
};

struct Float8 {
  float32x4_t lo, hi;
  static constexpr int kLanes = 8;

  static Float8 Zero() { return {vdupq_n_f32(0.f), vdupq_n_f32(0.f)}; }
  static Float8 Broadcast(float x) { return {vdupq_n_f32(x), vdupq_n_f32(x)}; }
  static Float8 Load(const float* p) {
    return {vld1q_f32(p), vld1q_f32(p + 4)};
  }
  void Store(float* p) const {
    vst1q_f32(p, lo);
    vst1q_f32(p + 4, hi);
  }

  Float8 operator+(Float8 o) const {
    return {vaddq_f32(lo, o.lo), vaddq_f32(hi, o.hi)};
  }
  Float8 operator-(Float8 o) const {
    return {vsubq_f32(lo, o.lo), vsubq_f32(hi, o.hi)};
  }
  Float8 operator*(Float8 o) const {
    return {vmulq_f32(lo, o.lo), vmulq_f32(hi, o.hi)};
  }

  static Float8 MulAdd(Float8 a, Float8 b, Float8 acc) {
    return {vaddq_f32(acc.lo, vmulq_f32(a.lo, b.lo)),
            vaddq_f32(acc.hi, vmulq_f32(a.hi, b.hi))};
  }

  float ReduceSum() const {
    return ((vgetq_lane_f32(lo, 0) + vgetq_lane_f32(lo, 1)) +
            (vgetq_lane_f32(lo, 2) + vgetq_lane_f32(lo, 3))) +
           ((vgetq_lane_f32(hi, 0) + vgetq_lane_f32(hi, 1)) +
            (vgetq_lane_f32(hi, 2) + vgetq_lane_f32(hi, 3)));
  }
};

}  // inline namespace backend_neon

#else  // scalar lane emulation

inline namespace backend_scalar {

struct Double4 {
  double v[4];
  static constexpr int kLanes = 4;

  static Double4 Zero() { return {{0.0, 0.0, 0.0, 0.0}}; }
  static Double4 Broadcast(double x) { return {{x, x, x, x}}; }
  static Double4 Load(const double* p) { return {{p[0], p[1], p[2], p[3]}}; }
  void Store(double* p) const {
    for (int i = 0; i < 4; ++i) p[i] = v[i];
  }

  Double4 operator+(Double4 o) const {
    Double4 r;
    for (int i = 0; i < 4; ++i) r.v[i] = v[i] + o.v[i];
    return r;
  }
  Double4 operator-(Double4 o) const {
    Double4 r;
    for (int i = 0; i < 4; ++i) r.v[i] = v[i] - o.v[i];
    return r;
  }
  Double4 operator*(Double4 o) const {
    Double4 r;
    for (int i = 0; i < 4; ++i) r.v[i] = v[i] * o.v[i];
    return r;
  }
  Double4 operator/(Double4 o) const {
    Double4 r;
    for (int i = 0; i < 4; ++i) r.v[i] = v[i] / o.v[i];
    return r;
  }

  static Double4 MulAdd(Double4 a, Double4 b, Double4 acc) {
    Double4 r;
    // Two roundings per lane; the kernel TUs build with -ffp-contract=off
    // so this can never be contracted into an FMA.
    for (int i = 0; i < 4; ++i) r.v[i] = acc.v[i] + (a.v[i] * b.v[i]);
    return r;
  }

  double ReduceSum() const { return (v[0] + v[1]) + (v[2] + v[3]); }
};

struct Float8 {
  float v[8];
  static constexpr int kLanes = 8;

  static Float8 Zero() {
    return {{0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f}};
  }
  static Float8 Broadcast(float x) { return {{x, x, x, x, x, x, x, x}}; }
  static Float8 Load(const float* p) {
    return {{p[0], p[1], p[2], p[3], p[4], p[5], p[6], p[7]}};
  }
  void Store(float* p) const {
    for (int i = 0; i < 8; ++i) p[i] = v[i];
  }

  Float8 operator+(Float8 o) const {
    Float8 r;
    for (int i = 0; i < 8; ++i) r.v[i] = v[i] + o.v[i];
    return r;
  }
  Float8 operator-(Float8 o) const {
    Float8 r;
    for (int i = 0; i < 8; ++i) r.v[i] = v[i] - o.v[i];
    return r;
  }
  Float8 operator*(Float8 o) const {
    Float8 r;
    for (int i = 0; i < 8; ++i) r.v[i] = v[i] * o.v[i];
    return r;
  }

  static Float8 MulAdd(Float8 a, Float8 b, Float8 acc) {
    Float8 r;
    for (int i = 0; i < 8; ++i) r.v[i] = acc.v[i] + (a.v[i] * b.v[i]);
    return r;
  }

  float ReduceSum() const {
    return ((v[0] + v[1]) + (v[2] + v[3])) + ((v[4] + v[5]) + (v[6] + v[7]));
  }
};

}  // inline namespace backend_scalar

#endif

}  // namespace simd
}  // namespace multiclust

#endif  // MULTICLUST_LINALG_SIMD_H_
