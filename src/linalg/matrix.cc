#include "linalg/matrix.h"

#include <cmath>
#include <cstring>

#include "common/parallel.h"
#include "common/trace.h"
#include "linalg/kernels.h"

namespace multiclust {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = 0; j < m.cols_ && j < rows[i].size(); ++j) {
      m.at(i, j) = rows[i][j];
    }
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::Diagonal(const std::vector<double>& diag) {
  Matrix m(diag.size(), diag.size());
  for (size_t i = 0; i < diag.size(); ++i) m.at(i, i) = diag[i];
  return m;
}

std::vector<double> Matrix::Row(size_t i) const {
  return std::vector<double>(row_data(i), row_data(i) + cols_);
}

std::vector<double> Matrix::Col(size_t j) const {
  std::vector<double> out(rows_);
  for (size_t i = 0; i < rows_; ++i) out[i] = at(i, j);
  return out;
}

void Matrix::SetRow(size_t i, const std::vector<double>& values) {
  for (size_t j = 0; j < cols_ && j < values.size(); ++j) at(i, j) = values[j];
}

void Matrix::CopyRowFrom(const Matrix& src, size_t src_row, size_t dst_row) {
  const size_t count = cols_ < src.cols_ ? cols_ : src.cols_;
  if (count == 0) return;
  std::memcpy(row_data(dst_row), src.row_data(src_row),
              count * sizeof(double));
}

void Matrix::SetCol(size_t j, const std::vector<double>& values) {
  for (size_t i = 0; i < rows_ && i < values.size(); ++i) at(i, j) = values[i];
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) t.at(j, i) = at(i, j);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& other) const {
  if (cols_ != other.rows_) return Matrix();
  Matrix out(rows_, other.cols_);
  // Each output row is produced by exactly one chunk, and the kernel keeps
  // the inner-dimension accumulation order ascending per element, so the
  // product is bit-identical for any thread count and any cache blocking.
  // Grain targets ~32k flops per chunk.
  const size_t row_work = cols_ * other.cols_;
  const size_t grain = row_work == 0 ? rows_ : 32768 / row_work + 1;
  ParallelFor(0, rows_, grain, [&](size_t lo, size_t hi) {
    kernels::GemmRows(data_.data(), cols_, other.data_.data(), other.cols_,
                      out.data_.data(), lo, hi);
  });
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] + other.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] - other.data_[i];
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * scalar;
  return out;
}

Result<Matrix> Matrix::Multiply(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    return Status::InvalidArgument("matrix product dimension mismatch");
  }
  return a * b;
}

std::vector<double> Matrix::Apply(const std::vector<double>& v) const {
  std::vector<double> out(rows_, 0.0);
  const size_t n = cols_ < v.size() ? cols_ : v.size();
  for (size_t i = 0; i < rows_; ++i) {
    out[i] = kernels::Dot(row_data(i), v.data(), n);
  }
  return out;
}

double Matrix::FrobeniusNorm() const {
  return std::sqrt(kernels::SquaredNorm(data_.data(), data_.size()));
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    const double d = std::fabs(data_[i] - other.data_[i]);
    // Propagate NaN instead of silently dropping it (`d > m` is false for
    // NaN): convergence checks built on this difference must see poison.
    if (std::isnan(d)) return d;
    if (d > m) m = d;
  }
  return m;
}

Matrix Matrix::SelectColumns(const std::vector<size_t>& cols) const {
  Matrix out(rows_, cols.size());
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols.size(); ++j) out.at(i, j) = at(i, cols[j]);
  }
  return out;
}

Matrix Matrix::SelectRows(const std::vector<size_t>& rows) const {
  Matrix out(rows.size(), cols_);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = 0; j < cols_; ++j) out.at(i, j) = at(rows[i], j);
  }
  return out;
}

double VectorNorm(const std::vector<double>& v) {
  return std::sqrt(kernels::SquaredNorm(v.data(), v.size()));
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  return kernels::Dot(a.data(), b.data(), n);
}

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  return kernels::SquaredDistance(a.data(), b.data(), n);
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  return std::sqrt(SquaredDistance(a, b));
}

std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<double> Subtract(const std::vector<double>& a,
                             const std::vector<double>& b) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<double> Scale(const std::vector<double>& v, double s) {
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = v[i] * s;
  return out;
}

std::vector<double> Normalized(const std::vector<double>& v) {
  const double n = VectorNorm(v);
  if (n < 1e-300) return v;
  return Scale(v, 1.0 / n);
}

namespace {

// Elementwise vector sum used as the combine step of chunked reductions.
std::vector<double> AddInto(std::vector<double> acc, std::vector<double> b) {
  kernels::Add(acc.data(), b.data(), acc.size());
  return acc;
}

}  // namespace

std::vector<double> RowMean(const Matrix& m) {
  std::vector<double> mean(m.cols(), 0.0);
  if (m.rows() == 0) return mean;
  mean = ParallelReduce(
      0, m.rows(), 1024, std::move(mean),
      [&](size_t lo, size_t hi) {
        std::vector<double> sum(m.cols(), 0.0);
        for (size_t i = lo; i < hi; ++i) {
          kernels::Add(sum.data(), m.row_data(i), m.cols());
        }
        return sum;
      },
      AddInto);
  for (double& x : mean) x /= static_cast<double>(m.rows());
  return mean;
}

Matrix Covariance(const Matrix& m) {
  MULTICLUST_TRACE_SPAN("linalg.matrix.covariance");
  const size_t n = m.rows();
  const size_t d = m.cols();
  Matrix cov(d, d);
  if (n == 0) return cov;
  const std::vector<double> mean = RowMean(m);
  // Upper triangle, packed row-major; partial sums per fixed 256-row chunk
  // combined in chunk order — deterministic for any thread count.
  const std::vector<double> upper = ParallelReduce(
      0, n, 256, std::vector<double>(d * (d + 1) / 2, 0.0),
      [&](size_t lo, size_t hi) {
        std::vector<double> sum(d * (d + 1) / 2, 0.0);
        for (size_t i = lo; i < hi; ++i) {
          const double* r = m.row_data(i);
          size_t idx = 0;
          for (size_t a = 0; a < d; ++a) {
            const double da = r[a] - mean[a];
            // sum[idx + t] += da * ((r+a)[t] - (mean+a)[t]) for the packed
            // upper-triangle tail of row a — elementwise, so bit-identical
            // to the seed's scalar loop.
            kernels::AxpyDiff(da, r + a, mean.data() + a, sum.data() + idx,
                              d - a);
            idx += d - a;
          }
        }
        return sum;
      },
      AddInto);
  {
    size_t idx = 0;
    for (size_t a = 0; a < d; ++a) {
      for (size_t b = a; b < d; ++b) cov.at(a, b) = upper[idx++];
    }
  }
  const double denom = n >= 2 ? static_cast<double>(n - 1)
                              : static_cast<double>(n);
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a; b < d; ++b) {
      cov.at(a, b) /= denom;
      cov.at(b, a) = cov.at(a, b);
    }
  }
  return cov;
}

Matrix OuterProduct(const std::vector<double>& a,
                    const std::vector<double>& b) {
  Matrix out(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) out.at(i, j) = a[i] * b[j];
  }
  return out;
}

}  // namespace multiclust
