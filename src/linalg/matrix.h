#ifndef MULTICLUST_LINALG_MATRIX_H_
#define MULTICLUST_LINALG_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/profile.h"
#include "common/result.h"
#include "common/status.h"

namespace multiclust {

/// Dense row-major matrix of doubles.
///
/// This is the library's in-house replacement for Eigen: small, predictable,
/// and sufficient for the dense decompositions the clustering algorithms
/// need (covariances, projections, spectral embeddings). Dimensions are
/// fixed at construction; element access is unchecked in release builds.
class Matrix {
 public:
  /// Constructs an empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Constructs a rows x cols matrix filled with `fill`. This is the one
  /// place matrix storage is allocated, so it feeds the telemetry
  /// allocation tally (ResourceProfile::alloc_count/alloc_bytes); the hook
  /// compiles out with the rest of the telemetry plane.
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    if (rows_ != 0 && cols_ != 0) {
      telemetry::CountAlloc(rows_ * cols_ * sizeof(double));
    }
  }

  /// Builds a matrix from nested initializer-style row data. All rows must
  /// have equal length; an empty argument produces a 0x0 matrix.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  /// Diagonal matrix from `diag`.
  static Matrix Diagonal(const std::vector<double>& diag);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& at(size_t i, size_t j) { return data_[i * cols_ + j]; }
  double at(size_t i, size_t j) const { return data_[i * cols_ + j]; }
  double& operator()(size_t i, size_t j) { return data_[i * cols_ + j]; }
  double operator()(size_t i, size_t j) const { return data_[i * cols_ + j]; }

  /// Raw pointer to row i (contiguous `cols()` doubles).
  double* row_data(size_t i) { return data_.data() + i * cols_; }
  const double* row_data(size_t i) const { return data_.data() + i * cols_; }

  /// Copies row i into a vector.
  std::vector<double> Row(size_t i) const;
  /// Copies column j into a vector.
  std::vector<double> Col(size_t j) const;
  /// Overwrites row i with `values` (must have size cols()).
  void SetRow(size_t i, const std::vector<double>& values);
  /// Copies row `src_row` of `src` into row `dst_row` of this matrix
  /// directly (no intermediate vector); copies min(cols(), src.cols())
  /// values.
  void CopyRowFrom(const Matrix& src, size_t src_row, size_t dst_row);
  /// Overwrites column j with `values` (must have size rows()).
  void SetCol(size_t j, const std::vector<double>& values);

  Matrix Transpose() const;

  /// Matrix product; aborts on dimension mismatch in debug, returns empty
  /// matrix in release. Prefer `Multiply` for checked use.
  Matrix operator*(const Matrix& other) const;
  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(double scalar) const;

  /// Checked product: error when inner dimensions disagree.
  static Result<Matrix> Multiply(const Matrix& a, const Matrix& b);

  /// Matrix-vector product (v.size() == cols()).
  std::vector<double> Apply(const std::vector<double>& v) const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Max absolute element difference to `other` (must be same shape).
  double MaxAbsDiff(const Matrix& other) const;

  /// Returns the submatrix of selected columns, preserving order.
  Matrix SelectColumns(const std::vector<size_t>& cols) const;

  /// Returns the submatrix of selected rows, preserving order.
  Matrix SelectRows(const std::vector<size_t>& rows) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Euclidean (L2) norm of v.
double VectorNorm(const std::vector<double>& v);

/// Dot product; vectors must have equal length.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Squared Euclidean distance between equally sized vectors.
double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

/// Euclidean distance between equally sized vectors.
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

/// a + b elementwise.
std::vector<double> Add(const std::vector<double>& a,
                        const std::vector<double>& b);

/// a - b elementwise.
std::vector<double> Subtract(const std::vector<double>& a,
                             const std::vector<double>& b);

/// v * s elementwise.
std::vector<double> Scale(const std::vector<double>& v, double s);

/// Normalizes v to unit L2 norm (returns v unchanged when its norm is ~0).
std::vector<double> Normalized(const std::vector<double>& v);

/// Mean of the rows of `m` (length cols()).
std::vector<double> RowMean(const Matrix& m);

/// Sample covariance (divides by n-1; by n when n < 2) of the rows of `m`.
Matrix Covariance(const Matrix& m);

/// Outer product a * b^T.
Matrix OuterProduct(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace multiclust

#endif  // MULTICLUST_LINALG_MATRIX_H_
