#include "linalg/pca.h"

#include "common/parallel.h"
#include "linalg/decomposition.h"
#include "linalg/kernels.h"

namespace multiclust {

std::vector<double> PcaModel::Project(const std::vector<double>& x,
                                      size_t p) const {
  if (p > components.cols()) p = components.cols();
  std::vector<double> centred(x.size());
  for (size_t i = 0; i < x.size() && i < mean.size(); ++i)
    centred[i] = x[i] - mean[i];
  // Transpose once so each output coordinate is a contiguous dot product
  // instead of a strided column walk over `components`.
  const Matrix ct = components.Transpose();
  const size_t n =
      centred.size() < components.rows() ? centred.size() : components.rows();
  std::vector<double> out(p, 0.0);
  for (size_t j = 0; j < p; ++j) {
    out[j] = kernels::Dot(ct.row_data(j), centred.data(), n);
  }
  return out;
}

Matrix PcaModel::ProjectRows(const Matrix& data, size_t p) const {
  if (p > components.cols()) p = components.cols();
  const size_t d = data.cols() < mean.size() ? data.cols() : mean.size();
  Matrix out(data.rows(), p);
  const Matrix ct = components.Transpose();
  const size_t row_work = d * (p == 0 ? 1 : p);
  ParallelFor(0, data.rows(), 16384 / (row_work + 1) + 1,
              [&](size_t lo, size_t hi) {
    std::vector<double> centred(d);
    for (size_t i = lo; i < hi; ++i) {
      const double* row = data.row_data(i);
      for (size_t c = 0; c < d; ++c) centred[c] = row[c] - mean[c];
      for (size_t j = 0; j < p; ++j) {
        out.at(i, j) = kernels::Dot(ct.row_data(j), centred.data(), d);
      }
    }
  });
  return out;
}

Matrix PcaModel::LeadingComponents(size_t p) const {
  if (p > components.cols()) p = components.cols();
  std::vector<size_t> cols(p);
  for (size_t j = 0; j < p; ++j) cols[j] = j;
  return components.SelectColumns(cols);
}

size_t PcaModel::ComponentsForVariance(double fraction) const {
  double total = 0.0;
  for (double v : eigenvalues) total += (v > 0 ? v : 0);
  if (total <= 0.0) return 0;
  double acc = 0.0;
  for (size_t i = 0; i < eigenvalues.size(); ++i) {
    acc += (eigenvalues[i] > 0 ? eigenvalues[i] : 0);
    if (acc / total >= fraction) return i + 1;
  }
  return eigenvalues.size();
}

Result<PcaModel> FitPca(const Matrix& data) {
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("FitPca: empty data");
  }
  PcaModel model;
  model.mean = RowMean(data);
  const Matrix cov = Covariance(data);
  MC_ASSIGN_OR_RETURN(SymmetricEigen eig, EigenSymmetric(cov));
  model.eigenvalues = std::move(eig.values);
  model.components = std::move(eig.vectors);
  return model;
}

}  // namespace multiclust
