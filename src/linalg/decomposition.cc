#include "linalg/decomposition.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace multiclust {

Result<SymmetricEigen> EigenSymmetric(const Matrix& a, double tol,
                                      int max_sweeps) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("EigenSymmetric: matrix must be square");
  }
  const size_t n = a.rows();
  Matrix m = a;
  Matrix v = Matrix::Identity(n);

  auto off_diag_norm = [&]() {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) s += m.at(i, j) * m.at(i, j);
    }
    return std::sqrt(2.0 * s);
  };

  const double scale = std::max(1.0, m.FrobeniusNorm());
  bool converged = n <= 1;
  for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    if (off_diag_norm() <= tol * scale) {
      converged = true;
      break;
    }
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = m.at(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        const double app = m.at(p, p);
        const double aqq = m.at(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply rotation J(p, q, theta) on both sides.
        for (size_t k = 0; k < n; ++k) {
          const double mkp = m.at(k, p);
          const double mkq = m.at(k, q);
          m.at(k, p) = c * mkp - s * mkq;
          m.at(k, q) = s * mkp + c * mkq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double mpk = m.at(p, k);
          const double mqk = m.at(q, k);
          m.at(p, k) = c * mpk - s * mqk;
          m.at(q, k) = s * mpk + c * mqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v.at(k, p);
          const double vkq = v.at(k, q);
          v.at(k, p) = c * vkp - s * vkq;
          v.at(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  if (!converged && off_diag_norm() > tol * scale * 100) {
    return Status::ComputationError("EigenSymmetric: Jacobi did not converge");
  }

  SymmetricEigen out;
  out.values.resize(n);
  for (size_t i = 0; i < n; ++i) out.values[i] = m.at(i, i);
  // Sort descending by eigenvalue, permuting eigenvector columns.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return out.values[x] > out.values[y];
  });
  std::vector<double> sorted_values(n);
  Matrix sorted_vectors(n, n);
  for (size_t j = 0; j < n; ++j) {
    sorted_values[j] = out.values[order[j]];
    for (size_t i = 0; i < n; ++i) {
      sorted_vectors.at(i, j) = v.at(i, order[j]);
    }
  }
  out.values = std::move(sorted_values);
  out.vectors = std::move(sorted_vectors);
  return out;
}

Result<Svd> ComputeSvd(const Matrix& a, double tol, int max_sweeps) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("ComputeSvd: empty matrix");
  }
  // Work with a tall matrix (m >= n); if wide, decompose the transpose and
  // swap U and V at the end.
  const bool transposed = a.rows() < a.cols();
  Matrix w = transposed ? a.Transpose() : a;
  const size_t m = w.rows();
  const size_t n = w.cols();

  Matrix v = Matrix::Identity(n);
  const double scale = std::max(1.0, w.FrobeniusNorm());

  // One-sided Jacobi: orthogonalise pairs of columns of w.
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double max_cos = 0.0;
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (size_t i = 0; i < m; ++i) {
          const double wp = w.at(i, p);
          const double wq = w.at(i, q);
          alpha += wp * wp;
          beta += wq * wq;
          gamma += wp * wq;
        }
        const double denom = std::sqrt(alpha * beta);
        const double cosine = denom > 1e-300 ? std::fabs(gamma) / denom : 0.0;
        if (cosine > max_cos) max_cos = cosine;
        if (cosine <= tol) continue;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (size_t i = 0; i < m; ++i) {
          const double wp = w.at(i, p);
          const double wq = w.at(i, q);
          w.at(i, p) = c * wp - s * wq;
          w.at(i, q) = s * wp + c * wq;
        }
        for (size_t i = 0; i < n; ++i) {
          const double vp = v.at(i, p);
          const double vq = v.at(i, q);
          v.at(i, p) = c * vp - s * vq;
          v.at(i, q) = s * vp + c * vq;
        }
      }
    }
    if (max_cos <= tol) break;
    if (sweep == max_sweeps - 1 && max_cos > 1e-6 && scale > 0) {
      return Status::ComputationError("ComputeSvd: Jacobi did not converge");
    }
  }

  // Column norms are the singular values; normalised columns form U.
  std::vector<double> sigma(n);
  Matrix u(m, n);
  for (size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (size_t i = 0; i < m; ++i) norm += w.at(i, j) * w.at(i, j);
    norm = std::sqrt(norm);
    sigma[j] = norm;
    if (norm > 1e-300) {
      for (size_t i = 0; i < m; ++i) u.at(i, j) = w.at(i, j) / norm;
    }
  }

  // Sort descending.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return sigma[x] > sigma[y]; });
  Svd out;
  out.sigma.resize(n);
  out.u = Matrix(m, n);
  out.v = Matrix(n, n);
  for (size_t j = 0; j < n; ++j) {
    out.sigma[j] = sigma[order[j]];
    for (size_t i = 0; i < m; ++i) out.u.at(i, j) = u.at(i, order[j]);
    for (size_t i = 0; i < n; ++i) out.v.at(i, j) = v.at(i, order[j]);
  }
  if (transposed) std::swap(out.u, out.v);
  return out;
}

Result<Matrix> Cholesky(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky: matrix must be square");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double s = a.at(i, j);
      for (size_t k = 0; k < j; ++k) s -= l.at(i, k) * l.at(j, k);
      if (i == j) {
        if (s <= 0.0) {
          return Status::ComputationError(
              "Cholesky: matrix not positive definite");
        }
        l.at(i, j) = std::sqrt(s);
      } else {
        l.at(i, j) = s / l.at(j, j);
      }
    }
  }
  return l;
}

Result<std::vector<double>> SolveSpd(const Matrix& a,
                                     const std::vector<double>& b) {
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("SolveSpd: dimension mismatch");
  }
  MC_ASSIGN_OR_RETURN(Matrix l, Cholesky(a));
  const size_t n = b.size();
  // Forward solve L y = b.
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l.at(i, k) * y[k];
    y[i] = s / l.at(i, i);
  }
  // Backward solve L^T x = y.
  std::vector<double> x(n);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double s = y[i];
    for (size_t k = i + 1; k < n; ++k) s -= l.at(k, i) * x[k];
    x[i] = s / l.at(i, i);
  }
  return x;
}

Result<Matrix> Inverse(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Inverse: matrix must be square");
  }
  const size_t n = a.rows();
  Matrix m = a;
  Matrix inv = Matrix::Identity(n);
  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    size_t pivot = col;
    double best = std::fabs(m.at(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(m.at(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-300) {
      return Status::ComputationError("Inverse: singular matrix");
    }
    if (pivot != col) {
      for (size_t j = 0; j < n; ++j) {
        std::swap(m.at(pivot, j), m.at(col, j));
        std::swap(inv.at(pivot, j), inv.at(col, j));
      }
    }
    const double d = m.at(col, col);
    for (size_t j = 0; j < n; ++j) {
      m.at(col, j) /= d;
      inv.at(col, j) /= d;
    }
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = m.at(r, col);
      if (f == 0.0) continue;
      for (size_t j = 0; j < n; ++j) {
        m.at(r, j) -= f * m.at(col, j);
        inv.at(r, j) -= f * inv.at(col, j);
      }
    }
  }
  return inv;
}

namespace {

Result<Matrix> PowSymmetric(const Matrix& a, double power, double eps) {
  MC_ASSIGN_OR_RETURN(SymmetricEigen eig, EigenSymmetric(a));
  const size_t n = a.rows();
  std::vector<double> powered(n);
  for (size_t i = 0; i < n; ++i) {
    const double lambda = std::max(eig.values[i], eps);
    powered[i] = std::pow(lambda, power);
  }
  // V * diag(powered) * V^T
  Matrix scaled = eig.vectors;
  for (size_t j = 0; j < n; ++j) {
    for (size_t i = 0; i < n; ++i) scaled.at(i, j) *= powered[j];
  }
  return scaled * eig.vectors.Transpose();
}

}  // namespace

Result<Matrix> SqrtSymmetric(const Matrix& a, double eps) {
  return PowSymmetric(a, 0.5, eps);
}

Result<Matrix> InverseSqrtSymmetric(const Matrix& a, double eps) {
  return PowSymmetric(a, -0.5, eps);
}

Result<Qr> ComputeQr(const Matrix& a) {
  if (a.rows() < a.cols()) {
    return Status::InvalidArgument("ComputeQr: requires rows >= cols");
  }
  const size_t m = a.rows();
  const size_t n = a.cols();
  Matrix r = a;
  // Accumulate Q implicitly by applying the Householder reflectors to an
  // m x n slice of the identity at the end.
  std::vector<std::vector<double>> reflectors;
  reflectors.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    // Build Householder vector for column k, rows k..m-1.
    std::vector<double> v(m, 0.0);
    double norm = 0.0;
    for (size_t i = k; i < m; ++i) {
      v[i] = r.at(i, k);
      norm += v[i] * v[i];
    }
    norm = std::sqrt(norm);
    if (norm < 1e-300) {
      reflectors.push_back(std::vector<double>(m, 0.0));
      continue;
    }
    const double alpha = (v[k] >= 0 ? -norm : norm);
    v[k] -= alpha;
    double vnorm = 0.0;
    for (size_t i = k; i < m; ++i) vnorm += v[i] * v[i];
    vnorm = std::sqrt(vnorm);
    if (vnorm < 1e-300) {
      reflectors.push_back(std::vector<double>(m, 0.0));
      continue;
    }
    for (size_t i = k; i < m; ++i) v[i] /= vnorm;
    // Apply H = I - 2 v v^T to R (columns k..n-1).
    for (size_t j = k; j < n; ++j) {
      double dot = 0.0;
      for (size_t i = k; i < m; ++i) dot += v[i] * r.at(i, j);
      for (size_t i = k; i < m; ++i) r.at(i, j) -= 2.0 * dot * v[i];
    }
    reflectors.push_back(std::move(v));
  }
  // Build thin Q by applying reflectors in reverse to identity columns.
  Matrix q(m, n);
  for (size_t j = 0; j < n; ++j) q.at(j, j) = 1.0;
  for (size_t kk = reflectors.size(); kk > 0; --kk) {
    const std::vector<double>& v = reflectors[kk - 1];
    double vn = 0.0;
    for (double x : v) vn += x * x;
    if (vn < 1e-300) continue;
    for (size_t j = 0; j < n; ++j) {
      double dot = 0.0;
      for (size_t i = 0; i < m; ++i) dot += v[i] * q.at(i, j);
      for (size_t i = 0; i < m; ++i) q.at(i, j) -= 2.0 * dot * v[i];
    }
  }
  Qr out;
  out.q = std::move(q);
  out.r = Matrix(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) out.r.at(i, j) = r.at(i, j);
  }
  return out;
}

}  // namespace multiclust
