#ifndef MULTICLUST_LINALG_KERNELS_H_
#define MULTICLUST_LINALG_KERNELS_H_

/// Vectorized numeric kernels for the distance-dominated hot paths.
///
/// Two instantiations of the same templated bodies (kernel_impl.h):
///   multiclust::kernels::*      fast path — whatever backend the build
///                               selected (AVX2 / NEON / scalar emulation)
///   multiclust::kernels::ref::* always the scalar-emulation backend,
///                               compiled with vectorization disabled
///
/// The ref namespace is the in-process oracle for what a
/// -DMULTICLUST_SIMD=OFF build computes: tests assert bitwise equality
/// fast-vs-ref, and the micro benchmarks report ref-vs-fast as the
/// scalar-vs-SIMD speedup. See simd.h for the lane-model/determinism
/// contract that makes bitwise equality achievable.
///
/// All pointers are to contiguous, arbitrarily-aligned data (loads are
/// unaligned); matrix arguments are row-major.

#include <cstddef>
#include <string>

namespace multiclust {
namespace kernels {

/// Compile-time + runtime SIMD configuration, for bench envelopes and logs.
struct SimdInfo {
  std::string backend;   ///< "avx2" | "neon" | "scalar"
  bool compiled_simd;    ///< MULTICLUST_SIMD was ON at build time
  int double_lanes;      ///< always 4 (lane model, not hardware width)
  int float_lanes;       ///< always 8
};

/// Backend the fast instantiation was compiled with.
SimdInfo Info();

/// Best vector ISA the *CPU* supports at runtime ("avx512f", "avx2",
/// "sse2", "neon", or "unknown") — may exceed what the build uses.
std::string RuntimeIsa();

// --- f64 reductions (fixed 4-lane model; see simd.h). ---
double Dot(const double* a, const double* b, size_t n);
double Sum(const double* x, size_t n);
double SquaredNorm(const double* x, size_t n);
double SquaredDistance(const double* a, const double* b, size_t n);
/// sum_j (x[j]-mean[j])^2 / var[j] (diagonal Gaussian quadratic form).
double QuadDiag(const double* x, const double* mean, const double* var,
                size_t n);

// --- f64 elementwise (bit-identical to plain scalar loops). ---
void Add(double* acc, const double* x, size_t n);          ///< acc += x
void Axpy(double alpha, const double* x, double* y, size_t n);  ///< y += a*x
/// y[j] += alpha * (x[j] - m[j])
void AxpyDiff(double alpha, const double* x, const double* m, double* y,
              size_t n);
/// y[j] += alpha * (x[j] - m[j])^2
void AxpySqDiff(double alpha, const double* x, const double* m, double* y,
                size_t n);
/// out[j] = ((row[j] - rm_i) - rm[j]) + total  (HSIC double-centering)
void CenterRow(const double* row, double rm_i, const double* rm, double total,
               double* out, size_t n);

// --- fused / composite. ---
/// out[j] = exp(-gamma * ||x - rows_j||^2), rows_j = rows + j*d.
void GaussianRow(const double* x, const double* rows, size_t count, size_t d,
                 double gamma, double* out);
/// argmin_c ||x - centers_c||^2, ties -> lowest index.
int NearestSquared(const double* x, const double* centers, size_t k, size_t d);
/// argmin_c x_norm - 2*x.center_c + center_norms[c], ties -> lowest index.
int NearestNormForm(const double* x, const double* centers, size_t k, size_t d,
                    double x_norm, const double* center_norms);
/// Cache-blocked row-major GEMM for rows [row_begin, row_end):
/// c[i,:] = a[i,:] * b. c rows must be zeroed. a is (?,acols), b is
/// (acols,bcols). Result is independent of the internal block sizes.
void GemmRows(const double* a, size_t acols, const double* b, size_t bcols,
              double* c, size_t row_begin, size_t row_end);

// --- f32 kernels (fixed 8-lane model; opt-in distance path). ---
float DotF(const float* a, const float* b, size_t n);
float SquaredNormF(const float* x, size_t n);
float SquaredDistanceF(const float* a, const float* b, size_t n);
int NearestSquaredF(const float* x, const float* centers, size_t k, size_t d);

/// Always-scalar reference instantiation of every kernel above
/// (identical signatures, forced scalar backend, no autovectorization).
namespace ref {
double Dot(const double* a, const double* b, size_t n);
double Sum(const double* x, size_t n);
double SquaredNorm(const double* x, size_t n);
double SquaredDistance(const double* a, const double* b, size_t n);
double QuadDiag(const double* x, const double* mean, const double* var,
                size_t n);
void Add(double* acc, const double* x, size_t n);
void Axpy(double alpha, const double* x, double* y, size_t n);
void AxpyDiff(double alpha, const double* x, const double* m, double* y,
              size_t n);
void AxpySqDiff(double alpha, const double* x, const double* m, double* y,
                size_t n);
void CenterRow(const double* row, double rm_i, const double* rm, double total,
               double* out, size_t n);
void GaussianRow(const double* x, const double* rows, size_t count, size_t d,
                 double gamma, double* out);
int NearestSquared(const double* x, const double* centers, size_t k, size_t d);
int NearestNormForm(const double* x, const double* centers, size_t k, size_t d,
                    double x_norm, const double* center_norms);
void GemmRows(const double* a, size_t acols, const double* b, size_t bcols,
              double* c, size_t row_begin, size_t row_end);
float DotF(const float* a, const float* b, size_t n);
float SquaredNormF(const float* x, size_t n);
float SquaredDistanceF(const float* x, const float* b, size_t n);
int NearestSquaredF(const float* x, const float* centers, size_t k, size_t d);
}  // namespace ref

}  // namespace kernels
}  // namespace multiclust

#endif  // MULTICLUST_LINALG_KERNELS_H_
