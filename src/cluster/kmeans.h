#ifndef MULTICLUST_CLUSTER_KMEANS_H_
#define MULTICLUST_CLUSTER_KMEANS_H_

#include <cstdint>
#include <string>

#include "cluster/clustering.h"
#include "common/result.h"
#include "common/runguard.h"

namespace multiclust {

/// Options for Lloyd's k-means.
struct KMeansOptions {
  size_t k = 2;
  size_t max_iters = 100;
  /// Independent restarts; the run with the lowest SSE wins.
  size_t restarts = 1;
  /// k-means++ seeding (true) or uniform random centers (false).
  bool plus_plus_init = true;
  /// Convergence threshold on centre movement (max abs coordinate change).
  double tol = 1e-6;
  uint64_t seed = 1;
  /// Opt-in low-precision distance path: the assignment step and the
  /// k-means++ D² scans run in float32 (plain squared-distance form — the
  /// norm form cancels catastrophically in f32), roughly doubling SIMD
  /// throughput; centre updates, SSE and the reported objective stay
  /// float64. Labels may differ from the float64 path when distances are
  /// within f32 rounding of each other; results remain deterministic
  /// across thread counts and SIMD backends for a fixed setting.
  bool assign_float32 = false;
  /// Wall-clock / iteration / cancellation limits (see common/runguard.h).
  /// Unlimited by default. On deadline or iteration-cap expiry the best
  /// result so far is returned with `converged = false`.
  RunBudget budget;
  /// Optional observability sink (not owned; may outlive the call). When
  /// set, the run fills it with iterations/convergence/stop-reason info
  /// and a per-outer-iteration ConvergenceTrace (per-iteration SSE, max
  /// centre shift, empty-cluster reseeds). Costs one extra SSE reduction
  /// per iteration; the default nullptr records nothing and costs nothing.
  RunDiagnostics* diagnostics = nullptr;
};

/// Runs k-means on the rows of `data`. The returned Clustering carries the
/// final centroids and `quality` = SSE (lower is better).
Result<Clustering> RunKMeans(const Matrix& data, const KMeansOptions& options);

/// `Clusterer` adapter so k-means can be plugged into the flexible-model
/// algorithms (meta clustering, orthogonal transformations, ...).
class KMeansClusterer : public Clusterer {
 public:
  explicit KMeansClusterer(KMeansOptions options) : options_(options) {}

  Result<Clustering> Cluster(const Matrix& data) override {
    return RunKMeans(data, options_);
  }
  std::string name() const override { return "kmeans"; }

  KMeansOptions& options() { return options_; }

 private:
  KMeansOptions options_;
};

}  // namespace multiclust

#endif  // MULTICLUST_CLUSTER_KMEANS_H_
