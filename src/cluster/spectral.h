#ifndef MULTICLUST_CLUSTER_SPECTRAL_H_
#define MULTICLUST_CLUSTER_SPECTRAL_H_

#include <cstdint>
#include <string>

#include "cluster/clustering.h"
#include "common/result.h"
#include "common/runguard.h"

namespace multiclust {

/// Options for Ng-Jordan-Weiss spectral clustering.
struct SpectralOptions {
  size_t k = 2;
  /// RBF affinity parameter; <= 0 selects the median heuristic.
  double gamma = 0.0;
  /// k-means settings for the embedded space.
  size_t kmeans_restarts = 5;
  uint64_t seed = 1;
  /// Wall-clock / cancellation limits. Checked between the affinity,
  /// eigendecomposition and embedded-k-means phases; the remaining
  /// deadline is forwarded to the embedded k-means.
  RunBudget budget;
  /// Optional observability sink (not owned): the embedded k-means fills
  /// the per-iteration ConvergenceTrace; the algorithm name is reported
  /// as "spectral". nullptr (the default) records nothing.
  RunDiagnostics* diagnostics = nullptr;
};

/// Spectral clustering (Ng, Jordan & Weiss 2001): Gaussian affinity,
/// normalised Laplacian, top-k eigenvector embedding (via the in-house
/// Jacobi eigensolver), row normalisation, k-means. The base method of the
/// mSC multiple-views approach referenced by the tutorial (slide 90).
/// O(n^3); intended for n up to a few hundred.
Result<Clustering> RunSpectral(const Matrix& data,
                               const SpectralOptions& options);

/// `Clusterer` adapter.
class SpectralClusterer : public Clusterer {
 public:
  explicit SpectralClusterer(SpectralOptions options) : options_(options) {}

  Result<Clustering> Cluster(const Matrix& data) override {
    return RunSpectral(data, options_);
  }
  std::string name() const override { return "spectral"; }

 private:
  SpectralOptions options_;
};

}  // namespace multiclust

#endif  // MULTICLUST_CLUSTER_SPECTRAL_H_
