#ifndef MULTICLUST_CLUSTER_GMM_H_
#define MULTICLUST_CLUSTER_GMM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/clustering.h"
#include "common/result.h"
#include "common/runguard.h"
#include "linalg/matrix.h"

namespace multiclust {

/// Covariance structure of mixture components.
enum class CovarianceType {
  kSpherical,  ///< sigma^2 * I
  kDiagonal,   ///< diag(sigma_1^2 .. sigma_d^2)
};

/// One Gaussian mixture component.
struct GmmComponent {
  double weight = 0.0;
  std::vector<double> mean;
  /// Per-dimension variances; length 1 for spherical components.
  std::vector<double> variances;

  /// Log density log N(x | mean, variances).
  double LogDensity(const std::vector<double>& x) const;
  /// Pointer form for hot paths (`x` has mean.size() values); avoids the
  /// per-row vector copies of the E-step. `logdet` is sum_j log var_j,
  /// precomputed once per component per sweep (see PrecomputeLogDet).
  double LogDensity(const double* x, double logdet) const;
  /// sum_j log var_j for this component (d * log var when spherical).
  double PrecomputeLogDet(size_t d) const;
};

/// A fitted Gaussian mixture model. Reused by CAMI and co-EM, which run
/// customised EM loops over the same representation.
struct GmmModel {
  std::vector<GmmComponent> components;
  double log_likelihood = 0.0;
  /// EM iterations of the winning restart and whether its relative
  /// log-likelihood change dropped below tol before any cap stopped it.
  size_t iterations = 0;
  bool converged = false;

  size_t k() const { return components.size(); }

  /// Posterior responsibilities p(c | x) for one point.
  std::vector<double> Responsibilities(const std::vector<double>& x) const;

  /// Log p(x) under the mixture.
  double LogDensity(const std::vector<double>& x) const;

  /// Hard assignment: argmax_c p(c | x) per row of data.
  std::vector<int> HardAssign(const Matrix& data) const;

  /// Total data log-likelihood sum_i log p(x_i).
  double TotalLogLikelihood(const Matrix& data) const;
};

/// Options for EM fitting.
struct GmmOptions {
  size_t k = 2;
  size_t max_iters = 200;
  size_t restarts = 1;
  double tol = 1e-6;           ///< relative log-likelihood change
  double variance_floor = 1e-6;
  CovarianceType covariance = CovarianceType::kDiagonal;
  uint64_t seed = 1;
  /// Wall-clock / iteration / cancellation limits (see common/runguard.h).
  RunBudget budget;
  /// Optional observability sink (not owned): per-outer-iteration
  /// ConvergenceTrace (log-likelihood, log-likelihood change, dead
  /// components) plus iterations/convergence/stop-reason. nullptr (the
  /// default) records nothing and costs nothing.
  RunDiagnostics* diagnostics = nullptr;
};

/// Fits a GMM by EM (k-means++ initialisation). Returns the best restart by
/// final log-likelihood.
Result<GmmModel> FitGmm(const Matrix& data, const GmmOptions& options);

/// Runs EM and converts the fitted model into a hard Clustering
/// (`quality` = total log-likelihood, higher is better).
Result<Clustering> RunGmm(const Matrix& data, const GmmOptions& options);

/// One EM iteration (E-step + M-step) of `model` on `data`, in place.
/// Exposed so co-EM and CAMI can interleave custom steps. Returns the
/// log-likelihood *before* the update.
Result<double> EmStep(const Matrix& data, double variance_floor,
                      GmmModel* model);

/// Recomputes the M-step from fixed responsibilities (rows = objects,
/// cols = components); used by co-EM's cross-view bootstrap.
Status MStepFromResponsibilities(const Matrix& data,
                                 const Matrix& responsibilities,
                                 double variance_floor, GmmModel* model);

/// Initialises a k-component diagonal GMM from data (k-means++ style means,
/// global variances, uniform weights).
Result<GmmModel> InitGmm(const Matrix& data, size_t k, CovarianceType cov,
                         uint64_t seed);

namespace json {
class Writer;
class Value;
}  // namespace json

/// Bit-exact checkpoint (de)serialization of a GmmModel (weights, means,
/// variances, iteration bookkeeping) — shared by the GMM and co-EM
/// checkpoint payloads.
void WriteGmmModelCkpt(json::Writer* w, const GmmModel& model);
Result<GmmModel> ReadGmmModelCkpt(const json::Value& v);

/// `Clusterer` adapter.
class GmmClusterer : public Clusterer {
 public:
  explicit GmmClusterer(GmmOptions options) : options_(options) {}

  Result<Clustering> Cluster(const Matrix& data) override {
    return RunGmm(data, options_);
  }
  std::string name() const override { return "gmm-em"; }

 private:
  GmmOptions options_;
};

}  // namespace multiclust

#endif  // MULTICLUST_CLUSTER_GMM_H_
