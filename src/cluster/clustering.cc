#include "cluster/clustering.h"

#include "linalg/kernels.h"
#include "stats/contingency.h"

namespace multiclust {

size_t Clustering::NumClusters() const {
  std::vector<int> dense;
  return DenseRelabel(labels, &dense);
}

std::vector<std::vector<int>> Clustering::ClusterMembers() const {
  std::vector<int> dense;
  const size_t k = DenseRelabel(labels, &dense);
  std::vector<std::vector<int>> members(k);
  for (size_t i = 0; i < dense.size(); ++i) {
    if (dense[i] >= 0) members[dense[i]].push_back(static_cast<int>(i));
  }
  return members;
}

void Clustering::Canonicalize() {
  std::vector<int> dense;
  DenseRelabel(labels, &dense);
  labels = std::move(dense);
}

std::vector<int> AssignToNearest(const Matrix& data, const Matrix& centers) {
  std::vector<int> labels(data.rows(), -1);
  if (centers.rows() == 0) return labels;
  const double* centers_flat = centers.row_data(0);
  for (size_t i = 0; i < data.rows(); ++i) {
    labels[i] = kernels::NearestSquared(data.row_data(i), centers_flat,
                                        centers.rows(), data.cols());
  }
  return labels;
}

}  // namespace multiclust
