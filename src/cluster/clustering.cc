#include "cluster/clustering.h"

#include <limits>

#include "stats/contingency.h"

namespace multiclust {

size_t Clustering::NumClusters() const {
  std::vector<int> dense;
  return DenseRelabel(labels, &dense);
}

std::vector<std::vector<int>> Clustering::ClusterMembers() const {
  std::vector<int> dense;
  const size_t k = DenseRelabel(labels, &dense);
  std::vector<std::vector<int>> members(k);
  for (size_t i = 0; i < dense.size(); ++i) {
    if (dense[i] >= 0) members[dense[i]].push_back(static_cast<int>(i));
  }
  return members;
}

void Clustering::Canonicalize() {
  std::vector<int> dense;
  DenseRelabel(labels, &dense);
  labels = std::move(dense);
}

std::vector<int> AssignToNearest(const Matrix& data, const Matrix& centers) {
  std::vector<int> labels(data.rows(), -1);
  if (centers.rows() == 0) return labels;
  for (size_t i = 0; i < data.rows(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    int best_c = 0;
    const double* row = data.row_data(i);
    for (size_t c = 0; c < centers.rows(); ++c) {
      const double* ctr = centers.row_data(c);
      double s = 0.0;
      for (size_t j = 0; j < data.cols(); ++j) {
        const double d = row[j] - ctr[j];
        s += d * d;
      }
      if (s < best) {
        best = s;
        best_c = static_cast<int>(c);
      }
    }
    labels[i] = best_c;
  }
  return labels;
}

}  // namespace multiclust
