#include "cluster/kmeans.h"

#include <cmath>
#include <limits>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/trace.h"

namespace multiclust {

namespace {

// Squared distance from row i of data to row c of centers.
double RowCenterDist2(const Matrix& data, size_t i, const Matrix& centers,
                      size_t c) {
  const double* row = data.row_data(i);
  const double* ctr = centers.row_data(c);
  double s = 0.0;
  for (size_t j = 0; j < data.cols(); ++j) {
    const double d = row[j] - ctr[j];
    s += d * d;
  }
  return s;
}

// Per-row squared norms ||x_i||^2 (for the norm-form assignment step).
std::vector<double> RowSquaredNorms(const Matrix& m) {
  std::vector<double> norms(m.rows());
  ParallelFor(0, m.rows(), 1024, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const double* row = m.row_data(i);
      double s = 0.0;
      for (size_t j = 0; j < m.cols(); ++j) s += row[j] * row[j];
      norms[i] = s;
    }
  });
  return norms;
}

// Exact-form SSE via deterministic chunked reduction (fixed grain), so the
// objective is bit-identical for any thread count.
double SseOf(const Matrix& data, const Matrix& centers,
             const std::vector<int>& labels) {
  return ParallelReduce(
      0, data.rows(), 1024, 0.0,
      [&](size_t lo, size_t hi) {
        double s = 0.0;
        for (size_t i = lo; i < hi; ++i) {
          s += RowCenterDist2(data, i, centers, labels[i]);
        }
        return s;
      },
      [](double a, double b) { return a + b; });
}

Matrix InitCenters(const Matrix& data, size_t k, bool plus_plus, Rng* rng) {
  MULTICLUST_TRACE_SPAN("cluster.kmeans.init");
  const size_t n = data.rows();
  Matrix centers(k, data.cols());
  if (!plus_plus) {
    const std::vector<size_t> picks = rng->SampleWithoutReplacement(n, k);
    for (size_t c = 0; c < k; ++c) centers.CopyRowFrom(data, picks[c], c);
    return centers;
  }
  // k-means++: first centre uniform, then proportional to D^2. The D^2
  // updates against the latest centre are independent per point, so they
  // parallelize without affecting the sampled sequence.
  centers.CopyRowFrom(data, rng->NextIndex(n), 0);
  std::vector<double> d2(n, std::numeric_limits<double>::infinity());
  for (size_t c = 1; c < k; ++c) {
    ParallelFor(0, n, 512, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        d2[i] = std::min(d2[i], RowCenterDist2(data, i, centers, c - 1));
      }
    });
    centers.CopyRowFrom(data, rng->Categorical(d2), c);
  }
  return centers;
}

struct LloydResult {
  std::vector<int> labels;
  Matrix centers;
  double sse = 0.0;
  size_t iterations = 0;
  bool converged = false;
};

Result<LloydResult> RunLloyd(const Matrix& data, size_t k, size_t max_iters,
                             double tol, bool plus_plus, Rng* rng,
                             BudgetTracker* guard, size_t restart,
                             ConvergenceRecorder* recorder) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  LloydResult r;
  r.centers = InitCenters(data, k, plus_plus, rng);
  r.labels.assign(n, 0);
  const std::vector<double> x_norms = RowSquaredNorms(data);

  for (size_t iter = 0; iter < max_iters; ++iter) {
    if (guard->Cancelled()) return guard->CancelledStatus();
    if (guard->ShouldStop(iter)) break;
    MC_METRIC_COUNT("cluster.kmeans.iterations", 1);
    {
      MULTICLUST_TRACE_SPAN("cluster.kmeans.assign");
      // Assignment step in the norm form ||x||^2 - 2 x.c + ||c||^2: the
      // inner loop is a plain dot product. Labels are written per point,
      // so the step is bit-identical for any thread count.
      const std::vector<double> c_norms = RowSquaredNorms(r.centers);
      ParallelFor(0, n, 256, [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          const double* row = data.row_data(i);
          double best = std::numeric_limits<double>::infinity();
          int best_c = 0;
          for (size_t c = 0; c < k; ++c) {
            const double* ctr = r.centers.row_data(c);
            double dot = 0.0;
            for (size_t j = 0; j < d; ++j) dot += row[j] * ctr[j];
            const double dist = x_norms[i] - 2.0 * dot + c_norms[c];
            if (dist < best) {
              best = dist;
              best_c = static_cast<int>(c);
            }
          }
          r.labels[i] = best_c;
        }
      });
    }
    // Update step.
    MULTICLUST_TRACE_SPAN("cluster.kmeans.update");
    Matrix next(k, d);
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      ++counts[r.labels[i]];
      const double* row = data.row_data(i);
      double* ctr = next.row_data(r.labels[i]);
      for (size_t j = 0; j < d; ++j) ctr[j] += row[j];
    }
    size_t reseeds = 0;
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random object.
        next.CopyRowFrom(data, rng->NextIndex(n), c);
        ++reseeds;
        continue;
      }
      double* ctr = next.row_data(c);
      for (size_t j = 0; j < d; ++j) ctr[j] /= static_cast<double>(counts[c]);
    }
    if (reseeds > 0) MC_METRIC_COUNT("cluster.kmeans.reseeds", reseeds);
    if (MC_FAULT_FIRES("kmeans", FaultKind::kInjectNaN, iter)) {
      next.at(0, 0) = std::numeric_limits<double>::quiet_NaN();
    }
    const double shift = next.MaxAbsDiff(r.centers);
    r.centers = std::move(next);
    r.iterations = iter + 1;
    if (!std::isfinite(shift)) {
      return Status::ComputationError(
          "k-means: non-finite centre shift at iteration " +
          std::to_string(iter));
    }
    if (recorder->enabled()) {
      recorder->Record(restart, iter, SseOf(data, r.centers, r.labels),
                       shift, reseeds);
    }
    if (shift <= tol &&
        !MC_FAULT_FIRES("kmeans", FaultKind::kForceNonConvergence, iter)) {
      r.converged = true;
      break;
    }
  }

  r.sse = SseOf(data, r.centers, r.labels);
  return r;
}

}  // namespace

Result<Clustering> RunKMeans(const Matrix& data,
                             const KMeansOptions& options) {
  if (options.k == 0) return Status::InvalidArgument("k-means: k must be > 0");
  if (data.rows() < options.k) {
    return Status::InvalidArgument("k-means: fewer objects than clusters");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("k-means", data));
  MULTICLUST_TRACE_SPAN("cluster.kmeans.run");
  BudgetTracker guard(options.budget, "kmeans");
  ConvergenceRecorder recorder(options.diagnostics, &guard);
  Rng rng(options.seed);
  LloydResult best;
  best.sse = std::numeric_limits<double>::infinity();
  bool have_best = false;
  Status last_error = Status::OK();
  const size_t restarts = options.restarts == 0 ? 1 : options.restarts;
  for (size_t r = 0; r < restarts; ++r) {
    Rng child = rng.Split();
    if (r > 0 && guard.DeadlineExpired()) break;
    MC_METRIC_COUNT("cluster.kmeans.restarts", 1);
    Result<LloydResult> run =
        RunLloyd(data, options.k, options.max_iters, options.tol,
                 options.plus_plus_init, &child, &guard, r, &recorder);
    if (!run.ok()) {
      // Cancellation aborts the whole call; a numerically degenerate
      // restart is skipped — the remaining restarts still compete.
      if (run.status().code() == StatusCode::kCancelled) return run.status();
      last_error = run.status();
      continue;
    }
    if (!have_best || run->sse < best.sse) {
      best = std::move(*run);
      have_best = true;
      recorder.SetWinner(r);
    }
  }
  if (!have_best) return last_error;
  recorder.Finish("kmeans", best.iterations, best.converged);
  Clustering c;
  c.labels = std::move(best.labels);
  c.centroids = std::move(best.centers);
  c.quality = best.sse;
  c.algorithm = "kmeans";
  c.iterations = best.iterations;
  c.converged = best.converged;
  return c;
}

}  // namespace multiclust
