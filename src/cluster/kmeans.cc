#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <utility>

#include "common/checkpoint.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/profile.h"
#include "common/rng.h"
#include "common/trace.h"
#include "linalg/kernels.h"

namespace multiclust {

namespace {

// Squared distance from row i of data to row c of centers.
double RowCenterDist2(const Matrix& data, size_t i, const Matrix& centers,
                      size_t c) {
  return kernels::SquaredDistance(data.row_data(i), centers.row_data(c),
                                  data.cols());
}

// Per-row squared norms ||x_i||^2 (for the norm-form assignment step).
std::vector<double> RowSquaredNorms(const Matrix& m) {
  std::vector<double> norms(m.rows());
  ParallelFor(0, m.rows(), 1024, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      norms[i] = kernels::SquaredNorm(m.row_data(i), m.cols());
    }
  });
  return norms;
}

// Row-major float32 copy of a matrix (the opt-in low-precision path).
std::vector<float> ToFloat32(const Matrix& m) {
  std::vector<float> out(m.rows() * m.cols());
  const double* src = m.row_data(0);
  for (size_t i = 0; i < out.size(); ++i) out[i] = static_cast<float>(src[i]);
  return out;
}

// Exact-form SSE via deterministic chunked reduction (fixed grain), so the
// objective is bit-identical for any thread count.
double SseOf(const Matrix& data, const Matrix& centers,
             const std::vector<int>& labels) {
  return ParallelReduce(
      0, data.rows(), 1024, 0.0,
      [&](size_t lo, size_t hi) {
        double s = 0.0;
        for (size_t i = lo; i < hi; ++i) {
          s += RowCenterDist2(data, i, centers, labels[i]);
        }
        return s;
      },
      [](double a, double b) { return a + b; });
}

// `data_f32` is non-null on the opt-in float32 path: the D^2 scans then
// run in f32 against an f32 copy of the latest centre (the sampled
// sequence depends on the precision, but stays deterministic for a fixed
// setting).
Matrix InitCenters(const Matrix& data, size_t k, bool plus_plus, Rng* rng,
                   const std::vector<float>* data_f32) {
  MULTICLUST_TRACE_SPAN("cluster.kmeans.init");
  const size_t n = data.rows();
  const size_t d = data.cols();
  Matrix centers(k, d);
  if (!plus_plus) {
    const std::vector<size_t> picks = rng->SampleWithoutReplacement(n, k);
    for (size_t c = 0; c < k; ++c) centers.CopyRowFrom(data, picks[c], c);
    return centers;
  }
  // k-means++: first centre uniform, then proportional to D^2. The D^2
  // updates against the latest centre are independent per point, so they
  // parallelize without affecting the sampled sequence.
  centers.CopyRowFrom(data, rng->NextIndex(n), 0);
  std::vector<double> d2(n, std::numeric_limits<double>::infinity());
  std::vector<float> ctr_f32(data_f32 != nullptr ? d : 0);
  for (size_t c = 1; c < k; ++c) {
    if (data_f32 != nullptr) {
      const double* ctr = centers.row_data(c - 1);
      for (size_t j = 0; j < d; ++j) ctr_f32[j] = static_cast<float>(ctr[j]);
    }
    ParallelFor(0, n, 512, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        const double dist =
            data_f32 != nullptr
                ? static_cast<double>(kernels::SquaredDistanceF(
                      data_f32->data() + i * d, ctr_f32.data(), d))
                : RowCenterDist2(data, i, centers, c - 1);
        d2[i] = std::min(d2[i], dist);
      }
    });
    centers.CopyRowFrom(data, rng->Categorical(d2), c);
  }
  return centers;
}

struct LloydResult {
  std::vector<int> labels;
  Matrix centers;
  double sse = 0.0;
  size_t iterations = 0;
  bool converged = false;
};

/// Mid-restart resume state: continue the Lloyd loop of one restart from a
/// checkpointed iteration boundary instead of (re)initialising centres.
struct LloydSeed {
  size_t start_iter = 0;
  Matrix centers;
  std::vector<int> labels;
};

/// Called at the end of every non-final outer iteration (and on the
/// cancellation path with `flush` set) so RunKMeans can persist the full
/// run state. `next_iter` is the iteration a resumed run executes next.
using LloydPersistFn = std::function<Status(size_t next_iter,
                                            const LloydResult& current,
                                            const Rng& child, bool flush)>;

Result<LloydResult> RunLloyd(const Matrix& data, size_t k, size_t max_iters,
                             double tol, bool plus_plus, Rng* rng,
                             BudgetTracker* guard, size_t restart,
                             ConvergenceRecorder* recorder,
                             const LloydSeed* resume,
                             const LloydPersistFn& persist,
                             const std::vector<float>* data_f32) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  LloydResult r;
  size_t start_iter = 0;
  if (resume != nullptr) {
    r.centers = resume->centers;
    r.labels = resume->labels;
    start_iter = resume->start_iter;
    r.iterations = start_iter;
  } else {
    r.centers = InitCenters(data, k, plus_plus, rng, data_f32);
    r.labels.assign(n, 0);
  }
  const std::vector<double> x_norms =
      data_f32 != nullptr ? std::vector<double>() : RowSquaredNorms(data);

  for (size_t iter = start_iter; iter < max_iters; ++iter) {
    if (guard->Cancelled()) {
      if (persist) persist(iter, r, *rng, /*flush=*/true);
      return guard->CancelledStatus();
    }
    if (guard->ShouldStop(iter)) break;
    MC_METRIC_COUNT("cluster.kmeans.iterations", 1);
    if (data_f32 != nullptr) {
      MULTICLUST_TRACE_SPAN("cluster.kmeans.assign");
      // Opt-in float32 assignment: plain squared-distance form (the norm
      // form cancels catastrophically in f32). Labels are written per
      // point, so the step is bit-identical for any thread count.
      const std::vector<float> centers_f32 = ToFloat32(r.centers);
      ParallelFor(0, n, 256, [&](size_t lo, size_t hi) {
        // Telemetry FLOP tally per chunk (never per point): 3 flops per
        // element of the k x d distance scan over hi - lo points.
        telemetry::CountFlops(3 * (hi - lo) * k * d,
                              (hi - lo) * d * sizeof(float));
        for (size_t i = lo; i < hi; ++i) {
          r.labels[i] = kernels::NearestSquaredF(
              data_f32->data() + i * d, centers_f32.data(), k, d);
        }
      });
    } else {
      MULTICLUST_TRACE_SPAN("cluster.kmeans.assign");
      // Assignment step in the norm form ||x||^2 - 2 x.c + ||c||^2: the
      // inner loop is a plain dot product. Labels are written per point,
      // so the step is bit-identical for any thread count.
      const std::vector<double> c_norms = RowSquaredNorms(r.centers);
      const double* centers_flat = r.centers.row_data(0);
      ParallelFor(0, n, 256, [&](size_t lo, size_t hi) {
        // Telemetry FLOP tally per chunk (never per point): the norm-form
        // scan is a k x d dot product (2 flops/element) per point.
        telemetry::CountFlops(2 * (hi - lo) * k * d,
                              (hi - lo) * d * sizeof(double));
        for (size_t i = lo; i < hi; ++i) {
          r.labels[i] =
              kernels::NearestNormForm(data.row_data(i), centers_flat, k, d,
                                       x_norms[i], c_norms.data());
        }
      });
    }
    // Update step (always float64, also on the float32 assignment path).
    MULTICLUST_TRACE_SPAN("cluster.kmeans.update");
    Matrix next(k, d);
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      ++counts[r.labels[i]];
      kernels::Add(next.row_data(r.labels[i]), data.row_data(i), d);
    }
    size_t reseeds = 0;
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at a random object.
        next.CopyRowFrom(data, rng->NextIndex(n), c);
        ++reseeds;
        continue;
      }
      double* ctr = next.row_data(c);
      for (size_t j = 0; j < d; ++j) ctr[j] /= static_cast<double>(counts[c]);
    }
    if (reseeds > 0) MC_METRIC_COUNT("cluster.kmeans.reseeds", reseeds);
    if (MC_FAULT_FIRES("kmeans", FaultKind::kInjectNaN, iter)) {
      next.at(0, 0) = std::numeric_limits<double>::quiet_NaN();
    }
    if (MC_FAULT_FIRES("kmeans", FaultKind::kAllocFail, iter)) {
      return Status::ComputationError(
          "k-means: injected allocation failure growing the centre matrix "
          "at iteration " + std::to_string(iter));
    }
    const double shift = next.MaxAbsDiff(r.centers);
    r.centers = std::move(next);
    r.iterations = iter + 1;
    if (!std::isfinite(shift)) {
      return Status::ComputationError(
          "k-means: non-finite centre shift at iteration " +
          std::to_string(iter));
    }
    if (recorder->enabled()) {
      recorder->Record(restart, iter, SseOf(data, r.centers, r.labels),
                       shift, reseeds);
    }
    if (shift <= tol &&
        !MC_FAULT_FIRES("kmeans", FaultKind::kForceNonConvergence, iter)) {
      r.converged = true;
      break;
    }
    // Persistence point: this restart continues, so a resumed run picks up
    // at iter + 1. The restart-boundary snapshot in RunKMeans covers the
    // converged/exhausted exits.
    if (persist) {
      MC_RETURN_IF_ERROR(persist(iter + 1, r, *rng, /*flush=*/false));
    }
  }

  r.sse = SseOf(data, r.centers, r.labels);
  return r;
}

// Shared checkpoint state of one RunKMeans invocation: everything outside
// the Lloyd loop that shapes the remaining computation.
struct KMeansCkptState {
  size_t step = 0;          ///< monotonic persistence-point counter
  size_t restart = 0;       ///< restart to run (or resume) next
  Rng outer_rng;            ///< stream position after this restart's Split
  size_t winner = 0;
  bool have_best = false;
  LloydResult best;
  Status last_error = Status::OK();
  ConvergenceTrace trace;
  bool mid_restart = false;  ///< payload carries LloydSeed + child rng
  Rng child_rng;
  LloydSeed seed;
};

void WriteKMeansPayload(json::Writer* w, const KMeansCkptState& s) {
  w->BeginObject();
  w->Key("step");
  w->Uint(s.step);
  w->Key("restart");
  w->Uint(s.restart);
  w->Key("outer_rng");
  ckpt::WriteRng(w, s.outer_rng);
  w->Key("winner");
  w->Uint(s.winner);
  w->Key("have_best");
  w->Bool(s.have_best);
  if (s.have_best) {
    w->Key("best_labels");
    ckpt::WriteIntVector(w, s.best.labels);
    w->Key("best_centers");
    ckpt::WriteMatrix(w, s.best.centers);
    w->Key("best_sse");
    w->Double(s.best.sse);
    w->Key("best_iterations");
    w->Uint(s.best.iterations);
    w->Key("best_converged");
    w->Bool(s.best.converged);
  }
  w->Key("last_error");
  ckpt::WriteStatus(w, s.last_error);
  w->Key("trace");
  ckpt::WriteTrace(w, s.trace);
  w->Key("mid_restart");
  w->Bool(s.mid_restart);
  if (s.mid_restart) {
    w->Key("child_rng");
    ckpt::WriteRng(w, s.child_rng);
    w->Key("next_iter");
    w->Uint(s.seed.start_iter);
    w->Key("centers");
    ckpt::WriteMatrix(w, s.seed.centers);
    w->Key("labels");
    ckpt::WriteIntVector(w, s.seed.labels);
  }
  w->EndObject();
}

Status ReadKMeansPayload(const json::Value& v, KMeansCkptState* s) {
  MC_ASSIGN_OR_RETURN(s->step, ckpt::SizeField(v, "step"));
  MC_ASSIGN_OR_RETURN(s->restart, ckpt::SizeField(v, "restart"));
  MC_ASSIGN_OR_RETURN(const json::Value* outer, ckpt::Field(v, "outer_rng"));
  MC_ASSIGN_OR_RETURN(s->outer_rng, ckpt::ReadRng(*outer));
  MC_ASSIGN_OR_RETURN(s->winner, ckpt::SizeField(v, "winner"));
  MC_ASSIGN_OR_RETURN(s->have_best, ckpt::BoolField(v, "have_best"));
  if (s->have_best) {
    MC_ASSIGN_OR_RETURN(const json::Value* bl, ckpt::Field(v, "best_labels"));
    MC_ASSIGN_OR_RETURN(s->best.labels, ckpt::ReadIntVector(*bl));
    MC_ASSIGN_OR_RETURN(const json::Value* bc, ckpt::Field(v, "best_centers"));
    MC_ASSIGN_OR_RETURN(s->best.centers, ckpt::ReadMatrix(*bc));
    MC_ASSIGN_OR_RETURN(s->best.sse, ckpt::NumberField(v, "best_sse"));
    MC_ASSIGN_OR_RETURN(s->best.iterations,
                        ckpt::SizeField(v, "best_iterations"));
    MC_ASSIGN_OR_RETURN(s->best.converged,
                        ckpt::BoolField(v, "best_converged"));
  }
  MC_ASSIGN_OR_RETURN(const json::Value* err, ckpt::Field(v, "last_error"));
  MC_RETURN_IF_ERROR(ckpt::ReadStatus(*err, &s->last_error));
  MC_ASSIGN_OR_RETURN(const json::Value* tr, ckpt::Field(v, "trace"));
  MC_ASSIGN_OR_RETURN(s->trace, ckpt::ReadTrace(*tr));
  MC_ASSIGN_OR_RETURN(s->mid_restart, ckpt::BoolField(v, "mid_restart"));
  if (s->mid_restart) {
    MC_ASSIGN_OR_RETURN(const json::Value* child, ckpt::Field(v, "child_rng"));
    MC_ASSIGN_OR_RETURN(s->child_rng, ckpt::ReadRng(*child));
    MC_ASSIGN_OR_RETURN(s->seed.start_iter, ckpt::SizeField(v, "next_iter"));
    MC_ASSIGN_OR_RETURN(const json::Value* c, ckpt::Field(v, "centers"));
    MC_ASSIGN_OR_RETURN(s->seed.centers, ckpt::ReadMatrix(*c));
    MC_ASSIGN_OR_RETURN(const json::Value* l, ckpt::Field(v, "labels"));
    MC_ASSIGN_OR_RETURN(s->seed.labels, ckpt::ReadIntVector(*l));
  }
  return Status::OK();
}

uint64_t KMeansFingerprint(const Matrix& data, const KMeansOptions& options) {
  Fingerprint fp;
  fp.Mix("kmeans");
  fp.Mix(static_cast<uint64_t>(options.k));
  fp.Mix(static_cast<uint64_t>(options.max_iters));
  fp.MixDouble(options.tol);
  fp.Mix(static_cast<uint64_t>(options.plus_plus_init ? 1 : 0));
  // The float32 assignment path changes labels/centre trajectories, so a
  // checkpoint from one precision must not resume a run of the other.
  fp.Mix(static_cast<uint64_t>(options.assign_float32 ? 1 : 0));
  fp.Mix(static_cast<uint64_t>(options.restarts));
  fp.Mix(options.seed);
  fp.Mix(static_cast<uint64_t>(options.budget.max_iterations));
  fp.Mix(data);
  return fp.value();
}

}  // namespace

Result<Clustering> RunKMeans(const Matrix& data,
                             const KMeansOptions& options) {
  if (options.k == 0) return Status::InvalidArgument("k-means: k must be > 0");
  if (data.rows() < options.k) {
    return Status::InvalidArgument("k-means: fewer objects than clusters");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("k-means", data));
  MULTICLUST_TRACE_SPAN("cluster.kmeans.run");
  BudgetTracker guard(options.budget, "kmeans");
  ConvergenceRecorder recorder(options.diagnostics, &guard);
  recorder.SetExpectedIterations(
      options.budget.max_iterations != 0
          ? std::min(options.max_iters, options.budget.max_iterations)
          : options.max_iters);
  Checkpointer* ck = options.budget.checkpoint;
  const uint64_t fp = ck != nullptr ? KMeansFingerprint(data, options) : 0;

  KMeansCkptState state;
  state.outer_rng = Rng(options.seed);
  state.best.sse = std::numeric_limits<double>::infinity();
  bool resume_mid = false;
  if (ck != nullptr) {
    if (auto restored = ck->TryRestore("kmeans", fp, options.diagnostics)) {
      KMeansCkptState loaded;
      const Status parsed = ReadKMeansPayload(restored->payload, &loaded);
      if (parsed.ok()) {
        state = std::move(loaded);
        resume_mid = state.mid_restart;
        if (options.diagnostics != nullptr) {
          options.diagnostics->trace = state.trace;
          options.diagnostics->trace.winning_restart = state.winner;
        }
      } else {
        AddWarning(options.diagnostics, "kmeans",
                   "checkpoint payload rejected (" + parsed.ToString() +
                       "); cold start");
      }
    }
  }

  // One snapshot writer serves the mid-restart persistence points and the
  // restart boundaries. `prepare` captures the expensive volatile state
  // (centers, labels, trace) and runs only when the policy actually
  // serializes a snapshot, so an armed-but-not-due persistence point costs
  // a policy check and nothing else.
  const auto snapshot =
      [&](bool flush, FunctionRef<void()> prepare = {}) -> Status {
    if (ck == nullptr) return Status::OK();
    const auto payload = [&](json::Writer* w) {
      if (prepare) prepare();
      if (options.diagnostics != nullptr) {
        state.trace = options.diagnostics->trace;
      }
      WriteKMeansPayload(w, state);
    };
    const Status st = flush ? ck->Flush("kmeans", fp, payload)
                            : ck->AtPersistencePoint("kmeans", fp,
                                                     state.step, payload);
    ++state.step;
    return flush ? Status::OK() : st;
  };

  const size_t restarts = options.restarts == 0 ? 1 : options.restarts;
  // Materialize the f32 copy once for all restarts on the opt-in path.
  std::vector<float> data_f32_storage;
  const std::vector<float>* data_f32 = nullptr;
  if (options.assign_float32) {
    data_f32_storage = ToFloat32(data);
    data_f32 = &data_f32_storage;
  }
  const size_t start_restart = state.restart;
  for (size_t r = start_restart; r < restarts; ++r) {
    Rng child;
    if (resume_mid && r == start_restart) {
      child = state.child_rng;
    } else {
      child = state.outer_rng.Split();
    }
    if (r > 0 && guard.DeadlineExpired()) break;
    MC_METRIC_COUNT("cluster.kmeans.restarts", 1);
    const LloydSeed* seed =
        (resume_mid && r == start_restart) ? &state.seed : nullptr;
    const LloydPersistFn persist =
        ck == nullptr
            ? LloydPersistFn()
            : [&](size_t next_iter, const LloydResult& current,
                  const Rng& child_now, bool flush) -> Status {
                return snapshot(flush, [&] {
                  state.restart = r;
                  state.mid_restart = true;
                  state.child_rng = child_now;
                  state.seed.start_iter = next_iter;
                  state.seed.centers = current.centers;
                  state.seed.labels = current.labels;
                });
              };
    Result<LloydResult> run =
        RunLloyd(data, options.k, options.max_iters, options.tol,
                 options.plus_plus_init, &child, &guard, r, &recorder, seed,
                 persist, data_f32);
    if (!run.ok()) {
      // Cancellation (and a simulated crash) aborts the whole call; a
      // numerically degenerate restart is skipped — the remaining restarts
      // still compete.
      if (run.status().code() == StatusCode::kCancelled ||
          run.status().code() == StatusCode::kAborted) {
        return run.status();
      }
      state.last_error = run.status();
    } else if (!state.have_best || run->sse < state.best.sse) {
      state.best = std::move(*run);
      state.have_best = true;
      state.winner = r;
      recorder.SetWinner(r);
    }
    if (ck != nullptr && r + 1 < restarts) {
      // Restart boundary: the next persistence point starts restart r + 1
      // fresh (covers the converged / exhausted / skipped exits).
      state.restart = r + 1;
      state.mid_restart = false;
      MC_RETURN_IF_ERROR(snapshot(/*flush=*/false));
    }
  }
  if (!state.have_best) return state.last_error;
  recorder.Finish("kmeans", state.best.iterations, state.best.converged);
  Clustering c;
  c.labels = std::move(state.best.labels);
  c.centroids = std::move(state.best.centers);
  c.quality = state.best.sse;
  c.algorithm = "kmeans";
  c.iterations = state.best.iterations;
  c.converged = state.best.converged;
  return c;
}

}  // namespace multiclust
