#include "cluster/spectral.h"

#include <cmath>
#include <limits>

#include "cluster/kmeans.h"
#include "common/parallel.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "linalg/decomposition.h"
#include "stats/hsic.h"

namespace multiclust {

Result<Clustering> RunSpectral(const Matrix& data,
                               const SpectralOptions& options) {
  const size_t n = data.rows();
  if (options.k == 0 || n < options.k) {
    return Status::InvalidArgument("spectral: invalid k for data size");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("spectral", data));
  MULTICLUST_TRACE_SPAN("cluster.spectral.run");
  BudgetTracker guard(options.budget, "spectral");

  Matrix norm(n, n);
  {
    MULTICLUST_TRACE_SPAN("cluster.spectral.affinity");
    // Affinity with zero diagonal (standard NJW).
    Matrix w = GaussianKernelMatrix(data, options.gamma);
    for (size_t i = 0; i < n; ++i) w.at(i, i) = 0.0;

    // Normalised affinity D^{-1/2} W D^{-1/2}; its top-k eigenvectors equal
    // the bottom-k of the normalised Laplacian.
    std::vector<double> inv_sqrt_deg(n, 0.0);
    ParallelFor(0, n, 128, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        double deg = 0.0;
        for (size_t j = 0; j < n; ++j) deg += w.at(i, j);
        inv_sqrt_deg[i] = deg > 1e-12 ? 1.0 / std::sqrt(deg) : 0.0;
      }
    });
    ParallelFor(0, n, 128, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        for (size_t j = 0; j < n; ++j) {
          norm.at(i, j) = inv_sqrt_deg[i] * w.at(i, j) * inv_sqrt_deg[j];
        }
      }
    });
  }

  if (guard.Cancelled()) return guard.CancelledStatus();
  Result<SymmetricEigen> eig_result = [&] {
    MULTICLUST_TRACE_SPAN("cluster.spectral.eigen");
    return EigenSymmetric(norm);
  }();
  MC_ASSIGN_OR_RETURN(SymmetricEigen eig, std::move(eig_result));
  if (guard.Cancelled()) return guard.CancelledStatus();

  // Embed into the top-k eigenvectors, row-normalised.
  Matrix embed(n, options.k);
  for (size_t i = 0; i < n; ++i) {
    double norm_sq = 0.0;
    for (size_t c = 0; c < options.k; ++c) {
      const double v = eig.vectors.at(i, c);
      embed.at(i, c) = v;
      norm_sq += v * v;
    }
    if (norm_sq > 1e-24) {
      const double inv = 1.0 / std::sqrt(norm_sq);
      for (size_t c = 0; c < options.k; ++c) embed.at(i, c) *= inv;
    }
  }

  if (MC_FAULT_FIRES("spectral", FaultKind::kInjectNaN, 0)) {
    embed.at(0, 0) = std::numeric_limits<double>::quiet_NaN();
  }
  if (MC_FAULT_FIRES("spectral", FaultKind::kAllocFail, 0)) {
    return Status::ComputationError(
        "spectral: injected allocation failure growing the embedding "
        "matrix");
  }
  // A degenerate eigendecomposition must surface as a recoverable
  // computation error, not as poisoned labels out of k-means.
  if (!ValidateMatrix("spectral", embed).ok()) {
    return Status::ComputationError(
        "spectral: non-finite spectral embedding");
  }

  KMeansOptions km;
  km.k = options.k;
  km.restarts = options.kmeans_restarts;
  km.seed = options.seed;
  km.budget = guard.Remaining();
  // Everything before the embedded k-means is deterministic recomputation,
  // so spectral checkpoints live entirely in the k-means slot: re-attach
  // the channel Remaining() deliberately stripped. The k-means fingerprint
  // covers the embedding matrix, so another spectral (or plain k-means)
  // configuration can never restore from these snapshots.
  km.budget.checkpoint = options.budget.checkpoint;
  km.diagnostics = options.diagnostics;
  MULTICLUST_TRACE_SPAN("cluster.spectral.kmeans");
  // Progress events from the embedded k-means stream under its own stage
  // name; bracket them so a consumer can attribute them to spectral.
  telemetry::EmitStage("spectral", "start");
  MC_ASSIGN_OR_RETURN(Clustering c, RunKMeans(embed, km));
  telemetry::EmitStage("spectral", "end");
  if (options.diagnostics != nullptr) {
    // The trace is the embedded k-means run; report it under this
    // algorithm's name.
    options.diagnostics->algorithm = "spectral";
  }
  c.algorithm = "spectral";
  c.centroids = Matrix();  // centroids live in embedding space; drop them
  return c;
}

}  // namespace multiclust
