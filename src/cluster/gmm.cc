#include "cluster/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/kmeans.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"

namespace multiclust {

namespace {

constexpr double kLog2Pi = 1.8378770664093454836;

double LogSumExp(const std::vector<double>& xs) {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::max(m, x);
  if (!std::isfinite(m)) return m;
  double s = 0.0;
  for (double x : xs) s += std::exp(x - m);
  return m + std::log(s);
}

}  // namespace

double GmmComponent::LogDensity(const std::vector<double>& x) const {
  const size_t d = mean.size();
  double logdet = 0.0;
  double quad = 0.0;
  for (size_t j = 0; j < d; ++j) {
    const double var = variances.size() == 1 ? variances[0] : variances[j];
    logdet += std::log(var);
    const double diff = x[j] - mean[j];
    quad += diff * diff / var;
  }
  return -0.5 * (static_cast<double>(d) * kLog2Pi + logdet + quad);
}

std::vector<double> GmmModel::Responsibilities(
    const std::vector<double>& x) const {
  std::vector<double> logp(components.size());
  for (size_t c = 0; c < components.size(); ++c) {
    logp[c] = std::log(std::max(components[c].weight, 1e-300)) +
              components[c].LogDensity(x);
  }
  const double lse = LogSumExp(logp);
  std::vector<double> r(components.size());
  for (size_t c = 0; c < components.size(); ++c) {
    r[c] = std::exp(logp[c] - lse);
  }
  return r;
}

double GmmModel::LogDensity(const std::vector<double>& x) const {
  std::vector<double> logp(components.size());
  for (size_t c = 0; c < components.size(); ++c) {
    logp[c] = std::log(std::max(components[c].weight, 1e-300)) +
              components[c].LogDensity(x);
  }
  return LogSumExp(logp);
}

std::vector<int> GmmModel::HardAssign(const Matrix& data) const {
  std::vector<int> labels(data.rows(), -1);
  for (size_t i = 0; i < data.rows(); ++i) {
    const std::vector<double> r = Responsibilities(data.Row(i));
    labels[i] = static_cast<int>(
        std::max_element(r.begin(), r.end()) - r.begin());
  }
  return labels;
}

double GmmModel::TotalLogLikelihood(const Matrix& data) const {
  double s = 0.0;
  for (size_t i = 0; i < data.rows(); ++i) s += LogDensity(data.Row(i));
  return s;
}

Result<GmmModel> InitGmm(const Matrix& data, size_t k, CovarianceType cov,
                         uint64_t seed) {
  if (k == 0) return Status::InvalidArgument("InitGmm: k must be > 0");
  if (data.rows() < k) {
    return Status::InvalidArgument("InitGmm: fewer objects than components");
  }
  KMeansOptions km;
  km.k = k;
  km.max_iters = 5;
  km.seed = seed;
  MC_ASSIGN_OR_RETURN(Clustering seed_clust, RunKMeans(data, km));

  const size_t d = data.cols();
  // Global per-dimension variance as the starting spread.
  const std::vector<double> mean = RowMean(data);
  std::vector<double> var(d, 0.0);
  for (size_t i = 0; i < data.rows(); ++i) {
    for (size_t j = 0; j < d; ++j) {
      const double diff = data.at(i, j) - mean[j];
      var[j] += diff * diff;
    }
  }
  for (double& v : var) {
    v /= std::max<size_t>(1, data.rows() - 1);
    v = std::max(v, 1e-6);
  }

  GmmModel model;
  model.components.resize(k);
  for (size_t c = 0; c < k; ++c) {
    GmmComponent& comp = model.components[c];
    comp.weight = 1.0 / static_cast<double>(k);
    comp.mean = seed_clust.centroids.Row(c);
    if (cov == CovarianceType::kSpherical) {
      double avg = 0.0;
      for (double v : var) avg += v;
      comp.variances = {avg / static_cast<double>(d)};
    } else {
      comp.variances = var;
    }
  }
  return model;
}

Status MStepFromResponsibilities(const Matrix& data,
                                 const Matrix& responsibilities,
                                 double variance_floor, GmmModel* model) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  const size_t k = model->k();
  if (responsibilities.rows() != n || responsibilities.cols() != k) {
    return Status::InvalidArgument("MStep: responsibility shape mismatch");
  }
  for (size_t c = 0; c < k; ++c) {
    GmmComponent& comp = model->components[c];
    double nc = 0.0;
    std::vector<double> mean(d, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double r = responsibilities.at(i, c);
      nc += r;
      const double* row = data.row_data(i);
      for (size_t j = 0; j < d; ++j) mean[j] += r * row[j];
    }
    if (nc < 1e-10) {
      // Dead component: keep parameters, zero weight.
      comp.weight = 1e-10;
      continue;
    }
    for (double& m : mean) m /= nc;
    const bool spherical = comp.variances.size() == 1;
    std::vector<double> var(spherical ? 1 : d, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double r = responsibilities.at(i, c);
      const double* row = data.row_data(i);
      if (spherical) {
        double s = 0.0;
        for (size_t j = 0; j < d; ++j) {
          const double diff = row[j] - mean[j];
          s += diff * diff;
        }
        var[0] += r * s / static_cast<double>(d);
      } else {
        for (size_t j = 0; j < d; ++j) {
          const double diff = row[j] - mean[j];
          var[j] += r * diff * diff;
        }
      }
    }
    for (double& v : var) {
      v /= nc;
      // Degenerate covariance recovery: a collapsed or numerically
      // poisoned variance is clamped to the floor instead of propagating
      // a zero/NaN into the next E-step's densities.
      v = std::isfinite(v) ? std::max(v, variance_floor) : variance_floor;
    }
    comp.weight = nc / static_cast<double>(n);
    comp.mean = std::move(mean);
    comp.variances = std::move(var);
  }
  // Renormalise weights.
  double total = 0.0;
  for (const GmmComponent& c : model->components) total += c.weight;
  if (total > 0) {
    for (GmmComponent& c : model->components) c.weight /= total;
  }
  return Status::OK();
}

Result<double> EmStep(const Matrix& data, double variance_floor,
                      GmmModel* model) {
  const size_t n = data.rows();
  const size_t k = model->k();
  Matrix resp(n, k);
  double ll = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const std::vector<double> x = data.Row(i);
    std::vector<double> logp(k);
    for (size_t c = 0; c < k; ++c) {
      logp[c] = std::log(std::max(model->components[c].weight, 1e-300)) +
                model->components[c].LogDensity(x);
    }
    const double lse = LogSumExp(logp);
    ll += lse;
    for (size_t c = 0; c < k; ++c) {
      resp.at(i, c) = std::exp(logp[c] - lse);
    }
  }
  MC_RETURN_IF_ERROR(
      MStepFromResponsibilities(data, resp, variance_floor, model));
  return ll;
}

namespace {

// One EM restart under the shared budget tracker. Returns
// kComputationError on a non-finite log-likelihood (numerical degeneracy
// or an injected fault), kCancelled on cooperative cancellation.
Result<GmmModel> FitGmmOnce(const Matrix& data, const GmmOptions& options,
                            uint64_t seed, BudgetTracker* guard,
                            size_t restart, ConvergenceRecorder* recorder) {
  MC_ASSIGN_OR_RETURN(GmmModel model,
                      InitGmm(data, options.k, options.covariance, seed));
  double prev_ll = -std::numeric_limits<double>::infinity();
  for (size_t iter = 0; iter < options.max_iters; ++iter) {
    if (guard->Cancelled()) return guard->CancelledStatus();
    if (guard->ShouldStop(iter)) break;
    MC_METRIC_COUNT("cluster.gmm.iterations", 1);
    MULTICLUST_TRACE_SPAN("cluster.gmm.em_step");
    MC_ASSIGN_OR_RETURN(double ll,
                        EmStep(data, options.variance_floor, &model));
    if (MC_FAULT_FIRES("gmm", FaultKind::kInjectNaN, iter)) {
      ll = std::numeric_limits<double>::quiet_NaN();
    }
    model.iterations = iter + 1;
    if (!std::isfinite(ll)) {
      return Status::ComputationError(
          "GMM-EM: non-finite log-likelihood at iteration " +
          std::to_string(iter));
    }
    if (recorder->enabled()) {
      // Dead components survive with a floor weight (see MStep); count
      // them as this iteration's degeneracy recoveries.
      size_t dead = 0;
      for (const GmmComponent& c : model.components) {
        if (c.weight <= 1e-8) ++dead;
      }
      const double delta = std::isfinite(prev_ll) ? ll - prev_ll : 0.0;
      recorder->Record(restart, iter, ll, delta, dead);
    }
    if (std::isfinite(prev_ll) &&
        std::fabs(ll - prev_ll) <= options.tol * (std::fabs(prev_ll) + 1.0) &&
        !MC_FAULT_FIRES("gmm", FaultKind::kForceNonConvergence, iter)) {
      model.converged = true;
      break;
    }
    prev_ll = ll;
  }
  model.log_likelihood = model.TotalLogLikelihood(data);
  return model;
}

}  // namespace

Result<GmmModel> FitGmm(const Matrix& data, const GmmOptions& options) {
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("FitGmm: empty data");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("GMM-EM", data));
  MULTICLUST_TRACE_SPAN("cluster.gmm.fit");
  BudgetTracker guard(options.budget, "gmm");
  ConvergenceRecorder recorder(options.diagnostics, &guard);
  Rng rng(options.seed);
  GmmModel best;
  double best_ll = -std::numeric_limits<double>::infinity();
  bool have_best = false;
  Status last_error = Status::OK();
  const size_t restarts = options.restarts == 0 ? 1 : options.restarts;
  for (size_t r = 0; r < restarts; ++r) {
    const uint64_t restart_seed = rng.NextU64();
    if (r > 0 && guard.DeadlineExpired()) break;
    MC_METRIC_COUNT("cluster.gmm.restarts", 1);
    Result<GmmModel> model =
        FitGmmOnce(data, options, restart_seed, &guard, r, &recorder);
    if (!model.ok()) {
      if (model.status().code() == StatusCode::kCancelled) {
        return model.status();
      }
      last_error = model.status();
      continue;  // a degenerate restart does not kill the others
    }
    if (!std::isfinite(model->log_likelihood)) {
      last_error = Status::ComputationError(
          "GMM-EM: non-finite final log-likelihood");
      continue;
    }
    if (!have_best || model->log_likelihood > best_ll) {
      best_ll = model->log_likelihood;
      best = std::move(*model);
      have_best = true;
      recorder.SetWinner(r);
    }
  }
  if (!have_best) return last_error;
  recorder.Finish("gmm", best.iterations, best.converged);
  return best;
}

Result<Clustering> RunGmm(const Matrix& data, const GmmOptions& options) {
  MC_ASSIGN_OR_RETURN(GmmModel model, FitGmm(data, options));
  Clustering c;
  c.labels = model.HardAssign(data);
  c.quality = model.log_likelihood;
  c.algorithm = "gmm-em";
  c.iterations = model.iterations;
  c.converged = model.converged;
  Matrix centroids(model.k(), data.cols());
  for (size_t i = 0; i < model.k(); ++i) {
    centroids.SetRow(i, model.components[i].mean);
  }
  c.centroids = std::move(centroids);
  return c;
}

}  // namespace multiclust
