#include "cluster/gmm.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <utility>

#include "cluster/kmeans.h"
#include "common/checkpoint.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "linalg/kernels.h"

namespace multiclust {

namespace {

constexpr double kLog2Pi = 1.8378770664093454836;

double LogSumExp(const std::vector<double>& xs) {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::max(m, x);
  if (!std::isfinite(m)) return m;
  double s = 0.0;
  for (double x : xs) s += std::exp(x - m);
  return m + std::log(s);
}

}  // namespace

double GmmComponent::PrecomputeLogDet(size_t d) const {
  if (variances.size() == 1) {
    return static_cast<double>(d) * std::log(variances[0]);
  }
  double logdet = 0.0;
  for (size_t j = 0; j < d; ++j) logdet += std::log(variances[j]);
  return logdet;
}

double GmmComponent::LogDensity(const double* x, double logdet) const {
  const size_t d = mean.size();
  const double quad =
      variances.size() == 1
          ? kernels::SquaredDistance(x, mean.data(), d) / variances[0]
          : kernels::QuadDiag(x, mean.data(), variances.data(), d);
  return -0.5 * (static_cast<double>(d) * kLog2Pi + logdet + quad);
}

double GmmComponent::LogDensity(const std::vector<double>& x) const {
  return LogDensity(x.data(), PrecomputeLogDet(mean.size()));
}

std::vector<double> GmmModel::Responsibilities(
    const std::vector<double>& x) const {
  std::vector<double> logp(components.size());
  for (size_t c = 0; c < components.size(); ++c) {
    logp[c] = std::log(std::max(components[c].weight, 1e-300)) +
              components[c].LogDensity(x);
  }
  const double lse = LogSumExp(logp);
  std::vector<double> r(components.size());
  for (size_t c = 0; c < components.size(); ++c) {
    r[c] = std::exp(logp[c] - lse);
  }
  return r;
}

double GmmModel::LogDensity(const std::vector<double>& x) const {
  std::vector<double> logp(components.size());
  for (size_t c = 0; c < components.size(); ++c) {
    logp[c] = std::log(std::max(components[c].weight, 1e-300)) +
              components[c].LogDensity(x);
  }
  return LogSumExp(logp);
}

std::vector<int> GmmModel::HardAssign(const Matrix& data) const {
  std::vector<int> labels(data.rows(), -1);
  const size_t kk = components.size();
  std::vector<double> logdet(kk), logw(kk), logp(kk);
  for (size_t c = 0; c < kk; ++c) {
    logdet[c] = components[c].PrecomputeLogDet(data.cols());
    logw[c] = std::log(std::max(components[c].weight, 1e-300));
  }
  for (size_t i = 0; i < data.rows(); ++i) {
    const double* x = data.row_data(i);
    // argmax of the responsibilities == argmax of the log posteriors; no
    // need to normalise through LogSumExp here.
    for (size_t c = 0; c < kk; ++c) {
      logp[c] = logw[c] + components[c].LogDensity(x, logdet[c]);
    }
    labels[i] = static_cast<int>(
        std::max_element(logp.begin(), logp.end()) - logp.begin());
  }
  return labels;
}

double GmmModel::TotalLogLikelihood(const Matrix& data) const {
  const size_t kk = components.size();
  std::vector<double> logdet(kk), logw(kk), logp(kk);
  for (size_t c = 0; c < kk; ++c) {
    logdet[c] = components[c].PrecomputeLogDet(data.cols());
    logw[c] = std::log(std::max(components[c].weight, 1e-300));
  }
  double s = 0.0;
  for (size_t i = 0; i < data.rows(); ++i) {
    const double* x = data.row_data(i);
    for (size_t c = 0; c < kk; ++c) {
      logp[c] = logw[c] + components[c].LogDensity(x, logdet[c]);
    }
    s += LogSumExp(logp);
  }
  return s;
}

Result<GmmModel> InitGmm(const Matrix& data, size_t k, CovarianceType cov,
                         uint64_t seed) {
  if (k == 0) return Status::InvalidArgument("InitGmm: k must be > 0");
  if (data.rows() < k) {
    return Status::InvalidArgument("InitGmm: fewer objects than components");
  }
  KMeansOptions km;
  km.k = k;
  km.max_iters = 5;
  km.seed = seed;
  MC_ASSIGN_OR_RETURN(Clustering seed_clust, RunKMeans(data, km));

  const size_t d = data.cols();
  // Global per-dimension variance as the starting spread.
  const std::vector<double> mean = RowMean(data);
  std::vector<double> var(d, 0.0);
  for (size_t i = 0; i < data.rows(); ++i) {
    kernels::AxpySqDiff(1.0, data.row_data(i), mean.data(), var.data(), d);
  }
  for (double& v : var) {
    v /= std::max<size_t>(1, data.rows() - 1);
    v = std::max(v, 1e-6);
  }

  GmmModel model;
  model.components.resize(k);
  for (size_t c = 0; c < k; ++c) {
    GmmComponent& comp = model.components[c];
    comp.weight = 1.0 / static_cast<double>(k);
    comp.mean = seed_clust.centroids.Row(c);
    if (cov == CovarianceType::kSpherical) {
      double avg = 0.0;
      for (double v : var) avg += v;
      comp.variances = {avg / static_cast<double>(d)};
    } else {
      comp.variances = var;
    }
  }
  return model;
}

Status MStepFromResponsibilities(const Matrix& data,
                                 const Matrix& responsibilities,
                                 double variance_floor, GmmModel* model) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  const size_t k = model->k();
  if (responsibilities.rows() != n || responsibilities.cols() != k) {
    return Status::InvalidArgument("MStep: responsibility shape mismatch");
  }
  for (size_t c = 0; c < k; ++c) {
    GmmComponent& comp = model->components[c];
    double nc = 0.0;
    std::vector<double> mean(d, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double r = responsibilities.at(i, c);
      nc += r;
      kernels::Axpy(r, data.row_data(i), mean.data(), d);
    }
    if (nc < 1e-10) {
      // Dead component: keep parameters, zero weight.
      comp.weight = 1e-10;
      continue;
    }
    for (double& m : mean) m /= nc;
    const bool spherical = comp.variances.size() == 1;
    std::vector<double> var(spherical ? 1 : d, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double r = responsibilities.at(i, c);
      const double* row = data.row_data(i);
      if (spherical) {
        const double s = kernels::SquaredDistance(row, mean.data(), d);
        var[0] += r * s / static_cast<double>(d);
      } else {
        kernels::AxpySqDiff(r, row, mean.data(), var.data(), d);
      }
    }
    for (double& v : var) {
      v /= nc;
      // Degenerate covariance recovery: a collapsed or numerically
      // poisoned variance is clamped to the floor instead of propagating
      // a zero/NaN into the next E-step's densities.
      v = std::isfinite(v) ? std::max(v, variance_floor) : variance_floor;
    }
    comp.weight = nc / static_cast<double>(n);
    comp.mean = std::move(mean);
    comp.variances = std::move(var);
  }
  // Renormalise weights.
  double total = 0.0;
  for (const GmmComponent& c : model->components) total += c.weight;
  if (total > 0) {
    for (GmmComponent& c : model->components) c.weight /= total;
  }
  return Status::OK();
}

Result<double> EmStep(const Matrix& data, double variance_floor,
                      GmmModel* model) {
  const size_t n = data.rows();
  const size_t k = model->k();
  Matrix resp(n, k);
  double ll = 0.0;
  // Per-component log-determinants and log-weights are loop invariants of
  // the E-step; hoisting them removes a d-length log() sweep per point.
  std::vector<double> logdet(k), logw(k);
  for (size_t c = 0; c < k; ++c) {
    logdet[c] = model->components[c].PrecomputeLogDet(data.cols());
    logw[c] = std::log(std::max(model->components[c].weight, 1e-300));
  }
  std::vector<double> logp(k);
  for (size_t i = 0; i < n; ++i) {
    const double* x = data.row_data(i);
    for (size_t c = 0; c < k; ++c) {
      logp[c] = logw[c] + model->components[c].LogDensity(x, logdet[c]);
    }
    const double lse = LogSumExp(logp);
    ll += lse;
    for (size_t c = 0; c < k; ++c) {
      resp.at(i, c) = std::exp(logp[c] - lse);
    }
  }
  MC_RETURN_IF_ERROR(
      MStepFromResponsibilities(data, resp, variance_floor, model));
  return ll;
}

void WriteGmmModelCkpt(json::Writer* w, const GmmModel& model) {
  w->BeginObject();
  w->Key("components");
  w->BeginArray();
  for (const GmmComponent& c : model.components) {
    w->BeginObject();
    w->Key("w");
    w->Double(c.weight);
    w->Key("m");
    ckpt::WriteDoubleVector(w, c.mean);
    w->Key("v");
    ckpt::WriteDoubleVector(w, c.variances);
    w->EndObject();
  }
  w->EndArray();
  w->Key("ll");
  w->Double(model.log_likelihood);
  w->Key("iterations");
  w->Uint(model.iterations);
  w->Key("converged");
  w->Bool(model.converged);
  w->EndObject();
}

Result<GmmModel> ReadGmmModelCkpt(const json::Value& v) {
  GmmModel model;
  MC_ASSIGN_OR_RETURN(const json::Value* comps, ckpt::Field(v, "components"));
  if (!comps->is_array()) {
    return Status::ComputationError("checkpoint: GMM components not an array");
  }
  for (const json::Value& c : comps->array_items()) {
    GmmComponent comp;
    MC_ASSIGN_OR_RETURN(comp.weight, ckpt::NumberField(c, "w"));
    MC_ASSIGN_OR_RETURN(const json::Value* m, ckpt::Field(c, "m"));
    MC_ASSIGN_OR_RETURN(comp.mean, ckpt::ReadDoubleVector(*m));
    MC_ASSIGN_OR_RETURN(const json::Value* var, ckpt::Field(c, "v"));
    MC_ASSIGN_OR_RETURN(comp.variances, ckpt::ReadDoubleVector(*var));
    model.components.push_back(std::move(comp));
  }
  MC_ASSIGN_OR_RETURN(model.log_likelihood, ckpt::NumberField(v, "ll"));
  MC_ASSIGN_OR_RETURN(model.iterations, ckpt::SizeField(v, "iterations"));
  MC_ASSIGN_OR_RETURN(model.converged, ckpt::BoolField(v, "converged"));
  return model;
}

namespace {

/// Mid-restart resume state / per-iteration persistence hook of one EM
/// restart; see the k-means equivalents for the protocol.
struct GmmSeed {
  size_t start_iter = 0;
  GmmModel model;
  bool has_prev = false;
  double prev_ll = 0.0;
};

using GmmPersistFn = std::function<Status(size_t next_iter,
                                          const GmmModel& model,
                                          bool has_prev, double prev_ll,
                                          bool flush)>;

// One EM restart under the shared budget tracker. Returns
// kComputationError on a non-finite log-likelihood (numerical degeneracy
// or an injected fault), kCancelled on cooperative cancellation.
Result<GmmModel> FitGmmOnce(const Matrix& data, const GmmOptions& options,
                            uint64_t seed, BudgetTracker* guard,
                            size_t restart, ConvergenceRecorder* recorder,
                            const GmmSeed* resume,
                            const GmmPersistFn& persist) {
  GmmModel model;
  double prev_ll = -std::numeric_limits<double>::infinity();
  size_t start_iter = 0;
  if (resume != nullptr) {
    model = resume->model;
    if (resume->has_prev) prev_ll = resume->prev_ll;
    start_iter = resume->start_iter;
  } else {
    MC_ASSIGN_OR_RETURN(
        model, InitGmm(data, options.k, options.covariance, seed));
  }
  for (size_t iter = start_iter; iter < options.max_iters; ++iter) {
    if (guard->Cancelled()) {
      if (persist) {
        persist(iter, model, std::isfinite(prev_ll), prev_ll, /*flush=*/true);
      }
      return guard->CancelledStatus();
    }
    if (guard->ShouldStop(iter)) break;
    MC_METRIC_COUNT("cluster.gmm.iterations", 1);
    MULTICLUST_TRACE_SPAN("cluster.gmm.em_step");
    MC_ASSIGN_OR_RETURN(double ll,
                        EmStep(data, options.variance_floor, &model));
    if (MC_FAULT_FIRES("gmm", FaultKind::kInjectNaN, iter)) {
      ll = std::numeric_limits<double>::quiet_NaN();
    }
    if (MC_FAULT_FIRES("gmm", FaultKind::kAllocFail, iter)) {
      return Status::ComputationError(
          "GMM-EM: injected allocation failure growing the responsibility "
          "matrix at iteration " + std::to_string(iter));
    }
    model.iterations = iter + 1;
    if (!std::isfinite(ll)) {
      return Status::ComputationError(
          "GMM-EM: non-finite log-likelihood at iteration " +
          std::to_string(iter));
    }
    if (recorder->enabled()) {
      // Dead components survive with a floor weight (see MStep); count
      // them as this iteration's degeneracy recoveries.
      size_t dead = 0;
      for (const GmmComponent& c : model.components) {
        if (c.weight <= 1e-8) ++dead;
      }
      const double delta = std::isfinite(prev_ll) ? ll - prev_ll : 0.0;
      recorder->Record(restart, iter, ll, delta, dead);
    }
    if (std::isfinite(prev_ll) &&
        std::fabs(ll - prev_ll) <= options.tol * (std::fabs(prev_ll) + 1.0) &&
        !MC_FAULT_FIRES("gmm", FaultKind::kForceNonConvergence, iter)) {
      model.converged = true;
      break;
    }
    prev_ll = ll;
    if (persist) {
      MC_RETURN_IF_ERROR(persist(iter + 1, model, /*has_prev=*/true, prev_ll,
                                 /*flush=*/false));
    }
  }
  model.log_likelihood = model.TotalLogLikelihood(data);
  return model;
}

// Whole-invocation checkpoint state of FitGmm (restart loop level).
struct GmmCkptState {
  size_t step = 0;
  size_t restart = 0;
  Rng outer_rng;
  size_t winner = 0;
  bool have_best = false;
  GmmModel best;
  double best_ll = -std::numeric_limits<double>::infinity();
  Status last_error = Status::OK();
  ConvergenceTrace trace;
  bool mid_restart = false;
  GmmSeed seed;
};

void WriteGmmPayload(json::Writer* w, const GmmCkptState& s) {
  w->BeginObject();
  w->Key("step");
  w->Uint(s.step);
  w->Key("restart");
  w->Uint(s.restart);
  w->Key("outer_rng");
  ckpt::WriteRng(w, s.outer_rng);
  w->Key("winner");
  w->Uint(s.winner);
  w->Key("have_best");
  w->Bool(s.have_best);
  if (s.have_best) {
    w->Key("best");
    WriteGmmModelCkpt(w, s.best);
    w->Key("best_ll");
    w->Double(s.best_ll);
  }
  w->Key("last_error");
  ckpt::WriteStatus(w, s.last_error);
  w->Key("trace");
  ckpt::WriteTrace(w, s.trace);
  w->Key("mid_restart");
  w->Bool(s.mid_restart);
  if (s.mid_restart) {
    w->Key("next_iter");
    w->Uint(s.seed.start_iter);
    w->Key("model");
    WriteGmmModelCkpt(w, s.seed.model);
    w->Key("has_prev");
    w->Bool(s.seed.has_prev);
    w->Key("prev_ll");
    w->Double(s.seed.has_prev ? s.seed.prev_ll : 0.0);
  }
  w->EndObject();
}

Status ReadGmmPayload(const json::Value& v, GmmCkptState* s) {
  MC_ASSIGN_OR_RETURN(s->step, ckpt::SizeField(v, "step"));
  MC_ASSIGN_OR_RETURN(s->restart, ckpt::SizeField(v, "restart"));
  MC_ASSIGN_OR_RETURN(const json::Value* outer, ckpt::Field(v, "outer_rng"));
  MC_ASSIGN_OR_RETURN(s->outer_rng, ckpt::ReadRng(*outer));
  MC_ASSIGN_OR_RETURN(s->winner, ckpt::SizeField(v, "winner"));
  MC_ASSIGN_OR_RETURN(s->have_best, ckpt::BoolField(v, "have_best"));
  if (s->have_best) {
    MC_ASSIGN_OR_RETURN(const json::Value* best, ckpt::Field(v, "best"));
    MC_ASSIGN_OR_RETURN(s->best, ReadGmmModelCkpt(*best));
    MC_ASSIGN_OR_RETURN(s->best_ll, ckpt::NumberField(v, "best_ll"));
  }
  MC_ASSIGN_OR_RETURN(const json::Value* err, ckpt::Field(v, "last_error"));
  MC_RETURN_IF_ERROR(ckpt::ReadStatus(*err, &s->last_error));
  MC_ASSIGN_OR_RETURN(const json::Value* tr, ckpt::Field(v, "trace"));
  MC_ASSIGN_OR_RETURN(s->trace, ckpt::ReadTrace(*tr));
  MC_ASSIGN_OR_RETURN(s->mid_restart, ckpt::BoolField(v, "mid_restart"));
  if (s->mid_restart) {
    MC_ASSIGN_OR_RETURN(s->seed.start_iter, ckpt::SizeField(v, "next_iter"));
    MC_ASSIGN_OR_RETURN(const json::Value* m, ckpt::Field(v, "model"));
    MC_ASSIGN_OR_RETURN(s->seed.model, ReadGmmModelCkpt(*m));
    MC_ASSIGN_OR_RETURN(s->seed.has_prev, ckpt::BoolField(v, "has_prev"));
    MC_ASSIGN_OR_RETURN(s->seed.prev_ll, ckpt::NumberField(v, "prev_ll"));
  }
  return Status::OK();
}

uint64_t GmmFingerprint(const Matrix& data, const GmmOptions& options) {
  Fingerprint fp;
  fp.Mix("gmm");
  fp.Mix(static_cast<uint64_t>(options.k));
  fp.Mix(static_cast<uint64_t>(options.max_iters));
  fp.Mix(static_cast<uint64_t>(options.restarts));
  fp.MixDouble(options.tol);
  fp.MixDouble(options.variance_floor);
  fp.Mix(static_cast<uint64_t>(options.covariance == CovarianceType::kSpherical
                                   ? 1
                                   : 0));
  fp.Mix(options.seed);
  fp.Mix(static_cast<uint64_t>(options.budget.max_iterations));
  fp.Mix(data);
  return fp.value();
}

}  // namespace

Result<GmmModel> FitGmm(const Matrix& data, const GmmOptions& options) {
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("FitGmm: empty data");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("GMM-EM", data));
  MULTICLUST_TRACE_SPAN("cluster.gmm.fit");
  BudgetTracker guard(options.budget, "gmm");
  ConvergenceRecorder recorder(options.diagnostics, &guard);
  recorder.SetExpectedIterations(
      options.budget.max_iterations != 0
          ? std::min(options.max_iters, options.budget.max_iterations)
          : options.max_iters);
  Checkpointer* ck = options.budget.checkpoint;
  const uint64_t fp = ck != nullptr ? GmmFingerprint(data, options) : 0;

  GmmCkptState state;
  state.outer_rng = Rng(options.seed);
  bool resume_mid = false;
  if (ck != nullptr) {
    if (auto restored = ck->TryRestore("gmm", fp, options.diagnostics)) {
      GmmCkptState loaded;
      const Status parsed = ReadGmmPayload(restored->payload, &loaded);
      if (parsed.ok()) {
        state = std::move(loaded);
        resume_mid = state.mid_restart;
        if (options.diagnostics != nullptr) {
          options.diagnostics->trace = state.trace;
          options.diagnostics->trace.winning_restart = state.winner;
        }
      } else {
        AddWarning(options.diagnostics, "gmm",
                   "checkpoint payload rejected (" + parsed.ToString() +
                       "); cold start");
      }
    }
  }
  // `prepare` defers the model/trace copies to the moment a snapshot is
  // actually serialized — an armed-but-not-due persistence point pays only
  // the policy check.
  const auto snapshot =
      [&](bool flush, FunctionRef<void()> prepare = {}) -> Status {
    if (ck == nullptr) return Status::OK();
    const auto payload = [&](json::Writer* w) {
      if (prepare) prepare();
      if (options.diagnostics != nullptr) {
        state.trace = options.diagnostics->trace;
      }
      WriteGmmPayload(w, state);
    };
    const Status st = flush
                          ? ck->Flush("gmm", fp, payload)
                          : ck->AtPersistencePoint("gmm", fp, state.step,
                                                   payload);
    ++state.step;
    return flush ? Status::OK() : st;
  };

  const size_t restarts = options.restarts == 0 ? 1 : options.restarts;
  const size_t start_restart = state.restart;
  for (size_t r = start_restart; r < restarts; ++r) {
    uint64_t restart_seed = 0;
    if (!(resume_mid && r == start_restart)) {
      restart_seed = state.outer_rng.NextU64();
    }
    if (r > 0 && guard.DeadlineExpired()) break;
    MC_METRIC_COUNT("cluster.gmm.restarts", 1);
    const GmmSeed* seed =
        (resume_mid && r == start_restart) ? &state.seed : nullptr;
    const GmmPersistFn persist =
        ck == nullptr
            ? GmmPersistFn()
            : [&](size_t next_iter, const GmmModel& model, bool has_prev,
                  double prev_ll, bool flush) -> Status {
                return snapshot(flush, [&] {
                  state.restart = r;
                  state.mid_restart = true;
                  state.seed.start_iter = next_iter;
                  state.seed.model = model;
                  state.seed.has_prev = has_prev;
                  state.seed.prev_ll = prev_ll;
                });
              };
    Result<GmmModel> model = FitGmmOnce(data, options, restart_seed, &guard,
                                        r, &recorder, seed, persist);
    if (!model.ok()) {
      if (model.status().code() == StatusCode::kCancelled ||
          model.status().code() == StatusCode::kAborted) {
        return model.status();
      }
      state.last_error = model.status();
    } else if (!std::isfinite(model->log_likelihood)) {
      state.last_error = Status::ComputationError(
          "GMM-EM: non-finite final log-likelihood");
    } else if (!state.have_best || model->log_likelihood > state.best_ll) {
      state.best_ll = model->log_likelihood;
      state.best = std::move(*model);
      state.have_best = true;
      state.winner = r;
      recorder.SetWinner(r);
    }
    if (ck != nullptr && r + 1 < restarts) {
      state.restart = r + 1;
      state.mid_restart = false;
      MC_RETURN_IF_ERROR(snapshot(/*flush=*/false));
    }
  }
  if (!state.have_best) return state.last_error;
  recorder.Finish("gmm", state.best.iterations, state.best.converged);
  return std::move(state.best);
}

Result<Clustering> RunGmm(const Matrix& data, const GmmOptions& options) {
  MC_ASSIGN_OR_RETURN(GmmModel model, FitGmm(data, options));
  Clustering c;
  c.labels = model.HardAssign(data);
  c.quality = model.log_likelihood;
  c.algorithm = "gmm-em";
  c.iterations = model.iterations;
  c.converged = model.converged;
  Matrix centroids(model.k(), data.cols());
  for (size_t i = 0; i < model.k(); ++i) {
    centroids.SetRow(i, model.components[i].mean);
  }
  c.centroids = std::move(centroids);
  return c;
}

}  // namespace multiclust
