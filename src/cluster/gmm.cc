#include "cluster/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"
#include "cluster/kmeans.h"

namespace multiclust {

namespace {

constexpr double kLog2Pi = 1.8378770664093454836;

double LogSumExp(const std::vector<double>& xs) {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::max(m, x);
  if (!std::isfinite(m)) return m;
  double s = 0.0;
  for (double x : xs) s += std::exp(x - m);
  return m + std::log(s);
}

}  // namespace

double GmmComponent::LogDensity(const std::vector<double>& x) const {
  const size_t d = mean.size();
  double logdet = 0.0;
  double quad = 0.0;
  for (size_t j = 0; j < d; ++j) {
    const double var = variances.size() == 1 ? variances[0] : variances[j];
    logdet += std::log(var);
    const double diff = x[j] - mean[j];
    quad += diff * diff / var;
  }
  return -0.5 * (static_cast<double>(d) * kLog2Pi + logdet + quad);
}

std::vector<double> GmmModel::Responsibilities(
    const std::vector<double>& x) const {
  std::vector<double> logp(components.size());
  for (size_t c = 0; c < components.size(); ++c) {
    logp[c] = std::log(std::max(components[c].weight, 1e-300)) +
              components[c].LogDensity(x);
  }
  const double lse = LogSumExp(logp);
  std::vector<double> r(components.size());
  for (size_t c = 0; c < components.size(); ++c) {
    r[c] = std::exp(logp[c] - lse);
  }
  return r;
}

double GmmModel::LogDensity(const std::vector<double>& x) const {
  std::vector<double> logp(components.size());
  for (size_t c = 0; c < components.size(); ++c) {
    logp[c] = std::log(std::max(components[c].weight, 1e-300)) +
              components[c].LogDensity(x);
  }
  return LogSumExp(logp);
}

std::vector<int> GmmModel::HardAssign(const Matrix& data) const {
  std::vector<int> labels(data.rows(), -1);
  for (size_t i = 0; i < data.rows(); ++i) {
    const std::vector<double> r = Responsibilities(data.Row(i));
    labels[i] = static_cast<int>(
        std::max_element(r.begin(), r.end()) - r.begin());
  }
  return labels;
}

double GmmModel::TotalLogLikelihood(const Matrix& data) const {
  double s = 0.0;
  for (size_t i = 0; i < data.rows(); ++i) s += LogDensity(data.Row(i));
  return s;
}

Result<GmmModel> InitGmm(const Matrix& data, size_t k, CovarianceType cov,
                         uint64_t seed) {
  if (k == 0) return Status::InvalidArgument("InitGmm: k must be > 0");
  if (data.rows() < k) {
    return Status::InvalidArgument("InitGmm: fewer objects than components");
  }
  KMeansOptions km;
  km.k = k;
  km.max_iters = 5;
  km.seed = seed;
  MC_ASSIGN_OR_RETURN(Clustering seed_clust, RunKMeans(data, km));

  const size_t d = data.cols();
  // Global per-dimension variance as the starting spread.
  const std::vector<double> mean = RowMean(data);
  std::vector<double> var(d, 0.0);
  for (size_t i = 0; i < data.rows(); ++i) {
    for (size_t j = 0; j < d; ++j) {
      const double diff = data.at(i, j) - mean[j];
      var[j] += diff * diff;
    }
  }
  for (double& v : var) {
    v /= std::max<size_t>(1, data.rows() - 1);
    v = std::max(v, 1e-6);
  }

  GmmModel model;
  model.components.resize(k);
  for (size_t c = 0; c < k; ++c) {
    GmmComponent& comp = model.components[c];
    comp.weight = 1.0 / static_cast<double>(k);
    comp.mean = seed_clust.centroids.Row(c);
    if (cov == CovarianceType::kSpherical) {
      double avg = 0.0;
      for (double v : var) avg += v;
      comp.variances = {avg / static_cast<double>(d)};
    } else {
      comp.variances = var;
    }
  }
  return model;
}

Status MStepFromResponsibilities(const Matrix& data,
                                 const Matrix& responsibilities,
                                 double variance_floor, GmmModel* model) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  const size_t k = model->k();
  if (responsibilities.rows() != n || responsibilities.cols() != k) {
    return Status::InvalidArgument("MStep: responsibility shape mismatch");
  }
  for (size_t c = 0; c < k; ++c) {
    GmmComponent& comp = model->components[c];
    double nc = 0.0;
    std::vector<double> mean(d, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double r = responsibilities.at(i, c);
      nc += r;
      const double* row = data.row_data(i);
      for (size_t j = 0; j < d; ++j) mean[j] += r * row[j];
    }
    if (nc < 1e-10) {
      // Dead component: keep parameters, zero weight.
      comp.weight = 1e-10;
      continue;
    }
    for (double& m : mean) m /= nc;
    const bool spherical = comp.variances.size() == 1;
    std::vector<double> var(spherical ? 1 : d, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double r = responsibilities.at(i, c);
      const double* row = data.row_data(i);
      if (spherical) {
        double s = 0.0;
        for (size_t j = 0; j < d; ++j) {
          const double diff = row[j] - mean[j];
          s += diff * diff;
        }
        var[0] += r * s / static_cast<double>(d);
      } else {
        for (size_t j = 0; j < d; ++j) {
          const double diff = row[j] - mean[j];
          var[j] += r * diff * diff;
        }
      }
    }
    for (double& v : var) v = std::max(v / nc, variance_floor);
    comp.weight = nc / static_cast<double>(n);
    comp.mean = std::move(mean);
    comp.variances = std::move(var);
  }
  // Renormalise weights.
  double total = 0.0;
  for (const GmmComponent& c : model->components) total += c.weight;
  if (total > 0) {
    for (GmmComponent& c : model->components) c.weight /= total;
  }
  return Status::OK();
}

Result<double> EmStep(const Matrix& data, double variance_floor,
                      GmmModel* model) {
  const size_t n = data.rows();
  const size_t k = model->k();
  Matrix resp(n, k);
  double ll = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const std::vector<double> x = data.Row(i);
    std::vector<double> logp(k);
    for (size_t c = 0; c < k; ++c) {
      logp[c] = std::log(std::max(model->components[c].weight, 1e-300)) +
                model->components[c].LogDensity(x);
    }
    const double lse = LogSumExp(logp);
    ll += lse;
    for (size_t c = 0; c < k; ++c) {
      resp.at(i, c) = std::exp(logp[c] - lse);
    }
  }
  MC_RETURN_IF_ERROR(
      MStepFromResponsibilities(data, resp, variance_floor, model));
  return ll;
}

Result<GmmModel> FitGmm(const Matrix& data, const GmmOptions& options) {
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("FitGmm: empty data");
  }
  Rng rng(options.seed);
  GmmModel best;
  double best_ll = -std::numeric_limits<double>::infinity();
  const size_t restarts = options.restarts == 0 ? 1 : options.restarts;
  for (size_t r = 0; r < restarts; ++r) {
    MC_ASSIGN_OR_RETURN(
        GmmModel model,
        InitGmm(data, options.k, options.covariance, rng.NextU64()));
    double prev_ll = -std::numeric_limits<double>::infinity();
    for (size_t iter = 0; iter < options.max_iters; ++iter) {
      MC_ASSIGN_OR_RETURN(double ll,
                          EmStep(data, options.variance_floor, &model));
      if (std::isfinite(prev_ll) &&
          std::fabs(ll - prev_ll) <=
              options.tol * (std::fabs(prev_ll) + 1.0)) {
        break;
      }
      prev_ll = ll;
    }
    model.log_likelihood = model.TotalLogLikelihood(data);
    if (model.log_likelihood > best_ll) {
      best_ll = model.log_likelihood;
      best = std::move(model);
    }
  }
  return best;
}

Result<Clustering> RunGmm(const Matrix& data, const GmmOptions& options) {
  MC_ASSIGN_OR_RETURN(GmmModel model, FitGmm(data, options));
  Clustering c;
  c.labels = model.HardAssign(data);
  c.quality = model.log_likelihood;
  c.algorithm = "gmm-em";
  Matrix centroids(model.k(), data.cols());
  for (size_t i = 0; i < model.k(); ++i) {
    centroids.SetRow(i, model.components[i].mean);
  }
  c.centroids = std::move(centroids);
  return c;
}

}  // namespace multiclust
