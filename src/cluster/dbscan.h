#ifndef MULTICLUST_CLUSTER_DBSCAN_H_
#define MULTICLUST_CLUSTER_DBSCAN_H_

#include <functional>
#include <string>
#include <vector>

#include "cluster/clustering.h"
#include "common/result.h"

namespace multiclust {

/// Options for DBSCAN (Ester et al. 1996).
struct DbscanOptions {
  double eps = 0.5;
  /// Minimum neighbourhood size (including the point itself) for a core
  /// object.
  size_t min_pts = 5;
  /// Accelerate the eps-range queries with the uniform grid index when the
  /// dimensionality permits (<= GridIndex::kMaxIndexDims); results are
  /// identical to the brute-force scan.
  bool use_index = true;
};

/// Runs DBSCAN with Euclidean distance on the rows of `data`.
/// Noise objects get label -1.
Result<Clustering> RunDbscan(const Matrix& data, const DbscanOptions& options);

/// Generic density-connected expansion: given precomputed neighbour lists
/// (neighbors[i] contains i's eps-neighbourhood including i when desired)
/// and the core predicate |N(i)| >= min_pts, produces the DBSCAN labeling.
/// This is the shared engine behind SUBCLU (per-subspace DBSCAN) and the
/// multi-view DBSCAN union/intersection variants (tutorial slides 105-107).
Clustering DbscanFromNeighbors(const std::vector<std::vector<int>>& neighbors,
                               size_t min_pts);

/// Brute-force eps-neighbourhoods (including the point itself) restricted
/// to `dims` (empty = all dimensions).
std::vector<std::vector<int>> EpsNeighborhoods(const Matrix& data, double eps,
                                               const std::vector<size_t>& dims);

/// `Clusterer` adapter.
class DbscanClusterer : public Clusterer {
 public:
  explicit DbscanClusterer(DbscanOptions options) : options_(options) {}

  Result<Clustering> Cluster(const Matrix& data) override {
    return RunDbscan(data, options_);
  }
  std::string name() const override { return "dbscan"; }

 private:
  DbscanOptions options_;
};

}  // namespace multiclust

#endif  // MULTICLUST_CLUSTER_DBSCAN_H_
