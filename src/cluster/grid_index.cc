#include "cluster/grid_index.h"

#include <cmath>

#include "common/parallel.h"

namespace multiclust {

std::vector<int32_t> GridIndex::CellCoords(size_t i) const {
  const size_t d = data_->cols();
  std::vector<int32_t> coords(d);
  const double* row = data_->row_data(i);
  for (size_t j = 0; j < d; ++j) {
    coords[j] = static_cast<int32_t>(
        std::floor((row[j] - origin_[j]) / cell_size_));
  }
  return coords;
}

Result<GridIndex> GridIndex::Build(const Matrix& data, double cell_size) {
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("GridIndex: empty data");
  }
  if (cell_size <= 0) {
    return Status::InvalidArgument("GridIndex: cell_size must be positive");
  }
  GridIndex index;
  index.data_ = &data;
  index.cell_size_ = cell_size;
  index.origin_.resize(data.cols());
  for (size_t j = 0; j < data.cols(); ++j) {
    double mn = data.at(0, j);
    for (size_t i = 1; i < data.rows(); ++i) {
      mn = std::min(mn, data.at(i, j));
    }
    index.origin_[j] = mn;
  }
  index.cell_of_.resize(data.rows());
  for (size_t i = 0; i < data.rows(); ++i) {
    index.cell_of_[i] = index.CellCoords(i);
    index.cells_[index.cell_of_[i]].push_back(static_cast<int>(i));
  }
  return index;
}

std::vector<int> GridIndex::RangeQuery(size_t i, double eps) const {
  const size_t d = data_->cols();
  const double eps2 = eps * eps;
  const std::vector<int32_t>& centre = cell_of_[i];
  std::vector<int> out;

  // Enumerate the 3^d neighbouring cells with an odometer.
  std::vector<int32_t> offset(d, -1);
  while (true) {
    std::vector<int32_t> cell(d);
    for (size_t j = 0; j < d; ++j) cell[j] = centre[j] + offset[j];
    auto it = cells_.find(cell);
    if (it != cells_.end()) {
      const double* a = data_->row_data(i);
      for (int cand : it->second) {
        const double* b = data_->row_data(cand);
        double s = 0.0;
        for (size_t j = 0; j < d; ++j) {
          const double diff = a[j] - b[j];
          s += diff * diff;
          if (s > eps2) break;
        }
        if (s <= eps2) out.push_back(cand);
      }
    }
    // Advance the odometer.
    size_t pos = 0;
    while (pos < d && offset[pos] == 1) {
      offset[pos] = -1;
      ++pos;
    }
    if (pos == d) break;
    ++offset[pos];
  }
  return out;
}

Result<std::vector<std::vector<int>>> EpsNeighborhoodsIndexed(
    const Matrix& data, double eps) {
  if (eps <= 0) {
    return Status::InvalidArgument(
        "EpsNeighborhoodsIndexed: eps must be positive");
  }
  MC_ASSIGN_OR_RETURN(GridIndex index, GridIndex::Build(data, eps));
  std::vector<std::vector<int>> neighbors(data.rows());
  // Range queries only read the index, and each point's list is written by
  // exactly one chunk, so the result matches the serial scan exactly.
  ParallelFor(0, data.rows(), 32, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      neighbors[i] = index.RangeQuery(i, eps);
    }
  });
  return neighbors;
}

}  // namespace multiclust
