#ifndef MULTICLUST_CLUSTER_HIERARCHICAL_H_
#define MULTICLUST_CLUSTER_HIERARCHICAL_H_

#include <string>
#include <vector>

#include "cluster/clustering.h"
#include "common/result.h"

namespace multiclust {

/// Linkage criteria for agglomerative clustering.
enum class Linkage {
  kSingle,
  kComplete,
  kAverage,
};

/// Options for agglomerative hierarchical clustering.
struct AgglomerativeOptions {
  size_t k = 2;  ///< number of clusters to cut the dendrogram at
  Linkage linkage = Linkage::kAverage;
};

/// One merge step of the dendrogram (cluster ids follow scipy convention:
/// leaves are 0..n-1, the merge at step t creates cluster n+t).
struct MergeStep {
  int left = 0;
  int right = 0;
  double distance = 0.0;
};

/// Full dendrogram plus the flat cut.
struct AgglomerativeResult {
  std::vector<MergeStep> merges;
  Clustering flat;
};

/// Agglomerative clustering via the Lance-Williams update on a full
/// pairwise distance matrix (O(n^3); intended for n up to a few thousand).
Result<AgglomerativeResult> RunAgglomerative(
    const Matrix& data, const AgglomerativeOptions& options);

/// Pairwise Euclidean distance matrix of the rows of `data`.
Matrix PairwiseDistances(const Matrix& data);

/// Agglomerative clustering on a precomputed symmetric distance matrix
/// (e.g. a clustering-dissimilarity matrix at the meta level).
Result<AgglomerativeResult> AgglomerateFromDistances(
    const Matrix& distances, const AgglomerativeOptions& options);

/// `Clusterer` adapter.
class AgglomerativeClusterer : public Clusterer {
 public:
  explicit AgglomerativeClusterer(AgglomerativeOptions options)
      : options_(options) {}

  Result<Clustering> Cluster(const Matrix& data) override;
  std::string name() const override { return "agglomerative"; }

 private:
  AgglomerativeOptions options_;
};

}  // namespace multiclust

#endif  // MULTICLUST_CLUSTER_HIERARCHICAL_H_
