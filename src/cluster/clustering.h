#ifndef MULTICLUST_CLUSTER_CLUSTERING_H_
#define MULTICLUST_CLUSTER_CLUSTERING_H_

#include <limits>
#include <string>
#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace multiclust {

/// A single clustering solution: one label per object (-1 = noise), plus
/// optional centroids and an algorithm-specific quality score. This is the
/// `Clust_i` of the tutorial's abstract problem definition (slide 27).
struct Clustering {
  std::vector<int> labels;
  /// Optional cluster centroids (row c = centroid of dense label c);
  /// empty when the producing algorithm has no centroid notion.
  Matrix centroids;
  /// Algorithm-specific quality (e.g. SSE for k-means, log-likelihood for
  /// EM). NaN when not set.
  double quality = std::numeric_limits<double>::quiet_NaN();
  /// Name of the producing algorithm (for reports).
  std::string algorithm;
  /// Convergence diagnostics: outer iterations the producing optimisation
  /// loop executed, and whether its convergence criterion was met before
  /// an iteration/budget cap stopped it. Non-iterative producers leave
  /// the defaults.
  size_t iterations = 0;
  bool converged = true;

  /// Number of distinct non-noise clusters.
  size_t NumClusters() const;

  /// Members of each cluster after dense relabeling: result[c] lists the
  /// object ids with dense label c. Noise objects appear nowhere.
  std::vector<std::vector<int>> ClusterMembers() const;

  /// Relabels `labels` to dense 0..k-1 ids in place (noise preserved).
  void Canonicalize();
};

/// Abstract base for algorithms producing one clustering from a data
/// matrix. Algorithms with richer inputs/outputs (alternative clustering,
/// subspace mining, multi-view) define their own entry points; this
/// interface is what the *exchangeable cluster definition* hooks of the
/// tutorial's flexible methods accept (e.g. meta clustering, orthogonal
/// transformations take "any clustering algorithm").
class Clusterer {
 public:
  virtual ~Clusterer() = default;

  /// Clusters the rows of `data`.
  virtual Result<Clustering> Cluster(const Matrix& data) = 0;

  /// Human-readable algorithm name.
  virtual std::string name() const = 0;
};

/// Assigns every row of `data` to the nearest row of `centers` (squared
/// Euclidean). Shared by k-means-style algorithms.
std::vector<int> AssignToNearest(const Matrix& data, const Matrix& centers);

}  // namespace multiclust

#endif  // MULTICLUST_CLUSTER_CLUSTERING_H_
