#include "cluster/dbscan.h"

#include <deque>

#include "cluster/grid_index.h"
#include "common/parallel.h"
#include "common/runguard.h"
#include "common/trace.h"

namespace multiclust {

std::vector<std::vector<int>> EpsNeighborhoods(
    const Matrix& data, double eps, const std::vector<size_t>& dims) {
  MULTICLUST_TRACE_SPAN("cluster.dbscan.neighbors");
  const size_t n = data.rows();
  const double eps2 = eps * eps;
  std::vector<std::vector<int>> neighbors(n);
  std::vector<size_t> use_dims = dims;
  if (use_dims.empty()) {
    use_dims.resize(data.cols());
    for (size_t j = 0; j < data.cols(); ++j) use_dims[j] = j;
  }
  if (ThreadCount() > 2) {
    // Parallel path: each row scans all n candidates independently (the
    // serial path halves the arithmetic via symmetry, which a parallel
    // version cannot exploit without write races) — roughly 2x the
    // arithmetic for n-way parallelism, so it only pays off beyond 2
    // threads. Both paths emit each neighbour list in ascending id order,
    // and (a-b)^2 == (b-a)^2 exactly in IEEE arithmetic, so the lists are
    // bit-identical across paths and thread counts.
    ParallelFor(0, n, 64, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        const double* a = data.row_data(i);
        for (size_t j = 0; j < n; ++j) {
          double s = 0.0;
          const double* b = data.row_data(j);
          for (size_t d : use_dims) {
            const double diff = a[d] - b[d];
            s += diff * diff;
            if (s > eps2) break;
          }
          if (s <= eps2) neighbors[i].push_back(static_cast<int>(j));
        }
      }
    });
    return neighbors;
  }
  for (size_t i = 0; i < n; ++i) {
    neighbors[i].push_back(static_cast<int>(i));
    for (size_t j = i + 1; j < n; ++j) {
      double s = 0.0;
      const double* a = data.row_data(i);
      const double* b = data.row_data(j);
      for (size_t d : use_dims) {
        const double diff = a[d] - b[d];
        s += diff * diff;
        if (s > eps2) break;
      }
      if (s <= eps2) {
        neighbors[i].push_back(static_cast<int>(j));
        neighbors[j].push_back(static_cast<int>(i));
      }
    }
  }
  return neighbors;
}

Clustering DbscanFromNeighbors(const std::vector<std::vector<int>>& neighbors,
                               size_t min_pts) {
  MULTICLUST_TRACE_SPAN("cluster.dbscan.expand");
  const size_t n = neighbors.size();
  Clustering result;
  result.labels.assign(n, -1);
  result.algorithm = "dbscan";
  std::vector<char> visited(n, 0);
  int next_cluster = 0;

  for (size_t i = 0; i < n; ++i) {
    if (visited[i]) continue;
    visited[i] = 1;
    if (neighbors[i].size() < min_pts) continue;  // not core (maybe border)
    // Expand a new cluster from core point i.
    const int cid = next_cluster++;
    result.labels[i] = cid;
    std::deque<int> frontier(neighbors[i].begin(), neighbors[i].end());
    while (!frontier.empty()) {
      const int p = frontier.front();
      frontier.pop_front();
      if (result.labels[p] < 0) result.labels[p] = cid;  // border or core
      if (visited[p]) continue;
      visited[p] = 1;
      if (neighbors[p].size() >= min_pts) {
        for (int q : neighbors[p]) {
          if (!visited[q] || result.labels[q] < 0) frontier.push_back(q);
        }
      }
    }
  }
  return result;
}

Result<Clustering> RunDbscan(const Matrix& data,
                             const DbscanOptions& options) {
  if (options.eps <= 0) {
    return Status::InvalidArgument("DBSCAN: eps must be positive");
  }
  if (options.min_pts == 0) {
    return Status::InvalidArgument("DBSCAN: min_pts must be positive");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("DBSCAN", data));
  if (options.use_index && data.cols() <= GridIndex::kMaxIndexDims &&
      data.rows() > 0) {
    MC_ASSIGN_OR_RETURN(std::vector<std::vector<int>> neighbors,
                        EpsNeighborhoodsIndexed(data, options.eps));
    return DbscanFromNeighbors(neighbors, options.min_pts);
  }
  const std::vector<std::vector<int>> neighbors =
      EpsNeighborhoods(data, options.eps, {});
  return DbscanFromNeighbors(neighbors, options.min_pts);
}

}  // namespace multiclust
