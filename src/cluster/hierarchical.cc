#include "cluster/hierarchical.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/parallel.h"
#include "common/runguard.h"
#include "linalg/kernels.h"

namespace multiclust {

Matrix PairwiseDistances(const Matrix& data) {
  const size_t n = data.rows();
  Matrix dist(n, n);
  // Upper triangle in parallel (each row owned by one chunk), then a
  // mirror pass — every entry comes from the same expression regardless of
  // thread count.
  ParallelFor(0, n, 16, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        dist.at(i, j) = std::sqrt(kernels::SquaredDistance(
            data.row_data(i), data.row_data(j), data.cols()));
      }
    }
  });
  ParallelFor(0, n, 64, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      for (size_t j = 0; j < i; ++j) dist.at(i, j) = dist.at(j, i);
    }
  });
  return dist;
}

Result<AgglomerativeResult> AgglomerateFromDistances(
    const Matrix& distances, const AgglomerativeOptions& options) {
  const size_t n = distances.rows();
  if (n == 0 || distances.cols() != n) {
    return Status::InvalidArgument(
        "agglomerative: distance matrix must be square and non-empty");
  }
  if (options.k == 0 || options.k > n) {
    return Status::InvalidArgument("agglomerative: invalid k");
  }

  Matrix dist = distances;
  std::vector<int> cluster_id(n);
  std::vector<size_t> sizes(n, 1);
  std::vector<char> active(n, 1);
  for (size_t i = 0; i < n; ++i) cluster_id[i] = static_cast<int>(i);

  AgglomerativeResult result;
  result.merges.reserve(n - 1);
  std::vector<int> flat(n);
  for (size_t i = 0; i < n; ++i) flat[i] = static_cast<int>(i);
  std::vector<std::vector<int>> members(n);
  for (size_t i = 0; i < n; ++i) members[i] = {static_cast<int>(i)};

  size_t remaining = n;
  int next_id = static_cast<int>(n);
  while (remaining > 1) {
    double best = std::numeric_limits<double>::infinity();
    size_t bi = 0, bj = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        if (dist.at(i, j) < best) {
          best = dist.at(i, j);
          bi = i;
          bj = j;
        }
      }
    }
    result.merges.push_back({cluster_id[bi], cluster_id[bj], best});

    const double ni = static_cast<double>(sizes[bi]);
    const double nj = static_cast<double>(sizes[bj]);
    for (size_t h = 0; h < n; ++h) {
      if (!active[h] || h == bi || h == bj) continue;
      const double dih = dist.at(bi, h);
      const double djh = dist.at(bj, h);
      double v = 0.0;
      switch (options.linkage) {
        case Linkage::kSingle:
          v = std::min(dih, djh);
          break;
        case Linkage::kComplete:
          v = std::max(dih, djh);
          break;
        case Linkage::kAverage:
          v = (ni * dih + nj * djh) / (ni + nj);
          break;
      }
      dist.at(bi, h) = v;
      dist.at(h, bi) = v;
    }
    sizes[bi] += sizes[bj];
    active[bj] = 0;
    cluster_id[bi] = next_id++;
    members[bi].insert(members[bi].end(), members[bj].begin(),
                       members[bj].end());
    members[bj].clear();
    --remaining;

    if (remaining == options.k) {
      int label = 0;
      for (size_t i = 0; i < n; ++i) {
        if (!active[i]) continue;
        for (int obj : members[i]) flat[obj] = label;
        ++label;
      }
    }
  }
  if (options.k == n) {
    for (size_t i = 0; i < n; ++i) flat[i] = static_cast<int>(i);
  }

  result.flat.labels = std::move(flat);
  result.flat.algorithm = "agglomerative";
  result.flat.Canonicalize();
  return result;
}

Result<AgglomerativeResult> RunAgglomerative(
    const Matrix& data, const AgglomerativeOptions& options) {
  if (data.rows() == 0) {
    return Status::InvalidArgument("agglomerative: empty data");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("agglomerative", data));
  return AgglomerateFromDistances(PairwiseDistances(data), options);
}

Result<Clustering> AgglomerativeClusterer::Cluster(const Matrix& data) {
  MC_ASSIGN_OR_RETURN(AgglomerativeResult r, RunAgglomerative(data, options_));
  return r.flat;
}

}  // namespace multiclust
