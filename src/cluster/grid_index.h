#ifndef MULTICLUST_CLUSTER_GRID_INDEX_H_
#define MULTICLUST_CLUSTER_GRID_INDEX_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace multiclust {

/// Uniform-grid spatial index for range queries: points are bucketed into
/// cells of edge length `cell_size`; an eps-range query with eps <=
/// cell_size only needs the 3^d neighbouring cells. The classic DBSCAN
/// acceleration structure; effective in low dimensions (the cell fan-out
/// is 3^d, so the index degrades gracefully and `RunDbscan` falls back to
/// the brute-force scan beyond `kMaxIndexDims`).
class GridIndex {
 public:
  /// Dimensionality ceiling for which the index pays off.
  static constexpr size_t kMaxIndexDims = 6;

  /// Builds the index over the rows of `data` (kept by reference — the
  /// matrix must outlive the index).
  static Result<GridIndex> Build(const Matrix& data, double cell_size);

  /// All points within `eps` (Euclidean) of point `i`, including `i`.
  /// Requires eps <= cell_size (enforced at Build time by the caller
  /// choosing cell_size = eps).
  std::vector<int> RangeQuery(size_t i, double eps) const;

  /// Number of non-empty cells (diagnostics).
  size_t num_cells() const { return cells_.size(); }

 private:
  const Matrix* data_ = nullptr;
  double cell_size_ = 1.0;
  std::vector<double> origin_;
  // Cell coordinates -> object ids.
  std::map<std::vector<int32_t>, std::vector<int>> cells_;
  std::vector<std::vector<int32_t>> cell_of_;  // per object

  std::vector<int32_t> CellCoords(size_t i) const;
};

/// Eps-neighbourhood lists for all points via the grid index (exact: the
/// candidate set from adjacent cells is filtered by true distance).
/// Equivalent to `EpsNeighborhoods(data, eps, {})` but O(n * candidates)
/// instead of O(n^2) on low-dimensional, well-spread data.
Result<std::vector<std::vector<int>>> EpsNeighborhoodsIndexed(
    const Matrix& data, double eps);

}  // namespace multiclust

#endif  // MULTICLUST_CLUSTER_GRID_INDEX_H_
