#include "multiview/consensus.h"

#include <algorithm>

#include "cluster/gmm.h"
#include "cluster/hierarchical.h"
#include "common/rng.h"
#include "common/runguard.h"
#include "metrics/partition_similarity.h"
#include "multiview/random_projection.h"

namespace multiclust {

Result<double> AverageNmi(const std::vector<int>& labels,
                          const std::vector<std::vector<int>>& members) {
  if (members.empty()) return 0.0;
  double total = 0.0;
  for (const auto& m : members) {
    MC_ASSIGN_OR_RETURN(double nmi, NormalizedMutualInformation(labels, m));
    total += nmi;
  }
  return total / static_cast<double>(members.size());
}

Result<ConsensusResult> RunEnsembleConsensus(const Matrix& data,
                                             const ConsensusOptions& options) {
  const size_t n = data.rows();
  if (n == 0) return Status::InvalidArgument("consensus: empty data");
  if (options.ensemble_size == 0) {
    return Status::InvalidArgument("consensus: ensemble_size must be > 0");
  }
  if (options.k_final == 0 || options.k_final > n) {
    return Status::InvalidArgument("consensus: invalid k_final");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("consensus", data));
  const size_t proj_dims =
      std::max<size_t>(1, std::min(options.projection_dims, data.cols()));

  Rng rng(options.seed);
  ConsensusResult result;
  result.coassociation = Matrix(n, n);

  for (size_t e = 0; e < options.ensemble_size; ++e) {
    MC_ASSIGN_OR_RETURN(Matrix projected,
                        RandomProject(data, proj_dims, rng.NextU64()));
    GmmOptions gmm;
    gmm.k = options.k_member;
    gmm.seed = rng.NextU64();
    gmm.max_iters = 50;
    gmm.restarts = options.member_restarts;
    MC_ASSIGN_OR_RETURN(GmmModel model, FitGmm(projected, gmm));
    result.member_labels.push_back(model.HardAssign(projected));

    // Soft co-association increment: P_e(i ~ j) = sum_l P(l|i) P(l|j).
    Matrix resp(n, options.k_member);
    for (size_t i = 0; i < n; ++i) {
      const std::vector<double> r = model.Responsibilities(projected.Row(i));
      for (size_t c = 0; c < options.k_member; ++c) resp.at(i, c) = r[c];
    }
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i; j < n; ++j) {
        double p = 0.0;
        for (size_t c = 0; c < options.k_member; ++c) {
          p += resp.at(i, c) * resp.at(j, c);
        }
        result.coassociation.at(i, j) += p;
        if (j != i) result.coassociation.at(j, i) += p;
      }
    }
  }
  const double inv = 1.0 / static_cast<double>(options.ensemble_size);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) result.coassociation.at(i, j) *= inv;
  }

  // Re-cluster by average-link agglomeration on 1 - coassociation.
  Matrix dist(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      dist.at(i, j) = i == j ? 0.0
                             : std::max(0.0, 1.0 - result.coassociation.at(i, j));
    }
  }
  AgglomerativeOptions agg;
  agg.k = options.k_final;
  agg.linkage = Linkage::kAverage;
  MC_ASSIGN_OR_RETURN(AgglomerativeResult reclustered,
                      AgglomerateFromDistances(dist, agg));
  result.consensus = reclustered.flat;
  result.consensus.algorithm = "ensemble-consensus";
  MC_ASSIGN_OR_RETURN(result.anmi, AverageNmi(result.consensus.labels,
                                              result.member_labels));
  result.consensus.quality = result.anmi;
  return result;
}

}  // namespace multiclust
