#ifndef MULTICLUST_MULTIVIEW_CO_EM_H_
#define MULTICLUST_MULTIVIEW_CO_EM_H_

#include <cstdint>
#include <vector>

#include "cluster/clustering.h"
#include "cluster/gmm.h"
#include "common/result.h"
#include "common/runguard.h"

namespace multiclust {

/// Options for co-EM multi-view clustering (Bickel & Scheffer 2004;
/// tutorial slides 101-104).
struct CoEmOptions {
  size_t k = 2;
  size_t max_iters = 50;
  double variance_floor = 1e-6;
  /// Stop when the inter-view agreement (fraction of objects with equal
  /// hard assignment in both views) stops improving for this many rounds.
  /// co-EM need not converge (slide 104), so this extra criterion is
  /// required.
  size_t patience = 5;
  uint64_t seed = 1;
  /// Wall-clock / iteration / cancellation limits (see common/runguard.h).
  RunBudget budget;
  /// Optional observability sink (not owned): per-round ConvergenceTrace
  /// (joint log-likelihood, improvement over the best round so far) plus
  /// iterations/convergence/stop-reason. nullptr (the default) records
  /// nothing.
  RunDiagnostics* diagnostics = nullptr;
};

/// Full output of a co-EM run.
struct CoEmResult {
  GmmModel model_view1;
  GmmModel model_view2;
  /// Consensus clustering from the combined (averaged) responsibilities.
  Clustering consensus;
  /// Hard assignments per view.
  std::vector<int> labels_view1;
  std::vector<int> labels_view2;
  /// Log-likelihood of each view's model on its view.
  double log_likelihood_view1 = 0.0;
  double log_likelihood_view2 = 0.0;
  /// Final inter-view agreement in [0, 1].
  double agreement = 0.0;
  size_t iterations = 0;
  /// False when an iteration/deadline budget stopped the run before the
  /// stale-log-likelihood termination rule fired.
  bool converged = false;
};

/// co-EM: interleaved EM across two conditionally independent views. Each
/// view's M-step consumes the posterior responsibilities computed in the
/// *other* view (the bootstrapping of the co-training principle), driving
/// both hypotheses towards agreement. Rows of the two views must be paired.
Result<CoEmResult> RunCoEm(const Matrix& view1, const Matrix& view2,
                           const CoEmOptions& options);

/// Fraction of objects whose hard labels agree between two labelings under
/// the best cluster matching (Hungarian). Used as co-EM's termination
/// signal and reported as the disagreement bound of slide 99.
Result<double> LabelAgreement(const std::vector<int>& a,
                              const std::vector<int>& b);

}  // namespace multiclust

#endif  // MULTICLUST_MULTIVIEW_CO_EM_H_
