#include "multiview/random_projection.h"

#include <cmath>

#include "common/rng.h"

namespace multiclust {

Result<Matrix> RandomProjectionMatrix(size_t source_dims, size_t target_dims,
                                      uint64_t seed) {
  if (source_dims == 0 || target_dims == 0) {
    return Status::InvalidArgument("RandomProjectionMatrix: zero dims");
  }
  Rng rng(seed);
  const double scale = 1.0 / std::sqrt(static_cast<double>(target_dims));
  Matrix p(target_dims, source_dims);
  for (size_t i = 0; i < target_dims; ++i) {
    for (size_t j = 0; j < source_dims; ++j) {
      p.at(i, j) = rng.NextGaussian() * scale;
    }
  }
  return p;
}

Result<Matrix> RandomProject(const Matrix& data, size_t target_dims,
                             uint64_t seed) {
  MC_ASSIGN_OR_RETURN(Matrix p,
                      RandomProjectionMatrix(data.cols(), target_dims, seed));
  return data * p.Transpose();
}

}  // namespace multiclust
