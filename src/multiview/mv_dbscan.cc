#include "multiview/mv_dbscan.h"

#include <algorithm>

#include "cluster/dbscan.h"
#include "common/runguard.h"

namespace multiclust {

Result<Clustering> RunMvDbscan(const std::vector<Matrix>& views,
                               const MvDbscanOptions& options) {
  if (views.empty()) {
    return Status::InvalidArgument("mv-dbscan: no views given");
  }
  if (options.eps.size() != views.size()) {
    return Status::InvalidArgument(
        "mv-dbscan: need one eps per view");
  }
  const size_t n = views[0].rows();
  for (const Matrix& v : views) {
    if (v.rows() != n) {
      return Status::InvalidArgument("mv-dbscan: views must have paired rows");
    }
    MC_RETURN_IF_ERROR(ValidateMatrix("mv-dbscan", v));
  }
  if (options.min_pts == 0) {
    return Status::InvalidArgument("mv-dbscan: min_pts must be positive");
  }

  // Per-view sorted neighbourhoods.
  std::vector<std::vector<std::vector<int>>> per_view(views.size());
  for (size_t v = 0; v < views.size(); ++v) {
    if (options.eps[v] <= 0) {
      return Status::InvalidArgument("mv-dbscan: eps must be positive");
    }
    per_view[v] = EpsNeighborhoods(views[v], options.eps[v], {});
    for (auto& nb : per_view[v]) std::sort(nb.begin(), nb.end());
  }

  // Combine per object.
  std::vector<std::vector<int>> combined(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<int> acc = per_view[0][i];
    for (size_t v = 1; v < views.size(); ++v) {
      std::vector<int> merged;
      if (options.combination == ViewCombination::kUnion) {
        std::set_union(acc.begin(), acc.end(), per_view[v][i].begin(),
                       per_view[v][i].end(), std::back_inserter(merged));
      } else {
        std::set_intersection(acc.begin(), acc.end(), per_view[v][i].begin(),
                              per_view[v][i].end(),
                              std::back_inserter(merged));
      }
      acc = std::move(merged);
    }
    combined[i] = std::move(acc);
  }

  Clustering c = DbscanFromNeighbors(combined, options.min_pts);
  c.algorithm = options.combination == ViewCombination::kUnion
                    ? "mv-dbscan-union"
                    : "mv-dbscan-intersection";
  return c;
}

}  // namespace multiclust
