#ifndef MULTICLUST_MULTIVIEW_MV_DBSCAN_H_
#define MULTICLUST_MULTIVIEW_MV_DBSCAN_H_

#include <vector>

#include "cluster/clustering.h"
#include "common/result.h"

namespace multiclust {

/// How per-view neighbourhoods are combined (Kailing et al. 2004a;
/// tutorial slides 105-107).
enum class ViewCombination {
  /// Same cluster when similar in *at least one* view — suited to sparse
  /// views with many small clusters and much noise.
  kUnion,
  /// Same cluster only when similar in *all* views — suited to unreliable
  /// views; yields purer clusters.
  kIntersection,
};

/// Options for multi-view DBSCAN.
struct MvDbscanOptions {
  /// Per-view epsilon (size must match the number of views).
  std::vector<double> eps;
  /// Core-object threshold k on the combined neighbourhood size.
  size_t min_pts = 5;
  ViewCombination combination = ViewCombination::kUnion;
};

/// Multi-view DBSCAN over multi-represented objects: `views[v]` holds the
/// v-th representation (paired rows across views). Local eps-neighbourhoods
/// are computed per view and combined by union or intersection before the
/// density-connected expansion.
Result<Clustering> RunMvDbscan(const std::vector<Matrix>& views,
                               const MvDbscanOptions& options);

}  // namespace multiclust

#endif  // MULTICLUST_MULTIVIEW_MV_DBSCAN_H_
