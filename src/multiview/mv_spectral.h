#ifndef MULTICLUST_MULTIVIEW_MV_SPECTRAL_H_
#define MULTICLUST_MULTIVIEW_MV_SPECTRAL_H_

#include <cstdint>
#include <vector>

#include "cluster/clustering.h"
#include "common/result.h"

namespace multiclust {

/// How per-view affinities are fused.
enum class AffinityFusion {
  /// Arithmetic mean of the per-view kernels (robust default).
  kAverage,
  /// Elementwise product: objects must be similar in *every* view (the
  /// multi-view analogue of the intersection rule).
  kProduct,
};

/// Options for multi-view spectral clustering (de Sa 2005; Zhou & Burges
/// 2007; tutorial slide 100).
struct MvSpectralOptions {
  size_t k = 2;
  /// Per-view RBF parameter; <= 0 = median heuristic per view.
  double gamma = 0.0;
  AffinityFusion fusion = AffinityFusion::kAverage;
  uint64_t seed = 1;
};

/// Multi-view spectral clustering: builds one Gaussian affinity per view
/// (paired rows), fuses them, and runs the normalised spectral embedding +
/// k-means on the fused graph. A consensus-style method: one clustering
/// supported by all views.
Result<Clustering> RunMvSpectral(const std::vector<Matrix>& views,
                                 const MvSpectralOptions& options);

}  // namespace multiclust

#endif  // MULTICLUST_MULTIVIEW_MV_SPECTRAL_H_
