#ifndef MULTICLUST_MULTIVIEW_CONSENSUS_H_
#define MULTICLUST_MULTIVIEW_CONSENSUS_H_

#include <cstdint>
#include <vector>

#include "cluster/clustering.h"
#include "common/result.h"

namespace multiclust {

/// Options for the random-projection cluster ensemble with co-association
/// consensus (Fern & Brodley 2003; consensus objective of Strehl & Ghosh
/// 2002; tutorial slides 108-110).
struct ConsensusOptions {
  /// Number of ensemble members (random projections + EM runs).
  size_t ensemble_size = 10;
  /// Target dimensionality of each random projection.
  size_t projection_dims = 2;
  /// Mixture components per ensemble member.
  size_t k_member = 3;
  /// EM restarts per ensemble member (cheap insurance against degenerate
  /// members).
  size_t member_restarts = 2;
  /// Final number of consensus clusters.
  size_t k_final = 3;
  uint64_t seed = 1;
};

/// Full output.
struct ConsensusResult {
  /// The consensus clustering.
  Clustering consensus;
  /// Soft co-association matrix: P_ij = mean_e sum_l P_e(l|i) P_e(l|j)
  /// (probability i and j share a cluster under ensemble member e).
  Matrix coassociation;
  /// Hard labels of each ensemble member.
  std::vector<std::vector<int>> member_labels;
  /// Average NMI between the consensus and the ensemble members — the
  /// shared-mutual-information objective of Strehl & Ghosh.
  double anmi = 0.0;
};

/// Ensemble consensus: cluster many random low-dimensional projections with
/// EM, aggregate the soft co-association probabilities, and re-cluster the
/// objects by average-link agglomeration on 1 - P. Stabilises a *single*
/// solution out of many views — the converse use of multiple clusterings
/// (tutorial slide 108: "stabilize one clustering solution").
Result<ConsensusResult> RunEnsembleConsensus(const Matrix& data,
                                             const ConsensusOptions& options);

/// Average NMI of `labels` against each labeling in `members` (the ANMI
/// objective).
Result<double> AverageNmi(const std::vector<int>& labels,
                          const std::vector<std::vector<int>>& members);

}  // namespace multiclust

#endif  // MULTICLUST_MULTIVIEW_CONSENSUS_H_
