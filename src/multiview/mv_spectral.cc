#include "multiview/mv_spectral.h"

#include <cmath>

#include "cluster/kmeans.h"
#include "common/runguard.h"
#include "linalg/decomposition.h"
#include "stats/hsic.h"

namespace multiclust {

Result<Clustering> RunMvSpectral(const std::vector<Matrix>& views,
                                 const MvSpectralOptions& options) {
  if (views.empty()) {
    return Status::InvalidArgument("mv-spectral: no views");
  }
  const size_t n = views[0].rows();
  for (const Matrix& v : views) {
    if (v.rows() != n) {
      return Status::InvalidArgument("mv-spectral: unpaired view rows");
    }
    MC_RETURN_IF_ERROR(ValidateMatrix("mv-spectral", v));
  }
  if (options.k == 0 || options.k > n) {
    return Status::InvalidArgument("mv-spectral: invalid k");
  }

  // Fused affinity.
  Matrix w(n, n, options.fusion == AffinityFusion::kProduct ? 1.0 : 0.0);
  for (const Matrix& view : views) {
    const Matrix kern = GaussianKernelMatrix(view, options.gamma);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (options.fusion == AffinityFusion::kProduct) {
          w.at(i, j) *= kern.at(i, j);
        } else {
          w.at(i, j) += kern.at(i, j) / static_cast<double>(views.size());
        }
      }
    }
  }
  for (size_t i = 0; i < n; ++i) w.at(i, i) = 0.0;

  // Normalised spectral embedding (as in RunSpectral).
  std::vector<double> inv_sqrt_deg(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double deg = 0.0;
    for (size_t j = 0; j < n; ++j) deg += w.at(i, j);
    inv_sqrt_deg[i] = deg > 1e-12 ? 1.0 / std::sqrt(deg) : 0.0;
  }
  Matrix norm(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      norm.at(i, j) = inv_sqrt_deg[i] * w.at(i, j) * inv_sqrt_deg[j];
    }
  }
  MC_ASSIGN_OR_RETURN(SymmetricEigen eig, EigenSymmetric(norm));
  Matrix embed(n, options.k);
  for (size_t i = 0; i < n; ++i) {
    double norm_sq = 0.0;
    for (size_t c = 0; c < options.k; ++c) {
      embed.at(i, c) = eig.vectors.at(i, c);
      norm_sq += embed.at(i, c) * embed.at(i, c);
    }
    if (norm_sq > 1e-24) {
      const double inv = 1.0 / std::sqrt(norm_sq);
      for (size_t c = 0; c < options.k; ++c) embed.at(i, c) *= inv;
    }
  }
  KMeansOptions km;
  km.k = options.k;
  km.restarts = 5;
  km.seed = options.seed;
  MC_ASSIGN_OR_RETURN(Clustering c, RunKMeans(embed, km));
  c.algorithm = options.fusion == AffinityFusion::kProduct
                    ? "mv-spectral-product"
                    : "mv-spectral-average";
  c.centroids = Matrix();
  return c;
}

}  // namespace multiclust
