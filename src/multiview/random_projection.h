#ifndef MULTICLUST_MULTIVIEW_RANDOM_PROJECTION_H_
#define MULTICLUST_MULTIVIEW_RANDOM_PROJECTION_H_

#include <cstdint>

#include "common/result.h"
#include "linalg/matrix.h"

namespace multiclust {

/// A random Gaussian projection matrix (target_dims x source_dims) with
/// entries N(0, 1/target_dims): approximately distance-preserving
/// (Johnson-Lindenstrauss) while randomising the view. Used to create the
/// diverse low-dimensional views of the Fern & Brodley 2003 ensemble
/// (tutorial slides 108-110).
Result<Matrix> RandomProjectionMatrix(size_t source_dims, size_t target_dims,
                                      uint64_t seed);

/// Projects the rows of `data` through a fresh random projection.
Result<Matrix> RandomProject(const Matrix& data, size_t target_dims,
                             uint64_t seed);

}  // namespace multiclust

#endif  // MULTICLUST_MULTIVIEW_RANDOM_PROJECTION_H_
