#include "multiview/co_em.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "common/checkpoint.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "metrics/partition_similarity.h"

namespace multiclust {

Result<double> LabelAgreement(const std::vector<int>& a,
                              const std::vector<int>& b) {
  return BestMatchAccuracy(a, b);
}

namespace {

// E-step only: responsibilities of `model` on `data`.
Matrix ComputeResponsibilities(const GmmModel& model, const Matrix& data) {
  const size_t n = data.rows();
  Matrix resp(n, model.k());
  for (size_t i = 0; i < n; ++i) {
    const std::vector<double> r = model.Responsibilities(data.Row(i));
    for (size_t c = 0; c < model.k(); ++c) resp.at(i, c) = r[c];
  }
  return resp;
}

// Checkpoint state between co-EM rounds. resp1 is NOT serialized: at every
// persistence point it equals ComputeResponsibilities(m1, view1), which
// the resume path recomputes bit-identically from the restored model.
struct CoEmCkptState {
  size_t step = 0;
  size_t next_iter = 0;
  GmmModel m1;
  GmmModel m2;
  bool has_best = false;  // best_ll starts at -inf, unrepresentable in JSON
  double best_ll = 0.0;
  size_t stale = 0;
  size_t iterations_done = 0;
  ConvergenceTrace trace;
};

void WriteCoEmPayload(json::Writer* w, const CoEmCkptState& s) {
  w->BeginObject();
  w->Key("step");
  w->Uint(s.step);
  w->Key("next_iter");
  w->Uint(s.next_iter);
  w->Key("m1");
  WriteGmmModelCkpt(w, s.m1);
  w->Key("m2");
  WriteGmmModelCkpt(w, s.m2);
  w->Key("has_best");
  w->Bool(s.has_best);
  w->Key("best_ll");
  w->Double(s.has_best ? s.best_ll : 0.0);
  w->Key("stale");
  w->Uint(s.stale);
  w->Key("iterations_done");
  w->Uint(s.iterations_done);
  w->Key("trace");
  ckpt::WriteTrace(w, s.trace);
  w->EndObject();
}

Status ReadCoEmPayload(const json::Value& v, CoEmCkptState* s) {
  MC_ASSIGN_OR_RETURN(s->step, ckpt::SizeField(v, "step"));
  MC_ASSIGN_OR_RETURN(s->next_iter, ckpt::SizeField(v, "next_iter"));
  MC_ASSIGN_OR_RETURN(const json::Value* m1, ckpt::Field(v, "m1"));
  MC_ASSIGN_OR_RETURN(s->m1, ReadGmmModelCkpt(*m1));
  MC_ASSIGN_OR_RETURN(const json::Value* m2, ckpt::Field(v, "m2"));
  MC_ASSIGN_OR_RETURN(s->m2, ReadGmmModelCkpt(*m2));
  MC_ASSIGN_OR_RETURN(s->has_best, ckpt::BoolField(v, "has_best"));
  MC_ASSIGN_OR_RETURN(s->best_ll, ckpt::NumberField(v, "best_ll"));
  if (!s->has_best) s->best_ll = -std::numeric_limits<double>::infinity();
  MC_ASSIGN_OR_RETURN(s->stale, ckpt::SizeField(v, "stale"));
  MC_ASSIGN_OR_RETURN(s->iterations_done,
                      ckpt::SizeField(v, "iterations_done"));
  MC_ASSIGN_OR_RETURN(const json::Value* tr, ckpt::Field(v, "trace"));
  MC_ASSIGN_OR_RETURN(s->trace, ckpt::ReadTrace(*tr));
  return Status::OK();
}

uint64_t CoEmFingerprint(const Matrix& view1, const Matrix& view2,
                         const CoEmOptions& options) {
  Fingerprint fp;
  fp.Mix("co-em");
  fp.Mix(static_cast<uint64_t>(options.k));
  fp.Mix(static_cast<uint64_t>(options.max_iters));
  fp.MixDouble(options.variance_floor);
  fp.Mix(static_cast<uint64_t>(options.patience));
  fp.Mix(options.seed);
  fp.Mix(static_cast<uint64_t>(options.budget.max_iterations));
  fp.Mix(view1);
  fp.Mix(view2);
  return fp.value();
}

}  // namespace

Result<CoEmResult> RunCoEm(const Matrix& view1, const Matrix& view2,
                           const CoEmOptions& options) {
  if (view1.rows() != view2.rows()) {
    return Status::InvalidArgument("co-EM: views must have paired rows");
  }
  if (view1.rows() == 0) return Status::InvalidArgument("co-EM: empty data");
  MC_RETURN_IF_ERROR(ValidateMatrix("co-EM view 1", view1));
  MC_RETURN_IF_ERROR(ValidateMatrix("co-EM view 2", view2));
  MULTICLUST_TRACE_SPAN("multiview.co_em.run");
  BudgetTracker guard(options.budget, "co-em");
  ConvergenceRecorder recorder(options.diagnostics, &guard);
  recorder.SetExpectedIterations(
      options.budget.max_iterations != 0
          ? std::min(options.max_iters, options.budget.max_iterations)
          : options.max_iters);
  const size_t n = view1.rows();

  CoEmResult result;
  MC_ASSIGN_OR_RETURN(
      GmmModel m1,
      InitGmm(view1, options.k, CovarianceType::kDiagonal, options.seed));
  MC_ASSIGN_OR_RETURN(
      GmmModel m2,
      InitGmm(view2, options.k, CovarianceType::kDiagonal,
              options.seed ^ 0x9E3779B9ULL));

  // Termination: co-EM need not converge (slide 104), so run a minimum
  // number of rounds and then stop once the joint log-likelihood has been
  // flat for `patience` rounds.
  const size_t kMinIters = 10;
  double best_ll = -std::numeric_limits<double>::infinity();
  size_t stale = 0;
  size_t start_iter = 0;

  // --- Checkpoint/resume ----------------------------------------------
  Checkpointer* ckp = options.budget.checkpoint;
  const uint64_t fp =
      ckp != nullptr ? CoEmFingerprint(view1, view2, options) : 0;
  size_t ckpt_step = 0;
  if (ckp != nullptr) {
    if (auto restored = ckp->TryRestore("co-em", fp, options.diagnostics)) {
      CoEmCkptState state;
      Status parsed = ReadCoEmPayload(restored->payload, &state);
      if (parsed.ok() && state.m1.k() == options.k &&
          state.m2.k() == options.k) {
        m1 = std::move(state.m1);
        m2 = std::move(state.m2);
        best_ll = state.best_ll;
        stale = state.stale;
        start_iter = state.next_iter;
        result.iterations = state.iterations_done;
        ckpt_step = state.step;
        if (options.diagnostics != nullptr) {
          options.diagnostics->trace = state.trace;
        }
      } else {
        AddWarning(options.diagnostics, "co-em",
                   "checkpoint payload rejected (" +
                       (parsed.ok() ? std::string("component count mismatch")
                                    : parsed.message()) +
                       "); cold start");
      }
    }
  }
  // The model/trace copies live inside the payload writer, so an
  // armed-but-not-due persistence point pays only the policy check.
  auto snapshot = [&](size_t next_iter, bool flush) -> Status {
    auto payload = [&](json::Writer* w) {
      CoEmCkptState s;
      s.step = ckpt_step;
      s.next_iter = next_iter;
      s.m1 = m1;
      s.m2 = m2;
      s.has_best = std::isfinite(best_ll);
      s.best_ll = best_ll;
      s.stale = stale;
      s.iterations_done = result.iterations;
      if (options.diagnostics != nullptr) s.trace = options.diagnostics->trace;
      WriteCoEmPayload(w, s);
    };
    Status st = flush ? ckp->Flush("co-em", fp, payload)
                      : ckp->AtPersistencePoint("co-em", fp, ckpt_step,
                                                payload);
    ++ckpt_step;
    return flush ? Status::OK() : st;
  };
  // ---------------------------------------------------------------------

  // Prime: one E-step in view 1 to produce the first responsibilities.
  // On resume this replays the E-step the interrupted run took at the end
  // of its last completed round — bit-identical, since it is a pure
  // function of the restored view-1 model.
  Matrix resp1 = ComputeResponsibilities(m1, view1);

  for (size_t iter = start_iter; iter < options.max_iters; ++iter) {
    if (guard.Cancelled()) {
      if (ckp != nullptr) (void)snapshot(iter, /*flush=*/true);
      return guard.CancelledStatus();
    }
    if (guard.ShouldStop(iter)) break;
    MC_METRIC_COUNT("multiview.co_em.iterations", 1);
    MULTICLUST_TRACE_SPAN("multiview.co_em.round");
    // View 2: M-step from view-1 responsibilities, then E-step.
    MC_RETURN_IF_ERROR(MStepFromResponsibilities(view2, resp1,
                                                 options.variance_floor, &m2));
    Matrix resp2 = ComputeResponsibilities(m2, view2);
    // View 1: M-step from view-2 responsibilities, then E-step.
    MC_RETURN_IF_ERROR(MStepFromResponsibilities(view1, resp2,
                                                 options.variance_floor, &m1));
    resp1 = ComputeResponsibilities(m1, view1);
    result.iterations = iter + 1;

    double ll =
        m1.TotalLogLikelihood(view1) + m2.TotalLogLikelihood(view2);
    if (MC_FAULT_FIRES("co-em", FaultKind::kInjectNaN, iter)) {
      ll = std::numeric_limits<double>::quiet_NaN();
    }
    if (MC_FAULT_FIRES("co-em", FaultKind::kAllocFail, iter)) {
      return Status::ComputationError(
          "co-EM: injected allocation failure growing the responsibility "
          "matrices at iteration " + std::to_string(iter));
    }
    // -inf can legitimately appear on the first rounds (underflow of a far
    // component); only NaN marks a genuinely poisoned state.
    if (std::isnan(ll)) {
      return Status::ComputationError(
          "co-EM: non-finite joint log-likelihood at iteration " +
          std::to_string(iter));
    }
    if (recorder.enabled()) {
      const double delta =
          std::isfinite(best_ll) && std::isfinite(ll) ? ll - best_ll : 0.0;
      recorder.Record(0, iter, ll, delta, 0);
    }
    if (ll > best_ll + 1e-6 * (std::fabs(best_ll) + 1.0)) {
      best_ll = ll;
      stale = 0;
    } else {
      ++stale;
      if (iter + 1 >= kMinIters && stale >= options.patience &&
          !MC_FAULT_FIRES("co-em", FaultKind::kForceNonConvergence, iter)) {
        result.converged = true;
        break;
      }
    }
    // Persistence point: round complete, models and staleness counters
    // consistent. Skipped on the convergence break above — there is
    // nothing left to resume into.
    if (ckp != nullptr) {
      MC_RETURN_IF_ERROR(snapshot(iter + 1, /*flush=*/false));
    }
  }

  recorder.Finish("co-em", result.iterations, result.converged);
  result.model_view1 = m1;
  result.model_view2 = m2;
  result.labels_view1 = m1.HardAssign(view1);
  result.labels_view2 = m2.HardAssign(view2);
  result.log_likelihood_view1 = m1.TotalLogLikelihood(view1);
  result.log_likelihood_view2 = m2.TotalLogLikelihood(view2);
  MC_ASSIGN_OR_RETURN(result.agreement,
                      LabelAgreement(result.labels_view1,
                                     result.labels_view2));

  // Consensus: average the per-view responsibilities.
  const Matrix resp2 = ComputeResponsibilities(m2, view2);
  Clustering consensus;
  consensus.labels.assign(n, -1);
  consensus.algorithm = "co-em";
  for (size_t i = 0; i < n; ++i) {
    double best = -1.0;
    for (size_t c = 0; c < options.k; ++c) {
      const double p = 0.5 * (resp1.at(i, c) + resp2.at(i, c));
      if (p > best) {
        best = p;
        consensus.labels[i] = static_cast<int>(c);
      }
    }
  }
  consensus.quality =
      result.log_likelihood_view1 + result.log_likelihood_view2;
  result.consensus = std::move(consensus);
  return result;
}

}  // namespace multiclust
