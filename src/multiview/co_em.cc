#include "multiview/co_em.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "metrics/partition_similarity.h"

namespace multiclust {

Result<double> LabelAgreement(const std::vector<int>& a,
                              const std::vector<int>& b) {
  return BestMatchAccuracy(a, b);
}

namespace {

// E-step only: responsibilities of `model` on `data`.
Matrix ComputeResponsibilities(const GmmModel& model, const Matrix& data) {
  const size_t n = data.rows();
  Matrix resp(n, model.k());
  for (size_t i = 0; i < n; ++i) {
    const std::vector<double> r = model.Responsibilities(data.Row(i));
    for (size_t c = 0; c < model.k(); ++c) resp.at(i, c) = r[c];
  }
  return resp;
}

}  // namespace

Result<CoEmResult> RunCoEm(const Matrix& view1, const Matrix& view2,
                           const CoEmOptions& options) {
  if (view1.rows() != view2.rows()) {
    return Status::InvalidArgument("co-EM: views must have paired rows");
  }
  if (view1.rows() == 0) return Status::InvalidArgument("co-EM: empty data");
  MC_RETURN_IF_ERROR(ValidateMatrix("co-EM view 1", view1));
  MC_RETURN_IF_ERROR(ValidateMatrix("co-EM view 2", view2));
  MULTICLUST_TRACE_SPAN("multiview.co_em.run");
  BudgetTracker guard(options.budget, "co-em");
  ConvergenceRecorder recorder(options.diagnostics, &guard);
  const size_t n = view1.rows();

  CoEmResult result;
  MC_ASSIGN_OR_RETURN(
      GmmModel m1,
      InitGmm(view1, options.k, CovarianceType::kDiagonal, options.seed));
  MC_ASSIGN_OR_RETURN(
      GmmModel m2,
      InitGmm(view2, options.k, CovarianceType::kDiagonal,
              options.seed ^ 0x9E3779B9ULL));

  // Prime: one E-step in view 1 to produce the first responsibilities.
  Matrix resp1 = ComputeResponsibilities(m1, view1);

  // Termination: co-EM need not converge (slide 104), so run a minimum
  // number of rounds and then stop once the joint log-likelihood has been
  // flat for `patience` rounds.
  const size_t kMinIters = 10;
  double best_ll = -std::numeric_limits<double>::infinity();
  size_t stale = 0;
  for (size_t iter = 0; iter < options.max_iters; ++iter) {
    if (guard.Cancelled()) return guard.CancelledStatus();
    if (guard.ShouldStop(iter)) break;
    MC_METRIC_COUNT("multiview.co_em.iterations", 1);
    MULTICLUST_TRACE_SPAN("multiview.co_em.round");
    // View 2: M-step from view-1 responsibilities, then E-step.
    MC_RETURN_IF_ERROR(MStepFromResponsibilities(view2, resp1,
                                                 options.variance_floor, &m2));
    Matrix resp2 = ComputeResponsibilities(m2, view2);
    // View 1: M-step from view-2 responsibilities, then E-step.
    MC_RETURN_IF_ERROR(MStepFromResponsibilities(view1, resp2,
                                                 options.variance_floor, &m1));
    resp1 = ComputeResponsibilities(m1, view1);
    result.iterations = iter + 1;

    double ll =
        m1.TotalLogLikelihood(view1) + m2.TotalLogLikelihood(view2);
    if (MC_FAULT_FIRES("co-em", FaultKind::kInjectNaN, iter)) {
      ll = std::numeric_limits<double>::quiet_NaN();
    }
    // -inf can legitimately appear on the first rounds (underflow of a far
    // component); only NaN marks a genuinely poisoned state.
    if (std::isnan(ll)) {
      return Status::ComputationError(
          "co-EM: non-finite joint log-likelihood at iteration " +
          std::to_string(iter));
    }
    if (recorder.enabled()) {
      const double delta =
          std::isfinite(best_ll) && std::isfinite(ll) ? ll - best_ll : 0.0;
      recorder.Record(0, iter, ll, delta, 0);
    }
    if (ll > best_ll + 1e-6 * (std::fabs(best_ll) + 1.0)) {
      best_ll = ll;
      stale = 0;
    } else {
      ++stale;
      if (iter + 1 >= kMinIters && stale >= options.patience &&
          !MC_FAULT_FIRES("co-em", FaultKind::kForceNonConvergence, iter)) {
        result.converged = true;
        break;
      }
    }
  }

  recorder.Finish("co-em", result.iterations, result.converged);
  result.model_view1 = m1;
  result.model_view2 = m2;
  result.labels_view1 = m1.HardAssign(view1);
  result.labels_view2 = m2.HardAssign(view2);
  result.log_likelihood_view1 = m1.TotalLogLikelihood(view1);
  result.log_likelihood_view2 = m2.TotalLogLikelihood(view2);
  MC_ASSIGN_OR_RETURN(result.agreement,
                      LabelAgreement(result.labels_view1,
                                     result.labels_view2));

  // Consensus: average the per-view responsibilities.
  const Matrix resp2 = ComputeResponsibilities(m2, view2);
  Clustering consensus;
  consensus.labels.assign(n, -1);
  consensus.algorithm = "co-em";
  for (size_t i = 0; i < n; ++i) {
    double best = -1.0;
    for (size_t c = 0; c < options.k; ++c) {
      const double p = 0.5 * (resp1.at(i, c) + resp2.at(i, c));
      if (p > best) {
        best = p;
        consensus.labels[i] = static_cast<int>(c);
      }
    }
  }
  consensus.quality =
      result.log_likelihood_view1 + result.log_likelihood_view2;
  result.consensus = std::move(consensus);
  return result;
}

}  // namespace multiclust
