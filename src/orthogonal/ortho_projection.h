#ifndef MULTICLUST_ORTHOGONAL_ORTHO_PROJECTION_H_
#define MULTICLUST_ORTHOGONAL_ORTHO_PROJECTION_H_

#include <string>
#include <vector>

#include "cluster/clustering.h"
#include "common/result.h"
#include "common/runguard.h"
#include "core/solution_set.h"

namespace multiclust {

/// Options for the orthogonal-projection iteration (Cui, Fern & Dy 2007;
/// tutorial slides 57-60).
struct OrthoProjectionOptions {
  /// Maximum number of views (clusterings) to extract; 0 = until the
  /// residual space is exhausted.
  size_t max_views = 0;
  /// Variance fraction of the *cluster means* that the explanatory subspace
  /// must capture (selects p, the number of principal components removed
  /// per iteration; always at least 1, at most k-1).
  double mean_variance_fraction = 0.9;
  /// Stop when the residual data variance falls below this fraction of the
  /// original variance.
  double min_residual_variance = 1e-3;
  /// Wall-clock / cancellation limits; the remaining deadline is forwarded
  /// to nothing directly (the base clusterer owns its own budget), but the
  /// view loop stops between views once the deadline expires.
  RunBudget budget;
};

/// One extracted view.
struct OrthoView {
  Clustering clustering;    ///< clustering found in the current space
  Matrix explanatory_basis; ///< d x p orthonormal basis A of the view
  Matrix projector;         ///< M = I - A A^T applied after clustering
  double residual_variance = 0.0;  ///< data variance remaining after M
};

/// Full output of the iteration.
struct OrthoProjectionResult {
  std::vector<OrthoView> views;
  SolutionSet solutions;
  /// True when the view loop ended before its natural stopping rule:
  /// deadline expiry, or a recoverable failure in a later view after at
  /// least one view had been extracted (the extracted views are kept).
  bool stopped_early = false;
  /// Reason for an early stop; empty otherwise.
  std::string stop_message;
};

/// Iteratively: (1) cluster the current data with `clusterer`; (2) find the
/// subspace A spanned by the principal components of the cluster means (the
/// "explanatory" subspace that captures the discovered structure); (3)
/// project the data onto the orthogonal complement M = I - A (A^T A)^{-1}
/// A^T and repeat. Each round reveals structure that the previous
/// clusterings cannot explain; the number of clusterings is determined
/// automatically by the residual variance (tutorial slide 60).
Result<OrthoProjectionResult> RunOrthoProjection(
    const Matrix& data, Clusterer* clusterer,
    const OrthoProjectionOptions& options);

/// The orthogonal projector M = I - A (A^T A)^{-1} A^T for a (not
/// necessarily orthonormal) basis A (d x p, p >= 1).
Result<Matrix> OrthogonalProjector(const Matrix& a);

}  // namespace multiclust

#endif  // MULTICLUST_ORTHOGONAL_ORTHO_PROJECTION_H_
