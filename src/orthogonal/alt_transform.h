#ifndef MULTICLUST_ORTHOGONAL_ALT_TRANSFORM_H_
#define MULTICLUST_ORTHOGONAL_ALT_TRANSFORM_H_

#include <vector>

#include "cluster/clustering.h"
#include "common/result.h"

namespace multiclust {

/// Inverts the stretch of a learned metric transformation (Davidson & Qi
/// 2008; tutorial slides 50-52): decompose D = H * S * A via SVD and return
/// the "alternative" transformation M = H * S^{-1} * A. Directions that D
/// stretched (because they discriminate the known clusters) get shrunk and
/// vice versa, so clustering the transformed data reveals an alternative
/// grouping. Singular values below `eps` are clamped before inversion.
Result<Matrix> InvertStretch(const Matrix& d, double eps = 1e-6);

/// Full output of the alternative-transformation pipeline.
struct AltTransformResult {
  Matrix learned;      ///< D: metric learned from the given clustering
  Matrix alternative;  ///< M = H S^{-1} A
  Matrix transformed;  ///< data mapped through M
  Clustering clustering;  ///< re-clustering of the transformed data
};

/// End-to-end Davidson & Qi 2008: learn D from `given` (whitening metric
/// learner), invert its stretch, transform the data, re-cluster with
/// `clusterer` (any algorithm — the method is clusterer-agnostic).
Result<AltTransformResult> RunAltTransform(const Matrix& data,
                                           const std::vector<int>& given,
                                           Clusterer* clusterer,
                                           double eps = 1e-6);

}  // namespace multiclust

#endif  // MULTICLUST_ORTHOGONAL_ALT_TRANSFORM_H_
