#include "orthogonal/metric_learning.h"

#include "linalg/decomposition.h"
#include "metrics/clustering_quality.h"
#include "stats/contingency.h"

namespace multiclust {

Result<Matrix> WithinClusterScatter(const Matrix& data,
                                    const std::vector<int>& labels) {
  if (data.rows() != labels.size()) {
    return Status::InvalidArgument("WithinClusterScatter: size mismatch");
  }
  MC_ASSIGN_OR_RETURN(Matrix means, ClusterMeans(data, labels));
  std::vector<int> dense;
  DenseRelabel(labels, &dense);
  const size_t d = data.cols();
  Matrix sw(d, d);
  size_t counted = 0;
  for (size_t i = 0; i < data.rows(); ++i) {
    if (dense[i] < 0) continue;
    ++counted;
    const double* row = data.row_data(i);
    const double* mean = means.row_data(dense[i]);
    for (size_t a = 0; a < d; ++a) {
      const double da = row[a] - mean[a];
      for (size_t b = a; b < d; ++b) {
        sw.at(a, b) += da * (row[b] - mean[b]);
      }
    }
  }
  if (counted == 0) {
    return Status::FailedPrecondition("WithinClusterScatter: all noise");
  }
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a; b < d; ++b) {
      sw.at(a, b) /= static_cast<double>(counted);
      sw.at(b, a) = sw.at(a, b);
    }
  }
  return sw;
}

Result<Matrix> BetweenClusterScatter(const Matrix& data,
                                     const std::vector<int>& labels) {
  if (data.rows() != labels.size()) {
    return Status::InvalidArgument("BetweenClusterScatter: size mismatch");
  }
  MC_ASSIGN_OR_RETURN(Matrix means, ClusterMeans(data, labels));
  std::vector<int> dense;
  const size_t k = DenseRelabel(labels, &dense);
  std::vector<size_t> counts(k, 0);
  size_t counted = 0;
  for (int l : dense) {
    if (l >= 0) {
      ++counts[l];
      ++counted;
    }
  }
  if (counted == 0) {
    return Status::FailedPrecondition("BetweenClusterScatter: all noise");
  }
  const std::vector<double> global = RowMean(data);
  const size_t d = data.cols();
  Matrix sb(d, d);
  for (size_t c = 0; c < k; ++c) {
    const double w = static_cast<double>(counts[c]) /
                     static_cast<double>(counted);
    const double* mean = means.row_data(c);
    for (size_t a = 0; a < d; ++a) {
      const double da = mean[a] - global[a];
      for (size_t b = a; b < d; ++b) {
        sb.at(a, b) += w * da * (mean[b] - global[b]);
      }
    }
  }
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a; b < d; ++b) sb.at(b, a) = sb.at(a, b);
  }
  return sb;
}

Result<Matrix> LearnWhiteningTransform(const Matrix& data,
                                       const std::vector<int>& labels,
                                       double eps) {
  MC_ASSIGN_OR_RETURN(Matrix sw, WithinClusterScatter(data, labels));
  return InverseSqrtSymmetric(sw, eps);
}

Matrix TransformRows(const Matrix& data, const Matrix& m) {
  // row_out = M * x  <=>  Out = X * M^T.
  return data * m.Transpose();
}

}  // namespace multiclust
