#include "orthogonal/ortho_projection.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/runguard.h"
#include "linalg/decomposition.h"
#include "linalg/pca.h"
#include "metrics/clustering_quality.h"
#include "orthogonal/metric_learning.h"

namespace multiclust {

namespace {

// Total variance of the rows of `data` around their mean.
double TotalVariance(const Matrix& data) {
  const std::vector<double> mean = RowMean(data);
  double s = 0.0;
  for (size_t i = 0; i < data.rows(); ++i) {
    const double* row = data.row_data(i);
    for (size_t j = 0; j < data.cols(); ++j) {
      const double d = row[j] - mean[j];
      s += d * d;
    }
  }
  return s / std::max<size_t>(1, data.rows());
}

}  // namespace

Result<Matrix> OrthogonalProjector(const Matrix& a) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("OrthogonalProjector: empty basis");
  }
  const Matrix at = a.Transpose();
  MC_ASSIGN_OR_RETURN(Matrix gram_inv, Inverse(at * a));
  const Matrix hat = a * gram_inv * at;  // A (A^T A)^{-1} A^T
  Matrix m = Matrix::Identity(a.rows()) - hat;
  return m;
}

Result<OrthoProjectionResult> RunOrthoProjection(
    const Matrix& data, Clusterer* clusterer,
    const OrthoProjectionOptions& options) {
  if (clusterer == nullptr) {
    return Status::InvalidArgument("RunOrthoProjection: null clusterer");
  }
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("RunOrthoProjection: empty data");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("ortho-projection", data));
  BudgetTracker guard(options.budget, "ortho-projection");

  OrthoProjectionResult result;
  Matrix current = data;
  const double original_variance = std::max(TotalVariance(data), 1e-300);
  const size_t max_views =
      options.max_views == 0 ? data.cols() : options.max_views;

  // Returns true if the view loop should stop, keeping the views extracted
  // so far: any recoverable failure after the first view degrades to a
  // partial result instead of discarding completed work.
  const auto recover = [&](const Status& status) -> Result<bool> {
    // Cancellation and a simulated crash are final — salvaging a partial
    // result would let an injected crash masquerade as convergence.
    if (status.code() == StatusCode::kCancelled ||
        status.code() == StatusCode::kAborted) {
      return status;
    }
    if (result.views.empty()) return status;  // nothing to salvage
    result.stopped_early = true;
    result.stop_message = status.ToString();
    return true;
  };

  for (size_t view = 0; view < max_views; ++view) {
    if (guard.Cancelled()) return guard.CancelledStatus();
    if (!result.views.empty() && guard.DeadlineExpired()) {
      result.stopped_early = true;
      result.stop_message = "ortho-projection: deadline expired before view " +
                            std::to_string(view);
      break;
    }
    Result<Clustering> clustered = clusterer->Cluster(current);
    if (!clustered.ok()) {
      MC_ASSIGN_OR_RETURN(bool stop, recover(clustered.status()));
      if (stop) break;
    }
    Clustering clustering = std::move(*clustered);
    clustering.algorithm = "ortho-projection+" + clusterer->name();
    const size_t k = clustering.NumClusters();
    if (k < 2) break;  // no structure left

    // Explanatory subspace: principal components of the cluster means.
    MC_ASSIGN_OR_RETURN(Matrix means, ClusterMeans(current, clustering.labels));
    Result<PcaModel> pca_result = FitPca(means);
    if (!pca_result.ok()) {
      MC_ASSIGN_OR_RETURN(bool stop, recover(pca_result.status()));
      if (stop) break;
    }
    PcaModel pca = std::move(*pca_result);
    size_t p = pca.ComponentsForVariance(options.mean_variance_fraction);
    p = std::clamp<size_t>(p, 1, std::min(k - 1, data.cols()));
    const Matrix basis = pca.LeadingComponents(p);

    Result<Matrix> projector_result = OrthogonalProjector(basis);
    if (!projector_result.ok()) {
      MC_ASSIGN_OR_RETURN(bool stop, recover(projector_result.status()));
      if (stop) break;
    }
    Matrix projector = std::move(*projector_result);
    Matrix next = TransformRows(current, projector);
    const double residual = TotalVariance(next) / original_variance;

    OrthoView v;
    v.clustering = clustering;
    v.explanatory_basis = basis;
    v.projector = std::move(projector);
    v.residual_variance = residual;
    result.views.push_back(v);
    MC_RETURN_IF_ERROR(result.solutions.Add(std::move(clustering)));

    if (residual < options.min_residual_variance) break;
    current = std::move(next);
  }
  return result;
}

}  // namespace multiclust
