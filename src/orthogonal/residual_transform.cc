#include "orthogonal/residual_transform.h"

#include "common/runguard.h"
#include "linalg/decomposition.h"
#include "metrics/clustering_quality.h"
#include "orthogonal/metric_learning.h"
#include "stats/contingency.h"

namespace multiclust {

Result<Matrix> ResidualTransform(const Matrix& data,
                                 const std::vector<int>& given, double eps) {
  if (data.rows() != given.size()) {
    return Status::InvalidArgument("ResidualTransform: size mismatch");
  }
  MC_ASSIGN_OR_RETURN(Matrix means, ClusterMeans(data, given));
  std::vector<int> dense;
  const size_t k = DenseRelabel(given, &dense);
  if (k == 0) {
    return Status::FailedPrecondition("ResidualTransform: no clusters given");
  }
  const size_t n = data.rows();
  const size_t d = data.cols();
  Matrix sigma(d, d);
  for (size_t i = 0; i < n; ++i) {
    const double* row = data.row_data(i);
    for (size_t j = 0; j < k; ++j) {
      if (dense[i] == static_cast<int>(j)) continue;  // x_i in C_j: skip
      const double* m = means.row_data(j);
      for (size_t a = 0; a < d; ++a) {
        const double da = row[a] - m[a];
        for (size_t b = a; b < d; ++b) {
          sigma.at(a, b) += da * (row[b] - m[b]);
        }
      }
    }
  }
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a; b < d; ++b) {
      sigma.at(a, b) /= static_cast<double>(n);
      sigma.at(b, a) = sigma.at(a, b);
    }
  }
  return InverseSqrtSymmetric(sigma, eps);
}

Result<ResidualTransformResult> RunResidualTransform(
    const Matrix& data, const std::vector<int>& given, Clusterer* clusterer,
    double eps) {
  if (clusterer == nullptr) {
    return Status::InvalidArgument("RunResidualTransform: null clusterer");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("residual-transform", data));
  ResidualTransformResult result;
  MC_ASSIGN_OR_RETURN(result.transform, ResidualTransform(data, given, eps));
  result.transformed = TransformRows(data, result.transform);
  MC_ASSIGN_OR_RETURN(result.clustering,
                      clusterer->Cluster(result.transformed));
  result.clustering.algorithm = "residual-transform+" + clusterer->name();
  return result;
}

}  // namespace multiclust
