#ifndef MULTICLUST_ORTHOGONAL_RESIDUAL_TRANSFORM_H_
#define MULTICLUST_ORTHOGONAL_RESIDUAL_TRANSFORM_H_

#include <vector>

#include "cluster/clustering.h"
#include "common/result.h"

namespace multiclust {

/// Closed-form alternative-clustering transformation of Qi & Davidson 2009
/// (tutorial slides 54-55): with cluster means m_1..m_k of the given
/// clustering, build
///   Sigma~ = (1/n) sum_i sum_{j : x_i not in C_j} (x_i - m_j)(x_i - m_j)^T
/// and return M = Sigma~^{-1/2}, the minimiser of the KL-preservation
/// objective subject to the "stay away from old means" constraint.
Result<Matrix> ResidualTransform(const Matrix& data,
                                 const std::vector<int>& given,
                                 double eps = 1e-8);

/// Full pipeline output.
struct ResidualTransformResult {
  Matrix transform;       ///< M = Sigma~^{-1/2}
  Matrix transformed;     ///< data mapped through M
  Clustering clustering;  ///< re-clustering of the transformed data
};

/// End-to-end Qi & Davidson 2009: closed-form transform, then re-cluster
/// with any `clusterer`.
Result<ResidualTransformResult> RunResidualTransform(
    const Matrix& data, const std::vector<int>& given, Clusterer* clusterer,
    double eps = 1e-8);

}  // namespace multiclust

#endif  // MULTICLUST_ORTHOGONAL_RESIDUAL_TRANSFORM_H_
