#include "orthogonal/alt_transform.h"

#include <algorithm>

#include "common/runguard.h"
#include "linalg/decomposition.h"
#include "orthogonal/metric_learning.h"

namespace multiclust {

Result<Matrix> InvertStretch(const Matrix& d, double eps) {
  if (d.rows() != d.cols()) {
    return Status::InvalidArgument("InvertStretch: matrix must be square");
  }
  MC_ASSIGN_OR_RETURN(Svd svd, ComputeSvd(d));
  // D = U diag(sigma) V^T; the alternative inverts the stretch:
  // M = U diag(1/sigma) V^T.
  std::vector<double> inv(svd.sigma.size());
  for (size_t i = 0; i < svd.sigma.size(); ++i) {
    inv[i] = 1.0 / std::max(svd.sigma[i], eps);
  }
  Matrix scaled = svd.u;  // n x r
  for (size_t j = 0; j < inv.size(); ++j) {
    for (size_t i = 0; i < scaled.rows(); ++i) scaled.at(i, j) *= inv[j];
  }
  return scaled * svd.v.Transpose();
}

Result<AltTransformResult> RunAltTransform(const Matrix& data,
                                           const std::vector<int>& given,
                                           Clusterer* clusterer, double eps) {
  if (clusterer == nullptr) {
    return Status::InvalidArgument("RunAltTransform: null clusterer");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("alt-transform", data));
  AltTransformResult result;
  MC_ASSIGN_OR_RETURN(result.learned,
                      LearnWhiteningTransform(data, given, eps));
  MC_ASSIGN_OR_RETURN(result.alternative, InvertStretch(result.learned, eps));
  result.transformed = TransformRows(data, result.alternative);
  MC_ASSIGN_OR_RETURN(result.clustering,
                      clusterer->Cluster(result.transformed));
  result.clustering.algorithm = "alt-transform+" + clusterer->name();
  return result;
}

}  // namespace multiclust
