#ifndef MULTICLUST_ORTHOGONAL_METRIC_LEARNING_H_
#define MULTICLUST_ORTHOGONAL_METRIC_LEARNING_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace multiclust {

/// Within-cluster scatter matrix S_w = sum_c sum_{x in c} (x - m_c)(x - m_c)^T
/// / n over non-noise objects.
Result<Matrix> WithinClusterScatter(const Matrix& data,
                                    const std::vector<int>& labels);

/// Between-cluster scatter S_b = sum_c (n_c / n) (m_c - m)(m_c - m)^T.
Result<Matrix> BetweenClusterScatter(const Matrix& data,
                                     const std::vector<int>& labels);

/// A stand-in for "any metric learning algorithm" (Davidson & Qi 2008,
/// tutorial slide 50): learns the linear transformation D = S_w^{-1/2}
/// under which the *given* clustering is easily observable — must-linked
/// objects (same given cluster) are pulled together because within-cluster
/// directions are whitened, so between-cluster separation dominates.
/// `eps` regularises small eigenvalues of S_w.
Result<Matrix> LearnWhiteningTransform(const Matrix& data,
                                       const std::vector<int>& labels,
                                       double eps = 1e-6);

/// Applies a linear map to every object: row i of the result is M * x_i.
Matrix TransformRows(const Matrix& data, const Matrix& m);

}  // namespace multiclust

#endif  // MULTICLUST_ORTHOGONAL_METRIC_LEARNING_H_
