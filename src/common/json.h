#ifndef MULTICLUST_COMMON_JSON_H_
#define MULTICLUST_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace multiclust {

/// Dependency-free JSON support shared by the report artifacts
/// (common/report.*), the metrics export (metrics::MetricsJson), the bench
/// harness (bench/harness.*) and the bench_diff tool.
///
/// The writer produces compact documents with correct string escaping and
/// round-trippable double formatting: `Parse(writer.str())` recovers every
/// written double bit-exactly (NaN/Inf, which JSON cannot represent, are
/// written as null). The parser is a strict recursive-descent reader of
/// the same subset of JSON the writer emits — objects, arrays, strings
/// (with \uXXXX escapes), numbers, true/false/null — sufficient to read
/// back any artifact this library writes.
namespace json {

/// `s` escaped for inclusion inside a JSON string literal (quotes not
/// included): ", \, control characters and non-ASCII-safe bytes below 0x20
/// become \", \\, \n/\t/... or \u00XX.
std::string Escape(std::string_view s);

/// Shortest decimal form of `v` that strtod parses back to exactly `v`
/// (tries %.15g, %.16g, %.17g). NaN and +-Inf render as "null" — JSON has
/// no representation for them.
std::string FormatDouble(double v);

/// Streaming writer for compact JSON documents. The caller is responsible
/// for well-formedness in one respect only: every object member must be
/// introduced with Key() before its value. Commas and colons are inserted
/// automatically.
///
///   json::Writer w;
///   w.BeginObject();
///   w.Key("name"); w.String("kmeans");
///   w.Key("sse"); w.Double(123.25);
///   w.Key("labels"); w.BeginArray();
///   for (int v : labels) w.Int(v);
///   w.EndArray();
///   w.EndObject();
///   std::string doc = std::move(w).str();
class Writer {
 public:
  Writer() { stack_.push_back(kTop); }

  void BeginObject() { OpenContainer('{', kObject); }
  void EndObject() { CloseContainer('}'); }
  void BeginArray() { OpenContainer('[', kArray); }
  void EndArray() { CloseContainer(']'); }

  /// Introduces the next object member.
  void Key(std::string_view name);

  void String(std::string_view v);
  void Double(double v);
  void Int(int64_t v);
  void Uint(uint64_t v);
  void Bool(bool v);
  void Null();
  /// Splices a pre-serialized JSON value verbatim (e.g. the output of
  /// metrics::MetricsJson()). The caller guarantees `raw` is valid JSON.
  void Raw(std::string_view raw);

  const std::string& str() const& { return out_; }
  std::string str() && { return std::move(out_); }

 private:
  enum Frame : char { kTop, kObject, kArray };

  void Separate();
  void OpenContainer(char open, Frame frame);
  void CloseContainer(char close);

  std::string out_;
  std::vector<char> stack_;        ///< open containers (innermost last)
  std::vector<bool> has_items_{false};  ///< per-frame: wrote an item yet?
  bool pending_key_ = false;       ///< a Key() awaits its value
};

/// A parsed JSON value. Numbers are stored as double (the writer only
/// emits doubles and 64-bit integers up to 2^53 exactly — every value this
/// library writes survives the round trip).
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }

  const std::vector<Value>& array_items() const { return array_; }
  /// Object members in document order (duplicate keys keep the last).
  const std::vector<std::pair<std::string, Value>>& object_items() const {
    return object_;
  }

  size_t size() const {
    return is_array() ? array_.size() : is_object() ? object_.size() : 0;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* Find(std::string_view key) const;

  /// Convenience accessors with defaults (missing/mistyped -> default).
  double NumberOr(double def) const { return is_number() ? number_ : def; }
  bool BoolOr(bool def) const { return is_bool() ? bool_ : def; }
  const std::string& StringOr(const std::string& def) const {
    return is_string() ? string_ : def;
  }
  /// Member shortcut: Find(key) then NumberOr / StringOr / BoolOr.
  double GetNumber(std::string_view key, double def) const;
  std::string GetString(std::string_view key, const std::string& def) const;
  bool GetBool(std::string_view key, bool def) const;

  static Value MakeNull() { return Value(); }
  static Value MakeBool(bool v);
  static Value MakeNumber(double v);
  static Value MakeString(std::string v);
  static Value MakeArray(std::vector<Value> items);
  static Value MakeObject(std::vector<std::pair<std::string, Value>> members);

 private:
  friend class Parser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Parses one complete JSON document (trailing whitespace allowed, any
/// other trailing content is an error). Errors report the byte offset.
Result<Value> Parse(std::string_view text);

/// Re-serializes a parsed value into `w` (compact form, members in
/// document order). `SerializeValue(Parse(doc), &w)` is semantically
/// lossless for any document this library writes.
void SerializeValue(const Value& v, Writer* w);

}  // namespace json
}  // namespace multiclust

#endif  // MULTICLUST_COMMON_JSON_H_
