#ifndef MULTICLUST_COMMON_METRICS_H_
#define MULTICLUST_COMMON_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace multiclust {

/// Process-wide registry of named counters, gauges and fixed-bucket
/// histograms.
///
/// Naming follows the `<module>.<algo>.<event>` convention (see DESIGN.md
/// "Observability"), e.g. `cluster.kmeans.reseeds`. The registry is
/// lock-striped (a name is hashed to one of several independently locked
/// shards), registered metric objects are never deallocated, and every
/// update is a relaxed atomic — safe under the `ParallelFor` thread pool.
///
/// Determinism: counters and histogram bucket counts are integers updated
/// with commutative atomic adds, so for a fixed workload their totals are
/// bit-identical at any thread count. Histograms deliberately track only
/// integer bucket counts (no floating-point sum) to keep that guarantee.
///
/// Hot paths use the MC_METRIC_* macros, which cache the registry lookup
/// in a function-local static and compile out entirely (no lookup, no
/// atomic, no symbols) under -DMULTICLUST_TRACING=OFF.
namespace metrics {

/// One row of a registry snapshot (SummaryString/Snapshot).
struct MetricRow {
  std::string name;
  std::string kind;   ///< "counter", "gauge" or "histogram"
  std::string value;  ///< rendered value (bucket list for histograms)
};

#if defined(MULTICLUST_TRACING)

inline constexpr bool kCompiledIn = true;

/// Monotonic integer counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins floating-point gauge.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
/// one implicit overflow bucket catches everything above the last bound.
/// Bounds are fixed at first registration — later GetHistogram calls with
/// the same name return the existing instance regardless of bounds.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Bucket counts, length bounds().size() + 1 (last = overflow).
  std::vector<uint64_t> bucket_counts() const;
  uint64_t total_count() const;
  /// HistogramQuantile() over the current bucket counts.
  double Quantile(double q) const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
};

/// Registry lookups. The returned references stay valid for the process
/// lifetime (Reset() zeroes values, it never deallocates a metric).
Counter& GetCounter(const std::string& name);
Gauge& GetGauge(const std::string& name);
Histogram& GetHistogram(const std::string& name,
                        const std::vector<double>& bounds);

/// Zeroes every registered metric (registrations themselves are kept, so
/// cached references from the MC_METRIC_* macros stay valid).
void Reset();

/// All registered metrics, sorted by name (deterministic order).
std::vector<MetricRow> Snapshot();

/// Human-readable table of Snapshot().
std::string SummaryString();

/// Machine-readable registry dump: a JSON array sorted by name, with typed
/// values (counters as integers, gauges as round-trippable doubles,
/// histograms as bounds + bucket counts):
///   [{"name":"cluster.kmeans.iterations","kind":"counter","value":42},
///    {"name":"...","kind":"gauge","value":1.5},
///    {"name":"...","kind":"histogram",
///     "bounds":[1,10],"counts":[2,1,0],"total":3,
///     "p50":5.5,"p95":9.55,"p99":9.91}]
/// (p50/p95/p99 appear only for non-empty histograms.) Embedded verbatim
/// in the report artifact (common/report.h).
std::string MetricsJson();

/// Estimated q-quantile (q in [0, 1]) of a fixed-bucket histogram with
/// ascending inclusive upper `bounds` and `counts` of length
/// bounds.size() + 1 (last = overflow), by linear interpolation inside the
/// bucket holding rank q * total:
///   - the first bucket interpolates from min(0, bounds[0]) to bounds[0];
///   - the overflow bucket has no upper edge, so any quantile landing there
///     clamps to bounds.back();
///   - returns NaN for empty histograms, empty bounds, or mismatched sizes.
double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<uint64_t>& counts, double q);

/// The registry rendered as OpenMetrics text exposition (the Prometheus
/// scrape format): `multiclust_`-prefixed sanitized names (`.` -> `_`),
/// counters with the `_total` suffix, histograms as cumulative
/// `_bucket{le="..."}` series plus `_count` and p50/p95/p99 gauges, ending
/// with the required `# EOF` line. This is the wire format a `discoverd`
/// scraper consumes (`discover_cli --metrics-out=PATH`).
std::string OpenMetricsText();

#else  // !MULTICLUST_TRACING — zero-cost stubs, no symbols in the library.

inline constexpr bool kCompiledIn = false;

class Counter {
 public:
  void Add(uint64_t = 1) {}
  uint64_t value() const { return 0; }
  void Reset() {}
};

class Gauge {
 public:
  void Set(double) {}
  double value() const { return 0.0; }
  void Reset() {}
};

class Histogram {
 public:
  explicit Histogram(std::vector<double>) {}
  void Observe(double) {}
  std::vector<double> bounds() const { return {}; }
  std::vector<uint64_t> bucket_counts() const { return {}; }
  uint64_t total_count() const { return 0; }
  double Quantile(double) const { return 0.0; }
  void Reset() {}
};

inline Counter& GetCounter(const std::string&) {
  static Counter dummy;
  return dummy;
}
inline Gauge& GetGauge(const std::string&) {
  static Gauge dummy;
  return dummy;
}
inline Histogram& GetHistogram(const std::string&,
                               const std::vector<double>&) {
  static Histogram dummy{{}};
  return dummy;
}
inline void Reset() {}
inline std::vector<MetricRow> Snapshot() { return {}; }
inline std::string SummaryString() {
  return "metrics: compiled out (-DMULTICLUST_TRACING=OFF)\n";
}
inline std::string MetricsJson() { return "[]"; }
inline double HistogramQuantile(const std::vector<double>&,
                                const std::vector<uint64_t>&, double) {
  return 0.0;
}
inline std::string OpenMetricsText() { return "# EOF\n"; }

#endif  // MULTICLUST_TRACING

}  // namespace metrics
}  // namespace multiclust

/// Hot-path instrumentation macros. `name` must be a string literal; the
/// registry lookup happens once per call site (function-local static).
/// All of them expand to nothing under -DMULTICLUST_TRACING=OFF.
#if defined(MULTICLUST_TRACING)
#define MC_METRIC_COUNT(name, n)                           \
  do {                                                     \
    static ::multiclust::metrics::Counter& mc_counter_ =   \
        ::multiclust::metrics::GetCounter(name);           \
    mc_counter_.Add(n);                                    \
  } while (false)
#define MC_METRIC_GAUGE_SET(name, v)                       \
  do {                                                     \
    static ::multiclust::metrics::Gauge& mc_gauge_ =       \
        ::multiclust::metrics::GetGauge(name);             \
    mc_gauge_.Set(v);                                      \
  } while (false)
#define MC_METRIC_OBSERVE(name, bounds, v)                 \
  do {                                                     \
    static ::multiclust::metrics::Histogram& mc_histo_ =   \
        ::multiclust::metrics::GetHistogram(name, bounds); \
    mc_histo_.Observe(v);                                  \
  } while (false)
#else
#define MC_METRIC_COUNT(name, n) \
  do {                           \
  } while (false)
#define MC_METRIC_GAUGE_SET(name, v) \
  do {                               \
  } while (false)
#define MC_METRIC_OBSERVE(name, bounds, v) \
  do {                                     \
  } while (false)
#endif

#endif  // MULTICLUST_COMMON_METRICS_H_
