#ifndef MULTICLUST_COMMON_RESULT_H_
#define MULTICLUST_COMMON_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace multiclust {

/// A value-or-error holder: either an OK status together with a `T`, or a
/// non-OK `Status`. Mirrors `arrow::Result`.
///
/// Typical use:
/// ```
///   Result<Clustering> r = KMeans(opts).Run(data);
///   if (!r.ok()) return r.status();
///   Clustering c = std::move(r).value();
/// ```
template <typename T>
class Result {
 public:
  /// Constructs from a value (OK).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs from an error status. Aborts if `status.ok()`: an OK
  /// Result must carry a value.
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) std::abort();
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accesses the value; must only be called when `ok()`.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates the error of a `Result` expression or binds its value.
/// `MC_ASSIGN_OR_RETURN(auto x, Foo());`
#define MC_ASSIGN_OR_RETURN_IMPL(tmp, decl, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  decl = std::move(tmp).value()

#define MC_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define MC_ASSIGN_OR_RETURN_NAME(a, b) MC_ASSIGN_OR_RETURN_CONCAT(a, b)
#define MC_ASSIGN_OR_RETURN(decl, expr)                                     \
  MC_ASSIGN_OR_RETURN_IMPL(MC_ASSIGN_OR_RETURN_NAME(_mc_result_, __LINE__), \
                           decl, expr)

}  // namespace multiclust

#endif  // MULTICLUST_COMMON_RESULT_H_
