#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

namespace multiclust {

namespace {

// Set while a thread executes chunks, so nested parallel calls run inline
// instead of deadlocking on the single in-flight job slot.
thread_local bool tls_in_parallel_region = false;

// MULTICLUST_THREADS; 0 when unset or malformed.
size_t EnvThreadCount() {
  const char* env = std::getenv("MULTICLUST_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 1) return 0;
  return static_cast<size_t>(v);
}

// Lazily started worker pool. One job runs at a time (`run_mu_`); workers
// and the caller pull chunk indices from a shared atomic counter, so load
// balances dynamically while chunk *boundaries* stay fixed. The job is
// heap-allocated and shared, so a worker that observes it late (after the
// caller already returned) only touches the counters, never freed memory.
class Pool {
 public:
  static Pool& Instance() {
    static Pool pool;
    return pool;
  }

  size_t Resolved() {
    std::lock_guard<std::mutex> lock(mu_);
    return ResolvedLocked();
  }

  void SetExplicit(size_t count) {
    std::lock_guard<std::mutex> run_lock(run_mu_);
    StopWorkers();  // respawned lazily at the next parallel call
    std::lock_guard<std::mutex> lock(mu_);
    explicit_count_ = count;
  }

  void Run(size_t num_chunks, const std::function<void(size_t)>& fn) {
    if (num_chunks == 0) return;
    if (tls_in_parallel_region) {
      for (size_t c = 0; c < num_chunks; ++c) fn(c);
      return;
    }
    const size_t threads = Resolved();
    if (threads <= 1 || num_chunks <= 1) {
      tls_in_parallel_region = true;
      try {
        for (size_t c = 0; c < num_chunks; ++c) fn(c);
      } catch (...) {
        tls_in_parallel_region = false;
        throw;
      }
      tls_in_parallel_region = false;
      return;
    }

    std::lock_guard<std::mutex> run_lock(run_mu_);
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->total = num_chunks;
    {
      std::lock_guard<std::mutex> lock(mu_);
      EnsureWorkersLocked(threads - 1);
      job_ = job;
      ++job_epoch_;
    }
    cv_.notify_all();
    WorkOn(*job);
    {
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [&] { return job->completed.load() == job->total; });
      job_.reset();
    }
    if (job->error) std::rethrow_exception(job->error);
  }

  ~Pool() {
    std::lock_guard<std::mutex> run_lock(run_mu_);
    StopWorkers();
  }

 private:
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t total = 0;
    std::atomic<size_t> claimed{0};
    std::atomic<size_t> completed{0};
    std::mutex err_mu;
    std::exception_ptr error;
  };

  size_t ResolvedLocked() {
    if (!env_checked_) {
      env_count_ = EnvThreadCount();
      env_checked_ = true;
    }
    size_t count = explicit_count_ != 0 ? explicit_count_ : env_count_;
    if (count == 0) count = HardwareConcurrency();
    return count == 0 ? 1 : count;
  }

  void EnsureWorkersLocked(size_t desired) {
    while (workers_.size() < desired) {
      workers_.emplace_back([this, epoch = job_epoch_] { WorkerLoop(epoch); });
    }
  }

  void StopWorkers() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
    workers_.clear();
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = false;
  }

  void WorkerLoop(uint64_t seen_epoch) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [&] { return stop_ || job_epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = job_epoch_;
      std::shared_ptr<Job> job = job_;
      if (!job) continue;
      lock.unlock();
      WorkOn(*job);
      lock.lock();
    }
  }

  void WorkOn(Job& job) {
    tls_in_parallel_region = true;
    for (;;) {
      const size_t c = job.claimed.fetch_add(1, std::memory_order_relaxed);
      if (c >= job.total) break;
      try {
        (*job.fn)(c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.err_mu);
        if (!job.error) job.error = std::current_exception();
      }
      const size_t done =
          job.completed.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (done == job.total) {
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_all();
      }
    }
    tls_in_parallel_region = false;
  }

  std::mutex run_mu_;  // serializes jobs and pool reconfiguration
  std::mutex mu_;      // guards everything below
  std::condition_variable cv_;       // workers: new job / stop
  std::condition_variable done_cv_;  // caller: job complete
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;
  uint64_t job_epoch_ = 0;
  bool stop_ = false;
  size_t explicit_count_ = 0;
  size_t env_count_ = 0;
  bool env_checked_ = false;
};

}  // namespace

size_t HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

void SetThreadCount(size_t count) { Pool::Instance().SetExplicit(count); }

size_t ThreadCount() { return Pool::Instance().Resolved(); }

namespace internal {

void RunChunks(size_t num_chunks,
               const std::function<void(size_t)>& chunk_fn) {
  Pool::Instance().Run(num_chunks, chunk_fn);
}

size_t ResolveGrain(size_t begin, size_t end, size_t grain) {
  if (grain > 0) return grain;
  const size_t range = end > begin ? end - begin : 0;
  const size_t width = (range + 63) / 64;
  return width == 0 ? 1 : width;
}

}  // namespace internal

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body) {
  if (end <= begin) return;
  if (ThreadCount() <= 1 || tls_in_parallel_region) {
    body(begin, end);
    return;
  }
  const size_t width = internal::ResolveGrain(begin, end, grain);
  const size_t num_chunks = (end - begin + width - 1) / width;
  if (num_chunks <= 1) {
    body(begin, end);
    return;
  }
  internal::RunChunks(num_chunks, [&](size_t c) {
    const size_t lo = begin + c * width;
    const size_t hi = lo + width < end ? lo + width : end;
    body(lo, hi);
  });
}

}  // namespace multiclust
