#ifndef MULTICLUST_COMMON_STATUS_H_
#define MULTICLUST_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace multiclust {

/// Error categories used across the library. Modeled after the
/// Arrow/RocksDB status idiom: the library never throws; every fallible
/// operation reports a `Status` (or a `Result<T>`, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kFailedPrecondition,
  kComputationError,  ///< numerical failure (no convergence, singular matrix)
  kIoError,
  kUnimplemented,
  kInternal,
  kCancelled,  ///< run aborted cooperatively via a CancelToken
  kAborted,    ///< run terminated mid-flight (e.g. simulated crash); a
               ///< checkpoint, if armed, holds the state to resume from
};

/// Returns a short human-readable name for `code`, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A success-or-error outcome carrying a code and a message.
///
/// `Status` is cheap to copy in the success case (empty message) and is the
/// uniform error channel of the library: public APIs return `Status` or
/// `Result<T>` instead of throwing.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors for each error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ComputationError(std::string msg) {
    return Status(StatusCode::kComputationError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Usable in functions returning
/// `Status` or `Result<T>` (Result is implicitly constructible from Status).
#define MC_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::multiclust::Status _st = (expr);           \
    if (!_st.ok()) return _st;                   \
  } while (false)

}  // namespace multiclust

#endif  // MULTICLUST_COMMON_STATUS_H_
