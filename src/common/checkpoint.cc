#include "common/checkpoint.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/runguard.h"
#include "linalg/matrix.h"

namespace multiclust {

namespace {

// File layout: <dir>/<algorithm>.<sequence>.ckpt.json, sequence zero-padded
// so lexical order equals numeric order.
constexpr char kSuffix[] = ".ckpt.json";

std::string CheckpointFileName(const std::string& algorithm,
                               uint64_t sequence) {
  char seq[32];
  std::snprintf(seq, sizeof(seq), "%020" PRIu64, sequence);
  return algorithm + "." + seq + kSuffix;
}

// Splits "algo.00000000000000000003.ckpt.json" -> (algo, 3).
bool ParseCheckpointFileName(const std::string& name, std::string* algorithm,
                             uint64_t* sequence) {
  const size_t suffix_len = sizeof(kSuffix) - 1;
  if (name.size() <= suffix_len + 21) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return false;
  }
  const size_t seq_start = name.size() - suffix_len - 20;
  if (name[seq_start - 1] != '.') return false;
  const std::string seq = name.substr(seq_start, 20);
  for (char c : seq) {
    if (c < '0' || c > '9') return false;
  }
  *algorithm = name.substr(0, seq_start - 1);
  *sequence = std::strtoull(seq.c_str(), nullptr, 10);
  return true;
}

Status ListCheckpoints(const std::string& dir, const std::string& algorithm,
                       std::vector<std::pair<uint64_t, std::string>>* out) {
  out->clear();
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return Status::OK();  // no directory = no files
    return Status::IoError("checkpoint: cannot open directory " + dir + ": " +
                           std::strerror(errno));
  }
  while (dirent* entry = readdir(d)) {
    std::string algo;
    uint64_t seq = 0;
    if (!ParseCheckpointFileName(entry->d_name, &algo, &seq)) continue;
    if (!algorithm.empty() && algo != algorithm) continue;
    out->emplace_back(seq, entry->d_name);
  }
  closedir(d);
  std::sort(out->begin(), out->end());
  return Status::OK();
}

Status FsyncPath(const std::string& path, bool directory) {
  const int flags = directory ? O_RDONLY | O_DIRECTORY : O_RDONLY;
  const int fd = open(path.c_str(), flags);
  if (fd < 0) {
    return Status::IoError("checkpoint: cannot open " + path +
                           " for fsync: " + std::strerror(errno));
  }
  const int rc = fsync(fd);
  close(fd);
  if (rc != 0) {
    return Status::IoError("checkpoint: fsync " + path +
                           " failed: " + std::strerror(errno));
  }
  return Status::OK();
}

// The injection site for checkpoint I/O faults; the fault iteration is the
// Checkpointer's 0-based write-attempt index (see FaultKind docs).
constexpr char kIoFaultSite[] = "checkpoint";

// write temp -> fsync -> rename -> fsync(dir): a crash at any point leaves
// either the previous file set or the new complete file, never a torn one.
// `io_step` feeds the "checkpoint" fault site: every injected I/O failure
// surfaces as a clean kIoError except kIoTornWrite, which silently persists
// only a prefix (the model of a filesystem without atomic rename) — the
// caller's read-back verification is what catches that one.
Status AtomicWriteFile(const std::string& dir, const std::string& name,
                       const std::string& content,
                       [[maybe_unused]] size_t io_step) {
  const std::string final_path = dir + "/" + name;
  const std::string tmp_path = final_path + ".tmp";
  const int fd =
      open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("checkpoint: cannot create " + tmp_path + ": " +
                           std::strerror(errno));
  }
  if (MC_FAULT_FIRES(kIoFaultSite, FaultKind::kIoWriteFail, io_step)) {
    close(fd);
    unlink(tmp_path.c_str());
    return Status::IoError("checkpoint: write to " + tmp_path +
                           " failed: injected write fault");
  }
  size_t to_write = content.size();
  bool short_write = false;
  if (MC_FAULT_FIRES(kIoFaultSite, FaultKind::kIoShortWrite, io_step)) {
    // ENOSPC model: a prefix reaches the disk, then the write errors. The
    // half-written temp file is deliberately left behind — recovery must
    // ignore stray *.tmp files.
    to_write = content.size() / 2;
    short_write = true;
  }
  size_t off = 0;
  while (off < to_write) {
    const ssize_t n = write(fd, content.data() + off, to_write - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      close(fd);
      unlink(tmp_path.c_str());
      return Status::IoError("checkpoint: write to " + tmp_path +
                             " failed: " + err);
    }
    off += static_cast<size_t>(n);
  }
  if (short_write) {
    close(fd);
    return Status::IoError("checkpoint: write to " + tmp_path +
                           " failed: injected short write (no space)");
  }
  if (MC_FAULT_FIRES(kIoFaultSite, FaultKind::kIoTornWrite, io_step)) {
    // Silent tear: only a prefix persists, but every syscall "succeeds".
    if (ftruncate(fd, static_cast<off_t>(content.size() / 2)) != 0) {
      close(fd);
      unlink(tmp_path.c_str());
      return Status::IoError("checkpoint: injected torn write could not "
                             "truncate " + tmp_path);
    }
  }
  const bool fsync_fault =
      MC_FAULT_FIRES(kIoFaultSite, FaultKind::kIoFsyncFail, io_step);
  if (fsync(fd) != 0 || fsync_fault) {
    const std::string err =
        fsync_fault ? "injected fsync fault" : std::strerror(errno);
    close(fd);
    unlink(tmp_path.c_str());
    return Status::IoError("checkpoint: fsync " + tmp_path + " failed: " +
                           err);
  }
  if (close(fd) != 0) {
    unlink(tmp_path.c_str());
    return Status::IoError("checkpoint: close " + tmp_path + " failed: " +
                           std::strerror(errno));
  }
  if (MC_FAULT_FIRES(kIoFaultSite, FaultKind::kIoRenameFail, io_step)) {
    unlink(tmp_path.c_str());
    return Status::IoError("checkpoint: rename to " + final_path +
                           " failed: injected rename fault");
  }
  if (rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    const std::string err = std::strerror(errno);
    unlink(tmp_path.c_str());
    return Status::IoError("checkpoint: rename to " + final_path +
                           " failed: " + err);
  }
  return FsyncPath(dir, /*directory=*/true);
}

// Creates `dir` and every missing ancestor (mkdir -p): checkpoint
// directories like "runs/today/job3" must work out of the box.
Status EnsureDir(const std::string& dir) {
  if (dir.empty()) {
    return Status::IoError("checkpoint: empty checkpoint directory");
  }
  if (mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  if (errno != ENOENT) {
    return Status::IoError("checkpoint: cannot create directory " + dir +
                           ": " + std::strerror(errno));
  }
  // A parent is missing: create each component left to right. Positions
  // start past index 0 so an absolute path's leading '/' is not a
  // component.
  for (size_t pos = 1; pos < dir.size(); ++pos) {
    if (dir[pos] != '/') continue;
    const std::string prefix = dir.substr(0, pos);
    if (mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IoError("checkpoint: cannot create directory " + prefix +
                             ": " + std::strerror(errno));
    }
  }
  if (mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::IoError("checkpoint: cannot create directory " + dir + ": " +
                         std::strerror(errno));
}

std::string HexU64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%" PRIx64, v);
  return buf;
}

// Read-back verification toggle (see SetVerifyAfterWriteForTest). Always on
// outside tests: it is the guard that keeps rotation from destroying the
// last good snapshot when a write silently tore.
bool g_verify_after_write = true;

// Reads all of `path`; empty optional when unreadable.
std::optional<std::string> SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

#if defined(MULTICLUST_FAULT_INJECTION)
// kCheckpointCorrupt: deterministic post-write bit rot — the byte at `pos`
// in the (already verified) final file gets a bit flipped. The caller aims
// `pos` into the payload region: envelope bytes outside the validated
// fields (e.g. the "sequence" key — sequence numbers come from the file
// name) are not covered by any check, but every payload byte is under the
// restore-time CRC, so a payload flip is always detected on load.
void FlipByteInFile(const std::string& path, off_t pos) {
  const int fd = open(path.c_str(), O_RDWR);
  if (fd < 0) return;
  const off_t size = lseek(fd, 0, SEEK_END);
  if (size > 0) {
    if (pos < 0 || pos >= size) pos = size / 2;
    char byte = 0;
    if (pread(fd, &byte, 1, pos) == 1) {
      byte = static_cast<char>(byte ^ 0x04);
      pwrite(fd, &byte, 1, pos);
      fsync(fd);
    }
  }
  close(fd);
}
#endif  // MULTICLUST_FAULT_INJECTION

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Fingerprint& Fingerprint::Mix(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    state_ ^= (v >> (8 * i)) & 0xFFu;
    state_ *= 0x100000001B3ULL;  // FNV prime
  }
  return *this;
}

Fingerprint& Fingerprint::Mix(std::string_view s) {
  for (unsigned char c : s) {
    state_ ^= c;
    state_ *= 0x100000001B3ULL;
  }
  Mix(static_cast<uint64_t>(s.size()));
  return *this;
}

Fingerprint& Fingerprint::MixDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return Mix(bits);
}

Fingerprint& Fingerprint::Mix(const Matrix& m) {
  Mix(static_cast<uint64_t>(m.rows()));
  Mix(static_cast<uint64_t>(m.cols()));
  // Eight independent word-wise FNV-1a lanes, folded into the main state at
  // the end. A single byte-wise chain (8 dependent multiplies per entry)
  // costs tens of microseconds on a few-thousand-row matrix — it dominated
  // the whole armed-checkpoint overhead, since every algorithm fingerprints
  // its input once per run.
  constexpr uint64_t kPrime = 0x100000001B3ULL;
  uint64_t lane[8];
  for (int l = 0; l < 8; ++l) {
    lane[l] = 0xCBF29CE484222325ULL + static_cast<uint64_t>(l);
  }
  for (size_t i = 0; i < m.rows(); ++i) {
    const double* row = m.row_data(i);
    const size_t cols = m.cols();
    size_t j = 0;
    for (; j + 8 <= cols; j += 8) {
      for (int l = 0; l < 8; ++l) {
        uint64_t bits;
        std::memcpy(&bits, &row[j + l], sizeof(bits));
        lane[l] = (lane[l] ^ bits) * kPrime;
      }
    }
    for (; j < cols; ++j) {
      uint64_t bits;
      std::memcpy(&bits, &row[j], sizeof(bits));
      lane[j % 8] = (lane[j % 8] ^ bits) * kPrime;
    }
  }
  // Byte-wise fold of each lane restores full diffusion in the final value.
  for (int l = 0; l < 8; ++l) Mix(lane[l]);
  return *this;
}

Checkpointer::Checkpointer(std::string dir, CheckpointPolicy policy)
    : dir_(std::move(dir)), policy_(policy) {}

void Checkpointer::Warn(const char* algorithm, const std::string& message,
                        RunDiagnostics* diagnostics) {
  const std::string full = std::string(algorithm) + ": " + message;
  warnings_.push_back(full);
  if (diagnostics != nullptr) diagnostics->warnings.push_back(full);
}

std::vector<std::string> Checkpointer::TakeWarnings() {
  std::vector<std::string> out = std::move(warnings_);
  warnings_.clear();
  return out;
}

std::optional<Checkpointer::Restored> Checkpointer::TryRestore(
    const char* algorithm, uint64_t fingerprint,
    RunDiagnostics* diagnostics) {
  std::vector<std::pair<uint64_t, std::string>> files;
  const Status list = ListCheckpoints(dir_, algorithm, &files);
  if (!list.ok()) {
    Warn(algorithm, "cold start: " + list.ToString(), diagnostics);
    return std::nullopt;
  }
  // Newest first; the first fully valid matching candidate wins. Every
  // rejected candidate is a warning, never an error: a corrupt or stale
  // checkpoint must degrade to a cold start.
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    const std::string path = dir_ + "/" + it->second;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      Warn(algorithm, "checkpoint " + it->second + " unreadable; skipped",
           diagnostics);
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    Result<json::Value> parsed = json::Parse(text);
    if (!parsed.ok()) {
      Warn(algorithm,
           "checkpoint " + it->second +
               " corrupt (truncated or malformed JSON); skipped",
           diagnostics);
      continue;
    }
    const json::Value& doc = *parsed;
    const double version = doc.GetNumber("schema_version", -1.0);
    if (doc.GetString("kind", "") != kCheckpointKind ||
        version != kCheckpointSchemaVersion) {
      Warn(algorithm,
           "checkpoint " + it->second + " has unsupported schema (kind '" +
               doc.GetString("kind", "?") + "', version " +
               std::to_string(static_cast<long long>(version)) + "); skipped",
           diagnostics);
      continue;
    }
    const json::Value* payload = doc.Find("payload");
    const json::Value* crc_field = doc.Find("crc32");
    if (payload == nullptr || crc_field == nullptr ||
        !crc_field->is_number()) {
      Warn(algorithm,
           "checkpoint " + it->second + " missing payload or checksum; "
           "skipped",
           diagnostics);
      continue;
    }
    // The writer computed the CRC over the exact serialized payload, and
    // parse->serialize is the identity on documents this library writes, so
    // re-serializing reproduces the checksummed bytes.
    json::Writer reserialized;
    json::SerializeValue(*payload, &reserialized);
    const uint32_t crc = Crc32(reserialized.str());
    if (static_cast<double>(crc) != crc_field->number_value()) {
      Warn(algorithm,
           "checkpoint " + it->second + " failed its CRC-32 check; skipped",
           diagnostics);
      continue;
    }
    if (doc.GetString("algorithm", "") != algorithm) {
      Warn(algorithm,
           "checkpoint " + it->second + " belongs to algorithm '" +
               doc.GetString("algorithm", "?") + "'; skipped",
           diagnostics);
      continue;
    }
    if (doc.GetString("fingerprint", "") != HexU64(fingerprint)) {
      if (stale_fp_warned_.insert(algorithm).second) {
        Warn(algorithm,
             "checkpoint " + it->second +
                 " was written under a different configuration or dataset; "
                 "skipped (further stale probes of this slot are silent)",
             diagnostics);
      }
      continue;
    }
    MC_METRIC_COUNT("checkpoint.restores", 1);
    Restored restored;
    restored.sequence = it->first;
    restored.payload = *payload;
    return restored;
  }
  return std::nullopt;
}

Status Checkpointer::WriteSnapshot(
    const char* algorithm, uint64_t fingerprint,
    FunctionRef<void(json::Writer*)> payload) {
  MC_RETURN_IF_ERROR(EnsureDir(dir_));
  std::vector<std::pair<uint64_t, std::string>> files;
  MC_RETURN_IF_ERROR(ListCheckpoints(dir_, algorithm, &files));
  const uint64_t sequence = files.empty() ? 1 : files.back().first + 1;

  json::Writer body;
  payload(&body);
  const std::string payload_text = std::move(body).str();

  json::Writer doc;
  doc.BeginObject();
  doc.Key("schema_version");
  doc.Int(kCheckpointSchemaVersion);
  doc.Key("kind");
  doc.String(kCheckpointKind);
  doc.Key("algorithm");
  doc.String(algorithm);
  doc.Key("sequence");
  doc.Uint(sequence);
  doc.Key("fingerprint");
  doc.String(HexU64(fingerprint));
  doc.Key("crc32");
  doc.Uint(Crc32(payload_text));
  doc.Key("payload");
  doc.Raw(payload_text);
  doc.EndObject();

  const std::string file_name = CheckpointFileName(algorithm, sequence);
  const std::string doc_text = std::move(doc).str();
  const size_t io_step = write_attempts_++;
  MC_RETURN_IF_ERROR(AtomicWriteFile(dir_, file_name, doc_text, io_step));

  // Read-back verification: a snapshot only counts (and rotation only
  // runs) once the bytes on disk equal the bytes we meant to write. This
  // is the guard against silent torn writes — without it, a torn new file
  // would rotate out the last *good* snapshot and leave only garbage.
  if (g_verify_after_write) {
    const std::optional<std::string> on_disk =
        SlurpFile(dir_ + "/" + file_name);
    if (!on_disk.has_value() || *on_disk != doc_text) {
      unlink((dir_ + "/" + file_name).c_str());
      return Status::IoError(
          "checkpoint: " + file_name +
          " failed read-back verification (torn or corrupt write); removed");
    }
  }
  ++snapshots_written_;
  MC_METRIC_COUNT("checkpoint.snapshots", 1);
  have_last_save_ = true;
  last_save_ = std::chrono::steady_clock::now();

#if defined(MULTICLUST_FAULT_INJECTION)
  // Post-verification bit rot (models corruption that happens after a
  // correct write): exercised against the restore-time CRC, never against
  // the write path above.
  if (MC_FAULT_FIRES(kIoFaultSite, FaultKind::kCheckpointCorrupt, io_step)) {
    // Land the flip in the middle of the payload, where the CRC covers it.
    const size_t marker = doc_text.find("\"payload\":");
    const size_t body = marker == std::string::npos ? 0 : marker + 10;
    FlipByteInFile(dir_ + "/" + file_name,
                   static_cast<off_t>(body + (doc_text.size() - body) / 2));
  }
#endif

  // Rotation: keep the newest keep_last files of this slot.
  if (policy_.keep_last > 0) {
    files.emplace_back(sequence, file_name);
    while (files.size() > policy_.keep_last) {
      unlink((dir_ + "/" + files.front().second).c_str());
      files.erase(files.begin());
    }
  }
  return Status::OK();
}

namespace ckpt {

bool SetVerifyAfterWriteForTest(bool enabled) {
  const bool previous = g_verify_after_write;
  g_verify_after_write = enabled;
  return previous;
}

}  // namespace ckpt

Status Checkpointer::AtPersistencePoint(
    const char* algorithm, uint64_t fingerprint, size_t step,
    FunctionRef<void(json::Writer*)> payload) {
  const bool crash = MC_FAULT_FIRES(algorithm, FaultKind::kCrash, step);
  bool due = crash;
  if (!due && policy_.every_iterations > 0 &&
      (step + 1) % policy_.every_iterations == 0) {
    due = true;
    if (policy_.min_interval_ms > 0.0 && have_last_save_) {
      const double since_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - last_save_)
              .count();
      if (since_ms < policy_.min_interval_ms) due = false;
    }
  }
  if (!due && policy_.every_iterations == 0 && policy_.min_interval_ms > 0.0) {
    const double since_ms =
        have_last_save_
            ? std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - last_save_)
                  .count()
            : policy_.min_interval_ms;
    due = since_ms >= policy_.min_interval_ms;
  }
  if (!due) return Status::OK();
  const Status written = WriteSnapshot(algorithm, fingerprint, payload);
  if (!written.ok()) {
    // A failed snapshot must not fail the run — warn and keep computing.
    Warn(algorithm, "snapshot failed: " + written.ToString(), nullptr);
    if (!crash) return Status::OK();
  }
  if (crash) {
    return Status::Aborted(std::string(algorithm) +
                           ": injected crash after persistence point " +
                           std::to_string(step));
  }
  return Status::OK();
}

Status Checkpointer::Flush(const char* algorithm, uint64_t fingerprint,
                           FunctionRef<void(json::Writer*)> payload) {
  const Status written = WriteSnapshot(algorithm, fingerprint, payload);
  if (!written.ok()) {
    Warn(algorithm, "final flush failed: " + written.ToString(), nullptr);
  }
  return written;
}

Status Checkpointer::Clear() {
  std::vector<std::pair<uint64_t, std::string>> files;
  MC_RETURN_IF_ERROR(ListCheckpoints(dir_, "", &files));
  for (const auto& [seq, name] : files) {
    unlink((dir_ + "/" + name).c_str());
  }
  return Status::OK();
}

namespace ckpt {

void WriteU64(json::Writer* w, uint64_t v) { w->String(HexU64(v)); }

Result<uint64_t> ReadU64(const json::Value& v) {
  if (!v.is_string()) {
    return Status::ComputationError("checkpoint: expected hex u64 string");
  }
  const std::string& s = v.string_value();
  if (s.rfind("0x", 0) != 0) {
    return Status::ComputationError("checkpoint: malformed u64 '" + s + "'");
  }
  errno = 0;
  char* end = nullptr;
  const uint64_t parsed = std::strtoull(s.c_str() + 2, &end, 16);
  if (errno != 0 || end == nullptr || *end != '\0') {
    return Status::ComputationError("checkpoint: malformed u64 '" + s + "'");
  }
  return parsed;
}

Result<const json::Value*> Field(const json::Value& v, const char* key) {
  const json::Value* f = v.Find(key);
  if (f == nullptr) {
    return Status::ComputationError(std::string("checkpoint: missing field '") +
                                    key + "'");
  }
  return f;
}

Result<double> NumberField(const json::Value& v, const char* key) {
  MC_ASSIGN_OR_RETURN(const json::Value* f, Field(v, key));
  if (!f->is_number()) {
    return Status::ComputationError(std::string("checkpoint: field '") + key +
                                    "' is not a number");
  }
  return f->number_value();
}

Result<bool> BoolField(const json::Value& v, const char* key) {
  MC_ASSIGN_OR_RETURN(const json::Value* f, Field(v, key));
  if (!f->is_bool()) {
    return Status::ComputationError(std::string("checkpoint: field '") + key +
                                    "' is not a bool");
  }
  return f->bool_value();
}

Result<uint64_t> U64Field(const json::Value& v, const char* key) {
  MC_ASSIGN_OR_RETURN(const json::Value* f, Field(v, key));
  return ReadU64(*f);
}

Result<size_t> SizeField(const json::Value& v, const char* key) {
  MC_ASSIGN_OR_RETURN(double n, NumberField(v, key));
  if (n < 0) {
    return Status::ComputationError(std::string("checkpoint: field '") + key +
                                    "' is negative");
  }
  return static_cast<size_t>(n);
}

void WriteMatrix(json::Writer* w, const Matrix& m) {
  w->BeginObject();
  w->Key("r");
  w->Uint(m.rows());
  w->Key("c");
  w->Uint(m.cols());
  w->Key("v");
  w->BeginArray();
  for (size_t i = 0; i < m.rows(); ++i) {
    const double* row = m.row_data(i);
    for (size_t j = 0; j < m.cols(); ++j) w->Double(row[j]);
  }
  w->EndArray();
  w->EndObject();
}

Result<Matrix> ReadMatrix(const json::Value& v) {
  MC_ASSIGN_OR_RETURN(size_t rows, SizeField(v, "r"));
  MC_ASSIGN_OR_RETURN(size_t cols, SizeField(v, "c"));
  MC_ASSIGN_OR_RETURN(const json::Value* data, Field(v, "v"));
  if (!data->is_array() || data->array_items().size() != rows * cols) {
    return Status::ComputationError("checkpoint: matrix payload shape "
                                    "mismatch");
  }
  Matrix m(rows, cols);
  size_t idx = 0;
  for (size_t i = 0; i < rows; ++i) {
    double* row = m.row_data(i);
    for (size_t j = 0; j < cols; ++j, ++idx) {
      const json::Value& cell = data->array_items()[idx];
      if (!cell.is_number()) {
        return Status::ComputationError("checkpoint: non-numeric matrix cell");
      }
      row[j] = cell.number_value();
    }
  }
  return m;
}

void WriteIntVector(json::Writer* w, const std::vector<int>& v) {
  w->BeginArray();
  for (int x : v) w->Int(x);
  w->EndArray();
}

Result<std::vector<int>> ReadIntVector(const json::Value& v) {
  if (!v.is_array()) {
    return Status::ComputationError("checkpoint: expected int array");
  }
  std::vector<int> out;
  out.reserve(v.array_items().size());
  for (const json::Value& x : v.array_items()) {
    if (!x.is_number()) {
      return Status::ComputationError("checkpoint: non-numeric int entry");
    }
    out.push_back(static_cast<int>(x.number_value()));
  }
  return out;
}

void WriteDoubleVector(json::Writer* w, const std::vector<double>& v) {
  w->BeginArray();
  for (double x : v) w->Double(x);
  w->EndArray();
}

Result<std::vector<double>> ReadDoubleVector(const json::Value& v) {
  if (!v.is_array()) {
    return Status::ComputationError("checkpoint: expected double array");
  }
  std::vector<double> out;
  out.reserve(v.array_items().size());
  for (const json::Value& x : v.array_items()) {
    if (!x.is_number() && !x.is_null()) {
      return Status::ComputationError("checkpoint: non-numeric double entry");
    }
    // null encodes NaN/Inf (JSON cannot represent them); algorithms never
    // checkpoint non-finite state, but stay lossless-by-construction here.
    out.push_back(x.is_null() ? std::numeric_limits<double>::quiet_NaN()
                              : x.number_value());
  }
  return out;
}

void WriteSizeVector(json::Writer* w, const std::vector<size_t>& v) {
  w->BeginArray();
  for (size_t x : v) w->Uint(x);
  w->EndArray();
}

Result<std::vector<size_t>> ReadSizeVector(const json::Value& v) {
  if (!v.is_array()) {
    return Status::ComputationError("checkpoint: expected size array");
  }
  std::vector<size_t> out;
  out.reserve(v.array_items().size());
  for (const json::Value& x : v.array_items()) {
    if (!x.is_number() || x.number_value() < 0) {
      return Status::ComputationError("checkpoint: bad size entry");
    }
    out.push_back(static_cast<size_t>(x.number_value()));
  }
  return out;
}

void WriteRng(json::Writer* w, const Rng& rng) {
  const RngState s = rng.SaveState();
  w->BeginObject();
  w->Key("s");
  w->BeginArray();
  for (uint64_t word : s.words) WriteU64(w, word);
  w->EndArray();
  w->Key("g");
  w->Bool(s.has_cached_gaussian);
  w->Key("gv");
  w->Double(s.cached_gaussian);
  w->EndObject();
}

Result<Rng> ReadRng(const json::Value& v) {
  MC_ASSIGN_OR_RETURN(const json::Value* words, Field(v, "s"));
  if (!words->is_array() || words->array_items().size() != 4) {
    return Status::ComputationError("checkpoint: RNG state must have 4 words");
  }
  RngState s;
  for (size_t i = 0; i < 4; ++i) {
    MC_ASSIGN_OR_RETURN(s.words[i], ReadU64(words->array_items()[i]));
  }
  MC_ASSIGN_OR_RETURN(s.has_cached_gaussian, BoolField(v, "g"));
  MC_ASSIGN_OR_RETURN(double cached, NumberField(v, "gv"));
  s.cached_gaussian = cached;
  Rng rng;
  rng.RestoreState(s);
  return rng;
}

void WriteTrace(json::Writer* w, const ConvergenceTrace& trace) {
  w->BeginObject();
  w->Key("winner");
  w->Uint(trace.winning_restart);
  w->Key("points");
  w->BeginArray();
  for (const ConvergencePoint& p : trace.points) {
    w->BeginArray();
    w->Uint(p.restart);
    w->Uint(p.iteration);
    w->Double(p.objective);
    w->Double(p.delta);
    w->Uint(p.reseeds);
    w->Double(p.budget_remaining_ms);
    w->EndArray();
  }
  w->EndArray();
  w->EndObject();
}

Result<ConvergenceTrace> ReadTrace(const json::Value& v) {
  ConvergenceTrace trace;
  MC_ASSIGN_OR_RETURN(trace.winning_restart, SizeField(v, "winner"));
  MC_ASSIGN_OR_RETURN(const json::Value* points, Field(v, "points"));
  if (!points->is_array()) {
    return Status::ComputationError("checkpoint: trace points not an array");
  }
  for (const json::Value& p : points->array_items()) {
    if (!p.is_array() || p.array_items().size() != 6) {
      return Status::ComputationError("checkpoint: malformed trace point");
    }
    const auto& cells = p.array_items();
    for (size_t i = 0; i < 6; ++i) {
      if (!cells[i].is_number() && !cells[i].is_null()) {
        return Status::ComputationError("checkpoint: malformed trace point");
      }
    }
    ConvergencePoint point;
    point.restart = static_cast<size_t>(cells[0].number_value());
    point.iteration = static_cast<size_t>(cells[1].number_value());
    point.objective = cells[2].is_null()
                          ? std::numeric_limits<double>::quiet_NaN()
                          : cells[2].number_value();
    point.delta = cells[3].is_null()
                      ? std::numeric_limits<double>::quiet_NaN()
                      : cells[3].number_value();
    point.reseeds = static_cast<size_t>(cells[4].number_value());
    point.budget_remaining_ms =
        cells[5].is_null() ? -1.0 : cells[5].number_value();
    trace.points.push_back(point);
  }
  return trace;
}

void WriteStatus(json::Writer* w, const Status& status) {
  w->BeginObject();
  w->Key("code");
  w->Int(static_cast<int>(status.code()));
  w->Key("msg");
  w->String(status.message());
  w->EndObject();
}

Status ReadStatus(const json::Value& v, Status* out) {
  MC_ASSIGN_OR_RETURN(double code, NumberField(v, "code"));
  MC_ASSIGN_OR_RETURN(const json::Value* msg, Field(v, "msg"));
  if (!msg->is_string()) {
    return Status::ComputationError("checkpoint: status message not a string");
  }
  *out = Status(static_cast<StatusCode>(static_cast<int>(code)),
                msg->string_value());
  return Status::OK();
}

}  // namespace ckpt
}  // namespace multiclust
