#ifndef MULTICLUST_COMMON_CHECKPOINT_H_
#define MULTICLUST_COMMON_CHECKPOINT_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "common/status.h"

namespace multiclust {

class Matrix;
class Rng;
struct ConvergenceTrace;
struct RunDiagnostics;

/// Crash-consistent checkpoint/resume for the iterative algorithms and the
/// discovery pipeline (see DESIGN.md "Crash recovery").
///
/// Every checkpoint is one self-describing JSON document:
///
///   {"schema_version":1,"kind":"multiclust.checkpoint",
///    "algorithm":"kmeans","sequence":12,"fingerprint":"0x1a2b...",
///    "crc32":3735928559,"payload":{...}}
///
/// The payload is algorithm-owned opaque state (centroids, responsibilities,
/// subspace bases, RNG stream position, restart index, best-so-far result,
/// accumulated ConvergenceTrace). Doubles use the writer's
/// shortest-round-trip formatting and 64-bit integers are hex strings, so a
/// restored state is bit-identical to the saved one — a resumed run produces
/// exactly the labels and objectives of an uninterrupted run.
///
/// Persistence is atomic: write to a temp file, fsync, rename over the final
/// name, fsync the directory. A reader therefore sees either the previous
/// complete checkpoint or the new complete checkpoint, never a torn one.
/// Validation on load checks the envelope (kind + schema_version), a CRC-32
/// over the serialized payload, the algorithm name, and a caller-supplied
/// configuration fingerprint; any mismatch degrades to a cold start with an
/// attributed RunDiagnostics warning, never an error.
inline constexpr int kCheckpointSchemaVersion = 1;
inline constexpr const char kCheckpointKind[] = "multiclust.checkpoint";

/// CRC-32 (IEEE 802.3 polynomial, the zlib convention) of `data`.
uint32_t Crc32(std::string_view data);

/// When an armed Checkpointer persists. Snapshots only ever happen at
/// persistence points (the end of an outer iteration / a completed pipeline
/// stage), so any combination of triggers preserves bit-identical resume.
struct CheckpointPolicy {
  /// Snapshot every N persistence points (1 = every outer iteration);
  /// 0 disables the iteration trigger.
  size_t every_iterations = 1;
  /// Minimum wall-clock gap between snapshots. With `every_iterations`
  /// also set, both must agree (rate-limits tight loops); alone, it is the
  /// sole trigger. 0 disables the interval requirement.
  double min_interval_ms = 0.0;
  /// Rotation: keep the newest N checkpoint files per algorithm slot.
  size_t keep_last = 2;
};

/// Non-owning type-erased callable reference: two raw pointers, no heap.
/// The per-iteration persistence hooks take these instead of std::function
/// because an owning wrapper would allocate for every lambda whose capture
/// outgrows the small-buffer optimisation — a real cost at k-means
/// iteration rates. The referenced callable must outlive the call, which
/// the synchronous AtPersistencePoint()/Flush() contract guarantees.
template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  FunctionRef() = default;
  FunctionRef(std::nullptr_t) {}  // NOLINT: implicit, mirrors std::function
  template <typename F, typename = std::enable_if_t<!std::is_same_v<
                            std::decay_t<F>, FunctionRef>>>
  FunctionRef(const F& f)  // NOLINT: implicit by design
      : obj_(&f), call_([](const void* obj, Args... args) -> R {
          return (*static_cast<const F*>(obj))(std::forward<Args>(args)...);
        }) {}

  explicit operator bool() const { return call_ != nullptr; }
  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  const void* obj_ = nullptr;
  R (*call_)(const void*, Args...) = nullptr;
};

/// Deterministic configuration fingerprint (FNV-1a over option values and
/// data contents). Algorithms mix in everything that shapes their
/// iteration sequence so a checkpoint written under a different
/// configuration, seed or dataset is recognised as stale and discarded.
class Fingerprint {
 public:
  Fingerprint& Mix(uint64_t v);
  Fingerprint& Mix(std::string_view s);
  Fingerprint& MixDouble(double v);  ///< bit pattern, so -0.0 != 0.0
  Fingerprint& Mix(const Matrix& m); ///< dimensions and every entry
  uint64_t value() const { return state_; }

 private:
  uint64_t state_ = 0xCBF29CE484222325ULL;  // FNV offset basis
};

/// One run's checkpoint channel: a directory plus a cadence policy,
/// attached to the algorithms via `RunBudget::checkpoint`. Not thread-safe;
/// use one Checkpointer per run. The default-constructed budget carries no
/// checkpointer and the per-iteration cost of the disarmed path is a single
/// null-pointer test.
///
/// Algorithms interact through three calls, all keyed by their own
/// `algorithm` slot name and config fingerprint:
///
///  - TryRestore(): newest valid matching checkpoint, or nullopt for a
///    cold start (corrupt/stale files produce warnings, never errors).
///  - AtPersistencePoint(): called once per outer iteration with a payload
///    writer; persists when the policy says so. Under an armed
///    `FaultKind::kCrash` fault the snapshot is forced and the call
///    returns StatusCode::kAborted — the snapshot-then-abort simulation of
///    a process kill at exactly this persistence point.
///  - Flush(): force-persists (cooperative-cancellation and shutdown
///    paths), best effort.
class Checkpointer {
 public:
  Checkpointer(std::string dir, CheckpointPolicy policy = {});

  const std::string& dir() const { return dir_; }
  const CheckpointPolicy& policy() const { return policy_; }

  /// A restored payload plus the sequence number it carried.
  struct Restored {
    json::Value payload;
    uint64_t sequence = 0;
  };

  /// Loads the newest valid checkpoint for (algorithm, fingerprint).
  /// Invalid candidates (truncated, checksum mismatch, stale schema, wrong
  /// fingerprint) are skipped with a warning attributed to `algorithm`,
  /// appended to `diagnostics` when given and to warnings() always.
  std::optional<Restored> TryRestore(const char* algorithm,
                                     uint64_t fingerprint,
                                     RunDiagnostics* diagnostics);

  /// Persistence-point hook; see class comment. `step` is the algorithm's
  /// monotonic persistence-point counter (restarts included), which also
  /// feeds the crash-injection site: MC_FAULT_FIRES(algorithm, kCrash,
  /// step) forces the snapshot and makes the call return kAborted.
  Status AtPersistencePoint(const char* algorithm, uint64_t fingerprint,
                            size_t step,
                            FunctionRef<void(json::Writer*)> payload);

  /// Unconditional snapshot (cancellation / clean-shutdown flush).
  Status Flush(const char* algorithm, uint64_t fingerprint,
               FunctionRef<void(json::Writer*)> payload);

  /// Removes every checkpoint file in the directory (fresh-start path).
  Status Clear();

  /// Warnings accumulated by TryRestore (cold-start fallbacks) and failed
  /// writes, for callers without a RunDiagnostics sink. Draining resets.
  std::vector<std::string> TakeWarnings();

  /// Total snapshots successfully persisted by this Checkpointer.
  size_t snapshots_written() const { return snapshots_written_; }

 private:
  Status WriteSnapshot(const char* algorithm, uint64_t fingerprint,
                       FunctionRef<void(json::Writer*)> payload);
  void Warn(const char* algorithm, const std::string& message,
            RunDiagnostics* diagnostics);

  std::string dir_;
  CheckpointPolicy policy_;
  std::vector<std::string> warnings_;
  /// Slots that already produced a wrong-fingerprint warning. Composite
  /// strategies (meta clustering, orthogonal projections) legitimately run
  /// the same base algorithm many times with different seeds against one
  /// slot; every run after an interrupt would re-discover the same stale
  /// snapshot, so the warning fires once per slot, not once per probe.
  std::set<std::string> stale_fp_warned_;
  bool have_last_save_ = false;
  std::chrono::steady_clock::time_point last_save_;
  size_t snapshots_written_ = 0;
  /// 0-based write-attempt counter (successful or not): the iteration fed
  /// to the "checkpoint" fault site for injected I/O failures.
  size_t write_attempts_ = 0;
};

/// --- Payload building blocks shared by the algorithms' SnapshotState /
/// RestoreState implementations. Writers append one JSON value; readers
/// reject missing or mistyped fields with kComputationError so the caller
/// can fall back to a cold start. ---
namespace ckpt {

/// Test-only: toggles the Checkpointer's read-back verification of every
/// written snapshot (compare bytes on disk against the intended document;
/// mismatch removes the file and reports kIoError before rotation runs).
/// Always ON outside tests — disabling it reintroduces the bug where a
/// silently torn write rotates out the last good snapshot. Returns the
/// previous setting.
bool SetVerifyAfterWriteForTest(bool enabled);

/// 64-bit integers as hex strings ("0x1a2b") — JSON numbers are doubles
/// and would silently round above 2^53.
void WriteU64(json::Writer* w, uint64_t v);
Result<uint64_t> ReadU64(const json::Value& v);

void WriteMatrix(json::Writer* w, const Matrix& m);
Result<Matrix> ReadMatrix(const json::Value& v);

void WriteIntVector(json::Writer* w, const std::vector<int>& v);
Result<std::vector<int>> ReadIntVector(const json::Value& v);

void WriteDoubleVector(json::Writer* w, const std::vector<double>& v);
Result<std::vector<double>> ReadDoubleVector(const json::Value& v);

void WriteSizeVector(json::Writer* w, const std::vector<size_t>& v);
Result<std::vector<size_t>> ReadSizeVector(const json::Value& v);

/// Full generator state (xoshiro words + Box-Muller cache).
void WriteRng(json::Writer* w, const Rng& rng);
Result<Rng> ReadRng(const json::Value& v);

/// Accumulated convergence telemetry, so a resumed run's trace equals the
/// uninterrupted run's.
void WriteTrace(json::Writer* w, const ConvergenceTrace& trace);
Result<ConvergenceTrace> ReadTrace(const json::Value& v);

void WriteStatus(json::Writer* w, const Status& status);
/// Parses a status written by WriteStatus into *out; the return value is
/// the parse outcome (Result<Status> would be ill-formed).
Status ReadStatus(const json::Value& v, Status* out);

/// Member lookup helpers (missing field -> kComputationError naming it).
Result<const json::Value*> Field(const json::Value& v, const char* key);
Result<double> NumberField(const json::Value& v, const char* key);
Result<bool> BoolField(const json::Value& v, const char* key);
Result<uint64_t> U64Field(const json::Value& v, const char* key);
Result<size_t> SizeField(const json::Value& v, const char* key);

}  // namespace ckpt
}  // namespace multiclust

#endif  // MULTICLUST_COMMON_CHECKPOINT_H_
