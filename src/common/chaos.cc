#include "common/chaos.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace multiclust {
namespace chaos {

const std::vector<std::string>& WorkloadNames() {
  static const std::vector<std::string> kNames = {
      "kmeans", "gmm",   "spectral", "dec-kmeans", "coala",
      "co-em",  "orclus", "proclus",  "pipeline"};
  return kNames;
}

}  // namespace chaos
}  // namespace multiclust

#if defined(MULTICLUST_FAULT_INJECTION)

#include <dirent.h>
#include <stdlib.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>

#include "altspace/coala.h"
#include "altspace/dec_kmeans.h"
#include "cluster/gmm.h"
#include "cluster/kmeans.h"
#include "cluster/spectral.h"
#include "common/checkpoint.h"
#include "common/json.h"
#include "common/report.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "multiview/co_em.h"
#include "subspace/orclus.h"
#include "subspace/proclus.h"

namespace multiclust {
namespace chaos {
namespace {

// ---------------------------------------------------------------------------
// Workload drivers. Every driver is fully deterministic in (seed, quick) and
// reports a digest mixing everything observable about its result, so two
// runs are interchangeable exactly when their digests match.
// ---------------------------------------------------------------------------

struct WorkloadRun {
  Status status;
  bool produced = false;
  uint64_t digest = 0;
  size_t iterations = 0;
  /// Upper bound the workload's own configuration puts on `iterations`;
  /// the budget-honored invariant checks against this.
  size_t iteration_cap = 0;
  std::string report_json;  ///< pipeline only
};

Result<Matrix> BlobData(uint64_t seed, bool quick) {
  const size_t per = quick ? 12 : 20;
  MC_ASSIGN_OR_RETURN(Dataset ds, MakeBlobs({{{0.0, 0.0}, 0.6, per},
                                             {{6.0, 0.0}, 0.6, per},
                                             {{3.0, 5.0}, 0.6, per}},
                                            seed));
  return ds.data();
}

void MixLabels(Fingerprint* fp, const std::vector<int>& labels) {
  fp->Mix(static_cast<uint64_t>(labels.size()));
  for (int l : labels) {
    fp->Mix(static_cast<uint64_t>(static_cast<int64_t>(l)));
  }
}

void MixClustering(Fingerprint* fp, const Clustering& c) {
  MixLabels(fp, c.labels);
  fp->MixDouble(c.quality);
  fp->Mix(static_cast<uint64_t>(c.iterations));
  fp->Mix(static_cast<uint64_t>(c.converged ? 1 : 0));
}

WorkloadRun FromClustering(const Result<Clustering>& r, size_t cap) {
  WorkloadRun out;
  out.iteration_cap = cap;
  if (!r.ok()) {
    out.status = r.status();
    return out;
  }
  out.produced = true;
  out.iterations = r->iterations;
  Fingerprint fp;
  MixClustering(&fp, *r);
  out.digest = fp.value();
  return out;
}

WorkloadRun RunKMeansWorkload(uint64_t seed, bool quick, Checkpointer* ck) {
  WorkloadRun fail;
  auto data = BlobData(seed, quick);
  if (!data.ok()) {
    fail.status = data.status();
    return fail;
  }
  KMeansOptions o;
  o.k = 3;
  o.restarts = 3;
  o.max_iters = 12;
  o.seed = seed;
  o.budget.checkpoint = ck;
  return FromClustering(RunKMeans(*data, o), o.max_iters);
}

WorkloadRun RunGmmWorkload(uint64_t seed, bool quick, Checkpointer* ck) {
  WorkloadRun fail;
  auto data = BlobData(seed, quick);
  if (!data.ok()) {
    fail.status = data.status();
    return fail;
  }
  GmmOptions o;
  o.k = 3;
  o.restarts = 2;
  o.max_iters = 10;
  o.seed = seed;
  o.budget.checkpoint = ck;
  return FromClustering(RunGmm(*data, o), o.max_iters);
}

WorkloadRun RunSpectralWorkload(uint64_t seed, bool quick, Checkpointer* ck) {
  WorkloadRun fail;
  auto data = BlobData(seed, quick);
  if (!data.ok()) {
    fail.status = data.status();
    return fail;
  }
  SpectralOptions o;
  o.k = 3;
  o.kmeans_restarts = 2;
  o.seed = seed;
  o.budget.checkpoint = ck;
  // Reported iterations come from the embedded k-means (default cap 100).
  return FromClustering(RunSpectral(*data, o), 100);
}

WorkloadRun RunDecKMeansWorkload(uint64_t seed, bool quick, Checkpointer* ck) {
  WorkloadRun out;
  auto data = BlobData(seed, quick);
  if (!data.ok()) {
    out.status = data.status();
    return out;
  }
  DecKMeansOptions o;
  o.ks = {2, 2};
  o.restarts = 2;
  o.max_iters = 8;
  o.seed = seed;
  o.budget.checkpoint = ck;
  out.iteration_cap = o.max_iters;
  auto r = RunDecorrelatedKMeans(*data, o);
  if (!r.ok()) {
    out.status = r.status();
    return out;
  }
  out.produced = true;
  out.iterations = r->iterations;
  Fingerprint fp;
  for (const Clustering& c : r->solutions.solutions()) MixClustering(&fp, c);
  fp.MixDouble(r->objective);
  for (double h : r->history) fp.MixDouble(h);
  fp.Mix(static_cast<uint64_t>(r->converged ? 1 : 0));
  out.digest = fp.value();
  return out;
}

WorkloadRun RunCoalaWorkload(uint64_t seed, bool quick, Checkpointer* ck) {
  WorkloadRun out;
  const size_t per = quick ? 6 : 8;
  auto ds = MakeBlobs({{{0.0, 0.0}, 0.6, per},
                       {{6.0, 0.0}, 0.6, per},
                       {{3.0, 5.0}, 0.6, per}},
                      seed);
  if (!ds.ok()) {
    out.status = ds.status();
    return out;
  }
  const size_t n = ds->data().rows();
  std::vector<int> given(n);
  for (size_t i = 0; i < n; ++i) given[i] = static_cast<int>(i / per);
  CoalaOptions o;
  o.k = 3;
  o.w = 0.8;
  o.budget.checkpoint = ck;
  // Agglomerative: one merge per iteration, at most n - k of them.
  return FromClustering(RunCoala(ds->data(), given, o), n);
}

WorkloadRun RunCoEmWorkload(uint64_t seed, bool quick, Checkpointer* ck) {
  WorkloadRun out;
  auto view1 = BlobData(seed, quick);
  auto view2 = BlobData(seed + 1000, quick);
  if (!view1.ok() || !view2.ok()) {
    out.status = view1.ok() ? view2.status() : view1.status();
    return out;
  }
  CoEmOptions o;
  o.k = 3;
  o.max_iters = 15;
  o.patience = 3;
  o.seed = seed;
  o.budget.checkpoint = ck;
  out.iteration_cap = o.max_iters;
  auto r = RunCoEm(*view1, *view2, o);
  if (!r.ok()) {
    out.status = r.status();
    return out;
  }
  out.produced = true;
  out.iterations = r->iterations;
  Fingerprint fp;
  MixLabels(&fp, r->labels_view1);
  MixLabels(&fp, r->labels_view2);
  MixLabels(&fp, r->consensus.labels);
  fp.MixDouble(r->log_likelihood_view1);
  fp.MixDouble(r->log_likelihood_view2);
  fp.MixDouble(r->agreement);
  fp.Mix(static_cast<uint64_t>(r->converged ? 1 : 0));
  out.digest = fp.value();
  return out;
}

WorkloadRun RunOrclusWorkload(uint64_t seed, bool quick, Checkpointer* ck) {
  WorkloadRun out;
  auto data = BlobData(seed, quick);
  if (!data.ok()) {
    out.status = data.status();
    return out;
  }
  OrclusOptions o;
  o.k = 3;
  o.l = 2;
  o.a_factor = 2;
  o.max_iters = 5;
  o.restarts = 2;
  o.seed = seed;
  o.budget.checkpoint = ck;
  // Iterations span the merge phases too; 64 comfortably bounds k0 -> k.
  out.iteration_cap = 64;
  auto r = RunOrclus(*data, o);
  if (!r.ok()) {
    out.status = r.status();
    return out;
  }
  out.produced = true;
  out.iterations = r->clustering.iterations;
  Fingerprint fp;
  MixClustering(&fp, r->clustering);
  fp.MixDouble(r->projected_energy);
  fp.Mix(static_cast<uint64_t>(r->subspaces.size()));
  out.digest = fp.value();
  return out;
}

WorkloadRun RunProclusWorkload(uint64_t seed, bool quick, Checkpointer* ck) {
  WorkloadRun out;
  auto data = BlobData(seed, quick);
  if (!data.ok()) {
    out.status = data.status();
    return out;
  }
  ProclusOptions o;
  o.k = 3;
  o.avg_dims = 2;
  o.max_iters = 8;
  o.seed = seed;
  o.budget.checkpoint = ck;
  out.iteration_cap = o.max_iters;
  auto r = RunProclus(*data, o);
  if (!r.ok()) {
    out.status = r.status();
    return out;
  }
  out.produced = true;
  out.iterations = r->clustering.iterations;
  Fingerprint fp;
  MixClustering(&fp, r->clustering);
  for (const std::vector<size_t>& dims : r->dims) {
    fp.Mix(static_cast<uint64_t>(dims.size()));
    for (size_t d : dims) fp.Mix(static_cast<uint64_t>(d));
  }
  out.digest = fp.value();
  return out;
}

WorkloadRun RunPipelineWorkload(uint64_t seed, bool quick, Checkpointer* ck) {
  WorkloadRun out;
  auto data = BlobData(seed, quick);
  if (!data.ok()) {
    out.status = data.status();
    return out;
  }
  DiscoveryOptions o;
  o.strategy = DiscoveryStrategy::kDecorrelatedKMeans;
  o.num_solutions = 2;
  o.k = 3;
  o.seed = seed;
  o.budget.checkpoint = ck;
  auto r = DiscoverMultipleClusterings(*data, o);
  if (!r.ok()) {
    out.status = r.status();
    return out;
  }
  out.produced = true;
  Fingerprint fp;
  for (const Clustering& c : r->solutions.solutions()) MixClustering(&fp, c);
  for (double q : r->objective.qualities) fp.MixDouble(q);
  fp.MixDouble(r->objective.mean_quality);
  fp.MixDouble(r->objective.mean_dissimilarity);
  fp.MixDouble(r->objective.combined);
  fp.Mix(static_cast<uint64_t>(r->chosen_k));
  fp.Mix(r->strategy_name);
  fp.Mix(static_cast<uint64_t>(r->degraded ? 1 : 0));
  out.digest = fp.value();
  out.report_json = DiscoveryReportJson(*r);
  return out;
}

WorkloadRun RunWorkload(const std::string& name, uint64_t seed, bool quick,
                        Checkpointer* ck) {
  if (name == "kmeans") return RunKMeansWorkload(seed, quick, ck);
  if (name == "gmm") return RunGmmWorkload(seed, quick, ck);
  if (name == "spectral") return RunSpectralWorkload(seed, quick, ck);
  if (name == "dec-kmeans") return RunDecKMeansWorkload(seed, quick, ck);
  if (name == "coala") return RunCoalaWorkload(seed, quick, ck);
  if (name == "co-em") return RunCoEmWorkload(seed, quick, ck);
  if (name == "orclus") return RunOrclusWorkload(seed, quick, ck);
  if (name == "proclus") return RunProclusWorkload(seed, quick, ck);
  if (name == "pipeline") return RunPipelineWorkload(seed, quick, ck);
  WorkloadRun out;
  out.status = Status::InvalidArgument("chaos: unknown workload '" + name +
                                       "'");
  return out;
}

bool IsWorkload(const std::string& name) {
  const std::vector<std::string>& all = WorkloadNames();
  return std::find(all.begin(), all.end(), name) != all.end();
}

// Fault-site geography per workload: where per-iteration faults land and
// which checkpoint slots an injected crash can hit. Spectral clustering
// checkpoints through its embedded k-means slot, so that is its crash site;
// the pipeline owns a stage-boundary slot of its own plus the inner
// dec-kmeans slot.
struct WorkloadSites {
  std::vector<std::string> iter_sites;
  std::vector<std::string> crash_sites;
};

WorkloadSites SitesFor(const std::string& workload) {
  if (workload == "spectral") return {{"spectral", "kmeans"}, {"kmeans"}};
  if (workload == "pipeline") {
    return {{"dec-kmeans", "pipeline"}, {"pipeline", "dec-kmeans"}};
  }
  return {{workload}, {workload}};
}

// ---------------------------------------------------------------------------
// Temp-dir + checkpoint-scan helpers.
// ---------------------------------------------------------------------------

Result<std::string> MakeTempDir() {
  char tmpl[] = "/tmp/multiclust_chaos_XXXXXX";
  if (mkdtemp(tmpl) == nullptr) {
    return Status::IoError("chaos: mkdtemp failed: " +
                           std::string(strerror(errno)));
  }
  return std::string(tmpl);
}

// Removes every regular file in `dir` (snapshots, stray .tmp files from
// injected short writes), then the directory itself. Best effort.
void RemoveDirTree(const std::string& dir) {
  DIR* d = opendir(dir.c_str());
  if (d != nullptr) {
    while (dirent* e = readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      unlink((dir + "/" + name).c_str());
    }
    closedir(d);
  }
  rmdir(dir.c_str());
}

std::optional<std::string> SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

bool HasSuffix(const std::string& s, const char* suffix) {
  const size_t n = strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

// A checkpoint file is "valid" when its envelope parses, the kind and
// schema version match, and the CRC-32 over the re-serialized payload
// equals the recorded one — the same gate TryRestore applies (minus the
// fingerprint, which is slot-specific).
bool IsValidCheckpointFile(const std::string& path) {
  const std::optional<std::string> text = SlurpFile(path);
  if (!text.has_value()) return false;
  auto doc = json::Parse(*text);
  if (!doc.ok()) return false;
  if (doc->GetString("kind", "") != kCheckpointKind) return false;
  if (doc->GetNumber("schema_version", 0) != kCheckpointSchemaVersion) {
    return false;
  }
  const json::Value* payload = doc->Find("payload");
  const json::Value* crc = doc->Find("crc32");
  if (payload == nullptr || crc == nullptr || !crc->is_number()) return false;
  json::Writer reserialized;
  json::SerializeValue(*payload, &reserialized);
  return Crc32(reserialized.str()) ==
         static_cast<uint32_t>(crc->number_value());
}

size_t CountValidCheckpoints(const std::string& dir) {
  size_t valid = 0;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return 0;
  while (dirent* e = readdir(d)) {
    const std::string name = e->d_name;
    if (!HasSuffix(name, ".ckpt.json")) continue;
    if (IsValidCheckpointFile(dir + "/" + name)) ++valid;
  }
  closedir(d);
  return valid;
}

// ---------------------------------------------------------------------------
// Invariant classification.
// ---------------------------------------------------------------------------

// Kinds that must not change the final result: reported I/O failures
// degrade to warnings, torn/corrupt snapshots are caught by verification or
// the restore CRC, and a crash resumes bit-identically. kExpireDeadline and
// the computation-poisoning kinds legitimately alter the outcome.
bool IsResultNeutral(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
    case FaultKind::kIoWriteFail:
    case FaultKind::kIoShortWrite:
    case FaultKind::kIoFsyncFail:
    case FaultKind::kIoRenameFail:
    case FaultKind::kIoTornWrite:
    case FaultKind::kCheckpointCorrupt:
      return true;
    default:
      return false;
  }
}

bool IsComputationFault(FaultKind kind) {
  return kind == FaultKind::kInjectNaN || kind == FaultKind::kAllocFail;
}

}  // namespace

Result<RunOutcome> RunSchedule(const RunConfig& config) {
  if (!IsWorkload(config.workload)) {
    return Status::InvalidArgument("chaos: unknown workload '" +
                                   config.workload + "'");
  }

  // Clean baseline: same workload and seed, no faults, no checkpointing.
  // It must succeed — a failure here is broken infrastructure, not a
  // finding about fault handling.
  fault::Reset();
  const WorkloadRun baseline =
      RunWorkload(config.workload, config.seed, config.quick, nullptr);
  if (!baseline.status.ok()) {
    return Status::Internal("chaos: clean baseline for '" + config.workload +
                            "' failed: " + baseline.status.ToString());
  }

  std::string dir = config.checkpoint_dir;
  bool own_dir = false;
  if (config.with_checkpoint && dir.empty()) {
    MC_ASSIGN_OR_RETURN(dir, MakeTempDir());
    own_dir = true;
  }

  RunOutcome out;
  out.baseline_digest = baseline.digest;

  // Arm once for the whole run: per-fault fire counters persist across
  // resume cycles, so a max_fires=1 crash kills exactly one attempt.
  fault::Reset();
  for (const FaultSpec& spec : config.schedule) fault::Arm(spec);

  constexpr size_t kMaxResumeCycles = 8;
  WorkloadRun run;
  for (;;) {
    std::optional<Checkpointer> ck;
    if (config.with_checkpoint) {
      CheckpointPolicy policy;
      policy.keep_last = config.keep_last;
      ck.emplace(dir, policy);
    }
    run = RunWorkload(config.workload, config.seed, config.quick,
                      ck ? &*ck : nullptr);
    if (ck) out.snapshots_written += ck->snapshots_written();
    if (run.status.code() != StatusCode::kAborted) break;
    if (!config.with_checkpoint || out.resume_cycles >= kMaxResumeCycles) {
      break;
    }
    ++out.resume_cycles;
  }
  out.fault_fires = fault::TotalFires();
  fault::Reset();

  out.status = run.status;
  out.produced_result = run.produced;
  out.digest = run.digest;
  out.iterations = run.iterations;

  bool any_computation_fault = false;
  bool any_result_affecting = false;
  bool any_corrupt = false;
  for (const FaultSpec& spec : config.schedule) {
    if (IsComputationFault(spec.kind)) any_computation_fault = true;
    if (!IsResultNeutral(spec.kind)) any_result_affecting = true;
    if (spec.kind == FaultKind::kCheckpointCorrupt) any_corrupt = true;
  }

  // Invariant: every injected fault degrades to an allowed status. kOk is
  // always fine; kComputationError only when a computation-poisoning fault
  // was armed; a still-kAborted final status means resume never recovered;
  // anything else (notably kIoError) is a fault that escaped containment.
  switch (out.status.code()) {
    case StatusCode::kOk:
      break;
    case StatusCode::kComputationError:
      if (!any_computation_fault) {
        out.violations.push_back(
            {"status-consistency",
             "kComputationError without an armed NaN/alloc fault: " +
                 out.status.ToString()});
      }
      break;
    case StatusCode::kAborted:
      out.violations.push_back(
          {"crash-resume", "still aborted after " +
                               std::to_string(out.resume_cycles) +
                               " resume cycles: " + out.status.ToString()});
      break;
    default:
      out.violations.push_back(
          {"status-consistency",
           "injected faults must degrade to warnings, got: " +
               out.status.ToString()});
      break;
  }

  // Invariant: when only result-neutral faults were armed and the run ended
  // kOk, the result must be bit-identical to the clean baseline. This also
  // checks crash→resume equivalence, since generated crash schedules only
  // combine kCrash with neutral I/O faults.
  if (out.status.ok() && !any_result_affecting) {
    if (out.digest != baseline.digest) {
      out.violations.push_back(
          {"baseline-equivalence",
           "digest " + std::to_string(out.digest) + " != baseline " +
               std::to_string(baseline.digest) + " after " +
               std::to_string(out.resume_cycles) + " resume cycles"});
    } else if (out.iterations != baseline.iterations) {
      out.violations.push_back(
          {"baseline-equivalence",
           "iterations " + std::to_string(out.iterations) + " != baseline " +
               std::to_string(baseline.iterations)});
    }
  }

  // Invariant: once any snapshot was persisted, at least one *valid*
  // checkpoint file must remain on disk — rotation must never delete the
  // last good snapshot in favour of a failed or torn newer write. Skipped
  // when kCheckpointCorrupt was armed (that fault deliberately rots
  // already-persisted files; the restore CRC owns that case).
  if (config.with_checkpoint && out.snapshots_written > 0 && !any_corrupt) {
    if (CountValidCheckpoints(dir) == 0) {
      out.violations.push_back(
          {"checkpoint-survivor",
           std::to_string(out.snapshots_written) +
               " snapshots written but no valid checkpoint file survives "
               "in " +
               dir});
    }
  }

  // Invariant: the workload's own iteration cap was honored.
  if (run.produced && run.iteration_cap > 0 &&
      run.iterations > run.iteration_cap) {
    out.violations.push_back(
        {"budget-honored", "iterations " + std::to_string(run.iterations) +
                               " exceed the configured cap " +
                               std::to_string(run.iteration_cap)});
  }

  // Invariant: a produced pipeline report stays schema-valid under faults.
  if (config.workload == "pipeline" && run.produced) {
    auto doc = json::Parse(run.report_json);
    if (!doc.ok()) {
      out.violations.push_back(
          {"report-schema",
           "report does not parse: " + doc.status().ToString()});
    } else if (doc->GetString("kind", "") != "multiclust.discovery_report" ||
               doc->GetNumber("schema_version", 0) != kReportSchemaVersion) {
      out.violations.push_back(
          {"report-schema", "bad envelope: kind '" +
                                doc->GetString("kind", "?") + "', version " +
                                std::to_string(static_cast<int>(
                                    doc->GetNumber("schema_version", -1)))});
    }
  }

  if (own_dir) RemoveDirTree(dir);
  return out;
}

// ---------------------------------------------------------------------------
// Schedule JSON.
// ---------------------------------------------------------------------------

std::string RunConfigToJson(const RunConfig& config) {
  json::Writer w;
  w.BeginObject();
  w.Key("schema_version");
  w.Int(kScheduleSchemaVersion);
  w.Key("kind");
  w.String(kScheduleKind);
  w.Key("workload");
  w.String(config.workload);
  w.Key("seed");
  ckpt::WriteU64(&w, config.seed);
  w.Key("keep_last");
  w.Uint(config.keep_last);
  w.Key("with_checkpoint");
  w.Bool(config.with_checkpoint);
  w.Key("quick");
  w.Bool(config.quick);
  w.Key("faults");
  w.BeginArray();
  for (const FaultSpec& f : config.schedule) {
    w.BeginObject();
    w.Key("site");
    w.String(f.site);
    w.Key("kind");
    w.String(FaultKindName(f.kind));
    w.Key("at_iteration");
    w.Uint(f.at_iteration);
    w.Key("max_fires");
    w.Uint(f.max_fires);
    w.Key("probability");
    w.Double(f.probability);
    w.Key("fault_seed");
    ckpt::WriteU64(&w, f.seed);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).str();
}

Result<RunConfig> ParseRunConfigJson(std::string_view text) {
  MC_ASSIGN_OR_RETURN(json::Value doc, json::Parse(text));
  if (doc.GetString("kind", "") != kScheduleKind) {
    return Status::InvalidArgument("chaos schedule: kind '" +
                                   doc.GetString("kind", "?") + "', want '" +
                                   std::string(kScheduleKind) + "'");
  }
  if (doc.GetNumber("schema_version", 0) != kScheduleSchemaVersion) {
    return Status::InvalidArgument("chaos schedule: unsupported schema "
                                   "version");
  }
  RunConfig config;
  config.workload = doc.GetString("workload", "kmeans");
  if (!IsWorkload(config.workload)) {
    return Status::InvalidArgument("chaos schedule: unknown workload '" +
                                   config.workload + "'");
  }
  if (const json::Value* seed = doc.Find("seed")) {
    MC_ASSIGN_OR_RETURN(config.seed, ckpt::ReadU64(*seed));
  }
  config.keep_last = static_cast<size_t>(doc.GetNumber("keep_last", 2));
  config.with_checkpoint = doc.GetBool("with_checkpoint", true);
  config.quick = doc.GetBool("quick", false);
  const json::Value* faults = doc.Find("faults");
  if (faults != nullptr) {
    if (!faults->is_array()) {
      return Status::InvalidArgument("chaos schedule: 'faults' must be an "
                                     "array");
    }
    for (const json::Value& f : faults->array_items()) {
      FaultSpec spec;
      spec.site = f.GetString("site", "");
      if (spec.site.empty()) {
        return Status::InvalidArgument("chaos schedule: fault without a "
                                       "site");
      }
      const std::string kind = f.GetString("kind", "");
      if (!ParseFaultKind(kind, &spec.kind)) {
        return Status::InvalidArgument("chaos schedule: unknown fault kind '" +
                                       kind + "'");
      }
      spec.at_iteration =
          static_cast<size_t>(f.GetNumber("at_iteration", 0));
      spec.max_fires = static_cast<size_t>(f.GetNumber("max_fires", 1));
      spec.probability = f.GetNumber("probability", 1.0);
      if (const json::Value* fs = f.Find("fault_seed")) {
        MC_ASSIGN_OR_RETURN(spec.seed, ckpt::ReadU64(*fs));
      }
      config.schedule.push_back(std::move(spec));
    }
  }
  return config;
}

// ---------------------------------------------------------------------------
// Delta debugging.
// ---------------------------------------------------------------------------

std::vector<FaultSpec> ShrinkSchedule(
    const RunConfig& config,
    const std::function<bool(const RunConfig&)>& still_fails) {
  std::vector<FaultSpec> current = config.schedule;
  bool changed = true;
  while (changed && current.size() > 1) {
    changed = false;
    for (size_t i = 0; i < current.size(); ++i) {
      std::vector<FaultSpec> candidate = current;
      candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(i));
      RunConfig probe = config;
      probe.schedule = candidate;
      if (still_fails(probe)) {
        current = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return current;
}

std::vector<FaultSpec> ShrinkSchedule(const RunConfig& config) {
  return ShrinkSchedule(config, [](const RunConfig& probe) {
    auto outcome = RunSchedule(probe);
    return outcome.ok() && !outcome->violations.empty();
  });
}

// ---------------------------------------------------------------------------
// Schedule generator.
// ---------------------------------------------------------------------------

RunConfig GenerateConfig(uint64_t seed, bool quick,
                         const std::vector<std::string>& workloads) {
  const std::vector<std::string>& pool =
      workloads.empty() ? WorkloadNames() : workloads;
  RunConfig config;
  config.quick = quick;
  config.workload = pool[seed % pool.size()];
  const WorkloadSites sites = SitesFor(config.workload);

  Rng rng(SplitMix64(seed ^ 0xC4A0'5A11'C4A0'5A11ULL));
  config.seed = 1 + rng.NextIndex(1u << 20);
  config.with_checkpoint = rng.NextDouble() < 0.85;
  config.keep_last = 1 + rng.NextIndex(2);

  // Crash schedules combine kCrash with result-neutral checkpoint-I/O
  // faults only, so the resumed result stays comparable to the baseline.
  const bool crash_mode = config.with_checkpoint && rng.NextDouble() < 0.35;

  static constexpr FaultKind kIoKinds[] = {
      FaultKind::kIoWriteFail,  FaultKind::kIoShortWrite,
      FaultKind::kIoFsyncFail,  FaultKind::kIoRenameFail,
      FaultKind::kIoTornWrite,  FaultKind::kCheckpointCorrupt};
  static constexpr FaultKind kAlgoKinds[] = {
      FaultKind::kInjectNaN, FaultKind::kForceNonConvergence,
      FaultKind::kExpireDeadline, FaultKind::kAllocFail};

  const size_t num_faults = 1 + rng.NextIndex(3);
  for (size_t i = 0; i < num_faults; ++i) {
    FaultSpec spec;
    const bool io_fault =
        config.with_checkpoint && (crash_mode || rng.NextDouble() < 0.45);
    if (io_fault) {
      spec.site = "checkpoint";
      spec.kind = kIoKinds[rng.NextIndex(std::size(kIoKinds))];
      spec.at_iteration = rng.NextIndex(6);
      spec.max_fires = 1 + rng.NextIndex(2);
    } else {
      spec.site = sites.iter_sites[rng.NextIndex(sites.iter_sites.size())];
      spec.kind = kAlgoKinds[rng.NextIndex(std::size(kAlgoKinds))];
      spec.at_iteration = rng.NextIndex(10);
      spec.max_fires = 1 + rng.NextIndex(3);
    }
    if (rng.NextDouble() < 0.3) {
      spec.probability = 0.25 * static_cast<double>(1 + rng.NextIndex(3));
      spec.seed = rng.NextU64();
    }
    config.schedule.push_back(std::move(spec));
  }
  if (crash_mode) {
    FaultSpec crash;
    crash.site = sites.crash_sites[rng.NextIndex(sites.crash_sites.size())];
    crash.kind = FaultKind::kCrash;
    crash.at_iteration = rng.NextIndex(8);
    crash.max_fires = 1;
    config.schedule.push_back(std::move(crash));
  }
  return config;
}

// ---------------------------------------------------------------------------
// Campaign.
// ---------------------------------------------------------------------------

CampaignResult RunCampaign(const CampaignOptions& options,
                           const std::function<void(size_t, size_t)>&
                               progress) {
  CampaignResult result;
  for (size_t i = 0; i < options.num_seeds; ++i) {
    const RunConfig config =
        GenerateConfig(options.base_seed + i, options.quick,
                       options.workloads);
    auto outcome = RunSchedule(config);
    ++result.runs;
    if (!outcome.ok()) {
      ViolationReport report;
      report.config = config;
      report.minimal = config.schedule;
      report.violations.push_back(
          {"infrastructure", outcome.status().ToString()});
      result.failures.push_back(std::move(report));
    } else {
      result.total_fault_fires += outcome->fault_fires;
      if (!outcome->violations.empty()) {
        ViolationReport report;
        report.config = config;
        report.violations = outcome->violations;
        report.minimal =
            options.shrink ? ShrinkSchedule(config) : config.schedule;
        if (options.shrink) {
          // Re-derive the violations the minimal schedule reproduces, so
          // the report describes the repro it ships.
          RunConfig minimal_config = config;
          minimal_config.schedule = report.minimal;
          auto minimal_outcome = RunSchedule(minimal_config);
          if (minimal_outcome.ok() && !minimal_outcome->violations.empty()) {
            report.violations = minimal_outcome->violations;
          }
        }
        result.failures.push_back(std::move(report));
      }
    }
    if (progress) progress(i + 1, options.num_seeds);
  }
  return result;
}

}  // namespace chaos
}  // namespace multiclust

#else  // !MULTICLUST_FAULT_INJECTION

namespace multiclust {
namespace chaos {

namespace {
Status Unimplemented() {
  return Status::Unimplemented(
      "chaos: rebuild with -DMULTICLUST_FAULT_INJECTION=ON");
}
}  // namespace

Result<RunOutcome> RunSchedule(const RunConfig&) { return Unimplemented(); }

std::string RunConfigToJson(const RunConfig&) { return "{}"; }

Result<RunConfig> ParseRunConfigJson(std::string_view) {
  return Unimplemented();
}

std::vector<FaultSpec> ShrinkSchedule(
    const RunConfig& config,
    const std::function<bool(const RunConfig&)>&) {
  return config.schedule;
}

std::vector<FaultSpec> ShrinkSchedule(const RunConfig& config) {
  return config.schedule;
}

RunConfig GenerateConfig(uint64_t seed, bool quick,
                         const std::vector<std::string>& workloads) {
  const std::vector<std::string>& pool =
      workloads.empty() ? WorkloadNames() : workloads;
  RunConfig config;
  config.quick = quick;
  config.workload = pool[seed % pool.size()];
  return config;
}

CampaignResult RunCampaign(const CampaignOptions& options,
                           const std::function<void(size_t, size_t)>&) {
  CampaignResult result;
  ViolationReport report;
  report.violations.push_back({"infrastructure", Unimplemented().ToString()});
  (void)options;
  result.failures.push_back(std::move(report));
  return result;
}

}  // namespace chaos
}  // namespace multiclust

#endif  // MULTICLUST_FAULT_INJECTION
