#include "common/runguard.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "common/telemetry.h"
#include "linalg/matrix.h"

namespace multiclust {

const char* StopReasonToString(StopReason reason) {
  switch (reason) {
    case StopReason::kConverged:
      return "converged";
    case StopReason::kMaxIterations:
      return "max-iterations";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

std::string ConvergenceTrace::ToString() const {
  if (points.empty()) return "(no convergence trace)";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%zu points, winning restart %zu, final objective %.6g "
                "(delta %.3g)",
                points.size(), winning_restart, points.back().objective,
                points.back().delta);
  std::string out = buf;
  size_t reseeds = 0;
  for (const ConvergencePoint& p : points) reseeds += p.reseeds;
  if (reseeds > 0) out += ", " + std::to_string(reseeds) + " reseeds";
  return out;
}

std::string RunDiagnostics::ToString() const {
  std::string out = algorithm.empty() ? "<unknown>" : algorithm;
  out += ": " + std::to_string(iterations) + " iters, ";
  out += converged ? "converged" : "not converged";
  out += " (";
  out += StopReasonToString(stop_reason);
  out += ")";
  if (retries > 0) out += ", " + std::to_string(retries) + " retries";
  if (elapsed_ms > 0.0) {
    out += ", " + std::to_string(elapsed_ms) + " ms";
  }
  if (!trace.empty()) out += ", trace: " + trace.ToString();
  if (!warnings.empty()) {
    out += ", " + std::to_string(warnings.size()) + " warning" +
           (warnings.size() == 1 ? "" : "s");
  }
  if (!note.empty()) out += " — " + note;
  return out;
}

void AddWarning(RunDiagnostics* diagnostics, const char* algorithm,
                const std::string& message) {
  if (diagnostics == nullptr) return;
  diagnostics->warnings.push_back(std::string(algorithm) + ": " + message);
}

void ConvergenceRecorder::Record(size_t restart, size_t iteration,
                                 double objective, double delta,
                                 size_t reseeds) {
  if (diag_ == nullptr) return;
  ConvergencePoint p;
  p.restart = restart;
  p.iteration = iteration;
  p.objective = objective;
  p.delta = delta;
  p.reseeds = reseeds;
  p.budget_remaining_ms = guard_ != nullptr ? guard_->RemainingMs() : -1.0;
  diag_->trace.points.push_back(p);
  if (telemetry::ProgressEnabled()) {
    telemetry::ProgressEvent event;
    event.stage = guard_ != nullptr ? guard_->site() : "run";
    event.phase = "iteration";
    event.restart = static_cast<int64_t>(restart);
    event.iteration = static_cast<int64_t>(iteration);
    event.objective = objective;
    event.delta = delta;
    if (p.budget_remaining_ms >= 0.0) {
      event.budget_remaining_ms = p.budget_remaining_ms;
    }
    if (guard_ != nullptr && expected_iterations_ > iteration + 1) {
      // ETA from iteration cadence: mean time per recorded point so far,
      // extrapolated over this restart's remaining iterations.
      const double cadence = guard_->ElapsedMs() /
                             static_cast<double>(diag_->trace.points.size());
      event.eta_ms =
          cadence * static_cast<double>(expected_iterations_ - iteration - 1);
    }
    telemetry::EmitProgress(event);
  }
}

void ConvergenceRecorder::Finish(const char* algorithm, size_t iterations,
                                 bool converged) {
  if (diag_ == nullptr) return;
  diag_->algorithm = algorithm;
  diag_->iterations = iterations;
  diag_->converged = converged;
  if (converged) {
    diag_->stop_reason = StopReason::kConverged;
  } else if (guard_ != nullptr && guard_->reason() != StopReason::kConverged) {
    diag_->stop_reason = guard_->reason();
  } else {
    diag_->stop_reason = StopReason::kMaxIterations;
  }
  if (guard_ != nullptr) diag_->elapsed_ms = guard_->ElapsedMs();
  diag_->resource = resource_scope_.Snapshot();
  telemetry::EmitStage(algorithm, "end");
}

BudgetTracker::BudgetTracker(const RunBudget& budget, const char* site)
    : budget_(budget),
      site_(site),
      start_(std::chrono::steady_clock::now()) {}

double BudgetTracker::ElapsedMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

bool BudgetTracker::ShouldStop(size_t iteration) {
  if (budget_.max_iterations != 0 && iteration >= budget_.max_iterations) {
    reason_ = StopReason::kMaxIterations;
    return true;
  }
  if (MC_FAULT_FIRES(site_, FaultKind::kExpireDeadline, iteration)) {
    reason_ = StopReason::kDeadline;
    return true;
  }
  if (budget_.deadline_ms > 0.0 && ElapsedMs() >= budget_.deadline_ms) {
    reason_ = StopReason::kDeadline;
    return true;
  }
  return false;
}

bool BudgetTracker::DeadlineExpired() {
  if (budget_.deadline_ms > 0.0 && ElapsedMs() >= budget_.deadline_ms) {
    reason_ = StopReason::kDeadline;
    return true;
  }
  return false;
}

double BudgetTracker::RemainingMs() const {
  if (budget_.deadline_ms <= 0.0) return -1.0;
  return std::max(0.0, budget_.deadline_ms - ElapsedMs());
}

Status BudgetTracker::CancelledStatus() const {
  return Status::Cancelled(std::string(site_) + ": cancelled by caller");
}

RunBudget BudgetTracker::Remaining() const {
  RunBudget b = budget_;
  // Never forward the checkpointer implicitly: a sub-algorithm writing
  // under the parent's slot would interleave incompatible snapshots.
  // Composites that want nested checkpoints re-attach it explicitly.
  b.checkpoint = nullptr;
  if (b.deadline_ms > 0.0) {
    const double left = b.deadline_ms - ElapsedMs();
    // Keep the deadline active (0 would mean "none"): an exhausted budget
    // becomes a minimal one that trips at the sub-call's first check.
    b.deadline_ms = left > 1e-3 ? left : 1e-3;
  }
  return b;
}

namespace {

Status NonFiniteError(const char* context, size_t row, size_t col,
                      double value) {
  return Status::InvalidArgument(
      std::string(context) + ": non-finite value (" +
      (std::isnan(value) ? "NaN" : "Inf") + ") at row " +
      std::to_string(row) + ", column " + std::to_string(col));
}

}  // namespace

Status ValidateMatrix(const char* context, const Matrix& m) {
  for (size_t i = 0; i < m.rows(); ++i) {
    const double* row = m.row_data(i);
    for (size_t j = 0; j < m.cols(); ++j) {
      if (!std::isfinite(row[j])) return NonFiniteError(context, i, j, row[j]);
    }
  }
  return Status::OK();
}

Status ValidateNonEmptyMatrix(const char* context, const Matrix& m) {
  if (m.rows() == 0 || m.cols() == 0) {
    return Status::InvalidArgument(std::string(context) + ": empty data");
  }
  return ValidateMatrix(context, m);
}

uint64_t RetrySeed(uint64_t base_seed, size_t attempt) {
  if (attempt == 0) return base_seed;
  return SplitMix64(base_seed +
                    0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(attempt));
}

}  // namespace multiclust
