#ifndef MULTICLUST_COMMON_RNG_H_
#define MULTICLUST_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace multiclust {

/// Complete serializable generator state: the four xoshiro256** words plus
/// the Box–Muller cache. Restoring it resumes the stream at exactly the
/// point it was saved (checkpoint/resume relies on this for bit-identical
/// replay).
struct RngState {
  uint64_t words[4] = {0, 0, 0, 0};
  bool has_cached_gaussian = false;
  double cached_gaussian = 0.0;
};

/// One stateless SplitMix64 step: a high-quality 64-bit mix of `x`.
/// Used wherever a derived-but-independent seed is needed (per-retry
/// seeds, per-shard streams) — bit-reproducible across platforms.
uint64_t SplitMix64(uint64_t x);

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64. Every randomised algorithm in the library takes an explicit
/// seed and derives all randomness from one `Rng`, making runs reproducible
/// across platforms (no reliance on `std::` distribution implementations).
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextIndex(uint64_t n);

  /// Standard normal variate (Box–Muller, cached second value).
  double NextGaussian();

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Samples index i with probability weights[i] / sum(weights).
  /// Weights must be non-negative with a positive sum; otherwise returns 0.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of `items` indices [0, n); returns the permutation.
  std::vector<size_t> Permutation(size_t n);

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator (for per-restart streams).
  Rng Split();

  /// Captures the full generator state (see RngState).
  RngState SaveState() const;

  /// Overwrites the generator state; the stream continues exactly where
  /// the saved generator would have.
  void RestoreState(const RngState& state);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace multiclust

#endif  // MULTICLUST_COMMON_RNG_H_
