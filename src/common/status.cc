#include "common/status.h"

namespace multiclust {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kComputationError:
      return "ComputationError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace multiclust
