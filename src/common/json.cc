#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace multiclust {
namespace json {

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through unmodified
        }
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return "null";
  // std::to_chars emits the shortest decimal form that parses back to
  // exactly v — the documented contract — in one pass (~20x faster than
  // the snprintf/strtod probing it replaced; this sits on the armed
  // progress-stream hot path).
  char buf[32];
  const std::to_chars_result res = std::to_chars(buf, buf + sizeof(buf), v);
  if (res.ec != std::errc()) return "null";  // cannot happen for double
  return std::string(buf, res.ptr);
}

void Writer::Separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the ':' was already written by Key()
  }
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
}

void Writer::OpenContainer(char open, Frame frame) {
  Separate();
  out_ += open;
  stack_.push_back(frame);
  has_items_.push_back(false);
}

void Writer::CloseContainer(char close) {
  out_ += close;
  stack_.pop_back();
  has_items_.pop_back();
}

void Writer::Key(std::string_view name) {
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  out_ += '"';
  out_ += Escape(name);
  out_ += "\":";
  pending_key_ = true;
}

void Writer::String(std::string_view v) {
  Separate();
  out_ += '"';
  out_ += Escape(v);
  out_ += '"';
}

void Writer::Double(double v) {
  Separate();
  out_ += FormatDouble(v);
}

void Writer::Int(int64_t v) {
  Separate();
  out_ += std::to_string(v);
}

void Writer::Uint(uint64_t v) {
  Separate();
  out_ += std::to_string(v);
}

void Writer::Bool(bool v) {
  Separate();
  out_ += v ? "true" : "false";
}

void Writer::Null() {
  Separate();
  out_ += "null";
}

void Writer::Raw(std::string_view raw) {
  Separate();
  out_ += raw;
}

const Value* Value::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  // Last occurrence wins, matching common parser behaviour for duplicates.
  const Value* found = nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) found = &value;
  }
  return found;
}

double Value::GetNumber(std::string_view key, double def) const {
  const Value* v = Find(key);
  return v != nullptr ? v->NumberOr(def) : def;
}

std::string Value::GetString(std::string_view key,
                             const std::string& def) const {
  const Value* v = Find(key);
  return v != nullptr ? v->StringOr(def) : def;
}

bool Value::GetBool(std::string_view key, bool def) const {
  const Value* v = Find(key);
  return v != nullptr ? v->BoolOr(def) : def;
}

Value Value::MakeBool(bool v) {
  Value out;
  out.type_ = Type::kBool;
  out.bool_ = v;
  return out;
}

Value Value::MakeNumber(double v) {
  Value out;
  out.type_ = Type::kNumber;
  out.number_ = v;
  return out;
}

Value Value::MakeString(std::string v) {
  Value out;
  out.type_ = Type::kString;
  out.string_ = std::move(v);
  return out;
}

Value Value::MakeArray(std::vector<Value> items) {
  Value out;
  out.type_ = Type::kArray;
  out.array_ = std::move(items);
  return out;
}

Value Value::MakeObject(std::vector<std::pair<std::string, Value>> members) {
  Value out;
  out.type_ = Type::kObject;
  out.object_ = std::move(members);
  return out;
}

namespace {
constexpr size_t kMaxDepth = 256;  // stack-overflow guard for hostile input
}  // namespace

// Named (not anonymous-namespace) so the friend declaration in Value
// matches; everything here stays internal to this translation unit in
// practice — the class is not declared in the header.
class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Result<Value> Run() {
    SkipWs();
    Value root;
    MC_RETURN_IF_ERROR(ParseValue(&root, 0));
    SkipWs();
    if (pos_ != s_.size()) return Error("trailing content after document");
    return root;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  Status ParseValue(Value* out, size_t depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    switch (Peek()) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        out->type_ = Value::Type::kString;
        return ParseString(&out->string_);
      }
      case 't':
        MC_RETURN_IF_ERROR(ParseLiteral("true"));
        *out = Value::MakeBool(true);
        return Status::OK();
      case 'f':
        MC_RETURN_IF_ERROR(ParseLiteral("false"));
        *out = Value::MakeBool(false);
        return Status::OK();
      case 'n':
        MC_RETURN_IF_ERROR(ParseLiteral("null"));
        *out = Value();
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(Value* out, size_t depth) {
    ++pos_;  // '{'
    out->type_ = Value::Type::kObject;
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWs();
      std::string key;
      MC_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      if (Peek() != ':') return Error("expected ':' in object");
      ++pos_;
      SkipWs();
      Value member;
      MC_RETURN_IF_ERROR(ParseValue(&member, depth + 1));
      out->object_.emplace_back(std::move(key), std::move(member));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(Value* out, size_t depth) {
    ++pos_;  // '['
    out->type_ = Value::Type::kArray;
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWs();
      Value item;
      MC_RETURN_IF_ERROR(ParseValue(&item, depth + 1));
      out->array_.push_back(std::move(item));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    if (Peek() != '"') return Error("expected string");
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) break;
        const char esc = s_[pos_++];
        switch (esc) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'r':
            *out += '\r';
            break;
          case 't':
            *out += '\t';
            break;
          case 'u': {
            MC_RETURN_IF_ERROR(ParseUnicodeEscape(out));
            break;
          }
          default:
            return Error("invalid escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      } else {
        *out += c;
        ++pos_;
      }
    }
    return Error("unterminated string");
  }

  // Reads the 4 hex digits after \u and appends the code point as UTF-8.
  // Surrogate pairs are combined when both halves are present.
  Status ParseUnicodeEscape(std::string* out) {
    uint32_t cp = 0;
    MC_RETURN_IF_ERROR(ReadHex4(&cp));
    if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 1 < s_.size() &&
        s_[pos_] == '\\' && s_[pos_ + 1] == 'u') {
      pos_ += 2;
      uint32_t low = 0;
      MC_RETURN_IF_ERROR(ReadHex4(&low));
      if (low >= 0xDC00 && low <= 0xDFFF) {
        cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
      }
    }
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return Status::OK();
  }

  Status ReadHex4(uint32_t* out) {
    if (pos_ + 4 > s_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = s_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    *out = value;
    return Status::OK();
  }

  Status ParseNumber(Value* out) {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Error("expected a value");
    const std::string text(s_.substr(start, pos_ - start));
    // JSON forbids leading zeros ("01") and a bare leading '.'; strtod
    // accepts both, so check the grammar's int part explicitly.
    const size_t digits = text[0] == '-' ? 1 : 0;
    if (digits >= text.size() || !(text[digits] >= '0' && text[digits] <= '9'))
      return Error("malformed number");
    if (text[digits] == '0' && digits + 1 < text.size() &&
        text[digits + 1] >= '0' && text[digits + 1] <= '9') {
      return Error("number with leading zero");
    }
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) return Error("malformed number");
    *out = Value::MakeNumber(v);
    return Status::OK();
  }

  Status ParseLiteral(const char* word) {
    const size_t len = std::strlen(word);
    if (s_.compare(pos_, len, word) != 0) return Error("invalid literal");
    pos_ += len;
    return Status::OK();
  }

  std::string_view s_;
  size_t pos_ = 0;
};

Result<Value> Parse(std::string_view text) { return Parser(text).Run(); }

void SerializeValue(const Value& v, Writer* w) {
  switch (v.type()) {
    case Value::Type::kNull:
      w->Null();
      break;
    case Value::Type::kBool:
      w->Bool(v.bool_value());
      break;
    case Value::Type::kNumber:
      w->Double(v.number_value());
      break;
    case Value::Type::kString:
      w->String(v.string_value());
      break;
    case Value::Type::kArray:
      w->BeginArray();
      for (const Value& item : v.array_items()) SerializeValue(item, w);
      w->EndArray();
      break;
    case Value::Type::kObject:
      w->BeginObject();
      for (const auto& [key, member] : v.object_items()) {
        w->Key(key);
        SerializeValue(member, w);
      }
      w->EndObject();
      break;
  }
}

}  // namespace json
}  // namespace multiclust
