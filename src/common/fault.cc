#include "common/fault.h"

#if defined(MULTICLUST_FAULT_INJECTION)

#include <atomic>
#include <cstring>
#include <mutex>
#include <vector>

namespace multiclust {
namespace fault {

namespace {

struct ArmedFault {
  FaultSpec spec;
  size_t fires = 0;
};

std::mutex g_mutex;
std::atomic<int> g_armed{0};
std::atomic<size_t> g_total_fires{0};

std::vector<ArmedFault>& Registry() {
  static std::vector<ArmedFault>* r = new std::vector<ArmedFault>();
  return *r;
}

}  // namespace

void Arm(const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(g_mutex);
  Registry().push_back({spec, 0});
  g_armed.store(static_cast<int>(Registry().size()),
                std::memory_order_release);
}

void Reset() {
  std::lock_guard<std::mutex> lock(g_mutex);
  Registry().clear();
  g_armed.store(0, std::memory_order_release);
  g_total_fires.store(0, std::memory_order_relaxed);
}

bool ShouldFire(const char* site, FaultKind kind, size_t iteration) {
  // Fast path: nothing armed (the normal state of a production process).
  if (g_armed.load(std::memory_order_acquire) == 0) return false;
  std::lock_guard<std::mutex> lock(g_mutex);
  for (ArmedFault& f : Registry()) {
    if (f.spec.kind != kind) continue;
    if (iteration < f.spec.at_iteration) continue;
    if (f.spec.max_fires != 0 && f.fires >= f.spec.max_fires) continue;
    if (std::strcmp(f.spec.site.c_str(), site) != 0) continue;
    ++f.fires;
    g_total_fires.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

size_t TotalFires() { return g_total_fires.load(std::memory_order_relaxed); }

}  // namespace fault
}  // namespace multiclust

#endif  // MULTICLUST_FAULT_INJECTION
