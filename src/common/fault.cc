#include "common/fault.h"

#if defined(MULTICLUST_FAULT_INJECTION)

#include <atomic>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/rng.h"

namespace multiclust {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kInjectNaN:
      return "inject_nan";
    case FaultKind::kForceNonConvergence:
      return "force_non_convergence";
    case FaultKind::kExpireDeadline:
      return "expire_deadline";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kIoWriteFail:
      return "io_write_fail";
    case FaultKind::kIoShortWrite:
      return "io_short_write";
    case FaultKind::kIoFsyncFail:
      return "io_fsync_fail";
    case FaultKind::kIoRenameFail:
      return "io_rename_fail";
    case FaultKind::kIoTornWrite:
      return "io_torn_write";
    case FaultKind::kCheckpointCorrupt:
      return "checkpoint_corrupt";
    case FaultKind::kAllocFail:
      return "alloc_fail";
  }
  return "unknown";
}

bool ParseFaultKind(std::string_view name, FaultKind* out) {
  constexpr FaultKind kAll[] = {
      FaultKind::kInjectNaN,     FaultKind::kForceNonConvergence,
      FaultKind::kExpireDeadline, FaultKind::kCrash,
      FaultKind::kIoWriteFail,   FaultKind::kIoShortWrite,
      FaultKind::kIoFsyncFail,   FaultKind::kIoRenameFail,
      FaultKind::kIoTornWrite,   FaultKind::kCheckpointCorrupt,
      FaultKind::kAllocFail,
  };
  for (FaultKind k : kAll) {
    if (name == FaultKindName(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

namespace fault {

namespace {

struct ArmedFault {
  FaultSpec spec;
  size_t fires = 0;
  uint64_t coin_state = 0;  ///< SplitMix64 position for probabilistic specs
};

std::mutex g_mutex;
std::atomic<int> g_armed{0};
std::atomic<size_t> g_total_fires{0};

std::vector<ArmedFault>& Registry() {
  static std::vector<ArmedFault>* r = new std::vector<ArmedFault>();
  return *r;
}

}  // namespace

void Arm(const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(g_mutex);
  Registry().push_back({spec, 0, spec.seed});
  g_armed.store(static_cast<int>(Registry().size()),
                std::memory_order_release);
}

void Reset() {
  std::lock_guard<std::mutex> lock(g_mutex);
  Registry().clear();
  g_armed.store(0, std::memory_order_release);
  g_total_fires.store(0, std::memory_order_relaxed);
}

bool ShouldFire(const char* site, FaultKind kind, size_t iteration) {
  // Fast path: nothing armed (the normal state of a production process).
  if (g_armed.load(std::memory_order_acquire) == 0) return false;
  std::lock_guard<std::mutex> lock(g_mutex);
  for (ArmedFault& f : Registry()) {
    if (f.spec.kind != kind) continue;
    if (iteration < f.spec.at_iteration) continue;
    if (f.spec.max_fires != 0 && f.fires >= f.spec.max_fires) continue;
    if (std::strcmp(f.spec.site.c_str(), site) != 0) continue;
    if (f.spec.probability < 1.0) {
      // One coin flip per eligible check, drawn from the spec's private
      // SplitMix64 stream: the firing pattern is a pure function of
      // (seed, eligible-check index), hence bit-reproducible per seed.
      f.coin_state = SplitMix64(f.coin_state + 0x9E3779B97F4A7C15ULL);
      const double draw =
          static_cast<double>(f.coin_state >> 11) * 0x1.0p-53;
      if (draw >= f.spec.probability) continue;
    }
    ++f.fires;
    g_total_fires.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

size_t TotalFires() { return g_total_fires.load(std::memory_order_relaxed); }

size_t TotalFires(const char* site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  size_t total = 0;
  for (const ArmedFault& f : Registry()) {
    if (std::strcmp(f.spec.site.c_str(), site) == 0) total += f.fires;
  }
  return total;
}

}  // namespace fault
}  // namespace multiclust

#endif  // MULTICLUST_FAULT_INJECTION
