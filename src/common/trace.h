#ifndef MULTICLUST_COMMON_TRACE_H_
#define MULTICLUST_COMMON_TRACE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace multiclust {

/// Span-based tracer with a Chrome trace-event exporter.
///
/// Usage in library code (always through the macro, never the class):
///
///   void HotFunction() {
///     MULTICLUST_TRACE_SPAN("cluster.kmeans.assign");
///     ...  // scope timed; nested spans nest in the exported trace
///   }
///
/// Span names follow the `<module>.<algo>.<event>` convention (see
/// DESIGN.md "Observability") and MUST be string literals (or otherwise
/// have static storage duration): the tracer stores the pointer, not a
/// copy, so span construction never allocates.
///
/// Collection is off until `trace::Enable()`; a compiled-in but disabled
/// span costs one relaxed atomic load. Completed spans are appended to
/// per-thread buffers (safe under the `ParallelFor` pool), exported either
/// as a `chrome://tracing` / Perfetto-loadable JSON document or as a
/// per-span count/total/mean/max summary table.
///
/// The whole subsystem is compiled out under `-DMULTICLUST_TRACING=OFF`:
/// every function below becomes an empty inline stub, `Span` becomes an
/// empty object, and libmulticlust contains no `multiclust::trace`
/// symbols (CI checks this with `nm`).
namespace trace {

/// Aggregate statistics of one span name across all threads.
struct SpanStats {
  std::string name;
  size_t count = 0;
  double total_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
};

#if defined(MULTICLUST_TRACING)

inline constexpr bool kCompiledIn = true;

/// Starts collecting span events. Events recorded before Enable() (or
/// after Disable()) are dropped at the span, not buffered.
void Enable();

/// Stops collecting. Already-buffered events are kept for export.
void Disable();

/// True while collection is on.
bool Enabled();

/// Drops every buffered event (buffers keep their capacity, so a
/// Reset-per-run loop does not churn the allocator).
void Reset();

/// Number of completed spans currently buffered, across all threads.
size_t EventCount();

/// Completed spans dropped because a per-thread buffer hit its capacity
/// (SetMaxEventsPerThread). Dropped events are counted, never silently
/// lost: the total is surfaced here, in SummaryString() and in the
/// Chrome JSON "metadata" object ("trace.dropped_events"). Reset() zeroes
/// it along with the buffers.
size_t DroppedEvents();

/// Caps each per-thread event buffer at `max_events` completed spans
/// (default 1 << 20, ~32 MB/thread). 0 means unlimited. Spans recorded
/// past the cap are dropped and counted in DroppedEvents().
void SetMaxEventsPerThread(size_t max_events);

/// The stack of currently-open span names of every registered thread
/// (threads appear once they have opened a span; order is thread
/// registration order). Entry i is innermost-last. Used by the sampling
/// profiler (common/profile.h) to attribute timer samples; nesting deeper
/// than an internal fixed depth is truncated to the outermost frames.
std::vector<std::vector<const char*>> SnapshotOpenSpans();

/// Per-span aggregates, sorted by span name (deterministic order).
std::vector<SpanStats> Summary();

/// Human-readable summary table of Summary().
std::string SummaryString();

/// The buffered events as a Chrome trace-event JSON document
/// (`{"traceEvents": [...]}`, "X" complete events, microsecond
/// timestamps). Loadable in chrome://tracing or https://ui.perfetto.dev.
std::string ChromeTraceJson();

/// Writes ChromeTraceJson() to `path`.
Status WriteChromeTrace(const std::string& path);

/// RAII scope timer. Use MULTICLUST_TRACE_SPAN instead of naming this
/// directly so the span compiles out under -DMULTICLUST_TRACING=OFF.
/// `name` must have static storage duration (string literal).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  double start_us_ = 0.0;
  bool active_ = false;
};

#else  // !MULTICLUST_TRACING — zero-cost stubs, no symbols in the library.

inline constexpr bool kCompiledIn = false;

inline void Enable() {}
inline void Disable() {}
inline constexpr bool Enabled() { return false; }
inline void Reset() {}
inline constexpr size_t EventCount() { return 0; }
inline constexpr size_t DroppedEvents() { return 0; }
inline void SetMaxEventsPerThread(size_t) {}
inline std::vector<std::vector<const char*>> SnapshotOpenSpans() {
  return {};
}
inline std::vector<SpanStats> Summary() { return {}; }
inline std::string SummaryString() {
  return "trace: compiled out (-DMULTICLUST_TRACING=OFF)\n";
}
inline std::string ChromeTraceJson() { return "{\"traceEvents\":[]}\n"; }
inline Status WriteChromeTrace(const std::string&) { return Status::OK(); }

class Span {
 public:
  explicit Span(const char*) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#endif  // MULTICLUST_TRACING

}  // namespace trace
}  // namespace multiclust

#define MC_TRACE_CONCAT_INNER_(a, b) a##b
#define MC_TRACE_CONCAT_(a, b) MC_TRACE_CONCAT_INNER_(a, b)

/// Times the enclosing scope under `name` (a string literal,
/// `<module>.<algo>.<event>`). Expands to nothing when tracing is
/// compiled out.
#if defined(MULTICLUST_TRACING)
#define MULTICLUST_TRACE_SPAN(name)          \
  ::multiclust::trace::Span MC_TRACE_CONCAT_( \
      mc_trace_span_, __LINE__) { (name) }
#else
#define MULTICLUST_TRACE_SPAN(name) \
  do {                              \
  } while (false)
#endif

#endif  // MULTICLUST_COMMON_TRACE_H_
