#ifndef MULTICLUST_COMMON_STRINGS_H_
#define MULTICLUST_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace multiclust {

/// Splits `s` on the separator character; empty fields are preserved.
std::vector<std::string> SplitString(const std::string& s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string TrimString(const std::string& s);

/// Joins `parts` with `sep` between elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep);

/// Parses a double; returns false on malformed input or trailing junk.
bool ParseDouble(const std::string& s, double* out);

}  // namespace multiclust

#endif  // MULTICLUST_COMMON_STRINGS_H_
