#ifndef MULTICLUST_COMMON_REPORT_H_
#define MULTICLUST_COMMON_REPORT_H_

#include <string>

#include "common/json.h"
#include "common/runguard.h"
#include "common/status.h"

namespace multiclust {

struct DiscoveryReport;
struct ObjectiveReport;
class SolutionSet;

/// Versioned JSON serialization of run outcomes — the durable export layer
/// on top of the telemetry the pipeline and run-guard subsystems already
/// collect. One artifact captures everything needed to audit a run after
/// the fact: the solutions and their objective scores, every strategy
/// attempt's RunDiagnostics (including the per-iteration ConvergenceTrace),
/// the metrics-registry snapshot and the span-summary table.
///
/// Schema stability policy (see DESIGN.md "Report schema"): every document
/// carries `schema_version` and a `kind` discriminator. Additive changes
/// (new fields) do not bump the version — readers must ignore unknown
/// fields; renames/removals/semantic changes do. Documents written by an
/// old library version stay parseable by design: the writer never reuses a
/// field name with a different meaning within one version.
///
/// Version history:
///   v1 — PR 4: solutions / objective / attempts / metrics / spans.
///   v2 — telemetry plane: optional "resource" (ResourceProfile) members on
///        the report and on each attempt's diagnostics. v1 documents stay
///        readable: ReadDiscoveryReportJson accepts both and leaves
///        `resource.captured == false` when the member is absent.
inline constexpr int kReportSchemaVersion = 2;

/// Controls artifact size. The defaults archive everything; flip the
/// include flags off for compact artifacts (e.g. labels for a million
/// objects, or thousand-point convergence traces).
struct ReportJsonOptions {
  /// Per-solution label vectors (`solutions[i].labels`).
  bool include_labels = true;
  /// Per-iteration convergence points (`attempts[i].trace.points`);
  /// the winning restart and scalar diagnostics are always kept.
  bool include_trace_points = true;
  /// Metrics-registry snapshot (metrics::MetricsJson()); empty array when
  /// the registry is compiled out.
  bool include_metrics = true;
  /// Span-summary table (trace::Summary()); empty array when the tracer is
  /// compiled out or was never enabled.
  bool include_spans = true;
};

/// --- Embeddable fragments: append one JSON value to `w`. ---

/// {"restart":..,"iteration":..,"objective":..,"delta":..,"reseeds":..,
///  "budget_remaining_ms":..}
void AppendConvergencePoint(const ConvergencePoint& point, json::Writer* w);

/// {"winning_restart":..,"points":[...]}
void AppendConvergenceTrace(const ConvergenceTrace& trace, bool with_points,
                            json::Writer* w);

/// {"wall_ms":..,"user_cpu_ms":..,"system_cpu_ms":..,"peak_rss_kb":..,
///  "minor_faults":..,"major_faults":..,"alloc_count":..,"alloc_bytes":..,
///  "flops":..,"kernel_bytes":..}
void AppendResourceProfile(const telemetry::ResourceProfile& resource,
                           json::Writer* w);

/// {"algorithm":..,"iterations":..,"converged":..,"stop_reason":..,
///  "retries":..,"elapsed_ms":..,"note":..,"trace":{...}} plus a
/// "resource" member when diagnostics.resource.captured (schema v2).
void AppendRunDiagnostics(const RunDiagnostics& diagnostics, bool with_points,
                          json::Writer* w);

/// {"qualities":[...],"mean_quality":..,"mean_dissimilarity":..,
///  "min_dissimilarity":..,"combined":..}
void AppendObjectiveReport(const ObjectiveReport& objective, json::Writer* w);

/// [{"algorithm":..,"num_clusters":..,"quality":..,"iterations":..,
///   "converged":..,"labels":[...]}, ...]
void AppendSolutionSet(const SolutionSet& set, bool with_labels,
                       json::Writer* w);

/// The full DiscoveryReport as one JSON object (without the top-level
/// schema envelope — use DiscoveryReportJson for a standalone document).
void AppendDiscoveryReport(const DiscoveryReport& report,
                           const ReportJsonOptions& options, json::Writer* w);

/// --- Standalone artifacts. ---

/// One self-describing document:
///   {"schema_version":2,"kind":"multiclust.discovery_report",
///    "report":{...},"metrics":[...],"spans":[...]}
std::string DiscoveryReportJson(const DiscoveryReport& report,
                                const ReportJsonOptions& options = {});

/// Parses a DiscoveryReportJson document back into a DiscoveryReport.
/// Accepts schema versions 1 and 2: v1 documents (no "resource" members)
/// parse with `resource.captured == false` everywhere. Centroid matrices
/// and the metrics/spans snapshots are not part of the report struct and
/// are not reconstructed; label vectors are recovered when the document
/// was written with `include_labels`.
Result<DiscoveryReport> ReadDiscoveryReportJson(const std::string& text);

/// Writes DiscoveryReportJson(report, options) to `path`.
Status WriteDiscoveryReport(const std::string& path,
                            const DiscoveryReport& report,
                            const ReportJsonOptions& options = {});

/// Writes a whole string to a file (shared by the report and harness
/// writers; replaces the file atomically enough for single-writer use).
Status WriteStringToFile(const std::string& path, const std::string& content);

}  // namespace multiclust

#endif  // MULTICLUST_COMMON_REPORT_H_
