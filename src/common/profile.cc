#include "common/profile.h"

#if defined(MULTICLUST_TRACING)

#include <sys/resource.h>
#include <sys/time.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>

#include "common/trace.h"

namespace multiclust {
namespace telemetry {

namespace internal {
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<uint64_t> g_alloc_bytes{0};
std::atomic<uint64_t> g_flops{0};
std::atomic<uint64_t> g_kernel_bytes{0};
}  // namespace internal

namespace {

double NowWallUs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

double TimevalUs(const struct timeval& tv) {
  return static_cast<double>(tv.tv_sec) * 1e6 +
         static_cast<double>(tv.tv_usec);
}

}  // namespace

std::string ResourceProfile::ToString() const {
  if (!captured) return "(resource profile not captured)\n";
  char line[160];
  std::string out;
  std::snprintf(line, sizeof(line),
                "wall %.1f ms  user %.1f ms  sys %.1f ms\n", wall_ms,
                user_cpu_ms, system_cpu_ms);
  out += line;
  std::snprintf(line, sizeof(line),
                "peak rss %llu KB  faults %llu minor / %llu major\n",
                static_cast<unsigned long long>(peak_rss_kb),
                static_cast<unsigned long long>(minor_faults),
                static_cast<unsigned long long>(major_faults));
  out += line;
  std::snprintf(line, sizeof(line),
                "allocs %llu (%llu bytes)  kernel %llu flops / %llu bytes\n",
                static_cast<unsigned long long>(alloc_count),
                static_cast<unsigned long long>(alloc_bytes),
                static_cast<unsigned long long>(flops),
                static_cast<unsigned long long>(kernel_bytes));
  out += line;
  return out;
}

ResourceScope::ResourceScope() {
  start_wall_us_ = NowWallUs();
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    start_user_us_ = TimevalUs(usage.ru_utime);
    start_sys_us_ = TimevalUs(usage.ru_stime);
    start_minflt_ = static_cast<uint64_t>(usage.ru_minflt);
    start_majflt_ = static_cast<uint64_t>(usage.ru_majflt);
  }
  start_alloc_count_ =
      internal::g_alloc_count.load(std::memory_order_relaxed);
  start_alloc_bytes_ =
      internal::g_alloc_bytes.load(std::memory_order_relaxed);
  start_flops_ = internal::g_flops.load(std::memory_order_relaxed);
  start_kernel_bytes_ =
      internal::g_kernel_bytes.load(std::memory_order_relaxed);
}

ResourceProfile ResourceScope::Snapshot() const {
  ResourceProfile profile;
  profile.captured = true;
  profile.wall_ms = (NowWallUs() - start_wall_us_) / 1000.0;
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    profile.user_cpu_ms =
        (TimevalUs(usage.ru_utime) - start_user_us_) / 1000.0;
    profile.system_cpu_ms =
        (TimevalUs(usage.ru_stime) - start_sys_us_) / 1000.0;
    // ru_maxrss on Linux is in kilobytes and is a process-wide high-water
    // mark: report the end-of-scope value, not a delta.
    profile.peak_rss_kb = static_cast<uint64_t>(usage.ru_maxrss);
    const uint64_t minflt = static_cast<uint64_t>(usage.ru_minflt);
    const uint64_t majflt = static_cast<uint64_t>(usage.ru_majflt);
    profile.minor_faults = minflt - std::min(minflt, start_minflt_);
    profile.major_faults = majflt - std::min(majflt, start_majflt_);
  }
  profile.alloc_count =
      internal::g_alloc_count.load(std::memory_order_relaxed) -
      start_alloc_count_;
  profile.alloc_bytes =
      internal::g_alloc_bytes.load(std::memory_order_relaxed) -
      start_alloc_bytes_;
  profile.flops =
      internal::g_flops.load(std::memory_order_relaxed) - start_flops_;
  profile.kernel_bytes =
      internal::g_kernel_bytes.load(std::memory_order_relaxed) -
      start_kernel_bytes_;
  return profile;
}

// --- Sampling profiler -------------------------------------------------------

namespace {

struct SamplerState {
  std::mutex mu;  // guards thread start/stop transitions
  std::thread thread;
  std::atomic<bool> running{false};
  std::atomic<bool> stop{false};

  std::mutex data_mu;  // guards the accumulated samples
  std::map<std::string, size_t> stacks;  // "outer;inner" -> sample count
  size_t total_samples = 0;
};

SamplerState& GetSampler() {
  static SamplerState* state = new SamplerState();
  return *state;
}

constexpr const char kNoSpan[] = "(no span)";

void SamplerLoop(double interval_ms) {
  SamplerState& state = GetSampler();
  const auto period = std::chrono::duration<double, std::milli>(interval_ms);
  while (!state.stop.load(std::memory_order_acquire)) {
    const std::vector<std::vector<const char*>> stacks =
        trace::SnapshotOpenSpans();
    {
      std::lock_guard<std::mutex> lock(state.data_mu);
      for (const std::vector<const char*>& stack : stacks) {
        std::string key;
        if (stack.empty()) {
          key = kNoSpan;
        } else {
          for (const char* name : stack) {
            if (!key.empty()) key.push_back(';');
            key += name;
          }
        }
        ++state.stacks[key];
        ++state.total_samples;
      }
    }
    std::this_thread::sleep_for(period);
  }
}

// Splits a collapsed-stack key back into frame names.
std::vector<std::string> SplitFrames(const std::string& key) {
  std::vector<std::string> frames;
  size_t start = 0;
  while (start <= key.size()) {
    const size_t semi = key.find(';', start);
    if (semi == std::string::npos) {
      frames.push_back(key.substr(start));
      break;
    }
    frames.push_back(key.substr(start, semi - start));
    start = semi + 1;
  }
  return frames;
}

}  // namespace

Status StartSampler(const SamplerOptions& options) {
  if (!(options.interval_ms > 0.0)) {
    return Status::InvalidArgument("sampler: interval_ms must be positive");
  }
  SamplerState& state = GetSampler();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.running.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("sampler: already running");
  }
  state.stop.store(false, std::memory_order_release);
  state.thread = std::thread(SamplerLoop, options.interval_ms);
  state.running.store(true, std::memory_order_release);
  return Status::OK();
}

void StopSampler() {
  SamplerState& state = GetSampler();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.running.load(std::memory_order_acquire)) return;
  state.stop.store(true, std::memory_order_release);
  state.thread.join();
  state.running.store(false, std::memory_order_release);
}

bool SamplerRunning() {
  return GetSampler().running.load(std::memory_order_acquire);
}

void ResetSamples() {
  SamplerState& state = GetSampler();
  std::lock_guard<std::mutex> lock(state.data_mu);
  state.stacks.clear();
  state.total_samples = 0;
}

size_t SampleCount() {
  SamplerState& state = GetSampler();
  std::lock_guard<std::mutex> lock(state.data_mu);
  return state.total_samples;
}

std::string CollapsedStacks() {
  SamplerState& state = GetSampler();
  std::lock_guard<std::mutex> lock(state.data_mu);
  std::string out;
  for (const auto& [key, count] : state.stacks) {  // map: sorted by stack
    out += key;
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %zu\n", count);
    out += buf;
  }
  return out;
}

std::vector<SampleStats> SamplerTable() {
  std::map<std::string, SampleStats> by_name;
  {
    SamplerState& state = GetSampler();
    std::lock_guard<std::mutex> lock(state.data_mu);
    for (const auto& [key, count] : state.stacks) {
      const std::vector<std::string> frames = SplitFrames(key);
      by_name[frames.back()].self += count;
      // `total` counts each sample once per span present, even if the span
      // recurses within the stack.
      std::vector<std::string> seen;
      for (const std::string& frame : frames) {
        if (std::find(seen.begin(), seen.end(), frame) != seen.end()) {
          continue;
        }
        seen.push_back(frame);
        by_name[frame].total += count;
      }
    }
  }
  std::vector<SampleStats> out;
  out.reserve(by_name.size());
  for (auto& [name, stats] : by_name) {
    stats.name = name;
    out.push_back(std::move(stats));
  }
  std::sort(out.begin(), out.end(),
            [](const SampleStats& a, const SampleStats& b) {
              if (a.self != b.self) return a.self > b.self;
              return a.name < b.name;
            });
  return out;
}

std::string SamplerTableString() {
  const std::vector<SampleStats> table = SamplerTable();
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-36s %10s %10s\n", "span", "self",
                "total");
  out += line;
  for (const SampleStats& s : table) {
    std::snprintf(line, sizeof(line), "%-36s %10zu %10zu\n", s.name.c_str(),
                  s.self, s.total);
    out += line;
  }
  if (table.empty()) out += "(no samples recorded)\n";
  return out;
}

}  // namespace telemetry
}  // namespace multiclust

#endif  // MULTICLUST_TRACING
