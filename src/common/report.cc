#include "common/report.h"

#include <cstdio>
#include <limits>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/pipeline.h"

namespace multiclust {

void AppendConvergencePoint(const ConvergencePoint& point, json::Writer* w) {
  w->BeginObject();
  w->Key("restart");
  w->Uint(point.restart);
  w->Key("iteration");
  w->Uint(point.iteration);
  w->Key("objective");
  w->Double(point.objective);
  w->Key("delta");
  w->Double(point.delta);
  w->Key("reseeds");
  w->Uint(point.reseeds);
  w->Key("budget_remaining_ms");
  w->Double(point.budget_remaining_ms);
  w->EndObject();
}

void AppendConvergenceTrace(const ConvergenceTrace& trace, bool with_points,
                            json::Writer* w) {
  w->BeginObject();
  w->Key("winning_restart");
  w->Uint(trace.winning_restart);
  w->Key("num_points");
  w->Uint(trace.points.size());
  if (with_points) {
    w->Key("points");
    w->BeginArray();
    for (const ConvergencePoint& point : trace.points) {
      AppendConvergencePoint(point, w);
    }
    w->EndArray();
  }
  w->EndObject();
}

void AppendResourceProfile(const telemetry::ResourceProfile& resource,
                           json::Writer* w) {
  w->BeginObject();
  w->Key("wall_ms");
  w->Double(resource.wall_ms);
  w->Key("user_cpu_ms");
  w->Double(resource.user_cpu_ms);
  w->Key("system_cpu_ms");
  w->Double(resource.system_cpu_ms);
  w->Key("peak_rss_kb");
  w->Uint(resource.peak_rss_kb);
  w->Key("minor_faults");
  w->Uint(resource.minor_faults);
  w->Key("major_faults");
  w->Uint(resource.major_faults);
  w->Key("alloc_count");
  w->Uint(resource.alloc_count);
  w->Key("alloc_bytes");
  w->Uint(resource.alloc_bytes);
  w->Key("flops");
  w->Uint(resource.flops);
  w->Key("kernel_bytes");
  w->Uint(resource.kernel_bytes);
  w->EndObject();
}

void AppendRunDiagnostics(const RunDiagnostics& diagnostics, bool with_points,
                          json::Writer* w) {
  w->BeginObject();
  w->Key("algorithm");
  w->String(diagnostics.algorithm);
  w->Key("iterations");
  w->Uint(diagnostics.iterations);
  w->Key("converged");
  w->Bool(diagnostics.converged);
  w->Key("stop_reason");
  w->String(StopReasonToString(diagnostics.stop_reason));
  w->Key("retries");
  w->Uint(diagnostics.retries);
  w->Key("elapsed_ms");
  w->Double(diagnostics.elapsed_ms);
  w->Key("note");
  w->String(diagnostics.note);
  w->Key("warnings");
  w->BeginArray();
  for (const std::string& warning : diagnostics.warnings) w->String(warning);
  w->EndArray();
  w->Key("trace");
  AppendConvergenceTrace(diagnostics.trace, with_points, w);
  if (diagnostics.resource.captured) {
    w->Key("resource");
    AppendResourceProfile(diagnostics.resource, w);
  }
  w->EndObject();
}

void AppendObjectiveReport(const ObjectiveReport& objective, json::Writer* w) {
  w->BeginObject();
  w->Key("qualities");
  w->BeginArray();
  for (const double q : objective.qualities) w->Double(q);
  w->EndArray();
  w->Key("mean_quality");
  w->Double(objective.mean_quality);
  w->Key("mean_dissimilarity");
  w->Double(objective.mean_dissimilarity);
  w->Key("min_dissimilarity");
  w->Double(objective.min_dissimilarity);
  w->Key("combined");
  w->Double(objective.combined);
  w->EndObject();
}

void AppendSolutionSet(const SolutionSet& set, bool with_labels,
                       json::Writer* w) {
  w->BeginArray();
  for (size_t s = 0; s < set.size(); ++s) {
    const Clustering& solution = set.at(s);
    w->BeginObject();
    w->Key("algorithm");
    w->String(solution.algorithm);
    w->Key("num_clusters");
    w->Uint(solution.NumClusters());
    w->Key("quality");
    w->Double(solution.quality);  // NaN (unset) serializes as null
    w->Key("iterations");
    w->Uint(solution.iterations);
    w->Key("converged");
    w->Bool(solution.converged);
    w->Key("num_objects");
    w->Uint(solution.labels.size());
    if (with_labels) {
      w->Key("labels");
      w->BeginArray();
      for (const int label : solution.labels) w->Int(label);
      w->EndArray();
    }
    w->EndObject();
  }
  w->EndArray();
}

void AppendDiscoveryReport(const DiscoveryReport& report,
                           const ReportJsonOptions& options, json::Writer* w) {
  w->BeginObject();
  w->Key("strategy");
  w->String(report.strategy_name);
  w->Key("chosen_k");
  w->Uint(report.chosen_k);
  w->Key("degraded");
  w->Bool(report.degraded);
  w->Key("warnings");
  w->BeginArray();
  for (const std::string& warning : report.warnings) w->String(warning);
  w->EndArray();
  w->Key("objective");
  AppendObjectiveReport(report.objective, w);
  w->Key("solutions");
  AppendSolutionSet(report.solutions, options.include_labels, w);
  w->Key("attempts");
  w->BeginArray();
  for (const RunDiagnostics& attempt : report.attempts) {
    AppendRunDiagnostics(attempt, options.include_trace_points, w);
  }
  w->EndArray();
  if (report.resource.captured) {
    w->Key("resource");
    AppendResourceProfile(report.resource, w);
  }
  w->EndObject();
}

std::string DiscoveryReportJson(const DiscoveryReport& report,
                                const ReportJsonOptions& options) {
  json::Writer w;
  w.BeginObject();
  w.Key("schema_version");
  w.Int(kReportSchemaVersion);
  w.Key("kind");
  w.String("multiclust.discovery_report");
  w.Key("report");
  AppendDiscoveryReport(report, options, &w);
  // Observability snapshots. Preprocessor-guarded (not a runtime check) so
  // a -DMULTICLUST_TRACING=OFF library contains no trace/metrics symbols
  // (the CI nm check) — the stub calls would otherwise leave weak inline
  // definitions in libmulticlust.
  w.Key("metrics");
#if defined(MULTICLUST_TRACING)
  if (options.include_metrics) {
    w.Raw(metrics::MetricsJson());
  } else {
    w.BeginArray();
    w.EndArray();
  }
#else
  w.BeginArray();
  w.EndArray();
#endif
  w.Key("spans");
  w.BeginArray();
#if defined(MULTICLUST_TRACING)
  if (options.include_spans) {
    for (const trace::SpanStats& span : trace::Summary()) {
      w.BeginObject();
      w.Key("name");
      w.String(span.name);
      w.Key("count");
      w.Uint(span.count);
      w.Key("total_ms");
      w.Double(span.total_ms);
      w.Key("mean_ms");
      w.Double(span.mean_ms);
      w.Key("max_ms");
      w.Double(span.max_ms);
      w.EndObject();
    }
  }
#endif
  w.EndArray();
  w.EndObject();
  std::string out = std::move(w).str();
  out += '\n';
  return out;
}

Status WriteStringToFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int close_err = std::fclose(f);
  if (written != content.size() || close_err != 0) {
    return Status::IoError("short write to '" + path + "'");
  }
  return Status::OK();
}

Status WriteDiscoveryReport(const std::string& path,
                            const DiscoveryReport& report,
                            const ReportJsonOptions& options) {
  return WriteStringToFile(path, DiscoveryReportJson(report, options));
}

namespace {

StopReason StopReasonFromName(const std::string& name) {
  if (name == "max-iterations") return StopReason::kMaxIterations;
  if (name == "deadline") return StopReason::kDeadline;
  if (name == "cancelled") return StopReason::kCancelled;
  return StopReason::kConverged;
}

telemetry::ResourceProfile ParseResourceProfile(const json::Value& v) {
  telemetry::ResourceProfile r;
  r.captured = true;
  r.wall_ms = v.GetNumber("wall_ms", 0.0);
  r.user_cpu_ms = v.GetNumber("user_cpu_ms", 0.0);
  r.system_cpu_ms = v.GetNumber("system_cpu_ms", 0.0);
  r.peak_rss_kb = static_cast<uint64_t>(v.GetNumber("peak_rss_kb", 0.0));
  r.minor_faults = static_cast<uint64_t>(v.GetNumber("minor_faults", 0.0));
  r.major_faults = static_cast<uint64_t>(v.GetNumber("major_faults", 0.0));
  r.alloc_count = static_cast<uint64_t>(v.GetNumber("alloc_count", 0.0));
  r.alloc_bytes = static_cast<uint64_t>(v.GetNumber("alloc_bytes", 0.0));
  r.flops = static_cast<uint64_t>(v.GetNumber("flops", 0.0));
  r.kernel_bytes = static_cast<uint64_t>(v.GetNumber("kernel_bytes", 0.0));
  return r;
}

RunDiagnostics ParseRunDiagnostics(const json::Value& v) {
  RunDiagnostics d;
  d.algorithm = v.GetString("algorithm", "");
  d.iterations = static_cast<size_t>(v.GetNumber("iterations", 0.0));
  d.converged = v.GetBool("converged", false);
  d.stop_reason = StopReasonFromName(v.GetString("stop_reason", "converged"));
  d.retries = static_cast<size_t>(v.GetNumber("retries", 0.0));
  d.elapsed_ms = v.GetNumber("elapsed_ms", 0.0);
  d.note = v.GetString("note", "");
  if (const json::Value* warnings = v.Find("warnings");
      warnings != nullptr && warnings->is_array()) {
    for (const json::Value& warning : warnings->array_items()) {
      if (warning.is_string()) d.warnings.push_back(warning.string_value());
    }
  }
  if (const json::Value* trace = v.Find("trace");
      trace != nullptr && trace->is_object()) {
    d.trace.winning_restart =
        static_cast<size_t>(trace->GetNumber("winning_restart", 0.0));
    if (const json::Value* points = trace->Find("points");
        points != nullptr && points->is_array()) {
      for (const json::Value& pv : points->array_items()) {
        ConvergencePoint p;
        p.restart = static_cast<size_t>(pv.GetNumber("restart", 0.0));
        p.iteration = static_cast<size_t>(pv.GetNumber("iteration", 0.0));
        p.objective = pv.GetNumber("objective", 0.0);
        p.delta = pv.GetNumber("delta", 0.0);
        p.reseeds = static_cast<size_t>(pv.GetNumber("reseeds", 0.0));
        p.budget_remaining_ms = pv.GetNumber("budget_remaining_ms", -1.0);
        d.trace.points.push_back(p);
      }
    }
  }
  if (const json::Value* resource = v.Find("resource");
      resource != nullptr && resource->is_object()) {
    d.resource = ParseResourceProfile(*resource);  // v2 member; absent in v1
  }
  return d;
}

}  // namespace

Result<DiscoveryReport> ReadDiscoveryReportJson(const std::string& text) {
  auto parsed = json::Parse(text);
  if (!parsed.ok()) return parsed.status();
  const json::Value& doc = parsed.value();
  if (!doc.is_object()) {
    return Status::InvalidArgument("report: document is not a JSON object");
  }
  const int version = static_cast<int>(doc.GetNumber("schema_version", 0.0));
  if (version < 1 || version > kReportSchemaVersion) {
    return Status::InvalidArgument(
        "report: unsupported schema_version " + std::to_string(version) +
        " (reader supports 1.." + std::to_string(kReportSchemaVersion) + ")");
  }
  if (doc.GetString("kind", "") != "multiclust.discovery_report") {
    return Status::InvalidArgument("report: kind is not "
                                   "'multiclust.discovery_report'");
  }
  const json::Value* rep = doc.Find("report");
  if (rep == nullptr || !rep->is_object()) {
    return Status::InvalidArgument("report: missing 'report' object");
  }

  DiscoveryReport out;
  out.strategy_name = rep->GetString("strategy", "");
  out.chosen_k = static_cast<size_t>(rep->GetNumber("chosen_k", 0.0));
  out.degraded = rep->GetBool("degraded", false);
  if (const json::Value* warnings = rep->Find("warnings");
      warnings != nullptr && warnings->is_array()) {
    for (const json::Value& warning : warnings->array_items()) {
      if (warning.is_string()) out.warnings.push_back(warning.string_value());
    }
  }
  if (const json::Value* objective = rep->Find("objective");
      objective != nullptr && objective->is_object()) {
    if (const json::Value* qualities = objective->Find("qualities");
        qualities != nullptr && qualities->is_array()) {
      for (const json::Value& q : qualities->array_items()) {
        out.objective.qualities.push_back(q.NumberOr(0.0));
      }
    }
    out.objective.mean_quality = objective->GetNumber("mean_quality", 0.0);
    out.objective.mean_dissimilarity =
        objective->GetNumber("mean_dissimilarity", 0.0);
    out.objective.min_dissimilarity =
        objective->GetNumber("min_dissimilarity", 0.0);
    out.objective.combined = objective->GetNumber("combined", 0.0);
  }
  if (const json::Value* solutions = rep->Find("solutions");
      solutions != nullptr && solutions->is_array()) {
    for (const json::Value& sv : solutions->array_items()) {
      Clustering c;
      c.algorithm = sv.GetString("algorithm", "");
      c.quality = sv.GetNumber(
          "quality", std::numeric_limits<double>::quiet_NaN());
      c.iterations = static_cast<size_t>(sv.GetNumber("iterations", 0.0));
      c.converged = sv.GetBool("converged", true);
      if (const json::Value* labels = sv.Find("labels");
          labels != nullptr && labels->is_array()) {
        c.labels.reserve(labels->size());
        for (const json::Value& label : labels->array_items()) {
          c.labels.push_back(static_cast<int>(label.NumberOr(0.0)));
        }
      }
      const Status added = out.solutions.Add(std::move(c));
      if (!added.ok()) {
        return Status::InvalidArgument("report: inconsistent solutions — " +
                                       added.ToString());
      }
    }
  }
  if (const json::Value* attempts = rep->Find("attempts");
      attempts != nullptr && attempts->is_array()) {
    for (const json::Value& av : attempts->array_items()) {
      if (av.is_object()) out.attempts.push_back(ParseRunDiagnostics(av));
    }
  }
  if (const json::Value* resource = rep->Find("resource");
      resource != nullptr && resource->is_object()) {
    out.resource = ParseResourceProfile(*resource);  // v2 member
  }
  return out;
}

}  // namespace multiclust
