#include "common/report.h"

#include <cstdio>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/pipeline.h"

namespace multiclust {

void AppendConvergencePoint(const ConvergencePoint& point, json::Writer* w) {
  w->BeginObject();
  w->Key("restart");
  w->Uint(point.restart);
  w->Key("iteration");
  w->Uint(point.iteration);
  w->Key("objective");
  w->Double(point.objective);
  w->Key("delta");
  w->Double(point.delta);
  w->Key("reseeds");
  w->Uint(point.reseeds);
  w->Key("budget_remaining_ms");
  w->Double(point.budget_remaining_ms);
  w->EndObject();
}

void AppendConvergenceTrace(const ConvergenceTrace& trace, bool with_points,
                            json::Writer* w) {
  w->BeginObject();
  w->Key("winning_restart");
  w->Uint(trace.winning_restart);
  w->Key("num_points");
  w->Uint(trace.points.size());
  if (with_points) {
    w->Key("points");
    w->BeginArray();
    for (const ConvergencePoint& point : trace.points) {
      AppendConvergencePoint(point, w);
    }
    w->EndArray();
  }
  w->EndObject();
}

void AppendRunDiagnostics(const RunDiagnostics& diagnostics, bool with_points,
                          json::Writer* w) {
  w->BeginObject();
  w->Key("algorithm");
  w->String(diagnostics.algorithm);
  w->Key("iterations");
  w->Uint(diagnostics.iterations);
  w->Key("converged");
  w->Bool(diagnostics.converged);
  w->Key("stop_reason");
  w->String(StopReasonToString(diagnostics.stop_reason));
  w->Key("retries");
  w->Uint(diagnostics.retries);
  w->Key("elapsed_ms");
  w->Double(diagnostics.elapsed_ms);
  w->Key("note");
  w->String(diagnostics.note);
  w->Key("warnings");
  w->BeginArray();
  for (const std::string& warning : diagnostics.warnings) w->String(warning);
  w->EndArray();
  w->Key("trace");
  AppendConvergenceTrace(diagnostics.trace, with_points, w);
  w->EndObject();
}

void AppendObjectiveReport(const ObjectiveReport& objective, json::Writer* w) {
  w->BeginObject();
  w->Key("qualities");
  w->BeginArray();
  for (const double q : objective.qualities) w->Double(q);
  w->EndArray();
  w->Key("mean_quality");
  w->Double(objective.mean_quality);
  w->Key("mean_dissimilarity");
  w->Double(objective.mean_dissimilarity);
  w->Key("min_dissimilarity");
  w->Double(objective.min_dissimilarity);
  w->Key("combined");
  w->Double(objective.combined);
  w->EndObject();
}

void AppendSolutionSet(const SolutionSet& set, bool with_labels,
                       json::Writer* w) {
  w->BeginArray();
  for (size_t s = 0; s < set.size(); ++s) {
    const Clustering& solution = set.at(s);
    w->BeginObject();
    w->Key("algorithm");
    w->String(solution.algorithm);
    w->Key("num_clusters");
    w->Uint(solution.NumClusters());
    w->Key("quality");
    w->Double(solution.quality);  // NaN (unset) serializes as null
    w->Key("iterations");
    w->Uint(solution.iterations);
    w->Key("converged");
    w->Bool(solution.converged);
    w->Key("num_objects");
    w->Uint(solution.labels.size());
    if (with_labels) {
      w->Key("labels");
      w->BeginArray();
      for (const int label : solution.labels) w->Int(label);
      w->EndArray();
    }
    w->EndObject();
  }
  w->EndArray();
}

void AppendDiscoveryReport(const DiscoveryReport& report,
                           const ReportJsonOptions& options, json::Writer* w) {
  w->BeginObject();
  w->Key("strategy");
  w->String(report.strategy_name);
  w->Key("chosen_k");
  w->Uint(report.chosen_k);
  w->Key("degraded");
  w->Bool(report.degraded);
  w->Key("warnings");
  w->BeginArray();
  for (const std::string& warning : report.warnings) w->String(warning);
  w->EndArray();
  w->Key("objective");
  AppendObjectiveReport(report.objective, w);
  w->Key("solutions");
  AppendSolutionSet(report.solutions, options.include_labels, w);
  w->Key("attempts");
  w->BeginArray();
  for (const RunDiagnostics& attempt : report.attempts) {
    AppendRunDiagnostics(attempt, options.include_trace_points, w);
  }
  w->EndArray();
  w->EndObject();
}

std::string DiscoveryReportJson(const DiscoveryReport& report,
                                const ReportJsonOptions& options) {
  json::Writer w;
  w.BeginObject();
  w.Key("schema_version");
  w.Int(kReportSchemaVersion);
  w.Key("kind");
  w.String("multiclust.discovery_report");
  w.Key("report");
  AppendDiscoveryReport(report, options, &w);
  // Observability snapshots. Preprocessor-guarded (not a runtime check) so
  // a -DMULTICLUST_TRACING=OFF library contains no trace/metrics symbols
  // (the CI nm check) — the stub calls would otherwise leave weak inline
  // definitions in libmulticlust.
  w.Key("metrics");
#if defined(MULTICLUST_TRACING)
  if (options.include_metrics) {
    w.Raw(metrics::MetricsJson());
  } else {
    w.BeginArray();
    w.EndArray();
  }
#else
  w.BeginArray();
  w.EndArray();
#endif
  w.Key("spans");
  w.BeginArray();
#if defined(MULTICLUST_TRACING)
  if (options.include_spans) {
    for (const trace::SpanStats& span : trace::Summary()) {
      w.BeginObject();
      w.Key("name");
      w.String(span.name);
      w.Key("count");
      w.Uint(span.count);
      w.Key("total_ms");
      w.Double(span.total_ms);
      w.Key("mean_ms");
      w.Double(span.mean_ms);
      w.Key("max_ms");
      w.Double(span.max_ms);
      w.EndObject();
    }
  }
#endif
  w.EndArray();
  w.EndObject();
  std::string out = std::move(w).str();
  out += '\n';
  return out;
}

Status WriteStringToFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int close_err = std::fclose(f);
  if (written != content.size() || close_err != 0) {
    return Status::IoError("short write to '" + path + "'");
  }
  return Status::OK();
}

Status WriteDiscoveryReport(const std::string& path,
                            const DiscoveryReport& report,
                            const ReportJsonOptions& options) {
  return WriteStringToFile(path, DiscoveryReportJson(report, options));
}

}  // namespace multiclust
