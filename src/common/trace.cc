#include "common/trace.h"

#if defined(MULTICLUST_TRACING)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

namespace multiclust {
namespace trace {

namespace {

// One completed span. `name` points at a string literal (see trace.h), so
// an event is 32 bytes and appending one never allocates beyond the
// buffer's own growth.
struct Event {
  const char* name;
  double ts_us;   // start, relative to the process trace epoch
  double dur_us;  // duration
  uint32_t tid;   // small stable per-thread id (1-based, creation order)
};

// Maximum tracked span nesting per thread. Deeper nests still record
// events and keep a correct depth count; only the sampler-visible stack
// is truncated to the outermost kMaxSpanDepth frames.
constexpr uint32_t kMaxSpanDepth = 64;

// Per-thread event buffer. The owning thread appends; the exporter reads.
// Both take `mu`, but the owner's lock is uncontended except during an
// export, so the append fast path stays a futex-free lock/unlock pair.
//
// `stack`/`depth` are the thread's currently-open span names, maintained
// lock-free by the owner (push in Span ctor, pop in dtor) and read by the
// sampling profiler thread: the owner stores the name slot first, then
// release-stores the new depth, so a reader that acquire-loads `depth`
// sees every slot below it. A sample racing a pop may attribute to the
// just-closed span — acceptable for a statistical profiler, and free of
// data races because the slots are atomics.
struct ThreadBuffer {
  std::mutex mu;
  uint32_t tid = 0;
  std::vector<Event> events;
  std::atomic<const char*> stack[kMaxSpanDepth] = {};
  std::atomic<uint32_t> depth{0};
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  uint32_t next_tid = 1;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

std::atomic<bool> g_enabled{false};

// Per-thread buffer capacity (completed spans). 0 = unlimited.
std::atomic<size_t> g_max_events_per_thread{size_t{1} << 20};

// Spans dropped at full buffers, across all threads since the last Reset().
std::atomic<size_t> g_dropped_events{0};

// Microseconds since the process-wide trace epoch (first call).
double NowUs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

ThreadBuffer& LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto b = std::make_shared<ThreadBuffer>();
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    b->tid = registry.next_tid++;
    registry.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

// Snapshot of every buffered event, sorted by (tid, start) so exports are
// stable for a fixed set of recorded spans.
std::vector<Event> SnapshotEvents() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    buffers = registry.buffers;
  }
  std::vector<Event> events;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    events.insert(events.end(), buffer->events.begin(),
                  buffer->events.end());
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    return a.dur_us > b.dur_us;  // parent spans before their children
  });
  return events;
}

void AppendJsonEscaped(const char* s, std::string* out) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

void Enable() {
  NowUs();  // pin the epoch no later than the first enable
  g_enabled.store(true, std::memory_order_release);
}

void Disable() { g_enabled.store(false, std::memory_order_release); }

bool Enabled() { return g_enabled.load(std::memory_order_acquire); }

void Reset() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    buffers = registry.buffers;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->events.clear();  // keeps capacity: reset-per-run stays cheap
  }
  g_dropped_events.store(0, std::memory_order_relaxed);
}

size_t DroppedEvents() {
  return g_dropped_events.load(std::memory_order_relaxed);
}

void SetMaxEventsPerThread(size_t max_events) {
  g_max_events_per_thread.store(max_events, std::memory_order_relaxed);
}

std::vector<std::vector<const char*>> SnapshotOpenSpans() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    buffers = registry.buffers;
  }
  std::vector<std::vector<const char*>> stacks;
  stacks.reserve(buffers.size());
  for (const auto& buffer : buffers) {
    const uint32_t depth =
        std::min(buffer->depth.load(std::memory_order_acquire), kMaxSpanDepth);
    std::vector<const char*> stack;
    stack.reserve(depth);
    for (uint32_t i = 0; i < depth; ++i) {
      const char* name = buffer->stack[i].load(std::memory_order_relaxed);
      if (name == nullptr) break;  // racing a pop: keep the settled prefix
      stack.push_back(name);
    }
    stacks.push_back(std::move(stack));
  }
  return stacks;
}

size_t EventCount() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    buffers = registry.buffers;
  }
  size_t count = 0;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    count += buffer->events.size();
  }
  return count;
}

std::vector<SpanStats> Summary() {
  const std::vector<Event> events = SnapshotEvents();
  std::map<std::string, SpanStats> by_name;  // map: sorted, deterministic
  for (const Event& e : events) {
    SpanStats& s = by_name[e.name];
    const double ms = e.dur_us / 1000.0;
    ++s.count;
    s.total_ms += ms;
    s.max_ms = std::max(s.max_ms, ms);
  }
  std::vector<SpanStats> out;
  out.reserve(by_name.size());
  for (auto& [name, stats] : by_name) {
    stats.name = name;
    stats.mean_ms = stats.total_ms / static_cast<double>(stats.count);
    out.push_back(std::move(stats));
  }
  return out;
}

std::string SummaryString() {
  const std::vector<SpanStats> stats = Summary();
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-36s %8s %12s %10s %10s\n", "span",
                "count", "total ms", "mean ms", "max ms");
  out += line;
  for (const SpanStats& s : stats) {
    std::snprintf(line, sizeof(line), "%-36s %8zu %12.3f %10.4f %10.4f\n",
                  s.name.c_str(), s.count, s.total_ms, s.mean_ms, s.max_ms);
    out += line;
  }
  if (stats.empty()) out += "(no spans recorded)\n";
  const size_t dropped = DroppedEvents();
  if (dropped > 0) {
    std::snprintf(line, sizeof(line),
                  "trace.dropped_events: %zu (per-thread buffer full)\n",
                  dropped);
    out += line;
  }
  return out;
}

std::string ChromeTraceJson() {
  const std::vector<Event> events = SnapshotEvents();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"metadata\":{";
  {
    char meta[64];
    std::snprintf(meta, sizeof(meta), "\"trace.dropped_events\":%zu",
                  DroppedEvents());
    out += meta;
  }
  out += "},\"traceEvents\":[";
  char buf[128];
  bool first = true;
  for (const Event& e : events) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":\"";
    AppendJsonEscaped(e.name, &out);
    out += "\",\"cat\":\"multiclust\",\"ph\":\"X\",\"pid\":1,";
    std::snprintf(buf, sizeof(buf), "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f}",
                  e.tid, e.ts_us, e.dur_us);
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

Status WriteChromeTrace(const std::string& path) {
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file.is_open()) {
    return Status::IoError("trace: cannot open '" + path + "' for writing");
  }
  file << ChromeTraceJson();
  file.flush();
  if (!file.good()) {
    return Status::IoError("trace: failed writing '" + path + "'");
  }
  return Status::OK();
}

Span::Span(const char* name) : name_(name) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  active_ = true;
  start_us_ = NowUs();
  ThreadBuffer& buffer = LocalBuffer();
  const uint32_t depth = buffer.depth.load(std::memory_order_relaxed);
  if (depth < kMaxSpanDepth) {
    buffer.stack[depth].store(name_, std::memory_order_relaxed);
  }
  buffer.depth.store(depth + 1, std::memory_order_release);
}

Span::~Span() {
  if (!active_) return;
  const double end_us = NowUs();
  ThreadBuffer& buffer = LocalBuffer();
  const uint32_t depth = buffer.depth.load(std::memory_order_relaxed);
  if (depth > 0) {
    if (depth <= kMaxSpanDepth) {
      buffer.stack[depth - 1].store(nullptr, std::memory_order_relaxed);
    }
    buffer.depth.store(depth - 1, std::memory_order_release);
  }
  const size_t cap = g_max_events_per_thread.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (cap != 0 && buffer.events.size() >= cap) {
    g_dropped_events.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer.events.push_back(
      {name_, start_us_, end_us - start_us_, buffer.tid});
}

}  // namespace trace
}  // namespace multiclust

#endif  // MULTICLUST_TRACING
