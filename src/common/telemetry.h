#ifndef MULTICLUST_COMMON_TELEMETRY_H_
#define MULTICLUST_COMMON_TELEMETRY_H_

#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>

#include "common/status.h"

namespace multiclust {
namespace telemetry {

/// Schema version of the `multiclust.progress` NDJSON event stream.
inline constexpr int kProgressSchemaVersion = 1;

/// One live progress event. Events flow from `ConvergenceRecorder` (one
/// per recorded outer iteration) and from pipeline stage boundaries to the
/// installed ProgressSink while a run executes — unlike the report
/// artifact, which only exists after the run.
///
/// NaN-valued doubles and negative counters mean "not applicable" and are
/// omitted from the serialized form.
struct ProgressEvent {
  /// What is running: an algorithm site ("kmeans", "dec-kmeans", ...) or a
  /// pipeline stage ("pipeline.select_k", "pipeline.dedup", ...).
  std::string stage;
  /// Event kind within the stage: "start", "iteration", "end", or — on the
  /// terminal event of the whole run — "complete" / "error".
  std::string phase;
  int64_t restart = -1;    ///< 0-based restart; -1 = n/a
  int64_t iteration = -1;  ///< 0-based outer iteration; -1 = n/a
  /// Per-iteration objective; NaN = n/a.
  double objective = std::numeric_limits<double>::quiet_NaN();
  /// Per-iteration progress measure; NaN = n/a.
  double delta = std::numeric_limits<double>::quiet_NaN();
  /// Wall-clock budget left (BudgetTracker::RemainingMs); NaN = no deadline.
  double budget_remaining_ms = std::numeric_limits<double>::quiet_NaN();
  /// Estimated ms to stage completion, from iteration cadence; NaN = n/a.
  double eta_ms = std::numeric_limits<double>::quiet_NaN();
  /// True exactly once, on the final event of the whole run.
  bool terminal = false;
};

/// Receives progress events. Implementations must tolerate calls from
/// whatever thread runs the algorithm; the dispatcher serializes calls
/// under an internal mutex, so OnEvent itself never runs concurrently.
class ProgressSink {
 public:
  virtual ~ProgressSink() = default;
  virtual void OnEvent(const ProgressEvent& event) = 0;
};

#if defined(MULTICLUST_TRACING)

inline constexpr bool kTelemetryCompiledIn = true;

/// Installs `sink` (borrowed, not owned) as the process-wide progress
/// sink; nullptr uninstalls. Install before the run starts and uninstall
/// before destroying the sink.
void SetProgressSink(ProgressSink* sink);

/// True when a sink is installed — the cheap guard for any work done only
/// to build a ProgressEvent.
bool ProgressEnabled();

/// Dispatches `event` to the installed sink (no-op without one).
/// Serialized: at most one OnEvent runs at a time, so sinks need no
/// locking of their own.
void EmitProgress(const ProgressEvent& event);

/// Convenience: emit a minimal stage-boundary event (`phase` is "start",
/// "end" or "complete").
void EmitStage(const std::string& stage, const std::string& phase,
               bool terminal = false);

/// ProgressSink writing one `{"kind":"multiclust.progress",...}` JSON
/// object per line (NDJSON) to a stream. Stage-boundary and terminal
/// events are flushed immediately so a tailing consumer sees them live;
/// dense "iteration" bursts are batched and flushed at most every ~25 ms
/// (and on destruction), bounding the armed overhead to one write syscall
/// per window rather than one per iteration.
class NdjsonProgressSink : public ProgressSink {
 public:
  /// Writes to `out`; closes it on destruction when `take_ownership` (pass
  /// false for stdout/stderr).
  explicit NdjsonProgressSink(std::FILE* out, bool take_ownership = false);
  ~NdjsonProgressSink() override;

  void OnEvent(const ProgressEvent& event) override;

  /// Events written so far.
  uint64_t events_written() const { return events_written_; }

 private:
  static constexpr double kFlushIntervalMs = 25.0;

  std::FILE* out_;
  bool owned_;
  uint64_t events_written_ = 0;
  double last_flush_ms_ = -1e300;  // first event always flushes
};

/// Serializes one event to its NDJSON object form (no trailing newline).
/// `seq` and `elapsed_ms` are the stream position stamps; exposed for
/// tests and custom sinks.
std::string ProgressEventJson(const ProgressEvent& event, uint64_t seq,
                              double elapsed_ms);

// --- Periodic OpenMetrics export --------------------------------------------

struct MetricsExportOptions {
  std::string path;         ///< file to (re)write with OpenMetricsText()
  double period_ms = 500.0; ///< rewrite period of the background thread
};

/// Starts a background thread that rewrites `options.path` with
/// `metrics::OpenMetricsText()` every `period_ms` (write-temp-then-rename,
/// so a scraper never reads a torn file). Error when already running, the
/// path is empty, or the period is not positive.
Status StartMetricsExport(const MetricsExportOptions& options);

/// Stops the export thread and writes one final snapshot.
void StopMetricsExport();

bool MetricsExportRunning();

#else  // !MULTICLUST_TRACING — zero-cost stubs, no symbols in the library.

inline constexpr bool kTelemetryCompiledIn = false;

inline void SetProgressSink(ProgressSink*) {}
inline constexpr bool ProgressEnabled() { return false; }
inline void EmitProgress(const ProgressEvent&) {}
inline void EmitStage(const std::string&, const std::string&,
                      bool terminal = false) {
  (void)terminal;
}

class NdjsonProgressSink : public ProgressSink {
 public:
  explicit NdjsonProgressSink(std::FILE*, bool take_ownership = false) {
    (void)take_ownership;
  }
  void OnEvent(const ProgressEvent&) override {}
  uint64_t events_written() const { return 0; }
};

inline std::string ProgressEventJson(const ProgressEvent&, uint64_t,
                                     double) {
  return std::string();
}

struct MetricsExportOptions {
  std::string path;
  double period_ms = 500.0;
};

inline Status StartMetricsExport(const MetricsExportOptions&) {
  return Status::FailedPrecondition(
      "telemetry: compiled out (-DMULTICLUST_TRACING=OFF)");
}
inline void StopMetricsExport() {}
inline constexpr bool MetricsExportRunning() { return false; }

#endif  // MULTICLUST_TRACING

}  // namespace telemetry
}  // namespace multiclust

#endif  // MULTICLUST_COMMON_TELEMETRY_H_
