#include "common/strings.h"

#include <cstdlib>

namespace multiclust {

std::vector<std::string> SplitString(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string TrimString(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n'))
    --e;
  return s.substr(b, e - b);
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool ParseDouble(const std::string& s, double* out) {
  const std::string t = TrimString(s);
  if (t.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (end != t.c_str() + t.size()) return false;
  *out = v;
  return true;
}

}  // namespace multiclust
