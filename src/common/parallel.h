#ifndef MULTICLUST_COMMON_PARALLEL_H_
#define MULTICLUST_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace multiclust {

/// Logical cores reported by the OS (always >= 1).
size_t HardwareConcurrency();

/// Sets the worker count used by ParallelFor/ParallelReduce. `count == 0`
/// restores the default: the MULTICLUST_THREADS environment variable when
/// set to a positive integer, otherwise HardwareConcurrency(). `count == 1`
/// disables the pool entirely — every parallel call then runs inline on the
/// calling thread with zero pool overhead. Not thread-safe against
/// concurrent parallel calls; intended for startup / test configuration.
void SetThreadCount(size_t count);

/// The thread count currently in effect (>= 1).
size_t ThreadCount();

namespace internal {

/// Runs chunk_fn(0) .. chunk_fn(num_chunks - 1) to completion across the
/// pool; the calling thread participates. Blocks until every chunk has
/// finished and rethrows the first exception any chunk threw. Chunks may
/// execute in any order on any thread. Nested calls (from inside a chunk)
/// degrade to inline execution, so kernels may compose freely.
void RunChunks(size_t num_chunks, const std::function<void(size_t)>& chunk_fn);

/// Fixed chunk width for [begin, end): the explicit `grain`, or the range
/// split into at most 64 chunks when grain == 0. Never depends on the
/// thread count — this is what makes chunked reductions bit-identical
/// across pool sizes.
size_t ResolveGrain(size_t begin, size_t end, size_t grain);

}  // namespace internal

/// Applies body(chunk_begin, chunk_end) over disjoint chunks covering
/// [begin, end). The body must write only to locations indexed by its own
/// range (no shared accumulators) so the result is independent of chunk
/// boundaries; use ParallelReduce for accumulations. With one thread the
/// body is invoked once over the whole range.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body);

/// Deterministic chunked reduction over [begin, end): `map(lo, hi)` produces
/// one partial per fixed-width chunk, and partials are combined with
/// `combine(acc, partial)` in ascending chunk order on the calling thread.
/// Because the chunk boundaries are fixed by `grain` (never the pool size),
/// floating-point results are bit-identical for every thread count.
template <typename T, typename Map, typename Combine>
T ParallelReduce(size_t begin, size_t end, size_t grain, T init,
                 const Map& map, const Combine& combine) {
  if (end <= begin) return init;
  const size_t width = internal::ResolveGrain(begin, end, grain);
  const size_t num_chunks = (end - begin + width - 1) / width;
  std::vector<T> partial(num_chunks);
  internal::RunChunks(num_chunks, [&](size_t c) {
    const size_t lo = begin + c * width;
    const size_t hi = lo + width < end ? lo + width : end;
    partial[c] = map(lo, hi);
  });
  T acc = std::move(init);
  for (size_t c = 0; c < num_chunks; ++c) {
    acc = combine(std::move(acc), std::move(partial[c]));
  }
  return acc;
}

}  // namespace multiclust

#endif  // MULTICLUST_COMMON_PARALLEL_H_
