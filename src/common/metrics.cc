#include "common/metrics.h"

#if defined(MULTICLUST_TRACING)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <mutex>
#include <unordered_map>

#include "common/json.h"

namespace multiclust {
namespace metrics {

namespace {

// Lock striping: a metric name hashes to one of kShards independently
// locked maps, so registrations (and the one-time lookups behind the
// MC_METRIC_* macro statics) from pool threads do not serialise on a
// single registry mutex. Updates themselves never touch a shard lock —
// they are relaxed atomics on the already-resolved metric object.
constexpr size_t kShards = 16;

struct Shard {
  std::mutex mu;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms;
};

Shard* Shards() {
  static Shard* shards = new Shard[kShards];
  return shards;
}

Shard& ShardFor(const std::string& name) {
  return Shards()[std::hash<std::string>{}(name) % kShards];
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t b = 0; b <= bounds_.size(); ++b) counts_[b].store(0);
}

void Histogram::Observe(double v) {
  // First bound >= v: bounds are inclusive upper edges; values above the
  // last bound land in the implicit overflow bucket at bounds_.size().
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t b = 0; b <= bounds_.size(); ++b) {
    out[b] = counts_[b].load(std::memory_order_relaxed);
  }
  return out;
}

uint64_t Histogram::total_count() const {
  uint64_t total = 0;
  for (size_t b = 0; b <= bounds_.size(); ++b) {
    total += counts_[b].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Quantile(double q) const {
  return HistogramQuantile(bounds_, bucket_counts(), q);
}

void Histogram::Reset() {
  for (size_t b = 0; b <= bounds_.size(); ++b) {
    counts_[b].store(0, std::memory_order_relaxed);
  }
}

double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<uint64_t>& counts, double q) {
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  if (bounds.empty() || counts.size() != bounds.size() + 1) return kNan;
  uint64_t total = 0;
  for (const uint64_t c : counts) total += c;
  if (total == 0) return kNan;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (size_t b = 0; b < counts.size(); ++b) {
    const double prev = cum;
    cum += static_cast<double>(counts[b]);
    if (counts[b] == 0) continue;  // an empty bucket cannot hold the rank
    if (cum >= target) {
      if (b == counts.size() - 1) return bounds.back();  // overflow clamps
      const double lo = (b == 0) ? std::min(0.0, bounds[0]) : bounds[b - 1];
      const double hi = bounds[b];
      const double frac = std::clamp(
          (target - prev) / static_cast<double>(counts[b]), 0.0, 1.0);
      return lo + (hi - lo) * frac;
    }
  }
  return bounds.back();
}

Counter& GetCounter(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  std::unique_ptr<Counter>& slot = shard.counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& GetGauge(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  std::unique_ptr<Gauge>& slot = shard.gauges[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& GetHistogram(const std::string& name,
                        const std::vector<double>& bounds) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  std::unique_ptr<Histogram>& slot = shard.histograms[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

void Reset() {
  Shard* shards = Shards();
  for (size_t s = 0; s < kShards; ++s) {
    std::lock_guard<std::mutex> lock(shards[s].mu);
    for (auto& [name, c] : shards[s].counters) c->Reset();
    for (auto& [name, g] : shards[s].gauges) g->Reset();
    for (auto& [name, h] : shards[s].histograms) h->Reset();
  }
}

std::vector<MetricRow> Snapshot() {
  std::vector<MetricRow> rows;
  char buf[64];
  Shard* shards = Shards();
  for (size_t s = 0; s < kShards; ++s) {
    std::lock_guard<std::mutex> lock(shards[s].mu);
    for (const auto& [name, c] : shards[s].counters) {
      rows.push_back({name, "counter", std::to_string(c->value())});
    }
    for (const auto& [name, g] : shards[s].gauges) {
      std::snprintf(buf, sizeof(buf), "%g", g->value());
      rows.push_back({name, "gauge", buf});
    }
    for (const auto& [name, h] : shards[s].histograms) {
      std::string value = std::to_string(h->total_count()) + " obs [";
      const std::vector<uint64_t> counts = h->bucket_counts();
      for (size_t b = 0; b < counts.size(); ++b) {
        if (b > 0) value += ' ';
        value += std::to_string(counts[b]);
      }
      value += ']';
      rows.push_back({name, "histogram", std::move(value)});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const MetricRow& a, const MetricRow& b) {
              return a.name < b.name;
            });
  return rows;
}

std::string MetricsJson() {
  // Collect name-sorted entries first so the document is deterministic
  // regardless of shard hashing; serialize typed values (Snapshot() only
  // carries pre-rendered strings).
  struct Entry {
    std::string name;
    enum { kCounter, kGauge, kHistogram } kind;
    uint64_t count = 0;
    double gauge = 0.0;
    std::vector<double> bounds;
    std::vector<uint64_t> bucket_counts;
  };
  std::vector<Entry> entries;
  Shard* shards = Shards();
  for (size_t s = 0; s < kShards; ++s) {
    std::lock_guard<std::mutex> lock(shards[s].mu);
    for (const auto& [name, c] : shards[s].counters) {
      Entry e;
      e.name = name;
      e.kind = Entry::kCounter;
      e.count = c->value();
      entries.push_back(std::move(e));
    }
    for (const auto& [name, g] : shards[s].gauges) {
      Entry e;
      e.name = name;
      e.kind = Entry::kGauge;
      e.gauge = g->value();
      entries.push_back(std::move(e));
    }
    for (const auto& [name, h] : shards[s].histograms) {
      Entry e;
      e.name = name;
      e.kind = Entry::kHistogram;
      e.bounds = h->bounds();
      e.bucket_counts = h->bucket_counts();
      entries.push_back(std::move(e));
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });

  json::Writer w;
  w.BeginArray();
  for (const Entry& e : entries) {
    w.BeginObject();
    w.Key("name");
    w.String(e.name);
    switch (e.kind) {
      case Entry::kCounter:
        w.Key("kind");
        w.String("counter");
        w.Key("value");
        w.Uint(e.count);
        break;
      case Entry::kGauge:
        w.Key("kind");
        w.String("gauge");
        w.Key("value");
        w.Double(e.gauge);
        break;
      case Entry::kHistogram: {
        w.Key("kind");
        w.String("histogram");
        w.Key("bounds");
        w.BeginArray();
        for (const double b : e.bounds) w.Double(b);
        w.EndArray();
        w.Key("counts");
        w.BeginArray();
        uint64_t total = 0;
        for (const uint64_t c : e.bucket_counts) {
          w.Uint(c);
          total += c;
        }
        w.EndArray();
        w.Key("total");
        w.Uint(total);
        if (total > 0 && !e.bounds.empty()) {
          w.Key("p50");
          w.Double(HistogramQuantile(e.bounds, e.bucket_counts, 0.50));
          w.Key("p95");
          w.Double(HistogramQuantile(e.bounds, e.bucket_counts, 0.95));
          w.Key("p99");
          w.Double(HistogramQuantile(e.bounds, e.bucket_counts, 0.99));
        }
        break;
      }
    }
    w.EndObject();
  }
  w.EndArray();
  return std::move(w).str();
}

namespace {

// OpenMetrics metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Our dotted
// `<module>.<algo>.<event>` names map to `multiclust_<module>_<algo>_...`.
std::string OpenMetricsName(const std::string& name) {
  std::string out = "multiclust_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendOpenMetricsDouble(double v, std::string* out) {
  char buf[48];
  if (std::isnan(v)) {
    std::snprintf(buf, sizeof(buf), "NaN");
  } else if (std::isinf(v)) {
    std::snprintf(buf, sizeof(buf), v > 0 ? "+Inf" : "-Inf");
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  *out += buf;
}

}  // namespace

std::string OpenMetricsText() {
  // Reuse MetricsJson's collection shape: gather name-sorted typed entries
  // under the shard locks, then render.
  struct Entry {
    std::string name;
    enum { kCounter, kGauge, kHistogram } kind;
    uint64_t count = 0;
    double gauge = 0.0;
    std::vector<double> bounds;
    std::vector<uint64_t> bucket_counts;
  };
  std::vector<Entry> entries;
  Shard* shards = Shards();
  for (size_t s = 0; s < kShards; ++s) {
    std::lock_guard<std::mutex> lock(shards[s].mu);
    for (const auto& [name, c] : shards[s].counters) {
      Entry e;
      e.name = name;
      e.kind = Entry::kCounter;
      e.count = c->value();
      entries.push_back(std::move(e));
    }
    for (const auto& [name, g] : shards[s].gauges) {
      Entry e;
      e.name = name;
      e.kind = Entry::kGauge;
      e.gauge = g->value();
      entries.push_back(std::move(e));
    }
    for (const auto& [name, h] : shards[s].histograms) {
      Entry e;
      e.name = name;
      e.kind = Entry::kHistogram;
      e.bounds = h->bounds();
      e.bucket_counts = h->bucket_counts();
      entries.push_back(std::move(e));
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });

  std::string out;
  char buf[96];
  for (const Entry& e : entries) {
    const std::string name = OpenMetricsName(e.name);
    switch (e.kind) {
      case Entry::kCounter:
        out += "# TYPE " + name + " counter\n";
        std::snprintf(buf, sizeof(buf), "_total %llu\n",
                      static_cast<unsigned long long>(e.count));
        out += name + buf;
        break;
      case Entry::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " ";
        AppendOpenMetricsDouble(e.gauge, &out);
        out += '\n';
        break;
      case Entry::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        uint64_t cum = 0;
        for (size_t b = 0; b < e.bucket_counts.size(); ++b) {
          cum += e.bucket_counts[b];
          out += name + "_bucket{le=\"";
          if (b < e.bounds.size()) {
            AppendOpenMetricsDouble(e.bounds[b], &out);
          } else {
            out += "+Inf";
          }
          std::snprintf(buf, sizeof(buf), "\"} %llu\n",
                        static_cast<unsigned long long>(cum));
          out += buf;
        }
        std::snprintf(buf, sizeof(buf), "_count %llu\n",
                      static_cast<unsigned long long>(cum));
        out += name + buf;
        if (cum > 0 && !e.bounds.empty()) {
          const struct {
            const char* suffix;
            double q;
          } kQuantiles[] = {{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}};
          for (const auto& [suffix, q] : kQuantiles) {
            out += "# TYPE " + name + suffix + " gauge\n";
            out += name + suffix + " ";
            AppendOpenMetricsDouble(
                HistogramQuantile(e.bounds, e.bucket_counts, q), &out);
            out += '\n';
          }
        }
        break;
      }
    }
  }
  out += "# EOF\n";
  return out;
}

std::string SummaryString() {
  const std::vector<MetricRow> rows = Snapshot();
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-40s %-10s %s\n", "metric", "kind",
                "value");
  out += line;
  for (const MetricRow& row : rows) {
    std::snprintf(line, sizeof(line), "%-40s %-10s %s\n", row.name.c_str(),
                  row.kind.c_str(), row.value.c_str());
    out += line;
  }
  if (rows.empty()) out += "(no metrics registered)\n";
  return out;
}

}  // namespace metrics
}  // namespace multiclust

#endif  // MULTICLUST_TRACING
