#include "common/rng.h"

#include <cmath>

namespace multiclust {

namespace {

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t x) {
  uint64_t z = x + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
    sm += 0x9E3779B97F4A7C15ULL;
  }
  // Avoid the all-zero state (not reachable from SplitMix64, but be safe).
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

RngState Rng::SaveState() const {
  RngState s;
  for (int i = 0; i < 4; ++i) s.words[i] = state_[i];
  s.has_cached_gaussian = has_cached_gaussian_;
  s.cached_gaussian = cached_gaussian_;
  return s;
}

void Rng::RestoreState(const RngState& s) {
  for (int i = 0; i < 4; ++i) state_[i] = s.words[i];
  has_cached_gaussian_ = s.has_cached_gaussian;
  cached_gaussian_ = s.cached_gaussian;
}

uint64_t Rng::NextU64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextIndex(uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t x;
  do {
    x = NextU64();
  } while (x >= limit);
  return x % n;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0 ? w : 0);
  if (total <= 0.0) return 0;
  double x = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0 ? weights[i] : 0;
    if (x < w) return i;
    x -= w;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  for (size_t i = n; i > 1; --i) {
    const size_t j = NextIndex(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  if (k > n) k = n;
  std::vector<size_t> perm = Permutation(n);
  perm.resize(k);
  return perm;
}

Rng Rng::Split() { return Rng(NextU64()); }

}  // namespace multiclust
