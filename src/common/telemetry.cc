#include "common/telemetry.h"

#if defined(MULTICLUST_TRACING)

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <thread>

#include "common/json.h"
#include "common/metrics.h"

namespace multiclust {
namespace telemetry {

namespace {

struct ProgressState {
  std::mutex mu;  // serializes dispatch
};

ProgressState& GetProgressState() {
  static ProgressState* state = new ProgressState();
  return *state;
}

std::atomic<ProgressSink*> g_sink{nullptr};

// Milliseconds since the process progress epoch (first call).
double NowMs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

}  // namespace

void SetProgressSink(ProgressSink* sink) {
  // Take the dispatch lock so an in-flight OnEvent on the outgoing sink
  // finishes before SetProgressSink returns — after that the caller may
  // safely destroy it.
  ProgressState& state = GetProgressState();
  std::lock_guard<std::mutex> lock(state.mu);
  g_sink.store(sink, std::memory_order_release);
}

bool ProgressEnabled() {
  return g_sink.load(std::memory_order_acquire) != nullptr;
}

void EmitProgress(const ProgressEvent& event) {
  ProgressSink* sink = g_sink.load(std::memory_order_acquire);
  if (sink == nullptr) return;
  ProgressState& state = GetProgressState();
  std::lock_guard<std::mutex> lock(state.mu);
  sink = g_sink.load(std::memory_order_acquire);  // re-check under the lock
  if (sink == nullptr) return;
  sink->OnEvent(event);
}

void EmitStage(const std::string& stage, const std::string& phase,
               bool terminal) {
  if (!ProgressEnabled()) return;
  ProgressEvent event;
  event.stage = stage;
  event.phase = phase;
  event.terminal = terminal;
  EmitProgress(event);
}

std::string ProgressEventJson(const ProgressEvent& event, uint64_t seq,
                              double elapsed_ms) {
  json::Writer w;
  w.BeginObject();
  w.Key("kind");
  w.String("multiclust.progress");
  w.Key("schema_version");
  w.Int(kProgressSchemaVersion);
  w.Key("seq");
  w.Uint(seq);
  w.Key("elapsed_ms");
  w.Double(elapsed_ms);
  w.Key("stage");
  w.String(event.stage);
  w.Key("phase");
  w.String(event.phase);
  if (event.restart >= 0) {
    w.Key("restart");
    w.Int(event.restart);
  }
  if (event.iteration >= 0) {
    w.Key("iteration");
    w.Int(event.iteration);
  }
  if (!std::isnan(event.objective)) {
    w.Key("objective");
    w.Double(event.objective);
  }
  if (!std::isnan(event.delta)) {
    w.Key("delta");
    w.Double(event.delta);
  }
  if (!std::isnan(event.budget_remaining_ms)) {
    w.Key("budget_remaining_ms");
    w.Double(event.budget_remaining_ms);
  }
  if (!std::isnan(event.eta_ms)) {
    w.Key("eta_ms");
    w.Double(event.eta_ms);
  }
  if (event.terminal) {
    w.Key("terminal");
    w.Bool(true);
  }
  w.EndObject();
  return std::move(w).str();
}

NdjsonProgressSink::NdjsonProgressSink(std::FILE* out, bool take_ownership)
    : out_(out), owned_(take_ownership) {}

NdjsonProgressSink::~NdjsonProgressSink() {
  if (out_ == nullptr) return;
  if (owned_) {
    std::fclose(out_);  // flushes any batched iteration lines
  } else {
    std::fflush(out_);  // borrowed stream (stdout): deliver the tail
  }
}

void NdjsonProgressSink::OnEvent(const ProgressEvent& event) {
  if (out_ == nullptr) return;
  // seq restarts at 1 per sink, independent of the dispatcher's global
  // counter, so one stream is self-consistent even after sink swaps.
  const double now_ms = NowMs();
  const std::string line = ProgressEventJson(event, ++events_written_, now_ms);
  std::fwrite(line.data(), 1, line.size(), out_);
  std::fputc('\n', out_);
  // Flush policy: stage boundaries and terminal events flush immediately
  // (a tailing consumer must see them live); dense iteration bursts batch
  // inside a short window so the armed hot path pays one write syscall
  // per ~25 ms instead of one per iteration. fclose (or the next
  // boundary event) delivers whatever is buffered.
  if (event.terminal || event.phase != "iteration" ||
      now_ms - last_flush_ms_ >= kFlushIntervalMs) {
    std::fflush(out_);
    last_flush_ms_ = now_ms;
  }
}

// --- Periodic OpenMetrics export --------------------------------------------

namespace {

struct ExportState {
  std::mutex mu;
  std::thread thread;
  std::atomic<bool> running{false};
  std::atomic<bool> stop{false};
  std::string path;
};

ExportState& GetExportState() {
  static ExportState* state = new ExportState();
  return *state;
}

// Write-temp-then-rename so a scraper never observes a torn exposition.
void WriteMetricsSnapshot(const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::out | std::ios::trunc);
    if (!file.is_open()) return;
    file << metrics::OpenMetricsText();
    file.flush();
    if (!file.good()) return;
  }
  std::rename(tmp.c_str(), path.c_str());
}

void ExportLoop(double period_ms) {
  ExportState& state = GetExportState();
  const auto period = std::chrono::duration<double, std::milli>(period_ms);
  while (!state.stop.load(std::memory_order_acquire)) {
    WriteMetricsSnapshot(state.path);
    std::this_thread::sleep_for(period);
  }
}

}  // namespace

Status StartMetricsExport(const MetricsExportOptions& options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("metrics export: empty path");
  }
  if (!(options.period_ms > 0.0)) {
    return Status::InvalidArgument(
        "metrics export: period_ms must be positive");
  }
  ExportState& state = GetExportState();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.running.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("metrics export: already running");
  }
  state.path = options.path;
  state.stop.store(false, std::memory_order_release);
  state.thread = std::thread(ExportLoop, options.period_ms);
  state.running.store(true, std::memory_order_release);
  return Status::OK();
}

void StopMetricsExport() {
  ExportState& state = GetExportState();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.running.load(std::memory_order_acquire)) return;
  state.stop.store(true, std::memory_order_release);
  state.thread.join();
  state.running.store(false, std::memory_order_release);
  WriteMetricsSnapshot(state.path);  // final snapshot: the run's end state
}

bool MetricsExportRunning() {
  return GetExportState().running.load(std::memory_order_acquire);
}

}  // namespace telemetry
}  // namespace multiclust

#endif  // MULTICLUST_TRACING
