#ifndef MULTICLUST_COMMON_RUNGUARD_H_
#define MULTICLUST_COMMON_RUNGUARD_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/profile.h"
#include "common/result.h"
#include "common/status.h"

namespace multiclust {

class Checkpointer;
class Matrix;

/// Cooperative cancellation flag shared between a caller (e.g. a request
/// handler whose client disconnected) and a running algorithm. Algorithms
/// poll the token once per outer iteration and return
/// StatusCode::kCancelled when it is set. Thread-safe.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Resource limits for one algorithm invocation. A default-constructed
/// budget is unlimited, so existing call sites behave exactly as before.
///
/// Semantics, shared by every iterative algorithm:
///  - `deadline_ms` caps the wall-clock time of the whole call (all
///    restarts together). When it expires the algorithm stops at the next
///    outer-iteration check and returns its best result so far with
///    `converged = false` — a partial result, not an error.
///  - `max_iterations` caps the *outer* iterations of each optimisation
///    loop (per restart), on top of the algorithm's own `max_iters`.
///  - `cancel` aborts the run with StatusCode::kCancelled (no result).
///  - `checkpoint` arms crash-consistent snapshots (common/checkpoint.h):
///    the algorithm restores from the newest valid checkpoint at entry and
///    persists at policy-selected outer-iteration boundaries. The
///    checkpointer is deliberately NOT forwarded by
///    `BudgetTracker::Remaining()` — nested algorithms sharing the parent's
///    slot would corrupt each other's files — composites that want nested
///    checkpoints re-attach it explicitly under their own naming.
struct RunBudget {
  double deadline_ms = 0.0;   ///< wall-clock limit; 0 = none
  size_t max_iterations = 0;  ///< outer-iteration cap; 0 = none
  const CancelToken* cancel = nullptr;
  Checkpointer* checkpoint = nullptr;  ///< snapshot channel; null = disarmed

  bool unlimited() const {
    return deadline_ms <= 0.0 && max_iterations == 0 && cancel == nullptr &&
           checkpoint == nullptr;
  }

  static RunBudget Unlimited() { return {}; }
  static RunBudget Deadline(double ms) {
    RunBudget b;
    b.deadline_ms = ms;
    return b;
  }
  static RunBudget MaxIterations(size_t n) {
    RunBudget b;
    b.max_iterations = n;
    return b;
  }
};

/// Why an iterative run stopped.
enum class StopReason {
  kConverged,      ///< the algorithm's own convergence criterion was met
  kMaxIterations,  ///< an iteration cap (algorithm's or budget's) hit
  kDeadline,       ///< the wall-clock deadline expired (or was injected)
  kCancelled,      ///< the cancel token was set
};

const char* StopReasonToString(StopReason reason);

/// One sample of an iterative algorithm's convergence telemetry: the state
/// at the end of one outer iteration of one restart.
struct ConvergencePoint {
  size_t restart = 0;    ///< 0-based restart that produced this point
  size_t iteration = 0;  ///< 0-based outer iteration within the restart
  /// The algorithm's own per-iteration objective (SSE, log-likelihood,
  /// combined objective G, merge distance, projected energy, ...).
  double objective = 0.0;
  /// Per-iteration progress measure: max centre shift for k-means,
  /// absolute objective change for the others.
  double delta = 0.0;
  /// Degeneracy recoveries this iteration (empty-cluster reseeds, dead
  /// mixture components, dropped empty groups).
  size_t reseeds = 0;
  /// Wall-clock budget left when the point was recorded; -1 when the run
  /// has no deadline. Wall-clock-dependent, so excluded from determinism
  /// comparisons — every other field is bit-reproducible for a fixed seed.
  double budget_remaining_ms = -1.0;
};

/// Per-outer-iteration convergence telemetry of one algorithm invocation,
/// across all restarts. Filled whenever the caller hands the algorithm a
/// RunDiagnostics sink (`options.diagnostics`); recording is skipped
/// entirely — including any objective evaluation done only for telemetry —
/// when no sink is attached, so the hot loops pay nothing by default.
struct ConvergenceTrace {
  std::vector<ConvergencePoint> points;
  /// Restart whose result the algorithm returned.
  size_t winning_restart = 0;

  bool empty() const { return points.empty(); }
  std::string ToString() const;
};

/// Per-run execution diagnostics: what happened, how long it took, and how
/// it recovered. Collected per solution / per strategy attempt by the
/// discovery pipeline (`DiscoveryReport`), or directly by handing an
/// algorithm `options.diagnostics`.
struct RunDiagnostics {
  std::string algorithm;
  size_t iterations = 0;
  bool converged = false;
  StopReason stop_reason = StopReason::kConverged;
  size_t retries = 0;
  double elapsed_ms = 0.0;
  /// Human-readable failure/recovery explanation (empty when clean).
  std::string note;
  /// Per-outer-iteration convergence telemetry (see ConvergenceTrace).
  ConvergenceTrace trace;
  /// Non-fatal events, each prefixed with the algorithm that produced it
  /// ("kmeans: ...") so composite runs (spectral→kmeans, mSC→views,
  /// meta→bases) stay attributable. Append via AddWarning.
  std::vector<std::string> warnings;
  /// What the run cost (filled by ConvergenceRecorder::Finish; all-zero
  /// with `captured == false` when profiling is compiled out). Wall-clock
  /// dependent, so excluded from determinism comparisons like
  /// `budget_remaining_ms`.
  telemetry::ResourceProfile resource;

  std::string ToString() const;
};

/// Appends "<algorithm>: <message>" to diagnostics->warnings (no-op on a
/// null sink). The single entry point for warning accumulation, so inner
/// algorithms of a composite are always named.
void AddWarning(RunDiagnostics* diagnostics, const char* algorithm,
                const std::string& message);

/// Budget enforcement for one algorithm invocation: captures the start
/// time at construction and answers per-iteration "should I stop?" /
/// "was I cancelled?" queries. Constructed once at algorithm entry so all
/// restarts share one wall clock. `site` names the algorithm for the
/// fault injector (kExpireDeadline faults target it).
class BudgetTracker {
 public:
  BudgetTracker(const RunBudget& budget, const char* site);

  /// True when the loop must stop before running 0-based `iteration`:
  /// the budget's iteration cap is reached, or the deadline (real or
  /// fault-injected) has expired. Never true for an unlimited budget with
  /// no armed faults.
  bool ShouldStop(size_t iteration);

  /// True when the wall-clock deadline has expired (checked between
  /// restarts: started restarts finish their iteration, later ones are
  /// skipped). Does not consult the iteration cap.
  bool DeadlineExpired();

  /// True when the cancel token is set.
  bool Cancelled() const {
    return budget_.cancel != nullptr && budget_.cancel->cancelled();
  }

  /// The status an algorithm returns when Cancelled().
  Status CancelledStatus() const;

  /// Remaining budget to forward to a sub-algorithm (e.g. spectral
  /// clustering handing its leftover deadline to embedded k-means). An
  /// already-expired deadline becomes a minimal positive one so the
  /// sub-call stops at its first check.
  RunBudget Remaining() const;

  StopReason reason() const { return reason_; }
  double ElapsedMs() const;
  /// Wall-clock budget left, or -1 when no deadline is armed. Never
  /// negative with a deadline: an expired budget reports 0.
  double RemainingMs() const;
  const char* site() const { return site_; }

 private:
  RunBudget budget_;
  const char* site_;
  std::chrono::steady_clock::time_point start_;
  StopReason reason_ = StopReason::kConverged;
};

/// Fills a RunDiagnostics sink with per-iteration convergence telemetry.
/// Algorithms construct one next to their BudgetTracker and call Record
/// once per outer iteration; every call is a no-op when the caller did not
/// ask for diagnostics, so guarding telemetry-only objective computations
/// behind `enabled()` keeps the default path free of overhead.
class ConvergenceRecorder {
 public:
  ConvergenceRecorder(RunDiagnostics* diagnostics, const BudgetTracker* guard)
      : diag_(diagnostics), guard_(guard) {}

  /// True when a sink is attached (record-only work may run).
  bool enabled() const { return diag_ != nullptr; }

  /// Appends one ConvergencePoint (budget_remaining_ms is read from the
  /// guard at call time) and, when a telemetry::ProgressSink is installed,
  /// streams the point as a `multiclust.progress` "iteration" event with
  /// an ETA extrapolated from the iteration cadence so far.
  void Record(size_t restart, size_t iteration, double objective,
              double delta, size_t reseeds);

  /// Tells the progress stream how many outer iterations one restart runs
  /// at most (the algorithm's max_iters after budget capping); 0 disables
  /// the ETA estimate. Call once at algorithm entry.
  void SetExpectedIterations(size_t iterations) {
    expected_iterations_ = iterations;
  }

  /// Notes which restart's result the algorithm returned.
  void SetWinner(size_t restart) {
    if (diag_ != nullptr) diag_->trace.winning_restart = restart;
  }

  /// Fills the scalar fields once the run is over. stop_reason is derived:
  /// converged wins, then whatever budget limit the guard tripped, then
  /// the algorithm's own iteration cap. Also snapshots the run's
  /// ResourceProfile (measured since recorder construction) and emits the
  /// stage's "end" progress event.
  void Finish(const char* algorithm, size_t iterations, bool converged);

 private:
  RunDiagnostics* diag_;
  const BudgetTracker* guard_;
  size_t expected_iterations_ = 0;
  /// Resource window of the whole invocation (a no-op object when
  /// profiling is compiled out).
  telemetry::ResourceScope resource_scope_;
};

/// Rejects matrices containing NaN or Inf entries with
/// StatusCode::kInvalidArgument naming the first offending (row, column).
/// Called at every public `Run*` entry point so numerical poison is caught
/// at the boundary instead of surfacing as a hung loop or garbage labels.
Status ValidateMatrix(const char* context, const Matrix& m);

/// ValidateMatrix plus rejection of empty (0x0 / 0-row / 0-col) matrices.
Status ValidateNonEmptyMatrix(const char* context, const Matrix& m);

/// Deterministic retry policy: a run that fails with
/// StatusCode::kComputationError (numerical degeneracy, no convergence,
/// singular matrix) is re-run up to `max_retries` times with a seed
/// derived from the original via SplitMix64 — bit-reproducible across
/// processes and platforms. Other status codes (invalid argument,
/// cancellation, IO) are never retried.
struct RetryPolicy {
  size_t max_retries = 0;

  bool ShouldRetry(const Status& status, size_t retries_done) const {
    return retries_done < max_retries &&
           status.code() == StatusCode::kComputationError;
  }
};

/// The seed used for retry `attempt` (1-based) of a run originally seeded
/// with `base_seed`. attempt 0 is the original seed itself.
uint64_t RetrySeed(uint64_t base_seed, size_t attempt);

/// Runs `fn(seed)` (returning Status or Result<T>), retrying per `policy`
/// with RetrySeed-derived seeds. Records the number of retries (and the
/// final error, if any) into `diagnostics` when given.
template <typename Fn>
auto RunWithRetry(const RetryPolicy& policy, uint64_t base_seed, Fn&& fn,
                  RunDiagnostics* diagnostics = nullptr)
    -> decltype(fn(base_seed)) {
  auto result = fn(base_seed);
  size_t retries = 0;
  while (!result.ok() && policy.ShouldRetry(result.status(), retries)) {
    ++retries;
    result = fn(RetrySeed(base_seed, retries));
  }
  if (diagnostics != nullptr) {
    diagnostics->retries = retries;
    if (!result.ok()) diagnostics->note = result.status().ToString();
  }
  return result;
}

}  // namespace multiclust

#endif  // MULTICLUST_COMMON_RUNGUARD_H_
