#ifndef MULTICLUST_COMMON_CHAOS_H_
#define MULTICLUST_COMMON_CHAOS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/fault.h"
#include "common/result.h"
#include "common/status.h"

namespace multiclust {

/// Chaos campaign engine (see DESIGN.md "Fault model v2 & chaos testing").
///
/// The subsystem generates seeded randomized fault schedules — compositions
/// of the FaultKind taxonomy across all algorithm sites, iterations and the
/// checkpoint I/O boundary — executes them against the 8 iterative
/// algorithms and the discovery pipeline (including kill→resume cycles
/// through the Checkpointer), and checks a fixed invariant set after every
/// run. A violated run is shrunk by delta debugging over its fault list to
/// a 1-minimal reproduction, printable as a re-runnable `--schedule=JSON`
/// for `tools/chaos_runner`.
///
/// Everything here is deterministic: the same seed always produces the same
/// schedule, the same execution and the same verdict. With
/// MULTICLUST_FAULT_INJECTION compiled out the engine is stubbed —
/// RunSchedule/RunCampaign report kUnimplemented.
namespace chaos {

inline constexpr int kScheduleSchemaVersion = 1;
inline constexpr const char kScheduleKind[] = "multiclust.chaos_schedule";

/// One chaos run: a workload driven under a fault schedule.
struct RunConfig {
  /// One of WorkloadNames(): the 8 iterative algorithms or "pipeline".
  std::string workload = "kmeans";
  /// Data/algorithm seed for the workload (not the schedule-generator
  /// seed; GenerateConfig derives both from its own seed).
  uint64_t seed = 1;
  std::vector<FaultSpec> schedule;
  /// Checkpoint rotation depth for the run's Checkpointer.
  size_t keep_last = 2;
  /// Attach a Checkpointer (in a private temp directory unless
  /// `checkpoint_dir` is set). Required for kCrash / I/O-fault schedules.
  bool with_checkpoint = true;
  /// Optional fixed checkpoint directory (kept afterwards); empty uses a
  /// per-run temp directory that is removed when the run finishes.
  std::string checkpoint_dir;
  /// Smaller workload datasets (CI-speed soaks). Serialized with the
  /// schedule so a replayed repro uses the exact data the soak used.
  bool quick = false;
};

/// The drivable workloads, in canonical order: "kmeans", "gmm", "spectral",
/// "dec-kmeans", "coala", "co-em", "orclus", "proclus", "pipeline".
const std::vector<std::string>& WorkloadNames();

/// One violated invariant, with enough detail to diagnose without rerunning.
struct Violation {
  std::string invariant;  ///< "status-consistency", "baseline-equivalence",
                          ///< "checkpoint-survivor", "budget-honored",
                          ///< "report-schema", "crash-resume"
  std::string detail;
};

/// Everything observed from one schedule execution.
struct RunOutcome {
  Status status;                 ///< final status after any resume cycles
  bool produced_result = false;  ///< a result object came back
  uint64_t digest = 0;           ///< FNV over labels + objective bit patterns
  uint64_t baseline_digest = 0;  ///< same workload, no faults, no checkpoint
  size_t iterations = 0;         ///< outer iterations of the final result
  size_t resume_cycles = 0;      ///< kAborted → fresh-Checkpointer resumes
  size_t snapshots_written = 0;  ///< across all attempts
  size_t fault_fires = 0;        ///< fault::TotalFires() at run end
  std::vector<Violation> violations;  ///< empty = all invariants held
};

/// Executes `config`: arms the schedule, runs the workload (resuming from
/// the checkpoint directory after every injected crash), disarms, and
/// checks the invariants. Only infrastructure failures (e.g. no usable
/// temp directory) surface as errors — a *workload* failure is data in the
/// returned outcome, judged by the invariants.
Result<RunOutcome> RunSchedule(const RunConfig& config);

/// Serializes `config` as a standalone re-runnable schedule document
/// (kind "multiclust.chaos_schedule"); inverse of ParseRunConfigJson.
std::string RunConfigToJson(const RunConfig& config);
Result<RunConfig> ParseRunConfigJson(std::string_view text);

/// Shrinks `config.schedule` to a 1-minimal failing sub-schedule: greedy
/// delta debugging, repeatedly dropping any single fault whose removal
/// keeps `still_fails` true, to a fixpoint (no single fault can be removed
/// without losing the violation). `still_fails` receives the candidate
/// config; the overload without a predicate re-executes RunSchedule and
/// tests for any violation.
std::vector<FaultSpec> ShrinkSchedule(
    const RunConfig& config,
    const std::function<bool(const RunConfig&)>& still_fails);
std::vector<FaultSpec> ShrinkSchedule(const RunConfig& config);

/// Deterministic schedule generator: `seed` fully determines the workload
/// choice, fault count, sites, kinds, iterations, fire caps, probabilistic
/// coins and rotation depth. Crash schedules combine kCrash only with
/// result-neutral I/O faults so the resumed result remains comparable to
/// the clean baseline. `workloads` restricts the choice (empty = all);
/// `quick` shrinks the workload datasets for CI-speed soaks.
RunConfig GenerateConfig(uint64_t seed, bool quick = false,
                         const std::vector<std::string>& workloads = {});

struct CampaignOptions {
  uint64_t base_seed = 1;
  size_t num_seeds = 50;
  bool quick = false;
  /// Restrict generated schedules to these workloads (empty = all).
  std::vector<std::string> workloads;
  /// Shrink every violated schedule to its minimal reproduction (on by
  /// default; costs extra runs only when something is already broken).
  bool shrink = true;
};

/// One failing run: the original config, the shrunk minimal schedule and
/// the violations the *minimal* schedule reproduces.
struct ViolationReport {
  RunConfig config;
  std::vector<FaultSpec> minimal;
  std::vector<Violation> violations;
};

struct CampaignResult {
  size_t runs = 0;
  size_t total_fault_fires = 0;
  std::vector<ViolationReport> failures;
};

/// Runs GenerateConfig(base_seed + i) for i in [0, num_seeds), collecting
/// every invariant violation (shrunk when options.shrink). `progress`, when
/// set, is called after every run with (completed, total).
CampaignResult RunCampaign(
    const CampaignOptions& options,
    const std::function<void(size_t, size_t)>& progress = nullptr);

}  // namespace chaos
}  // namespace multiclust

#endif  // MULTICLUST_COMMON_CHAOS_H_
