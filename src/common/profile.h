#ifndef MULTICLUST_COMMON_PROFILE_H_
#define MULTICLUST_COMMON_PROFILE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace multiclust {
namespace telemetry {

/// Per-run resource accounting: what one invocation (an algorithm run, a
/// strategy attempt, a whole discovery call) cost the process. All fields
/// are deltas between the scope's begin and end, except `peak_rss_kb`,
/// which is the process high-water mark at scope end (rusage cannot give a
/// windowed peak).
///
/// The struct itself is always defined (it rides on RunDiagnostics and the
/// DiscoveryReport, which exist in every build); the *capture* machinery
/// below compiles out under -DMULTICLUST_TRACING=OFF, leaving every field
/// zero. A profile with `captured == false` serializes as an absent
/// "resource" member in report JSON.
struct ResourceProfile {
  bool captured = false;
  double wall_ms = 0.0;        ///< wall-clock time of the scope
  double user_cpu_ms = 0.0;    ///< ru_utime delta
  double system_cpu_ms = 0.0;  ///< ru_stime delta
  uint64_t peak_rss_kb = 0;    ///< ru_maxrss at scope end (process-wide)
  uint64_t minor_faults = 0;   ///< ru_minflt delta
  uint64_t major_faults = 0;   ///< ru_majflt delta
  uint64_t alloc_count = 0;    ///< Matrix/Dataset storage allocations
  uint64_t alloc_bytes = 0;    ///< bytes requested by those allocations
  uint64_t flops = 0;          ///< kernel-layer floating-point ops (est.)
  uint64_t kernel_bytes = 0;   ///< kernel-layer bytes touched (est.)

  std::string ToString() const;
};

#if defined(MULTICLUST_TRACING)

inline constexpr bool kProfileCompiledIn = true;

namespace internal {
/// Process-wide allocation / kernel-work tallies. Relaxed atomics: totals
/// are exact, ordering is irrelevant. Exposed so the hot-path hooks below
/// inline to a single fetch_add.
extern std::atomic<uint64_t> g_alloc_count;
extern std::atomic<uint64_t> g_alloc_bytes;
extern std::atomic<uint64_t> g_flops;
extern std::atomic<uint64_t> g_kernel_bytes;
}  // namespace internal

/// Allocation hook, called from the Matrix/Dataset storage growth sites.
/// One relaxed add per allocation; compiles out to nothing under
/// -DMULTICLUST_TRACING=OFF.
inline void CountAlloc(uint64_t bytes) {
  internal::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  internal::g_alloc_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

/// Kernel-work hook. Call at chunk granularity (one add per ParallelFor
/// chunk or per GEMM call), never inside an inner loop.
inline void CountFlops(uint64_t flops, uint64_t bytes) {
  internal::g_flops.fetch_add(flops, std::memory_order_relaxed);
  internal::g_kernel_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

/// Captures resource deltas between construction and Finish(). Cheap to
/// construct (one getrusage + four relaxed loads); safe to nest — each
/// scope measures its own window of the shared process counters.
class ResourceScope {
 public:
  ResourceScope();

  /// The deltas since construction. Can be called repeatedly; each call
  /// re-reads the counters (the scope keeps accumulating).
  ResourceProfile Snapshot() const;

 private:
  double start_wall_us_ = 0.0;
  double start_user_us_ = 0.0;
  double start_sys_us_ = 0.0;
  uint64_t start_minflt_ = 0;
  uint64_t start_majflt_ = 0;
  uint64_t start_alloc_count_ = 0;
  uint64_t start_alloc_bytes_ = 0;
  uint64_t start_flops_ = 0;
  uint64_t start_kernel_bytes_ = 0;
};

// --- Timer-based sampling profiler -----------------------------------------
//
// A background thread wakes every `interval_ms` and records, for every
// thread that has ever opened a trace span, the stack of spans currently
// open on it (trace::SnapshotOpenSpans). No libunwind, no signals: the
// "stack" is the tracer's own span nesting, so samples attribute to the
// innermost open span and aggregate into collapsed-stack lines that
// flamegraph.pl / speedscope consume directly.
//
// The tracer must be enabled (trace::Enable) while sampling — span stacks
// are only maintained on the enabled path.

struct SamplerOptions {
  double interval_ms = 2.0;  ///< sampling period of the background thread
};

/// Starts the sampler thread. Error when already running or the interval
/// is not positive. Samples accumulate until ResetSamples().
Status StartSampler(const SamplerOptions& options = {});

/// Stops the sampler thread (joins it). Sample data is kept for export.
void StopSampler();

bool SamplerRunning();

/// Drops all accumulated samples.
void ResetSamples();

/// Total samples taken (one per registered thread per tick).
size_t SampleCount();

/// Collapsed-stack export: one line per distinct span stack,
/// "outer;inner <count>", sorted by stack name. Threads with no open span
/// at sample time appear as "(no span)". Feed to flamegraph.pl:
///   flamegraph.pl collapsed.txt > flame.svg
std::string CollapsedStacks();

/// Per-span sample aggregates. `self` counts samples where the span was
/// innermost; `total` counts samples where it was anywhere on the stack
/// (once per sample, even for recursive nests).
struct SampleStats {
  std::string name;
  size_t self = 0;
  size_t total = 0;
};

/// Sorted by descending self count, then name; includes "(no span)".
std::vector<SampleStats> SamplerTable();

/// Human-readable self/total table of SamplerTable().
std::string SamplerTableString();

#else  // !MULTICLUST_TRACING — zero-cost stubs, no symbols in the library.

inline constexpr bool kProfileCompiledIn = false;

inline void CountAlloc(uint64_t) {}
inline void CountFlops(uint64_t, uint64_t) {}

class ResourceScope {
 public:
  ResourceScope() {}
  ResourceProfile Snapshot() const { return {}; }
};

struct SamplerOptions {
  double interval_ms = 2.0;
};

inline Status StartSampler(const SamplerOptions& = {}) {
  return Status::FailedPrecondition(
      "sampler: compiled out (-DMULTICLUST_TRACING=OFF)");
}
inline void StopSampler() {}
inline constexpr bool SamplerRunning() { return false; }
inline void ResetSamples() {}
inline constexpr size_t SampleCount() { return 0; }
inline std::string CollapsedStacks() { return std::string(); }

struct SampleStats {
  std::string name;
  size_t self = 0;
  size_t total = 0;
};

inline std::vector<SampleStats> SamplerTable() { return {}; }
inline std::string SamplerTableString() {
  return "sampler: compiled out (-DMULTICLUST_TRACING=OFF)\n";
}

inline std::string ResourceProfile::ToString() const {
  return "(resource profiling compiled out: -DMULTICLUST_TRACING=OFF)\n";
}

#endif  // MULTICLUST_TRACING

}  // namespace telemetry
}  // namespace multiclust

#endif  // MULTICLUST_COMMON_PROFILE_H_
