#ifndef MULTICLUST_COMMON_FAULT_H_
#define MULTICLUST_COMMON_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace multiclust {

/// Kinds of faults the injector can simulate inside iterative loops and at
/// the checkpoint I/O boundary.
enum class FaultKind {
  kInjectNaN,            ///< poison a numeric value with quiet NaN
  kForceNonConvergence,  ///< suppress an algorithm's convergence test
  kExpireDeadline,       ///< make the run budget report an expired deadline
  kCrash,                ///< simulated process death at a persistence point:
                         ///< the checkpointer force-snapshots, then the run
                         ///< returns kAborted (snapshot-then-abort)
  // --- I/O faults, fired at site "checkpoint" with iteration = the
  // Checkpointer's 0-based write index. The first four are *reported*
  // failures (the write call returns kIoError and the run degrades to a
  // warning); the torn write is *silent* (the call reports success but only
  // a prefix reaches the disk) — the model for a non-POSIX-atomic
  // filesystem tearing a sector, catchable only by read-back verification
  // or the restore-time CRC.
  kIoWriteFail,        ///< write() fails outright; temp file removed
  kIoShortWrite,       ///< ENOSPC-style: a prefix hits the disk, then error;
                       ///< the half-written temp file is left behind
  kIoFsyncFail,        ///< fsync(file) fails after a complete write
  kIoRenameFail,       ///< rename(temp, final) fails
  kIoTornWrite,        ///< SILENT: only a prefix persists, success reported
  kCheckpointCorrupt,  ///< post-write bit rot: one byte of the final file is
                       ///< flipped after all success paths ran; only the
                       ///< restore-time CRC sees it
  kAllocFail,          ///< simulated allocation failure at a Matrix/model
                       ///< growth site inside an algorithm loop; degrades to
                       ///< kComputationError (restart/retry/fallback paths)
};

/// Short stable identifier for `kind` ("inject_nan", "io_torn_write", ...),
/// used by chaos schedules; inverse of ParseFaultKind.
const char* FaultKindName(FaultKind kind);

/// Parses a FaultKindName() string. Returns false on unknown names.
bool ParseFaultKind(std::string_view name, FaultKind* out);

/// One armed fault. It fires at the named `site` (e.g. "kmeans", "gmm",
/// "dec-kmeans", "checkpoint") once the outer iteration counter reaches
/// `at_iteration`, at most `max_fires` times in total (0 = unlimited).
///
/// With `probability < 1.0` each otherwise-eligible check additionally
/// draws from a private SplitMix64 stream seeded with `seed` and fires only
/// when the draw lands below `probability`. The stream position advances
/// once per eligible check, so re-running the same workload with the same
/// armed spec replays the exact firing pattern — probabilistic faults stay
/// bit-reproducible per seed.
struct FaultSpec {
  std::string site;
  FaultKind kind = FaultKind::kInjectNaN;
  size_t at_iteration = 0;
  size_t max_fires = 0;
  double probability = 1.0;  ///< < 1.0 enables the seeded coin flip
  uint64_t seed = 0;         ///< SplitMix64 stream seed for the coin flips
};

/// Deterministic fault injector. The hooks are compiled into the library
/// only when MULTICLUST_FAULT_INJECTION is defined (a CMake option, ON by
/// default so the test suite can exercise recovery paths); without it every
/// call site reduces to a constant `false` and the whole subsystem costs
/// nothing. With injection compiled in but nothing armed, the per-iteration
/// cost is one relaxed atomic load.
///
/// Concurrency contract (see fault_injection_test.cc, ArmRaceHygiene):
/// Arm(), Reset(), ShouldFire() and TotalFires() are individually
/// thread-safe and may race freely. An Arm() concurrent with a running
/// algorithm becomes visible to that algorithm at its *next* hook check —
/// never mid-check and never partially (the registry append happens under
/// the same mutex every slow-path check takes). A Reset() concurrent with a
/// check either sees the fault (and the fire counts toward the pre-Reset
/// total) or does not; a check can never observe a half-cleared registry.
/// There is no ordering between two hook checks on different threads: a
/// fault with max_fires = 1 fires on exactly one of them.
namespace fault {

#if defined(MULTICLUST_FAULT_INJECTION)

/// Arms `spec` (appends to the active set). Thread-safe.
void Arm(const FaultSpec& spec);

/// Clears all armed faults and fire counters.
void Reset();

/// True when an armed fault matches (site, kind) and covers `iteration`;
/// each true return consumes one of the fault's `max_fires`.
bool ShouldFire(const char* site, FaultKind kind, size_t iteration);

/// Number of times any fault fired since the last Reset().
size_t TotalFires();

/// Number of fires attributed to faults armed at `site` since the last
/// Reset() — lets campaign assertions pinpoint the firing site.
size_t TotalFires(const char* site);

#else

inline void Arm(const FaultSpec&) {}
inline void Reset() {}
inline constexpr bool ShouldFire(const char*, FaultKind, size_t) {
  return false;
}
inline constexpr size_t TotalFires() { return 0; }
inline constexpr size_t TotalFires(const char*) { return 0; }

#endif  // MULTICLUST_FAULT_INJECTION

}  // namespace fault
}  // namespace multiclust

/// Hot-loop hook. Usage:
///   if (MC_FAULT_FIRES("kmeans", FaultKind::kInjectNaN, iter)) { ... }
/// Expands to a compile-time `false` when fault injection is disabled, so
/// the branch (and anything guarded by it) is eliminated entirely.
#if defined(MULTICLUST_FAULT_INJECTION)
#define MC_FAULT_FIRES(site, kind, iter) \
  (::multiclust::fault::ShouldFire((site), (kind), (iter)))
#else
#define MC_FAULT_FIRES(site, kind, iter) (false)
#endif

#endif  // MULTICLUST_COMMON_FAULT_H_
