#ifndef MULTICLUST_COMMON_FAULT_H_
#define MULTICLUST_COMMON_FAULT_H_

#include <cstddef>
#include <string>

namespace multiclust {

/// Kinds of faults the injector can simulate inside iterative loops.
enum class FaultKind {
  kInjectNaN,            ///< poison a numeric value with quiet NaN
  kForceNonConvergence,  ///< suppress an algorithm's convergence test
  kExpireDeadline,       ///< make the run budget report an expired deadline
  kCrash,                ///< simulated process death at a persistence point:
                         ///< the checkpointer force-snapshots, then the run
                         ///< returns kAborted (snapshot-then-abort)
};

/// One armed fault. It fires at the named `site` (e.g. "kmeans", "gmm",
/// "dec-kmeans") once the outer iteration counter reaches `at_iteration`,
/// at most `max_fires` times in total (0 = unlimited). Re-running the same
/// algorithm with the same armed spec yields the same firing sequence, so
/// every recovery path is deterministically testable.
struct FaultSpec {
  std::string site;
  FaultKind kind = FaultKind::kInjectNaN;
  size_t at_iteration = 0;
  size_t max_fires = 0;
};

/// Deterministic fault injector. The hooks are compiled into the library
/// only when MULTICLUST_FAULT_INJECTION is defined (a CMake option, ON by
/// default so the test suite can exercise recovery paths); without it every
/// call site reduces to a constant `false` and the whole subsystem costs
/// nothing. With injection compiled in but nothing armed, the per-iteration
/// cost is one relaxed atomic load.
namespace fault {

#if defined(MULTICLUST_FAULT_INJECTION)

/// Arms `spec` (appends to the active set). Thread-safe.
void Arm(const FaultSpec& spec);

/// Clears all armed faults and fire counters.
void Reset();

/// True when an armed fault matches (site, kind) and covers `iteration`;
/// each true return consumes one of the fault's `max_fires`.
bool ShouldFire(const char* site, FaultKind kind, size_t iteration);

/// Number of times any fault fired since the last Reset().
size_t TotalFires();

#else

inline void Arm(const FaultSpec&) {}
inline void Reset() {}
inline constexpr bool ShouldFire(const char*, FaultKind, size_t) {
  return false;
}
inline constexpr size_t TotalFires() { return 0; }

#endif  // MULTICLUST_FAULT_INJECTION

}  // namespace fault
}  // namespace multiclust

/// Hot-loop hook. Usage:
///   if (MC_FAULT_FIRES("kmeans", FaultKind::kInjectNaN, iter)) { ... }
/// Expands to a compile-time `false` when fault injection is disabled, so
/// the branch (and anything guarded by it) is eliminated entirely.
#if defined(MULTICLUST_FAULT_INJECTION)
#define MC_FAULT_FIRES(site, kind, iter) \
  (::multiclust::fault::ShouldFire((site), (kind), (iter)))
#else
#define MC_FAULT_FIRES(site, kind, iter) (false)
#endif

#endif  // MULTICLUST_COMMON_FAULT_H_
