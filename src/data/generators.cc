#include "data/generators.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace multiclust {

Result<Dataset> MakeBlobs(const std::vector<BlobSpec>& blobs, uint64_t seed) {
  if (blobs.empty()) return Status::InvalidArgument("MakeBlobs: no blobs");
  const size_t d = blobs[0].center.size();
  for (const BlobSpec& b : blobs) {
    if (b.center.size() != d) {
      return Status::InvalidArgument("MakeBlobs: inconsistent center dims");
    }
  }
  size_t n = 0;
  for (const BlobSpec& b : blobs) n += b.count;

  Rng rng(seed);
  Matrix data(n, d);
  std::vector<int> labels(n);
  size_t row = 0;
  for (size_t c = 0; c < blobs.size(); ++c) {
    for (size_t i = 0; i < blobs[c].count; ++i, ++row) {
      for (size_t j = 0; j < d; ++j) {
        data.at(row, j) = rng.Gaussian(blobs[c].center[j], blobs[c].stddev);
      }
      labels[row] = static_cast<int>(c);
    }
  }
  Dataset ds(std::move(data));
  MC_RETURN_IF_ERROR(ds.AddGroundTruth("labels", std::move(labels)));
  return ds;
}

Result<Dataset> MakeFourSquares(size_t points_per_corner, double separation,
                                double stddev, uint64_t seed) {
  const double h = separation / 2.0;
  std::vector<BlobSpec> blobs = {
      {{-h, -h}, stddev, points_per_corner},  // 0: bottom-left
      {{h, -h}, stddev, points_per_corner},   // 1: bottom-right
      {{-h, h}, stddev, points_per_corner},   // 2: top-left
      {{h, h}, stddev, points_per_corner},    // 3: top-right
  };
  MC_ASSIGN_OR_RETURN(Dataset ds, MakeBlobs(blobs, seed));
  MC_ASSIGN_OR_RETURN(std::vector<int> corners, ds.GroundTruth("labels"));
  std::vector<int> horizontal(corners.size());  // split by y: bottom vs top
  std::vector<int> vertical(corners.size());    // split by x: left vs right
  for (size_t i = 0; i < corners.size(); ++i) {
    horizontal[i] = corners[i] >= 2 ? 1 : 0;
    vertical[i] = (corners[i] == 1 || corners[i] == 3) ? 1 : 0;
  }
  MC_RETURN_IF_ERROR(ds.AddGroundTruth("corners", corners));
  MC_RETURN_IF_ERROR(ds.AddGroundTruth("horizontal", std::move(horizontal)));
  MC_RETURN_IF_ERROR(ds.AddGroundTruth("vertical", std::move(vertical)));
  return ds;
}

std::vector<size_t> ViewDimensions(const std::vector<ViewSpec>& views,
                                   size_t view_index) {
  std::vector<size_t> dims;
  size_t offset = 0;
  for (size_t v = 0; v < views.size() && v < view_index; ++v) {
    offset += views[v].num_dims;
  }
  if (view_index < views.size()) {
    for (size_t j = 0; j < views[view_index].num_dims; ++j) {
      dims.push_back(offset + j);
    }
  }
  return dims;
}

Result<Dataset> MakeMultiView(size_t num_objects,
                              const std::vector<ViewSpec>& views,
                              size_t noise_dims, uint64_t seed) {
  if (views.empty()) return Status::InvalidArgument("MakeMultiView: no views");
  size_t total_dims = noise_dims;
  for (const ViewSpec& v : views) {
    if (v.num_dims == 0 || v.num_clusters == 0) {
      return Status::InvalidArgument(
          "MakeMultiView: view needs dims > 0 and clusters > 0");
    }
    total_dims += v.num_dims;
  }

  Rng rng(seed);
  Matrix data(num_objects, total_dims);
  std::vector<std::vector<int>> assignments(views.size());

  size_t offset = 0;
  for (size_t v = 0; v < views.size(); ++v) {
    const ViewSpec& spec = views[v];
    // Cluster centers for this view, spaced to be separable: draw and keep
    // centers at pairwise distance >= 2.5 * stddev * sqrt(dims) when
    // possible (best effort over a bounded number of draws).
    const double min_sep = 2.5 * spec.stddev * std::sqrt(
        static_cast<double>(spec.num_dims));
    std::vector<std::vector<double>> centers;
    for (size_t c = 0; c < spec.num_clusters; ++c) {
      std::vector<double> best;
      double best_min_dist = -1.0;
      for (int attempt = 0; attempt < 64; ++attempt) {
        std::vector<double> cand(spec.num_dims);
        for (double& x : cand) {
          x = rng.Uniform(-spec.center_spread / 2, spec.center_spread / 2);
        }
        double min_dist = 1e300;
        for (const auto& other : centers) {
          min_dist = std::min(min_dist, EuclideanDistance(cand, other));
        }
        if (min_dist > best_min_dist) {
          best_min_dist = min_dist;
          best = std::move(cand);
        }
        if (best_min_dist >= min_sep) break;
      }
      centers.push_back(std::move(best));
    }
    // Independent assignment per object.
    assignments[v].resize(num_objects);
    for (size_t i = 0; i < num_objects; ++i) {
      const size_t c = rng.NextIndex(spec.num_clusters);
      assignments[v][i] = static_cast<int>(c);
      for (size_t j = 0; j < spec.num_dims; ++j) {
        data.at(i, offset + j) = rng.Gaussian(centers[c][j], spec.stddev);
      }
    }
    offset += spec.num_dims;
  }
  // Noise columns.
  for (size_t j = 0; j < noise_dims; ++j) {
    for (size_t i = 0; i < num_objects; ++i) {
      data.at(i, offset + j) = rng.Uniform(-views[0].center_spread / 2,
                                           views[0].center_spread / 2);
    }
  }

  Dataset ds(std::move(data));
  for (size_t v = 0; v < views.size(); ++v) {
    std::string name = views[v].name.empty()
                           ? "view" + std::to_string(v)
                           : views[v].name;
    MC_RETURN_IF_ERROR(ds.AddGroundTruth(name, std::move(assignments[v])));
  }
  return ds;
}

Result<Dataset> MakeUniformCube(size_t num_objects, size_t dims,
                                uint64_t seed) {
  if (dims == 0) return Status::InvalidArgument("MakeUniformCube: dims == 0");
  Rng rng(seed);
  Matrix data(num_objects, dims);
  for (size_t i = 0; i < num_objects; ++i) {
    for (size_t j = 0; j < dims; ++j) data.at(i, j) = rng.NextDouble();
  }
  return Dataset(std::move(data));
}

Result<Dataset> MakeTwoRings(size_t points_per_ring, double r_inner,
                             double r_outer, double noise, uint64_t seed) {
  if (r_inner <= 0 || r_outer <= r_inner) {
    return Status::InvalidArgument("MakeTwoRings: need 0 < r_inner < r_outer");
  }
  Rng rng(seed);
  const size_t n = 2 * points_per_ring;
  Matrix data(n, 2);
  std::vector<int> labels(n);
  for (size_t i = 0; i < n; ++i) {
    const bool outer = i >= points_per_ring;
    const double r = (outer ? r_outer : r_inner) + rng.Gaussian(0.0, noise);
    const double theta = rng.Uniform(0.0, 2.0 * M_PI);
    data.at(i, 0) = r * std::cos(theta);
    data.at(i, 1) = r * std::sin(theta);
    labels[i] = outer ? 1 : 0;
  }
  Dataset ds(std::move(data));
  MC_RETURN_IF_ERROR(ds.AddGroundTruth("rings", std::move(labels)));
  return ds;
}

Result<Dataset> MakeCustomerScenario(size_t num_customers, uint64_t seed) {
  std::vector<ViewSpec> views(2);
  views[0] = {3, 3, 10.0, 1.0, "professional"};
  views[1] = {3, 3, 10.0, 1.0, "leisure"};
  MC_ASSIGN_OR_RETURN(Dataset raw,
                      MakeMultiView(num_customers, views, 0, seed));
  std::vector<std::string> names = {"working_hours", "income",  "education",
                                    "sport_activity", "cinema_visits",
                                    "musicality"};
  Dataset ds(raw.data(), std::move(names));
  for (const std::string& t : raw.GroundTruthNames()) {
    MC_RETURN_IF_ERROR(ds.AddGroundTruth(t, raw.GroundTruth(t).value()));
  }
  return ds;
}

Result<Dataset> MakeGeneExpression(size_t num_genes, size_t num_conditions,
                                   size_t num_groups, double shift,
                                   double noise, uint64_t seed) {
  if (num_conditions < 2) {
    return Status::InvalidArgument("MakeGeneExpression: need >= 2 conditions");
  }
  Rng rng(seed);
  Matrix data(num_genes, num_conditions);
  for (size_t i = 0; i < num_genes; ++i) {
    for (size_t j = 0; j < num_conditions; ++j) {
      data.at(i, j) = rng.Gaussian(0.0, noise);
    }
  }
  Dataset ds(std::move(data));
  for (size_t g = 0; g < num_groups; ++g) {
    // Each functional group: a random subset of conditions and members.
    const size_t group_dims =
        2 + rng.NextIndex(std::max<size_t>(1, num_conditions / 2 - 1));
    const std::vector<size_t> dims =
        rng.SampleWithoutReplacement(num_conditions, group_dims);
    const size_t member_count =
        num_genes / 4 + rng.NextIndex(std::max<size_t>(1, num_genes / 4));
    const std::vector<size_t> members =
        rng.SampleWithoutReplacement(num_genes, member_count);
    const double direction = rng.NextDouble() < 0.5 ? -1.0 : 1.0;
    std::vector<int> membership(num_genes, 0);
    for (size_t m : members) {
      membership[m] = 1;
      for (size_t d : dims) {
        ds.mutable_data().at(m, d) += direction * shift;
      }
    }
    MC_RETURN_IF_ERROR(
        ds.AddGroundTruth("group" + std::to_string(g), std::move(membership)));
  }
  return ds;
}

Result<Dataset> MakeSensorScenario(size_t num_sensors, double unreliable_frac,
                                   uint64_t seed) {
  std::vector<ViewSpec> views(2);
  views[0] = {2, 3, 12.0, 1.0, "temperature"};
  views[1] = {2, 3, 12.0, 1.0, "humidity"};
  MC_ASSIGN_OR_RETURN(Dataset raw, MakeMultiView(num_sensors, views, 0, seed));
  // Corrupt a fraction of sensors in exactly one view (unreliable readings).
  Rng rng(seed ^ 0xC0FFEEULL);
  Matrix& data = raw.mutable_data();
  const size_t num_bad =
      static_cast<size_t>(unreliable_frac * static_cast<double>(num_sensors));
  const std::vector<size_t> bad =
      rng.SampleWithoutReplacement(num_sensors, num_bad);
  for (size_t i : bad) {
    const size_t view = rng.NextIndex(2);
    for (size_t j = 0; j < 2; ++j) {
      data.at(i, view * 2 + j) += rng.Gaussian(0.0, 8.0);
    }
  }
  std::vector<std::string> names = {"temp_day", "temp_night", "hum_day",
                                    "hum_night"};
  Dataset ds(raw.data(), std::move(names));
  for (const std::string& t : raw.GroundTruthNames()) {
    MC_RETURN_IF_ERROR(ds.AddGroundTruth(t, raw.GroundTruth(t).value()));
  }
  return ds;
}

Result<Dataset> WithNoiseDims(const Dataset& dataset, size_t extra,
                              uint64_t seed) {
  const size_t n = dataset.num_objects();
  const size_t d = dataset.num_dims();
  // Derive the noise range from the observed data spread.
  double lo = 0.0, hi = 1.0;
  if (n > 0 && d > 0) {
    lo = hi = dataset.data().at(0, 0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < d; ++j) {
        lo = std::min(lo, dataset.data().at(i, j));
        hi = std::max(hi, dataset.data().at(i, j));
      }
    }
  }
  Rng rng(seed);
  Matrix data(n, d + extra);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) data.at(i, j) = dataset.data().at(i, j);
    for (size_t j = 0; j < extra; ++j) {
      data.at(i, d + j) = rng.Uniform(lo, hi);
    }
  }
  std::vector<std::string> names = dataset.column_names();
  for (size_t j = 0; j < extra; ++j) {
    names.push_back("noise" + std::to_string(j));
  }
  Dataset out(std::move(data), std::move(names));
  for (const std::string& t : dataset.GroundTruthNames()) {
    MC_RETURN_IF_ERROR(out.AddGroundTruth(t, dataset.GroundTruth(t).value()));
  }
  return out;
}

}  // namespace multiclust
