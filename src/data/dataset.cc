#include "data/dataset.h"

#include <string>

#include "common/profile.h"
#include "linalg/kernels.h"

namespace multiclust {

Dataset::Dataset(Matrix data) : data_(std::move(data)) {
  column_names_.reserve(data_.cols());
  for (size_t j = 0; j < data_.cols(); ++j) {
    column_names_.push_back("c" + std::to_string(j));
  }
}

Dataset::Dataset(Matrix data, std::vector<std::string> column_names)
    : data_(std::move(data)), column_names_(std::move(column_names)) {
  while (column_names_.size() < data_.cols()) {
    column_names_.push_back("c" + std::to_string(column_names_.size()));
  }
}

Result<size_t> Dataset::ColumnIndex(const std::string& name) const {
  for (size_t j = 0; j < column_names_.size(); ++j) {
    if (column_names_[j] == name) return j;
  }
  return Status::NotFound("no column named '" + name + "'");
}

Status Dataset::AddGroundTruth(const std::string& name,
                               std::vector<int> labels) {
  if (labels.size() != num_objects()) {
    return Status::InvalidArgument(
        "ground truth '" + name + "' has " + std::to_string(labels.size()) +
        " labels for " + std::to_string(num_objects()) + " objects");
  }
  if (ground_truths_.find(name) == ground_truths_.end()) {
    truth_order_.push_back(name);
  }
  // Label tables are the dataset's own storage growth (the data matrix
  // counts itself at construction).
  telemetry::CountAlloc(labels.size() * sizeof(int));
  ground_truths_[name] = std::move(labels);
  return Status::OK();
}

Result<std::vector<int>> Dataset::GroundTruth(const std::string& name) const {
  auto it = ground_truths_.find(name);
  if (it == ground_truths_.end()) {
    return Status::NotFound("no ground truth named '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> Dataset::GroundTruthNames() const {
  return truth_order_;
}

double Dataset::SubspaceSquaredDistance(
    size_t i, size_t j, const std::vector<size_t>& dims) const {
  const double* a = data_.row_data(i);
  const double* b = data_.row_data(j);
  double s = 0.0;
  for (size_t d : dims) {
    const double diff = a[d] - b[d];
    s += diff * diff;
  }
  return s;
}

double Dataset::SquaredDistance(size_t i, size_t j) const {
  return kernels::SquaredDistance(data_.row_data(i), data_.row_data(j),
                                  data_.cols());
}

}  // namespace multiclust
