#ifndef MULTICLUST_DATA_GENERATORS_H_
#define MULTICLUST_DATA_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace multiclust {

/// Specification of one Gaussian blob (cluster) in some dimensionality.
struct BlobSpec {
  std::vector<double> center;
  double stddev = 1.0;
  size_t count = 100;
};

/// Generates isotropic Gaussian blobs; ground truth "labels" is the blob id.
Result<Dataset> MakeBlobs(const std::vector<BlobSpec>& blobs, uint64_t seed);

/// The tutorial's slide-26 toy: four blobs on the corners of a square.
/// Two equally valid 2-partitions exist; the dataset carries ground truths
/// "horizontal" (split by y) and "vertical" (split by x), plus "corners"
/// (the 4-way truth).
Result<Dataset> MakeFourSquares(size_t points_per_corner, double separation,
                                double stddev, uint64_t seed);

/// One view of a multi-view generator: a clustering that lives in a block of
/// dedicated dimensions.
struct ViewSpec {
  size_t num_dims = 2;        ///< dimensions owned by this view
  size_t num_clusters = 3;    ///< clusters planted in the view
  double center_spread = 8.0; ///< cluster centers ~ Uniform(±spread/2)^dims
  double stddev = 1.0;        ///< within-cluster noise
  std::string name;           ///< ground truth name; default "view<i>"
};

/// Generates `num_objects` points whose column blocks carry *independent*
/// clusterings: block i follows a random Gaussian mixture over
/// `views[i].num_clusters` components, with the per-object component drawn
/// independently per view. Each view's assignment is registered as a ground
/// truth, and the view's dimension ranges are recoverable via
/// `ViewDimensions`. Optionally appends `noise_dims` U(0, spread) columns.
Result<Dataset> MakeMultiView(size_t num_objects,
                              const std::vector<ViewSpec>& views,
                              size_t noise_dims, uint64_t seed);

/// Dimension indices occupied by view `view_index` under MakeMultiView's
/// layout (consecutive blocks, noise columns last).
std::vector<size_t> ViewDimensions(const std::vector<ViewSpec>& views,
                                   size_t view_index);

/// Uniform points in the unit cube [0,1]^dims (no cluster structure); used
/// for curse-of-dimensionality and significance-baseline experiments.
Result<Dataset> MakeUniformCube(size_t num_objects, size_t dims,
                                uint64_t seed);

/// Two concentric 2-D rings with Gaussian radial noise; ground truth
/// "rings". Standard non-convex benchmark for spectral clustering/DBSCAN.
Result<Dataset> MakeTwoRings(size_t points_per_ring, double r_inner,
                             double r_outer, double noise, uint64_t seed);

/// The tutorial's customer scenario (slides 14-18): named attributes with a
/// "professional" view over {working_hours, income, education} and a
/// "leisure" view over {sport_activity, cinema_visits, musicality};
/// ground truths "professional" and "leisure".
Result<Dataset> MakeCustomerScenario(size_t num_customers, uint64_t seed);

/// Gene-expression-like scenario (slide 5): objects participate in multiple
/// overlapping functional groups. Each of `num_groups` groups selects a
/// random subset of conditions (dims) where its member genes are co-expressed
/// (shifted mean); a gene can belong to several groups. Membership of group g
/// is registered as ground truth "group<g>" with labels {1 = member,
/// 0 = non-member}.
Result<Dataset> MakeGeneExpression(size_t num_genes, size_t num_conditions,
                                   size_t num_groups, double shift,
                                   double noise, uint64_t seed);

/// Sensor-network scenario (slide 6): two physical views (temperature dims,
/// humidity dims) with independent spatial groupings; some sensors are
/// unreliable (heavy noise in one view). Ground truths "temperature" and
/// "humidity".
Result<Dataset> MakeSensorScenario(size_t num_sensors, double unreliable_frac,
                                   uint64_t seed);

/// Appends `extra` uniform-noise dimensions (range derived from the data
/// spread) to a dataset, preserving ground truths.
Result<Dataset> WithNoiseDims(const Dataset& dataset, size_t extra,
                              uint64_t seed);

}  // namespace multiclust

#endif  // MULTICLUST_DATA_GENERATORS_H_
