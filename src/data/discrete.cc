#include "data/discrete.h"

#include <string>

#include "common/rng.h"

namespace multiclust {

Result<Dataset> MakeDocumentTerm(const DocumentTermSpec& spec) {
  if (spec.topics_a == 0 || spec.topics_b == 0) {
    return Status::InvalidArgument("MakeDocumentTerm: topics must be > 0");
  }
  if (spec.vocab_a < spec.topics_a || spec.vocab_b < spec.topics_b) {
    return Status::InvalidArgument(
        "MakeDocumentTerm: vocabulary smaller than topic count");
  }
  if (spec.topic_sharpness <= 0.0 || spec.topic_sharpness >= 1.0) {
    return Status::InvalidArgument(
        "MakeDocumentTerm: topic_sharpness must be in (0, 1)");
  }
  Rng rng(spec.seed);
  const size_t vocab = spec.vocab_a + spec.vocab_b + spec.vocab_common;
  Matrix counts(spec.num_documents, vocab);
  std::vector<int> topics_a(spec.num_documents);
  std::vector<int> topics_b(spec.num_documents);

  // Each topic of system A owns a contiguous share of block A's words;
  // likewise for B. A document mixes: half its words from block A
  // (sharpness mass on its A-topic's words), half from block B, with the
  // common block taking a fixed small share.
  const double common_share =
      spec.vocab_common > 0 ? 0.15 : 0.0;
  const double block_share = (1.0 - common_share) / 2.0;

  for (size_t d = 0; d < spec.num_documents; ++d) {
    const size_t ta = rng.NextIndex(spec.topics_a);
    const size_t tb = rng.NextIndex(spec.topics_b);
    topics_a[d] = static_cast<int>(ta);
    topics_b[d] = static_cast<int>(tb);

    // Per-word sampling weights for this document.
    std::vector<double> weights(vocab, 0.0);
    // A word's owning topic: contiguous shares, last topic absorbs the
    // remainder.
    auto owner = [](size_t w, size_t vocab, size_t topics) {
      const size_t per_topic = vocab / topics;
      const size_t t = w / per_topic;
      return t < topics ? t : topics - 1;
    };
    auto owned_words = [](size_t t, size_t vocab, size_t topics) {
      const size_t per_topic = vocab / topics;
      return t == topics - 1 ? vocab - per_topic * (topics - 1) : per_topic;
    };
    // Block A: sharpness mass on the document's A-topic words.
    for (size_t w = 0; w < spec.vocab_a; ++w) {
      const double base = (1.0 - spec.topic_sharpness) /
                          static_cast<double>(spec.vocab_a);
      const double extra =
          owner(w, spec.vocab_a, spec.topics_a) == ta
              ? spec.topic_sharpness /
                    static_cast<double>(
                        owned_words(ta, spec.vocab_a, spec.topics_a))
              : 0.0;
      weights[w] = block_share * (base + extra);
    }
    // Block B.
    for (size_t w = 0; w < spec.vocab_b; ++w) {
      const double base = (1.0 - spec.topic_sharpness) /
                          static_cast<double>(spec.vocab_b);
      const double extra =
          owner(w, spec.vocab_b, spec.topics_b) == tb
              ? spec.topic_sharpness /
                    static_cast<double>(
                        owned_words(tb, spec.vocab_b, spec.topics_b))
              : 0.0;
      weights[spec.vocab_a + w] = block_share * (base + extra);
    }
    // Common block: uniform.
    for (size_t w = 0; w < spec.vocab_common; ++w) {
      weights[spec.vocab_a + spec.vocab_b + w] =
          common_share / static_cast<double>(spec.vocab_common);
    }

    for (size_t t = 0; t < spec.doc_length; ++t) {
      counts.at(d, rng.Categorical(weights)) += 1.0;
    }
  }

  std::vector<std::string> names;
  names.reserve(vocab);
  for (size_t w = 0; w < spec.vocab_a; ++w) {
    names.push_back("wa" + std::to_string(w));
  }
  for (size_t w = 0; w < spec.vocab_b; ++w) {
    names.push_back("wb" + std::to_string(w));
  }
  for (size_t w = 0; w < spec.vocab_common; ++w) {
    names.push_back("wc" + std::to_string(w));
  }

  Dataset ds(std::move(counts), std::move(names));
  MC_RETURN_IF_ERROR(ds.AddGroundTruth("topicsA", std::move(topics_a)));
  MC_RETURN_IF_ERROR(ds.AddGroundTruth("topicsB", std::move(topics_b)));
  return ds;
}

Result<Matrix> JointDistributionFromCounts(const Matrix& counts) {
  double total = 0.0;
  for (size_t i = 0; i < counts.rows(); ++i) {
    for (size_t j = 0; j < counts.cols(); ++j) {
      const double v = counts.at(i, j);
      if (v < 0) {
        return Status::InvalidArgument(
            "JointDistributionFromCounts: negative count");
      }
      total += v;
    }
  }
  if (total <= 0) {
    return Status::InvalidArgument(
        "JointDistributionFromCounts: zero total count");
  }
  Matrix joint(counts.rows(), counts.cols());
  for (size_t i = 0; i < counts.rows(); ++i) {
    for (size_t j = 0; j < counts.cols(); ++j) {
      joint.at(i, j) = counts.at(i, j) / total;
    }
  }
  return joint;
}

}  // namespace multiclust
