#ifndef MULTICLUST_DATA_DISCRETE_H_
#define MULTICLUST_DATA_DISCRETE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace multiclust {

/// Synthetic document-term data for the information-bottleneck family of
/// alternative-clustering methods (tutorial slides 34-36): objects are
/// documents, features are term counts, and *two independent topic systems*
/// are planted — each topic system controls a disjoint block of the
/// vocabulary. The returned Dataset holds the count matrix and ground
/// truths "topicsA" (the "known" system) and "topicsB" (the novel one).
struct DocumentTermSpec {
  size_t num_documents = 200;
  /// Words governed by topic system A / B, plus shared background words.
  size_t vocab_a = 12;
  size_t vocab_b = 12;
  size_t vocab_common = 6;
  size_t topics_a = 3;
  size_t topics_b = 2;
  /// Words drawn per document (multinomial length).
  size_t doc_length = 120;
  /// Probability mass concentrated on a topic's preferred words (the rest
  /// spreads uniformly over the block). Higher = crisper topics.
  double topic_sharpness = 0.8;
  uint64_t seed = 1;
};

/// Generates the document-term Dataset described by `spec`.
Result<Dataset> MakeDocumentTerm(const DocumentTermSpec& spec);

/// Normalises a non-negative count matrix into a joint distribution
/// p(x, y) with sum 1 (documents x, features y). Fails if the total count
/// is not positive.
Result<Matrix> JointDistributionFromCounts(const Matrix& counts);

}  // namespace multiclust

#endif  // MULTICLUST_DATA_DISCRETE_H_
