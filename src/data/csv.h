#ifndef MULTICLUST_DATA_CSV_H_
#define MULTICLUST_DATA_CSV_H_

#include <string>

#include "common/result.h"
#include "data/dataset.h"

namespace multiclust {

/// Options for CSV parsing.
struct CsvOptions {
  char separator = ',';
  bool has_header = true;
  /// Name of an integer label column to lift into a ground truth (optional;
  /// empty = none). The column is removed from the numeric data.
  std::string label_column;
  /// Accept NaN / Inf data cells. Off by default so poisoned input files
  /// are rejected at the boundary instead of surfacing as a
  /// kComputationError deep inside an algorithm.
  bool allow_non_finite = false;
};

/// Reads a numeric CSV file into a Dataset. All non-label fields must parse
/// as doubles; malformed rows produce an IoError naming the data row and
/// column. Non-finite cells (NaN/Inf) are rejected unless
/// `allow_non_finite` is set.
Result<Dataset> ReadCsv(const std::string& path, const CsvOptions& options);

/// Writes `dataset` (header + numeric rows) to `path`. Ground truths are
/// appended as integer columns named gt:<name>.
Status WriteCsv(const Dataset& dataset, const std::string& path,
                char separator = ',');

}  // namespace multiclust

#endif  // MULTICLUST_DATA_CSV_H_
