#ifndef MULTICLUST_DATA_DATASET_H_
#define MULTICLUST_DATA_DATASET_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace multiclust {

/// A numeric table of objects (rows) by attributes (columns), optionally
/// carrying one or more *ground-truth labelings*. Multiple labelings are
/// first-class because the whole point of this library is data that admits
/// several valid clusterings (one per view).
class Dataset {
 public:
  Dataset() = default;

  /// Takes ownership of the data matrix; columns get names "c0", "c1", ...
  explicit Dataset(Matrix data);

  /// Takes ownership of data and column names (names.size() == data.cols()).
  Dataset(Matrix data, std::vector<std::string> column_names);

  size_t num_objects() const { return data_.rows(); }
  size_t num_dims() const { return data_.cols(); }

  const Matrix& data() const { return data_; }
  Matrix& mutable_data() { return data_; }

  const std::vector<std::string>& column_names() const {
    return column_names_;
  }

  /// Index of the column with the given name, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Returns object row `i` as a vector.
  std::vector<double> Object(size_t i) const { return data_.Row(i); }

  /// Projection of the data onto the listed dimensions (a subspace view).
  Matrix Project(const std::vector<size_t>& dims) const {
    return data_.SelectColumns(dims);
  }

  /// Registers a ground-truth labeling under `name`. Labels use -1 for
  /// noise/unassigned; labels.size() must equal num_objects().
  Status AddGroundTruth(const std::string& name, std::vector<int> labels);

  /// Fetches a ground-truth labeling, or NotFound.
  Result<std::vector<int>> GroundTruth(const std::string& name) const;

  /// Names of all registered ground truths, in insertion order.
  std::vector<std::string> GroundTruthNames() const;

  size_t num_ground_truths() const { return truth_order_.size(); }

  /// Squared Euclidean distance between objects i and j restricted to
  /// `dims` (the subspace distance of the tutorial, slide 67).
  double SubspaceSquaredDistance(size_t i, size_t j,
                                 const std::vector<size_t>& dims) const;

  /// Full-space squared Euclidean distance between objects i and j.
  double SquaredDistance(size_t i, size_t j) const;

 private:
  Matrix data_;
  std::vector<std::string> column_names_;
  std::map<std::string, std::vector<int>> ground_truths_;
  std::vector<std::string> truth_order_;
};

}  // namespace multiclust

#endif  // MULTICLUST_DATA_DATASET_H_
