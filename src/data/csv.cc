#include "data/csv.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace multiclust {

namespace {

// "line 7, column 3 ('width')" — the coordinates a user needs to find a
// bad cell in their file.
std::string CellContext(size_t line_no, size_t column,
                        const std::vector<std::string>& names) {
  std::string s = "line " + std::to_string(line_no) + ", column " +
                  std::to_string(column + 1);
  if (column < names.size()) s += " ('" + names[column] + "')";
  return s;
}

}  // namespace

Result<Dataset> ReadCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");

  std::string line;
  std::vector<std::string> names;
  size_t line_no = 0;

  if (options.has_header) {
    if (!std::getline(in, line)) {
      return Status::IoError("'" + path + "' is empty");
    }
    ++line_no;
    for (const std::string& f : SplitString(TrimString(line),
                                            options.separator)) {
      names.push_back(TrimString(f));
    }
  }

  int label_col = -1;
  if (!options.label_column.empty()) {
    for (size_t j = 0; j < names.size(); ++j) {
      if (names[j] == options.label_column) label_col = static_cast<int>(j);
    }
    if (label_col < 0) {
      return Status::NotFound("label column '" + options.label_column +
                              "' not in header");
    }
  }

  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = TrimString(line);
    if (trimmed.empty()) continue;
    const std::vector<std::string> fields =
        SplitString(trimmed, options.separator);
    if (!names.empty() && fields.size() != names.size()) {
      return Status::IoError("line " + std::to_string(line_no) + " has " +
                             std::to_string(fields.size()) + " fields, " +
                             "expected " + std::to_string(names.size()));
    }
    std::vector<double> row;
    row.reserve(fields.size());
    for (size_t j = 0; j < fields.size(); ++j) {
      if (static_cast<int>(j) == label_col) {
        double v = 0;
        if (!ParseDouble(fields[j], &v) || !std::isfinite(v)) {
          return Status::IoError(CellContext(line_no, j, names) +
                                 ": bad label '" + fields[j] + "'");
        }
        labels.push_back(static_cast<int>(v));
        continue;
      }
      double v = 0;
      if (!ParseDouble(fields[j], &v)) {
        return Status::IoError(CellContext(line_no, j, names) +
                               ": bad number '" + fields[j] + "'");
      }
      if (!std::isfinite(v) && !options.allow_non_finite) {
        return Status::IoError(
            CellContext(line_no, j, names) + ": non-finite value '" +
            fields[j] +
            "' (set CsvOptions::allow_non_finite to accept NaN/Inf)");
      }
      row.push_back(v);
    }
    if (!rows.empty() && row.size() != rows[0].size()) {
      return Status::IoError("line " + std::to_string(line_no) +
                             ": inconsistent field count");
    }
    rows.push_back(std::move(row));
  }

  std::vector<std::string> data_names;
  for (size_t j = 0; j < names.size(); ++j) {
    if (static_cast<int>(j) != label_col) data_names.push_back(names[j]);
  }

  Dataset ds(Matrix::FromRows(rows), std::move(data_names));
  if (label_col >= 0) {
    MC_RETURN_IF_ERROR(ds.AddGroundTruth(options.label_column,
                                         std::move(labels)));
  }
  return ds;
}

Status WriteCsv(const Dataset& dataset, const std::string& path,
                char separator) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot write '" + path + "'");

  const std::vector<std::string> truth_names = dataset.GroundTruthNames();
  // Header.
  for (size_t j = 0; j < dataset.num_dims(); ++j) {
    if (j > 0) out << separator;
    out << dataset.column_names()[j];
  }
  for (const std::string& t : truth_names) out << separator << "gt:" << t;
  out << "\n";

  std::vector<std::vector<int>> truths;
  for (const std::string& t : truth_names) {
    truths.push_back(dataset.GroundTruth(t).value());
  }

  std::ostringstream buf;
  buf.precision(12);
  for (size_t i = 0; i < dataset.num_objects(); ++i) {
    for (size_t j = 0; j < dataset.num_dims(); ++j) {
      if (j > 0) buf << separator;
      buf << dataset.data().at(i, j);
    }
    for (const auto& t : truths) buf << separator << t[i];
    buf << "\n";
  }
  out << buf.str();
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

}  // namespace multiclust
