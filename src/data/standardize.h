#ifndef MULTICLUST_DATA_STANDARDIZE_H_
#define MULTICLUST_DATA_STANDARDIZE_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace multiclust {

/// Column-wise standardisation parameters, so the same transform fits on
/// one dataset and applies to another (train/apply separation).
struct ColumnScaler {
  std::vector<double> offset;  ///< subtracted per column
  std::vector<double> scale;   ///< divided per column (>= tiny epsilon)

  /// Applies the transform: out(i, j) = (in(i, j) - offset[j]) / scale[j].
  Matrix Apply(const Matrix& data) const;

  /// Inverts the transform.
  Matrix Invert(const Matrix& data) const;
};

/// Z-score scaler: offset = column mean, scale = column stddev.
/// Constant columns get scale 1 (values map to 0).
Result<ColumnScaler> FitZScore(const Matrix& data);

/// Min-max scaler onto [0, 1]: offset = column min, scale = range.
Result<ColumnScaler> FitMinMax(const Matrix& data);

/// Convenience: z-scores the data in one call.
Result<Matrix> ZScore(const Matrix& data);

}  // namespace multiclust

#endif  // MULTICLUST_DATA_STANDARDIZE_H_
