#include "data/standardize.h"

#include <algorithm>
#include <cmath>

namespace multiclust {

Matrix ColumnScaler::Apply(const Matrix& data) const {
  Matrix out(data.rows(), data.cols());
  for (size_t i = 0; i < data.rows(); ++i) {
    for (size_t j = 0; j < data.cols(); ++j) {
      const double off = j < offset.size() ? offset[j] : 0.0;
      const double sc = j < scale.size() ? scale[j] : 1.0;
      out.at(i, j) = (data.at(i, j) - off) / sc;
    }
  }
  return out;
}

Matrix ColumnScaler::Invert(const Matrix& data) const {
  Matrix out(data.rows(), data.cols());
  for (size_t i = 0; i < data.rows(); ++i) {
    for (size_t j = 0; j < data.cols(); ++j) {
      const double off = j < offset.size() ? offset[j] : 0.0;
      const double sc = j < scale.size() ? scale[j] : 1.0;
      out.at(i, j) = data.at(i, j) * sc + off;
    }
  }
  return out;
}

Result<ColumnScaler> FitZScore(const Matrix& data) {
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("FitZScore: empty data");
  }
  ColumnScaler scaler;
  scaler.offset = RowMean(data);
  scaler.scale.assign(data.cols(), 1.0);
  for (size_t j = 0; j < data.cols(); ++j) {
    double var = 0.0;
    for (size_t i = 0; i < data.rows(); ++i) {
      const double d = data.at(i, j) - scaler.offset[j];
      var += d * d;
    }
    var /= std::max<size_t>(1, data.rows() - 1);
    const double sd = std::sqrt(var);
    scaler.scale[j] = sd > 1e-12 ? sd : 1.0;
  }
  return scaler;
}

Result<ColumnScaler> FitMinMax(const Matrix& data) {
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("FitMinMax: empty data");
  }
  ColumnScaler scaler;
  scaler.offset.resize(data.cols());
  scaler.scale.assign(data.cols(), 1.0);
  for (size_t j = 0; j < data.cols(); ++j) {
    double mn = data.at(0, j), mx = data.at(0, j);
    for (size_t i = 1; i < data.rows(); ++i) {
      mn = std::min(mn, data.at(i, j));
      mx = std::max(mx, data.at(i, j));
    }
    scaler.offset[j] = mn;
    scaler.scale[j] = mx - mn > 1e-12 ? mx - mn : 1.0;
  }
  return scaler;
}

Result<Matrix> ZScore(const Matrix& data) {
  MC_ASSIGN_OR_RETURN(ColumnScaler scaler, FitZScore(data));
  return scaler.Apply(data);
}

}  // namespace multiclust
