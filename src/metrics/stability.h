#ifndef MULTICLUST_METRICS_STABILITY_H_
#define MULTICLUST_METRICS_STABILITY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace multiclust {

/// A clustering procedure under stability evaluation: must label the rows
/// of the given matrix (one call per subsample).
using ClusterFn =
    std::function<Result<std::vector<int>>(const Matrix& data,
                                           uint64_t seed)>;

/// Options for subsampling-based stability analysis (the standard protocol
/// behind "is this clustering real or an artefact?" — the question
/// consensus methods answer constructively, tutorial slide 108ff).
struct StabilityOptions {
  /// Subsample fraction per round.
  double fraction = 0.8;
  /// Number of subsample pairs.
  size_t rounds = 10;
  uint64_t seed = 1;
};

/// Result of a stability run.
struct StabilityReport {
  /// Mean pairwise ARI between clusterings of overlapping subsamples,
  /// compared on the shared objects. 1 = perfectly stable.
  double mean_ari = 0.0;
  double min_ari = 0.0;
  std::vector<double> round_ari;
};

/// Estimates the stability of a clustering procedure: draws pairs of
/// random subsamples, clusters each, and compares the two labelings on the
/// objects both subsamples contain. Stable procedures (right k, real
/// structure) score near 1; overfitted ones decay.
Result<StabilityReport> EvaluateStability(const Matrix& data,
                                          const ClusterFn& cluster,
                                          const StabilityOptions& options);

/// Stability-based k selection for k-means over [2, max_k]: returns the k
/// with the highest mean stability (ties: smaller k).
Result<size_t> SelectKByStability(const Matrix& data, size_t max_k,
                                  const StabilityOptions& options);

}  // namespace multiclust

#endif  // MULTICLUST_METRICS_STABILITY_H_
