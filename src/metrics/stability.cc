#include "metrics/stability.h"

#include <algorithm>

#include "cluster/kmeans.h"
#include "common/rng.h"
#include "metrics/partition_similarity.h"

namespace multiclust {

Result<StabilityReport> EvaluateStability(const Matrix& data,
                                          const ClusterFn& cluster,
                                          const StabilityOptions& options) {
  const size_t n = data.rows();
  if (n < 4) {
    return Status::InvalidArgument("EvaluateStability: too few objects");
  }
  if (options.fraction <= 0.0 || options.fraction > 1.0) {
    return Status::InvalidArgument(
        "EvaluateStability: fraction must be in (0, 1]");
  }
  if (options.rounds == 0) {
    return Status::InvalidArgument("EvaluateStability: rounds must be > 0");
  }
  if (!cluster) {
    return Status::InvalidArgument("EvaluateStability: null cluster fn");
  }

  Rng rng(options.seed);
  const size_t m = std::max<size_t>(
      2, static_cast<size_t>(options.fraction * static_cast<double>(n)));

  StabilityReport report;
  report.min_ari = 1.0;
  for (size_t round = 0; round < options.rounds; ++round) {
    const std::vector<size_t> sub_a = rng.SampleWithoutReplacement(n, m);
    const std::vector<size_t> sub_b = rng.SampleWithoutReplacement(n, m);
    const Matrix data_a = data.SelectRows(sub_a);
    const Matrix data_b = data.SelectRows(sub_b);
    MC_ASSIGN_OR_RETURN(std::vector<int> labels_a,
                        cluster(data_a, rng.NextU64()));
    MC_ASSIGN_OR_RETURN(std::vector<int> labels_b,
                        cluster(data_b, rng.NextU64()));
    if (labels_a.size() != sub_a.size() || labels_b.size() != sub_b.size()) {
      return Status::InvalidArgument(
          "EvaluateStability: cluster fn returned wrong label count");
    }

    // Compare on the shared objects.
    std::vector<int> pos_in_b(n, -1);
    for (size_t idx = 0; idx < sub_b.size(); ++idx) {
      pos_in_b[sub_b[idx]] = static_cast<int>(idx);
    }
    std::vector<int> shared_a, shared_b;
    for (size_t idx = 0; idx < sub_a.size(); ++idx) {
      const int other = pos_in_b[sub_a[idx]];
      if (other >= 0) {
        shared_a.push_back(labels_a[idx]);
        shared_b.push_back(labels_b[other]);
      }
    }
    if (shared_a.size() < 2) continue;  // no overlap this round
    MC_ASSIGN_OR_RETURN(double ari, AdjustedRandIndex(shared_a, shared_b));
    report.round_ari.push_back(ari);
    report.min_ari = std::min(report.min_ari, ari);
  }
  if (report.round_ari.empty()) {
    return Status::ComputationError(
        "EvaluateStability: no overlapping subsamples");
  }
  for (double a : report.round_ari) report.mean_ari += a;
  report.mean_ari /= static_cast<double>(report.round_ari.size());
  return report;
}

Result<size_t> SelectKByStability(const Matrix& data, size_t max_k,
                                  const StabilityOptions& options) {
  if (max_k < 2) {
    return Status::InvalidArgument("SelectKByStability: max_k must be >= 2");
  }
  size_t best_k = 2;
  double best = -2.0;
  for (size_t k = 2; k <= max_k && k < data.rows() / 2; ++k) {
    ClusterFn fn = [k](const Matrix& sub,
                       uint64_t seed) -> Result<std::vector<int>> {
      KMeansOptions opts;
      opts.k = k;
      opts.restarts = 3;
      opts.seed = seed;
      MC_ASSIGN_OR_RETURN(Clustering c, RunKMeans(sub, opts));
      return c.labels;
    };
    MC_ASSIGN_OR_RETURN(StabilityReport report,
                        EvaluateStability(data, fn, options));
    if (report.mean_ari > best + 1e-9) {
      best = report.mean_ari;
      best_k = k;
    }
  }
  return best_k;
}

}  // namespace multiclust
