#ifndef MULTICLUST_METRICS_ADCO_H_
#define MULTICLUST_METRICS_ADCO_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace multiclust {

/// ADCO-style density-profile comparison between two clusterings
/// (Bae, Bailey & Dong 2010; tutorial slide 34: "alternative should realize
/// a different density profile"). Unlike pair-counting measures, ADCO
/// compares *where in attribute space* the clusters sit: each cluster is
/// summarised by its per-attribute histogram over `bins` equal-width
/// intervals, and two clusterings are similar when their clusters can be
/// matched with similar profiles.

/// Similarity in [0, 1]: maximum over cluster matchings (Hungarian) of the
/// normalised dot product of matched density profiles. 1 = identical
/// spatial profiles; values near the chance level indicate the clusterings
/// carve the space differently.
Result<double> AdcoSimilarity(const Matrix& data,
                              const std::vector<int>& labels_a,
                              const std::vector<int>& labels_b,
                              size_t bins = 5);

/// Dissimilarity = 1 - AdcoSimilarity; usable as a `Diss` functional.
Result<double> AdcoDissimilarity(const Matrix& data,
                                 const std::vector<int>& labels_a,
                                 const std::vector<int>& labels_b,
                                 size_t bins = 5);

/// The raw profile of one clustering: rows = dense-relabeled clusters,
/// cols = attributes * bins, each attribute block normalised to sum 1 for
/// the cluster. Exposed for diagnostics and tests.
Result<Matrix> ClusterDensityProfiles(const Matrix& data,
                                      const std::vector<int>& labels,
                                      size_t bins);

}  // namespace multiclust

#endif  // MULTICLUST_METRICS_ADCO_H_
