#include "metrics/clustering_quality.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/contingency.h"

namespace multiclust {

Result<double> SumSquaredError(const Matrix& data,
                               const std::vector<int>& labels) {
  if (data.rows() != labels.size()) {
    return Status::InvalidArgument("SumSquaredError: size mismatch");
  }
  MC_ASSIGN_OR_RETURN(Matrix means, ClusterMeans(data, labels));
  std::vector<int> dense;
  DenseRelabel(labels, &dense);
  double sse = 0.0;
  for (size_t i = 0; i < data.rows(); ++i) {
    if (dense[i] < 0) continue;
    const double* row = data.row_data(i);
    const double* mean = means.row_data(dense[i]);
    for (size_t j = 0; j < data.cols(); ++j) {
      const double d = row[j] - mean[j];
      sse += d * d;
    }
  }
  return sse;
}

Result<double> Silhouette(const Matrix& data,
                          const std::vector<int>& labels) {
  if (data.rows() != labels.size()) {
    return Status::InvalidArgument("Silhouette: size mismatch");
  }
  std::vector<int> dense;
  const size_t k = DenseRelabel(labels, &dense);
  if (k < 2) {
    return Status::FailedPrecondition("Silhouette: needs >= 2 clusters");
  }
  const size_t n = data.rows();
  std::vector<size_t> sizes(k, 0);
  for (int l : dense) {
    if (l >= 0) ++sizes[l];
  }

  double total = 0.0;
  size_t counted = 0;
  std::vector<double> dist_sum(k);
  for (size_t i = 0; i < n; ++i) {
    if (dense[i] < 0) continue;
    std::fill(dist_sum.begin(), dist_sum.end(), 0.0);
    for (size_t j = 0; j < n; ++j) {
      if (j == i || dense[j] < 0) continue;
      double s = 0.0;
      for (size_t c = 0; c < data.cols(); ++c) {
        const double d = data.at(i, c) - data.at(j, c);
        s += d * d;
      }
      dist_sum[dense[j]] += std::sqrt(s);
    }
    const size_t own = dense[i];
    if (sizes[own] <= 1) continue;  // silhouette undefined; skip
    const double a = dist_sum[own] / static_cast<double>(sizes[own] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < k; ++c) {
      if (c == own || sizes[c] == 0) continue;
      b = std::min(b, dist_sum[c] / static_cast<double>(sizes[c]));
    }
    if (!std::isfinite(b)) continue;
    const double denom = std::max(a, b);
    if (denom > 0) {
      total += (b - a) / denom;
      ++counted;
    }
  }
  if (counted == 0) {
    return Status::FailedPrecondition("Silhouette: no scorable objects");
  }
  return total / static_cast<double>(counted);
}

Result<double> DunnIndex(const Matrix& data, const std::vector<int>& labels) {
  if (data.rows() != labels.size()) {
    return Status::InvalidArgument("DunnIndex: size mismatch");
  }
  std::vector<int> dense;
  const size_t k = DenseRelabel(labels, &dense);
  if (k < 2) {
    return Status::FailedPrecondition("DunnIndex: needs >= 2 clusters");
  }
  const size_t n = data.rows();
  double min_inter = std::numeric_limits<double>::infinity();
  double max_diam = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (dense[i] < 0) continue;
    for (size_t j = i + 1; j < n; ++j) {
      if (dense[j] < 0) continue;
      double s = 0.0;
      for (size_t c = 0; c < data.cols(); ++c) {
        const double d = data.at(i, c) - data.at(j, c);
        s += d * d;
      }
      const double dist = std::sqrt(s);
      if (dense[i] == dense[j]) {
        max_diam = std::max(max_diam, dist);
      } else {
        min_inter = std::min(min_inter, dist);
      }
    }
  }
  if (max_diam <= 0.0) {
    return Status::FailedPrecondition("DunnIndex: zero intra-cluster spread");
  }
  return min_inter / max_diam;
}

Result<Matrix> ClusterMeans(const Matrix& data,
                            const std::vector<int>& labels) {
  if (data.rows() != labels.size()) {
    return Status::InvalidArgument("ClusterMeans: size mismatch");
  }
  std::vector<int> dense;
  const size_t k = DenseRelabel(labels, &dense);
  Matrix means(k, data.cols());
  std::vector<size_t> counts(k, 0);
  for (size_t i = 0; i < data.rows(); ++i) {
    if (dense[i] < 0) continue;
    ++counts[dense[i]];
    for (size_t j = 0; j < data.cols(); ++j) {
      means.at(dense[i], j) += data.at(i, j);
    }
  }
  for (size_t c = 0; c < k; ++c) {
    if (counts[c] == 0) continue;
    for (size_t j = 0; j < data.cols(); ++j) {
      means.at(c, j) /= static_cast<double>(counts[c]);
    }
  }
  return means;
}

double NoiseFraction(const std::vector<int>& labels) {
  if (labels.empty()) return 0.0;
  size_t noise = 0;
  for (int l : labels) {
    if (l < 0) ++noise;
  }
  return static_cast<double>(noise) / static_cast<double>(labels.size());
}

size_t NumClusters(const std::vector<int>& labels) {
  std::vector<int> dense;
  return DenseRelabel(labels, &dense);
}

}  // namespace multiclust
