#include "metrics/multi_solution.h"

#include <algorithm>

#include "metrics/partition_similarity.h"

namespace multiclust {

Result<double> MeanPairwiseDissimilarity(
    const std::vector<std::vector<int>>& solutions) {
  if (solutions.size() < 2) return 0.0;
  double total = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < solutions.size(); ++i) {
    for (size_t j = i + 1; j < solutions.size(); ++j) {
      MC_ASSIGN_OR_RETURN(double d,
                          ClusteringDissimilarity(solutions[i], solutions[j]));
      total += d;
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

Result<double> MinPairwiseDissimilarity(
    const std::vector<std::vector<int>>& solutions) {
  if (solutions.size() < 2) return 0.0;
  double min_d = 1.0;
  for (size_t i = 0; i < solutions.size(); ++i) {
    for (size_t j = i + 1; j < solutions.size(); ++j) {
      MC_ASSIGN_OR_RETURN(double d,
                          ClusteringDissimilarity(solutions[i], solutions[j]));
      min_d = std::min(min_d, d);
    }
  }
  return min_d;
}

Result<SolutionMatch> MatchSolutionsToTruths(
    const std::vector<std::vector<int>>& truths,
    const std::vector<std::vector<int>>& solutions) {
  SolutionMatch match;
  match.assignment.assign(truths.size(), -1);
  match.nmi.assign(truths.size(), 0.0);
  if (truths.empty()) return match;
  if (solutions.empty()) return match;

  // Cost matrix: negative NMI so the Hungarian minimiser maximises NMI.
  std::vector<std::vector<double>> cost(
      truths.size(), std::vector<double>(solutions.size(), 0.0));
  std::vector<std::vector<double>> nmi_matrix(
      truths.size(), std::vector<double>(solutions.size(), 0.0));
  for (size_t t = 0; t < truths.size(); ++t) {
    for (size_t s = 0; s < solutions.size(); ++s) {
      MC_ASSIGN_OR_RETURN(
          double nmi, NormalizedMutualInformation(truths[t], solutions[s]));
      nmi_matrix[t][s] = nmi;
      cost[t][s] = -nmi;
    }
  }
  const std::vector<int> assign = HungarianAssign(cost);
  double total = 0.0;
  for (size_t t = 0; t < truths.size(); ++t) {
    const int s = t < assign.size() ? assign[t] : -1;
    if (s >= 0 && static_cast<size_t>(s) < solutions.size()) {
      match.assignment[t] = s;
      match.nmi[t] = nmi_matrix[t][s];
    }
    total += match.nmi[t];
  }
  match.mean_recovery = total / static_cast<double>(truths.size());
  return match;
}

Result<double> CombinedObjective(
    const std::vector<std::vector<int>>& solutions,
    const std::vector<double>& qualities, double lambda) {
  if (solutions.size() != qualities.size()) {
    return Status::InvalidArgument("CombinedObjective: size mismatch");
  }
  double q = 0.0;
  for (double x : qualities) q += x;
  double diss = 0.0;
  for (size_t i = 0; i < solutions.size(); ++i) {
    for (size_t j = i + 1; j < solutions.size(); ++j) {
      MC_ASSIGN_OR_RETURN(double d,
                          ClusteringDissimilarity(solutions[i], solutions[j]));
      diss += d;
    }
  }
  return q + lambda * diss;
}

}  // namespace multiclust
