#ifndef MULTICLUST_METRICS_CLUSTERING_QUALITY_H_
#define MULTICLUST_METRICS_CLUSTERING_QUALITY_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace multiclust {

/// Internal quality measures: the `Q` of the tutorial's abstract problem
/// definition (slide 27). All operate on a labeling of the rows of a data
/// matrix; noise labels (-1) are skipped.

/// Sum of squared distances from each object to its cluster mean (k-means
/// compactness; lower is better).
Result<double> SumSquaredError(const Matrix& data,
                               const std::vector<int>& labels);

/// Mean silhouette coefficient in [-1, 1] (higher is better). O(n^2).
Result<double> Silhouette(const Matrix& data, const std::vector<int>& labels);

/// Dunn index: min inter-cluster distance / max intra-cluster diameter
/// (higher is better). O(n^2).
Result<double> DunnIndex(const Matrix& data, const std::vector<int>& labels);

/// Cluster means for a labeling (rows = dense-relabeled clusters).
Result<Matrix> ClusterMeans(const Matrix& data,
                            const std::vector<int>& labels);

/// Fraction of objects labeled as noise (-1).
double NoiseFraction(const std::vector<int>& labels);

/// Number of distinct non-noise clusters.
size_t NumClusters(const std::vector<int>& labels);

}  // namespace multiclust

#endif  // MULTICLUST_METRICS_CLUSTERING_QUALITY_H_
