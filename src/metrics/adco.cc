#include "metrics/adco.h"

#include <algorithm>
#include <cmath>

#include "metrics/partition_similarity.h"
#include "stats/contingency.h"

namespace multiclust {

Result<Matrix> ClusterDensityProfiles(const Matrix& data,
                                      const std::vector<int>& labels,
                                      size_t bins) {
  if (data.rows() != labels.size()) {
    return Status::InvalidArgument("ClusterDensityProfiles: size mismatch");
  }
  if (bins == 0) {
    return Status::InvalidArgument("ClusterDensityProfiles: bins == 0");
  }
  std::vector<int> dense;
  const size_t k = DenseRelabel(labels, &dense);
  const size_t d = data.cols();
  if (k == 0) return Matrix(0, d * bins);

  // Attribute ranges.
  std::vector<double> lo(d), width(d);
  for (size_t j = 0; j < d; ++j) {
    double mn = data.at(0, j), mx = data.at(0, j);
    for (size_t i = 1; i < data.rows(); ++i) {
      mn = std::min(mn, data.at(i, j));
      mx = std::max(mx, data.at(i, j));
    }
    lo[j] = mn;
    width[j] = (mx - mn > 1e-12 ? mx - mn : 1.0) /
               static_cast<double>(bins);
  }

  Matrix profiles(k, d * bins);
  std::vector<double> totals(k, 0.0);
  for (size_t i = 0; i < data.rows(); ++i) {
    if (dense[i] < 0) continue;
    totals[dense[i]] += 1.0;
    for (size_t j = 0; j < d; ++j) {
      int b = static_cast<int>((data.at(i, j) - lo[j]) / width[j]);
      if (b < 0) b = 0;
      if (b >= static_cast<int>(bins)) b = static_cast<int>(bins) - 1;
      profiles.at(dense[i], j * bins + b) += 1.0;
    }
  }
  // Normalise each cluster's profile per attribute block.
  for (size_t c = 0; c < k; ++c) {
    if (totals[c] <= 0) continue;
    for (size_t j = 0; j < d * bins; ++j) {
      profiles.at(c, j) /= totals[c];
    }
  }
  return profiles;
}

Result<double> AdcoSimilarity(const Matrix& data,
                              const std::vector<int>& labels_a,
                              const std::vector<int>& labels_b,
                              size_t bins) {
  MC_ASSIGN_OR_RETURN(Matrix pa, ClusterDensityProfiles(data, labels_a, bins));
  MC_ASSIGN_OR_RETURN(Matrix pb, ClusterDensityProfiles(data, labels_b, bins));
  if (pa.rows() == 0 || pb.rows() == 0) return 0.0;

  // Cosine similarity between every profile pair.
  const size_t ka = pa.rows(), kb = pb.rows();
  std::vector<std::vector<double>> sim(ka, std::vector<double>(kb, 0.0));
  for (size_t a = 0; a < ka; ++a) {
    for (size_t b = 0; b < kb; ++b) {
      double dot = 0.0, na = 0.0, nb = 0.0;
      for (size_t j = 0; j < pa.cols(); ++j) {
        dot += pa.at(a, j) * pb.at(b, j);
        na += pa.at(a, j) * pa.at(a, j);
        nb += pb.at(b, j) * pb.at(b, j);
      }
      sim[a][b] = (na > 0 && nb > 0) ? dot / std::sqrt(na * nb) : 0.0;
    }
  }
  // Best matching (Hungarian on negative similarity), averaged over the
  // larger clustering so unmatched clusters count as zero.
  std::vector<std::vector<double>> cost(ka, std::vector<double>(kb, 0.0));
  for (size_t a = 0; a < ka; ++a) {
    for (size_t b = 0; b < kb; ++b) cost[a][b] = -sim[a][b];
  }
  const std::vector<int> assign = HungarianAssign(cost);
  double total = 0.0;
  for (size_t a = 0; a < ka; ++a) {
    if (assign[a] >= 0 && static_cast<size_t>(assign[a]) < kb) {
      total += sim[a][assign[a]];
    }
  }
  return total / static_cast<double>(std::max(ka, kb));
}

Result<double> AdcoDissimilarity(const Matrix& data,
                                 const std::vector<int>& labels_a,
                                 const std::vector<int>& labels_b,
                                 size_t bins) {
  MC_ASSIGN_OR_RETURN(double sim,
                      AdcoSimilarity(data, labels_a, labels_b, bins));
  return std::clamp(1.0 - sim, 0.0, 1.0);
}

}  // namespace multiclust
