#include "metrics/partition_similarity.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/contingency.h"
#include "stats/entropy.h"

namespace multiclust {

namespace {

Result<ContingencyTable::PairCounts> Pairs(const std::vector<int>& a,
                                           const std::vector<int>& b) {
  MC_ASSIGN_OR_RETURN(ContingencyTable t, ContingencyTable::Build(a, b));
  return t.pair_counts();
}

}  // namespace

Result<double> RandIndex(const std::vector<int>& a,
                         const std::vector<int>& b) {
  MC_ASSIGN_OR_RETURN(ContingencyTable::PairCounts pc, Pairs(a, b));
  const double total =
      pc.same_both + pc.same_a_only + pc.same_b_only + pc.same_neither;
  if (total <= 0) return 1.0;
  return (pc.same_both + pc.same_neither) / total;
}

Result<double> AdjustedRandIndex(const std::vector<int>& a,
                                 const std::vector<int>& b) {
  MC_ASSIGN_OR_RETURN(ContingencyTable t, ContingencyTable::Build(a, b));
  auto choose2 = [](double n) { return n * (n - 1.0) / 2.0; };
  double sum_cells = 0.0;
  for (size_t i = 0; i < t.rows(); ++i) {
    for (size_t j = 0; j < t.cols(); ++j) {
      sum_cells += choose2(static_cast<double>(t.at(i, j)));
    }
  }
  double sum_rows = 0.0;
  for (size_t r : t.row_totals()) sum_rows += choose2(static_cast<double>(r));
  double sum_cols = 0.0;
  for (size_t c : t.col_totals()) sum_cols += choose2(static_cast<double>(c));
  const double total_pairs = choose2(static_cast<double>(t.total()));
  if (total_pairs <= 0) return 1.0;
  const double expected = sum_rows * sum_cols / total_pairs;
  const double max_index = 0.5 * (sum_rows + sum_cols);
  const double denom = max_index - expected;
  if (std::fabs(denom) < 1e-12) return 1.0;  // both trivial partitions
  return (sum_cells - expected) / denom;
}

Result<double> JaccardIndex(const std::vector<int>& a,
                            const std::vector<int>& b) {
  MC_ASSIGN_OR_RETURN(ContingencyTable::PairCounts pc, Pairs(a, b));
  const double denom = pc.same_both + pc.same_a_only + pc.same_b_only;
  if (denom <= 0) return 1.0;
  return pc.same_both / denom;
}

Result<double> FowlkesMallows(const std::vector<int>& a,
                              const std::vector<int>& b) {
  MC_ASSIGN_OR_RETURN(ContingencyTable::PairCounts pc, Pairs(a, b));
  const double pa = pc.same_both + pc.same_a_only;
  const double pb = pc.same_both + pc.same_b_only;
  if (pa <= 0 || pb <= 0) return 0.0;
  return pc.same_both / std::sqrt(pa * pb);
}

Result<double> PairF1(const std::vector<int>& a, const std::vector<int>& b) {
  MC_ASSIGN_OR_RETURN(ContingencyTable::PairCounts pc, Pairs(a, b));
  const double precision_denom = pc.same_both + pc.same_b_only;
  const double recall_denom = pc.same_both + pc.same_a_only;
  if (precision_denom <= 0 || recall_denom <= 0) return 0.0;
  const double precision = pc.same_both / precision_denom;
  const double recall = pc.same_both / recall_denom;
  if (precision + recall <= 0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

Result<double> NormalizedMutualInformation(const std::vector<int>& a,
                                           const std::vector<int>& b,
                                           NmiNorm norm) {
  MC_ASSIGN_OR_RETURN(double mi, MutualInformation(a, b));
  const double ha = LabelEntropy(a);
  const double hb = LabelEntropy(b);
  double denom = 0.0;
  switch (norm) {
    case NmiNorm::kMax:
      denom = std::max(ha, hb);
      break;
    case NmiNorm::kMin:
      denom = std::min(ha, hb);
      break;
    case NmiNorm::kSqrt:
      denom = std::sqrt(ha * hb);
      break;
    case NmiNorm::kSum:
      denom = 0.5 * (ha + hb);
      break;
    case NmiNorm::kJoint: {
      MC_ASSIGN_OR_RETURN(double hj, JointEntropy(a, b));
      denom = hj;
      break;
    }
  }
  if (denom <= 1e-12) {
    // Both partitions trivial: identical by convention.
    return (ha <= 1e-12 && hb <= 1e-12) ? 1.0 : 0.0;
  }
  double nmi = mi / denom;
  if (nmi > 1.0) nmi = 1.0;
  if (nmi < 0.0) nmi = 0.0;
  return nmi;
}

Result<double> VariationOfInformation(const std::vector<int>& a,
                                      const std::vector<int>& b) {
  MC_ASSIGN_OR_RETURN(double hab, ConditionalEntropy(a, b));
  MC_ASSIGN_OR_RETURN(double hba, ConditionalEntropy(b, a));
  return hab + hba;
}

Result<double> ClusteringDissimilarity(const std::vector<int>& a,
                                       const std::vector<int>& b) {
  MC_ASSIGN_OR_RETURN(double nmi,
                      NormalizedMutualInformation(a, b, NmiNorm::kSqrt));
  return 1.0 - nmi;
}

std::vector<int> HungarianAssign(
    const std::vector<std::vector<double>>& cost) {
  // Kuhn-Munkres (Jonker-style O(n^3) shortest augmenting path variant) on a
  // square padded matrix.
  const size_t rows = cost.size();
  size_t cols = 0;
  for (const auto& r : cost) cols = std::max(cols, r.size());
  const size_t n = std::max(rows, cols);
  const double kInf = std::numeric_limits<double>::infinity();

  auto c = [&](size_t i, size_t j) -> double {
    if (i < rows && j < cost[i].size()) return cost[i][j];
    return 0.0;  // padding
  };

  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<int> p(n + 1, 0), way(n + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    p[0] = static_cast<int>(i);
    size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<char> used(n + 1, false);
    do {
      used[j0] = true;
      const size_t i0 = p[j0];
      double delta = kInf;
      size_t j1 = 0;
      for (size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = c(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = static_cast<int>(j0);
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> assignment(rows, -1);
  for (size_t j = 1; j <= n; ++j) {
    if (p[j] > 0 && static_cast<size_t>(p[j]) <= rows &&
        j <= cols) {
      assignment[p[j] - 1] = static_cast<int>(j - 1);
    }
  }
  return assignment;
}

Result<double> BestMatchAccuracy(const std::vector<int>& truth,
                                 const std::vector<int>& predicted) {
  MC_ASSIGN_OR_RETURN(ContingencyTable t,
                      ContingencyTable::Build(predicted, truth));
  if (t.total() == 0) return 0.0;
  // Maximise matched counts == minimise negated counts.
  std::vector<std::vector<double>> cost(t.rows(),
                                        std::vector<double>(t.cols()));
  for (size_t i = 0; i < t.rows(); ++i) {
    for (size_t j = 0; j < t.cols(); ++j) {
      cost[i][j] = -static_cast<double>(t.at(i, j));
    }
  }
  const std::vector<int> assign = HungarianAssign(cost);
  double matched = 0.0;
  for (size_t i = 0; i < assign.size(); ++i) {
    if (assign[i] >= 0 && static_cast<size_t>(assign[i]) < t.cols()) {
      matched += static_cast<double>(t.at(i, assign[i]));
    }
  }
  return matched / static_cast<double>(t.total());
}

}  // namespace multiclust
