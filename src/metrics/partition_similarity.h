#ifndef MULTICLUST_METRICS_PARTITION_SIMILARITY_H_
#define MULTICLUST_METRICS_PARTITION_SIMILARITY_H_

#include <vector>

#include "common/result.h"

namespace multiclust {

/// Pair-counting and information-theoretic measures comparing two labelings
/// of the same objects. Noise labels (-1) are excluded everywhere. These are
/// the `Diss`/similarity functions of the tutorial's abstract problem
/// definition (slide 27): multiple clustering solutions are judged by how
/// *dissimilar* they are under these measures.

/// Rand index in [0, 1]; 1 = identical partitions.
Result<double> RandIndex(const std::vector<int>& a, const std::vector<int>& b);

/// Adjusted Rand index; 1 = identical, ~0 for independent partitions, can
/// be negative.
Result<double> AdjustedRandIndex(const std::vector<int>& a,
                                 const std::vector<int>& b);

/// Jaccard coefficient over object pairs, in [0, 1].
Result<double> JaccardIndex(const std::vector<int>& a,
                            const std::vector<int>& b);

/// Fowlkes-Mallows index (geometric mean of pair precision/recall).
Result<double> FowlkesMallows(const std::vector<int>& a,
                              const std::vector<int>& b);

/// Pair-counting F1 (harmonic mean of pair precision and recall).
Result<double> PairF1(const std::vector<int>& a, const std::vector<int>& b);

/// Normalised mutual information variants.
enum class NmiNorm {
  kMax,   ///< I / max(Ha, Hb)
  kMin,   ///< I / min(Ha, Hb)
  kSqrt,  ///< I / sqrt(Ha * Hb)
  kSum,   ///< 2 I / (Ha + Hb)
  kJoint, ///< I / H(a, b)
};

/// NMI in [0, 1] under the chosen normalisation; 0 when either labeling has
/// zero entropy and the labelings are independent; 1 for identical
/// partitions (for kMax/kSqrt/kSum/kMin).
Result<double> NormalizedMutualInformation(const std::vector<int>& a,
                                           const std::vector<int>& b,
                                           NmiNorm norm = NmiNorm::kSqrt);

/// Variation of information VI = H(A|B) + H(B|A) (nats); 0 = identical,
/// larger = more different. A proper metric on partitions.
Result<double> VariationOfInformation(const std::vector<int>& a,
                                      const std::vector<int>& b);

/// Dissimilarity in [0, 1] used as the library's default `Diss`:
/// 1 - NMI_sqrt. Symmetric, 0 for identical partitions.
Result<double> ClusteringDissimilarity(const std::vector<int>& a,
                                       const std::vector<int>& b);

/// Clustering "accuracy" against a ground truth: maximum achievable fraction
/// of correctly labeled objects under an optimal cluster->class assignment
/// (computed exactly via the Hungarian algorithm on the contingency table).
Result<double> BestMatchAccuracy(const std::vector<int>& truth,
                                 const std::vector<int>& predicted);

/// Solves the assignment problem: given a cost matrix (rows <= cols is not
/// required; the matrix is padded internally), returns for each row the
/// assigned column minimising total cost. Exposed for reuse/testing.
std::vector<int> HungarianAssign(const std::vector<std::vector<double>>& cost);

}  // namespace multiclust

#endif  // MULTICLUST_METRICS_PARTITION_SIMILARITY_H_
