#ifndef MULTICLUST_METRICS_MULTI_SOLUTION_H_
#define MULTICLUST_METRICS_MULTI_SOLUTION_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace multiclust {

/// Measures over *sets* of clusterings — the evaluation layer for multiple
/// clustering solutions that the tutorial calls for as an open challenge
/// (slide 123: "common quality assessment for multiple clusterings").

/// Mean pairwise dissimilarity (1 - NMI_sqrt) among the given labelings.
/// Returns 0 for fewer than two solutions.
Result<double> MeanPairwiseDissimilarity(
    const std::vector<std::vector<int>>& solutions);

/// Minimum pairwise dissimilarity — the redundancy bottleneck of a solution
/// set (low = at least two solutions are near-duplicates).
Result<double> MinPairwiseDissimilarity(
    const std::vector<std::vector<int>>& solutions);

/// Result of matching discovered solutions to planted ground truths.
struct SolutionMatch {
  /// For each truth t: index of the discovered solution assigned to it
  /// (-1 when there are fewer solutions than truths).
  std::vector<int> assignment;
  /// NMI of each truth with its assigned solution (0 when unassigned).
  std::vector<double> nmi;
  /// Mean of `nmi` — the headline recovery score in [0, 1].
  double mean_recovery = 0.0;
};

/// Optimally assigns discovered solutions to ground-truth clusterings
/// (Hungarian on the pairwise NMI matrix, maximising total NMI). This is how
/// the library scores "did we find *all* the planted views?".
Result<SolutionMatch> MatchSolutionsToTruths(
    const std::vector<std::vector<int>>& truths,
    const std::vector<std::vector<int>>& solutions);

/// Combined objective of the tutorial's abstract problem (slide 39):
/// sum of per-solution qualities plus `lambda` times the sum of pairwise
/// dissimilarities. `qualities[i]` must correspond to `solutions[i]`.
Result<double> CombinedObjective(
    const std::vector<std::vector<int>>& solutions,
    const std::vector<double>& qualities, double lambda);

}  // namespace multiclust

#endif  // MULTICLUST_METRICS_MULTI_SOLUTION_H_
