#include "subspace/predecon.h"

#include <cmath>

#include "cluster/dbscan.h"
#include "common/runguard.h"

namespace multiclust {

Result<Clustering> RunPredecon(const Matrix& data,
                               const PredeconOptions& options,
                               PredeconInfo* info) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("PreDeCon: empty data");
  }
  if (options.eps <= 0 || options.delta < 0 || options.kappa < 1 ||
      options.min_pts == 0) {
    return Status::InvalidArgument("PreDeCon: invalid parameters");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("PreDeCon", data));

  // 1. Full-space eps-neighbourhoods for preference estimation.
  const std::vector<std::vector<int>> base =
      EpsNeighborhoods(data, options.eps, {});

  // 2. Per-point preference weights from neighbourhood attribute variance.
  Matrix weights(n, d, 1.0);
  std::vector<size_t> pref_dims(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const std::vector<int>& nb = base[i];
    if (nb.size() < 2) continue;
    for (size_t j = 0; j < d; ++j) {
      double mean = 0.0;
      for (int q : nb) mean += data.at(q, j);
      mean /= static_cast<double>(nb.size());
      double var = 0.0;
      for (int q : nb) {
        const double diff = data.at(q, j) - mean;
        var += diff * diff;
      }
      var /= static_cast<double>(nb.size());
      if (var <= options.delta) {
        weights.at(i, j) = options.kappa;
        ++pref_dims[i];
      }
    }
  }

  // 3. Preference-weighted symmetric neighbourhoods: q is in p's weighted
  // neighbourhood when the *general* preference distance
  // max(dist_p(p, q), dist_q(q, p)) <= eps.
  const double eps2 = options.eps * options.eps;
  auto directed_dist2 = [&](size_t p, size_t q) {
    const double* a = data.row_data(p);
    const double* b = data.row_data(q);
    double s = 0.0;
    for (size_t j = 0; j < d; ++j) {
      const double diff = a[j] - b[j];
      s += weights.at(p, j) * diff * diff;
    }
    return s;
  };
  std::vector<std::vector<int>> weighted(n);
  for (size_t i = 0; i < n; ++i) weighted[i].push_back(static_cast<int>(i));
  for (size_t i = 0; i < n; ++i) {
    // Candidates only from the unweighted neighbourhood (weights >= 1, so
    // the weighted distance can only grow).
    for (int q : base[i]) {
      if (q <= static_cast<int>(i)) continue;
      const double dist2 =
          std::max(directed_dist2(i, q), directed_dist2(q, i));
      if (dist2 <= eps2) {
        weighted[i].push_back(q);
        weighted[q].push_back(static_cast<int>(i));
      }
    }
  }

  // 4. Core predicate: weighted neighbourhood size plus the preference
  // dimensionality cap; non-cores keep their (possibly large) lists but
  // cannot seed clusters, which DbscanFromNeighbors expresses through the
  // min_pts threshold — enforce the lambda cap by truncating the lists of
  // over-preferring points below the core threshold.
  if (options.max_pref_dims > 0) {
    for (size_t i = 0; i < n; ++i) {
      if (pref_dims[i] > options.max_pref_dims &&
          weighted[i].size() >= options.min_pts) {
        weighted[i].resize(options.min_pts - 1);
      }
    }
  }

  Clustering result = DbscanFromNeighbors(weighted, options.min_pts);
  result.algorithm = "predecon";
  if (info != nullptr) {
    info->preference_dims = std::move(pref_dims);
  }
  return result;
}

}  // namespace multiclust
