#include "subspace/osclu.h"

#include <algorithm>
#include <set>

namespace multiclust {

LocalInterestFn DefaultLocalInterest() {
  return [](const SubspaceCluster& c) {
    return static_cast<double>(c.support()) *
           static_cast<double>(c.dimensionality());
  };
}

bool CoversSubspace(const std::vector<size_t>& s, const std::vector<size_t>& t,
                    double beta) {
  if (t.empty()) return true;
  size_t overlap = 0;
  size_t i = 0, j = 0;
  while (i < s.size() && j < t.size()) {
    if (s[i] == t[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (s[i] < t[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return static_cast<double>(overlap) >=
         beta * static_cast<double>(t.size());
}

double GlobalInterest(const SubspaceCluster& c,
                      const std::vector<SubspaceCluster>& m, double beta) {
  if (c.objects.empty()) return 0.0;
  // Objects of c already clustered by concept-group members in m.
  std::set<int> covered;
  for (const SubspaceCluster& other : m) {
    // `other` belongs to c's concept group when the subspaces cover each
    // other at level beta (similar concepts share a high fraction of
    // dimensions).
    if (!CoversSubspace(c.dims, other.dims, beta) &&
        !CoversSubspace(other.dims, c.dims, beta)) {
      continue;
    }
    for (int obj : other.objects) covered.insert(obj);
  }
  size_t fresh = 0;
  for (int obj : c.objects) {
    if (covered.find(obj) == covered.end()) ++fresh;
  }
  return static_cast<double>(fresh) / static_cast<double>(c.objects.size());
}

Result<SubspaceClustering> RunOsclu(const SubspaceClustering& candidates,
                                    const OscluOptions& options) {
  if (options.beta <= 0.0 || options.beta > 1.0) {
    return Status::InvalidArgument("OSCLU: beta must be in (0, 1]");
  }
  if (options.alpha <= 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("OSCLU: alpha must be in (0, 1]");
  }
  const LocalInterestFn interest =
      options.local_interest ? options.local_interest : DefaultLocalInterest();

  // Greedy: consider candidates by descending local interestingness; accept
  // a candidate when it stays orthogonal (alpha-fresh) against the current
  // selection *and* does not break the constraint for already-selected
  // clusters.
  std::vector<size_t> order(candidates.clusters.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return interest(candidates.clusters[a]) > interest(candidates.clusters[b]);
  });

  SubspaceClustering selected;
  for (size_t idx : order) {
    const SubspaceCluster& cand = candidates.clusters[idx];
    if (GlobalInterest(cand, selected.clusters, options.beta) <
        options.alpha) {
      continue;
    }
    // Re-check the constraint for current members with the candidate added.
    bool breaks_existing = false;
    std::vector<SubspaceCluster> tentative = selected.clusters;
    tentative.push_back(cand);
    for (size_t i = 0; i < selected.clusters.size() && !breaks_existing;
         ++i) {
      std::vector<SubspaceCluster> others;
      others.reserve(tentative.size() - 1);
      for (size_t j = 0; j < tentative.size(); ++j) {
        if (j != i) others.push_back(tentative[j]);
      }
      if (GlobalInterest(selected.clusters[i], others, options.beta) <
          options.alpha) {
        breaks_existing = true;
      }
    }
    if (!breaks_existing) {
      SubspaceCluster kept = cand;
      kept.source = "osclu(" + cand.source + ")";
      selected.clusters.push_back(std::move(kept));
    }
  }
  return selected;
}

}  // namespace multiclust
