#include "subspace/subspace_cluster.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <utility>

namespace multiclust {

size_t SubspaceCluster::ObjectOverlap(const SubspaceCluster& other) const {
  size_t count = 0;
  size_t i = 0, j = 0;
  while (i < objects.size() && j < other.objects.size()) {
    if (objects[i] == other.objects[j]) {
      ++count;
      ++i;
      ++j;
    } else if (objects[i] < other.objects[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

size_t SubspaceCluster::DimOverlap(const SubspaceCluster& other) const {
  size_t count = 0;
  size_t i = 0, j = 0;
  while (i < dims.size() && j < other.dims.size()) {
    if (dims[i] == other.dims[j]) {
      ++count;
      ++i;
      ++j;
    } else if (dims[i] < other.dims[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

std::vector<std::vector<size_t>> SubspaceClustering::GroupBySubspace() const {
  std::map<std::vector<size_t>, std::vector<size_t>> by_subspace;
  for (size_t i = 0; i < clusters.size(); ++i) {
    by_subspace[clusters[i].dims].push_back(i);
  }
  std::vector<std::vector<size_t>> groups;
  groups.reserve(by_subspace.size());
  for (auto& [dims, idx] : by_subspace) groups.push_back(std::move(idx));
  return groups;
}

std::vector<int> SubspaceClustering::LabelsForGroup(
    const std::vector<size_t>& group, size_t num_objects) const {
  std::vector<int> labels(num_objects, -1);
  int next = 0;
  for (size_t idx : group) {
    for (int obj : clusters[idx].objects) {
      if (obj >= 0 && static_cast<size_t>(obj) < num_objects) {
        labels[obj] = next;
      }
    }
    ++next;
  }
  return labels;
}

size_t SubspaceClustering::NumSubspaces() const {
  std::set<std::vector<size_t>> subspaces;
  for (const SubspaceCluster& c : clusters) subspaces.insert(c.dims);
  return subspaces.size();
}

Result<double> SubspacePairF1(const SubspaceClustering& found,
                              const std::vector<int>& truth) {
  const size_t n = truth.size();
  if (n == 0) return Status::InvalidArgument("SubspacePairF1: empty truth");
  // Predicted co-clustered pairs: union over found clusters.
  std::set<std::pair<int, int>> predicted;
  for (const SubspaceCluster& c : found.clusters) {
    for (size_t i = 0; i < c.objects.size(); ++i) {
      for (size_t j = i + 1; j < c.objects.size(); ++j) {
        predicted.emplace(c.objects[i], c.objects[j]);
      }
    }
  }
  double truth_pairs = 0.0, hit = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (truth[i] < 0) continue;
    for (size_t j = i + 1; j < n; ++j) {
      if (truth[j] != truth[i]) continue;
      truth_pairs += 1.0;
      if (predicted.count({static_cast<int>(i), static_cast<int>(j)})) {
        hit += 1.0;
      }
    }
  }
  double correct_predicted = 0.0;
  for (const auto& [a, b] : predicted) {
    if (truth[a] >= 0 && truth[a] == truth[b]) correct_predicted += 1.0;
  }
  if (predicted.empty() || truth_pairs == 0.0) return 0.0;
  const double precision =
      correct_predicted / static_cast<double>(predicted.size());
  const double recall = hit / truth_pairs;
  if (precision + recall <= 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

std::vector<SubspaceCluster> UnitsToClusters(
    const std::vector<GridUnit>& units, const std::string& source) {
  // Group unit indices by subspace.
  std::map<std::vector<size_t>, std::vector<size_t>> by_subspace;
  for (size_t i = 0; i < units.size(); ++i) {
    by_subspace[units[i].Dims()].push_back(i);
  }

  std::vector<SubspaceCluster> clusters;
  for (const auto& [dims, idx] : by_subspace) {
    // Union-find over units of this subspace; two units are adjacent when
    // their intervals differ by exactly one step in one dimension and match
    // elsewhere.
    const size_t m = idx.size();
    std::vector<size_t> parent(m);
    for (size_t i = 0; i < m; ++i) parent[i] = i;
    std::function<size_t(size_t)> find = [&](size_t x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    auto unite = [&](size_t a, size_t b) { parent[find(a)] = find(b); };

    for (size_t a = 0; a < m; ++a) {
      for (size_t b = a + 1; b < m; ++b) {
        const auto& ca = units[idx[a]].constraints;
        const auto& cb = units[idx[b]].constraints;
        int diff_steps = 0;
        bool adjacent = true;
        for (size_t p = 0; p < ca.size(); ++p) {
          const int delta = ca[p].second - cb[p].second;
          if (delta == 0) continue;
          if (delta == 1 || delta == -1) {
            ++diff_steps;
            if (diff_steps > 1) {
              adjacent = false;
              break;
            }
          } else {
            adjacent = false;
            break;
          }
        }
        if (adjacent && diff_steps == 1) unite(a, b);
      }
    }

    std::map<size_t, SubspaceCluster> components;
    for (size_t a = 0; a < m; ++a) {
      const size_t root = find(a);
      SubspaceCluster& c = components[root];
      if (c.dims.empty()) {
        c.dims = dims;
        c.source = source;
      }
      c.objects.insert(c.objects.end(), units[idx[a]].objects.begin(),
                       units[idx[a]].objects.end());
    }
    for (auto& [root, c] : components) {
      std::sort(c.objects.begin(), c.objects.end());
      c.objects.erase(std::unique(c.objects.begin(), c.objects.end()),
                      c.objects.end());
      clusters.push_back(std::move(c));
    }
  }
  return clusters;
}

}  // namespace multiclust
