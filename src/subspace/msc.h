#ifndef MULTICLUST_SUBSPACE_MSC_H_
#define MULTICLUST_SUBSPACE_MSC_H_

#include <cstdint>
#include <vector>

#include <string>

#include "cluster/clustering.h"
#include "common/result.h"
#include "common/runguard.h"
#include "core/solution_set.h"
#include "linalg/matrix.h"

namespace multiclust {

/// Options for multiple non-redundant spectral clustering views
/// (after Niu & Dy 2010, tutorial slide 90). This implementation is the
/// axis-aligned variant: dimensions are partitioned into statistically
/// independent groups using the Hilbert-Schmidt Independence Criterion
/// (the same dependence measure mSC penalises), then each group is
/// clustered spectrally.
struct MscOptions {
  /// Number of views (subspace blocks) to extract.
  size_t num_views = 2;
  /// Clusters per view.
  size_t k = 2;
  /// RBF parameter for both HSIC and the spectral affinities
  /// (<= 0 = median heuristic).
  double gamma = 0.0;
  uint64_t seed = 1;
  /// Wall-clock / cancellation limits; the remaining deadline is forwarded
  /// to each per-view spectral run.
  RunBudget budget;
  /// Optional observability sink (not owned): forwarded to every per-view
  /// spectral run, whose embedded k-means traces accumulate in it. The
  /// algorithm is reported as "msc". nullptr (the default) records nothing.
  RunDiagnostics* diagnostics = nullptr;
};

/// One extracted view.
struct MscView {
  std::vector<size_t> dims;
  Clustering clustering;
};

/// Full result.
struct MscResult {
  std::vector<MscView> views;
  SolutionSet solutions;
  /// Pairwise HSIC between single dimensions (for inspection).
  Matrix dim_dependence;
  /// Views skipped because their spectral run failed recoverably or the
  /// budget expired; empty on a clean run. The surviving views are still
  /// returned (graceful degradation).
  std::vector<std::string> warnings;
};

/// Partitions the dimensions into `num_views` blocks by average-link
/// agglomeration on pairwise HSIC *similarity* (dependent dims end up in
/// the same view; independent dims are split apart), then runs spectral
/// clustering inside each block. The result is one clustering per view,
/// with view dissimilarity enforced through subspace independence rather
/// than through an explicit Diss(C1, C2) term.
Result<MscResult> RunMultipleSpectralViews(const Matrix& data,
                                           const MscOptions& options);

}  // namespace multiclust

#endif  // MULTICLUST_SUBSPACE_MSC_H_
