#include "subspace/doc.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/runguard.h"

namespace multiclust {

double DocQuality(size_t support, size_t dims, double beta) {
  return static_cast<double>(support) *
         std::pow(1.0 / beta, static_cast<double>(dims));
}

Result<SubspaceClustering> RunDoc(const Matrix& data,
                                  const DocOptions& options) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  if (n == 0 || d == 0) return Status::InvalidArgument("DOC: empty data");
  if (options.w <= 0) return Status::InvalidArgument("DOC: w must be > 0");
  if (options.beta <= 0 || options.beta > 0.5) {
    return Status::InvalidArgument("DOC: beta must be in (0, 0.5]");
  }
  if (options.discriminating_set == 0) {
    return Status::InvalidArgument("DOC: discriminating set must be > 0");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("DOC", data));

  Rng rng(options.seed);
  std::vector<char> removed(n, 0);
  size_t remaining = n;
  SubspaceClustering result;

  for (size_t round = 0; round < options.k && remaining > options.min_support;
       ++round) {
    double best_quality = 0.0;
    std::vector<size_t> best_dims;
    std::vector<int> best_objects;

    // Active object ids.
    std::vector<int> active;
    active.reserve(remaining);
    for (size_t i = 0; i < n; ++i) {
      if (!removed[i]) active.push_back(static_cast<int>(i));
    }

    for (size_t outer = 0; outer < options.outer_trials; ++outer) {
      const int medoid = active[rng.NextIndex(active.size())];
      for (size_t inner = 0; inner < options.inner_trials; ++inner) {
        // Random discriminating set (excluding the medoid is not
        // essential; keep it simple and allow it).
        std::vector<size_t> dims;
        {
          const std::vector<size_t> picks = rng.SampleWithoutReplacement(
              active.size(), std::min(options.discriminating_set,
                                      active.size()));
          // D = dims where every sampled point is within w of the medoid.
          for (size_t j = 0; j < d; ++j) {
            bool all_close = true;
            for (size_t p : picks) {
              if (std::fabs(data.at(active[p], j) - data.at(medoid, j)) >
                  options.w) {
                all_close = false;
                break;
              }
            }
            if (all_close) dims.push_back(j);
          }
        }
        if (dims.empty()) continue;
        // C = active objects within w of the medoid on all dims of D.
        std::vector<int> objects;
        for (int obj : active) {
          bool inside = true;
          for (size_t j : dims) {
            if (std::fabs(data.at(obj, j) - data.at(medoid, j)) >
                options.w) {
              inside = false;
              break;
            }
          }
          if (inside) objects.push_back(obj);
        }
        if (objects.size() < options.min_support) continue;
        const double q = DocQuality(objects.size(), dims.size(),
                                    options.beta);
        if (q > best_quality) {
          best_quality = q;
          best_dims = std::move(dims);
          best_objects = std::move(objects);
        }
      }
    }

    if (best_objects.empty()) break;
    for (int obj : best_objects) {
      removed[obj] = 1;
    }
    remaining -= best_objects.size();
    std::sort(best_objects.begin(), best_objects.end());
    result.clusters.push_back(
        {std::move(best_dims), std::move(best_objects), "doc"});
  }
  return result;
}

}  // namespace multiclust
