#include "subspace/proclus.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>
#include <utility>

#include "common/checkpoint.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"

namespace multiclust {

namespace {

double SubspaceManhattan(const Matrix& data, size_t i, size_t medoid,
                         const std::vector<size_t>& dims) {
  const double* a = data.row_data(i);
  const double* b = data.row_data(medoid);
  double s = 0.0;
  for (size_t d : dims) s += std::fabs(a[d] - b[d]);
  return s / static_cast<double>(dims.size());
}

double FullDistance(const Matrix& data, size_t i, size_t j) {
  const double* a = data.row_data(i);
  const double* b = data.row_data(j);
  double s = 0.0;
  for (size_t d = 0; d < data.cols(); ++d) {
    const double diff = a[d] - b[d];
    s += diff * diff;
  }
  return std::sqrt(s);
}

// Checkpoint state between medoid-search rounds. The candidate pool is
// serialized (not recomputed) because building it consumes the rng stream
// the loop's bad-medoid replacement continues from.
struct ProclusCkptState {
  size_t step = 0;
  size_t next_iter = 0;
  Rng rng;
  std::vector<size_t> pool;
  std::vector<size_t> medoids;
  bool has_best = false;  // best_cost starts at +inf, unrepresentable in JSON
  std::vector<int> best_labels;
  std::vector<std::vector<size_t>> best_dims;
  double best_cost = 0.0;
  size_t iterations = 0;
  ConvergenceTrace trace;
};

void WriteProclusPayload(json::Writer* w, const ProclusCkptState& s) {
  w->BeginObject();
  w->Key("step");
  w->Uint(s.step);
  w->Key("next_iter");
  w->Uint(s.next_iter);
  w->Key("rng");
  ckpt::WriteRng(w, s.rng);
  w->Key("pool");
  ckpt::WriteSizeVector(w, s.pool);
  w->Key("medoids");
  ckpt::WriteSizeVector(w, s.medoids);
  w->Key("has_best");
  w->Bool(s.has_best);
  if (s.has_best) {
    w->Key("best_labels");
    ckpt::WriteIntVector(w, s.best_labels);
    w->Key("best_dims");
    w->BeginArray();
    for (const std::vector<size_t>& dims : s.best_dims) {
      ckpt::WriteSizeVector(w, dims);
    }
    w->EndArray();
    w->Key("best_cost");
    w->Double(s.best_cost);
  }
  w->Key("iterations");
  w->Uint(s.iterations);
  w->Key("trace");
  ckpt::WriteTrace(w, s.trace);
  w->EndObject();
}

Status ReadProclusPayload(const json::Value& v, ProclusCkptState* s) {
  MC_ASSIGN_OR_RETURN(s->step, ckpt::SizeField(v, "step"));
  MC_ASSIGN_OR_RETURN(s->next_iter, ckpt::SizeField(v, "next_iter"));
  MC_ASSIGN_OR_RETURN(const json::Value* rng, ckpt::Field(v, "rng"));
  MC_ASSIGN_OR_RETURN(s->rng, ckpt::ReadRng(*rng));
  MC_ASSIGN_OR_RETURN(const json::Value* pool, ckpt::Field(v, "pool"));
  MC_ASSIGN_OR_RETURN(s->pool, ckpt::ReadSizeVector(*pool));
  MC_ASSIGN_OR_RETURN(const json::Value* med, ckpt::Field(v, "medoids"));
  MC_ASSIGN_OR_RETURN(s->medoids, ckpt::ReadSizeVector(*med));
  MC_ASSIGN_OR_RETURN(s->has_best, ckpt::BoolField(v, "has_best"));
  if (s->has_best) {
    MC_ASSIGN_OR_RETURN(const json::Value* bl, ckpt::Field(v, "best_labels"));
    MC_ASSIGN_OR_RETURN(s->best_labels, ckpt::ReadIntVector(*bl));
    MC_ASSIGN_OR_RETURN(const json::Value* bd, ckpt::Field(v, "best_dims"));
    if (!bd->is_array()) {
      return Status::ComputationError(
          "checkpoint: PROCLUS best_dims malformed");
    }
    for (const json::Value& dims : bd->array_items()) {
      MC_ASSIGN_OR_RETURN(std::vector<size_t> ds, ckpt::ReadSizeVector(dims));
      s->best_dims.push_back(std::move(ds));
    }
    MC_ASSIGN_OR_RETURN(s->best_cost, ckpt::NumberField(v, "best_cost"));
  }
  MC_ASSIGN_OR_RETURN(s->iterations, ckpt::SizeField(v, "iterations"));
  MC_ASSIGN_OR_RETURN(const json::Value* tr, ckpt::Field(v, "trace"));
  MC_ASSIGN_OR_RETURN(s->trace, ckpt::ReadTrace(*tr));
  return Status::OK();
}

uint64_t ProclusFingerprint(const Matrix& data,
                            const ProclusOptions& options) {
  Fingerprint fp;
  fp.Mix("proclus");
  fp.Mix(static_cast<uint64_t>(options.k));
  fp.Mix(static_cast<uint64_t>(options.avg_dims));
  fp.Mix(static_cast<uint64_t>(options.a_factor));
  fp.Mix(static_cast<uint64_t>(options.max_iters));
  fp.Mix(options.seed);
  fp.Mix(static_cast<uint64_t>(options.budget.max_iterations));
  fp.Mix(data);
  return fp.value();
}

}  // namespace

SubspaceClustering ProclusResult::AsSubspaceClustering() const {
  SubspaceClustering out;
  const size_t k = dims.size();
  std::vector<SubspaceCluster> clusters(k);
  for (size_t c = 0; c < k; ++c) {
    clusters[c].dims = dims[c];
    std::sort(clusters[c].dims.begin(), clusters[c].dims.end());
    clusters[c].source = "proclus";
  }
  for (size_t i = 0; i < clustering.labels.size(); ++i) {
    const int l = clustering.labels[i];
    if (l >= 0 && static_cast<size_t>(l) < k) {
      clusters[l].objects.push_back(static_cast<int>(i));
    }
  }
  out.clusters = std::move(clusters);
  return out;
}

Result<ProclusResult> RunProclus(const Matrix& data,
                                 const ProclusOptions& options) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  if (options.k == 0 || options.k > n) {
    return Status::InvalidArgument("PROCLUS: invalid k");
  }
  if (options.avg_dims < 2 || options.avg_dims > d) {
    return Status::InvalidArgument(
        "PROCLUS: avg_dims must be in [2, num dims]");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("PROCLUS", data));
  MULTICLUST_TRACE_SPAN("subspace.proclus.run");
  BudgetTracker guard(options.budget, "proclus");
  ConvergenceRecorder recorder(options.diagnostics, &guard);
  recorder.SetExpectedIterations(
      options.budget.max_iterations != 0
          ? std::min(options.max_iters, options.budget.max_iterations)
          : options.max_iters);
  Rng rng(options.seed);
  const size_t k = options.k;

  std::vector<size_t> pool;
  std::vector<size_t> medoids;
  std::vector<int> best_labels(n, -1);
  std::vector<std::vector<size_t>> best_dims(k);
  double best_cost = std::numeric_limits<double>::infinity();
  size_t iterations = 0;
  bool stopped_early = false;
  size_t start_iter = 0;

  // --- Checkpoint/resume ----------------------------------------------
  Checkpointer* ckp = options.budget.checkpoint;
  const uint64_t fp = ckp != nullptr ? ProclusFingerprint(data, options) : 0;
  size_t ckpt_step = 0;
  bool resumed = false;
  if (ckp != nullptr) {
    if (auto restored = ckp->TryRestore("proclus", fp, options.diagnostics)) {
      ProclusCkptState state;
      const Status parsed = ReadProclusPayload(restored->payload, &state);
      if (parsed.ok() && state.medoids.size() == k &&
          state.best_labels.size() == (state.has_best ? n : 0)) {
        rng = state.rng;
        pool = std::move(state.pool);
        medoids = std::move(state.medoids);
        if (state.has_best) {
          best_labels = std::move(state.best_labels);
          best_dims = std::move(state.best_dims);
          best_cost = state.best_cost;
        }
        iterations = state.iterations;
        start_iter = state.next_iter;
        ckpt_step = state.step;
        resumed = true;
        if (options.diagnostics != nullptr) {
          options.diagnostics->trace = state.trace;
        }
      } else {
        AddWarning(options.diagnostics, "proclus",
                   "checkpoint payload rejected (" +
                       (parsed.ok() ? std::string("state shape mismatch")
                                    : parsed.message()) +
                       "); cold start");
      }
    }
  }

  if (!resumed) {
    // --- Initialisation: greedy farthest-point candidate pool. ---
    const size_t pool_size = std::min(n, options.a_factor * k);
    pool.push_back(rng.NextIndex(n));
    std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());
    while (pool.size() < pool_size) {
      for (size_t i = 0; i < n; ++i) {
        min_dist[i] =
            std::min(min_dist[i], FullDistance(data, i, pool.back()));
      }
      size_t farthest = 0;
      for (size_t i = 1; i < n; ++i) {
        if (min_dist[i] > min_dist[farthest]) farthest = i;
      }
      pool.push_back(farthest);
    }
    // Current medoids: the first k pool members.
    medoids.assign(pool.begin(), pool.begin() + k);
  }

  // The pool/labels/trace capture lives inside the payload writer, so an
  // armed-but-not-due persistence point pays only the policy check.
  auto snapshot = [&](size_t next_iter, bool flush) -> Status {
    auto payload = [&](json::Writer* w) {
      ProclusCkptState s;
      s.step = ckpt_step;
      s.next_iter = next_iter;
      s.rng = rng;
      s.pool = pool;
      s.medoids = medoids;
      s.has_best = std::isfinite(best_cost);
      if (s.has_best) {
        s.best_labels = best_labels;
        s.best_dims = best_dims;
        s.best_cost = best_cost;
      }
      s.iterations = iterations;
      if (options.diagnostics != nullptr) s.trace = options.diagnostics->trace;
      WriteProclusPayload(w, s);
    };
    Status st = flush ? ckp->Flush("proclus", fp, payload)
                      : ckp->AtPersistencePoint("proclus", fp, ckpt_step,
                                                payload);
    ++ckpt_step;
    return flush ? Status::OK() : st;
  };
  // ---------------------------------------------------------------------

  for (size_t iter = start_iter; iter < options.max_iters; ++iter) {
    if (guard.Cancelled()) {
      if (ckp != nullptr) (void)snapshot(iter, /*flush=*/true);
      return guard.CancelledStatus();
    }
    if (guard.ShouldStop(iter)) {
      stopped_early = true;
      break;
    }
    iterations = iter + 1;
    MC_METRIC_COUNT("subspace.proclus.iterations", 1);
    MULTICLUST_TRACE_SPAN("subspace.proclus.round");
    // --- Dimension selection per medoid. ---
    // Locality: points closer to this medoid than to any other.
    std::vector<double> locality_radius(k,
                                        std::numeric_limits<double>::infinity());
    for (size_t a = 0; a < k; ++a) {
      for (size_t b = 0; b < k; ++b) {
        if (a == b) continue;
        locality_radius[a] = std::min(
            locality_radius[a], FullDistance(data, medoids[a], medoids[b]));
      }
    }
    // Mean absolute deviation per (medoid, dim) over the locality.
    std::vector<std::vector<double>> x(k, std::vector<double>(d, 0.0));
    std::vector<size_t> local_counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t c = 0; c < k; ++c) {
        if (FullDistance(data, i, medoids[c]) <= locality_radius[c]) {
          ++local_counts[c];
          const double* row = data.row_data(i);
          const double* m = data.row_data(medoids[c]);
          for (size_t j = 0; j < d; ++j) x[c][j] += std::fabs(row[j] - m[j]);
        }
      }
    }
    // z-score of each (c, j) against the per-medoid mean/std.
    struct Entry {
      double z;
      size_t c;
      size_t j;
    };
    std::vector<Entry> entries;
    for (size_t c = 0; c < k; ++c) {
      if (local_counts[c] == 0) continue;
      for (size_t j = 0; j < d; ++j) {
        x[c][j] /= static_cast<double>(local_counts[c]);
      }
      double mean = 0.0;
      for (size_t j = 0; j < d; ++j) mean += x[c][j];
      mean /= static_cast<double>(d);
      double var = 0.0;
      for (size_t j = 0; j < d; ++j) {
        var += (x[c][j] - mean) * (x[c][j] - mean);
      }
      const double sd = std::sqrt(var / std::max<size_t>(1, d - 1)) + 1e-12;
      for (size_t j = 0; j < d; ++j) {
        entries.push_back({(x[c][j] - mean) / sd, c, j});
      }
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.z < b.z; });

    // Pick 2 dims per medoid first, then greedily the globally best until
    // k * avg_dims dims are assigned.
    std::vector<std::vector<size_t>> dims(k);
    const size_t total_dims = k * options.avg_dims;
    size_t assigned = 0;
    for (const Entry& e : entries) {
      if (dims[e.c].size() < 2) {
        dims[e.c].push_back(e.j);
        ++assigned;
      }
    }
    for (const Entry& e : entries) {
      if (assigned >= total_dims) break;
      if (std::find(dims[e.c].begin(), dims[e.c].end(), e.j) !=
          dims[e.c].end()) {
        continue;
      }
      dims[e.c].push_back(e.j);
      ++assigned;
    }

    // --- Assignment by Manhattan segmental distance. ---
    std::vector<int> labels(n, -1);
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < k; ++c) {
        if (dims[c].empty()) continue;
        const double dist = SubspaceManhattan(data, i, medoids[c], dims[c]);
        if (dist < best) {
          best = dist;
          labels[i] = static_cast<int>(c);
        }
      }
    }

    // --- Evaluation: mean within-cluster segmental deviation. ---
    double cost = 0.0;
    std::vector<size_t> sizes(k, 0);
    for (size_t i = 0; i < n; ++i) {
      if (labels[i] < 0) continue;
      ++sizes[labels[i]];
      cost += SubspaceManhattan(data, i, medoids[labels[i]],
                                dims[labels[i]]);
    }
    if (MC_FAULT_FIRES("proclus", FaultKind::kInjectNaN, iter)) {
      cost = std::numeric_limits<double>::quiet_NaN();
    }
    if (MC_FAULT_FIRES("proclus", FaultKind::kAllocFail, iter)) {
      return Status::ComputationError(
          "PROCLUS: injected allocation failure growing the per-cluster "
          "dimension sets at iteration " + std::to_string(iter));
    }
    if (!std::isfinite(cost)) {
      return Status::ComputationError(
          "PROCLUS: non-finite segmental cost at iteration " +
          std::to_string(iter));
    }
    if (recorder.enabled()) {
      const double delta =
          std::isfinite(best_cost) ? std::fabs(best_cost - cost) : 0.0;
      recorder.Record(0, iter, cost, delta, 0);
    }
    if (cost < best_cost) {
      best_cost = cost;
      best_labels = labels;
      best_dims = dims;
    }

    // --- Replace the medoid of the smallest cluster with a random pool
    //     member (the paper's bad-medoid replacement). ---
    size_t worst = 0;
    for (size_t c = 1; c < k; ++c) {
      if (sizes[c] < sizes[worst]) worst = c;
    }
    medoids[worst] = pool[rng.NextIndex(pool.size())];
    // Persistence point: the round is complete (best-so-far updated, bad
    // medoid replaced). Persisting after the final round is harmless — a
    // resume falls straight through to result construction.
    if (ckp != nullptr) {
      MC_RETURN_IF_ERROR(snapshot(iter + 1, /*flush=*/false));
    }
  }

  recorder.Finish("proclus", iterations, !stopped_early);
  ProclusResult result;
  result.clustering.labels = std::move(best_labels);
  result.clustering.algorithm = "proclus";
  result.clustering.quality = -best_cost;
  result.clustering.iterations = iterations;
  // PROCLUS is a fixed-round medoid search, so "converged" means the full
  // schedule ran rather than being cut short by a budget.
  result.clustering.converged = !stopped_early;
  result.dims = std::move(best_dims);
  return result;
}

}  // namespace multiclust
