#ifndef MULTICLUST_SUBSPACE_ASCLU_H_
#define MULTICLUST_SUBSPACE_ASCLU_H_

#include "common/result.h"
#include "subspace/osclu.h"
#include "subspace/subspace_cluster.h"

namespace multiclust {

/// Options for ASCLU (Günnemann et al. 2010; tutorial slides 86-87).
struct AscluOptions {
  /// OSCLU parameters used for the internal orthogonal selection.
  OscluOptions osclu;
  /// Alternative-validity threshold: a candidate is a valid alternative to
  /// `known` when at least this fraction of its objects is not already
  /// clustered by concept-group members of the known clustering.
  double alpha_known = 0.5;
};

/// Whether `c` is a valid alternative cluster w.r.t. the known clusters
/// (slide 87): |O \ AlreadyClustered(Known, C)| / |O| >= alpha, where
/// AlreadyClustered collects the objects of known clusters in C's concept
/// group (subspace coverage at level beta).
bool IsValidAlternative(const SubspaceCluster& c,
                        const SubspaceClustering& known, double beta,
                        double alpha);

/// ASCLU: alternative subspace clustering. Filters the candidate clusters
/// to valid alternatives of `known`, then runs the OSCLU orthogonal
/// selection on the survivors — yielding a result set that is orthogonal
/// *and* genuinely new relative to the given knowledge.
Result<SubspaceClustering> RunAsclu(const SubspaceClustering& candidates,
                                    const SubspaceClustering& known,
                                    const AscluOptions& options);

}  // namespace multiclust

#endif  // MULTICLUST_SUBSPACE_ASCLU_H_
