#include "subspace/orclus.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "linalg/decomposition.h"

namespace multiclust {

double ProjectedSquaredDistance(const std::vector<double>& x,
                                const std::vector<double>& centroid,
                                const Matrix& basis) {
  double total = 0.0;
  for (size_t c = 0; c < basis.cols(); ++c) {
    double dot = 0.0;
    for (size_t j = 0; j < basis.rows() && j < x.size(); ++j) {
      dot += basis.at(j, c) * (x[j] - centroid[j]);
    }
    total += dot * dot;
  }
  return total;
}

namespace {

struct Group {
  std::vector<double> centroid;
  Matrix basis;  // d x q least-spread eigenvectors
  std::vector<int> members;
};

// Last q identity axes: the degenerate-group / failed-eigensolve fallback.
Matrix AxisFallbackBasis(size_t d, size_t q) {
  Matrix basis(d, q);
  for (size_t c = 0; c < q; ++c) basis.at(d - 1 - c, c) = 1.0;
  return basis;
}

// Least-spread orthonormal basis (q smallest-eigenvalue eigenvectors of the
// member covariance). Never fails: tiny groups, rank-deficient covariances
// and eigensolver breakdowns all degrade to the identity-axis basis so a
// single degenerate group cannot abort the whole run.
Matrix LeastSpreadBasis(const Matrix& data, const std::vector<int>& members,
                        size_t q) {
  const size_t d = data.cols();
  q = std::min(q, d);
  if (members.size() < 2) return AxisFallbackBasis(d, q);
  std::vector<size_t> rows(members.begin(), members.end());
  const Matrix sub = data.SelectRows(rows);
  Matrix cov = Covariance(sub);
  // Ridge regularisation: a collapsed group (duplicate points, members
  // confined to a hyperplane) yields a singular covariance on which the
  // Jacobi sweep can stall. The jitter is orders of magnitude below any
  // meaningful spread and leaves the eigenvectors of well-conditioned
  // covariances untouched to ~1e-10.
  double trace = 0.0;
  for (size_t j = 0; j < d; ++j) trace += cov.at(j, j);
  const double ridge = 1e-10 * (trace / static_cast<double>(d)) + 1e-12;
  for (size_t j = 0; j < d; ++j) cov.at(j, j) += ridge;
  Result<SymmetricEigen> eig = EigenSymmetric(cov);
  if (!eig.ok()) return AxisFallbackBasis(d, q);
  // Eigenvalues are sorted descending; take the trailing q columns.
  Matrix basis(d, q);
  for (size_t c = 0; c < q; ++c) {
    for (size_t j = 0; j < d; ++j) {
      const double v = eig->vectors.at(j, d - q + c);
      if (!std::isfinite(v)) return AxisFallbackBasis(d, q);
      basis.at(j, c) = v;
    }
  }
  return basis;
}

std::vector<double> CentroidOf(const Matrix& data,
                               const std::vector<int>& members) {
  std::vector<double> c(data.cols(), 0.0);
  if (members.empty()) return c;
  for (int m : members) {
    const double* row = data.row_data(m);
    for (size_t j = 0; j < data.cols(); ++j) c[j] += row[j];
  }
  for (double& x : c) x /= static_cast<double>(members.size());
  return c;
}

// Mean projected energy of a hypothetical merge of groups a and b in the
// merged group's own least-spread q-dim subspace (ORCLUS's merge cost).
Result<double> MergeCost(const Matrix& data, const Group& a, const Group& b,
                         size_t q) {
  std::vector<int> merged = a.members;
  merged.insert(merged.end(), b.members.begin(), b.members.end());
  if (merged.empty()) return 0.0;
  const Matrix basis = LeastSpreadBasis(data, merged, q);
  const std::vector<double> centroid = CentroidOf(data, merged);
  double energy = 0.0;
  for (int m : merged) {
    energy += ProjectedSquaredDistance(data.Row(m), centroid, basis);
  }
  return energy / static_cast<double>(merged.size());
}

}  // namespace

namespace {

Result<OrclusResult> RunOrclusOnce(const Matrix& data,
                                   const OrclusOptions& options,
                                   uint64_t seed, BudgetTracker* guard,
                                   size_t restart,
                                   ConvergenceRecorder* recorder) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  Rng rng(seed);
  size_t iterations = 0;
  bool stopped_early = false;

  // Seeds: k0 = a_factor * k random objects, working dimensionality starts
  // at d and decays towards l as clusters merge towards k.
  size_t kc = std::min(n, std::max(options.k, options.a_factor * options.k));
  std::vector<Group> groups(kc);
  {
    const std::vector<size_t> picks = rng.SampleWithoutReplacement(n, kc);
    for (size_t g = 0; g < kc; ++g) {
      groups[g].centroid = data.Row(picks[g]);
      groups[g].basis = Matrix::Identity(d);
    }
  }
  double qc = static_cast<double>(d);

  // Decay factors so that kc -> k and qc -> l over max_iters rounds.
  const double alpha =
      std::pow(static_cast<double>(options.k) / static_cast<double>(kc),
               1.0 / static_cast<double>(options.max_iters));
  const double beta =
      std::pow(static_cast<double>(options.l) / qc,
               1.0 / static_cast<double>(options.max_iters));

  double prev_energy = std::numeric_limits<double>::infinity();
  for (size_t iter = 0; iter < options.max_iters || kc > options.k; ++iter) {
    if (guard->Cancelled()) return guard->CancelledStatus();
    if (guard->ShouldStop(iter)) {
      stopped_early = true;
      break;
    }
    MC_METRIC_COUNT("subspace.orclus.iterations", 1);
    MULTICLUST_TRACE_SPAN("subspace.orclus.iteration");
    iterations = iter + 1;
    // --- Assign: nearest centroid by projected distance. ---
    for (Group& g : groups) g.members.clear();
    for (size_t i = 0; i < n; ++i) {
      const std::vector<double> x = data.Row(i);
      double best = std::numeric_limits<double>::infinity();
      size_t best_g = 0;
      for (size_t g = 0; g < groups.size(); ++g) {
        const double dist =
            ProjectedSquaredDistance(x, groups[g].centroid, groups[g].basis);
        if (dist < best) {
          best = dist;
          best_g = g;
        }
      }
      groups[best_g].members.push_back(static_cast<int>(i));
    }
    // Drop empty groups.
    const size_t before_drop = groups.size();
    groups.erase(std::remove_if(groups.begin(), groups.end(),
                                [](const Group& g) {
                                  return g.members.empty();
                                }),
                 groups.end());
    const size_t dropped = before_drop - groups.size();
    if (dropped > 0) MC_METRIC_COUNT("subspace.orclus.dropped_groups", dropped);
    kc = groups.size();

    // --- Update subspaces at the current working dimensionality. ---
    const size_t q = std::max(options.l, static_cast<size_t>(
                                             std::lround(qc)));
    for (Group& g : groups) {
      g.centroid = CentroidOf(data, g.members);
      g.basis = LeastSpreadBasis(data, g.members, q);
    }

    // --- Merge down towards the schedule's cluster count (always at
    //     least one merge per round while above k, so the schedule cannot
    //     stall on rounding). ---
    size_t target = std::max(
        options.k,
        static_cast<size_t>(std::floor(static_cast<double>(kc) * alpha)));
    if (kc > options.k && target >= kc) target = kc - 1;
    while (groups.size() > target) {
      double best_cost = std::numeric_limits<double>::infinity();
      size_t ba = 0, bb = 1;
      // Merge quality is judged at the *target* dimensionality l: the
      // final clusters must be thin in an l-dimensional oriented subspace,
      // and evaluating at the (larger) working dimensionality would reduce
      // to total variance and favour spatially co-located but differently
      // oriented fragments.
      for (size_t a = 0; a < groups.size(); ++a) {
        for (size_t b = a + 1; b < groups.size(); ++b) {
          MC_ASSIGN_OR_RETURN(double cost,
                              MergeCost(data, groups[a], groups[b],
                                        options.l));
          if (cost < best_cost) {
            best_cost = cost;
            ba = a;
            bb = b;
          }
        }
      }
      groups[ba].members.insert(groups[ba].members.end(),
                                groups[bb].members.begin(),
                                groups[bb].members.end());
      groups[ba].centroid = CentroidOf(data, groups[ba].members);
      groups[ba].basis = LeastSpreadBasis(data, groups[ba].members, q);
      groups.erase(groups.begin() + bb);
    }
    kc = groups.size();
    qc = std::max(static_cast<double>(options.l), qc * beta);
    if (recorder->enabled()) {
      // Mean projected energy at the current working dimensionality — the
      // quantity the merge schedule drives down. Only computed when a
      // diagnostics sink is attached.
      double e = 0.0;
      for (const Group& g : groups) {
        for (int m : g.members) {
          e += ProjectedSquaredDistance(data.Row(m), g.centroid, g.basis);
        }
      }
      e /= static_cast<double>(n);
      const double delta =
          std::isfinite(prev_energy) ? std::fabs(prev_energy - e) : 0.0;
      recorder->Record(restart, iter, e, delta, dropped);
      prev_energy = e;
    }
    if (kc <= options.k &&
        static_cast<size_t>(std::lround(qc)) <= options.l &&
        iter + 1 >= options.max_iters) {
      break;
    }
    if (iter > options.max_iters + 8) break;  // safety
  }

  // Final refinement at (k, l): iterate projected assignment and subspace
  // updates until the labeling stabilises (projected k-means in each
  // cluster's own oriented subspace).
  std::vector<int> labels(n, -1);
  bool refined = false;
  for (size_t round = 0; round < 20; ++round) {
    if (guard->Cancelled()) return guard->CancelledStatus();
    if (guard->DeadlineExpired()) {
      stopped_early = true;
      break;
    }
    for (Group& g : groups) {
      g.centroid = CentroidOf(data, g.members);
      g.basis = LeastSpreadBasis(data, g.members, options.l);
    }
    for (Group& g : groups) g.members.clear();
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      const std::vector<double> x = data.Row(i);
      double best = std::numeric_limits<double>::infinity();
      size_t best_g = 0;
      for (size_t g = 0; g < groups.size(); ++g) {
        const double dist =
            ProjectedSquaredDistance(x, groups[g].centroid, groups[g].basis);
        if (dist < best) {
          best = dist;
          best_g = g;
        }
      }
      if (labels[i] != static_cast<int>(best_g)) changed = true;
      labels[i] = static_cast<int>(best_g);
      groups[best_g].members.push_back(static_cast<int>(i));
    }
    // Re-seed emptied groups at the object farthest from its centroid.
    for (Group& g : groups) {
      if (!g.members.empty()) continue;
      g.members.push_back(static_cast<int>(rng.NextIndex(n)));
      changed = true;
    }
    if (!changed &&
        !MC_FAULT_FIRES("orclus", FaultKind::kForceNonConvergence, round)) {
      refined = true;
      break;
    }
  }

  OrclusResult result;
  double energy = 0.0;
  for (const Group& g : groups) {
    for (int m : g.members) {
      energy += ProjectedSquaredDistance(data.Row(m), g.centroid, g.basis);
    }
  }
  if (MC_FAULT_FIRES("orclus", FaultKind::kInjectNaN, 0)) {
    energy = std::numeric_limits<double>::quiet_NaN();
  }
  if (!std::isfinite(energy)) {
    return Status::ComputationError("ORCLUS: non-finite projected energy");
  }
  result.projected_energy = energy / static_cast<double>(n);
  result.clustering.labels = std::move(labels);
  result.clustering.algorithm = "orclus";
  result.clustering.iterations = iterations;
  result.clustering.converged = refined && !stopped_early;
  result.clustering.Canonicalize();
  for (const Group& g : groups) {
    result.subspaces.push_back({g.basis});
  }
  return result;
}

}  // namespace

Result<OrclusResult> RunOrclus(const Matrix& data,
                               const OrclusOptions& options) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  if (options.k == 0 || options.k > n) {
    return Status::InvalidArgument("ORCLUS: invalid k");
  }
  if (options.l == 0 || options.l > d) {
    return Status::InvalidArgument("ORCLUS: invalid l");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("ORCLUS", data));
  MULTICLUST_TRACE_SPAN("subspace.orclus.run");
  BudgetTracker guard(options.budget, "orclus");
  ConvergenceRecorder recorder(options.diagnostics, &guard);
  Rng rng(options.seed);
  OrclusResult best;
  bool have_best = false;
  Status last_error = Status::OK();
  const size_t restarts = options.restarts == 0 ? 1 : options.restarts;
  for (size_t r = 0; r < restarts; ++r) {
    const uint64_t restart_seed = rng.NextU64();
    if (r > 0 && guard.DeadlineExpired()) break;
    MC_METRIC_COUNT("subspace.orclus.restarts", 1);
    Result<OrclusResult> run =
        RunOrclusOnce(data, options, restart_seed, &guard, r, &recorder);
    if (!run.ok()) {
      if (run.status().code() == StatusCode::kCancelled) return run.status();
      last_error = run.status();
      continue;  // a degenerate restart does not kill the others
    }
    if (!have_best || run->projected_energy < best.projected_energy) {
      best = std::move(*run);
      have_best = true;
      recorder.SetWinner(r);
    }
  }
  if (!have_best) return last_error;
  recorder.Finish("orclus", best.clustering.iterations,
                  best.clustering.converged);
  return best;
}

}  // namespace multiclust
