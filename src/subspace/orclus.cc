#include "subspace/orclus.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <string>
#include <utility>

#include "common/checkpoint.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "linalg/decomposition.h"
#include "linalg/kernels.h"

namespace multiclust {

double ProjectedSquaredDistance(const double* x, size_t xd,
                                const std::vector<double>& centroid,
                                const Matrix& basis) {
  const size_t q = basis.cols();
  const size_t rows = basis.rows() < xd ? basis.rows() : xd;
  // proj = basis^T (x - c), accumulated row by row: each basis row is
  // contiguous, so the update vectorizes over the q output coordinates
  // (the column-strided dot in the naive form cannot).
  std::vector<double> proj(q, 0.0);
  for (size_t j = 0; j < rows; ++j) {
    kernels::Axpy(x[j] - centroid[j], basis.row_data(j), proj.data(), q);
  }
  return kernels::SquaredNorm(proj.data(), q);
}

double ProjectedSquaredDistance(const std::vector<double>& x,
                                const std::vector<double>& centroid,
                                const Matrix& basis) {
  return ProjectedSquaredDistance(x.data(), x.size(), centroid, basis);
}

namespace {

struct Group {
  std::vector<double> centroid;
  Matrix basis;  // d x q least-spread eigenvectors
  std::vector<int> members;
};

// Last q identity axes: the degenerate-group / failed-eigensolve fallback.
Matrix AxisFallbackBasis(size_t d, size_t q) {
  Matrix basis(d, q);
  for (size_t c = 0; c < q; ++c) basis.at(d - 1 - c, c) = 1.0;
  return basis;
}

// Least-spread orthonormal basis (q smallest-eigenvalue eigenvectors of the
// member covariance). Never fails: tiny groups, rank-deficient covariances
// and eigensolver breakdowns all degrade to the identity-axis basis so a
// single degenerate group cannot abort the whole run.
Matrix LeastSpreadBasis(const Matrix& data, const std::vector<int>& members,
                        size_t q) {
  const size_t d = data.cols();
  q = std::min(q, d);
  if (members.size() < 2) return AxisFallbackBasis(d, q);
  std::vector<size_t> rows(members.begin(), members.end());
  const Matrix sub = data.SelectRows(rows);
  Matrix cov = Covariance(sub);
  // Ridge regularisation: a collapsed group (duplicate points, members
  // confined to a hyperplane) yields a singular covariance on which the
  // Jacobi sweep can stall. The jitter is orders of magnitude below any
  // meaningful spread and leaves the eigenvectors of well-conditioned
  // covariances untouched to ~1e-10.
  double trace = 0.0;
  for (size_t j = 0; j < d; ++j) trace += cov.at(j, j);
  const double ridge = 1e-10 * (trace / static_cast<double>(d)) + 1e-12;
  for (size_t j = 0; j < d; ++j) cov.at(j, j) += ridge;
  Result<SymmetricEigen> eig = EigenSymmetric(cov);
  if (!eig.ok()) return AxisFallbackBasis(d, q);
  // Eigenvalues are sorted descending; take the trailing q columns.
  Matrix basis(d, q);
  for (size_t c = 0; c < q; ++c) {
    for (size_t j = 0; j < d; ++j) {
      const double v = eig->vectors.at(j, d - q + c);
      if (!std::isfinite(v)) return AxisFallbackBasis(d, q);
      basis.at(j, c) = v;
    }
  }
  return basis;
}

std::vector<double> CentroidOf(const Matrix& data,
                               const std::vector<int>& members) {
  std::vector<double> c(data.cols(), 0.0);
  if (members.empty()) return c;
  for (int m : members) {
    const double* row = data.row_data(m);
    for (size_t j = 0; j < data.cols(); ++j) c[j] += row[j];
  }
  for (double& x : c) x /= static_cast<double>(members.size());
  return c;
}

// Mean projected energy of a hypothetical merge of groups a and b in the
// merged group's own least-spread q-dim subspace (ORCLUS's merge cost).
Result<double> MergeCost(const Matrix& data, const Group& a, const Group& b,
                         size_t q) {
  std::vector<int> merged = a.members;
  merged.insert(merged.end(), b.members.begin(), b.members.end());
  if (merged.empty()) return 0.0;
  const Matrix basis = LeastSpreadBasis(data, merged, q);
  const std::vector<double> centroid = CentroidOf(data, merged);
  double energy = 0.0;
  for (int m : merged) {
    energy += ProjectedSquaredDistance(data.row_data(m), data.cols(), centroid,
                                       basis);
  }
  return energy / static_cast<double>(merged.size());
}

}  // namespace

namespace {

// Mid-restart resume state for one RunOrclusOnce invocation: the merge
// schedule's full working set. The refinement loop is NOT checkpointed —
// it is a pure replay from the last merge-loop persistence point (the rng
// is untouched between seeding and refinement, so its saved position
// already covers the refinement's empty-group reseeds).
struct OrclusSeed {
  size_t start_iter = 0;
  std::vector<Group> groups;
  double qc = 0.0;
  bool has_prev = false;
  double prev_energy = 0.0;
  size_t iterations = 0;
  Rng rng;  ///< stream position at the persistence point
};

// The persist callback receives a *builder* rather than a packed seed so
// the O(k·d²) group copy happens only when the policy actually serializes
// a snapshot.
using OrclusSeedFn = FunctionRef<OrclusSeed()>;
using OrclusPersistFn = std::function<Status(OrclusSeedFn, bool flush)>;

Result<OrclusResult> RunOrclusOnce(const Matrix& data,
                                   const OrclusOptions& options,
                                   uint64_t seed, BudgetTracker* guard,
                                   size_t restart,
                                   ConvergenceRecorder* recorder,
                                   const OrclusSeed* resume,
                                   const OrclusPersistFn& persist) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  Rng rng(seed);
  size_t iterations = 0;
  bool stopped_early = false;

  // Seeds: k0 = a_factor * k random objects, working dimensionality starts
  // at d and decays towards l as clusters merge towards k. The decay
  // factors depend only on this *initial* kc, so they are recomputed
  // identically on resume before the working set is overwritten.
  size_t kc = std::min(n, std::max(options.k, options.a_factor * options.k));
  const double alpha =
      std::pow(static_cast<double>(options.k) / static_cast<double>(kc),
               1.0 / static_cast<double>(options.max_iters));
  const double beta =
      std::pow(static_cast<double>(options.l) / static_cast<double>(d),
               1.0 / static_cast<double>(options.max_iters));

  std::vector<Group> groups;
  double qc = static_cast<double>(d);
  double prev_energy = std::numeric_limits<double>::infinity();
  size_t start_iter = 0;
  if (resume != nullptr) {
    groups = resume->groups;
    kc = groups.size();
    qc = resume->qc;
    prev_energy = resume->has_prev
                      ? resume->prev_energy
                      : std::numeric_limits<double>::infinity();
    iterations = resume->iterations;
    start_iter = resume->start_iter;
    rng = resume->rng;
  } else {
    groups.resize(kc);
    const std::vector<size_t> picks = rng.SampleWithoutReplacement(n, kc);
    for (size_t g = 0; g < kc; ++g) {
      groups[g].centroid = data.Row(picks[g]);
      groups[g].basis = Matrix::Identity(d);
    }
  }

  // Packs the current merge-loop state for the persist callback.
  const auto make_seed = [&](size_t next_iter) {
    OrclusSeed s;
    s.start_iter = next_iter;
    s.groups = groups;
    s.qc = qc;
    s.has_prev = std::isfinite(prev_energy);
    s.prev_energy = s.has_prev ? prev_energy : 0.0;
    s.iterations = iterations;
    s.rng = rng;
    return s;
  };

  for (size_t iter = start_iter; iter < options.max_iters || kc > options.k;
       ++iter) {
    if (guard->Cancelled()) {
      if (persist) {
        (void)persist([&] { return make_seed(iter); }, /*flush=*/true);
      }
      return guard->CancelledStatus();
    }
    if (guard->ShouldStop(iter)) {
      stopped_early = true;
      break;
    }
    MC_METRIC_COUNT("subspace.orclus.iterations", 1);
    MULTICLUST_TRACE_SPAN("subspace.orclus.iteration");
    iterations = iter + 1;
    // --- Assign: nearest centroid by projected distance. ---
    for (Group& g : groups) g.members.clear();
    for (size_t i = 0; i < n; ++i) {
      const double* x = data.row_data(i);
      double best = std::numeric_limits<double>::infinity();
      size_t best_g = 0;
      for (size_t g = 0; g < groups.size(); ++g) {
        const double dist = ProjectedSquaredDistance(
            x, data.cols(), groups[g].centroid, groups[g].basis);
        if (dist < best) {
          best = dist;
          best_g = g;
        }
      }
      groups[best_g].members.push_back(static_cast<int>(i));
    }
    // Drop empty groups.
    const size_t before_drop = groups.size();
    groups.erase(std::remove_if(groups.begin(), groups.end(),
                                [](const Group& g) {
                                  return g.members.empty();
                                }),
                 groups.end());
    const size_t dropped = before_drop - groups.size();
    if (dropped > 0) MC_METRIC_COUNT("subspace.orclus.dropped_groups", dropped);
    kc = groups.size();

    // --- Update subspaces at the current working dimensionality. ---
    const size_t q = std::max(options.l, static_cast<size_t>(
                                             std::lround(qc)));
    for (Group& g : groups) {
      g.centroid = CentroidOf(data, g.members);
      g.basis = LeastSpreadBasis(data, g.members, q);
    }

    // --- Merge down towards the schedule's cluster count (always at
    //     least one merge per round while above k, so the schedule cannot
    //     stall on rounding). ---
    size_t target = std::max(
        options.k,
        static_cast<size_t>(std::floor(static_cast<double>(kc) * alpha)));
    if (kc > options.k && target >= kc) target = kc - 1;
    while (groups.size() > target) {
      double best_cost = std::numeric_limits<double>::infinity();
      size_t ba = 0, bb = 1;
      // Merge quality is judged at the *target* dimensionality l: the
      // final clusters must be thin in an l-dimensional oriented subspace,
      // and evaluating at the (larger) working dimensionality would reduce
      // to total variance and favour spatially co-located but differently
      // oriented fragments.
      for (size_t a = 0; a < groups.size(); ++a) {
        for (size_t b = a + 1; b < groups.size(); ++b) {
          MC_ASSIGN_OR_RETURN(double cost,
                              MergeCost(data, groups[a], groups[b],
                                        options.l));
          if (cost < best_cost) {
            best_cost = cost;
            ba = a;
            bb = b;
          }
        }
      }
      groups[ba].members.insert(groups[ba].members.end(),
                                groups[bb].members.begin(),
                                groups[bb].members.end());
      groups[ba].centroid = CentroidOf(data, groups[ba].members);
      groups[ba].basis = LeastSpreadBasis(data, groups[ba].members, q);
      groups.erase(groups.begin() + bb);
    }
    kc = groups.size();
    qc = std::max(static_cast<double>(options.l), qc * beta);
    if (recorder->enabled()) {
      // Mean projected energy at the current working dimensionality — the
      // quantity the merge schedule drives down. Only computed when a
      // diagnostics sink is attached.
      double e = 0.0;
      for (const Group& g : groups) {
        for (int m : g.members) {
          e += ProjectedSquaredDistance(data.row_data(m), data.cols(),
                                        g.centroid, g.basis);
        }
      }
      e /= static_cast<double>(n);
      const double delta =
          std::isfinite(prev_energy) ? std::fabs(prev_energy - e) : 0.0;
      recorder->Record(restart, iter, e, delta, dropped);
      prev_energy = e;
    }
    if (kc <= options.k &&
        static_cast<size_t>(std::lround(qc)) <= options.l &&
        iter + 1 >= options.max_iters) {
      break;
    }
    if (iter > options.max_iters + 8) break;  // safety
    // Persistence point: the schedule continues, so a resumed run picks up
    // at iter + 1. The exits above fall through to the refinement loop,
    // which replays deterministically from the previous snapshot.
    if (persist) {
      MC_RETURN_IF_ERROR(
          persist([&] { return make_seed(iter + 1); }, /*flush=*/false));
    }
  }

  // Final refinement at (k, l): iterate projected assignment and subspace
  // updates until the labeling stabilises (projected k-means in each
  // cluster's own oriented subspace).
  std::vector<int> labels(n, -1);
  bool refined = false;
  for (size_t round = 0; round < 20; ++round) {
    if (guard->Cancelled()) return guard->CancelledStatus();
    if (guard->DeadlineExpired()) {
      stopped_early = true;
      break;
    }
    for (Group& g : groups) {
      g.centroid = CentroidOf(data, g.members);
      g.basis = LeastSpreadBasis(data, g.members, options.l);
    }
    for (Group& g : groups) g.members.clear();
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      const double* x = data.row_data(i);
      double best = std::numeric_limits<double>::infinity();
      size_t best_g = 0;
      for (size_t g = 0; g < groups.size(); ++g) {
        const double dist = ProjectedSquaredDistance(
            x, data.cols(), groups[g].centroid, groups[g].basis);
        if (dist < best) {
          best = dist;
          best_g = g;
        }
      }
      if (labels[i] != static_cast<int>(best_g)) changed = true;
      labels[i] = static_cast<int>(best_g);
      groups[best_g].members.push_back(static_cast<int>(i));
    }
    // Re-seed emptied groups at the object farthest from its centroid.
    for (Group& g : groups) {
      if (!g.members.empty()) continue;
      g.members.push_back(static_cast<int>(rng.NextIndex(n)));
      changed = true;
    }
    if (!changed &&
        !MC_FAULT_FIRES("orclus", FaultKind::kForceNonConvergence, round)) {
      refined = true;
      break;
    }
  }

  OrclusResult result;
  double energy = 0.0;
  for (const Group& g : groups) {
    for (int m : g.members) {
      energy += ProjectedSquaredDistance(data.row_data(m), data.cols(),
                                         g.centroid, g.basis);
    }
  }
  if (MC_FAULT_FIRES("orclus", FaultKind::kInjectNaN, 0)) {
    energy = std::numeric_limits<double>::quiet_NaN();
  }
  if (MC_FAULT_FIRES("orclus", FaultKind::kAllocFail, 0)) {
    return Status::ComputationError(
        "ORCLUS: injected allocation failure growing the projected "
        "cluster bases");
  }
  if (!std::isfinite(energy)) {
    return Status::ComputationError("ORCLUS: non-finite projected energy");
  }
  result.projected_energy = energy / static_cast<double>(n);
  result.clustering.labels = std::move(labels);
  result.clustering.algorithm = "orclus";
  result.clustering.iterations = iterations;
  result.clustering.converged = refined && !stopped_early;
  result.clustering.Canonicalize();
  for (const Group& g : groups) {
    result.subspaces.push_back({g.basis});
  }
  return result;
}

void WriteGroup(json::Writer* w, const Group& g) {
  w->BeginObject();
  w->Key("c");
  ckpt::WriteDoubleVector(w, g.centroid);
  w->Key("b");
  ckpt::WriteMatrix(w, g.basis);
  w->Key("m");
  ckpt::WriteIntVector(w, g.members);
  w->EndObject();
}

Result<Group> ReadGroup(const json::Value& v) {
  Group g;
  MC_ASSIGN_OR_RETURN(const json::Value* c, ckpt::Field(v, "c"));
  MC_ASSIGN_OR_RETURN(g.centroid, ckpt::ReadDoubleVector(*c));
  MC_ASSIGN_OR_RETURN(const json::Value* b, ckpt::Field(v, "b"));
  MC_ASSIGN_OR_RETURN(g.basis, ckpt::ReadMatrix(*b));
  MC_ASSIGN_OR_RETURN(const json::Value* m, ckpt::Field(v, "m"));
  MC_ASSIGN_OR_RETURN(g.members, ckpt::ReadIntVector(*m));
  return g;
}

void WriteOrclusResultCkpt(json::Writer* w, const OrclusResult& r) {
  w->BeginObject();
  w->Key("energy");
  w->Double(r.projected_energy);
  w->Key("labels");
  ckpt::WriteIntVector(w, r.clustering.labels);
  w->Key("iterations");
  w->Uint(r.clustering.iterations);
  w->Key("converged");
  w->Bool(r.clustering.converged);
  w->Key("subspaces");
  w->BeginArray();
  for (const OrientedSubspace& s : r.subspaces) ckpt::WriteMatrix(w, s.basis);
  w->EndArray();
  w->EndObject();
}

Result<OrclusResult> ReadOrclusResultCkpt(const json::Value& v) {
  OrclusResult r;
  MC_ASSIGN_OR_RETURN(r.projected_energy, ckpt::NumberField(v, "energy"));
  MC_ASSIGN_OR_RETURN(const json::Value* l, ckpt::Field(v, "labels"));
  MC_ASSIGN_OR_RETURN(r.clustering.labels, ckpt::ReadIntVector(*l));
  MC_ASSIGN_OR_RETURN(r.clustering.iterations,
                      ckpt::SizeField(v, "iterations"));
  MC_ASSIGN_OR_RETURN(r.clustering.converged,
                      ckpt::BoolField(v, "converged"));
  r.clustering.algorithm = "orclus";
  MC_ASSIGN_OR_RETURN(const json::Value* subs, ckpt::Field(v, "subspaces"));
  if (!subs->is_array()) {
    return Status::ComputationError("checkpoint: ORCLUS subspaces malformed");
  }
  for (const json::Value& s : subs->array_items()) {
    MC_ASSIGN_OR_RETURN(Matrix basis, ckpt::ReadMatrix(s));
    r.subspaces.push_back({std::move(basis)});
  }
  return r;
}

// Shared checkpoint state of one RunOrclus invocation (mirrors the
// k-means layout: outer restart bookkeeping + optional mid-restart seed).
struct OrclusCkptState {
  size_t step = 0;
  size_t restart = 0;
  Rng outer_rng;
  bool have_best = false;
  OrclusResult best;
  Status last_error = Status::OK();
  ConvergenceTrace trace;
  bool mid_restart = false;
  uint64_t restart_seed = 0;  ///< seed the interrupted restart was launched with
  OrclusSeed seed;
};

void WriteOrclusPayload(json::Writer* w, const OrclusCkptState& s) {
  w->BeginObject();
  w->Key("step");
  w->Uint(s.step);
  w->Key("restart");
  w->Uint(s.restart);
  w->Key("outer_rng");
  ckpt::WriteRng(w, s.outer_rng);
  w->Key("have_best");
  w->Bool(s.have_best);
  if (s.have_best) {
    w->Key("best");
    WriteOrclusResultCkpt(w, s.best);
  }
  w->Key("last_error");
  ckpt::WriteStatus(w, s.last_error);
  w->Key("trace");
  ckpt::WriteTrace(w, s.trace);
  w->Key("mid_restart");
  w->Bool(s.mid_restart);
  if (s.mid_restart) {
    w->Key("restart_seed");
    ckpt::WriteU64(w, s.restart_seed);
    w->Key("next_iter");
    w->Uint(s.seed.start_iter);
    w->Key("groups");
    w->BeginArray();
    for (const Group& g : s.seed.groups) WriteGroup(w, g);
    w->EndArray();
    w->Key("qc");
    w->Double(s.seed.qc);
    w->Key("has_prev");
    w->Bool(s.seed.has_prev);
    w->Key("prev_energy");
    w->Double(s.seed.has_prev ? s.seed.prev_energy : 0.0);
    w->Key("iterations");
    w->Uint(s.seed.iterations);
    w->Key("rng");
    ckpt::WriteRng(w, s.seed.rng);
  }
  w->EndObject();
}

Status ReadOrclusPayload(const json::Value& v, OrclusCkptState* s) {
  MC_ASSIGN_OR_RETURN(s->step, ckpt::SizeField(v, "step"));
  MC_ASSIGN_OR_RETURN(s->restart, ckpt::SizeField(v, "restart"));
  MC_ASSIGN_OR_RETURN(const json::Value* outer, ckpt::Field(v, "outer_rng"));
  MC_ASSIGN_OR_RETURN(s->outer_rng, ckpt::ReadRng(*outer));
  MC_ASSIGN_OR_RETURN(s->have_best, ckpt::BoolField(v, "have_best"));
  if (s->have_best) {
    MC_ASSIGN_OR_RETURN(const json::Value* b, ckpt::Field(v, "best"));
    MC_ASSIGN_OR_RETURN(s->best, ReadOrclusResultCkpt(*b));
  }
  MC_ASSIGN_OR_RETURN(const json::Value* err, ckpt::Field(v, "last_error"));
  MC_RETURN_IF_ERROR(ckpt::ReadStatus(*err, &s->last_error));
  MC_ASSIGN_OR_RETURN(const json::Value* tr, ckpt::Field(v, "trace"));
  MC_ASSIGN_OR_RETURN(s->trace, ckpt::ReadTrace(*tr));
  MC_ASSIGN_OR_RETURN(s->mid_restart, ckpt::BoolField(v, "mid_restart"));
  if (s->mid_restart) {
    MC_ASSIGN_OR_RETURN(s->restart_seed, ckpt::U64Field(v, "restart_seed"));
    MC_ASSIGN_OR_RETURN(s->seed.start_iter, ckpt::SizeField(v, "next_iter"));
    MC_ASSIGN_OR_RETURN(const json::Value* gs, ckpt::Field(v, "groups"));
    if (!gs->is_array()) {
      return Status::ComputationError("checkpoint: ORCLUS groups malformed");
    }
    for (const json::Value& g : gs->array_items()) {
      MC_ASSIGN_OR_RETURN(Group grp, ReadGroup(g));
      s->seed.groups.push_back(std::move(grp));
    }
    MC_ASSIGN_OR_RETURN(s->seed.qc, ckpt::NumberField(v, "qc"));
    MC_ASSIGN_OR_RETURN(s->seed.has_prev, ckpt::BoolField(v, "has_prev"));
    MC_ASSIGN_OR_RETURN(s->seed.prev_energy,
                        ckpt::NumberField(v, "prev_energy"));
    MC_ASSIGN_OR_RETURN(s->seed.iterations, ckpt::SizeField(v, "iterations"));
    MC_ASSIGN_OR_RETURN(const json::Value* rs, ckpt::Field(v, "rng"));
    MC_ASSIGN_OR_RETURN(s->seed.rng, ckpt::ReadRng(*rs));
  }
  return Status::OK();
}

uint64_t OrclusFingerprint(const Matrix& data, const OrclusOptions& options) {
  Fingerprint fp;
  fp.Mix("orclus");
  fp.Mix(static_cast<uint64_t>(options.k));
  fp.Mix(static_cast<uint64_t>(options.l));
  fp.Mix(static_cast<uint64_t>(options.a_factor));
  fp.Mix(static_cast<uint64_t>(options.max_iters));
  fp.Mix(static_cast<uint64_t>(options.restarts));
  fp.Mix(options.seed);
  fp.Mix(static_cast<uint64_t>(options.budget.max_iterations));
  fp.Mix(data);
  return fp.value();
}

}  // namespace

Result<OrclusResult> RunOrclus(const Matrix& data,
                               const OrclusOptions& options) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  if (options.k == 0 || options.k > n) {
    return Status::InvalidArgument("ORCLUS: invalid k");
  }
  if (options.l == 0 || options.l > d) {
    return Status::InvalidArgument("ORCLUS: invalid l");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("ORCLUS", data));
  MULTICLUST_TRACE_SPAN("subspace.orclus.run");
  BudgetTracker guard(options.budget, "orclus");
  ConvergenceRecorder recorder(options.diagnostics, &guard);
  recorder.SetExpectedIterations(
      options.budget.max_iterations != 0
          ? std::min(options.max_iters, options.budget.max_iterations)
          : options.max_iters);
  Checkpointer* ck = options.budget.checkpoint;
  const uint64_t fp = ck != nullptr ? OrclusFingerprint(data, options) : 0;

  OrclusCkptState state;
  state.outer_rng = Rng(options.seed);
  bool resume_mid = false;
  if (ck != nullptr) {
    if (auto restored = ck->TryRestore("orclus", fp, options.diagnostics)) {
      OrclusCkptState loaded;
      const Status parsed = ReadOrclusPayload(restored->payload, &loaded);
      if (parsed.ok()) {
        state = std::move(loaded);
        resume_mid = state.mid_restart;
        if (options.diagnostics != nullptr) {
          options.diagnostics->trace = state.trace;
        }
      } else {
        AddWarning(options.diagnostics, "orclus",
                   "checkpoint payload rejected (" + parsed.ToString() +
                       "); cold start");
      }
    }
  }

  // `prepare` defers the seed/trace capture until a snapshot is actually
  // serialized, keeping armed-but-not-due persistence points cheap.
  const auto snapshot =
      [&](bool flush, FunctionRef<void()> prepare = {}) -> Status {
    if (ck == nullptr) return Status::OK();
    const auto payload = [&](json::Writer* w) {
      if (prepare) prepare();
      if (options.diagnostics != nullptr) {
        state.trace = options.diagnostics->trace;
      }
      WriteOrclusPayload(w, state);
    };
    const Status st = flush ? ck->Flush("orclus", fp, payload)
                            : ck->AtPersistencePoint("orclus", fp,
                                                     state.step, payload);
    ++state.step;
    return flush ? Status::OK() : st;
  };

  const size_t restarts = options.restarts == 0 ? 1 : options.restarts;
  const size_t start_restart = state.restart;
  for (size_t r = start_restart; r < restarts; ++r) {
    const bool resuming = resume_mid && r == start_restart;
    // A resumed restart re-uses the seed it was originally launched with
    // (the outer rng was saved *after* the draw, so it must not re-draw).
    const uint64_t restart_seed =
        resuming ? state.restart_seed : state.outer_rng.NextU64();
    if (r > 0 && guard.DeadlineExpired()) break;
    MC_METRIC_COUNT("subspace.orclus.restarts", 1);
    const OrclusSeed* seed = resuming ? &state.seed : nullptr;
    const OrclusPersistFn persist =
        ck == nullptr
            ? OrclusPersistFn()
            : [&](OrclusSeedFn make, bool flush) -> Status {
                return snapshot(flush, [&] {
                  state.restart = r;
                  state.mid_restart = true;
                  state.restart_seed = restart_seed;
                  state.seed = make();
                });
              };
    Result<OrclusResult> run = RunOrclusOnce(data, options, restart_seed,
                                             &guard, r, &recorder, seed,
                                             persist);
    if (!run.ok()) {
      if (run.status().code() == StatusCode::kCancelled ||
          run.status().code() == StatusCode::kAborted) {
        return run.status();
      }
      state.last_error = run.status();
    } else if (!state.have_best ||
               run->projected_energy < state.best.projected_energy) {
      state.best = std::move(*run);
      state.have_best = true;
      recorder.SetWinner(r);
    }
    if (ck != nullptr && r + 1 < restarts) {
      // Restart boundary (covers the converged / skipped exits).
      state.restart = r + 1;
      state.mid_restart = false;
      state.seed = OrclusSeed();
      MC_RETURN_IF_ERROR(snapshot(/*flush=*/false));
    }
  }
  if (!state.have_best) return state.last_error;
  recorder.Finish("orclus", state.best.clustering.iterations,
                  state.best.clustering.converged);
  return std::move(state.best);
}

}  // namespace multiclust
