#ifndef MULTICLUST_SUBSPACE_PROCLUS_H_
#define MULTICLUST_SUBSPACE_PROCLUS_H_

#include <cstdint>
#include <vector>

#include "cluster/clustering.h"
#include "common/result.h"
#include "common/runguard.h"
#include "subspace/subspace_cluster.h"

namespace multiclust {

/// Options for PROCLUS (Aggarwal et al. 1999; tutorial slide 66).
struct ProclusOptions {
  size_t k = 3;
  /// Average number of relevant dimensions per cluster (the paper's l);
  /// k * l dimensions are distributed over the clusters, at least 2 each.
  size_t avg_dims = 2;
  /// Medoid candidate pool size factor (pool = a_factor * k).
  size_t a_factor = 5;
  size_t max_iters = 20;
  uint64_t seed = 1;
  /// Wall-clock / iteration / cancellation limits (see common/runguard.h).
  RunBudget budget;
  /// Optional observability sink (not owned): per-round ConvergenceTrace
  /// (segmental cost, improvement over the best round so far) plus
  /// iterations/convergence/stop-reason. nullptr (the default) records
  /// nothing.
  RunDiagnostics* diagnostics = nullptr;
};

/// Full PROCLUS output: a *partitioning* (each object in exactly one
/// cluster or noise) plus the selected dimensions per cluster. PROCLUS is
/// the projected-clustering baseline of the tutorial: fast, but by design
/// it yields only a single clustering solution — objects cannot belong to
/// clusters in several views.
struct ProclusResult {
  Clustering clustering;
  /// dims[c] = relevant dimensions of cluster c.
  std::vector<std::vector<size_t>> dims;

  /// View as subspace clusters (for comparison with CLIQUE-family output).
  SubspaceClustering AsSubspaceClustering() const;
};

/// Runs PROCLUS: greedy well-separated medoid selection, iterative medoid
/// refinement with per-medoid locality-based dimension selection, and
/// Manhattan segmental distance assignment.
Result<ProclusResult> RunProclus(const Matrix& data,
                                 const ProclusOptions& options);

}  // namespace multiclust

#endif  // MULTICLUST_SUBSPACE_PROCLUS_H_
