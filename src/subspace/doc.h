#ifndef MULTICLUST_SUBSPACE_DOC_H_
#define MULTICLUST_SUBSPACE_DOC_H_

#include <cstdint>

#include "common/result.h"
#include "linalg/matrix.h"
#include "subspace/subspace_cluster.h"

namespace multiclust {

/// Options for DOC / FastDOC (Procopiuc et al. 2002; tutorial slide 66,72):
/// Monte-Carlo mining of axis-parallel projected clusters.
struct DocOptions {
  /// Number of clusters to extract (objects of found clusters are removed
  /// before the next round).
  size_t k = 3;
  /// Half-width of a cluster's bounding box per relevant dimension.
  double w = 1.0;
  /// Quality trade-off between support and dimensionality:
  /// mu(C, D) = |C| * (1/beta)^|D| with beta in (0, 0.5].
  double beta = 0.25;
  /// Outer Monte-Carlo trials (random medoids) per cluster.
  size_t outer_trials = 30;
  /// Inner trials (random discriminating sets) per medoid.
  size_t inner_trials = 20;
  /// Size of the discriminating set.
  size_t discriminating_set = 4;
  /// Minimum support for a reported cluster.
  size_t min_support = 8;
  uint64_t seed = 1;
};

/// DOC: repeatedly samples a medoid p and small discriminating sets X; the
/// relevant dimensions are those where all of X lies within w of p, and the
/// cluster is every remaining object within w of p on those dimensions.
/// The best (p, D) by the quality mu(|C|, |D|) wins each round.
Result<SubspaceClustering> RunDoc(const Matrix& data,
                                  const DocOptions& options);

/// DOC's projective quality function mu(support, dims) = support *
/// (1/beta)^dims.
double DocQuality(size_t support, size_t dims, double beta);

}  // namespace multiclust

#endif  // MULTICLUST_SUBSPACE_DOC_H_
