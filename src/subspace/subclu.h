#ifndef MULTICLUST_SUBSPACE_SUBCLU_H_
#define MULTICLUST_SUBSPACE_SUBCLU_H_

#include "common/result.h"
#include "linalg/matrix.h"
#include "subspace/subspace_cluster.h"

namespace multiclust {

/// Options for SUBCLU (Kailing, Kriegel & Kröger 2004b; tutorial slide 74).
struct SubcluOptions {
  double eps = 0.5;
  size_t min_pts = 5;
  /// Maximum subspace dimensionality (0 = unbounded).
  size_t max_dims = 0;
};

/// SUBCLU: density-connected subspace clustering. Runs DBSCAN in every
/// 1-dimensional subspace, then generates higher-dimensional candidate
/// subspaces apriori-style (a k-dim subspace can only contain clusters if
/// all its (k-1)-dim projections do) and re-runs DBSCAN restricted to the
/// objects of the best lower-dimensional clustering. Density-based: finds
/// arbitrarily shaped clusters and labels noise, at higher cost than the
/// grid methods.
Result<SubspaceClustering> RunSubclu(const Matrix& data,
                                     const SubcluOptions& options);

}  // namespace multiclust

#endif  // MULTICLUST_SUBSPACE_SUBCLU_H_
