#ifndef MULTICLUST_SUBSPACE_SUBSPACE_CLUSTER_H_
#define MULTICLUST_SUBSPACE_SUBSPACE_CLUSTER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "stats/grid.h"

namespace multiclust {

/// The abstract subspace cluster of the tutorial (slide 65):
/// C = (O, S) with objects O subset of DB and dimensions S subset of DIM.
struct SubspaceCluster {
  std::vector<size_t> dims;  ///< S, ascending
  std::vector<int> objects;  ///< O, ascending object ids
  /// Producing algorithm (for reports).
  std::string source;

  size_t dimensionality() const { return dims.size(); }
  size_t support() const { return objects.size(); }

  /// |O ∩ other.O| computed on the sorted object lists.
  size_t ObjectOverlap(const SubspaceCluster& other) const;

  /// |S ∩ other.S|.
  size_t DimOverlap(const SubspaceCluster& other) const;
};

/// A full subspace clustering result M = {C_1 ... C_n} (slide 65). Objects
/// may belong to many clusters; clusters live in different subspaces.
struct SubspaceClustering {
  std::vector<SubspaceCluster> clusters;

  /// Clusters grouped by identical subspace; each entry lists indices into
  /// `clusters`.
  std::vector<std::vector<size_t>> GroupBySubspace() const;

  /// Converts the clusters of one subspace group into a flat labeling of
  /// `num_objects` objects (later clusters override earlier on overlap;
  /// uncovered objects get -1).
  std::vector<int> LabelsForGroup(const std::vector<size_t>& group,
                                  size_t num_objects) const;

  /// Number of distinct subspaces present.
  size_t NumSubspaces() const;
};

/// Pair-level F1 of a set of discovered subspace clusters against a planted
/// ground-truth labeling *restricted to a view*: each discovered cluster is
/// treated as a predicted group; recall counts truth pairs co-clustered in
/// at least one discovered cluster, precision counts discovered co-cluster
/// pairs that the truth also co-clusters. Robust to overlapping results.
Result<double> SubspacePairF1(const SubspaceClustering& found,
                              const std::vector<int>& truth);

/// Merges grid units (same subspace, adjacent cells) into subspace clusters:
/// the CLIQUE cluster-formation step (connected components of dense units;
/// slide 69). Units must all come from the same `Grid`.
std::vector<SubspaceCluster> UnitsToClusters(const std::vector<GridUnit>& units,
                                             const std::string& source);

}  // namespace multiclust

#endif  // MULTICLUST_SUBSPACE_SUBSPACE_CLUSTER_H_
