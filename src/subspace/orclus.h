#ifndef MULTICLUST_SUBSPACE_ORCLUS_H_
#define MULTICLUST_SUBSPACE_ORCLUS_H_

#include <cstdint>
#include <vector>

#include "cluster/clustering.h"
#include "common/result.h"
#include "common/runguard.h"
#include "linalg/matrix.h"

namespace multiclust {

/// Options for ORCLUS (Aggarwal & Yu 2000; tutorial slide 66): projected
/// clustering in *arbitrarily oriented* subspaces — each cluster owns an
/// eigen-derived low-dimensional subspace rather than an axis-parallel one.
struct OrclusOptions {
  size_t k = 3;
  /// Target subspace dimensionality per cluster.
  size_t l = 2;
  /// Initial seed multiplier: start from k0 = a_factor * k seeds and merge
  /// down while dimensionality shrinks from full d to l.
  size_t a_factor = 3;
  size_t max_iters = 12;
  /// Independent restarts; the run with the lowest total projected energy
  /// wins (the projected objective has spurious local optima on strongly
  /// oriented data).
  size_t restarts = 3;
  uint64_t seed = 1;
  /// Wall-clock / iteration / cancellation limits (see common/runguard.h).
  RunBudget budget;
  /// Optional observability sink (not owned): per-outer-iteration
  /// ConvergenceTrace (mean projected energy, its change, dropped empty
  /// groups) plus iterations/convergence/stop-reason. Computing the
  /// per-iteration energy costs one extra pass over the data; the default
  /// nullptr records nothing and costs nothing.
  RunDiagnostics* diagnostics = nullptr;
};

/// One ORCLUS cluster's oriented subspace.
struct OrientedSubspace {
  /// d x l orthonormal basis: the directions of *least* spread of the
  /// cluster (projection onto them yields small projected energy for
  /// members).
  Matrix basis;
};

/// Full result.
struct OrclusResult {
  Clustering clustering;
  std::vector<OrientedSubspace> subspaces;  ///< one per cluster
  /// Mean projected energy of objects in their cluster's subspace
  /// (the ORCLUS objective; lower is better).
  double projected_energy = 0.0;
};

/// ORCLUS: seeds -> iterated {assign by projected distance in each seed's
/// least-spread eigenspace; recompute seeds and eigenspaces; merge the
/// closest pair while reducing the working dimensionality} until k clusters
/// with l-dimensional subspaces remain. Finds clusters that axis-parallel
/// methods (PROCLUS, CLIQUE) cannot represent.
Result<OrclusResult> RunOrclus(const Matrix& data,
                               const OrclusOptions& options);

/// Distance of point x to centroid c measured inside the subspace spanned
/// by `basis` (d x l, orthonormal columns): || basis^T (x - c) ||^2.
double ProjectedSquaredDistance(const std::vector<double>& x,
                                const std::vector<double>& centroid,
                                const Matrix& basis);

/// Pointer form for hot paths (`x` has `xd` values); avoids the per-row
/// vector copies of the assignment sweeps.
double ProjectedSquaredDistance(const double* x, size_t xd,
                                const std::vector<double>& centroid,
                                const Matrix& basis);

}  // namespace multiclust

#endif  // MULTICLUST_SUBSPACE_ORCLUS_H_
