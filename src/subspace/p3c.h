#ifndef MULTICLUST_SUBSPACE_P3C_H_
#define MULTICLUST_SUBSPACE_P3C_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"
#include "subspace/subspace_cluster.h"

namespace multiclust {

/// Options for P3C-style projected clustering (Moise, Sander & Ester 2006;
/// tutorial slides 72, 78 — the cluster definition STATPC builds on).
struct P3cOptions {
  /// Bins per dimension for the relevance test.
  size_t xi = 10;
  /// Significance level of the per-bin and per-signature binomial tests
  /// (Bonferroni-corrected internally).
  double alpha = 1e-3;
  /// Maximum signature dimensionality (0 = unbounded).
  size_t max_dims = 3;
  /// Minimum objects for a reported cluster core.
  size_t min_support = 8;
};

/// A relevant interval found in one dimension (diagnostics).
struct RelevantInterval {
  size_t dim = 0;
  int bin_lo = 0;  ///< first bin of the merged interval
  int bin_hi = 0;  ///< last bin (inclusive)
  size_t support = 0;
};

/// P3C (statistical core detection): (1) per dimension, find bins whose
/// occupancy is significantly above the uniform expectation and merge
/// adjacent ones into relevant intervals; (2) combine intervals across
/// dimensions apriori-style into *p-signatures*, keeping a signature only
/// when its support is significantly larger than what its parent signature
/// would project into the added interval by chance; (3) report maximal
/// signatures as projected cluster cores. (The full paper's EM refinement
/// and outlier post-processing are out of scope; cores are returned
/// directly, which is what the selection algorithms here consume.)
Result<SubspaceClustering> RunP3c(const Matrix& data,
                                  const P3cOptions& options,
                                  std::vector<RelevantInterval>* intervals =
                                      nullptr);

}  // namespace multiclust

#endif  // MULTICLUST_SUBSPACE_P3C_H_
