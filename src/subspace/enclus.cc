#include "subspace/enclus.h"

#include <algorithm>
#include <set>

#include "common/parallel.h"
#include "common/trace.h"
#include "stats/grid.h"

namespace multiclust {

Result<std::vector<ScoredSubspace>> RunEnclus(const Matrix& data,
                                              const EnclusOptions& options) {
  if (options.omega <= 0) {
    return Status::InvalidArgument("ENCLUS: omega must be positive");
  }
  MC_ASSIGN_OR_RETURN(Grid grid, Grid::Build(data, options.xi));
  const size_t d = data.cols();
  const size_t max_dims =
      options.max_dims == 0 ? d : std::min(options.max_dims, d);

  MULTICLUST_TRACE_SPAN("subspace.enclus.run");
  std::vector<double> dim_entropy(d);
  {
    MULTICLUST_TRACE_SPAN("subspace.enclus.entropy_scan");
    ParallelFor(0, d, 1, [&](size_t lo, size_t hi) {
      for (size_t j = lo; j < hi; ++j) {
        dim_entropy[j] = grid.SubspaceEntropy({j});
      }
    });
  }

  std::vector<ScoredSubspace> result;
  // Level 1: all single dimensions below the entropy ceiling.
  std::vector<std::vector<size_t>> level;
  for (size_t j = 0; j < d; ++j) {
    if (dim_entropy[j] < options.omega) {
      ScoredSubspace s;
      s.dims = {j};
      s.entropy = dim_entropy[j];
      s.interest = 0.0;  // single dimension has no correlation gain
      if (s.interest >= options.epsilon) result.push_back(s);
      level.push_back({j});
    }
  }

  // Bottom-up: entropy is monotone non-decreasing in dims, so any subspace
  // with a pruned projection is pruned too (downward closure, slide 71).
  for (size_t depth = 2; depth <= max_dims && level.size() >= 2; ++depth) {
    std::set<std::vector<size_t>> candidates;
    for (size_t i = 0; i < level.size(); ++i) {
      for (size_t j = i + 1; j < level.size(); ++j) {
        bool ok = true;
        for (size_t p = 0; p + 1 < level[i].size(); ++p) {
          if (level[i][p] != level[j][p]) {
            ok = false;
            break;
          }
        }
        if (!ok || level[i].back() >= level[j].back()) continue;
        std::vector<size_t> cand = level[i];
        cand.push_back(level[j].back());
        // All (k-1)-projections must have survived.
        bool all_present = true;
        for (size_t skip = 0; skip < cand.size() && all_present; ++skip) {
          std::vector<size_t> proj;
          for (size_t p = 0; p < cand.size(); ++p) {
            if (p != skip) proj.push_back(cand[p]);
          }
          if (std::find(level.begin(), level.end(), proj) == level.end()) {
            all_present = false;
          }
        }
        if (all_present) candidates.insert(std::move(cand));
      }
    }
    // The entropy scan per candidate subspace is the expensive part of a
    // level; precompute all of them in parallel, then filter serially so
    // the result order matches the serial algorithm.
    const std::vector<std::vector<size_t>> cands(candidates.begin(),
                                                 candidates.end());
    std::vector<double> cand_entropy(cands.size());
    {
      MULTICLUST_TRACE_SPAN("subspace.enclus.entropy_scan");
      ParallelFor(0, cands.size(), 1, [&](size_t lo, size_t hi) {
        for (size_t c = lo; c < hi; ++c) {
          cand_entropy[c] = grid.SubspaceEntropy(cands[c]);
        }
      });
    }
    std::vector<std::vector<size_t>> next;
    for (size_t c = 0; c < cands.size(); ++c) {
      const std::vector<size_t>& cand = cands[c];
      const double h = cand_entropy[c];
      if (h >= options.omega) continue;
      double sum_h = 0.0;
      for (size_t dim : cand) sum_h += dim_entropy[dim];
      ScoredSubspace s;
      s.dims = cand;
      s.entropy = h;
      s.interest = sum_h - h;
      if (s.interest >= options.epsilon) result.push_back(s);
      next.push_back(cand);
    }
    level = std::move(next);
  }

  std::sort(result.begin(), result.end(),
            [](const ScoredSubspace& a, const ScoredSubspace& b) {
              if (a.entropy != b.entropy) return a.entropy < b.entropy;
              return a.dims < b.dims;
            });
  return result;
}

}  // namespace multiclust
