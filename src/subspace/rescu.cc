#include "subspace/rescu.h"

#include <algorithm>
#include <set>

namespace multiclust {

Result<SubspaceClustering> RunRescu(const SubspaceClustering& candidates,
                                    const RescuOptions& options) {
  if (options.max_redundancy < 0.0 || options.max_redundancy >= 1.0) {
    return Status::InvalidArgument("RESCU: max_redundancy must be in [0, 1)");
  }
  const LocalInterestFn interest =
      options.interestingness ? options.interestingness
                              : DefaultLocalInterest();

  std::vector<char> used(candidates.clusters.size(), 0);
  std::set<int> covered;
  SubspaceClustering selected;

  while (true) {
    // Most interesting candidate that is not redundant w.r.t. coverage.
    double best_score = 0.0;
    int best = -1;
    size_t best_new = 0;
    for (size_t i = 0; i < candidates.clusters.size(); ++i) {
      if (used[i]) continue;
      const SubspaceCluster& c = candidates.clusters[i];
      if (c.objects.empty()) continue;
      size_t new_objects = 0;
      for (int obj : c.objects) {
        if (covered.find(obj) == covered.end()) ++new_objects;
      }
      const double redundancy =
          1.0 - static_cast<double>(new_objects) /
                    static_cast<double>(c.objects.size());
      if (redundancy > options.max_redundancy) continue;
      if (new_objects < options.min_new_objects) continue;
      const double score = interest(c);
      if (best < 0 || score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
        best_new = new_objects;
      }
    }
    if (best < 0 || best_new == 0) break;
    used[best] = 1;
    SubspaceCluster kept = candidates.clusters[best];
    kept.source = "rescu(" + kept.source + ")";
    for (int obj : kept.objects) covered.insert(obj);
    selected.clusters.push_back(std::move(kept));
  }
  return selected;
}

}  // namespace multiclust
