#ifndef MULTICLUST_SUBSPACE_ENCLUS_H_
#define MULTICLUST_SUBSPACE_ENCLUS_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace multiclust {

/// Options for ENCLUS (Cheng, Fu & Zhang 1999; tutorial slides 88-89).
struct EnclusOptions {
  /// Intervals per dimension for the occupancy grid.
  size_t xi = 10;
  /// Entropy ceiling (nats): a subspace is interesting when H(S) < omega.
  double omega = 6.0;
  /// Interest floor: interest(S) = sum_d H({d}) - H(S) must exceed epsilon
  /// (high interdimensional correlation).
  double epsilon = 0.0;
  /// Maximum subspace dimensionality (0 = unbounded).
  size_t max_dims = 3;
};

/// A scored subspace.
struct ScoredSubspace {
  std::vector<size_t> dims;
  double entropy = 0.0;   ///< H(S), lower = clusters+coverage better
  double interest = 0.0;  ///< sum H({d}) - H(S), higher = more correlated
};

/// ENCLUS: ranks subspaces by grid-cell entropy, decoupling subspace search
/// from cluster detection. Uses the downward closure of entropy (adding a
/// dimension never decreases H) to prune bottom-up. Results are sorted by
/// ascending entropy (most interesting first).
Result<std::vector<ScoredSubspace>> RunEnclus(const Matrix& data,
                                              const EnclusOptions& options);

}  // namespace multiclust

#endif  // MULTICLUST_SUBSPACE_ENCLUS_H_
