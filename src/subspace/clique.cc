#include "subspace/clique.h"

#include <cmath>

#include "common/runguard.h"
#include "common/trace.h"

namespace multiclust {

Result<SubspaceClustering> RunClique(const Matrix& data,
                                     const CliqueOptions& options) {
  if (options.tau <= 0.0 || options.tau > 1.0) {
    return Status::InvalidArgument("CLIQUE: tau must be in (0, 1]");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("CLIQUE", data));
  MC_ASSIGN_OR_RETURN(Grid grid, Grid::Build(data, options.xi));
  const size_t min_support = static_cast<size_t>(
      std::ceil(options.tau * static_cast<double>(data.rows())));
  // A constant threshold per dimensionality (CLIQUE's fixed tau; contrast
  // with SCHISM's adaptive threshold).
  std::vector<size_t> thresholds(data.cols() + 1,
                                 std::max<size_t>(1, min_support));
  std::vector<GridUnit> units;
  {
    MULTICLUST_TRACE_SPAN("subspace.clique.apriori");
    units = MineDenseUnits(grid, thresholds, options.max_dims);
  }
  SubspaceClustering result;
  result.clusters = UnitsToClusters(units, "clique");
  return result;
}

}  // namespace multiclust
