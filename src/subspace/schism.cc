#include "subspace/schism.h"

#include <algorithm>
#include <cmath>

#include "common/runguard.h"
#include "stats/tails.h"

namespace multiclust {

std::vector<size_t> SchismSupportThresholds(size_t n, size_t dims, size_t xi,
                                            double tau) {
  std::vector<size_t> thresholds(dims + 1, 1);
  for (size_t s = 1; s <= dims; ++s) {
    const double frac = SchismThresholdFraction(s, xi, n, tau);
    thresholds[s] = std::max<size_t>(
        2, static_cast<size_t>(std::ceil(frac * static_cast<double>(n))));
  }
  return thresholds;
}

Result<SubspaceClustering> RunSchism(const Matrix& data,
                                     const SchismOptions& options) {
  if (options.tau <= 0.0 || options.tau >= 1.0) {
    return Status::InvalidArgument("SCHISM: tau must be in (0, 1)");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("SCHISM", data));
  MC_ASSIGN_OR_RETURN(Grid grid, Grid::Build(data, options.xi));
  const std::vector<size_t> thresholds = SchismSupportThresholds(
      data.rows(), data.cols(), options.xi, options.tau);
  const std::vector<GridUnit> units =
      MineDenseUnits(grid, thresholds, options.max_dims);
  SubspaceClustering result;
  result.clusters = UnitsToClusters(units, "schism");
  return result;
}

}  // namespace multiclust
