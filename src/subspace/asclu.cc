#include "subspace/asclu.h"

#include <set>

namespace multiclust {

bool IsValidAlternative(const SubspaceCluster& c,
                        const SubspaceClustering& known, double beta,
                        double alpha) {
  if (c.objects.empty()) return false;
  std::set<int> already;
  for (const SubspaceCluster& k : known.clusters) {
    if (!CoversSubspace(c.dims, k.dims, beta) &&
        !CoversSubspace(k.dims, c.dims, beta)) {
      continue;  // different concept: no constraint
    }
    for (int obj : k.objects) already.insert(obj);
  }
  size_t fresh = 0;
  for (int obj : c.objects) {
    if (already.find(obj) == already.end()) ++fresh;
  }
  return static_cast<double>(fresh) >=
         alpha * static_cast<double>(c.objects.size());
}

Result<SubspaceClustering> RunAsclu(const SubspaceClustering& candidates,
                                    const SubspaceClustering& known,
                                    const AscluOptions& options) {
  if (options.alpha_known <= 0.0 || options.alpha_known > 1.0) {
    return Status::InvalidArgument("ASCLU: alpha_known must be in (0, 1]");
  }
  SubspaceClustering valid;
  for (const SubspaceCluster& c : candidates.clusters) {
    if (IsValidAlternative(c, known, options.osclu.beta,
                           options.alpha_known)) {
      valid.clusters.push_back(c);
    }
  }
  MC_ASSIGN_OR_RETURN(SubspaceClustering selected,
                      RunOsclu(valid, options.osclu));
  for (SubspaceCluster& c : selected.clusters) {
    c.source = "asclu";
  }
  return selected;
}

}  // namespace multiclust
