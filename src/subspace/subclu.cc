#include "subspace/subclu.h"

#include <algorithm>
#include <map>
#include <set>

#include "cluster/dbscan.h"
#include "common/runguard.h"

namespace multiclust {

namespace {

// DBSCAN restricted to `candidates` (object ids) in subspace `dims`.
// Returns clusters as sorted object-id lists.
std::vector<std::vector<int>> DbscanOnSubset(
    const Matrix& data, const std::vector<int>& candidates,
    const std::vector<size_t>& dims, double eps, size_t min_pts) {
  const size_t m = candidates.size();
  const double eps2 = eps * eps;
  std::vector<std::vector<int>> neighbors(m);
  for (size_t i = 0; i < m; ++i) {
    neighbors[i].push_back(static_cast<int>(i));
    for (size_t j = i + 1; j < m; ++j) {
      double s = 0.0;
      const double* a = data.row_data(candidates[i]);
      const double* b = data.row_data(candidates[j]);
      for (size_t d : dims) {
        const double diff = a[d] - b[d];
        s += diff * diff;
        if (s > eps2) break;
      }
      if (s <= eps2) {
        neighbors[i].push_back(static_cast<int>(j));
        neighbors[j].push_back(static_cast<int>(i));
      }
    }
  }
  const Clustering c = DbscanFromNeighbors(neighbors, min_pts);
  std::vector<std::vector<int>> clusters(c.NumClusters());
  for (size_t i = 0; i < m; ++i) {
    if (c.labels[i] >= 0) clusters[c.labels[i]].push_back(candidates[i]);
  }
  for (auto& cl : clusters) std::sort(cl.begin(), cl.end());
  return clusters;
}

}  // namespace

Result<SubspaceClustering> RunSubclu(const Matrix& data,
                                     const SubcluOptions& options) {
  if (options.eps <= 0 || options.min_pts == 0) {
    return Status::InvalidArgument("SUBCLU: eps and min_pts must be positive");
  }
  const size_t n = data.rows();
  const size_t d = data.cols();
  if (n == 0 || d == 0) return Status::InvalidArgument("SUBCLU: empty data");
  MC_RETURN_IF_ERROR(ValidateMatrix("SUBCLU", data));
  const size_t max_dims =
      options.max_dims == 0 ? d : std::min(options.max_dims, d);

  SubspaceClustering result;
  // clusters_by_subspace[S] = clusters found in subspace S.
  std::map<std::vector<size_t>, std::vector<std::vector<int>>> level;

  // Level 1: DBSCAN in each single dimension over all objects.
  std::vector<int> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = static_cast<int>(i);
  for (size_t dim = 0; dim < d; ++dim) {
    const std::vector<size_t> dims = {dim};
    auto clusters =
        DbscanOnSubset(data, all, dims, options.eps, options.min_pts);
    if (clusters.empty()) continue;
    for (const auto& c : clusters) {
      result.clusters.push_back({dims, c, "subclu"});
    }
    level[dims] = std::move(clusters);
  }

  // Levels 2..max_dims: apriori candidate subspaces.
  for (size_t depth = 2; depth <= max_dims && level.size() >= 2; ++depth) {
    std::map<std::vector<size_t>, std::vector<std::vector<int>>> next;
    std::vector<std::vector<size_t>> subspaces;
    subspaces.reserve(level.size());
    for (const auto& [s, c] : level) subspaces.push_back(s);

    std::set<std::vector<size_t>> candidates;
    for (size_t i = 0; i < subspaces.size(); ++i) {
      for (size_t j = i + 1; j < subspaces.size(); ++j) {
        // Join when the (k-2)-prefix matches.
        bool ok = true;
        for (size_t p = 0; p + 1 < subspaces[i].size(); ++p) {
          if (subspaces[i][p] != subspaces[j][p]) {
            ok = false;
            break;
          }
        }
        if (!ok || subspaces[i].back() >= subspaces[j].back()) continue;
        std::vector<size_t> cand = subspaces[i];
        cand.push_back(subspaces[j].back());
        // Prune: every (k-1)-dim projection must contain clusters.
        bool all_present = true;
        for (size_t skip = 0; skip < cand.size() && all_present; ++skip) {
          std::vector<size_t> proj;
          for (size_t p = 0; p < cand.size(); ++p) {
            if (p != skip) proj.push_back(cand[p]);
          }
          if (level.find(proj) == level.end()) all_present = false;
        }
        if (all_present) candidates.insert(std::move(cand));
      }
    }

    for (const std::vector<size_t>& cand : candidates) {
      // Pick the (k-1)-dim projection with the fewest clustered objects
      // (SUBCLU's best-subspace heuristic) and re-cluster only those.
      size_t best_count = n + 1;
      const std::vector<std::vector<int>>* best = nullptr;
      for (size_t skip = 0; skip < cand.size(); ++skip) {
        std::vector<size_t> proj;
        for (size_t p = 0; p < cand.size(); ++p) {
          if (p != skip) proj.push_back(cand[p]);
        }
        auto it = level.find(proj);
        if (it == level.end()) continue;
        size_t count = 0;
        for (const auto& c : it->second) count += c.size();
        if (count < best_count) {
          best_count = count;
          best = &it->second;
        }
      }
      if (best == nullptr) continue;

      std::vector<std::vector<int>> found;
      for (const std::vector<int>& base_cluster : *best) {
        auto clusters = DbscanOnSubset(data, base_cluster, cand, options.eps,
                                       options.min_pts);
        for (auto& c : clusters) found.push_back(std::move(c));
      }
      if (found.empty()) continue;
      // Deduplicate identical object sets from different base clusters.
      std::sort(found.begin(), found.end());
      found.erase(std::unique(found.begin(), found.end()), found.end());
      for (const auto& c : found) {
        result.clusters.push_back({cand, c, "subclu"});
      }
      next[cand] = std::move(found);
    }
    level = std::move(next);
  }
  return result;
}

}  // namespace multiclust
