#ifndef MULTICLUST_SUBSPACE_SCHISM_H_
#define MULTICLUST_SUBSPACE_SCHISM_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"
#include "subspace/subspace_cluster.h"

namespace multiclust {

/// Options for SCHISM (Sequeira & Zaki 2004; tutorial slides 72-73).
struct SchismOptions {
  /// Intervals per dimension.
  size_t xi = 10;
  /// Significance level of the Chernoff-Hoeffding bound (smaller = stricter
  /// threshold).
  double tau = 0.05;
  /// Maximum subspace dimensionality to mine (0 = unbounded).
  size_t max_dims = 0;
};

/// SCHISM: like CLIQUE but with the dimensionality-adaptive support
/// threshold tau(s) = (1/xi)^s + sqrt(ln(1/tau) / 2n), which *decreases*
/// with subspace dimensionality — fixing CLIQUE's blindness to the fact
/// that density naturally shrinks as dimensions are added.
Result<SubspaceClustering> RunSchism(const Matrix& data,
                                     const SchismOptions& options);

/// The per-dimensionality minimum support counts SCHISM uses for `n`
/// objects (index s = subspace dimensionality; entry 0 unused).
std::vector<size_t> SchismSupportThresholds(size_t n, size_t dims, size_t xi,
                                            double tau);

}  // namespace multiclust

#endif  // MULTICLUST_SUBSPACE_SCHISM_H_
