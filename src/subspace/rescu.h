#ifndef MULTICLUST_SUBSPACE_RESCU_H_
#define MULTICLUST_SUBSPACE_RESCU_H_

#include "common/result.h"
#include "subspace/osclu.h"
#include "subspace/subspace_cluster.h"

namespace multiclust {

/// Options for RESCU-style relevance selection (Müller et al. 2009c;
/// tutorial slide 79).
struct RescuOptions {
  /// A candidate is redundant when more than this fraction of its objects
  /// is already covered by the selected result (in any subspace).
  double max_redundancy = 0.5;
  /// Stop when the best remaining candidate adds fewer than this many new
  /// objects.
  size_t min_new_objects = 2;
  LocalInterestFn interestingness;  ///< empty = |O| * |S|
};

/// RESCU's abstract relevance model: iteratively admit the most interesting
/// non-redundant cluster — interestingness rewards large, high-dimensional
/// clusters; redundancy measures object overlap with the running result.
/// The outcome is a compact relevant clustering M ⊆ ALL that still covers
/// the data (greedy weighted set cover).
Result<SubspaceClustering> RunRescu(const SubspaceClustering& candidates,
                                    const RescuOptions& options);

}  // namespace multiclust

#endif  // MULTICLUST_SUBSPACE_RESCU_H_
