#ifndef MULTICLUST_SUBSPACE_OSCLU_H_
#define MULTICLUST_SUBSPACE_OSCLU_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "subspace/subspace_cluster.h"

namespace multiclust {

/// Local interestingness of a candidate cluster (OSCLU's exchangeable
/// I_local; default = support * dimensionality).
using LocalInterestFn = std::function<double(const SubspaceCluster&)>;

/// Default I_local(C) = |O| * |S|.
LocalInterestFn DefaultLocalInterest();

/// Options for OSCLU (Günnemann et al. 2009; tutorial slides 80-85).
struct OscluOptions {
  /// Subspace-coverage parameter: T is covered by S iff |T ∩ S| >= beta |T|
  /// (beta -> 0: only disjoint subspaces are distinct concepts; beta = 1:
  /// only sub-projections are covered).
  double beta = 0.5;
  /// Orthogonality parameter: a cluster must contribute at least an alpha
  /// fraction of new objects within its concept group.
  double alpha = 0.3;
  LocalInterestFn local_interest;  ///< empty = DefaultLocalInterest()
};

/// Tests OSCLU's covered-subspace relation: whether subspace `t` is covered
/// by subspace `s` at level beta (slide 82).
bool CoversSubspace(const std::vector<size_t>& s, const std::vector<size_t>& t,
                    double beta);

/// Global interestingness I_global(C, M): the fraction of C's objects not
/// already clustered by members of C's concept group within M (slide 83).
double GlobalInterest(const SubspaceCluster& c,
                      const std::vector<SubspaceCluster>& m, double beta);

/// OSCLU result-selection: from all candidate clusters, greedily builds an
/// *orthogonal clustering* — every selected cluster keeps
/// I_global >= alpha against the rest of the selection — maximising the sum
/// of local interestingness. (Computing the exact optimum is NP-hard by
/// reduction from SetPacking, slide 85; this is the greedy approximation.)
Result<SubspaceClustering> RunOsclu(const SubspaceClustering& candidates,
                                    const OscluOptions& options);

}  // namespace multiclust

#endif  // MULTICLUST_SUBSPACE_OSCLU_H_
