#ifndef MULTICLUST_SUBSPACE_PREDECON_H_
#define MULTICLUST_SUBSPACE_PREDECON_H_

#include <vector>

#include "cluster/clustering.h"
#include "common/result.h"

namespace multiclust {

/// Options for PreDeCon (Böhm et al. 2004a; tutorial slide 66):
/// density-connected clustering with *local subspace preferences* — each
/// point prefers the attributes along which its neighbourhood has low
/// variance, and distances are re-weighted accordingly.
struct PredeconOptions {
  /// Neighbourhood radius, both for preference estimation and clustering.
  double eps = 1.0;
  /// Variance threshold: attribute j is a preference dimension of p when
  /// the variance of j over p's eps-neighbourhood is <= delta.
  double delta = 0.25;
  /// Weight applied to preference dimensions in the weighted distance
  /// (kappa >> 1 makes deviations along preferred attributes expensive).
  double kappa = 100.0;
  /// Core threshold on the preference-weighted neighbourhood size.
  size_t min_pts = 5;
  /// Maximum preference dimensionality of a core point (lambda); points
  /// preferring more dimensions than this cannot be cores. 0 = no limit.
  size_t max_pref_dims = 0;
};

/// Per-run diagnostics.
struct PredeconInfo {
  /// Preference dimensionality of each point.
  std::vector<size_t> preference_dims;
};

/// PreDeCon: computes each point's subspace preference vector from the
/// variance structure of its eps-neighbourhood, then runs the DBSCAN
/// expansion under the preference-weighted (general/symmetric) distance.
/// Finds axis-parallel subspace clusters with noise labelling, where plain
/// DBSCAN drowns in irrelevant dimensions.
Result<Clustering> RunPredecon(const Matrix& data,
                               const PredeconOptions& options,
                               PredeconInfo* info = nullptr);

}  // namespace multiclust

#endif  // MULTICLUST_SUBSPACE_PREDECON_H_
