#ifndef MULTICLUST_SUBSPACE_CLIQUE_H_
#define MULTICLUST_SUBSPACE_CLIQUE_H_

#include "common/result.h"
#include "linalg/matrix.h"
#include "subspace/subspace_cluster.h"

namespace multiclust {

/// Options for CLIQUE (Agrawal et al. 1998; tutorial slides 69-71).
struct CliqueOptions {
  /// Intervals per dimension.
  size_t xi = 10;
  /// Density threshold as a fraction of all objects a cell must contain.
  double tau = 0.02;
  /// Maximum subspace dimensionality to mine (0 = unbounded).
  size_t max_dims = 0;
};

/// Runs CLIQUE: bottom-up apriori mining of dense grid cells over all
/// subspaces (monotonicity pruning), then merging adjacent dense cells of
/// each subspace into clusters. Every object can appear in many clusters in
/// many subspaces — the archetypal "all multiple clusterings, no
/// redundancy control" method (M = ALL).
Result<SubspaceClustering> RunClique(const Matrix& data,
                                     const CliqueOptions& options);

}  // namespace multiclust

#endif  // MULTICLUST_SUBSPACE_CLIQUE_H_
