#ifndef MULTICLUST_SUBSPACE_STATPC_H_
#define MULTICLUST_SUBSPACE_STATPC_H_

#include "common/result.h"
#include "linalg/matrix.h"
#include "subspace/subspace_cluster.h"

namespace multiclust {

/// Options for STATPC-style selection (Moise & Sander 2008; tutorial
/// slide 78).
struct StatpcOptions {
  /// Significance level for the per-cluster binomial test (applied with a
  /// Bonferroni correction over the candidate count).
  double alpha0 = 1e-3;
  /// A candidate is "explained" by the current result when at least this
  /// fraction of its objects is already covered by selected clusters.
  double explain_fraction = 0.75;
  /// Grid resolution used to estimate the volume fraction of a cluster's
  /// bounding box inside its subspace.
  size_t xi = 10;
};

/// Per-candidate significance diagnostics.
struct StatpcScore {
  size_t candidate_index = 0;
  double p_value = 1.0;
  bool significant = false;
};

/// STATPC-style result selection: (1) keep candidates whose support is
/// statistically significantly larger than the uniform-data expectation
/// under a binomial tail test (the expected occupancy of the candidate's
/// bounding volume in its subspace), Bonferroni-corrected; (2) greedily
/// select the most significant clusters, skipping any candidate already
/// *explained* by the selection. The result is a small set of significant,
/// mutually explanatory-irredundant clusters.
///
/// `data` is needed to compute each candidate's bounding volume.
Result<SubspaceClustering> RunStatpc(const Matrix& data,
                                     const SubspaceClustering& candidates,
                                     const StatpcOptions& options,
                                     std::vector<StatpcScore>* scores = nullptr);

}  // namespace multiclust

#endif  // MULTICLUST_SUBSPACE_STATPC_H_
