#ifndef MULTICLUST_SUBSPACE_RIS_H_
#define MULTICLUST_SUBSPACE_RIS_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace multiclust {

/// Options for RIS — Ranking Interesting Subspaces (Kailing et al. 2003;
/// tutorial slide 88): density-based subspace *search*, decoupled from the
/// clustering step.
struct RisOptions {
  /// Epsilon of the density predicate (applied in every subspace).
  double eps = 0.5;
  /// Core threshold: an object is a core object in subspace S when its
  /// eps-neighbourhood in S holds at least min_pts objects (incl. itself).
  size_t min_pts = 5;
  /// Maximum subspace dimensionality explored (0 = unbounded).
  size_t max_dims = 3;
  /// Keep only subspaces with quality above this floor.
  double min_quality = 0.0;
};

/// A density-ranked subspace.
struct RankedSubspace {
  std::vector<size_t> dims;
  /// Fraction of objects that are core objects in this subspace.
  double core_fraction = 0.0;
  /// Quality: core fraction normalised by the value expected under a
  /// dimensionality-matched uniform baseline (so higher-dimensional
  /// subspaces are not penalised for naturally sparser neighbourhoods).
  double quality = 0.0;
};

/// RIS: evaluates subspaces bottom-up (monotonicity: a core object in S is
/// a core object in every subset of S, enabling apriori pruning) and ranks
/// them by normalised density quality, most interesting first. Any
/// clusterer can then be run on the top-ranked subspaces.
Result<std::vector<RankedSubspace>> RunRis(const Matrix& data,
                                           const RisOptions& options);

}  // namespace multiclust

#endif  // MULTICLUST_SUBSPACE_RIS_H_
