#include "subspace/ris.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace multiclust {

namespace {

// Fraction of objects whose eps-neighbourhood in `dims` has >= min_pts
// members (including the object).
double CoreFraction(const Matrix& data, const std::vector<size_t>& dims,
                    double eps, size_t min_pts) {
  const size_t n = data.rows();
  const double eps2 = eps * eps;
  std::vector<size_t> neighbor_count(n, 1);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double s = 0.0;
      const double* a = data.row_data(i);
      const double* b = data.row_data(j);
      for (size_t dim : dims) {
        const double diff = a[dim] - b[dim];
        s += diff * diff;
        if (s > eps2) break;
      }
      if (s <= eps2) {
        ++neighbor_count[i];
        ++neighbor_count[j];
      }
    }
  }
  size_t cores = 0;
  for (size_t c : neighbor_count) {
    if (c >= min_pts) ++cores;
  }
  return static_cast<double>(cores) / static_cast<double>(n);
}

}  // namespace

Result<std::vector<RankedSubspace>> RunRis(const Matrix& data,
                                           const RisOptions& options) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  if (n == 0 || d == 0) return Status::InvalidArgument("RIS: empty data");
  if (options.eps <= 0 || options.min_pts == 0) {
    return Status::InvalidArgument("RIS: eps and min_pts must be positive");
  }
  const size_t max_dims =
      options.max_dims == 0 ? d : std::min(options.max_dims, d);

  // Per-dimension data spans, for the uniform baseline.
  std::vector<double> span(d, 1.0);
  for (size_t j = 0; j < d; ++j) {
    double mn = data.at(0, j), mx = data.at(0, j);
    for (size_t i = 1; i < n; ++i) {
      mn = std::min(mn, data.at(i, j));
      mx = std::max(mx, data.at(i, j));
    }
    span[j] = std::max(mx - mn, 1e-9);
  }
  // Expected core fraction for uniform data in subspace S: the expected
  // neighbourhood count is n * prod_j min(1, 2 eps / span_j) (an upper
  // bound using the L_inf box that contains the eps-ball); cores appear
  // when that expectation reaches min_pts. We use the smooth ratio
  // expected_neighbors / min_pts capped at 1 as baseline.
  auto baseline = [&](const std::vector<size_t>& dims) {
    double vol = 1.0;
    for (size_t j : dims) {
      vol *= std::min(1.0, 2.0 * options.eps / span[j]);
    }
    const double expected = static_cast<double>(n) * vol;
    return std::min(1.0, expected / static_cast<double>(options.min_pts));
  };

  std::vector<RankedSubspace> result;
  std::vector<std::vector<size_t>> level;
  for (size_t j = 0; j < d; ++j) {
    const std::vector<size_t> dims = {j};
    const double frac = CoreFraction(data, dims, options.eps,
                                     options.min_pts);
    if (frac <= 0) continue;  // monotonicity: no cores, prune supersets
    RankedSubspace rs;
    rs.dims = dims;
    rs.core_fraction = frac;
    rs.quality = frac / std::max(baseline(dims), 1e-6);
    if (rs.quality >= options.min_quality) result.push_back(rs);
    level.push_back(dims);
  }

  for (size_t depth = 2; depth <= max_dims && level.size() >= 2; ++depth) {
    std::set<std::vector<size_t>> candidates;
    for (size_t i = 0; i < level.size(); ++i) {
      for (size_t j = i + 1; j < level.size(); ++j) {
        bool ok = true;
        for (size_t p = 0; p + 1 < level[i].size(); ++p) {
          if (level[i][p] != level[j][p]) {
            ok = false;
            break;
          }
        }
        if (!ok || level[i].back() >= level[j].back()) continue;
        std::vector<size_t> cand = level[i];
        cand.push_back(level[j].back());
        bool all_present = true;
        for (size_t skip = 0; skip < cand.size() && all_present; ++skip) {
          std::vector<size_t> proj;
          for (size_t p = 0; p < cand.size(); ++p) {
            if (p != skip) proj.push_back(cand[p]);
          }
          if (std::find(level.begin(), level.end(), proj) == level.end()) {
            all_present = false;
          }
        }
        if (all_present) candidates.insert(std::move(cand));
      }
    }
    std::vector<std::vector<size_t>> next;
    for (const std::vector<size_t>& cand : candidates) {
      const double frac = CoreFraction(data, cand, options.eps,
                                       options.min_pts);
      if (frac <= 0) continue;
      RankedSubspace rs;
      rs.dims = cand;
      rs.core_fraction = frac;
      rs.quality = frac / std::max(baseline(cand), 1e-6);
      if (rs.quality >= options.min_quality) result.push_back(rs);
      next.push_back(cand);
    }
    level = std::move(next);
  }

  std::sort(result.begin(), result.end(),
            [](const RankedSubspace& a, const RankedSubspace& b) {
              if (a.quality != b.quality) return a.quality > b.quality;
              return a.dims < b.dims;
            });
  return result;
}

}  // namespace multiclust
