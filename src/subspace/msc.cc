#include "subspace/msc.h"

#include <algorithm>
#include <string>

#include "cluster/hierarchical.h"
#include "common/runguard.h"
#include "common/trace.h"
#include "cluster/spectral.h"
#include "stats/hsic.h"

namespace multiclust {

Result<MscResult> RunMultipleSpectralViews(const Matrix& data,
                                           const MscOptions& options) {
  const size_t d = data.cols();
  if (options.num_views == 0 || options.num_views > d) {
    return Status::InvalidArgument("mSC: invalid number of views");
  }
  if (options.k == 0 || options.k > data.rows()) {
    return Status::InvalidArgument("mSC: invalid k");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("mSC", data));
  MULTICLUST_TRACE_SPAN("subspace.msc.run");
  BudgetTracker guard(options.budget, "msc");

  MscResult result;
  // Pairwise dependence between single dimensions.
  result.dim_dependence = Matrix(d, d);
  double max_dep = 0.0;
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a + 1; b < d; ++b) {
      const Matrix xa = data.SelectColumns({a});
      const Matrix xb = data.SelectColumns({b});
      MC_ASSIGN_OR_RETURN(double dep, Hsic(xa, xb, options.gamma,
                                           options.gamma));
      dep = std::max(dep, 0.0);
      result.dim_dependence.at(a, b) = dep;
      result.dim_dependence.at(b, a) = dep;
      max_dep = std::max(max_dep, dep);
    }
  }

  // Group dependent dimensions: distance = max_dep - HSIC, average link.
  Matrix dist(d, d);
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = 0; b < d; ++b) {
      dist.at(a, b) = a == b ? 0.0
                             : max_dep - result.dim_dependence.at(a, b);
    }
  }
  AgglomerativeOptions agg;
  agg.k = options.num_views;
  agg.linkage = Linkage::kAverage;
  MC_ASSIGN_OR_RETURN(AgglomerativeResult blocks,
                      AgglomerateFromDistances(dist, agg));

  // Spectral clustering inside each dimension block. A view whose
  // spectral run fails recoverably (degenerate eigendecomposition) or
  // whose turn arrives after the deadline is skipped with a warning; the
  // surviving views still form a usable (partial) solution set.
  for (size_t v = 0; v < options.num_views; ++v) {
    if (guard.Cancelled()) return guard.CancelledStatus();
    MscView view;
    for (size_t j = 0; j < d; ++j) {
      if (blocks.flat.labels[j] == static_cast<int>(v)) {
        view.dims.push_back(j);
      }
    }
    if (view.dims.empty()) continue;
    if (!result.views.empty() && guard.DeadlineExpired()) {
      result.warnings.push_back("mSC: deadline expired before view " +
                                std::to_string(v));
      AddWarning(options.diagnostics, "msc",
                 "deadline expired before view " + std::to_string(v));
      break;
    }
    const Matrix projected = data.SelectColumns(view.dims);
    SpectralOptions spec;
    spec.k = options.k;
    spec.gamma = options.gamma;
    spec.seed = options.seed + v;
    spec.budget = guard.Remaining();
    // Re-attach the checkpoint channel Remaining() strips: each view's
    // embedded k-means fingerprints its own embedding, so the shared slot
    // cannot leak state across views.
    spec.budget.checkpoint = options.budget.checkpoint;
    spec.diagnostics = options.diagnostics;
    Result<Clustering> clustering = RunSpectral(projected, spec);
    if (!clustering.ok()) {
      // A cancelled or crash-aborted view ends the whole run; only
      // recoverable computation errors degrade to a skipped view.
      if (clustering.status().code() == StatusCode::kCancelled ||
          clustering.status().code() == StatusCode::kAborted) {
        return clustering.status();
      }
      result.warnings.push_back("mSC: view " + std::to_string(v) +
                                " skipped: " +
                                clustering.status().ToString());
      AddWarning(options.diagnostics, "msc",
                 "view " + std::to_string(v) +
                     " skipped: " + clustering.status().ToString());
      continue;
    }
    view.clustering = std::move(*clustering);
    view.clustering.algorithm = "msc-spectral";
    MC_RETURN_IF_ERROR(result.solutions.Add(view.clustering));
    result.views.push_back(std::move(view));
  }
  if (result.views.empty()) {
    return Status::ComputationError(
        "mSC: no view produced a clustering" +
        (result.warnings.empty() ? std::string()
                                 : "; " + result.warnings.front()));
  }
  if (options.diagnostics != nullptr) {
    // The trace accumulated one segment per view; report it under the
    // umbrella algorithm.
    options.diagnostics->algorithm = "msc";
  }
  return result;
}

}  // namespace multiclust
