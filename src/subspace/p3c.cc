#include "subspace/p3c.h"

#include <algorithm>
#include <map>

#include "common/runguard.h"
#include "stats/grid.h"
#include "stats/tails.h"

namespace multiclust {

namespace {

// A signature: sorted (dim -> interval index into `relevant`) constraints,
// with its supporting objects.
struct Signature {
  std::vector<size_t> interval_ids;  // indices into the relevant-interval list
  std::vector<int> objects;          // ascending
  std::vector<size_t> dims;          // ascending, parallel to interval_ids
};

}  // namespace

Result<SubspaceClustering> RunP3c(const Matrix& data,
                                  const P3cOptions& options,
                                  std::vector<RelevantInterval>* intervals) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  if (n == 0 || d == 0) return Status::InvalidArgument("P3C: empty data");
  if (options.alpha <= 0 || options.alpha >= 1) {
    return Status::InvalidArgument("P3C: alpha must be in (0, 1)");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("P3C", data));
  MC_ASSIGN_OR_RETURN(Grid grid, Grid::Build(data, options.xi));

  // --- 1. Relevant intervals per dimension. ---
  // Bin is relevant when P[Binomial(n, 1/xi) >= support] <= alpha / bins.
  const double bin_alpha =
      options.alpha / static_cast<double>(d * options.xi);
  const double uniform_p = 1.0 / static_cast<double>(options.xi);
  std::vector<RelevantInterval> found;
  // Per interval: the member objects.
  std::vector<std::vector<int>> interval_objects;
  for (size_t dim = 0; dim < d; ++dim) {
    std::vector<std::vector<int>> bins(options.xi);
    for (size_t i = 0; i < n; ++i) {
      bins[grid.CellOf(i, dim)].push_back(static_cast<int>(i));
    }
    std::vector<char> relevant(options.xi, 0);
    for (size_t b = 0; b < options.xi; ++b) {
      if (BinomialUpperTail(n, bins[b].size(), uniform_p) <= bin_alpha) {
        relevant[b] = 1;
      }
    }
    // Merge adjacent relevant bins.
    size_t b = 0;
    while (b < options.xi) {
      if (!relevant[b]) {
        ++b;
        continue;
      }
      size_t hi = b;
      while (hi + 1 < options.xi && relevant[hi + 1]) ++hi;
      RelevantInterval iv;
      iv.dim = dim;
      iv.bin_lo = static_cast<int>(b);
      iv.bin_hi = static_cast<int>(hi);
      std::vector<int> objs;
      for (size_t bb = b; bb <= hi; ++bb) {
        objs.insert(objs.end(), bins[bb].begin(), bins[bb].end());
      }
      std::sort(objs.begin(), objs.end());
      iv.support = objs.size();
      found.push_back(iv);
      interval_objects.push_back(std::move(objs));
      b = hi + 1;
    }
  }
  if (intervals != nullptr) *intervals = found;

  // Fraction of the dimension's range each interval spans (for expected
  // projections under independence).
  std::vector<double> width_frac(found.size());
  for (size_t i = 0; i < found.size(); ++i) {
    width_frac[i] =
        static_cast<double>(found[i].bin_hi - found[i].bin_lo + 1) /
        static_cast<double>(options.xi);
  }

  const size_t max_dims =
      options.max_dims == 0 ? d : std::min(options.max_dims, d);
  const double sig_alpha =
      options.alpha / std::max<double>(1.0, static_cast<double>(
                                                found.size() * found.size()));

  // --- 2. Apriori combination into p-signatures. ---
  std::vector<Signature> level;
  for (size_t i = 0; i < found.size(); ++i) {
    if (interval_objects[i].size() < options.min_support) continue;
    Signature s;
    s.interval_ids = {i};
    s.objects = interval_objects[i];
    s.dims = {found[i].dim};
    level.push_back(std::move(s));
  }

  // Track which signatures get extended (non-maximal ones are dropped).
  std::vector<Signature> maximal;
  for (size_t depth = 2; depth <= max_dims + 1; ++depth) {
    std::vector<char> extended(level.size(), 0);
    std::vector<Signature> next;
    if (depth <= max_dims) {
      for (size_t a = 0; a < level.size(); ++a) {
        for (size_t iv = 0; iv < found.size(); ++iv) {
          // Extend signature `a` by interval `iv` on a new dimension
          // greater than all its current dims (canonical order).
          if (found[iv].dim <= level[a].dims.back()) continue;
          std::vector<int> inter;
          std::set_intersection(level[a].objects.begin(),
                                level[a].objects.end(),
                                interval_objects[iv].begin(),
                                interval_objects[iv].end(),
                                std::back_inserter(inter));
          if (inter.size() < options.min_support) continue;
          // Significance: observed joint support vs the expectation that
          // the parent's objects fall into iv's width by chance.
          const double expected_frac = width_frac[iv];
          const double p = BinomialUpperTail(level[a].objects.size(),
                                             inter.size(), expected_frac);
          if (p > sig_alpha) continue;
          Signature s;
          s.interval_ids = level[a].interval_ids;
          s.interval_ids.push_back(iv);
          s.objects = std::move(inter);
          s.dims = level[a].dims;
          s.dims.push_back(found[iv].dim);
          next.push_back(std::move(s));
          extended[a] = 1;
        }
      }
    }
    for (size_t a = 0; a < level.size(); ++a) {
      if (!extended[a]) maximal.push_back(std::move(level[a]));
    }
    level = std::move(next);
    if (level.empty()) break;
  }
  for (Signature& s : level) maximal.push_back(std::move(s));

  // --- 3. Report maximal signatures as cluster cores (deduplicated by
  //         object set within a subspace). ---
  SubspaceClustering result;
  std::map<std::pair<std::vector<size_t>, std::vector<int>>, char> seen;
  for (Signature& s : maximal) {
    if (s.objects.size() < options.min_support) continue;
    auto key = std::make_pair(s.dims, s.objects);
    if (seen.count(key)) continue;
    seen[key] = 1;
    result.clusters.push_back(
        {std::move(s.dims), std::move(s.objects), "p3c"});
  }
  return result;
}

}  // namespace multiclust
