#include "subspace/statpc.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/runguard.h"
#include "stats/tails.h"

namespace multiclust {

Result<SubspaceClustering> RunStatpc(const Matrix& data,
                                     const SubspaceClustering& candidates,
                                     const StatpcOptions& options,
                                     std::vector<StatpcScore>* scores) {
  if (options.alpha0 <= 0 || options.alpha0 >= 1) {
    return Status::InvalidArgument("STATPC: alpha0 must be in (0, 1)");
  }
  const size_t n = data.rows();
  if (n == 0) return Status::InvalidArgument("STATPC: empty data");
  MC_RETURN_IF_ERROR(ValidateMatrix("STATPC", data));

  // Per-dimension data ranges for volume fractions.
  const size_t d = data.cols();
  std::vector<double> lo(d), hi(d);
  for (size_t j = 0; j < d; ++j) {
    lo[j] = hi[j] = data.at(0, j);
    for (size_t i = 1; i < n; ++i) {
      lo[j] = std::min(lo[j], data.at(i, j));
      hi[j] = std::max(hi[j], data.at(i, j));
    }
  }

  // Score every candidate: p-value of observing >= support objects in the
  // candidate's bounding box under a uniform null.
  const double bonferroni =
      std::max<double>(1.0, static_cast<double>(candidates.clusters.size()));
  std::vector<StatpcScore> local_scores;
  local_scores.reserve(candidates.clusters.size());
  for (size_t idx = 0; idx < candidates.clusters.size(); ++idx) {
    const SubspaceCluster& c = candidates.clusters[idx];
    StatpcScore score;
    score.candidate_index = idx;
    if (c.objects.empty() || c.dims.empty()) {
      local_scores.push_back(score);
      continue;
    }
    // Volume fraction of the cluster's bounding box within its subspace.
    double vol = 1.0;
    for (size_t dim : c.dims) {
      double cl = data.at(c.objects[0], dim);
      double ch = cl;
      for (int obj : c.objects) {
        cl = std::min(cl, data.at(obj, dim));
        ch = std::max(ch, data.at(obj, dim));
      }
      const double range = hi[dim] - lo[dim];
      double frac = range > 1e-12 ? (ch - cl) / range : 1.0;
      // A degenerate box still occupies one grid cell's width.
      frac = std::max(frac, 1.0 / static_cast<double>(options.xi));
      frac = std::min(frac, 1.0);
      vol *= frac;
    }
    score.p_value = BinomialUpperTail(n, c.objects.size(), vol);
    score.significant = score.p_value <= options.alpha0 / bonferroni;
    local_scores.push_back(score);
  }

  // Greedy selection by ascending p-value; skip explained candidates.
  std::vector<size_t> order;
  for (const StatpcScore& s : local_scores) {
    if (s.significant) order.push_back(s.candidate_index);
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return local_scores[a].p_value < local_scores[b].p_value;
  });

  SubspaceClustering selected;
  std::set<int> covered;
  for (size_t idx : order) {
    const SubspaceCluster& c = candidates.clusters[idx];
    size_t already = 0;
    for (int obj : c.objects) {
      if (covered.count(obj)) ++already;
    }
    const double explained = static_cast<double>(already) /
                             static_cast<double>(c.objects.size());
    if (explained >= options.explain_fraction) continue;
    SubspaceCluster kept = c;
    kept.source = "statpc(" + c.source + ")";
    for (int obj : kept.objects) covered.insert(obj);
    selected.clusters.push_back(std::move(kept));
  }
  if (scores != nullptr) *scores = std::move(local_scores);
  return selected;
}

}  // namespace multiclust
