#include "core/taxonomy.h"

#include <sstream>

namespace multiclust {

const char* ToString(SearchSpace s) {
  switch (s) {
    case SearchSpace::kOriginalSpace:
      return "original";
    case SearchSpace::kTransformedSpace:
      return "transformed";
    case SearchSpace::kSubspaceProjections:
      return "subspaces";
    case SearchSpace::kMultiSource:
      return "multi-source";
  }
  return "?";
}

const char* ToString(ProcessingMode p) {
  switch (p) {
    case ProcessingMode::kIndependent:
      return "independent";
    case ProcessingMode::kIterative:
      return "iterative";
    case ProcessingMode::kSimultaneous:
      return "simultaneous";
  }
  return "?";
}

const char* ToString(SolutionCount c) {
  switch (c) {
    case SolutionCount::kOne:
      return "m == 1";
    case SolutionCount::kTwo:
      return "m == 2";
    case SolutionCount::kTwoOrMore:
      return "m >= 2";
  }
  return "?";
}

const std::vector<AlgorithmTraits>& AlgorithmRegistry() {
  static const auto* kRegistry = new std::vector<AlgorithmTraits>{
      // Section 2: original data space.
      {"MetaClustering", "Caruana et al. 2006", SearchSpace::kOriginalSpace,
       ProcessingMode::kIndependent, false, SolutionCount::kTwoOrMore, false,
       true},
      {"COALA", "Bae & Bailey 2006", SearchSpace::kOriginalSpace,
       ProcessingMode::kIterative, true, SolutionCount::kTwo, false, false},
      {"DecorrelatedKMeans", "Jain et al. 2008", SearchSpace::kOriginalSpace,
       ProcessingMode::kSimultaneous, false, SolutionCount::kTwoOrMore, false,
       false},
      {"CAMI", "Dang & Bailey 2010a", SearchSpace::kOriginalSpace,
       ProcessingMode::kSimultaneous, false, SolutionCount::kTwoOrMore, false,
       false},
      {"CIB", "Gondek & Hofmann 2004", SearchSpace::kOriginalSpace,
       ProcessingMode::kIterative, true, SolutionCount::kTwo, false, false},
      {"ConditionalEnsemble", "Gondek & Hofmann 2005",
       SearchSpace::kOriginalSpace, ProcessingMode::kIterative, true,
       SolutionCount::kTwo, false, true},
      {"DisparateClustering", "Hossain et al. 2010",
       SearchSpace::kOriginalSpace, ProcessingMode::kSimultaneous, false,
       SolutionCount::kTwo, false, false},
      {"MinCEntropy", "Vinh & Epps 2010", SearchSpace::kOriginalSpace,
       ProcessingMode::kIterative, true, SolutionCount::kTwoOrMore, false,
       false},
      // Section 3: orthogonal space transformations.
      {"AltTransform", "Davidson & Qi 2008", SearchSpace::kTransformedSpace,
       ProcessingMode::kIterative, true, SolutionCount::kTwo, true, true},
      {"ResidualTransform", "Qi & Davidson 2009",
       SearchSpace::kTransformedSpace, ProcessingMode::kIterative, true,
       SolutionCount::kTwo, true, true},
      {"OrthoProjection", "Cui et al. 2007", SearchSpace::kTransformedSpace,
       ProcessingMode::kIterative, true, SolutionCount::kTwoOrMore, true,
       true},
      // Section 4: subspace projections.
      {"CLIQUE", "Agrawal et al. 1998", SearchSpace::kSubspaceProjections,
       ProcessingMode::kSimultaneous, false, SolutionCount::kTwoOrMore, false,
       false},
      {"SCHISM", "Sequeira & Zaki 2004", SearchSpace::kSubspaceProjections,
       ProcessingMode::kSimultaneous, false, SolutionCount::kTwoOrMore, false,
       false},
      {"SUBCLU", "Kailing et al. 2004b", SearchSpace::kSubspaceProjections,
       ProcessingMode::kSimultaneous, false, SolutionCount::kTwoOrMore, false,
       false},
      {"PROCLUS", "Aggarwal et al. 1999", SearchSpace::kSubspaceProjections,
       ProcessingMode::kIterative, false, SolutionCount::kOne, false, false},
      {"ORCLUS", "Aggarwal & Yu 2000", SearchSpace::kSubspaceProjections,
       ProcessingMode::kIterative, false, SolutionCount::kOne, false, false},
      {"PreDeCon", "Boehm et al. 2004a", SearchSpace::kSubspaceProjections,
       ProcessingMode::kIterative, false, SolutionCount::kOne, false, false},
      {"DOC", "Procopiuc et al. 2002", SearchSpace::kSubspaceProjections,
       ProcessingMode::kIterative, false, SolutionCount::kTwoOrMore, false,
       false},
      {"mSC", "Niu & Dy 2010", SearchSpace::kSubspaceProjections,
       ProcessingMode::kSimultaneous, false, SolutionCount::kTwoOrMore, true,
       true},
      {"ENCLUS", "Cheng et al. 1999", SearchSpace::kSubspaceProjections,
       ProcessingMode::kSimultaneous, false, SolutionCount::kTwoOrMore, false,
       true},
      {"RIS", "Kailing et al. 2003", SearchSpace::kSubspaceProjections,
       ProcessingMode::kSimultaneous, false, SolutionCount::kTwoOrMore, false,
       true},
      {"P3C", "Moise et al. 2006", SearchSpace::kSubspaceProjections,
       ProcessingMode::kSimultaneous, false, SolutionCount::kTwoOrMore, false,
       false},
      {"STATPC", "Moise & Sander 2008", SearchSpace::kSubspaceProjections,
       ProcessingMode::kSimultaneous, false, SolutionCount::kTwoOrMore, false,
       false},
      {"RESCU", "Mueller et al. 2009c", SearchSpace::kSubspaceProjections,
       ProcessingMode::kSimultaneous, false, SolutionCount::kTwoOrMore, false,
       false},
      {"OSCLU", "Guennemann et al. 2009", SearchSpace::kSubspaceProjections,
       ProcessingMode::kSimultaneous, false, SolutionCount::kTwoOrMore, true,
       false},
      {"ASCLU", "Guennemann et al. 2010", SearchSpace::kSubspaceProjections,
       ProcessingMode::kSimultaneous, true, SolutionCount::kTwoOrMore, true,
       false},
      // Section 5: multiple given views/sources.
      {"CoEM", "Bickel & Scheffer 2004", SearchSpace::kMultiSource,
       ProcessingMode::kSimultaneous, false, SolutionCount::kOne, true,
       false},
      {"MultiViewDbscan", "Kailing et al. 2004a", SearchSpace::kMultiSource,
       ProcessingMode::kSimultaneous, false, SolutionCount::kOne, true,
       false},
      {"EnsembleConsensus", "Fern & Brodley 2003", SearchSpace::kMultiSource,
       ProcessingMode::kIndependent, false, SolutionCount::kOne, false,
       true},
      {"MvSpectral", "de Sa 05; Zhou-Burges 07",
       SearchSpace::kMultiSource, ProcessingMode::kSimultaneous, false,
       SolutionCount::kOne, true, false},
  };
  return *kRegistry;
}

std::string RenderTaxonomyTable() {
  std::ostringstream out;
  auto pad = [](std::string s, size_t w) {
    if (s.size() < w) s.append(w - s.size(), ' ');
    return s;
  };
  out << pad("algorithm", 20) << pad("reference", 26) << pad("space", 14)
      << pad("processing", 14) << pad("knowledge", 11) << pad("#clusterings", 14)
      << pad("view-diss", 11) << "flexibility\n";
  out << std::string(118, '-') << "\n";
  for (const AlgorithmTraits& t : AlgorithmRegistry()) {
    out << pad(t.name, 20) << pad(t.reference, 26)
        << pad(ToString(t.search_space), 14)
        << pad(ToString(t.processing), 14)
        << pad(t.uses_given_knowledge ? "given k." : "no", 11)
        << pad(ToString(t.solutions), 14)
        << pad(t.models_view_dissimilarity ? "yes" : "no", 11)
        << (t.exchangeable_definition ? "exchangeable def." : "specialized")
        << "\n";
  }
  return out.str();
}

}  // namespace multiclust
