#ifndef MULTICLUST_CORE_SOLUTION_SET_H_
#define MULTICLUST_CORE_SOLUTION_SET_H_

#include <string>
#include <vector>

#include "cluster/clustering.h"
#include "common/result.h"

namespace multiclust {

/// A set of clustering solutions over the same objects — the output type of
/// every multiple-clustering algorithm in the library (the
/// `Clust_1, ..., Clust_m` of the tutorial's abstract problem, slide 27).
class SolutionSet {
 public:
  SolutionSet() = default;

  /// Appends a solution (must label the same number of objects as existing
  /// solutions).
  Status Add(Clustering clustering);

  size_t size() const { return solutions_.size(); }
  bool empty() const { return solutions_.empty(); }

  const Clustering& at(size_t i) const { return solutions_[i]; }
  Clustering& at(size_t i) { return solutions_[i]; }

  const std::vector<Clustering>& solutions() const { return solutions_; }

  /// All label vectors (for the multi-solution metrics).
  std::vector<std::vector<int>> Labels() const;

  /// Mean pairwise dissimilarity (1 - NMI) across the set.
  Result<double> Diversity() const;

  /// Minimum pairwise dissimilarity (redundancy bottleneck).
  Result<double> MinDiversity() const;

  /// Drops solutions that are near-duplicates of an earlier one
  /// (dissimilarity < `min_dissimilarity`); returns the number removed.
  Result<size_t> Deduplicate(double min_dissimilarity);

  /// One line per solution: algorithm, #clusters, quality.
  std::string Summary() const;

 private:
  std::vector<Clustering> solutions_;
};

}  // namespace multiclust

#endif  // MULTICLUST_CORE_SOLUTION_SET_H_
