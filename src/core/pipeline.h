#ifndef MULTICLUST_CORE_PIPELINE_H_
#define MULTICLUST_CORE_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/runguard.h"
#include "core/objectives.h"
#include "core/solution_set.h"
#include "linalg/matrix.h"

namespace multiclust {

/// Which discovery strategy the convenience pipeline uses.
enum class DiscoveryStrategy {
  /// Decorrelated k-means: simultaneous, original space. Fast default.
  kDecorrelatedKMeans,
  /// Orthogonal projection iteration with a k-means base clusterer.
  kOrthogonalProjections,
  /// HSIC-partitioned spectral views (axis-aligned mSC).
  kSpectralViews,
  /// Meta clustering with diversified generation.
  kMetaClustering,
};

/// Configuration of the one-call discovery pipeline.
struct DiscoveryOptions {
  DiscoveryStrategy strategy = DiscoveryStrategy::kDecorrelatedKMeans;
  /// Number of alternative clusterings to look for.
  size_t num_solutions = 2;
  /// Clusters per solution; 0 = select k in [2, max_k] by silhouette.
  size_t k = 0;
  size_t max_k = 6;
  /// Post-filter: drop solutions whose pairwise dissimilarity to an
  /// earlier solution falls below this threshold.
  double min_dissimilarity = 0.2;
  uint64_t seed = 1;
  /// Wall-clock / iteration / cancellation limits shared by every strategy
  /// attempt (the remaining deadline is forwarded to each attempt).
  RunBudget budget;
  /// Deterministic retry policy for recoverable (kComputationError)
  /// strategy failures: each retry re-runs with a SplitMix-derived seed.
  RetryPolicy retry{2};
  /// When the requested strategy (and its retries) fail recoverably, fall
  /// back to more robust strategies instead of surfacing the error.
  bool allow_fallback = true;
};

/// Outcome of a discovery run: the solutions plus their evaluation under
/// the abstract objective (slide 27).
struct DiscoveryReport {
  SolutionSet solutions;
  ObjectiveReport objective;
  /// The k actually used.
  size_t chosen_k = 0;
  /// Strategy that produced `solutions` (after any fallback).
  std::string strategy_name;
  /// One entry per strategy attempt, in order: the requested strategy
  /// first, then any fallbacks. `attempts.back()` describes the run that
  /// produced `solutions`.
  std::vector<RunDiagnostics> attempts;
  /// Human-readable notes about recoveries (retries used, fallbacks
  /// taken, budget-truncated runs). Empty on a clean run.
  std::vector<std::string> warnings;
  /// True when the result came from a fallback strategy or a
  /// budget-truncated (non-converged) run rather than the requested
  /// clean computation.
  bool degraded = false;
  /// What the whole discovery call cost (all stages and attempts
  /// together; per-attempt profiles live on `attempts[i].resource`).
  /// `captured == false` when profiling is compiled out. Wall-clock
  /// dependent — excluded from determinism comparisons and from the
  /// pipeline checkpoint payload.
  telemetry::ResourceProfile resource;
};

/// One-call entry point: "find me several genuinely different clusterings
/// of this data". Selects k if requested, runs the chosen strategy,
/// deduplicates near-identical solutions, and scores the set with
/// Q = silhouette and Diss = 1 - NMI.
///
/// With `options.budget.checkpoint` set, the pipeline itself snapshots at
/// stage boundaries — after k-selection and after each completed strategy
/// attempt (the attempt ledger, warnings and, once solved, the full
/// solution set) — and forwards the checkpointer to every inner algorithm,
/// which snapshots at its own iteration granularity under a distinct file
/// slot in the same directory. A resumed call skips completed stages and
/// produces a bit-identical DiscoveryReport; dedup and objective scoring
/// are recomputed deterministically rather than persisted. See DESIGN.md
/// "Crash recovery".
Result<DiscoveryReport> DiscoverMultipleClusterings(
    const Matrix& data, const DiscoveryOptions& options);

/// Silhouette-based selection of k over [2, max_k] using k-means.
Result<size_t> SelectKBySilhouette(const Matrix& data, size_t max_k,
                                   uint64_t seed);

}  // namespace multiclust

#endif  // MULTICLUST_CORE_PIPELINE_H_
