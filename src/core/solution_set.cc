#include "core/solution_set.h"

#include <cmath>
#include <sstream>

#include "metrics/multi_solution.h"
#include "metrics/partition_similarity.h"

namespace multiclust {

Status SolutionSet::Add(Clustering clustering) {
  if (!solutions_.empty() &&
      clustering.labels.size() != solutions_[0].labels.size()) {
    return Status::InvalidArgument(
        "SolutionSet: solution labels a different number of objects");
  }
  solutions_.push_back(std::move(clustering));
  return Status::OK();
}

std::vector<std::vector<int>> SolutionSet::Labels() const {
  std::vector<std::vector<int>> out;
  out.reserve(solutions_.size());
  for (const Clustering& c : solutions_) out.push_back(c.labels);
  return out;
}

Result<double> SolutionSet::Diversity() const {
  return MeanPairwiseDissimilarity(Labels());
}

Result<double> SolutionSet::MinDiversity() const {
  return MinPairwiseDissimilarity(Labels());
}

Result<size_t> SolutionSet::Deduplicate(double min_dissimilarity) {
  std::vector<Clustering> kept;
  size_t removed = 0;
  for (Clustering& cand : solutions_) {
    bool duplicate = false;
    for (const Clustering& k : kept) {
      MC_ASSIGN_OR_RETURN(double d,
                          ClusteringDissimilarity(cand.labels, k.labels));
      if (d < min_dissimilarity) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      ++removed;
    } else {
      kept.push_back(std::move(cand));
    }
  }
  solutions_ = std::move(kept);
  return removed;
}

std::string SolutionSet::Summary() const {
  std::ostringstream out;
  for (size_t i = 0; i < solutions_.size(); ++i) {
    const Clustering& c = solutions_[i];
    out << "solution " << i << ": " << c.algorithm << ", k="
        << c.NumClusters();
    if (std::isfinite(c.quality)) out << ", quality=" << c.quality;
    out << "\n";
  }
  return out.str();
}

}  // namespace multiclust
