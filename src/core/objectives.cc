#include "core/objectives.h"

#include <algorithm>
#include <cmath>

#include "metrics/adco.h"
#include "metrics/clustering_quality.h"
#include "metrics/partition_similarity.h"

namespace multiclust {

QualityFn NegativeSseQuality() {
  return [](const Matrix& data,
            const std::vector<int>& labels) -> Result<double> {
    MC_ASSIGN_OR_RETURN(double sse, SumSquaredError(data, labels));
    return -sse;
  };
}

QualityFn SilhouetteQuality() {
  return [](const Matrix& data,
            const std::vector<int>& labels) -> Result<double> {
    return Silhouette(data, labels);
  };
}

QualityFn DunnQuality() {
  return [](const Matrix& data,
            const std::vector<int>& labels) -> Result<double> {
    return DunnIndex(data, labels);
  };
}

DissimilarityFn NmiDissimilarity() {
  return [](const std::vector<int>& a,
            const std::vector<int>& b) -> Result<double> {
    return ClusteringDissimilarity(a, b);
  };
}

DissimilarityFn AriDissimilarity() {
  return [](const std::vector<int>& a,
            const std::vector<int>& b) -> Result<double> {
    MC_ASSIGN_OR_RETURN(double ari, AdjustedRandIndex(a, b));
    return std::clamp(1.0 - ari, 0.0, 1.0);
  };
}

DissimilarityFn ViDissimilarity() {
  return [](const std::vector<int>& a,
            const std::vector<int>& b) -> Result<double> {
    MC_ASSIGN_OR_RETURN(double vi, VariationOfInformation(a, b));
    size_t counted = 0;
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      if (a[i] >= 0 && b[i] >= 0) ++counted;
    }
    if (counted < 2) return 0.0;
    const double max_vi = std::log(static_cast<double>(counted));
    return max_vi > 0 ? std::min(vi / max_vi, 1.0) : 0.0;
  };
}

DissimilarityFn AdcoProfileDissimilarity(Matrix data, size_t bins) {
  return [data = std::move(data), bins](
             const std::vector<int>& a,
             const std::vector<int>& b) -> Result<double> {
    return AdcoDissimilarity(data, a, b, bins);
  };
}

Result<ObjectiveReport> EvaluateObjective(
    const Matrix& data, const SolutionSet& set, const QualityFn& quality,
    const DissimilarityFn& dissimilarity, double lambda) {
  ObjectiveReport report;
  for (const Clustering& c : set.solutions()) {
    MC_ASSIGN_OR_RETURN(double q, quality(data, c.labels));
    report.qualities.push_back(q);
    report.mean_quality += q;
  }
  if (!report.qualities.empty()) {
    report.mean_quality /= static_cast<double>(report.qualities.size());
  }

  double total_diss = 0.0;
  double min_diss = 1.0;
  size_t pairs = 0;
  for (size_t i = 0; i < set.size(); ++i) {
    for (size_t j = i + 1; j < set.size(); ++j) {
      MC_ASSIGN_OR_RETURN(
          double d, dissimilarity(set.at(i).labels, set.at(j).labels));
      total_diss += d;
      min_diss = std::min(min_diss, d);
      ++pairs;
    }
  }
  report.mean_dissimilarity = pairs ? total_diss / pairs : 0.0;
  report.min_dissimilarity = pairs ? min_diss : 0.0;
  report.combined = report.mean_quality + lambda * report.mean_dissimilarity;
  return report;
}

}  // namespace multiclust
