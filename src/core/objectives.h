#ifndef MULTICLUST_CORE_OBJECTIVES_H_
#define MULTICLUST_CORE_OBJECTIVES_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/solution_set.h"
#include "linalg/matrix.h"

namespace multiclust {

/// The abstract problem definition of the tutorial (slide 27):
/// detect clusterings Clust_1..Clust_m such that every Q(Clust_i) is high
/// and every pairwise Diss(Clust_i, Clust_j) is high. This header provides
/// the function-object types and stock instances so that algorithms and
/// evaluations can exchange `Q` and `Diss` freely (the "flexible model"
/// axis of the taxonomy).

/// Quality functional Q: higher is better.
using QualityFn =
    std::function<Result<double>(const Matrix& data,
                                 const std::vector<int>& labels)>;

/// Dissimilarity functional Diss between two labelings: higher = more
/// different, range [0, 1] for the stock instances.
using DissimilarityFn =
    std::function<Result<double>(const std::vector<int>& a,
                                 const std::vector<int>& b)>;

/// Q = negative SSE (so that higher is better).
QualityFn NegativeSseQuality();

/// Q = mean silhouette.
QualityFn SilhouetteQuality();

/// Q = Dunn index.
QualityFn DunnQuality();

/// Diss = 1 - NMI_sqrt (the library default).
DissimilarityFn NmiDissimilarity();

/// Diss = 1 - AdjustedRand (clamped to [0, 1]).
DissimilarityFn AriDissimilarity();

/// Diss = normalised Variation of Information (VI / log n objects counted).
DissimilarityFn ViDissimilarity();

/// Diss = ADCO density-profile dissimilarity (Bae et al. 2010): compares
/// *where in attribute space* the clusters sit rather than which objects
/// they share. Captures `data` (by value) since the measure is
/// data-dependent.
DissimilarityFn AdcoProfileDissimilarity(Matrix data, size_t bins = 5);

/// Evaluation of a solution set under the abstract objective.
struct ObjectiveReport {
  std::vector<double> qualities;   ///< Q per solution
  double mean_quality = 0.0;
  double mean_dissimilarity = 0.0; ///< mean pairwise Diss
  double min_dissimilarity = 0.0;  ///< worst (most redundant) pair
  /// mean_quality + lambda * mean_dissimilarity (the scalarised combined
  /// objective of slide 39).
  double combined = 0.0;
};

/// Scores `set` on `data` under the given Q / Diss / lambda.
Result<ObjectiveReport> EvaluateObjective(const Matrix& data,
                                          const SolutionSet& set,
                                          const QualityFn& quality,
                                          const DissimilarityFn& dissimilarity,
                                          double lambda);

}  // namespace multiclust

#endif  // MULTICLUST_CORE_OBJECTIVES_H_
