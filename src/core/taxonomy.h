#ifndef MULTICLUST_CORE_TAXONOMY_H_
#define MULTICLUST_CORE_TAXONOMY_H_

#include <string>
#include <vector>

namespace multiclust {

/// The taxonomy axes of the tutorial (slides 20-22, 115-121). Every
/// algorithm in the library registers its traits so the comparison table of
/// slide 116 can be regenerated from code (see `bench_taxonomy_table`).

/// Primary axis: the search space the method operates in.
enum class SearchSpace {
  kOriginalSpace,      ///< Section 2: same data space
  kTransformedSpace,   ///< Section 3: orthogonal space transformations
  kSubspaceProjections,///< Section 4: axis-parallel subspace projections
  kMultiSource,        ///< Section 5: multiple given views/sources
};

/// Whether solutions are found one after another or jointly.
enum class ProcessingMode {
  kIndependent,   ///< blind generation, no coupling (meta clustering)
  kIterative,     ///< alternatives computed one at a time from knowledge
  kSimultaneous,  ///< all solutions optimised together
};

/// How many solutions a method produces.
enum class SolutionCount {
  kOne,        ///< consensus-style: a single (stabilised) clustering
  kTwo,        ///< one alternative to a given clustering
  kTwoOrMore,  ///< any number of solutions
};

/// Trait record for one algorithm.
struct AlgorithmTraits {
  std::string name;
  std::string reference;  ///< primary citation, e.g. "Bae & Bailey 2006"
  SearchSpace search_space = SearchSpace::kOriginalSpace;
  ProcessingMode processing = ProcessingMode::kIterative;
  bool uses_given_knowledge = false;
  SolutionCount solutions = SolutionCount::kTwo;
  /// Whether the method models dissimilarity between views/subspaces.
  bool models_view_dissimilarity = false;
  /// Whether the underlying cluster definition is exchangeable
  /// ("flexible model") as opposed to specialised.
  bool exchangeable_definition = false;
};

const char* ToString(SearchSpace s);
const char* ToString(ProcessingMode p);
const char* ToString(SolutionCount c);

/// All algorithms shipped in this library, in tutorial order. This is the
/// machine-readable version of the slide-116 table.
const std::vector<AlgorithmTraits>& AlgorithmRegistry();

/// Renders the registry as an aligned text table (the slide-116
/// reproduction).
std::string RenderTaxonomyTable();

}  // namespace multiclust

#endif  // MULTICLUST_CORE_TAXONOMY_H_
