#include "core/pipeline.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "altspace/dec_kmeans.h"
#include "altspace/meta_clustering.h"
#include "cluster/kmeans.h"
#include "common/checkpoint.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "metrics/clustering_quality.h"
#include "orthogonal/ortho_projection.h"
#include "subspace/msc.h"

namespace multiclust {

Result<size_t> SelectKBySilhouette(const Matrix& data, size_t max_k,
                                   uint64_t seed) {
  if (max_k < 2) {
    return Status::InvalidArgument("SelectKBySilhouette: max_k must be >= 2");
  }
  MULTICLUST_TRACE_SPAN("pipeline.select_k");
  size_t best_k = 2;
  double best_score = -2.0;
  for (size_t k = 2; k <= max_k && k < data.rows(); ++k) {
    KMeansOptions opts;
    opts.k = k;
    opts.restarts = 5;
    opts.seed = seed + k;
    MC_ASSIGN_OR_RETURN(Clustering c, RunKMeans(data, opts));
    auto sil = Silhouette(data, c.labels);
    if (!sil.ok()) continue;
    if (*sil > best_score) {
      best_score = *sil;
      best_k = k;
    }
  }
  return best_k;
}

namespace {

const char* StrategyName(DiscoveryStrategy s) {
  switch (s) {
    case DiscoveryStrategy::kDecorrelatedKMeans:
      return "dec-kmeans";
    case DiscoveryStrategy::kOrthogonalProjections:
      return "ortho-projection";
    case DiscoveryStrategy::kSpectralViews:
      return "spectral-views";
    case DiscoveryStrategy::kMetaClustering:
      return "meta-clustering";
  }
  return "unknown";
}

// Span name per strategy (span names must be string literals). Unused when
// tracing is compiled out.
[[maybe_unused]] const char* StrategySpanName(DiscoveryStrategy s) {
  switch (s) {
    case DiscoveryStrategy::kDecorrelatedKMeans:
      return "pipeline.strategy.dec-kmeans";
    case DiscoveryStrategy::kOrthogonalProjections:
      return "pipeline.strategy.ortho-projection";
    case DiscoveryStrategy::kSpectralViews:
      return "pipeline.strategy.spectral-views";
    case DiscoveryStrategy::kMetaClustering:
      return "pipeline.strategy.meta-clustering";
  }
  return "pipeline.strategy.unknown";
}

// Result of one strategy attempt: the solutions plus what the strategy
// reported about its own convergence.
struct StrategyOutcome {
  SolutionSet solutions;
  size_t iterations = 0;
  bool converged = true;
  std::vector<std::string> warnings;
};

Result<StrategyOutcome> RunStrategy(const Matrix& data,
                                    DiscoveryStrategy strategy, size_t k,
                                    const DiscoveryOptions& options,
                                    uint64_t seed, const RunBudget& budget,
                                    RunDiagnostics* diag) {
  MULTICLUST_TRACE_SPAN(StrategySpanName(strategy));
  StrategyOutcome out;
  switch (strategy) {
    case DiscoveryStrategy::kDecorrelatedKMeans: {
      DecKMeansOptions dk;
      dk.ks.assign(options.num_solutions, k);
      dk.lambda = 4.0;
      dk.restarts = 5;
      dk.seed = seed;
      dk.budget = budget;
      // Remaining() strips the checkpoint channel; each strategy re-attaches
      // it explicitly so inner iterative algorithms snapshot too.
      dk.budget.checkpoint = options.budget.checkpoint;
      dk.diagnostics = diag;
      MC_ASSIGN_OR_RETURN(DecKMeansResult r, RunDecorrelatedKMeans(data, dk));
      out.solutions = std::move(r.solutions);
      out.iterations = r.iterations;
      out.converged = r.converged;
      break;
    }
    case DiscoveryStrategy::kOrthogonalProjections: {
      KMeansOptions km;
      km.k = k;
      km.restarts = 5;
      km.seed = seed;
      km.diagnostics = diag;
      km.budget.checkpoint = options.budget.checkpoint;
      KMeansClusterer clusterer(km);
      OrthoProjectionOptions op;
      op.max_views = options.num_solutions;
      op.budget = budget;
      MC_ASSIGN_OR_RETURN(OrthoProjectionResult r,
                          RunOrthoProjection(data, &clusterer, op));
      out.solutions = std::move(r.solutions);
      out.iterations = r.views.size();
      out.converged = !r.stopped_early;
      if (r.stopped_early) out.warnings.push_back(r.stop_message);
      break;
    }
    case DiscoveryStrategy::kSpectralViews: {
      MscOptions msc;
      msc.num_views = options.num_solutions;
      msc.k = k;
      msc.seed = seed;
      msc.budget = budget;
      msc.budget.checkpoint = options.budget.checkpoint;
      msc.diagnostics = diag;
      MC_ASSIGN_OR_RETURN(MscResult r, RunMultipleSpectralViews(data, msc));
      out.solutions = std::move(r.solutions);
      out.iterations = r.views.size();
      out.converged = r.warnings.empty();
      out.warnings = std::move(r.warnings);
      break;
    }
    case DiscoveryStrategy::kMetaClustering: {
      MetaClusteringOptions mc;
      mc.num_base = 10 * options.num_solutions;
      mc.k = k;
      mc.meta_k = options.num_solutions;
      mc.seed = seed;
      mc.budget = budget;
      mc.budget.checkpoint = options.budget.checkpoint;
      mc.diagnostics = diag;
      MC_ASSIGN_OR_RETURN(MetaClusteringResult r, RunMetaClustering(data, mc));
      out.solutions = std::move(r.representatives);
      out.iterations = r.base.size();
      out.converged = r.warnings.empty();
      out.warnings = std::move(r.warnings);
      break;
    }
  }
  return out;
}

// ---- pipeline checkpoint payload -----------------------------------------

// Reads a number that may have been serialized as null (NaN round-trip).
Result<double> MaybeNanField(const json::Value& v, const char* key) {
  MC_ASSIGN_OR_RETURN(const json::Value* f, ckpt::Field(v, key));
  if (f->is_null()) return std::numeric_limits<double>::quiet_NaN();
  if (!f->is_number()) {
    return Status::ComputationError(std::string("checkpoint: field '") + key +
                                    "' is not a number");
  }
  return f->number_value();
}

void WriteDiagCkpt(json::Writer* w, const RunDiagnostics& d) {
  w->BeginObject();
  w->Key("algorithm");
  w->String(d.algorithm);
  w->Key("iterations");
  w->Uint(d.iterations);
  w->Key("converged");
  w->Bool(d.converged);
  w->Key("stop_reason");
  w->Int(static_cast<int>(d.stop_reason));
  w->Key("retries");
  w->Uint(d.retries);
  w->Key("elapsed_ms");
  w->Double(d.elapsed_ms);
  w->Key("note");
  w->String(d.note);
  w->Key("warnings");
  w->BeginArray();
  for (const std::string& warning : d.warnings) w->String(warning);
  w->EndArray();
  w->Key("trace");
  ckpt::WriteTrace(w, d.trace);
  w->EndObject();
}

Result<RunDiagnostics> ReadDiagCkpt(const json::Value& v) {
  RunDiagnostics d;
  MC_ASSIGN_OR_RETURN(const json::Value* alg, ckpt::Field(v, "algorithm"));
  d.algorithm = alg->string_value();
  MC_ASSIGN_OR_RETURN(d.iterations, ckpt::SizeField(v, "iterations"));
  MC_ASSIGN_OR_RETURN(d.converged, ckpt::BoolField(v, "converged"));
  MC_ASSIGN_OR_RETURN(const double reason,
                      ckpt::NumberField(v, "stop_reason"));
  d.stop_reason = static_cast<StopReason>(static_cast<int>(reason));
  MC_ASSIGN_OR_RETURN(d.retries, ckpt::SizeField(v, "retries"));
  MC_ASSIGN_OR_RETURN(d.elapsed_ms, ckpt::NumberField(v, "elapsed_ms"));
  MC_ASSIGN_OR_RETURN(const json::Value* note, ckpt::Field(v, "note"));
  d.note = note->string_value();
  MC_ASSIGN_OR_RETURN(const json::Value* warn, ckpt::Field(v, "warnings"));
  if (!warn->is_array()) {
    return Status::ComputationError("checkpoint: diag warnings malformed");
  }
  for (const json::Value& wv : warn->array_items()) {
    d.warnings.push_back(wv.string_value());
  }
  MC_ASSIGN_OR_RETURN(const json::Value* tr, ckpt::Field(v, "trace"));
  MC_ASSIGN_OR_RETURN(d.trace, ckpt::ReadTrace(*tr));
  return d;
}

void WriteClusteringCkpt(json::Writer* w, const Clustering& c) {
  w->BeginObject();
  w->Key("labels");
  ckpt::WriteIntVector(w, c.labels);
  w->Key("centroids");
  ckpt::WriteMatrix(w, c.centroids);
  w->Key("quality");
  w->Double(c.quality);  // NaN (unset) serializes as null
  w->Key("algorithm");
  w->String(c.algorithm);
  w->Key("iterations");
  w->Uint(c.iterations);
  w->Key("converged");
  w->Bool(c.converged);
  w->EndObject();
}

Result<Clustering> ReadClusteringCkpt(const json::Value& v) {
  Clustering c;
  MC_ASSIGN_OR_RETURN(const json::Value* l, ckpt::Field(v, "labels"));
  MC_ASSIGN_OR_RETURN(c.labels, ckpt::ReadIntVector(*l));
  MC_ASSIGN_OR_RETURN(const json::Value* ctr, ckpt::Field(v, "centroids"));
  MC_ASSIGN_OR_RETURN(c.centroids, ckpt::ReadMatrix(*ctr));
  MC_ASSIGN_OR_RETURN(c.quality, MaybeNanField(v, "quality"));
  MC_ASSIGN_OR_RETURN(const json::Value* alg, ckpt::Field(v, "algorithm"));
  c.algorithm = alg->string_value();
  MC_ASSIGN_OR_RETURN(c.iterations, ckpt::SizeField(v, "iterations"));
  MC_ASSIGN_OR_RETURN(c.converged, ckpt::BoolField(v, "converged"));
  return c;
}

// Stage-granularity state of one DiscoverMultipleClusterings invocation:
// the chosen k (stage 1) and the attempt ledger including the solved
// solution set (stage 2). Dedup + objective scoring are deterministic
// recomputation and never checkpointed.
struct PipelineCkptState {
  size_t step = 0;
  size_t chosen_k = 0;
  size_t next_attempt = 0;
  std::vector<RunDiagnostics> attempts;
  std::vector<std::string> warnings;
  Status last_error = Status::OK();
  bool solved = false;
  std::string strategy_name;
  SolutionSet solutions;
  bool degraded = false;
};

void WritePipelinePayload(json::Writer* w, const PipelineCkptState& s) {
  w->BeginObject();
  w->Key("step");
  w->Uint(s.step);
  w->Key("chosen_k");
  w->Uint(s.chosen_k);
  w->Key("next_attempt");
  w->Uint(s.next_attempt);
  w->Key("attempts");
  w->BeginArray();
  for (const RunDiagnostics& d : s.attempts) WriteDiagCkpt(w, d);
  w->EndArray();
  w->Key("warnings");
  w->BeginArray();
  for (const std::string& warning : s.warnings) w->String(warning);
  w->EndArray();
  w->Key("last_error");
  ckpt::WriteStatus(w, s.last_error);
  w->Key("solved");
  w->Bool(s.solved);
  if (s.solved) {
    w->Key("strategy_name");
    w->String(s.strategy_name);
    w->Key("solutions");
    w->BeginArray();
    for (size_t i = 0; i < s.solutions.size(); ++i) {
      WriteClusteringCkpt(w, s.solutions.at(i));
    }
    w->EndArray();
    w->Key("degraded");
    w->Bool(s.degraded);
  }
  w->EndObject();
}

Status ReadPipelinePayload(const json::Value& v, PipelineCkptState* s) {
  MC_ASSIGN_OR_RETURN(s->step, ckpt::SizeField(v, "step"));
  MC_ASSIGN_OR_RETURN(s->chosen_k, ckpt::SizeField(v, "chosen_k"));
  MC_ASSIGN_OR_RETURN(s->next_attempt, ckpt::SizeField(v, "next_attempt"));
  MC_ASSIGN_OR_RETURN(const json::Value* att, ckpt::Field(v, "attempts"));
  if (!att->is_array()) {
    return Status::ComputationError("checkpoint: pipeline attempts malformed");
  }
  for (const json::Value& a : att->array_items()) {
    MC_ASSIGN_OR_RETURN(RunDiagnostics d, ReadDiagCkpt(a));
    s->attempts.push_back(std::move(d));
  }
  MC_ASSIGN_OR_RETURN(const json::Value* warn, ckpt::Field(v, "warnings"));
  if (!warn->is_array()) {
    return Status::ComputationError("checkpoint: pipeline warnings malformed");
  }
  for (const json::Value& wv : warn->array_items()) {
    s->warnings.push_back(wv.string_value());
  }
  MC_ASSIGN_OR_RETURN(const json::Value* err, ckpt::Field(v, "last_error"));
  MC_RETURN_IF_ERROR(ckpt::ReadStatus(*err, &s->last_error));
  MC_ASSIGN_OR_RETURN(s->solved, ckpt::BoolField(v, "solved"));
  if (s->solved) {
    MC_ASSIGN_OR_RETURN(const json::Value* sn,
                        ckpt::Field(v, "strategy_name"));
    s->strategy_name = sn->string_value();
    MC_ASSIGN_OR_RETURN(const json::Value* sols, ckpt::Field(v, "solutions"));
    if (!sols->is_array()) {
      return Status::ComputationError(
          "checkpoint: pipeline solutions malformed");
    }
    for (const json::Value& sv : sols->array_items()) {
      MC_ASSIGN_OR_RETURN(Clustering c, ReadClusteringCkpt(sv));
      MC_RETURN_IF_ERROR(s->solutions.Add(std::move(c)));
    }
    MC_ASSIGN_OR_RETURN(s->degraded, ckpt::BoolField(v, "degraded"));
  }
  return Status::OK();
}

uint64_t PipelineFingerprint(const Matrix& data,
                             const DiscoveryOptions& options) {
  Fingerprint fp;
  fp.Mix("pipeline");
  fp.Mix(static_cast<uint64_t>(static_cast<int>(options.strategy)));
  fp.Mix(static_cast<uint64_t>(options.num_solutions));
  fp.Mix(static_cast<uint64_t>(options.k));
  fp.Mix(static_cast<uint64_t>(options.max_k));
  fp.MixDouble(options.min_dissimilarity);
  fp.Mix(options.seed);
  fp.Mix(static_cast<uint64_t>(options.retry.max_retries));
  fp.Mix(static_cast<uint64_t>(options.allow_fallback ? 1 : 0));
  fp.Mix(static_cast<uint64_t>(options.budget.max_iterations));
  fp.Mix(data);
  return fp.value();
}

}  // namespace

Result<DiscoveryReport> DiscoverMultipleClusterings(
    const Matrix& data, const DiscoveryOptions& options) {
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("Discover: empty data");
  }
  if (options.num_solutions < 2) {
    return Status::InvalidArgument(
        "Discover: num_solutions must be >= 2 (use a plain clusterer for 1)");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("Discover", data));
  MULTICLUST_TRACE_SPAN("pipeline.run");
  BudgetTracker guard(options.budget, "pipeline");
  telemetry::ResourceScope resource_scope;
  telemetry::EmitStage("pipeline", "start");
  Checkpointer* ck = options.budget.checkpoint;
  const uint64_t fp = ck != nullptr ? PipelineFingerprint(data, options) : 0;

  DiscoveryReport report;
  PipelineCkptState state;
  bool resumed = false;
  if (ck != nullptr) {
    // Pipeline-stage warnings (corrupt checkpoint, restore notes) land in
    // the report's warning list, not a per-algorithm RunDiagnostics.
    RunDiagnostics restore_diag;
    if (auto restored = ck->TryRestore("pipeline", fp, &restore_diag)) {
      PipelineCkptState loaded;
      Status parsed = ReadPipelinePayload(restored->payload, &loaded);
      if (parsed.ok() && loaded.solved) {
        for (size_t i = 0; i < loaded.solutions.size(); ++i) {
          if (loaded.solutions.at(i).labels.size() != data.rows()) {
            parsed = Status::ComputationError(
                "checkpoint: solution size mismatch");
            break;
          }
        }
      }
      if (parsed.ok() && loaded.chosen_k == 0) {
        parsed = Status::ComputationError("checkpoint: chosen_k is zero");
      }
      if (parsed.ok()) {
        state = std::move(loaded);
        resumed = true;
      } else {
        AddWarning(&restore_diag, "pipeline",
                   "checkpoint payload rejected (" + parsed.ToString() +
                       "); cold start");
      }
    }
    for (std::string& w : restore_diag.warnings) {
      report.warnings.push_back(std::move(w));
    }
  }

  // Re-reads the shared stage ledger at call time; `flush` swallows write
  // errors (best-effort final snapshot on the way out of a cancellation).
  const auto snapshot = [&](bool flush) -> Status {
    if (ck == nullptr) return Status::OK();
    const auto payload = [&](json::Writer* w) {
      WritePipelinePayload(w, state);
    };
    const Status st = flush ? ck->Flush("pipeline", fp, payload)
                            : ck->AtPersistencePoint("pipeline", fp,
                                                     state.step, payload);
    ++state.step;
    return flush ? Status::OK() : st;
  };

  size_t k = options.k;
  if (resumed) {
    k = state.chosen_k;
  } else {
    if (k == 0) {
      telemetry::EmitStage("pipeline.select_k", "start");
      MC_ASSIGN_OR_RETURN(k,
                          SelectKBySilhouette(data, options.max_k,
                                              options.seed));
      telemetry::EmitStage("pipeline.select_k", "end");
    }
    // Stage boundary: model selection done, no attempts yet.
    state.chosen_k = k;
    MC_RETURN_IF_ERROR(snapshot(/*flush=*/false));
  }
  report.chosen_k = k;

  // Fallback chain: the requested strategy first, then (when allowed) the
  // most robust strategies — dec-kmeans degrades gracefully under budget
  // pressure and meta-clustering tolerates individual base failures.
  std::vector<DiscoveryStrategy> chain = {options.strategy};
  if (options.allow_fallback) {
    for (DiscoveryStrategy fb : {DiscoveryStrategy::kDecorrelatedKMeans,
                                 DiscoveryStrategy::kMetaClustering}) {
      if (std::find(chain.begin(), chain.end(), fb) == chain.end()) {
        chain.push_back(fb);
      }
    }
  }

  Status last_error = Status::OK();
  bool solved = false;
  if (resumed) {
    // Replay the attempt ledger: completed attempts (and, when the run had
    // already solved, the winning solution set) come straight from the
    // checkpoint; only the in-flight attempt re-runs.
    report.attempts = state.attempts;
    for (const std::string& w : state.warnings) report.warnings.push_back(w);
    last_error = state.last_error;
    if (state.solved) {
      report.strategy_name = state.strategy_name;
      report.solutions = std::move(state.solutions);
      report.degraded = state.degraded;
      solved = true;
    }
  }
  const size_t start_attempt = resumed ? state.next_attempt : 0;
  for (size_t attempt = start_attempt; attempt < chain.size() && !solved;
       ++attempt) {
    const DiscoveryStrategy strategy = chain[attempt];
    if (guard.Cancelled()) {
      if (ck != nullptr) (void)snapshot(/*flush=*/true);
      return guard.CancelledStatus();
    }
    if (attempt > 0 && guard.DeadlineExpired()) {
      report.warnings.push_back(
          std::string("pipeline: deadline expired before fallback ") +
          StrategyName(strategy));
      break;
    }
    RunDiagnostics diag;
    diag.algorithm = StrategyName(strategy);
    telemetry::EmitStage(StrategyName(strategy), "start");
    const double started_ms = guard.ElapsedMs();
    Result<StrategyOutcome> run = RunWithRetry(
        options.retry, options.seed,
        [&](uint64_t seed) {
          return RunStrategy(data, strategy, k, options, seed,
                             guard.Remaining(), &diag);
        },
        &diag);
    diag.elapsed_ms = guard.ElapsedMs() - started_ms;
    // The strategy's own recorder reports the inner algorithm; the
    // attempt entry is labelled by strategy.
    diag.algorithm = StrategyName(strategy);
    if (run.ok()) {
      diag.iterations = run->iterations;
      diag.converged = run->converged;
      diag.stop_reason =
          run->converged ? StopReason::kConverged : StopReason::kDeadline;
      report.attempts.push_back(diag);
      report.strategy_name = StrategyName(strategy);
      report.solutions = std::move(run->solutions);
      for (std::string& w : run->warnings) {
        report.warnings.push_back(std::move(w));
      }
      if (diag.retries > 0) {
        report.warnings.push_back(std::string("pipeline: ") +
                                  StrategyName(strategy) + " needed " +
                                  std::to_string(diag.retries) +
                                  " deterministic retr" +
                                  (diag.retries == 1 ? "y" : "ies"));
      }
      report.degraded = attempt > 0 || diag.retries > 0 || !run->converged;
      solved = true;
      // Stage boundary: strategy solved. A resume from here skips the
      // attempt loop entirely and recomputes only the deterministic
      // dedup + objective stages.
      if (ck != nullptr) {
        state.next_attempt = attempt + 1;
        state.attempts = report.attempts;
        state.warnings = report.warnings;
        state.last_error = last_error;
        state.solved = true;
        state.strategy_name = report.strategy_name;
        state.solutions = report.solutions;
        state.degraded = report.degraded;
        MC_RETURN_IF_ERROR(snapshot(/*flush=*/false));
      }
      break;
    }
    // A failed attempt: cancellation, a simulated crash, and configuration
    // errors are final; recoverable computation errors move on to the next
    // strategy.
    if (run.status().code() == StatusCode::kCancelled ||
        run.status().code() == StatusCode::kAborted ||
        run.status().code() == StatusCode::kInvalidArgument) {
      return run.status();
    }
    diag.converged = false;
    report.attempts.push_back(diag);
    last_error = run.status();
    report.warnings.push_back(std::string("pipeline: ") +
                              StrategyName(strategy) +
                              " failed: " + last_error.ToString());
    if (!options.allow_fallback) break;
    // Stage boundary: attempt `attempt` failed recoverably; resume moves
    // straight to the next strategy in the fallback chain.
    if (ck != nullptr) {
      state.next_attempt = attempt + 1;
      state.attempts = report.attempts;
      state.warnings = report.warnings;
      state.last_error = last_error;
      MC_RETURN_IF_ERROR(snapshot(/*flush=*/false));
    }
  }
  if (!solved) {
    if (last_error.ok()) {
      last_error = Status::ComputationError(
          "pipeline: no strategy produced a solution set within budget");
    }
    return last_error;
  }
  report.degraded = report.degraded || !report.warnings.empty();

  {
    MULTICLUST_TRACE_SPAN("pipeline.dedup");
    telemetry::EmitStage("pipeline.dedup", "start");
    MC_RETURN_IF_ERROR(
        report.solutions.Deduplicate(options.min_dissimilarity).status());
    telemetry::EmitStage("pipeline.dedup", "end");
  }
  MULTICLUST_TRACE_SPAN("pipeline.objective");
  telemetry::EmitStage("pipeline.objective", "start");
  MC_ASSIGN_OR_RETURN(report.objective,
                      EvaluateObjective(data, report.solutions,
                                        SilhouetteQuality(),
                                        NmiDissimilarity(), 1.0));
  telemetry::EmitStage("pipeline.objective", "end");
  report.resource = resource_scope.Snapshot();
  telemetry::EmitStage("pipeline", "end");
  return report;
}

}  // namespace multiclust
