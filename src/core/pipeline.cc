#include "core/pipeline.h"

#include <algorithm>
#include <string>
#include <utility>

#include "altspace/dec_kmeans.h"
#include "altspace/meta_clustering.h"
#include "cluster/kmeans.h"
#include "common/trace.h"
#include "metrics/clustering_quality.h"
#include "orthogonal/ortho_projection.h"
#include "subspace/msc.h"

namespace multiclust {

Result<size_t> SelectKBySilhouette(const Matrix& data, size_t max_k,
                                   uint64_t seed) {
  if (max_k < 2) {
    return Status::InvalidArgument("SelectKBySilhouette: max_k must be >= 2");
  }
  MULTICLUST_TRACE_SPAN("pipeline.select_k");
  size_t best_k = 2;
  double best_score = -2.0;
  for (size_t k = 2; k <= max_k && k < data.rows(); ++k) {
    KMeansOptions opts;
    opts.k = k;
    opts.restarts = 5;
    opts.seed = seed + k;
    MC_ASSIGN_OR_RETURN(Clustering c, RunKMeans(data, opts));
    auto sil = Silhouette(data, c.labels);
    if (!sil.ok()) continue;
    if (*sil > best_score) {
      best_score = *sil;
      best_k = k;
    }
  }
  return best_k;
}

namespace {

const char* StrategyName(DiscoveryStrategy s) {
  switch (s) {
    case DiscoveryStrategy::kDecorrelatedKMeans:
      return "dec-kmeans";
    case DiscoveryStrategy::kOrthogonalProjections:
      return "ortho-projection";
    case DiscoveryStrategy::kSpectralViews:
      return "spectral-views";
    case DiscoveryStrategy::kMetaClustering:
      return "meta-clustering";
  }
  return "unknown";
}

// Span name per strategy (span names must be string literals). Unused when
// tracing is compiled out.
[[maybe_unused]] const char* StrategySpanName(DiscoveryStrategy s) {
  switch (s) {
    case DiscoveryStrategy::kDecorrelatedKMeans:
      return "pipeline.strategy.dec-kmeans";
    case DiscoveryStrategy::kOrthogonalProjections:
      return "pipeline.strategy.ortho-projection";
    case DiscoveryStrategy::kSpectralViews:
      return "pipeline.strategy.spectral-views";
    case DiscoveryStrategy::kMetaClustering:
      return "pipeline.strategy.meta-clustering";
  }
  return "pipeline.strategy.unknown";
}

// Result of one strategy attempt: the solutions plus what the strategy
// reported about its own convergence.
struct StrategyOutcome {
  SolutionSet solutions;
  size_t iterations = 0;
  bool converged = true;
  std::vector<std::string> warnings;
};

Result<StrategyOutcome> RunStrategy(const Matrix& data,
                                    DiscoveryStrategy strategy, size_t k,
                                    const DiscoveryOptions& options,
                                    uint64_t seed, const RunBudget& budget,
                                    RunDiagnostics* diag) {
  MULTICLUST_TRACE_SPAN(StrategySpanName(strategy));
  StrategyOutcome out;
  switch (strategy) {
    case DiscoveryStrategy::kDecorrelatedKMeans: {
      DecKMeansOptions dk;
      dk.ks.assign(options.num_solutions, k);
      dk.lambda = 4.0;
      dk.restarts = 5;
      dk.seed = seed;
      dk.budget = budget;
      dk.diagnostics = diag;
      MC_ASSIGN_OR_RETURN(DecKMeansResult r, RunDecorrelatedKMeans(data, dk));
      out.solutions = std::move(r.solutions);
      out.iterations = r.iterations;
      out.converged = r.converged;
      break;
    }
    case DiscoveryStrategy::kOrthogonalProjections: {
      KMeansOptions km;
      km.k = k;
      km.restarts = 5;
      km.seed = seed;
      km.diagnostics = diag;
      KMeansClusterer clusterer(km);
      OrthoProjectionOptions op;
      op.max_views = options.num_solutions;
      op.budget = budget;
      MC_ASSIGN_OR_RETURN(OrthoProjectionResult r,
                          RunOrthoProjection(data, &clusterer, op));
      out.solutions = std::move(r.solutions);
      out.iterations = r.views.size();
      out.converged = !r.stopped_early;
      if (r.stopped_early) out.warnings.push_back(r.stop_message);
      break;
    }
    case DiscoveryStrategy::kSpectralViews: {
      MscOptions msc;
      msc.num_views = options.num_solutions;
      msc.k = k;
      msc.seed = seed;
      msc.budget = budget;
      msc.diagnostics = diag;
      MC_ASSIGN_OR_RETURN(MscResult r, RunMultipleSpectralViews(data, msc));
      out.solutions = std::move(r.solutions);
      out.iterations = r.views.size();
      out.converged = r.warnings.empty();
      out.warnings = std::move(r.warnings);
      break;
    }
    case DiscoveryStrategy::kMetaClustering: {
      MetaClusteringOptions mc;
      mc.num_base = 10 * options.num_solutions;
      mc.k = k;
      mc.meta_k = options.num_solutions;
      mc.seed = seed;
      mc.budget = budget;
      mc.diagnostics = diag;
      MC_ASSIGN_OR_RETURN(MetaClusteringResult r, RunMetaClustering(data, mc));
      out.solutions = std::move(r.representatives);
      out.iterations = r.base.size();
      out.converged = r.warnings.empty();
      out.warnings = std::move(r.warnings);
      break;
    }
  }
  return out;
}

}  // namespace

Result<DiscoveryReport> DiscoverMultipleClusterings(
    const Matrix& data, const DiscoveryOptions& options) {
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("Discover: empty data");
  }
  if (options.num_solutions < 2) {
    return Status::InvalidArgument(
        "Discover: num_solutions must be >= 2 (use a plain clusterer for 1)");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("Discover", data));
  MULTICLUST_TRACE_SPAN("pipeline.run");
  BudgetTracker guard(options.budget, "pipeline");

  DiscoveryReport report;
  size_t k = options.k;
  if (k == 0) {
    MC_ASSIGN_OR_RETURN(k,
                        SelectKBySilhouette(data, options.max_k,
                                            options.seed));
  }
  report.chosen_k = k;

  // Fallback chain: the requested strategy first, then (when allowed) the
  // most robust strategies — dec-kmeans degrades gracefully under budget
  // pressure and meta-clustering tolerates individual base failures.
  std::vector<DiscoveryStrategy> chain = {options.strategy};
  if (options.allow_fallback) {
    for (DiscoveryStrategy fb : {DiscoveryStrategy::kDecorrelatedKMeans,
                                 DiscoveryStrategy::kMetaClustering}) {
      if (std::find(chain.begin(), chain.end(), fb) == chain.end()) {
        chain.push_back(fb);
      }
    }
  }

  Status last_error = Status::OK();
  bool solved = false;
  for (size_t attempt = 0; attempt < chain.size() && !solved; ++attempt) {
    const DiscoveryStrategy strategy = chain[attempt];
    if (guard.Cancelled()) return guard.CancelledStatus();
    if (attempt > 0 && guard.DeadlineExpired()) {
      report.warnings.push_back(
          std::string("pipeline: deadline expired before fallback ") +
          StrategyName(strategy));
      break;
    }
    RunDiagnostics diag;
    diag.algorithm = StrategyName(strategy);
    const double started_ms = guard.ElapsedMs();
    Result<StrategyOutcome> run = RunWithRetry(
        options.retry, options.seed,
        [&](uint64_t seed) {
          return RunStrategy(data, strategy, k, options, seed,
                             guard.Remaining(), &diag);
        },
        &diag);
    diag.elapsed_ms = guard.ElapsedMs() - started_ms;
    // The strategy's own recorder reports the inner algorithm; the
    // attempt entry is labelled by strategy.
    diag.algorithm = StrategyName(strategy);
    if (run.ok()) {
      diag.iterations = run->iterations;
      diag.converged = run->converged;
      diag.stop_reason =
          run->converged ? StopReason::kConverged : StopReason::kDeadline;
      report.attempts.push_back(diag);
      report.strategy_name = StrategyName(strategy);
      report.solutions = std::move(run->solutions);
      for (std::string& w : run->warnings) {
        report.warnings.push_back(std::move(w));
      }
      if (diag.retries > 0) {
        report.warnings.push_back(std::string("pipeline: ") +
                                  StrategyName(strategy) + " needed " +
                                  std::to_string(diag.retries) +
                                  " deterministic retr" +
                                  (diag.retries == 1 ? "y" : "ies"));
      }
      report.degraded = attempt > 0 || diag.retries > 0 || !run->converged;
      solved = true;
      break;
    }
    // A failed attempt: cancellation and configuration errors are final;
    // recoverable computation errors move on to the next strategy.
    if (run.status().code() == StatusCode::kCancelled ||
        run.status().code() == StatusCode::kInvalidArgument) {
      return run.status();
    }
    diag.converged = false;
    report.attempts.push_back(diag);
    last_error = run.status();
    report.warnings.push_back(std::string("pipeline: ") +
                              StrategyName(strategy) +
                              " failed: " + last_error.ToString());
    if (!options.allow_fallback) break;
  }
  if (!solved) {
    if (last_error.ok()) {
      last_error = Status::ComputationError(
          "pipeline: no strategy produced a solution set within budget");
    }
    return last_error;
  }
  report.degraded = report.degraded || !report.warnings.empty();

  {
    MULTICLUST_TRACE_SPAN("pipeline.dedup");
    MC_RETURN_IF_ERROR(
        report.solutions.Deduplicate(options.min_dissimilarity).status());
  }
  MULTICLUST_TRACE_SPAN("pipeline.objective");
  MC_ASSIGN_OR_RETURN(report.objective,
                      EvaluateObjective(data, report.solutions,
                                        SilhouetteQuality(),
                                        NmiDissimilarity(), 1.0));
  return report;
}

}  // namespace multiclust
