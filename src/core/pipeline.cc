#include "core/pipeline.h"

#include "altspace/dec_kmeans.h"
#include "altspace/meta_clustering.h"
#include "cluster/kmeans.h"
#include "metrics/clustering_quality.h"
#include "orthogonal/ortho_projection.h"
#include "subspace/msc.h"

namespace multiclust {

Result<size_t> SelectKBySilhouette(const Matrix& data, size_t max_k,
                                   uint64_t seed) {
  if (max_k < 2) {
    return Status::InvalidArgument("SelectKBySilhouette: max_k must be >= 2");
  }
  size_t best_k = 2;
  double best_score = -2.0;
  for (size_t k = 2; k <= max_k && k < data.rows(); ++k) {
    KMeansOptions opts;
    opts.k = k;
    opts.restarts = 5;
    opts.seed = seed + k;
    MC_ASSIGN_OR_RETURN(Clustering c, RunKMeans(data, opts));
    auto sil = Silhouette(data, c.labels);
    if (!sil.ok()) continue;
    if (*sil > best_score) {
      best_score = *sil;
      best_k = k;
    }
  }
  return best_k;
}

Result<DiscoveryReport> DiscoverMultipleClusterings(
    const Matrix& data, const DiscoveryOptions& options) {
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("Discover: empty data");
  }
  if (options.num_solutions < 2) {
    return Status::InvalidArgument(
        "Discover: num_solutions must be >= 2 (use a plain clusterer for 1)");
  }

  DiscoveryReport report;
  size_t k = options.k;
  if (k == 0) {
    MC_ASSIGN_OR_RETURN(k,
                        SelectKBySilhouette(data, options.max_k,
                                            options.seed));
  }
  report.chosen_k = k;

  switch (options.strategy) {
    case DiscoveryStrategy::kDecorrelatedKMeans: {
      report.strategy_name = "dec-kmeans";
      DecKMeansOptions dk;
      dk.ks.assign(options.num_solutions, k);
      dk.lambda = 4.0;
      dk.restarts = 5;
      dk.seed = options.seed;
      MC_ASSIGN_OR_RETURN(DecKMeansResult r,
                          RunDecorrelatedKMeans(data, dk));
      report.solutions = std::move(r.solutions);
      break;
    }
    case DiscoveryStrategy::kOrthogonalProjections: {
      report.strategy_name = "ortho-projection";
      KMeansOptions km;
      km.k = k;
      km.restarts = 5;
      km.seed = options.seed;
      KMeansClusterer clusterer(km);
      OrthoProjectionOptions op;
      op.max_views = options.num_solutions;
      MC_ASSIGN_OR_RETURN(OrthoProjectionResult r,
                          RunOrthoProjection(data, &clusterer, op));
      report.solutions = std::move(r.solutions);
      break;
    }
    case DiscoveryStrategy::kSpectralViews: {
      report.strategy_name = "spectral-views";
      MscOptions msc;
      msc.num_views = options.num_solutions;
      msc.k = k;
      msc.seed = options.seed;
      MC_ASSIGN_OR_RETURN(MscResult r,
                          RunMultipleSpectralViews(data, msc));
      report.solutions = std::move(r.solutions);
      break;
    }
    case DiscoveryStrategy::kMetaClustering: {
      report.strategy_name = "meta-clustering";
      MetaClusteringOptions mc;
      mc.num_base = 10 * options.num_solutions;
      mc.k = k;
      mc.meta_k = options.num_solutions;
      mc.seed = options.seed;
      MC_ASSIGN_OR_RETURN(MetaClusteringResult r,
                          RunMetaClustering(data, mc));
      report.solutions = std::move(r.representatives);
      break;
    }
  }

  MC_RETURN_IF_ERROR(
      report.solutions.Deduplicate(options.min_dissimilarity).status());
  MC_ASSIGN_OR_RETURN(report.objective,
                      EvaluateObjective(data, report.solutions,
                                        SilhouetteQuality(),
                                        NmiDissimilarity(), 1.0));
  return report;
}

}  // namespace multiclust
