#include "altspace/cami.h"

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "common/runguard.h"

namespace multiclust {

namespace {

double MeanVariance(const GmmComponent& c) {
  double s = 0.0;
  for (double v : c.variances) s += v;
  return s / static_cast<double>(c.variances.size());
}

// Adds the gradient of the overlap penalty w.r.t. the means of `target`,
// scaled by -mu * step (i.e. moves means to *decrease* overlap with
// `other`).
void RepelMeans(const GmmModel& other, double mu, double step,
                GmmModel* target) {
  for (GmmComponent& tc : target->components) {
    const double st = MeanVariance(tc);
    std::vector<double> grad(tc.mean.size(), 0.0);
    for (const GmmComponent& oc : other.components) {
      const double so = MeanVariance(oc);
      const double denom = 2.0 * (st + so);
      double dist2 = 0.0;
      for (size_t j = 0; j < tc.mean.size(); ++j) {
        const double d = tc.mean[j] - oc.mean[j];
        dist2 += d * d;
      }
      const double overlap = tc.weight * oc.weight *
                             std::exp(-dist2 / denom);
      // d overlap / d mean = overlap * (-(mu_t - mu_o) / (st + so))
      for (size_t j = 0; j < tc.mean.size(); ++j) {
        grad[j] += overlap * (-(tc.mean[j] - oc.mean[j]) / (st + so));
      }
    }
    // Gradient *descent* on the penalised objective -mu * overlap: move
    // against the overlap gradient.
    for (size_t j = 0; j < tc.mean.size(); ++j) {
      tc.mean[j] -= mu * step * grad[j];
    }
  }
}

}  // namespace

double CamiOverlap(const GmmModel& m1, const GmmModel& m2) {
  double total = 0.0;
  for (const GmmComponent& a : m1.components) {
    const double sa = MeanVariance(a);
    for (const GmmComponent& b : m2.components) {
      const double sb = MeanVariance(b);
      double dist2 = 0.0;
      for (size_t j = 0; j < a.mean.size() && j < b.mean.size(); ++j) {
        const double d = a.mean[j] - b.mean[j];
        dist2 += d * d;
      }
      total += a.weight * b.weight *
               std::exp(-dist2 / (2.0 * (sa + sb)));
    }
  }
  return total;
}

Result<CamiResult> RunCami(const Matrix& data, const CamiOptions& options) {
  if (data.rows() == 0) return Status::InvalidArgument("CAMI: empty data");
  MC_RETURN_IF_ERROR(ValidateMatrix("CAMI", data));
  Rng rng(options.seed);

  CamiResult best;
  double best_objective = -std::numeric_limits<double>::infinity();
  bool have_best = false;

  const size_t restarts = options.restarts == 0 ? 1 : options.restarts;
  for (size_t restart = 0; restart < restarts; ++restart) {
    MC_ASSIGN_OR_RETURN(GmmModel m1,
                        InitGmm(data, options.k1, CovarianceType::kDiagonal,
                                rng.NextU64()));
    MC_ASSIGN_OR_RETURN(GmmModel m2,
                        InitGmm(data, options.k2, CovarianceType::kDiagonal,
                                rng.NextU64()));

    double prev = -std::numeric_limits<double>::infinity();
    for (size_t iter = 0; iter < options.max_iters; ++iter) {
      MC_RETURN_IF_ERROR(
          EmStep(data, options.variance_floor, &m1).status());
      MC_RETURN_IF_ERROR(
          EmStep(data, options.variance_floor, &m2).status());
      // Penalty step: mixtures repel each other's means. The step size is
      // scaled by the data size so mu is roughly comparable to the
      // log-likelihood scale.
      const double step = 1.0;
      RepelMeans(m2, options.mu, step, &m1);
      RepelMeans(m1, options.mu, step, &m2);

      const double objective = m1.TotalLogLikelihood(data) +
                               m2.TotalLogLikelihood(data) -
                               options.mu * CamiOverlap(m1, m2);
      if (std::isfinite(prev) &&
          std::fabs(objective - prev) <=
              options.tol * (std::fabs(prev) + 1.0)) {
        break;
      }
      prev = objective;
    }

    const double overlap = CamiOverlap(m1, m2);
    const double objective = m1.TotalLogLikelihood(data) +
                             m2.TotalLogLikelihood(data) -
                             options.mu * overlap;
    if (!have_best || objective > best_objective) {
      best_objective = objective;
      best.model1 = m1;
      best.model2 = m2;
      best.objective = objective;
      best.overlap = overlap;
      have_best = true;
    }
  }

  Clustering c1;
  c1.labels = best.model1.HardAssign(data);
  c1.quality = best.model1.TotalLogLikelihood(data);
  c1.algorithm = "cami";
  Clustering c2;
  c2.labels = best.model2.HardAssign(data);
  c2.quality = best.model2.TotalLogLikelihood(data);
  c2.algorithm = "cami";
  MC_RETURN_IF_ERROR(best.solutions.Add(std::move(c1)));
  MC_RETURN_IF_ERROR(best.solutions.Add(std::move(c2)));
  return best;
}

}  // namespace multiclust
