#ifndef MULTICLUST_ALTSPACE_DISPARATE_H_
#define MULTICLUST_ALTSPACE_DISPARATE_H_

#include <cstdint>

#include "common/result.h"
#include "core/solution_set.h"
#include "linalg/matrix.h"

namespace multiclust {

/// Relationship to enforce between the two clusterings
/// (Hossain et al. 2010; tutorial slide 44).
enum class ContingencyGoal {
  /// Maximally *uniform* contingency table: the clusterings are as
  /// independent (disparate/alternative) as possible.
  kDisparate,
  /// Maximally *diagonal* contingency table: the clusterings agree
  /// (dependent clustering), useful for cross-view correspondence.
  kDependent,
};

/// Options for the contingency-table dual-clustering optimiser.
struct DisparateOptions {
  size_t k1 = 2;
  size_t k2 = 2;
  ContingencyGoal goal = ContingencyGoal::kDisparate;
  /// Weight of the contingency objective against prototype compactness.
  /// The contingency penalty is scaled to the data's SSE magnitude
  /// internally, so values around 1 balance the two terms.
  double lambda = 1.0;
  size_t max_iters = 40;
  size_t restarts = 3;
  uint64_t seed = 1;
};

/// Full result.
struct DisparateResult {
  SolutionSet solutions;  ///< two clusterings (prototype-based)
  /// Final contingency uniformity deviation in [0, 1] (0 = perfectly
  /// uniform table).
  double uniformity_deviation = 0.0;
  /// Final combined objective (lower is better).
  double objective = 0.0;
};

/// Two simultaneous prototype-based clusterings whose contingency table is
/// driven towards uniformity (disparate) or diagonality (dependent), while
/// each clustering stays compact — clusters are represented by prototypes,
/// which is what keeps arbitrary "uniform but meaningless" partitions out
/// (the Hossain et al. argument on slide 44). Optimised by alternating
/// greedy reassignment and prototype updates.
Result<DisparateResult> RunDisparateClustering(const Matrix& data,
                                               const DisparateOptions& options);

}  // namespace multiclust

#endif  // MULTICLUST_ALTSPACE_DISPARATE_H_
