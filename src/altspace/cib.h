#ifndef MULTICLUST_ALTSPACE_CIB_H_
#define MULTICLUST_ALTSPACE_CIB_H_

#include <cstdint>
#include <vector>

#include "cluster/clustering.h"
#include "common/result.h"
#include "linalg/matrix.h"

namespace multiclust {

/// Options for conditional information bottleneck clustering
/// (Gondek & Hofmann 2003/2004; tutorial slides 35-36).
struct CibOptions {
  /// Number of clusters C to extract (the compression level; with hard
  /// assignments, I(X;C) is controlled by k).
  size_t k = 2;
  /// Sequential-optimisation passes over all objects.
  size_t max_passes = 30;
  /// Independent random restarts; the run with the highest I(Y; C | D)
  /// wins (the sequential optimiser is greedy and can stall early).
  size_t restarts = 5;
  uint64_t seed = 1;
};

/// Result of a CIB run.
struct CibResult {
  Clustering clustering;
  /// Final conditional information I(Y; C | D) (nats) — the objective.
  double conditional_information = 0.0;
  /// Plain I(Y; C) for reference.
  double information = 0.0;
};

/// Hard conditional information bottleneck: given co-occurrence data
/// (counts of objects x over features y, e.g. a document-term matrix) and a
/// known clustering D of the objects, finds a clustering C maximising
/// I(Y; C | D) — the feature information *not already explained* by the
/// given knowledge (the F2/F3 objectives of slide 36 with hard assignments,
/// optimised by sequential reassignment in the style of sequential IB).
/// Entries of `counts` must be non-negative; `known` labels the rows
/// (-1 entries form their own conditioning cell).
Result<CibResult> RunCib(const Matrix& counts, const std::vector<int>& known,
                         const CibOptions& options);

/// I(Y; C) for a hard clustering of the rows of a count matrix (nats).
Result<double> FeatureInformation(const Matrix& counts,
                                  const std::vector<int>& labels);

/// I(Y; C | D) for hard clusterings C and D of the rows (nats).
Result<double> ConditionalFeatureInformation(const Matrix& counts,
                                             const std::vector<int>& labels,
                                             const std::vector<int>& known);

}  // namespace multiclust

#endif  // MULTICLUST_ALTSPACE_CIB_H_
