#ifndef MULTICLUST_ALTSPACE_CONDITIONAL_ENSEMBLE_H_
#define MULTICLUST_ALTSPACE_CONDITIONAL_ENSEMBLE_H_

#include <cstdint>
#include <vector>

#include "cluster/clustering.h"
#include "common/result.h"

namespace multiclust {

/// Options for non-redundant clustering with conditional ensembles
/// (Gondek & Hofmann 2005; tutorial slide 34).
struct ConditionalEnsembleOptions {
  size_t k = 2;
  /// Base clusterings generated (k-means on randomly re-weighted features).
  size_t ensemble_size = 30;
  /// Novelty weighting temperature: member weight = exp(-novelty_bias *
  /// NMI(member, given)). Larger = more aggressive down-weighting of
  /// members that resemble the given clustering.
  double novelty_bias = 6.0;
  /// Random feature-weight spread (log10 scale), as in meta clustering.
  double weight_spread = 1.0;
  uint64_t seed = 1;
};

/// Result of a conditional-ensemble run.
struct ConditionalEnsembleResult {
  Clustering clustering;
  /// NMI of each ensemble member with the given clustering.
  std::vector<double> member_redundancy;
  /// Weight given to each member in the consensus.
  std::vector<double> member_weight;
};

/// Conditional ensembles: generate a diverse ensemble of base clusterings,
/// *condition* the combination on the given clustering by down-weighting
/// members that are informative about it, and recluster the weighted
/// co-association matrix. The ensemble smooths out the base clusterer's
/// variance while the conditioning steers the consensus towards structure
/// that is new relative to the given knowledge.
Result<ConditionalEnsembleResult> RunConditionalEnsemble(
    const Matrix& data, const std::vector<int>& given,
    const ConditionalEnsembleOptions& options);

}  // namespace multiclust

#endif  // MULTICLUST_ALTSPACE_CONDITIONAL_ENSEMBLE_H_
