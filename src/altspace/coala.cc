#include "altspace/coala.h"

#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "cluster/hierarchical.h"
#include "common/checkpoint.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace multiclust {

namespace {

// Full merge-loop state of one COALA run. The dist/violations matrices are
// Lance-Williams-mutated in place, so resuming means restoring them
// verbatim — everything else (active set, group sizes, memberships, merge
// stats) rides along.
struct CoalaCkptState {
  size_t step = 0;
  size_t iter = 0;
  Matrix dist;
  Matrix violations;
  std::vector<int> active;
  std::vector<size_t> sizes;
  std::vector<std::vector<int>> members;
  size_t quality_merges = 0;
  size_t dissimilarity_merges = 0;
  ConvergenceTrace trace;
};

void WriteCoalaPayload(json::Writer* w, const CoalaCkptState& s) {
  w->BeginObject();
  w->Key("step");
  w->Uint(s.step);
  w->Key("iter");
  w->Uint(s.iter);
  w->Key("dist");
  ckpt::WriteMatrix(w, s.dist);
  w->Key("violations");
  ckpt::WriteMatrix(w, s.violations);
  w->Key("active");
  ckpt::WriteIntVector(w, s.active);
  w->Key("sizes");
  ckpt::WriteSizeVector(w, s.sizes);
  w->Key("members");
  w->BeginArray();
  for (const std::vector<int>& m : s.members) ckpt::WriteIntVector(w, m);
  w->EndArray();
  w->Key("quality_merges");
  w->Uint(s.quality_merges);
  w->Key("dissimilarity_merges");
  w->Uint(s.dissimilarity_merges);
  w->Key("trace");
  ckpt::WriteTrace(w, s.trace);
  w->EndObject();
}

Status ReadCoalaPayload(const json::Value& v, CoalaCkptState* s) {
  MC_ASSIGN_OR_RETURN(s->step, ckpt::SizeField(v, "step"));
  MC_ASSIGN_OR_RETURN(s->iter, ckpt::SizeField(v, "iter"));
  MC_ASSIGN_OR_RETURN(const json::Value* d, ckpt::Field(v, "dist"));
  MC_ASSIGN_OR_RETURN(s->dist, ckpt::ReadMatrix(*d));
  MC_ASSIGN_OR_RETURN(const json::Value* viol, ckpt::Field(v, "violations"));
  MC_ASSIGN_OR_RETURN(s->violations, ckpt::ReadMatrix(*viol));
  MC_ASSIGN_OR_RETURN(const json::Value* act, ckpt::Field(v, "active"));
  MC_ASSIGN_OR_RETURN(s->active, ckpt::ReadIntVector(*act));
  MC_ASSIGN_OR_RETURN(const json::Value* sz, ckpt::Field(v, "sizes"));
  MC_ASSIGN_OR_RETURN(s->sizes, ckpt::ReadSizeVector(*sz));
  MC_ASSIGN_OR_RETURN(const json::Value* mem, ckpt::Field(v, "members"));
  if (!mem->is_array()) {
    return Status::ComputationError("checkpoint: COALA members malformed");
  }
  for (const json::Value& m : mem->array_items()) {
    MC_ASSIGN_OR_RETURN(std::vector<int> vec, ckpt::ReadIntVector(m));
    s->members.push_back(std::move(vec));
  }
  MC_ASSIGN_OR_RETURN(s->quality_merges,
                      ckpt::SizeField(v, "quality_merges"));
  MC_ASSIGN_OR_RETURN(s->dissimilarity_merges,
                      ckpt::SizeField(v, "dissimilarity_merges"));
  MC_ASSIGN_OR_RETURN(const json::Value* tr, ckpt::Field(v, "trace"));
  MC_ASSIGN_OR_RETURN(s->trace, ckpt::ReadTrace(*tr));
  return Status::OK();
}

uint64_t CoalaFingerprint(const Matrix& data, const std::vector<int>& given,
                          const CoalaOptions& options) {
  Fingerprint fp;
  fp.Mix("coala");
  fp.Mix(static_cast<uint64_t>(options.k));
  fp.MixDouble(options.w);
  for (int g : given) fp.Mix(static_cast<uint64_t>(static_cast<int64_t>(g)));
  fp.Mix(static_cast<uint64_t>(options.budget.max_iterations));
  fp.Mix(data);
  return fp.value();
}

}  // namespace

Result<Clustering> RunCoala(const Matrix& data, const std::vector<int>& given,
                            const CoalaOptions& options, CoalaStats* stats) {
  const size_t n = data.rows();
  if (n == 0) return Status::InvalidArgument("COALA: empty data");
  if (given.size() != n) {
    return Status::InvalidArgument("COALA: given clustering size mismatch");
  }
  if (options.k == 0 || options.k > n) {
    return Status::InvalidArgument("COALA: invalid k");
  }
  if (options.w <= 0) {
    return Status::InvalidArgument("COALA: w must be positive");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("COALA", data));
  MULTICLUST_TRACE_SPAN("altspace.coala.run");
  BudgetTracker guard(options.budget, "coala");
  ConvergenceRecorder recorder(options.diagnostics, &guard);
  // Agglomerative: one merge per outer iteration, from n singleton groups
  // down to k.
  recorder.SetExpectedIterations(n > options.k ? n - options.k : 0);

  // Average-link distances between current groups, maintained with the
  // Lance-Williams update. violations(i, j) counts cannot-link pairs between
  // groups i and j; a "dissimilarity merge" requires violations == 0.
  Matrix dist = PairwiseDistances(data);
  Matrix violations(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (given[i] >= 0 && given[i] == given[j]) {
        violations.at(i, j) = 1.0;
        violations.at(j, i) = 1.0;
      }
    }
  }

  std::vector<char> active(n, 1);
  std::vector<size_t> sizes(n, 1);
  std::vector<std::vector<int>> members(n);
  for (size_t i = 0; i < n; ++i) members[i] = {static_cast<int>(i)};

  CoalaStats local_stats;
  size_t remaining = n;
  size_t iter = 0;
  bool stopped_early = false;

  // --- Checkpoint/resume ----------------------------------------------
  Checkpointer* ckp = options.budget.checkpoint;
  const uint64_t fp =
      ckp != nullptr ? CoalaFingerprint(data, given, options) : 0;
  CoalaCkptState state;
  size_t ckpt_step = 0;
  if (ckp != nullptr) {
    if (auto restored = ckp->TryRestore("coala", fp, options.diagnostics)) {
      Status parsed = ReadCoalaPayload(restored->payload, &state);
      if (parsed.ok() && state.dist.rows() == n && state.dist.cols() == n &&
          state.violations.rows() == n && state.violations.cols() == n &&
          state.active.size() == n && state.sizes.size() == n &&
          state.members.size() == n) {
        dist = std::move(state.dist);
        violations = std::move(state.violations);
        for (size_t i = 0; i < n; ++i) active[i] = state.active[i] != 0;
        sizes = std::move(state.sizes);
        members = std::move(state.members);
        local_stats.quality_merges = state.quality_merges;
        local_stats.dissimilarity_merges = state.dissimilarity_merges;
        iter = state.iter;
        ckpt_step = state.step;
        remaining = 0;
        for (size_t i = 0; i < n; ++i) remaining += active[i] ? 1 : 0;
        if (options.diagnostics != nullptr) {
          options.diagnostics->trace = state.trace;
        }
      } else {
        AddWarning(options.diagnostics, "coala",
                   "checkpoint payload rejected (" +
                       (parsed.ok() ? std::string("state shape mismatch")
                                    : parsed.message()) +
                       "); cold start");
      }
    }
  }
  // Persists the full merge state; `flush` forces an unconditional write
  // (cancellation path), otherwise the policy decides. The O(n^2) state
  // capture lives inside the payload writer, which the checkpointer only
  // invokes for snapshots it actually serializes.
  auto snapshot = [&](bool flush) -> Status {
    auto payload = [&](json::Writer* w) {
      CoalaCkptState s;
      s.step = ckpt_step;
      s.iter = iter;
      s.dist = dist;
      s.violations = violations;
      s.active.assign(active.begin(), active.end());
      s.sizes = sizes;
      s.members = members;
      s.quality_merges = local_stats.quality_merges;
      s.dissimilarity_merges = local_stats.dissimilarity_merges;
      if (options.diagnostics != nullptr) s.trace = options.diagnostics->trace;
      WriteCoalaPayload(w, s);
    };
    Status st = flush ? ckp->Flush("coala", fp, payload)
                      : ckp->AtPersistencePoint("coala", fp, ckpt_step, payload);
    ++ckpt_step;
    return flush ? Status::OK() : st;
  };
  // ---------------------------------------------------------------------

  while (remaining > options.k) {
    if (guard.Cancelled()) {
      if (ckp != nullptr) (void)snapshot(/*flush=*/true);
      return guard.CancelledStatus();
    }
    if (guard.ShouldStop(iter)) {
      stopped_early = true;
      break;
    }
    const double inf = std::numeric_limits<double>::infinity();
    double d_qual = inf, d_diss = inf;
    size_t qi = 0, qj = 0, di = 0, dj = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        const double d = dist.at(i, j);
        if (d < d_qual) {
          d_qual = d;
          qi = i;
          qj = j;
        }
        if (violations.at(i, j) == 0.0 && d < d_diss) {
          d_diss = d;
          di = i;
          dj = j;
        }
      }
    }

    if (MC_FAULT_FIRES("coala", FaultKind::kInjectNaN, iter)) {
      d_qual = std::numeric_limits<double>::quiet_NaN();
    }
    if (MC_FAULT_FIRES("coala", FaultKind::kAllocFail, iter)) {
      return Status::ComputationError(
          "COALA: injected allocation failure growing the merge distance "
          "matrix at merge " + std::to_string(iter));
    }
    // The Lance-Williams recurrence cannot produce NaN from finite
    // distances, so a NaN here means an injected fault or corrupted state.
    if (std::isnan(d_qual) || std::isnan(d_diss)) {
      return Status::ComputationError(
          "COALA: non-finite merge distance at merge " + std::to_string(iter));
    }

    size_t mi, mj;
    // Quality merge when it is much better than the best constraint-
    // respecting merge (d_qual < w * d_diss), or when no dissimilarity
    // merge exists at all.
    double merged_dist;
    if (d_diss == inf || d_qual < options.w * d_diss) {
      mi = qi;
      mj = qj;
      merged_dist = d_qual;
      ++local_stats.quality_merges;
      MC_METRIC_COUNT("altspace.coala.quality_merges", 1);
    } else {
      mi = di;
      mj = dj;
      merged_dist = d_diss;
      ++local_stats.dissimilarity_merges;
      MC_METRIC_COUNT("altspace.coala.dissimilarity_merges", 1);
    }
    if (recorder.enabled()) {
      // The "objective" of a merge step is the chosen linkage distance;
      // delta is the gap between the two candidate merges (0 when only
      // one candidate exists).
      const double gap = d_diss == inf ? 0.0 : std::fabs(d_diss - d_qual);
      recorder.Record(0, iter, merged_dist, gap, 0);
    }

    // Merge mj into mi.
    const double ni = static_cast<double>(sizes[mi]);
    const double nj = static_cast<double>(sizes[mj]);
    for (size_t h = 0; h < n; ++h) {
      if (!active[h] || h == mi || h == mj) continue;
      const double v =
          (ni * dist.at(mi, h) + nj * dist.at(mj, h)) / (ni + nj);
      dist.at(mi, h) = v;
      dist.at(h, mi) = v;
      const double viol = violations.at(mi, h) + violations.at(mj, h);
      violations.at(mi, h) = viol;
      violations.at(h, mi) = viol;
    }
    sizes[mi] += sizes[mj];
    active[mj] = 0;
    members[mi].insert(members[mi].end(), members[mj].begin(),
                       members[mj].end());
    members[mj].clear();
    --remaining;
    ++iter;
    // Persistence point: the merge is complete and all state is
    // self-consistent. Covers the final merge too — a resume then simply
    // falls through the loop condition.
    if (ckp != nullptr) MC_RETURN_IF_ERROR(snapshot(/*flush=*/false));
  }

  // A budget-stopped run returns the partial dendrogram cut: more than
  // `k` clusters, flagged via `converged == false`.
  recorder.Finish("coala", iter, !stopped_early);
  Clustering out;
  out.labels.assign(n, -1);
  out.algorithm = "coala";
  out.iterations = iter;
  out.converged = !stopped_early;
  int label = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!active[i]) continue;
    for (int obj : members[i]) out.labels[obj] = label;
    ++label;
  }
  if (stats != nullptr) *stats = local_stats;
  return out;
}

}  // namespace multiclust
