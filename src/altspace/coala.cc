#include "altspace/coala.h"

#include <cmath>
#include <limits>
#include <string>

#include "cluster/hierarchical.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace multiclust {

Result<Clustering> RunCoala(const Matrix& data, const std::vector<int>& given,
                            const CoalaOptions& options, CoalaStats* stats) {
  const size_t n = data.rows();
  if (n == 0) return Status::InvalidArgument("COALA: empty data");
  if (given.size() != n) {
    return Status::InvalidArgument("COALA: given clustering size mismatch");
  }
  if (options.k == 0 || options.k > n) {
    return Status::InvalidArgument("COALA: invalid k");
  }
  if (options.w <= 0) {
    return Status::InvalidArgument("COALA: w must be positive");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("COALA", data));
  MULTICLUST_TRACE_SPAN("altspace.coala.run");
  BudgetTracker guard(options.budget, "coala");
  ConvergenceRecorder recorder(options.diagnostics, &guard);

  // Average-link distances between current groups, maintained with the
  // Lance-Williams update. violations(i, j) counts cannot-link pairs between
  // groups i and j; a "dissimilarity merge" requires violations == 0.
  Matrix dist = PairwiseDistances(data);
  Matrix violations(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (given[i] >= 0 && given[i] == given[j]) {
        violations.at(i, j) = 1.0;
        violations.at(j, i) = 1.0;
      }
    }
  }

  std::vector<char> active(n, 1);
  std::vector<size_t> sizes(n, 1);
  std::vector<std::vector<int>> members(n);
  for (size_t i = 0; i < n; ++i) members[i] = {static_cast<int>(i)};

  CoalaStats local_stats;
  size_t remaining = n;
  size_t iter = 0;
  bool stopped_early = false;
  while (remaining > options.k) {
    if (guard.Cancelled()) return guard.CancelledStatus();
    if (guard.ShouldStop(iter)) {
      stopped_early = true;
      break;
    }
    const double inf = std::numeric_limits<double>::infinity();
    double d_qual = inf, d_diss = inf;
    size_t qi = 0, qj = 0, di = 0, dj = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        const double d = dist.at(i, j);
        if (d < d_qual) {
          d_qual = d;
          qi = i;
          qj = j;
        }
        if (violations.at(i, j) == 0.0 && d < d_diss) {
          d_diss = d;
          di = i;
          dj = j;
        }
      }
    }

    if (MC_FAULT_FIRES("coala", FaultKind::kInjectNaN, iter)) {
      d_qual = std::numeric_limits<double>::quiet_NaN();
    }
    // The Lance-Williams recurrence cannot produce NaN from finite
    // distances, so a NaN here means an injected fault or corrupted state.
    if (std::isnan(d_qual) || std::isnan(d_diss)) {
      return Status::ComputationError(
          "COALA: non-finite merge distance at merge " + std::to_string(iter));
    }

    size_t mi, mj;
    // Quality merge when it is much better than the best constraint-
    // respecting merge (d_qual < w * d_diss), or when no dissimilarity
    // merge exists at all.
    double merged_dist;
    if (d_diss == inf || d_qual < options.w * d_diss) {
      mi = qi;
      mj = qj;
      merged_dist = d_qual;
      ++local_stats.quality_merges;
      MC_METRIC_COUNT("altspace.coala.quality_merges", 1);
    } else {
      mi = di;
      mj = dj;
      merged_dist = d_diss;
      ++local_stats.dissimilarity_merges;
      MC_METRIC_COUNT("altspace.coala.dissimilarity_merges", 1);
    }
    if (recorder.enabled()) {
      // The "objective" of a merge step is the chosen linkage distance;
      // delta is the gap between the two candidate merges (0 when only
      // one candidate exists).
      const double gap = d_diss == inf ? 0.0 : std::fabs(d_diss - d_qual);
      recorder.Record(0, iter, merged_dist, gap, 0);
    }

    // Merge mj into mi.
    const double ni = static_cast<double>(sizes[mi]);
    const double nj = static_cast<double>(sizes[mj]);
    for (size_t h = 0; h < n; ++h) {
      if (!active[h] || h == mi || h == mj) continue;
      const double v =
          (ni * dist.at(mi, h) + nj * dist.at(mj, h)) / (ni + nj);
      dist.at(mi, h) = v;
      dist.at(h, mi) = v;
      const double viol = violations.at(mi, h) + violations.at(mj, h);
      violations.at(mi, h) = viol;
      violations.at(h, mi) = viol;
    }
    sizes[mi] += sizes[mj];
    active[mj] = 0;
    members[mi].insert(members[mi].end(), members[mj].begin(),
                       members[mj].end());
    members[mj].clear();
    --remaining;
    ++iter;
  }

  // A budget-stopped run returns the partial dendrogram cut: more than
  // `k` clusters, flagged via `converged == false`.
  recorder.Finish("coala", iter, !stopped_early);
  Clustering out;
  out.labels.assign(n, -1);
  out.algorithm = "coala";
  out.iterations = iter;
  out.converged = !stopped_early;
  int label = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!active[i]) continue;
    for (int obj : members[i]) out.labels[obj] = label;
    ++label;
  }
  if (stats != nullptr) *stats = local_stats;
  return out;
}

}  // namespace multiclust
