#ifndef MULTICLUST_ALTSPACE_COALA_H_
#define MULTICLUST_ALTSPACE_COALA_H_

#include <vector>

#include "cluster/clustering.h"
#include "common/result.h"
#include "common/runguard.h"

namespace multiclust {

/// Options for COALA (Bae & Bailey 2006; tutorial slides 31-33).
struct CoalaOptions {
  /// Number of clusters in the alternative clustering.
  size_t k = 2;
  /// Quality/dissimilarity trade-off: a *quality* merge is taken when
  /// d_qual < w * d_diss. Large w prefers quality, small w prefers
  /// dissimilarity from the given clustering.
  double w = 0.5;
  /// Wall-clock / iteration / cancellation limits; each agglomerative
  /// merge counts as one iteration. A stopped run returns the partial
  /// dendrogram cut (more than `k` clusters, `converged == false`).
  RunBudget budget;
  /// Optional observability sink (not owned): per-merge ConvergenceTrace
  /// (chosen merge distance, gap between the quality and dissimilarity
  /// candidates) plus iterations/convergence/stop-reason. nullptr (the
  /// default) records nothing.
  RunDiagnostics* diagnostics = nullptr;
};

/// Per-run diagnostics.
struct CoalaStats {
  size_t quality_merges = 0;
  size_t dissimilarity_merges = 0;
};

/// COALA: average-link agglomerative clustering that avoids regrouping
/// objects that the *given* clustering already put together. Every pair
/// inside a given cluster becomes a cannot-link constraint; at each step the
/// algorithm chooses between the best unconstrained merge (quality) and the
/// best constraint-respecting merge (dissimilarity) using the trade-off
/// parameter `w`.
///
/// `given` is the known clustering (labels; -1 entries impose no
/// constraints). Returns the alternative clustering with `k` clusters.
Result<Clustering> RunCoala(const Matrix& data, const std::vector<int>& given,
                            const CoalaOptions& options,
                            CoalaStats* stats = nullptr);

}  // namespace multiclust

#endif  // MULTICLUST_ALTSPACE_COALA_H_
