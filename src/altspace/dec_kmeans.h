#ifndef MULTICLUST_ALTSPACE_DEC_KMEANS_H_
#define MULTICLUST_ALTSPACE_DEC_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/runguard.h"
#include "core/solution_set.h"
#include "linalg/matrix.h"

namespace multiclust {

/// Options for Decorrelated k-means (Jain, Meka & Dhillon 2008; tutorial
/// slides 40-42).
struct DecKMeansOptions {
  /// Cluster counts, one per simultaneous solution (usually all equal).
  /// The tutorial's presentation uses two clusterings; any T >= 2 works.
  std::vector<size_t> ks = {2, 2};
  /// Weight of the decorrelation penalty  lambda * sum (beta_j^T r_i)^2.
  double lambda = 1.0;
  size_t max_iters = 100;
  size_t restarts = 3;
  double tol = 1e-7;  ///< relative objective change for convergence
  uint64_t seed = 1;
  /// Wall-clock / iteration / cancellation limits (see common/runguard.h).
  RunBudget budget;
  /// Optional observability sink (not owned): per-outer-iteration
  /// ConvergenceTrace (combined objective G, objective change,
  /// empty-cluster reseeds) plus iterations/convergence/stop-reason.
  /// nullptr (the default) records nothing.
  RunDiagnostics* diagnostics = nullptr;
};

/// Full output of a run.
struct DecKMeansResult {
  /// One solution per requested clustering; `quality` holds the
  /// compactness term of that clustering.
  SolutionSet solutions;
  /// Final value of the combined objective G (lower is better).
  double objective = 0.0;
  /// Objective after each outer iteration of the best restart (for the
  /// monotonicity property test).
  std::vector<double> history;
  /// Outer iterations of the best restart and whether it converged before
  /// an iteration/budget cap stopped it.
  size_t iterations = 0;
  bool converged = false;
};

/// Simultaneously finds T decorrelated clusterings by alternating
/// minimisation of
///   G = sum_t sum_{x in C^t_i} ||x - r^t_i||^2
///       + lambda * sum_{t != u} sum_{i, j} (mean(C^u_j)^T r^t_i)^2,
/// i.e. each clustering must be compact while its representatives are as
/// orthogonal as possible to the *mean vectors* of every other clustering.
/// Objects are assigned to the nearest representative; representatives are
/// solved in closed form from the regularised normal equations.
Result<DecKMeansResult> RunDecorrelatedKMeans(const Matrix& data,
                                              const DecKMeansOptions& options);

}  // namespace multiclust

#endif  // MULTICLUST_ALTSPACE_DEC_KMEANS_H_
