#include "altspace/conditional_ensemble.h"

#include <cmath>

#include "cluster/hierarchical.h"
#include "cluster/kmeans.h"
#include "common/runguard.h"
#include "common/rng.h"
#include "metrics/partition_similarity.h"

namespace multiclust {

Result<ConditionalEnsembleResult> RunConditionalEnsemble(
    const Matrix& data, const std::vector<int>& given,
    const ConditionalEnsembleOptions& options) {
  const size_t n = data.rows();
  if (n == 0) {
    return Status::InvalidArgument("conditional ensemble: empty data");
  }
  if (given.size() != n) {
    return Status::InvalidArgument(
        "conditional ensemble: given clustering size mismatch");
  }
  if (options.k == 0 || options.k > n) {
    return Status::InvalidArgument("conditional ensemble: invalid k");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("conditional ensemble", data));
  if (options.ensemble_size == 0) {
    return Status::InvalidArgument(
        "conditional ensemble: ensemble_size must be > 0");
  }

  Rng rng(options.seed);
  ConditionalEnsembleResult result;
  Matrix coassoc(n, n);
  double total_weight = 0.0;

  for (size_t e = 0; e < options.ensemble_size; ++e) {
    // Diversified base clustering (random per-feature weights).
    Matrix view = data;
    for (size_t j = 0; j < view.cols(); ++j) {
      const double w = std::pow(
          10.0, rng.Uniform(-options.weight_spread, options.weight_spread));
      for (size_t i = 0; i < n; ++i) view.at(i, j) *= w;
    }
    KMeansOptions km;
    km.k = options.k;
    km.restarts = 1;
    km.seed = rng.NextU64();
    MC_ASSIGN_OR_RETURN(Clustering member, RunKMeans(view, km));

    // Conditioning: weight by novelty w.r.t. the given clustering.
    MC_ASSIGN_OR_RETURN(double redundancy,
                        NormalizedMutualInformation(member.labels, given));
    const double weight = std::exp(-options.novelty_bias * redundancy);
    result.member_redundancy.push_back(redundancy);
    result.member_weight.push_back(weight);
    total_weight += weight;

    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        if (member.labels[i] == member.labels[j]) {
          coassoc.at(i, j) += weight;
          coassoc.at(j, i) += weight;
        }
      }
    }
  }
  if (total_weight <= 0) {
    return Status::ComputationError(
        "conditional ensemble: all members fully redundant");
  }

  // Recluster the weighted co-association (average link on 1 - P).
  Matrix dist(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      dist.at(i, j) =
          i == j ? 0.0 : 1.0 - coassoc.at(i, j) / total_weight;
    }
  }
  AgglomerativeOptions agg;
  agg.k = options.k;
  agg.linkage = Linkage::kAverage;
  MC_ASSIGN_OR_RETURN(AgglomerativeResult reclustered,
                      AgglomerateFromDistances(dist, agg));
  result.clustering = reclustered.flat;
  result.clustering.algorithm = "conditional-ensemble";
  return result;
}

}  // namespace multiclust
