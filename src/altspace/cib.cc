#include "altspace/cib.h"

#include <cmath>

#include "common/rng.h"
#include "common/runguard.h"
#include "metrics/partition_similarity.h"
#include "stats/contingency.h"

namespace multiclust {

namespace {

// Mutual information (nats) of a weighted joint table t[c][y] (any
// non-negative weights; normalised internally).
double MiFromTable(const std::vector<std::vector<double>>& t) {
  const size_t rows = t.size();
  if (rows == 0) return 0.0;
  const size_t cols = t[0].size();
  std::vector<double> row(rows, 0.0), col(cols, 0.0);
  double total = 0.0;
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      row[i] += t[i][j];
      col[j] += t[i][j];
      total += t[i][j];
    }
  }
  if (total <= 0) return 0.0;
  double mi = 0.0;
  for (size_t i = 0; i < rows; ++i) {
    if (row[i] <= 0) continue;
    for (size_t j = 0; j < cols; ++j) {
      if (t[i][j] <= 0 || col[j] <= 0) continue;
      mi += t[i][j] / total *
            std::log(t[i][j] * total / (row[i] * col[j]));
    }
  }
  return mi < 0 ? 0 : mi;
}

// Per-conditioning-cell cluster-feature tables.
struct CibState {
  // tables[d][c][y]: summed counts of features y over objects with known
  // label d assigned to cluster c.
  std::vector<std::vector<std::vector<double>>> tables;
  std::vector<double> cell_mass;  // total count mass per conditioning cell
  double total_mass = 0.0;

  double ConditionalInformation() const {
    double ci = 0.0;
    for (size_t d = 0; d < tables.size(); ++d) {
      if (cell_mass[d] <= 0) continue;
      ci += cell_mass[d] / total_mass * MiFromTable(tables[d]);
    }
    return ci;
  }
};

}  // namespace

Result<double> FeatureInformation(const Matrix& counts,
                                  const std::vector<int>& labels) {
  if (counts.rows() != labels.size()) {
    return Status::InvalidArgument("FeatureInformation: size mismatch");
  }
  std::vector<int> dense;
  const size_t k = DenseRelabel(labels, &dense);
  std::vector<std::vector<double>> table(
      k, std::vector<double>(counts.cols(), 0.0));
  for (size_t i = 0; i < counts.rows(); ++i) {
    if (dense[i] < 0) continue;
    for (size_t j = 0; j < counts.cols(); ++j) {
      table[dense[i]][j] += counts.at(i, j);
    }
  }
  return MiFromTable(table);
}

Result<double> ConditionalFeatureInformation(const Matrix& counts,
                                             const std::vector<int>& labels,
                                             const std::vector<int>& known) {
  if (counts.rows() != labels.size() || counts.rows() != known.size()) {
    return Status::InvalidArgument(
        "ConditionalFeatureInformation: size mismatch");
  }
  std::vector<int> dense_c, dense_d;
  const size_t k = DenseRelabel(labels, &dense_c);
  std::vector<int> known_shifted = known;
  // Noise objects of the known clustering form their own cell.
  for (int& l : known_shifted) {
    if (l < 0) l = 1 << 20;
  }
  const size_t num_d = DenseRelabel(known_shifted, &dense_d);

  CibState state;
  state.tables.assign(
      num_d, std::vector<std::vector<double>>(
                 k, std::vector<double>(counts.cols(), 0.0)));
  state.cell_mass.assign(num_d, 0.0);
  for (size_t i = 0; i < counts.rows(); ++i) {
    if (dense_c[i] < 0) continue;
    for (size_t j = 0; j < counts.cols(); ++j) {
      const double v = counts.at(i, j);
      state.tables[dense_d[i]][dense_c[i]][j] += v;
      state.cell_mass[dense_d[i]] += v;
      state.total_mass += v;
    }
  }
  if (state.total_mass <= 0) return 0.0;
  return state.ConditionalInformation();
}

Result<CibResult> RunCib(const Matrix& counts, const std::vector<int>& known,
                         const CibOptions& options) {
  const size_t n = counts.rows();
  if (n == 0) return Status::InvalidArgument("CIB: empty data");
  if (known.size() != n) {
    return Status::InvalidArgument("CIB: known clustering size mismatch");
  }
  if (options.k == 0 || options.k > n) {
    return Status::InvalidArgument("CIB: invalid k");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("CIB", counts));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < counts.cols(); ++j) {
      if (counts.at(i, j) < 0) {
        return Status::InvalidArgument("CIB: negative count");
      }
    }
  }

  std::vector<int> dense_d;
  std::vector<int> known_shifted = known;
  for (int& l : known_shifted) {
    if (l < 0) l = 1 << 20;
  }
  const size_t num_d = DenseRelabel(known_shifted, &dense_d);
  const size_t k = options.k;
  const size_t y = counts.cols();

  Rng master(options.seed);
  std::vector<int> best_labels;
  double best_objective = -1.0;
  const size_t restarts = options.restarts == 0 ? 1 : options.restarts;
  for (size_t restart = 0; restart < restarts; ++restart) {
    Rng rng = master.Split();
    std::vector<int> labels(n);
    for (size_t i = 0; i < n; ++i) {
      labels[i] = static_cast<int>(rng.NextIndex(k));
    }

    CibState state;
    state.tables.assign(num_d,
                        std::vector<std::vector<double>>(
                            k, std::vector<double>(y, 0.0)));
    state.cell_mass.assign(num_d, 0.0);
    state.total_mass = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < y; ++j) {
        const double v = counts.at(i, j);
        state.tables[dense_d[i]][labels[i]][j] += v;
        state.cell_mass[dense_d[i]] += v;
        state.total_mass += v;
      }
    }
    if (state.total_mass <= 0) {
      return Status::InvalidArgument("CIB: zero total count mass");
    }

    // Sequential optimisation: draw each object, try all clusters, keep
    // the assignment with the highest I(Y; C | D).
    std::vector<size_t> cluster_size(k, 0);
    for (size_t i = 0; i < n; ++i) ++cluster_size[labels[i]];

    double current = state.ConditionalInformation();
    for (size_t pass = 0; pass < options.max_passes; ++pass) {
      bool moved = false;
      const std::vector<size_t> order = rng.Permutation(n);
      for (size_t idx : order) {
        const int from = labels[idx];
        if (cluster_size[from] <= 1) continue;
        const size_t d = dense_d[idx];
        int best_to = from;
        double best_obj = current;
        for (size_t to = 0; to < k; ++to) {
          if (static_cast<int>(to) == from) continue;
          for (size_t j = 0; j < y; ++j) {
            const double v = counts.at(idx, j);
            state.tables[d][from][j] -= v;
            state.tables[d][to][j] += v;
          }
          const double obj = state.ConditionalInformation();
          for (size_t j = 0; j < y; ++j) {
            const double v = counts.at(idx, j);
            state.tables[d][from][j] += v;
            state.tables[d][to][j] -= v;
          }
          if (obj > best_obj + 1e-12) {
            best_obj = obj;
            best_to = static_cast<int>(to);
          }
        }
        if (best_to != from) {
          for (size_t j = 0; j < y; ++j) {
            const double v = counts.at(idx, j);
            state.tables[d][from][j] -= v;
            state.tables[d][best_to][j] += v;
          }
          --cluster_size[from];
          ++cluster_size[best_to];
          labels[idx] = best_to;
          current = best_obj;
          moved = true;
        }
      }
      if (!moved) break;
    }

    if (current > best_objective) {
      best_objective = current;
      best_labels = std::move(labels);
    }
  }

  // I(Y; C | D) is invariant to permuting C's labels *within* each
  // conditioning cell, so the greedy optimum can assign incoherent cluster
  // ids across cells. Align them: take the heaviest cell as reference and
  // match every other cell's per-cluster feature distributions to it
  // (Hungarian on total-variation distance).
  {
    std::vector<std::vector<std::vector<double>>> cell_tables(
        num_d, std::vector<std::vector<double>>(
                   k, std::vector<double>(y, 0.0)));
    std::vector<double> mass(num_d, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < y; ++j) {
        const double v = counts.at(i, j);
        cell_tables[dense_d[i]][best_labels[i]][j] += v;
        mass[dense_d[i]] += v;
      }
    }
    auto normalize = [y](std::vector<double>* row) {
      double s = 0.0;
      for (double v : *row) s += v;
      if (s <= 0) return;
      for (size_t j = 0; j < y; ++j) (*row)[j] /= s;
    };
    size_t ref = 0;
    for (size_t d2 = 1; d2 < num_d; ++d2) {
      if (mass[d2] > mass[ref]) ref = d2;
    }
    std::vector<std::vector<double>> ref_dist = cell_tables[ref];
    for (auto& row : ref_dist) normalize(&row);
    for (size_t d2 = 0; d2 < num_d; ++d2) {
      if (d2 == ref) continue;
      std::vector<std::vector<double>> dist = cell_tables[d2];
      for (auto& row : dist) normalize(&row);
      // cost[c_local][c_ref] = TV distance between feature distributions.
      std::vector<std::vector<double>> cost(k, std::vector<double>(k, 0.0));
      for (size_t a = 0; a < k; ++a) {
        for (size_t b = 0; b < k; ++b) {
          double tv = 0.0;
          for (size_t j = 0; j < y; ++j) {
            tv += std::fabs(dist[a][j] - ref_dist[b][j]);
          }
          cost[a][b] = tv;
        }
      }
      const std::vector<int> perm = HungarianAssign(cost);
      for (size_t i = 0; i < n; ++i) {
        if (dense_d[i] == static_cast<int>(d2) && best_labels[i] >= 0 &&
            perm[best_labels[i]] >= 0) {
          best_labels[i] = perm[best_labels[i]];
        }
      }
    }
  }

  CibResult result;
  result.clustering.labels = std::move(best_labels);
  result.clustering.algorithm = "cib";
  result.clustering.quality = best_objective;
  result.conditional_information = best_objective;
  MC_ASSIGN_OR_RETURN(result.information,
                      FeatureInformation(counts, result.clustering.labels));
  return result;
}

}  // namespace multiclust
