#ifndef MULTICLUST_ALTSPACE_MIN_CENTROPY_H_
#define MULTICLUST_ALTSPACE_MIN_CENTROPY_H_

#include <cstdint>
#include <vector>

#include "cluster/clustering.h"
#include "common/result.h"

namespace multiclust {

/// Options for minCEntropy-style alternative clustering (Vinh & Epps 2010;
/// tutorial slide 34: conditional-entropy based, accepts a *set* of given
/// clusterings).
struct MinCEntropyOptions {
  size_t k = 2;
  /// Weight of the information penalty against the given clusterings.
  double lambda = 1.0;
  /// RBF kernel parameter for the quality term; <= 0 = median heuristic.
  double gamma = 0.0;
  /// Maximum local-search passes over all objects.
  size_t max_passes = 30;
  uint64_t seed = 1;
};

/// Maximises the kernel-quality / novelty trade-off
///   Q(C) - lambda * sum_g I(C; D_g) / log(max(k, 2))
/// where Q(C) = sum_c (1/|c|) * sum_{x,y in c} K(x, y) is the mean
/// within-cluster kernel similarity and D_g are the given clusterings.
/// Optimisation is greedy single-object reassignment (hill climbing) from a
/// k-means-style start — the sequential scheme of the minCEntropy family.
/// With an empty `given`, this is a plain kernel clustering.
Result<Clustering> RunMinCEntropy(const Matrix& data,
                                  const std::vector<std::vector<int>>& given,
                                  const MinCEntropyOptions& options);

}  // namespace multiclust

#endif  // MULTICLUST_ALTSPACE_MIN_CENTROPY_H_
