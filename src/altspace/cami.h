#ifndef MULTICLUST_ALTSPACE_CAMI_H_
#define MULTICLUST_ALTSPACE_CAMI_H_

#include <cstdint>

#include "cluster/gmm.h"
#include "common/result.h"
#include "core/solution_set.h"

namespace multiclust {

/// Options for CAMI (Dang & Bailey 2010a; tutorial slide 43).
struct CamiOptions {
  size_t k1 = 2;  ///< components of the first mixture
  size_t k2 = 2;  ///< components of the second mixture
  /// Weight mu of the mutual-information penalty between the two mixtures.
  double mu = 50.0;
  size_t max_iters = 100;
  size_t restarts = 3;
  double variance_floor = 1e-6;
  double tol = 1e-6;
  uint64_t seed = 1;
};

/// Full output of a run.
struct CamiResult {
  GmmModel model1;
  GmmModel model2;
  /// Hard clusterings of both mixtures.
  SolutionSet solutions;
  /// Final penalised objective L1 + L2 - mu * I (higher is better).
  double objective = 0.0;
  /// The component-overlap surrogate of I(Theta1, Theta2) at convergence.
  double overlap = 0.0;
};

/// CAMI: simultaneously fits two Gaussian mixture models maximising
///   L(Theta1, X) + L(Theta2, X) - mu * I(Theta1, Theta2).
/// The mutual information between the mixtures is handled through its
/// standard tractable surrogate: the weighted pairwise overlap of component
/// densities (a Bhattacharyya-style Gaussian overlap), whose gradient
/// repels the component means of one mixture from those of the other.
/// Each EM iteration alternates a standard E/M step per mixture with a
/// gradient step of the penalty on the means.
Result<CamiResult> RunCami(const Matrix& data, const CamiOptions& options);

/// The overlap surrogate used as I(Theta1, Theta2): sum over component
/// pairs of w1_i * w2_j * exp(-||mu1_i - mu2_j||^2 / (2 (s1_i + s2_j))),
/// where s are mean per-dimension variances. In [0, 1].
double CamiOverlap(const GmmModel& m1, const GmmModel& m2);

}  // namespace multiclust

#endif  // MULTICLUST_ALTSPACE_CAMI_H_
