#include "altspace/dec_kmeans.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <string>
#include <utility>

#include "cluster/clustering.h"
#include "cluster/kmeans.h"
#include "common/checkpoint.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "linalg/decomposition.h"
#include "linalg/kernels.h"

namespace multiclust {

namespace {

struct State {
  // Per clustering t: representatives (k_t x d), labels, means (k_t x d).
  std::vector<Matrix> reps;
  std::vector<std::vector<int>> labels;
  std::vector<Matrix> means;
};

// Cluster means from current labels (empty clusters keep their rep as mean).
Matrix MeansFromLabels(const Matrix& data, const std::vector<int>& labels,
                       const Matrix& fallback_reps, size_t k) {
  Matrix means(k, data.cols());
  std::vector<size_t> counts(k, 0);
  for (size_t i = 0; i < data.rows(); ++i) {
    const int c = labels[i];
    if (c < 0) continue;
    ++counts[c];
    kernels::Add(means.row_data(c), data.row_data(i), data.cols());
  }
  for (size_t c = 0; c < k; ++c) {
    if (counts[c] == 0) {
      means.SetRow(c, fallback_reps.Row(c));
      continue;
    }
    double* m = means.row_data(c);
    for (size_t j = 0; j < data.cols(); ++j) {
      m[j] /= static_cast<double>(counts[c]);
    }
  }
  return means;
}

double Objective(const Matrix& data, const State& s, double lambda) {
  double g = 0.0;
  // Compactness.
  for (size_t t = 0; t < s.reps.size(); ++t) {
    for (size_t i = 0; i < data.rows(); ++i) {
      const int c = s.labels[t][i];
      if (c < 0) continue;
      g += kernels::SquaredDistance(data.row_data(i), s.reps[t].row_data(c),
                                    data.cols());
    }
  }
  // Decorrelation penalty between every ordered pair of clusterings.
  for (size_t t = 0; t < s.reps.size(); ++t) {
    for (size_t u = 0; u < s.reps.size(); ++u) {
      if (t == u) continue;
      for (size_t i = 0; i < s.reps[t].rows(); ++i) {
        for (size_t j = 0; j < s.means[u].rows(); ++j) {
          const double dot = kernels::Dot(s.means[u].row_data(j),
                                          s.reps[t].row_data(i), data.cols());
          g += lambda * dot * dot;
        }
      }
    }
  }
  return g;
}

// One alternating-minimisation restart under the shared budget tracker.
struct RestartOutcome {
  State state;
  std::vector<double> history;
  size_t iterations = 0;
  bool converged = false;
};

/// Mid-restart resume state / per-iteration persistence hook; same
/// protocol as the k-means checkpointing. The shared outer rng is owned by
/// the caller, which serializes it alongside.
struct DecResume {
  size_t start_iter = 0;
  State state;
  std::vector<double> history;
};

using DecPersistFn = std::function<Status(size_t next_iter, const State& s,
                                          const std::vector<double>& history,
                                          bool flush)>;

Result<RestartOutcome> RunRestart(const Matrix& data,
                                  const DecKMeansOptions& options,
                                  Rng* rng, BudgetTracker* guard,
                                  size_t restart,
                                  ConvergenceRecorder* recorder,
                                  const DecResume* resume,
                                  const DecPersistFn& persist) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  const size_t num_clusterings = options.ks.size();
  RestartOutcome out;
  State& s = out.state;
  std::vector<double>& history = out.history;
  size_t start_iter = 0;
  double prev = 0.0;
  if (resume != nullptr) {
    s = resume->state;
    history = resume->history;
    start_iter = resume->start_iter;
    out.iterations = start_iter;
    prev = history.back();
  } else {
    s.reps.resize(num_clusterings);
    s.labels.resize(num_clusterings);
    s.means.resize(num_clusterings);
    // Initialise each clustering's representatives from an independent
    // k-means run with its own seed (diverse starting points).
    for (size_t t = 0; t < num_clusterings; ++t) {
      KMeansOptions km;
      km.k = options.ks[t];
      km.max_iters = 3;
      km.seed = rng->NextU64();
      MC_ASSIGN_OR_RETURN(Clustering init, RunKMeans(data, km));
      s.reps[t] = init.centroids;
      s.labels[t] = init.labels;
      s.means[t] = MeansFromLabels(data, s.labels[t], s.reps[t],
                                   options.ks[t]);
    }
    prev = Objective(data, s, options.lambda);
    history.push_back(prev);
  }

  for (size_t iter = start_iter; iter < options.max_iters; ++iter) {
    if (guard->Cancelled()) {
      if (persist) persist(iter, s, history, /*flush=*/true);
      return guard->CancelledStatus();
    }
    if (guard->ShouldStop(iter)) break;
    MC_METRIC_COUNT("altspace.dec_kmeans.iterations", 1);
    MULTICLUST_TRACE_SPAN("altspace.dec_kmeans.iteration");
    size_t reseeds = 0;
    for (size_t t = 0; t < num_clusterings; ++t) {
      // 1. Assignment to nearest representative.
      s.labels[t] = AssignToNearest(data, s.reps[t]);
      // 2. Means from assignment.
      s.means[t] =
          MeansFromLabels(data, s.labels[t], s.reps[t], options.ks[t]);
      // 3. Closed-form representative update: minimising
      //    sum_{x in C_i} ||x - r||^2 + lambda * sum_{u != t, j}
      //    (beta^u_j^T r)^2 gives
      //    (|C_i| I + lambda * B) r = sum_{x in C_i} x,
      //    with B = sum_{u != t} sum_j beta^u_j beta^u_j^T.
      Matrix b(d, d);
      for (size_t u = 0; u < num_clusterings; ++u) {
        if (u == t) continue;
        for (size_t j = 0; j < s.means[u].rows(); ++j) {
          const double* m = s.means[u].row_data(j);
          for (size_t a = 0; a < d; ++a) {
            // Rank-1 row update b[a,:] += (lambda * m[a]) * m. Same
            // left-associated product as the scalar loop, elementwise —
            // bit-identical to it.
            kernels::Axpy(options.lambda * m[a], m, b.row_data(a), d);
          }
        }
      }
      std::vector<size_t> counts(options.ks[t], 0);
      Matrix sums(options.ks[t], d);
      for (size_t i = 0; i < n; ++i) {
        const int c = s.labels[t][i];
        if (c < 0) continue;
        ++counts[c];
        kernels::Add(sums.row_data(c), data.row_data(i), d);
      }
      for (size_t c = 0; c < options.ks[t]; ++c) {
        if (counts[c] == 0) {
          // Re-seed an empty cluster at a random object.
          s.reps[t].SetRow(c, data.Row(rng->NextIndex(n)));
          ++reseeds;
          continue;
        }
        Matrix a = b;
        for (size_t j = 0; j < d; ++j) {
          a.at(j, j) += static_cast<double>(counts[c]) + 1e-9;
        }
        MC_ASSIGN_OR_RETURN(std::vector<double> r,
                            SolveSpd(a, sums.Row(c)));
        s.reps[t].SetRow(c, r);
      }
    }
    double cur = Objective(data, s, options.lambda);
    if (MC_FAULT_FIRES("dec-kmeans", FaultKind::kInjectNaN, iter)) {
      cur = std::numeric_limits<double>::quiet_NaN();
    }
    if (MC_FAULT_FIRES("dec-kmeans", FaultKind::kAllocFail, iter)) {
      return Status::ComputationError(
          "dec-kmeans: injected allocation failure growing the "
          "representative matrices at iteration " + std::to_string(iter));
    }
    history.push_back(cur);
    out.iterations = iter + 1;
    if (!std::isfinite(cur)) {
      return Status::ComputationError(
          "dec-kmeans: non-finite objective at iteration " +
          std::to_string(iter));
    }
    if (reseeds > 0) MC_METRIC_COUNT("altspace.dec_kmeans.reseeds", reseeds);
    if (recorder->enabled()) {
      recorder->Record(restart, iter, cur, std::fabs(prev - cur), reseeds);
    }
    if (std::fabs(prev - cur) <= options.tol * (std::fabs(prev) + 1.0) &&
        !MC_FAULT_FIRES("dec-kmeans", FaultKind::kForceNonConvergence,
                        iter)) {
      out.converged = true;
      break;
    }
    prev = cur;
    if (persist) {
      MC_RETURN_IF_ERROR(persist(iter + 1, s, history, /*flush=*/false));
    }
  }
  return out;
}

void WriteState(json::Writer* w, const State& s) {
  w->BeginObject();
  w->Key("reps");
  w->BeginArray();
  for (const Matrix& m : s.reps) ckpt::WriteMatrix(w, m);
  w->EndArray();
  w->Key("labels");
  w->BeginArray();
  for (const std::vector<int>& l : s.labels) ckpt::WriteIntVector(w, l);
  w->EndArray();
  w->Key("means");
  w->BeginArray();
  for (const Matrix& m : s.means) ckpt::WriteMatrix(w, m);
  w->EndArray();
  w->EndObject();
}

Status ReadState(const json::Value& v, State* s) {
  MC_ASSIGN_OR_RETURN(const json::Value* reps, ckpt::Field(v, "reps"));
  MC_ASSIGN_OR_RETURN(const json::Value* labels, ckpt::Field(v, "labels"));
  MC_ASSIGN_OR_RETURN(const json::Value* means, ckpt::Field(v, "means"));
  if (!reps->is_array() || !labels->is_array() || !means->is_array()) {
    return Status::ComputationError("checkpoint: dec-kmeans state malformed");
  }
  for (const json::Value& m : reps->array_items()) {
    MC_ASSIGN_OR_RETURN(Matrix mat, ckpt::ReadMatrix(m));
    s->reps.push_back(std::move(mat));
  }
  for (const json::Value& l : labels->array_items()) {
    MC_ASSIGN_OR_RETURN(std::vector<int> vec, ckpt::ReadIntVector(l));
    s->labels.push_back(std::move(vec));
  }
  for (const json::Value& m : means->array_items()) {
    MC_ASSIGN_OR_RETURN(Matrix mat, ckpt::ReadMatrix(m));
    s->means.push_back(std::move(mat));
  }
  return Status::OK();
}

void WriteOutcome(json::Writer* w, const RestartOutcome& o) {
  w->BeginObject();
  w->Key("state");
  WriteState(w, o.state);
  w->Key("history");
  ckpt::WriteDoubleVector(w, o.history);
  w->Key("iterations");
  w->Uint(o.iterations);
  w->Key("converged");
  w->Bool(o.converged);
  w->EndObject();
}

Status ReadOutcome(const json::Value& v, RestartOutcome* o) {
  MC_ASSIGN_OR_RETURN(const json::Value* st, ckpt::Field(v, "state"));
  MC_RETURN_IF_ERROR(ReadState(*st, &o->state));
  MC_ASSIGN_OR_RETURN(const json::Value* h, ckpt::Field(v, "history"));
  MC_ASSIGN_OR_RETURN(o->history, ckpt::ReadDoubleVector(*h));
  MC_ASSIGN_OR_RETURN(o->iterations, ckpt::SizeField(v, "iterations"));
  MC_ASSIGN_OR_RETURN(o->converged, ckpt::BoolField(v, "converged"));
  return Status::OK();
}

// Whole-invocation checkpoint state (restart loop level).
struct DecCkptState {
  size_t step = 0;
  size_t restart = 0;
  Rng rng;  ///< the single shared generator (init seeds + reseeds)
  size_t winner = 0;
  bool have_best = false;
  RestartOutcome best;
  double best_objective = std::numeric_limits<double>::infinity();
  Status last_error = Status::OK();
  ConvergenceTrace trace;
  bool mid_restart = false;
  DecResume seed;
};

void WriteDecPayload(json::Writer* w, const DecCkptState& s) {
  w->BeginObject();
  w->Key("step");
  w->Uint(s.step);
  w->Key("restart");
  w->Uint(s.restart);
  w->Key("rng");
  ckpt::WriteRng(w, s.rng);
  w->Key("winner");
  w->Uint(s.winner);
  w->Key("have_best");
  w->Bool(s.have_best);
  if (s.have_best) {
    w->Key("best");
    WriteOutcome(w, s.best);
    w->Key("best_objective");
    w->Double(s.best_objective);
  }
  w->Key("last_error");
  ckpt::WriteStatus(w, s.last_error);
  w->Key("trace");
  ckpt::WriteTrace(w, s.trace);
  w->Key("mid_restart");
  w->Bool(s.mid_restart);
  if (s.mid_restart) {
    w->Key("next_iter");
    w->Uint(s.seed.start_iter);
    w->Key("mid_state");
    WriteState(w, s.seed.state);
    w->Key("mid_history");
    ckpt::WriteDoubleVector(w, s.seed.history);
  }
  w->EndObject();
}

Status ReadDecPayload(const json::Value& v, DecCkptState* s) {
  MC_ASSIGN_OR_RETURN(s->step, ckpt::SizeField(v, "step"));
  MC_ASSIGN_OR_RETURN(s->restart, ckpt::SizeField(v, "restart"));
  MC_ASSIGN_OR_RETURN(const json::Value* rng, ckpt::Field(v, "rng"));
  MC_ASSIGN_OR_RETURN(s->rng, ckpt::ReadRng(*rng));
  MC_ASSIGN_OR_RETURN(s->winner, ckpt::SizeField(v, "winner"));
  MC_ASSIGN_OR_RETURN(s->have_best, ckpt::BoolField(v, "have_best"));
  if (s->have_best) {
    MC_ASSIGN_OR_RETURN(const json::Value* best, ckpt::Field(v, "best"));
    MC_RETURN_IF_ERROR(ReadOutcome(*best, &s->best));
    MC_ASSIGN_OR_RETURN(s->best_objective,
                        ckpt::NumberField(v, "best_objective"));
  }
  MC_ASSIGN_OR_RETURN(const json::Value* err, ckpt::Field(v, "last_error"));
  MC_RETURN_IF_ERROR(ckpt::ReadStatus(*err, &s->last_error));
  MC_ASSIGN_OR_RETURN(const json::Value* tr, ckpt::Field(v, "trace"));
  MC_ASSIGN_OR_RETURN(s->trace, ckpt::ReadTrace(*tr));
  MC_ASSIGN_OR_RETURN(s->mid_restart, ckpt::BoolField(v, "mid_restart"));
  if (s->mid_restart) {
    MC_ASSIGN_OR_RETURN(s->seed.start_iter, ckpt::SizeField(v, "next_iter"));
    MC_ASSIGN_OR_RETURN(const json::Value* ms, ckpt::Field(v, "mid_state"));
    MC_RETURN_IF_ERROR(ReadState(*ms, &s->seed.state));
    MC_ASSIGN_OR_RETURN(const json::Value* mh, ckpt::Field(v, "mid_history"));
    MC_ASSIGN_OR_RETURN(s->seed.history, ckpt::ReadDoubleVector(*mh));
  }
  return Status::OK();
}

uint64_t DecFingerprint(const Matrix& data, const DecKMeansOptions& options) {
  Fingerprint fp;
  fp.Mix("dec-kmeans");
  for (size_t k : options.ks) fp.Mix(static_cast<uint64_t>(k));
  fp.Mix(static_cast<uint64_t>(options.ks.size()));
  fp.MixDouble(options.lambda);
  fp.Mix(static_cast<uint64_t>(options.max_iters));
  fp.Mix(static_cast<uint64_t>(options.restarts));
  fp.MixDouble(options.tol);
  fp.Mix(options.seed);
  fp.Mix(static_cast<uint64_t>(options.budget.max_iterations));
  fp.Mix(data);
  return fp.value();
}

}  // namespace

Result<DecKMeansResult> RunDecorrelatedKMeans(
    const Matrix& data, const DecKMeansOptions& options) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  const size_t num_clusterings = options.ks.size();
  if (num_clusterings < 2) {
    return Status::InvalidArgument(
        "dec-kmeans: need at least two clusterings (ks.size() >= 2)");
  }
  for (size_t k : options.ks) {
    if (k == 0 || k > n) {
      return Status::InvalidArgument("dec-kmeans: invalid k");
    }
  }
  if (options.lambda < 0) {
    return Status::InvalidArgument("dec-kmeans: lambda must be >= 0");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("dec-kmeans", data));

  MULTICLUST_TRACE_SPAN("altspace.dec_kmeans.run");
  BudgetTracker guard(options.budget, "dec-kmeans");
  ConvergenceRecorder recorder(options.diagnostics, &guard);
  recorder.SetExpectedIterations(
      options.budget.max_iterations != 0
          ? std::min(options.max_iters, options.budget.max_iterations)
          : options.max_iters);
  Checkpointer* ck = options.budget.checkpoint;
  const uint64_t fp = ck != nullptr ? DecFingerprint(data, options) : 0;

  DecCkptState state;
  state.rng = Rng(options.seed);
  bool resume_mid = false;
  if (ck != nullptr) {
    if (auto restored =
            ck->TryRestore("dec-kmeans", fp, options.diagnostics)) {
      DecCkptState loaded;
      const Status parsed = ReadDecPayload(restored->payload, &loaded);
      if (parsed.ok()) {
        state = std::move(loaded);
        resume_mid = state.mid_restart;
        if (options.diagnostics != nullptr) {
          options.diagnostics->trace = state.trace;
          options.diagnostics->trace.winning_restart = state.winner;
        }
      } else {
        AddWarning(options.diagnostics, "dec-kmeans",
                   "checkpoint payload rejected (" + parsed.ToString() +
                       "); cold start");
      }
    }
  }
  // `prepare` defers the state copies until a snapshot is actually
  // serialized, keeping armed-but-not-due persistence points cheap.
  const auto snapshot =
      [&](bool flush, FunctionRef<void()> prepare = {}) -> Status {
    if (ck == nullptr) return Status::OK();
    const auto payload = [&](json::Writer* w) {
      if (prepare) prepare();
      if (options.diagnostics != nullptr) {
        state.trace = options.diagnostics->trace;
      }
      WriteDecPayload(w, state);
    };
    const Status st = flush
                          ? ck->Flush("dec-kmeans", fp, payload)
                          : ck->AtPersistencePoint("dec-kmeans", fp,
                                                   state.step, payload);
    ++state.step;
    return flush ? Status::OK() : st;
  };

  const size_t restarts = options.restarts == 0 ? 1 : options.restarts;
  const size_t start_restart = state.restart;
  for (size_t restart = start_restart; restart < restarts; ++restart) {
    if (restart > 0 && guard.DeadlineExpired()) break;
    MC_METRIC_COUNT("altspace.dec_kmeans.restarts", 1);
    const DecResume* resume =
        (resume_mid && restart == start_restart) ? &state.seed : nullptr;
    const DecPersistFn persist =
        ck == nullptr
            ? DecPersistFn()
            : [&](size_t next_iter, const State& s,
                  const std::vector<double>& history, bool flush) -> Status {
                return snapshot(flush, [&] {
                  state.restart = restart;
                  state.mid_restart = true;
                  state.seed.start_iter = next_iter;
                  state.seed.state = s;
                  state.seed.history = history;
                });
              };
    Result<RestartOutcome> run = RunRestart(data, options, &state.rng, &guard,
                                            restart, &recorder, resume,
                                            persist);
    if (!run.ok()) {
      if (run.status().code() == StatusCode::kCancelled ||
          run.status().code() == StatusCode::kAborted) {
        return run.status();
      }
      state.last_error = run.status();
    } else {
      const double final_obj = run->history.back();
      if (!state.have_best || final_obj < state.best_objective) {
        state.best_objective = final_obj;
        state.best = std::move(*run);
        state.have_best = true;
        state.winner = restart;
        recorder.SetWinner(restart);
      }
    }
    if (ck != nullptr && restart + 1 < restarts) {
      state.restart = restart + 1;
      state.mid_restart = false;
      MC_RETURN_IF_ERROR(snapshot(/*flush=*/false));
    }
  }
  if (!state.have_best) return state.last_error;
  RestartOutcome& best = state.best;
  const double best_objective = state.best_objective;
  recorder.Finish("dec-kmeans", best.iterations, best.converged);

  DecKMeansResult result;
  result.objective = best_objective;
  result.history = std::move(best.history);
  result.iterations = best.iterations;
  result.converged = best.converged;
  for (size_t t = 0; t < num_clusterings; ++t) {
    Clustering c;
    c.labels = best.state.labels[t];
    c.centroids = best.state.reps[t];
    c.algorithm = "dec-kmeans";
    c.iterations = best.iterations;
    c.converged = best.converged;
    double sse = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const int cl = c.labels[i];
      if (cl < 0) continue;
      sse += kernels::SquaredDistance(data.row_data(i),
                                      best.state.reps[t].row_data(cl), d);
    }
    c.quality = sse;
    MC_RETURN_IF_ERROR(result.solutions.Add(std::move(c)));
  }
  return result;
}

}  // namespace multiclust
