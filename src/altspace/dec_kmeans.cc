#include "altspace/dec_kmeans.h"

#include <cmath>
#include <limits>
#include <string>

#include "cluster/clustering.h"
#include "cluster/kmeans.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "linalg/decomposition.h"

namespace multiclust {

namespace {

struct State {
  // Per clustering t: representatives (k_t x d), labels, means (k_t x d).
  std::vector<Matrix> reps;
  std::vector<std::vector<int>> labels;
  std::vector<Matrix> means;
};

// Cluster means from current labels (empty clusters keep their rep as mean).
Matrix MeansFromLabels(const Matrix& data, const std::vector<int>& labels,
                       const Matrix& fallback_reps, size_t k) {
  Matrix means(k, data.cols());
  std::vector<size_t> counts(k, 0);
  for (size_t i = 0; i < data.rows(); ++i) {
    const int c = labels[i];
    if (c < 0) continue;
    ++counts[c];
    const double* row = data.row_data(i);
    double* m = means.row_data(c);
    for (size_t j = 0; j < data.cols(); ++j) m[j] += row[j];
  }
  for (size_t c = 0; c < k; ++c) {
    if (counts[c] == 0) {
      means.SetRow(c, fallback_reps.Row(c));
      continue;
    }
    double* m = means.row_data(c);
    for (size_t j = 0; j < data.cols(); ++j) {
      m[j] /= static_cast<double>(counts[c]);
    }
  }
  return means;
}

double Objective(const Matrix& data, const State& s, double lambda) {
  double g = 0.0;
  // Compactness.
  for (size_t t = 0; t < s.reps.size(); ++t) {
    for (size_t i = 0; i < data.rows(); ++i) {
      const int c = s.labels[t][i];
      if (c < 0) continue;
      const double* row = data.row_data(i);
      const double* rep = s.reps[t].row_data(c);
      for (size_t j = 0; j < data.cols(); ++j) {
        const double d = row[j] - rep[j];
        g += d * d;
      }
    }
  }
  // Decorrelation penalty between every ordered pair of clusterings.
  for (size_t t = 0; t < s.reps.size(); ++t) {
    for (size_t u = 0; u < s.reps.size(); ++u) {
      if (t == u) continue;
      for (size_t i = 0; i < s.reps[t].rows(); ++i) {
        for (size_t j = 0; j < s.means[u].rows(); ++j) {
          double dot = 0.0;
          for (size_t c = 0; c < data.cols(); ++c) {
            dot += s.means[u].at(j, c) * s.reps[t].at(i, c);
          }
          g += lambda * dot * dot;
        }
      }
    }
  }
  return g;
}

// One alternating-minimisation restart under the shared budget tracker.
struct RestartOutcome {
  State state;
  std::vector<double> history;
  size_t iterations = 0;
  bool converged = false;
};

Result<RestartOutcome> RunRestart(const Matrix& data,
                                  const DecKMeansOptions& options,
                                  Rng* rng, BudgetTracker* guard,
                                  size_t restart,
                                  ConvergenceRecorder* recorder) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  const size_t num_clusterings = options.ks.size();
  RestartOutcome out;
  State& s = out.state;
  s.reps.resize(num_clusterings);
  s.labels.resize(num_clusterings);
  s.means.resize(num_clusterings);
  // Initialise each clustering's representatives from an independent
  // k-means run with its own seed (diverse starting points).
  for (size_t t = 0; t < num_clusterings; ++t) {
    KMeansOptions km;
    km.k = options.ks[t];
    km.max_iters = 3;
    km.seed = rng->NextU64();
    MC_ASSIGN_OR_RETURN(Clustering init, RunKMeans(data, km));
    s.reps[t] = init.centroids;
    s.labels[t] = init.labels;
    s.means[t] = MeansFromLabels(data, s.labels[t], s.reps[t],
                                 options.ks[t]);
  }

  std::vector<double>& history = out.history;
  double prev = Objective(data, s, options.lambda);
  history.push_back(prev);

  for (size_t iter = 0; iter < options.max_iters; ++iter) {
    if (guard->Cancelled()) return guard->CancelledStatus();
    if (guard->ShouldStop(iter)) break;
    MC_METRIC_COUNT("altspace.dec_kmeans.iterations", 1);
    MULTICLUST_TRACE_SPAN("altspace.dec_kmeans.iteration");
    size_t reseeds = 0;
    for (size_t t = 0; t < num_clusterings; ++t) {
      // 1. Assignment to nearest representative.
      s.labels[t] = AssignToNearest(data, s.reps[t]);
      // 2. Means from assignment.
      s.means[t] =
          MeansFromLabels(data, s.labels[t], s.reps[t], options.ks[t]);
      // 3. Closed-form representative update: minimising
      //    sum_{x in C_i} ||x - r||^2 + lambda * sum_{u != t, j}
      //    (beta^u_j^T r)^2 gives
      //    (|C_i| I + lambda * B) r = sum_{x in C_i} x,
      //    with B = sum_{u != t} sum_j beta^u_j beta^u_j^T.
      Matrix b(d, d);
      for (size_t u = 0; u < num_clusterings; ++u) {
        if (u == t) continue;
        for (size_t j = 0; j < s.means[u].rows(); ++j) {
          const double* m = s.means[u].row_data(j);
          for (size_t a = 0; a < d; ++a) {
            for (size_t c = 0; c < d; ++c) {
              b.at(a, c) += options.lambda * m[a] * m[c];
            }
          }
        }
      }
      std::vector<size_t> counts(options.ks[t], 0);
      Matrix sums(options.ks[t], d);
      for (size_t i = 0; i < n; ++i) {
        const int c = s.labels[t][i];
        if (c < 0) continue;
        ++counts[c];
        const double* row = data.row_data(i);
        double* acc = sums.row_data(c);
        for (size_t j = 0; j < d; ++j) acc[j] += row[j];
      }
      for (size_t c = 0; c < options.ks[t]; ++c) {
        if (counts[c] == 0) {
          // Re-seed an empty cluster at a random object.
          s.reps[t].SetRow(c, data.Row(rng->NextIndex(n)));
          ++reseeds;
          continue;
        }
        Matrix a = b;
        for (size_t j = 0; j < d; ++j) {
          a.at(j, j) += static_cast<double>(counts[c]) + 1e-9;
        }
        MC_ASSIGN_OR_RETURN(std::vector<double> r,
                            SolveSpd(a, sums.Row(c)));
        s.reps[t].SetRow(c, r);
      }
    }
    double cur = Objective(data, s, options.lambda);
    if (MC_FAULT_FIRES("dec-kmeans", FaultKind::kInjectNaN, iter)) {
      cur = std::numeric_limits<double>::quiet_NaN();
    }
    history.push_back(cur);
    out.iterations = iter + 1;
    if (!std::isfinite(cur)) {
      return Status::ComputationError(
          "dec-kmeans: non-finite objective at iteration " +
          std::to_string(iter));
    }
    if (reseeds > 0) MC_METRIC_COUNT("altspace.dec_kmeans.reseeds", reseeds);
    if (recorder->enabled()) {
      recorder->Record(restart, iter, cur, std::fabs(prev - cur), reseeds);
    }
    if (std::fabs(prev - cur) <= options.tol * (std::fabs(prev) + 1.0) &&
        !MC_FAULT_FIRES("dec-kmeans", FaultKind::kForceNonConvergence,
                        iter)) {
      out.converged = true;
      break;
    }
    prev = cur;
  }
  return out;
}

}  // namespace

Result<DecKMeansResult> RunDecorrelatedKMeans(
    const Matrix& data, const DecKMeansOptions& options) {
  const size_t n = data.rows();
  const size_t d = data.cols();
  const size_t num_clusterings = options.ks.size();
  if (num_clusterings < 2) {
    return Status::InvalidArgument(
        "dec-kmeans: need at least two clusterings (ks.size() >= 2)");
  }
  for (size_t k : options.ks) {
    if (k == 0 || k > n) {
      return Status::InvalidArgument("dec-kmeans: invalid k");
    }
  }
  if (options.lambda < 0) {
    return Status::InvalidArgument("dec-kmeans: lambda must be >= 0");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("dec-kmeans", data));

  MULTICLUST_TRACE_SPAN("altspace.dec_kmeans.run");
  BudgetTracker guard(options.budget, "dec-kmeans");
  ConvergenceRecorder recorder(options.diagnostics, &guard);
  Rng rng(options.seed);
  RestartOutcome best;
  double best_objective = std::numeric_limits<double>::infinity();
  bool have_best = false;
  Status last_error = Status::OK();

  const size_t restarts = options.restarts == 0 ? 1 : options.restarts;
  for (size_t restart = 0; restart < restarts; ++restart) {
    if (restart > 0 && guard.DeadlineExpired()) break;
    MC_METRIC_COUNT("altspace.dec_kmeans.restarts", 1);
    Result<RestartOutcome> run =
        RunRestart(data, options, &rng, &guard, restart, &recorder);
    if (!run.ok()) {
      if (run.status().code() == StatusCode::kCancelled) return run.status();
      last_error = run.status();
      continue;  // a degenerate restart does not kill the others
    }
    const double final_obj = run->history.back();
    if (!have_best || final_obj < best_objective) {
      best_objective = final_obj;
      best = std::move(*run);
      have_best = true;
      recorder.SetWinner(restart);
    }
  }
  if (!have_best) return last_error;
  recorder.Finish("dec-kmeans", best.iterations, best.converged);

  DecKMeansResult result;
  result.objective = best_objective;
  result.history = std::move(best.history);
  result.iterations = best.iterations;
  result.converged = best.converged;
  for (size_t t = 0; t < num_clusterings; ++t) {
    Clustering c;
    c.labels = best.state.labels[t];
    c.centroids = best.state.reps[t];
    c.algorithm = "dec-kmeans";
    c.iterations = best.iterations;
    c.converged = best.converged;
    double sse = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const int cl = c.labels[i];
      if (cl < 0) continue;
      const double* row = data.row_data(i);
      const double* rep = best.state.reps[t].row_data(cl);
      for (size_t j = 0; j < d; ++j) {
        const double diff = row[j] - rep[j];
        sse += diff * diff;
      }
    }
    c.quality = sse;
    MC_RETURN_IF_ERROR(result.solutions.Add(std::move(c)));
  }
  return result;
}

}  // namespace multiclust
