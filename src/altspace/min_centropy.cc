#include "altspace/min_centropy.h"

#include <cmath>

#include "cluster/kmeans.h"
#include "common/rng.h"
#include "common/runguard.h"
#include "stats/contingency.h"
#include "stats/hsic.h"

namespace multiclust {

namespace {

// Mutual information from a dense count table.
double MiFromCounts(const std::vector<std::vector<double>>& counts,
                    double n) {
  if (n <= 0) return 0.0;
  const size_t r = counts.size();
  if (r == 0) return 0.0;
  const size_t c = counts[0].size();
  std::vector<double> row(r, 0.0), col(c, 0.0);
  for (size_t i = 0; i < r; ++i) {
    for (size_t j = 0; j < c; ++j) {
      row[i] += counts[i][j];
      col[j] += counts[i][j];
    }
  }
  double mi = 0.0;
  for (size_t i = 0; i < r; ++i) {
    for (size_t j = 0; j < c; ++j) {
      if (counts[i][j] <= 0) continue;
      const double pij = counts[i][j] / n;
      mi += pij * std::log(counts[i][j] * n / (row[i] * col[j]));
    }
  }
  return mi < 0 ? 0 : mi;
}

}  // namespace

Result<Clustering> RunMinCEntropy(const Matrix& data,
                                  const std::vector<std::vector<int>>& given,
                                  const MinCEntropyOptions& options) {
  const size_t n = data.rows();
  if (n == 0) return Status::InvalidArgument("minCEntropy: empty data");
  if (options.k == 0 || options.k > n) {
    return Status::InvalidArgument("minCEntropy: invalid k");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("minCEntropy", data));
  for (const auto& g : given) {
    if (g.size() != n) {
      return Status::InvalidArgument(
          "minCEntropy: given clustering size mismatch");
    }
  }

  const Matrix kernel = GaussianKernelMatrix(data, options.gamma);
  const size_t k = options.k;

  // Densify the given clusterings.
  std::vector<std::vector<int>> dense_given(given.size());
  std::vector<size_t> given_k(given.size());
  for (size_t g = 0; g < given.size(); ++g) {
    given_k[g] = DenseRelabel(given[g], &dense_given[g]);
  }

  // Start from k-means.
  KMeansOptions km;
  km.k = k;
  km.restarts = 2;
  km.seed = options.seed;
  MC_ASSIGN_OR_RETURN(Clustering start, RunKMeans(data, km));
  std::vector<int> labels = start.labels;

  // contrib[i][c] = sum_{j in cluster c} K(i, j); sizes and within-sums.
  std::vector<std::vector<double>> contrib(n, std::vector<double>(k, 0.0));
  std::vector<double> cluster_sum(k, 0.0);  // sum_{x,y in c} K(x,y)
  std::vector<double> cluster_size(k, 0.0);
  for (size_t i = 0; i < n; ++i) {
    cluster_size[labels[i]] += 1.0;
    for (size_t j = 0; j < n; ++j) {
      contrib[i][labels[j]] += kernel.at(i, j);
    }
  }
  // cluster_sum[c] = full double sum over members incl. the diagonal.
  for (size_t i = 0; i < n; ++i) {
    cluster_sum[labels[i]] += contrib[i][labels[i]];
  }

  // Contingency counts between current labels and each given clustering.
  std::vector<std::vector<std::vector<double>>> tables(given.size());
  for (size_t g = 0; g < given.size(); ++g) {
    tables[g].assign(k, std::vector<double>(given_k[g], 0.0));
    for (size_t i = 0; i < n; ++i) {
      if (dense_given[g][i] >= 0) {
        tables[g][labels[i]][dense_given[g][i]] += 1.0;
      }
    }
  }

  const double log_k = std::log(static_cast<double>(k < 2 ? 2 : k));
  auto objective = [&]() {
    double q = 0.0;
    for (size_t c = 0; c < k; ++c) {
      if (cluster_size[c] > 0) q += cluster_sum[c] / cluster_size[c];
    }
    double penalty = 0.0;
    for (size_t g = 0; g < given.size(); ++g) {
      penalty += MiFromCounts(tables[g], static_cast<double>(n));
    }
    return q / static_cast<double>(n) -
           options.lambda * penalty / log_k;
  };

  Rng rng(options.seed ^ 0xABCDEFULL);
  double current = objective();
  for (size_t pass = 0; pass < options.max_passes; ++pass) {
    bool moved = false;
    const std::vector<size_t> order = rng.Permutation(n);
    for (size_t idx : order) {
      const int from = labels[idx];
      if (cluster_size[from] <= 1.0) continue;  // never empty a cluster
      int best_to = from;
      double best_obj = current;
      for (size_t to = 0; to < k; ++to) {
        if (static_cast<int>(to) == from) continue;
        // Apply the move tentatively.
        cluster_sum[from] -= 2.0 * contrib[idx][from] - kernel.at(idx, idx);
        cluster_sum[to] += 2.0 * contrib[idx][to] + kernel.at(idx, idx);
        cluster_size[from] -= 1.0;
        cluster_size[to] += 1.0;
        for (size_t g = 0; g < given.size(); ++g) {
          if (dense_given[g][idx] >= 0) {
            tables[g][from][dense_given[g][idx]] -= 1.0;
            tables[g][to][dense_given[g][idx]] += 1.0;
          }
        }
        labels[idx] = static_cast<int>(to);
        const double obj = objective();
        // Revert.
        labels[idx] = from;
        for (size_t g = 0; g < given.size(); ++g) {
          if (dense_given[g][idx] >= 0) {
            tables[g][from][dense_given[g][idx]] += 1.0;
            tables[g][to][dense_given[g][idx]] -= 1.0;
          }
        }
        cluster_size[from] += 1.0;
        cluster_size[to] -= 1.0;
        cluster_sum[from] += 2.0 * contrib[idx][from] - kernel.at(idx, idx);
        cluster_sum[to] -= 2.0 * contrib[idx][to] + kernel.at(idx, idx);
        if (obj > best_obj + 1e-12) {
          best_obj = obj;
          best_to = static_cast<int>(to);
        }
      }
      if (best_to != from) {
        // Commit the best move.
        cluster_sum[from] -= 2.0 * contrib[idx][from] - kernel.at(idx, idx);
        cluster_sum[best_to] +=
            2.0 * contrib[idx][best_to] + kernel.at(idx, idx);
        cluster_size[from] -= 1.0;
        cluster_size[best_to] += 1.0;
        for (size_t g = 0; g < given.size(); ++g) {
          if (dense_given[g][idx] >= 0) {
            tables[g][from][dense_given[g][idx]] -= 1.0;
            tables[g][best_to][dense_given[g][idx]] += 1.0;
          }
        }
        labels[idx] = best_to;
        for (size_t j = 0; j < n; ++j) {
          contrib[j][from] -= kernel.at(j, idx);
          contrib[j][best_to] += kernel.at(j, idx);
        }
        current = best_obj;
        moved = true;
      }
    }
    if (!moved) break;
  }

  Clustering out;
  out.labels = std::move(labels);
  out.quality = current;
  out.algorithm = "min-centropy";
  out.Canonicalize();
  return out;
}

}  // namespace multiclust
