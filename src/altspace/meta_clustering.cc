#include "altspace/meta_clustering.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "cluster/hierarchical.h"
#include "cluster/kmeans.h"
#include "common/runguard.h"
#include "common/rng.h"
#include "common/trace.h"
#include "metrics/partition_similarity.h"

namespace multiclust {

Result<MetaClusteringResult> RunMetaClustering(
    const Matrix& data, const MetaClusteringOptions& options) {
  if (options.num_base < 2) {
    return Status::InvalidArgument("meta clustering: need >= 2 base runs");
  }
  if (options.meta_k == 0 || options.meta_k > options.num_base) {
    return Status::InvalidArgument("meta clustering: invalid meta_k");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("meta clustering", data));
  MULTICLUST_TRACE_SPAN("altspace.meta_clustering.run");
  BudgetTracker guard(options.budget, "meta-clustering");

  Rng rng(options.seed);
  MetaClusteringResult result;
  result.base.reserve(options.num_base);

  // 1. Blind/diversified generation of base clusterings. A base run that
  //    fails recoverably is skipped; once the deadline expires (with at
  //    least two bases in hand) generation stops and the meta level works
  //    on the partial ensemble.
  for (size_t b = 0; b < options.num_base; ++b) {
    if (guard.Cancelled()) return guard.CancelledStatus();
    Matrix view = data;
    if (options.feature_weighting) {
      for (size_t j = 0; j < view.cols(); ++j) {
        const double w = std::pow(
            10.0, rng.Uniform(-options.weight_spread, options.weight_spread));
        for (size_t i = 0; i < view.rows(); ++i) view.at(i, j) *= w;
      }
    }
    KMeansOptions km;
    km.k = options.k;
    km.restarts = 1;
    km.plus_plus_init = false;  // deliberate: keep generation undirected
    km.seed = rng.NextU64();
    // Give each base run access to the checkpoint store; base b's
    // fingerprint covers its seed and (weighted) view, so slots cannot
    // collide across bases.
    km.budget.checkpoint = options.budget.checkpoint;
    km.diagnostics = options.diagnostics;
    if (result.base.size() >= 2 && guard.DeadlineExpired()) {
      result.warnings.push_back(
          "meta clustering: deadline expired after " +
          std::to_string(result.base.size()) + " of " +
          std::to_string(options.num_base) + " base runs");
      AddWarning(options.diagnostics, "meta-clustering",
                 "deadline expired after " +
                     std::to_string(result.base.size()) + " of " +
                     std::to_string(options.num_base) + " base runs");
      break;
    }
    Result<Clustering> c = RunKMeans(view, km);
    if (!c.ok()) {
      // Cancellation and a simulated crash are final; only recoverable
      // computation errors degrade to a skipped base.
      if (c.status().code() == StatusCode::kCancelled ||
          c.status().code() == StatusCode::kAborted) {
        return c.status();
      }
      result.warnings.push_back("meta clustering: base run " +
                                std::to_string(b) +
                                " skipped: " + c.status().ToString());
      AddWarning(options.diagnostics, "meta-clustering",
                 "base run " + std::to_string(b) +
                     " skipped: " + c.status().ToString());
      continue;
    }
    c->algorithm = "meta-base-kmeans";
    result.base.push_back(std::move(*c));
  }
  if (result.base.size() < 2) {
    return Status::ComputationError(
        "meta clustering: fewer than two usable base clusterings");
  }

  // 2. Pairwise dissimilarity between base clusterings (1 - Rand).
  const size_t m = result.base.size();
  result.dissimilarity = Matrix(m, m);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      MC_ASSIGN_OR_RETURN(
          double rand_ij,
          RandIndex(result.base[i].labels, result.base[j].labels));
      const double d = 1.0 - rand_ij;
      result.dissimilarity.at(i, j) = d;
      result.dissimilarity.at(j, i) = d;
    }
  }

  // 3. Meta-level grouping: average-link agglomerative on the
  //    clustering-dissimilarity matrix.
  AgglomerativeOptions agg;
  // A deadline-truncated ensemble may hold fewer bases than meta_k.
  agg.k = std::min(options.meta_k, m);
  agg.linkage = Linkage::kAverage;
  MC_ASSIGN_OR_RETURN(AgglomerativeResult meta,
                      AgglomerateFromDistances(result.dissimilarity, agg));
  result.group_of_base = meta.flat.labels;

  // 4. Medoid representative per meta group.
  const size_t groups = meta.flat.NumClusters();
  for (size_t g = 0; g < groups; ++g) {
    double best_cost = 0.0;
    int best = -1;
    for (size_t i = 0; i < m; ++i) {
      if (result.group_of_base[i] != static_cast<int>(g)) continue;
      double cost = 0.0;
      for (size_t j = 0; j < m; ++j) {
        if (result.group_of_base[j] == static_cast<int>(g)) {
          cost += result.dissimilarity.at(i, j);
        }
      }
      if (best < 0 || cost < best_cost) {
        best_cost = cost;
        best = static_cast<int>(i);
      }
    }
    if (best >= 0) {
      Clustering rep = result.base[best];
      rep.algorithm = "meta-representative";
      MC_RETURN_IF_ERROR(result.representatives.Add(std::move(rep)));
    }
  }
  if (options.diagnostics != nullptr) {
    // The trace accumulated one segment per base run; report it under the
    // umbrella algorithm.
    options.diagnostics->algorithm = "meta-clustering";
  }
  return result;
}

}  // namespace multiclust
