#include "altspace/disparate.h"

#include <cmath>
#include <limits>

#include "cluster/clustering.h"
#include "cluster/kmeans.h"
#include "common/rng.h"
#include "common/runguard.h"
#include "linalg/kernels.h"
#include "stats/contingency.h"

namespace multiclust {

namespace {

struct DualState {
  std::vector<int> labels1;
  std::vector<int> labels2;
  Matrix proto1;
  Matrix proto2;
  // table[l1][l2] = count of objects with that label pair.
  std::vector<std::vector<double>> table;
};

double SquaredToProto(const Matrix& data, size_t i, const Matrix& protos,
                      size_t c) {
  const double* row = data.row_data(i);
  const double* p = protos.row_data(c);
  double s = 0.0;
  for (size_t j = 0; j < data.cols(); ++j) {
    const double d = row[j] - p[j];
    s += d * d;
  }
  return s;
}

Matrix MeansOf(const Matrix& data, const std::vector<int>& labels, size_t k,
               Rng* rng) {
  Matrix means(k, data.cols());
  std::vector<size_t> counts(k, 0);
  for (size_t i = 0; i < data.rows(); ++i) {
    ++counts[labels[i]];
    const double* row = data.row_data(i);
    double* m = means.row_data(labels[i]);
    for (size_t j = 0; j < data.cols(); ++j) m[j] += row[j];
  }
  for (size_t c = 0; c < k; ++c) {
    if (counts[c] == 0) {
      means.SetRow(c, data.Row(rng->NextIndex(data.rows())));
      continue;
    }
    double* m = means.row_data(c);
    for (size_t j = 0; j < data.cols(); ++j) {
      m[j] /= static_cast<double>(counts[c]);
    }
  }
  return means;
}

}  // namespace

Result<DisparateResult> RunDisparateClustering(
    const Matrix& data, const DisparateOptions& options) {
  const size_t n = data.rows();
  if (n == 0) return Status::InvalidArgument("disparate: empty data");
  if (options.k1 == 0 || options.k2 == 0 || options.k1 > n ||
      options.k2 > n) {
    return Status::InvalidArgument("disparate: invalid cluster counts");
  }
  if (options.lambda < 0) {
    return Status::InvalidArgument("disparate: lambda must be >= 0");
  }
  MC_RETURN_IF_ERROR(ValidateMatrix("disparate", data));

  Rng rng(options.seed);
  // Scale the contingency penalty to the data's distance magnitude: one
  // unit of cell deviation should be comparable to a typical squared
  // distance.
  const std::vector<double> mean = RowMean(data);
  double scale = 0.0;
  for (size_t i = 0; i < n; ++i) {
    scale += kernels::SquaredDistance(data.row_data(i), mean.data(),
                                      data.cols());
  }
  scale /= static_cast<double>(n);
  const double lambda = options.lambda * scale;

  DisparateResult best;
  double best_objective = std::numeric_limits<double>::infinity();
  bool have_best = false;

  const size_t restarts = options.restarts == 0 ? 1 : options.restarts;
  for (size_t restart = 0; restart < restarts; ++restart) {
    DualState s;
    // Initialise both clusterings from independent k-means runs.
    KMeansOptions km1;
    km1.k = options.k1;
    km1.max_iters = 5;
    km1.seed = rng.NextU64();
    MC_ASSIGN_OR_RETURN(Clustering c1, RunKMeans(data, km1));
    KMeansOptions km2 = km1;
    km2.k = options.k2;
    km2.seed = rng.NextU64();
    MC_ASSIGN_OR_RETURN(Clustering c2, RunKMeans(data, km2));
    s.labels1 = c1.labels;
    s.labels2 = c2.labels;
    s.proto1 = c1.centroids;
    s.proto2 = c2.centroids;
    s.table.assign(options.k1, std::vector<double>(options.k2, 0.0));
    for (size_t i = 0; i < n; ++i) s.table[s.labels1[i]][s.labels2[i]] += 1;

    const double uniform_target =
        static_cast<double>(n) /
        static_cast<double>(options.k1 * options.k2);

    for (size_t iter = 0; iter < options.max_iters; ++iter) {
      bool moved = false;
      // Reassign clustering 1 (with clustering 2 fixed), then vice versa.
      for (int side = 0; side < 2; ++side) {
        std::vector<int>& labels = side == 0 ? s.labels1 : s.labels2;
        const std::vector<int>& other = side == 0 ? s.labels2 : s.labels1;
        Matrix& protos = side == 0 ? s.proto1 : s.proto2;
        const size_t k = side == 0 ? options.k1 : options.k2;
        for (size_t i = 0; i < n; ++i) {
          const int from = labels[i];
          double best_cost = std::numeric_limits<double>::infinity();
          int best_c = from;
          // Remove i from the table while evaluating.
          if (side == 0) {
            s.table[from][other[i]] -= 1;
          } else {
            s.table[other[i]][from] -= 1;
          }
          for (size_t c = 0; c < k; ++c) {
            double target = uniform_target;
            if (options.goal == ContingencyGoal::kDependent) {
              // Diagonal target: matched cells aim for n / max(k1, k2),
              // off-diagonal cells for 0.
              const size_t row = side == 0 ? c : other[i];
              const size_t col = side == 0 ? other[i] : c;
              target = row == col ? static_cast<double>(n) /
                                        static_cast<double>(
                                            std::max(options.k1, options.k2))
                                  : 0.0;
            }
            double penalty;
            if (side == 0) {
              const double cur = s.table[c][other[i]];
              penalty = (cur + 1.0 - target) * (cur + 1.0 - target) -
                        (cur - target) * (cur - target);
            } else {
              const double cur = s.table[other[i]][c];
              penalty = (cur + 1.0 - target) * (cur + 1.0 - target) -
                        (cur - target) * (cur - target);
            }
            const double cost = SquaredToProto(data, i, protos, c) +
                                lambda * penalty /
                                    static_cast<double>(n);
            if (cost < best_cost) {
              best_cost = cost;
              best_c = static_cast<int>(c);
            }
          }
          if (side == 0) {
            s.table[best_c][other[i]] += 1;
          } else {
            s.table[other[i]][best_c] += 1;
          }
          if (best_c != from) {
            labels[i] = best_c;
            moved = true;
          }
        }
        protos = MeansOf(data, labels, k, &rng);
      }
      if (!moved) break;
    }

    // Score this restart.
    double sse = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sse += SquaredToProto(data, i, s.proto1, s.labels1[i]) +
             SquaredToProto(data, i, s.proto2, s.labels2[i]);
    }
    MC_ASSIGN_OR_RETURN(ContingencyTable ct,
                        ContingencyTable::Build(s.labels1, s.labels2));
    const double deviation = ct.UniformityDeviation();
    const double contingency_term =
        options.goal == ContingencyGoal::kDisparate ? deviation
                                                    : 1.0 - deviation;
    const double objective =
        sse + lambda * static_cast<double>(n) * contingency_term;
    if (!have_best || objective < best_objective) {
      best_objective = objective;
      best = DisparateResult();
      Clustering out1;
      out1.labels = s.labels1;
      out1.centroids = s.proto1;
      out1.algorithm = "disparate";
      Clustering out2;
      out2.labels = s.labels2;
      out2.centroids = s.proto2;
      out2.algorithm = "disparate";
      MC_RETURN_IF_ERROR(best.solutions.Add(std::move(out1)));
      MC_RETURN_IF_ERROR(best.solutions.Add(std::move(out2)));
      best.uniformity_deviation = deviation;
      best.objective = objective;
      have_best = true;
    }
  }
  return best;
}

}  // namespace multiclust
