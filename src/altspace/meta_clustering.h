#ifndef MULTICLUST_ALTSPACE_META_CLUSTERING_H_
#define MULTICLUST_ALTSPACE_META_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include <string>

#include "cluster/clustering.h"
#include "common/result.h"
#include "common/runguard.h"
#include "core/solution_set.h"

namespace multiclust {

/// Options for meta clustering (Caruana et al. 2006; tutorial slide 29).
struct MetaClusteringOptions {
  /// Number of base clusterings to generate.
  size_t num_base = 30;
  /// Clusters per base clustering.
  size_t k = 3;
  /// Number of meta-level groups (distinct solution families) to extract.
  size_t meta_k = 4;
  /// Diversify base generation with random per-feature weights (the paper's
  /// Zipf-weighting idea); with false, only the k-means restart
  /// non-determinism differentiates runs — the "blind generation" risk the
  /// tutorial warns about.
  bool feature_weighting = true;
  /// Exponent range for feature weights w ~ 10^U(-spread, +spread).
  double weight_spread = 1.0;
  uint64_t seed = 1;
  /// Wall-clock / cancellation limits. Base generation stops early when
  /// the deadline expires; the meta grouping then runs on the bases
  /// generated so far (at least two).
  RunBudget budget;
  /// Optional observability sink (not owned): forwarded to every base
  /// k-means run, whose traces accumulate in it. The algorithm is
  /// reported as "meta-clustering". nullptr (the default) records
  /// nothing.
  RunDiagnostics* diagnostics = nullptr;
};

/// Full output of a meta-clustering run.
struct MetaClusteringResult {
  /// All generated base clusterings.
  std::vector<Clustering> base;
  /// Pairwise dissimilarity (1 - Rand) between base clusterings.
  Matrix dissimilarity;
  /// Meta-level group of each base clustering.
  std::vector<int> group_of_base;
  /// One representative (medoid) clustering per meta group.
  SolutionSet representatives;
  /// Base runs skipped (recoverable failure) or cut off (deadline);
  /// empty on a clean run.
  std::vector<std::string> warnings;
};

/// Generates many clusterings, groups them at the meta level by clustering
/// the clusterings (average-link on 1 - Rand), and returns one medoid per
/// group. The archetypal "independent generation" approach of the taxonomy.
Result<MetaClusteringResult> RunMetaClustering(
    const Matrix& data, const MetaClusteringOptions& options);

}  // namespace multiclust

#endif  // MULTICLUST_ALTSPACE_META_CLUSTERING_H_
