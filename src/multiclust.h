#ifndef MULTICLUST_MULTICLUST_H_
#define MULTICLUST_MULTICLUST_H_

/// Umbrella header: includes the full public API of the multiclust
/// library. Fine-grained includes (e.g. "altspace/coala.h") keep compile
/// times lower; this header exists for quick experiments and the examples.

#include "common/checkpoint.h"  // IWYU pragma: export
#include "common/fault.h"     // IWYU pragma: export
#include "common/json.h"      // IWYU pragma: export
#include "common/report.h"    // IWYU pragma: export
#include "common/result.h"    // IWYU pragma: export
#include "common/rng.h"       // IWYU pragma: export
#include "common/runguard.h"  // IWYU pragma: export
#include "common/status.h"    // IWYU pragma: export
#include "common/strings.h"   // IWYU pragma: export

#include "linalg/decomposition.h"  // IWYU pragma: export
#include "linalg/matrix.h"         // IWYU pragma: export
#include "linalg/pca.h"            // IWYU pragma: export

#include "data/csv.h"          // IWYU pragma: export
#include "data/dataset.h"      // IWYU pragma: export
#include "data/discrete.h"     // IWYU pragma: export
#include "data/generators.h"   // IWYU pragma: export
#include "data/standardize.h"  // IWYU pragma: export

#include "stats/contingency.h"  // IWYU pragma: export
#include "stats/entropy.h"      // IWYU pragma: export
#include "stats/grid.h"         // IWYU pragma: export
#include "stats/hsic.h"         // IWYU pragma: export
#include "stats/kde.h"          // IWYU pragma: export
#include "stats/tails.h"        // IWYU pragma: export

#include "metrics/adco.h"                  // IWYU pragma: export
#include "metrics/clustering_quality.h"    // IWYU pragma: export
#include "metrics/multi_solution.h"        // IWYU pragma: export
#include "metrics/partition_similarity.h"  // IWYU pragma: export
#include "metrics/stability.h"             // IWYU pragma: export

#include "cluster/clustering.h"    // IWYU pragma: export
#include "cluster/dbscan.h"        // IWYU pragma: export
#include "cluster/gmm.h"           // IWYU pragma: export
#include "cluster/grid_index.h"    // IWYU pragma: export
#include "cluster/hierarchical.h"  // IWYU pragma: export
#include "cluster/kmeans.h"        // IWYU pragma: export
#include "cluster/spectral.h"      // IWYU pragma: export

#include "core/objectives.h"    // IWYU pragma: export
#include "core/pipeline.h"      // IWYU pragma: export
#include "core/solution_set.h"  // IWYU pragma: export
#include "core/taxonomy.h"      // IWYU pragma: export

#include "altspace/cami.h"                  // IWYU pragma: export
#include "altspace/cib.h"                   // IWYU pragma: export
#include "altspace/coala.h"                 // IWYU pragma: export
#include "altspace/conditional_ensemble.h"  // IWYU pragma: export
#include "altspace/dec_kmeans.h"            // IWYU pragma: export
#include "altspace/disparate.h"             // IWYU pragma: export
#include "altspace/meta_clustering.h"       // IWYU pragma: export
#include "altspace/min_centropy.h"          // IWYU pragma: export

#include "orthogonal/alt_transform.h"       // IWYU pragma: export
#include "orthogonal/metric_learning.h"     // IWYU pragma: export
#include "orthogonal/ortho_projection.h"    // IWYU pragma: export
#include "orthogonal/residual_transform.h"  // IWYU pragma: export

#include "subspace/asclu.h"             // IWYU pragma: export
#include "subspace/clique.h"            // IWYU pragma: export
#include "subspace/doc.h"               // IWYU pragma: export
#include "subspace/enclus.h"            // IWYU pragma: export
#include "subspace/msc.h"               // IWYU pragma: export
#include "subspace/orclus.h"            // IWYU pragma: export
#include "subspace/osclu.h"             // IWYU pragma: export
#include "subspace/p3c.h"               // IWYU pragma: export
#include "subspace/predecon.h"          // IWYU pragma: export
#include "subspace/proclus.h"           // IWYU pragma: export
#include "subspace/rescu.h"             // IWYU pragma: export
#include "subspace/ris.h"               // IWYU pragma: export
#include "subspace/schism.h"            // IWYU pragma: export
#include "subspace/statpc.h"            // IWYU pragma: export
#include "subspace/subclu.h"            // IWYU pragma: export
#include "subspace/subspace_cluster.h"  // IWYU pragma: export

#include "multiview/co_em.h"              // IWYU pragma: export
#include "multiview/consensus.h"          // IWYU pragma: export
#include "multiview/mv_dbscan.h"          // IWYU pragma: export
#include "multiview/mv_spectral.h"        // IWYU pragma: export
#include "multiview/random_projection.h"  // IWYU pragma: export

#endif  // MULTICLUST_MULTICLUST_H_
