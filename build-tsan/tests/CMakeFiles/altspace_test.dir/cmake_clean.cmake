file(REMOVE_RECURSE
  "CMakeFiles/altspace_test.dir/altspace_test.cc.o"
  "CMakeFiles/altspace_test.dir/altspace_test.cc.o.d"
  "altspace_test"
  "altspace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
