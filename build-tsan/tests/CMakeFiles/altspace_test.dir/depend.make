# Empty dependencies file for altspace_test.
# This may be replaced when dependencies are built.
