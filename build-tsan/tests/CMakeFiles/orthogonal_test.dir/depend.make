# Empty dependencies file for orthogonal_test.
# This may be replaced when dependencies are built.
