file(REMOVE_RECURSE
  "CMakeFiles/orthogonal_test.dir/orthogonal_test.cc.o"
  "CMakeFiles/orthogonal_test.dir/orthogonal_test.cc.o.d"
  "orthogonal_test"
  "orthogonal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orthogonal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
