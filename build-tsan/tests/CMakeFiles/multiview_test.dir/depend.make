# Empty dependencies file for multiview_test.
# This may be replaced when dependencies are built.
