file(REMOVE_RECURSE
  "CMakeFiles/multiview_test.dir/multiview_test.cc.o"
  "CMakeFiles/multiview_test.dir/multiview_test.cc.o.d"
  "multiview_test"
  "multiview_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiview_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
