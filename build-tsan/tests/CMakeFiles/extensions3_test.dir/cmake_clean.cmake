file(REMOVE_RECURSE
  "CMakeFiles/extensions3_test.dir/extensions3_test.cc.o"
  "CMakeFiles/extensions3_test.dir/extensions3_test.cc.o.d"
  "extensions3_test"
  "extensions3_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extensions3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
