# Empty dependencies file for document_topics.
# This may be replaced when dependencies are built.
