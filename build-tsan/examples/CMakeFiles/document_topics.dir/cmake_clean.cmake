file(REMOVE_RECURSE
  "CMakeFiles/document_topics.dir/document_topics.cpp.o"
  "CMakeFiles/document_topics.dir/document_topics.cpp.o.d"
  "document_topics"
  "document_topics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/document_topics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
