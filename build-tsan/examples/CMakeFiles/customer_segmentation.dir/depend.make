# Empty dependencies file for customer_segmentation.
# This may be replaced when dependencies are built.
