file(REMOVE_RECURSE
  "CMakeFiles/customer_segmentation.dir/customer_segmentation.cpp.o"
  "CMakeFiles/customer_segmentation.dir/customer_segmentation.cpp.o.d"
  "customer_segmentation"
  "customer_segmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/customer_segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
