# Empty dependencies file for discover_cli.
# This may be replaced when dependencies are built.
