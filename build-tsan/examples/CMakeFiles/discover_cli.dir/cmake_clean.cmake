file(REMOVE_RECURSE
  "CMakeFiles/discover_cli.dir/discover_cli.cpp.o"
  "CMakeFiles/discover_cli.dir/discover_cli.cpp.o.d"
  "discover_cli"
  "discover_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discover_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
