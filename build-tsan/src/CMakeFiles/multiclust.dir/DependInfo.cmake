
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/altspace/cami.cc" "src/CMakeFiles/multiclust.dir/altspace/cami.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/altspace/cami.cc.o.d"
  "/root/repo/src/altspace/cib.cc" "src/CMakeFiles/multiclust.dir/altspace/cib.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/altspace/cib.cc.o.d"
  "/root/repo/src/altspace/coala.cc" "src/CMakeFiles/multiclust.dir/altspace/coala.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/altspace/coala.cc.o.d"
  "/root/repo/src/altspace/conditional_ensemble.cc" "src/CMakeFiles/multiclust.dir/altspace/conditional_ensemble.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/altspace/conditional_ensemble.cc.o.d"
  "/root/repo/src/altspace/dec_kmeans.cc" "src/CMakeFiles/multiclust.dir/altspace/dec_kmeans.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/altspace/dec_kmeans.cc.o.d"
  "/root/repo/src/altspace/disparate.cc" "src/CMakeFiles/multiclust.dir/altspace/disparate.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/altspace/disparate.cc.o.d"
  "/root/repo/src/altspace/meta_clustering.cc" "src/CMakeFiles/multiclust.dir/altspace/meta_clustering.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/altspace/meta_clustering.cc.o.d"
  "/root/repo/src/altspace/min_centropy.cc" "src/CMakeFiles/multiclust.dir/altspace/min_centropy.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/altspace/min_centropy.cc.o.d"
  "/root/repo/src/cluster/clustering.cc" "src/CMakeFiles/multiclust.dir/cluster/clustering.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/cluster/clustering.cc.o.d"
  "/root/repo/src/cluster/dbscan.cc" "src/CMakeFiles/multiclust.dir/cluster/dbscan.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/cluster/dbscan.cc.o.d"
  "/root/repo/src/cluster/gmm.cc" "src/CMakeFiles/multiclust.dir/cluster/gmm.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/cluster/gmm.cc.o.d"
  "/root/repo/src/cluster/grid_index.cc" "src/CMakeFiles/multiclust.dir/cluster/grid_index.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/cluster/grid_index.cc.o.d"
  "/root/repo/src/cluster/hierarchical.cc" "src/CMakeFiles/multiclust.dir/cluster/hierarchical.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/cluster/hierarchical.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/CMakeFiles/multiclust.dir/cluster/kmeans.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/cluster/kmeans.cc.o.d"
  "/root/repo/src/cluster/spectral.cc" "src/CMakeFiles/multiclust.dir/cluster/spectral.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/cluster/spectral.cc.o.d"
  "/root/repo/src/common/parallel.cc" "src/CMakeFiles/multiclust.dir/common/parallel.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/common/parallel.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/multiclust.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/multiclust.dir/common/status.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/multiclust.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/common/strings.cc.o.d"
  "/root/repo/src/core/objectives.cc" "src/CMakeFiles/multiclust.dir/core/objectives.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/core/objectives.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/CMakeFiles/multiclust.dir/core/pipeline.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/core/pipeline.cc.o.d"
  "/root/repo/src/core/solution_set.cc" "src/CMakeFiles/multiclust.dir/core/solution_set.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/core/solution_set.cc.o.d"
  "/root/repo/src/core/taxonomy.cc" "src/CMakeFiles/multiclust.dir/core/taxonomy.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/core/taxonomy.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/CMakeFiles/multiclust.dir/data/csv.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/data/csv.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/multiclust.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/discrete.cc" "src/CMakeFiles/multiclust.dir/data/discrete.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/data/discrete.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/CMakeFiles/multiclust.dir/data/generators.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/data/generators.cc.o.d"
  "/root/repo/src/data/standardize.cc" "src/CMakeFiles/multiclust.dir/data/standardize.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/data/standardize.cc.o.d"
  "/root/repo/src/linalg/decomposition.cc" "src/CMakeFiles/multiclust.dir/linalg/decomposition.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/linalg/decomposition.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/CMakeFiles/multiclust.dir/linalg/matrix.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/linalg/matrix.cc.o.d"
  "/root/repo/src/linalg/pca.cc" "src/CMakeFiles/multiclust.dir/linalg/pca.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/linalg/pca.cc.o.d"
  "/root/repo/src/metrics/adco.cc" "src/CMakeFiles/multiclust.dir/metrics/adco.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/metrics/adco.cc.o.d"
  "/root/repo/src/metrics/clustering_quality.cc" "src/CMakeFiles/multiclust.dir/metrics/clustering_quality.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/metrics/clustering_quality.cc.o.d"
  "/root/repo/src/metrics/multi_solution.cc" "src/CMakeFiles/multiclust.dir/metrics/multi_solution.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/metrics/multi_solution.cc.o.d"
  "/root/repo/src/metrics/partition_similarity.cc" "src/CMakeFiles/multiclust.dir/metrics/partition_similarity.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/metrics/partition_similarity.cc.o.d"
  "/root/repo/src/metrics/stability.cc" "src/CMakeFiles/multiclust.dir/metrics/stability.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/metrics/stability.cc.o.d"
  "/root/repo/src/multiview/co_em.cc" "src/CMakeFiles/multiclust.dir/multiview/co_em.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/multiview/co_em.cc.o.d"
  "/root/repo/src/multiview/consensus.cc" "src/CMakeFiles/multiclust.dir/multiview/consensus.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/multiview/consensus.cc.o.d"
  "/root/repo/src/multiview/mv_dbscan.cc" "src/CMakeFiles/multiclust.dir/multiview/mv_dbscan.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/multiview/mv_dbscan.cc.o.d"
  "/root/repo/src/multiview/mv_spectral.cc" "src/CMakeFiles/multiclust.dir/multiview/mv_spectral.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/multiview/mv_spectral.cc.o.d"
  "/root/repo/src/multiview/random_projection.cc" "src/CMakeFiles/multiclust.dir/multiview/random_projection.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/multiview/random_projection.cc.o.d"
  "/root/repo/src/orthogonal/alt_transform.cc" "src/CMakeFiles/multiclust.dir/orthogonal/alt_transform.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/orthogonal/alt_transform.cc.o.d"
  "/root/repo/src/orthogonal/metric_learning.cc" "src/CMakeFiles/multiclust.dir/orthogonal/metric_learning.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/orthogonal/metric_learning.cc.o.d"
  "/root/repo/src/orthogonal/ortho_projection.cc" "src/CMakeFiles/multiclust.dir/orthogonal/ortho_projection.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/orthogonal/ortho_projection.cc.o.d"
  "/root/repo/src/orthogonal/residual_transform.cc" "src/CMakeFiles/multiclust.dir/orthogonal/residual_transform.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/orthogonal/residual_transform.cc.o.d"
  "/root/repo/src/stats/contingency.cc" "src/CMakeFiles/multiclust.dir/stats/contingency.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/stats/contingency.cc.o.d"
  "/root/repo/src/stats/entropy.cc" "src/CMakeFiles/multiclust.dir/stats/entropy.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/stats/entropy.cc.o.d"
  "/root/repo/src/stats/grid.cc" "src/CMakeFiles/multiclust.dir/stats/grid.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/stats/grid.cc.o.d"
  "/root/repo/src/stats/hsic.cc" "src/CMakeFiles/multiclust.dir/stats/hsic.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/stats/hsic.cc.o.d"
  "/root/repo/src/stats/kde.cc" "src/CMakeFiles/multiclust.dir/stats/kde.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/stats/kde.cc.o.d"
  "/root/repo/src/stats/tails.cc" "src/CMakeFiles/multiclust.dir/stats/tails.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/stats/tails.cc.o.d"
  "/root/repo/src/subspace/asclu.cc" "src/CMakeFiles/multiclust.dir/subspace/asclu.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/subspace/asclu.cc.o.d"
  "/root/repo/src/subspace/clique.cc" "src/CMakeFiles/multiclust.dir/subspace/clique.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/subspace/clique.cc.o.d"
  "/root/repo/src/subspace/doc.cc" "src/CMakeFiles/multiclust.dir/subspace/doc.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/subspace/doc.cc.o.d"
  "/root/repo/src/subspace/enclus.cc" "src/CMakeFiles/multiclust.dir/subspace/enclus.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/subspace/enclus.cc.o.d"
  "/root/repo/src/subspace/msc.cc" "src/CMakeFiles/multiclust.dir/subspace/msc.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/subspace/msc.cc.o.d"
  "/root/repo/src/subspace/orclus.cc" "src/CMakeFiles/multiclust.dir/subspace/orclus.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/subspace/orclus.cc.o.d"
  "/root/repo/src/subspace/osclu.cc" "src/CMakeFiles/multiclust.dir/subspace/osclu.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/subspace/osclu.cc.o.d"
  "/root/repo/src/subspace/p3c.cc" "src/CMakeFiles/multiclust.dir/subspace/p3c.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/subspace/p3c.cc.o.d"
  "/root/repo/src/subspace/predecon.cc" "src/CMakeFiles/multiclust.dir/subspace/predecon.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/subspace/predecon.cc.o.d"
  "/root/repo/src/subspace/proclus.cc" "src/CMakeFiles/multiclust.dir/subspace/proclus.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/subspace/proclus.cc.o.d"
  "/root/repo/src/subspace/rescu.cc" "src/CMakeFiles/multiclust.dir/subspace/rescu.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/subspace/rescu.cc.o.d"
  "/root/repo/src/subspace/ris.cc" "src/CMakeFiles/multiclust.dir/subspace/ris.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/subspace/ris.cc.o.d"
  "/root/repo/src/subspace/schism.cc" "src/CMakeFiles/multiclust.dir/subspace/schism.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/subspace/schism.cc.o.d"
  "/root/repo/src/subspace/statpc.cc" "src/CMakeFiles/multiclust.dir/subspace/statpc.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/subspace/statpc.cc.o.d"
  "/root/repo/src/subspace/subclu.cc" "src/CMakeFiles/multiclust.dir/subspace/subclu.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/subspace/subclu.cc.o.d"
  "/root/repo/src/subspace/subspace_cluster.cc" "src/CMakeFiles/multiclust.dir/subspace/subspace_cluster.cc.o" "gcc" "src/CMakeFiles/multiclust.dir/subspace/subspace_cluster.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
