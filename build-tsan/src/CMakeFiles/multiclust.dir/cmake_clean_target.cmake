file(REMOVE_RECURSE
  "libmulticlust.a"
)
