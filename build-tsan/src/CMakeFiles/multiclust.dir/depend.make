# Empty dependencies file for multiclust.
# This may be replaced when dependencies are built.
