file(REMOVE_RECURSE
  "CMakeFiles/bench_toy_alternatives.dir/bench_toy_alternatives.cc.o"
  "CMakeFiles/bench_toy_alternatives.dir/bench_toy_alternatives.cc.o.d"
  "bench_toy_alternatives"
  "bench_toy_alternatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_toy_alternatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
