# Empty dependencies file for bench_toy_alternatives.
# This may be replaced when dependencies are built.
