file(REMOVE_RECURSE
  "CMakeFiles/bench_alt_transform.dir/bench_alt_transform.cc.o"
  "CMakeFiles/bench_alt_transform.dir/bench_alt_transform.cc.o.d"
  "bench_alt_transform"
  "bench_alt_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alt_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
