# Empty dependencies file for bench_alt_transform.
# This may be replaced when dependencies are built.
