# Empty dependencies file for bench_meta_clustering.
# This may be replaced when dependencies are built.
