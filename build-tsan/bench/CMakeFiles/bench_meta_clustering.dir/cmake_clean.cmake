file(REMOVE_RECURSE
  "CMakeFiles/bench_meta_clustering.dir/bench_meta_clustering.cc.o"
  "CMakeFiles/bench_meta_clustering.dir/bench_meta_clustering.cc.o.d"
  "bench_meta_clustering"
  "bench_meta_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_meta_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
