# Empty dependencies file for bench_msc.
# This may be replaced when dependencies are built.
