file(REMOVE_RECURSE
  "CMakeFiles/bench_msc.dir/bench_msc.cc.o"
  "CMakeFiles/bench_msc.dir/bench_msc.cc.o.d"
  "bench_msc"
  "bench_msc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_msc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
