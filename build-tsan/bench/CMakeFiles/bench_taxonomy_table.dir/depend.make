# Empty dependencies file for bench_taxonomy_table.
# This may be replaced when dependencies are built.
