file(REMOVE_RECURSE
  "CMakeFiles/bench_taxonomy_table.dir/bench_taxonomy_table.cc.o"
  "CMakeFiles/bench_taxonomy_table.dir/bench_taxonomy_table.cc.o.d"
  "bench_taxonomy_table"
  "bench_taxonomy_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_taxonomy_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
