file(REMOVE_RECURSE
  "CMakeFiles/bench_mv_dbscan.dir/bench_mv_dbscan.cc.o"
  "CMakeFiles/bench_mv_dbscan.dir/bench_mv_dbscan.cc.o.d"
  "bench_mv_dbscan"
  "bench_mv_dbscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mv_dbscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
