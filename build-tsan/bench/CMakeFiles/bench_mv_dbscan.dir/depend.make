# Empty dependencies file for bench_mv_dbscan.
# This may be replaced when dependencies are built.
