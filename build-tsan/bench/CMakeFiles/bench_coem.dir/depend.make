# Empty dependencies file for bench_coem.
# This may be replaced when dependencies are built.
