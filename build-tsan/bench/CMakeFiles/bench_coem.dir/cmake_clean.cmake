file(REMOVE_RECURSE
  "CMakeFiles/bench_coem.dir/bench_coem.cc.o"
  "CMakeFiles/bench_coem.dir/bench_coem.cc.o.d"
  "bench_coem"
  "bench_coem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
