file(REMOVE_RECURSE
  "CMakeFiles/bench_cib.dir/bench_cib.cc.o"
  "CMakeFiles/bench_cib.dir/bench_cib.cc.o.d"
  "bench_cib"
  "bench_cib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
