# Empty dependencies file for bench_cib.
# This may be replaced when dependencies are built.
