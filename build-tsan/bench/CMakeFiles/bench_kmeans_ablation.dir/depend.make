# Empty dependencies file for bench_kmeans_ablation.
# This may be replaced when dependencies are built.
