file(REMOVE_RECURSE
  "CMakeFiles/bench_kmeans_ablation.dir/bench_kmeans_ablation.cc.o"
  "CMakeFiles/bench_kmeans_ablation.dir/bench_kmeans_ablation.cc.o.d"
  "bench_kmeans_ablation"
  "bench_kmeans_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kmeans_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
