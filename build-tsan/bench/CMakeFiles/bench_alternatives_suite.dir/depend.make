# Empty dependencies file for bench_alternatives_suite.
# This may be replaced when dependencies are built.
