file(REMOVE_RECURSE
  "CMakeFiles/bench_alternatives_suite.dir/bench_alternatives_suite.cc.o"
  "CMakeFiles/bench_alternatives_suite.dir/bench_alternatives_suite.cc.o.d"
  "bench_alternatives_suite"
  "bench_alternatives_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alternatives_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
