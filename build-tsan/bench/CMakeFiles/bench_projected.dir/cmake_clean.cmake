file(REMOVE_RECURSE
  "CMakeFiles/bench_projected.dir/bench_projected.cc.o"
  "CMakeFiles/bench_projected.dir/bench_projected.cc.o.d"
  "bench_projected"
  "bench_projected.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_projected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
