# Empty dependencies file for bench_projected.
# This may be replaced when dependencies are built.
