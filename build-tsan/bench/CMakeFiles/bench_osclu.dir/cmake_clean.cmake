file(REMOVE_RECURSE
  "CMakeFiles/bench_osclu.dir/bench_osclu.cc.o"
  "CMakeFiles/bench_osclu.dir/bench_osclu.cc.o.d"
  "bench_osclu"
  "bench_osclu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_osclu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
