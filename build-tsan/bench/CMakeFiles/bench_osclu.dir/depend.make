# Empty dependencies file for bench_osclu.
# This may be replaced when dependencies are built.
