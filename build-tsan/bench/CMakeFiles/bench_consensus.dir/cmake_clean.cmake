file(REMOVE_RECURSE
  "CMakeFiles/bench_consensus.dir/bench_consensus.cc.o"
  "CMakeFiles/bench_consensus.dir/bench_consensus.cc.o.d"
  "bench_consensus"
  "bench_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
