# Empty dependencies file for bench_consensus.
# This may be replaced when dependencies are built.
