# Empty dependencies file for bench_dim_curse.
# This may be replaced when dependencies are built.
