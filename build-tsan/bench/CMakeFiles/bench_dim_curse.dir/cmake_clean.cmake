file(REMOVE_RECURSE
  "CMakeFiles/bench_dim_curse.dir/bench_dim_curse.cc.o"
  "CMakeFiles/bench_dim_curse.dir/bench_dim_curse.cc.o.d"
  "bench_dim_curse"
  "bench_dim_curse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dim_curse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
