file(REMOVE_RECURSE
  "CMakeFiles/bench_ortho_views.dir/bench_ortho_views.cc.o"
  "CMakeFiles/bench_ortho_views.dir/bench_ortho_views.cc.o.d"
  "bench_ortho_views"
  "bench_ortho_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ortho_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
