# Empty dependencies file for bench_ortho_views.
# This may be replaced when dependencies are built.
