# Empty dependencies file for bench_disparate.
# This may be replaced when dependencies are built.
