file(REMOVE_RECURSE
  "CMakeFiles/bench_disparate.dir/bench_disparate.cc.o"
  "CMakeFiles/bench_disparate.dir/bench_disparate.cc.o.d"
  "bench_disparate"
  "bench_disparate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disparate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
