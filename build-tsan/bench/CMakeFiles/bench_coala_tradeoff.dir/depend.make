# Empty dependencies file for bench_coala_tradeoff.
# This may be replaced when dependencies are built.
