file(REMOVE_RECURSE
  "CMakeFiles/bench_coala_tradeoff.dir/bench_coala_tradeoff.cc.o"
  "CMakeFiles/bench_coala_tradeoff.dir/bench_coala_tradeoff.cc.o.d"
  "bench_coala_tradeoff"
  "bench_coala_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coala_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
