# Empty dependencies file for bench_spectral_ablation.
# This may be replaced when dependencies are built.
