file(REMOVE_RECURSE
  "CMakeFiles/bench_spectral_ablation.dir/bench_spectral_ablation.cc.o"
  "CMakeFiles/bench_spectral_ablation.dir/bench_spectral_ablation.cc.o.d"
  "bench_spectral_ablation"
  "bench_spectral_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spectral_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
