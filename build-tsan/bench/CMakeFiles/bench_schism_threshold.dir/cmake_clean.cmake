file(REMOVE_RECURSE
  "CMakeFiles/bench_schism_threshold.dir/bench_schism_threshold.cc.o"
  "CMakeFiles/bench_schism_threshold.dir/bench_schism_threshold.cc.o.d"
  "bench_schism_threshold"
  "bench_schism_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schism_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
