# Empty dependencies file for bench_schism_threshold.
# This may be replaced when dependencies are built.
