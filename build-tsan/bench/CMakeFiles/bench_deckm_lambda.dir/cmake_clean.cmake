file(REMOVE_RECURSE
  "CMakeFiles/bench_deckm_lambda.dir/bench_deckm_lambda.cc.o"
  "CMakeFiles/bench_deckm_lambda.dir/bench_deckm_lambda.cc.o.d"
  "bench_deckm_lambda"
  "bench_deckm_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deckm_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
