# Empty dependencies file for bench_deckm_lambda.
# This may be replaced when dependencies are built.
