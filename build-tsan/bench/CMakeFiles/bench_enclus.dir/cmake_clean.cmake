file(REMOVE_RECURSE
  "CMakeFiles/bench_enclus.dir/bench_enclus.cc.o"
  "CMakeFiles/bench_enclus.dir/bench_enclus.cc.o.d"
  "bench_enclus"
  "bench_enclus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_enclus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
