# Empty dependencies file for bench_enclus.
# This may be replaced when dependencies are built.
