// E20 (cross-paradigm synthesis; tutorial slides 115-121): every
// alternative-clustering method in the library solves the same task —
// "given the dominant clustering, find the planted alternative" — so their
// behaviour can be compared side by side across paradigms.
#include <cstdio>

#include "altspace/coala.h"
#include "altspace/conditional_ensemble.h"
#include "altspace/min_centropy.h"
#include "cluster/kmeans.h"
#include "data/generators.h"
#include "harness.h"
#include "metrics/partition_similarity.h"
#include "orthogonal/alt_transform.h"
#include "orthogonal/residual_transform.h"

using namespace multiclust;

int main(int argc, char** argv) {
  bench::Harness h("bench_alternatives_suite",
                   "E20: one task, every alternative-clustering paradigm");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  std::printf("E20: one task, every alternative-clustering paradigm\n");
  std::printf("task: two planted views (equal strength); the first is"
              " given, find the second\n\n");
  std::printf("%-24s %-12s %12s %12s\n", "method", "paradigm", "NMI(given)",
              "NMI(alt)");

  double sums[5][2] = {};
  const int kRuns = h.quick() ? 2 : 4;
  for (uint64_t seed = 1; seed <= static_cast<uint64_t>(kRuns); ++seed) {
    std::vector<ViewSpec> views(2);
    views[0] = {2, 2, 12.0, 0.8, "given"};
    views[1] = {2, 2, 12.0, 0.8, "alt"};
    auto ds = MakeMultiView(h.quick() ? 140 : 200, views, 0, seed);
    const auto given = ds->GroundTruth("given").value();
    const auto alt = ds->GroundTruth("alt").value();

    auto score = [&](int row, const std::vector<int>& labels) {
      sums[row][0] +=
          NormalizedMutualInformation(labels, given).value() / kRuns;
      sums[row][1] +=
          NormalizedMutualInformation(labels, alt).value() / kRuns;
    };

    CoalaOptions co;
    co.k = 2;
    co.w = 0.4;
    auto coala = RunCoala(ds->data(), given, co);
    if (coala.ok()) score(0, coala->labels);

    MinCEntropyOptions mce;
    mce.k = 2;
    mce.lambda = 2.0;
    mce.seed = seed;
    auto mc = RunMinCEntropy(ds->data(), {given}, mce);
    if (mc.ok()) score(1, mc->labels);

    ConditionalEnsembleOptions ce;
    ce.k = 2;
    ce.seed = seed;
    auto cond = RunConditionalEnsemble(ds->data(), given, ce);
    if (cond.ok()) score(2, cond->clustering.labels);

    KMeansOptions km;
    km.k = 2;
    km.restarts = 8;
    km.seed = seed;
    KMeansClusterer clusterer(km);
    auto dq = RunAltTransform(ds->data(), given, &clusterer);
    if (dq.ok()) score(3, dq->clustering.labels);
    auto qd = RunResidualTransform(ds->data(), given, &clusterer);
    if (qd.ok()) score(4, qd->clustering.labels);
  }

  const char* names[5] = {"COALA", "minCEntropy", "ConditionalEnsemble",
                          "AltTransform (DQ08)", "ResidualTransform (QD09)"};
  const char* paradigms[5] = {"original", "original", "original",
                              "transformed", "transformed"};
  bench::Table* table = h.AddTable(
      "methods", {"method", "paradigm", "nmi_given", "nmi_alt"},
      bench::ValueOptions::Tolerance(1e-6));
  bool all_solve = true;
  for (int row = 0; row < 5; ++row) {
    std::printf("%-24s %-12s %12.3f %12.3f\n", names[row], paradigms[row],
                sums[row][0], sums[row][1]);
    table->Row();
    table->TextCell(names[row]);
    table->TextCell(paradigms[row]);
    table->Cell(sums[row][0]);
    table->Cell(sums[row][1]);
    all_solve = all_solve && sums[row][0] < 0.1 && sums[row][1] > 0.8;
  }
  h.Check("every_paradigm_solves_the_task", all_solve,
          "each method must suppress the given view and recover the "
          "alternative");
  std::printf("\nexpected shape: every method suppresses the given view"
              " (NMI(given) ~ 0) and\nrecovers the alternative; the"
              " transformation methods are the most reliable on\nthis"
              " subspace-separable task, matching the tutorial's paradigm"
              " discussion.\n");
  return h.Finish();
}
