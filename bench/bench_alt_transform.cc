// E4/E5 (tutorial slides 48-55): alternative clustering via space
// transformations. Section 1 reproduces Davidson & Qi 2008 (learn metric D,
// invert the stretch: M = H S^-1 A); section 2 reproduces Qi & Davidson
// 2009 (closed form M = Sigma~^{-1/2}). Both should suppress the given
// clustering and reveal the planted alternative.
#include <cstdio>

#include "cluster/kmeans.h"
#include "data/generators.h"
#include "harness.h"
#include "metrics/partition_similarity.h"
#include "orthogonal/alt_transform.h"
#include "orthogonal/residual_transform.h"

using namespace multiclust;

int main(int argc, char** argv) {
  bench::Harness h("bench_alt_transform",
                   "E4/E5: transformation-based alternative clustering");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  std::printf("E4/E5: transformation-based alternative clustering"
              " (slides 48-55)\n\n");
  std::printf("%6s %6s | %12s %12s | %12s %12s | %12s %12s\n", "seed", "",
              "base:given", "base:alt", "DQ08:given", "DQ08:alt",
              "QD09:given", "QD09:alt");

  bench::Table* runs = h.AddTable(
      "per_seed_nmi",
      {"seed", "base_given", "base_alt", "dq08_given", "dq08_alt",
       "qd09_given", "qd09_alt"},
      bench::ValueOptions::Tolerance(1e-6));
  double sum_dq = 0, sum_qd = 0, sum_base = 0;
  bool suppressed = true;
  const int kRuns = h.quick() ? 2 : 5;
  for (uint64_t seed = 1; seed <= static_cast<uint64_t>(kRuns); ++seed) {
    std::vector<ViewSpec> views(2);
    views[0] = {2, 2, 12.0, 0.8, "given"};
    views[1] = {2, 2, 12.0, 0.8, "alt"};
    auto ds = MakeMultiView(h.quick() ? 120 : 200, views, 0, seed);
    const auto given = ds->GroundTruth("given").value();
    const auto alt_truth = ds->GroundTruth("alt").value();

    KMeansOptions km;
    km.k = 2;
    km.restarts = 8;
    km.seed = seed;
    KMeansClusterer clusterer(km);

    // Baseline: re-running the clusterer in the original space tends to
    // rediscover the given structure.
    auto base = RunKMeans(ds->data(), km);
    const double base_given =
        NormalizedMutualInformation(base->labels, given).value();
    const double base_alt =
        NormalizedMutualInformation(base->labels, alt_truth).value();

    auto dq = RunAltTransform(ds->data(), given, &clusterer);
    const double dq_given =
        NormalizedMutualInformation(dq->clustering.labels, given).value();
    const double dq_alt =
        NormalizedMutualInformation(dq->clustering.labels, alt_truth)
            .value();

    auto qd = RunResidualTransform(ds->data(), given, &clusterer);
    const double qd_given =
        NormalizedMutualInformation(qd->clustering.labels, given).value();
    const double qd_alt =
        NormalizedMutualInformation(qd->clustering.labels, alt_truth)
            .value();

    std::printf("%6llu %6s | %12.3f %12.3f | %12.3f %12.3f | %12.3f %12.3f\n",
                static_cast<unsigned long long>(seed), "", base_given,
                base_alt, dq_given, dq_alt, qd_given, qd_alt);
    runs->Row();
    runs->Cell(static_cast<double>(seed));
    runs->Cell(base_given);
    runs->Cell(base_alt);
    runs->Cell(dq_given);
    runs->Cell(dq_alt);
    runs->Cell(qd_given);
    runs->Cell(qd_alt);
    suppressed = suppressed && dq_given < 0.1 && qd_given < 0.1;
    sum_base += base_alt;
    sum_dq += dq_alt;
    sum_qd += qd_alt;
  }
  const double mean_base = sum_base / kRuns;
  const double mean_dq = sum_dq / kRuns;
  const double mean_qd = sum_qd / kRuns;
  std::printf("\nmean NMI(alternative truth): baseline=%.3f"
              "  Davidson&Qi08=%.3f  Qi&Davidson09=%.3f\n",
              mean_base, mean_dq, mean_qd);
  h.Scalar("mean_nmi_alt_baseline", mean_base,
           bench::ValueOptions::Tolerance(1e-6));
  h.Scalar("mean_nmi_alt_dq08", mean_dq,
           bench::ValueOptions::Tolerance(1e-6));
  h.Scalar("mean_nmi_alt_qd09", mean_qd,
           bench::ValueOptions::Tolerance(1e-6));
  h.Check("transforms_find_alternative", mean_dq > 0.8 && mean_qd > 0.8,
          "both transformation methods should recover the alternative truth");
  h.Check("transforms_suppress_given", suppressed,
          "NMI(given) should stay near zero for every transformed run");
  h.WarnCheck("transforms_beat_baseline",
              mean_dq >= mean_base - 1e-9 && mean_qd >= mean_base - 1e-9,
              "the baseline can win the restart lottery on small samples");
  std::printf("expected shape: both transformation methods beat the"
              " baseline on the\nalternative truth while scoring near zero"
              " on the given clustering.\n");
  return h.Finish();
}
