// E4/E5 (tutorial slides 48-55): alternative clustering via space
// transformations. Section 1 reproduces Davidson & Qi 2008 (learn metric D,
// invert the stretch: M = H S^-1 A); section 2 reproduces Qi & Davidson
// 2009 (closed form M = Sigma~^{-1/2}). Both should suppress the given
// clustering and reveal the planted alternative.
#include <cstdio>

#include "cluster/kmeans.h"
#include "data/generators.h"
#include "metrics/partition_similarity.h"
#include "orthogonal/alt_transform.h"
#include "orthogonal/residual_transform.h"

using namespace multiclust;

int main() {
  std::printf("E4/E5: transformation-based alternative clustering"
              " (slides 48-55)\n\n");
  std::printf("%6s %6s | %12s %12s | %12s %12s | %12s %12s\n", "seed", "",
              "base:given", "base:alt", "DQ08:given", "DQ08:alt",
              "QD09:given", "QD09:alt");

  double sum_dq = 0, sum_qd = 0, sum_base = 0;
  const int kRuns = 5;
  for (uint64_t seed = 1; seed <= kRuns; ++seed) {
    std::vector<ViewSpec> views(2);
    views[0] = {2, 2, 12.0, 0.8, "given"};
    views[1] = {2, 2, 12.0, 0.8, "alt"};
    auto ds = MakeMultiView(200, views, 0, seed);
    const auto given = ds->GroundTruth("given").value();
    const auto alt_truth = ds->GroundTruth("alt").value();

    KMeansOptions km;
    km.k = 2;
    km.restarts = 8;
    km.seed = seed;
    KMeansClusterer clusterer(km);

    // Baseline: re-running the clusterer in the original space tends to
    // rediscover the given structure.
    auto base = RunKMeans(ds->data(), km);
    const double base_given =
        NormalizedMutualInformation(base->labels, given).value();
    const double base_alt =
        NormalizedMutualInformation(base->labels, alt_truth).value();

    auto dq = RunAltTransform(ds->data(), given, &clusterer);
    const double dq_given =
        NormalizedMutualInformation(dq->clustering.labels, given).value();
    const double dq_alt =
        NormalizedMutualInformation(dq->clustering.labels, alt_truth)
            .value();

    auto qd = RunResidualTransform(ds->data(), given, &clusterer);
    const double qd_given =
        NormalizedMutualInformation(qd->clustering.labels, given).value();
    const double qd_alt =
        NormalizedMutualInformation(qd->clustering.labels, alt_truth)
            .value();

    std::printf("%6llu %6s | %12.3f %12.3f | %12.3f %12.3f | %12.3f %12.3f\n",
                static_cast<unsigned long long>(seed), "", base_given,
                base_alt, dq_given, dq_alt, qd_given, qd_alt);
    sum_base += base_alt;
    sum_dq += dq_alt;
    sum_qd += qd_alt;
  }
  std::printf("\nmean NMI(alternative truth): baseline=%.3f"
              "  Davidson&Qi08=%.3f  Qi&Davidson09=%.3f\n",
              sum_base / kRuns, sum_dq / kRuns, sum_qd / kRuns);
  std::printf("expected shape: both transformation methods beat the"
              " baseline on the\nalternative truth while scoring near zero"
              " on the given clustering.\n");
  return 0;
}
