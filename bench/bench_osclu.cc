// E9 (tutorial slides 80-87): OSCLU's orthogonal-concept selection under
// its beta (subspace coverage) and alpha (object novelty) parameters, and
// ASCLU's alternative mining given one known view.
#include <cstdio>

#include "data/generators.h"
#include "harness.h"
#include "subspace/asclu.h"
#include "subspace/clique.h"
#include "subspace/osclu.h"

using namespace multiclust;

int main(int argc, char** argv) {
  bench::Harness h("bench_osclu",
                   "E9: OSCLU / ASCLU orthogonal concepts");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  std::vector<ViewSpec> views(2);
  views[0] = {2, 2, 10.0, 0.6, ""};
  views[1] = {2, 3, 10.0, 0.6, ""};
  auto ds = MakeMultiView(h.quick() ? 200 : 300, views, 1, 41);
  const auto v0 = ds->GroundTruth("view0").value();
  const auto v1 = ds->GroundTruth("view1").value();

  CliqueOptions clique;
  clique.xi = 8;
  clique.tau = 0.04;
  clique.max_dims = 2;
  auto all = RunClique(ds->data(), clique);
  if (!all.ok()) return 1;
  std::printf("E9: OSCLU / ASCLU orthogonal concepts (slides 80-87)\n");
  std::printf("candidates from CLIQUE: %zu clusters in %zu subspaces\n\n",
              all->clusters.size(), all->NumSubspaces());
  h.Scalar("clique_candidates", static_cast<double>(all->clusters.size()));
  h.Scalar("clique_subspaces", static_cast<double>(all->NumSubspaces()));

  std::printf("OSCLU parameter sweep:\n%8s %8s | %9s %11s %10s %10s\n",
              "beta", "alpha", "#selected", "#subspaces", "F1(view0)",
              "F1(view1)");
  bench::Table* sweep = h.AddTable(
      "osclu_sweep",
      {"beta", "alpha", "selected", "subspaces", "f1_view0", "f1_view1"},
      bench::ValueOptions::Tolerance(1e-6));
  bool selection_small = true, both_views = true;
  const std::vector<double> betas =
      h.quick() ? std::vector<double>{0.5} : std::vector<double>{0.1, 0.5, 1.0};
  const std::vector<double> alphas = h.quick()
                                         ? std::vector<double>{0.2, 0.95}
                                         : std::vector<double>{0.2, 0.6, 0.95};
  for (double beta : betas) {
    for (double alpha : alphas) {
      OscluOptions opts;
      opts.beta = beta;
      opts.alpha = alpha;
      auto sel = RunOsclu(*all, opts);
      if (!sel.ok()) continue;
      const double f1_v0 = SubspacePairF1(*sel, v0).value();
      const double f1_v1 = SubspacePairF1(*sel, v1).value();
      std::printf("%8.1f %8.2f | %9zu %11zu %10.3f %10.3f\n", beta, alpha,
                  sel->clusters.size(), sel->NumSubspaces(), f1_v0, f1_v1);
      sweep->Row();
      sweep->Cell(beta);
      sweep->Cell(alpha);
      sweep->Cell(static_cast<double>(sel->clusters.size()));
      sweep->Cell(static_cast<double>(sel->NumSubspaces()));
      sweep->Cell(f1_v0);
      sweep->Cell(f1_v1);
      selection_small =
          selection_small && sel->clusters.size() < all->clusters.size();
      both_views = both_views && f1_v0 > 0.2 && f1_v1 > 0.2;
    }
  }
  h.Check("selection_is_proper_subset", selection_small,
          "every (beta, alpha) selection must shrink the candidate set");
  h.Check("both_views_represented", both_views,
          "selected concepts must overlap both planted views");

  // ASCLU: given the clusters of view 0's subspace, mine alternatives.
  SubspaceClustering known;
  for (const auto& c : all->clusters) {
    if (c.dims == std::vector<size_t>{0, 1}) known.clusters.push_back(c);
  }
  AscluOptions asclu;
  asclu.osclu.beta = 0.5;
  asclu.osclu.alpha = 0.4;
  asclu.alpha_known = 0.5;
  auto alt = RunAsclu(*all, known, asclu);
  if (!alt.ok()) return 1;

  size_t mass_v0 = 0, mass_v1 = 0;
  for (const auto& c : alt->clusters) {
    bool in_v0 = false, in_v1 = false;
    for (size_t d : c.dims) {
      in_v0 |= (d <= 1);
      in_v1 |= (d == 2 || d == 3);
    }
    if (in_v0) mass_v0 += c.support();
    if (in_v1) mass_v1 += c.support();
  }
  std::printf("\nASCLU given the %zu known view-0 clusters: %zu alternative"
              " clusters\n  support mass touching view-0 dims: %zu;"
              " view-1 dims: %zu\n",
              known.clusters.size(), alt->clusters.size(), mass_v0, mass_v1);
  h.Scalar("asclu_alternatives", static_cast<double>(alt->clusters.size()));
  h.Scalar("asclu_mass_view0", static_cast<double>(mass_v0));
  h.Scalar("asclu_mass_view1", static_cast<double>(mass_v1));
  h.Check("asclu_avoids_known_view", mass_v1 > mass_v0,
          "alternatives must concentrate support on the not-yet-known view");
  std::printf("\nexpected shape: the selection is a small orthogonal subset"
              " of the candidates\nwith both planted views represented."
              " On *cleanly* planted data the selection is\ninsensitive to"
              " alpha/beta because object freshness is bimodal (clusters are"
              "\neither disjoint or near-duplicates) — the parameters bite"
              " on overlapping\nstructures, which the osclu property tests"
              " cover. ASCLU's alternatives must\nconcentrate their support"
              " on the not-yet-known view.\n");
  return h.Finish();
}
