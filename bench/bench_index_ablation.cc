// A3 (ablation): the uniform grid index behind DBSCAN's range queries.
// Sweeps n and compares brute-force O(n^2) neighbourhood computation with
// the indexed version; results are bit-identical, only the cost differs.
#include <chrono>
#include <cstdio>

#include "cluster/dbscan.h"
#include "cluster/grid_index.h"
#include "data/generators.h"
#include "harness.h"

using namespace multiclust;

namespace {

double Ms(std::chrono::steady_clock::time_point a,
          std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_index_ablation",
                   "A3: grid-index vs brute-force range queries");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  std::printf("A3: grid-index vs brute-force range queries (2-D blobs,"
              " eps = 0.8)\n\n");
  std::printf("%8s %14s %14s %10s %10s\n", "n", "brute(ms)", "indexed(ms)",
              "speedup", "cells");
  bench::Series* brute_series =
      h.AddSeries("brute_ms", "n", "ms", bench::ValueOptions::Timing());
  bench::Series* indexed_series =
      h.AddSeries("indexed_ms", "n", "ms", bench::ValueOptions::Timing());
  bench::Series* cells_series = h.AddSeries("grid_cells", "n", "cells");
  const std::vector<size_t> sizes =
      h.quick() ? std::vector<size_t>{250, 500, 1000}
                : std::vector<size_t>{250, 500, 1000, 2000, 4000};
  bool neighborhoods_identical = true;
  double largest_speedup = 0.0;
  for (size_t n : sizes) {
    auto ds = MakeBlobs({{{0, 0}, 1.5, n / 2}, {{12, 12}, 1.5, n - n / 2}},
                        n);
    if (!ds.ok()) continue;
    const double eps = 0.8;

    const auto t0 = std::chrono::steady_clock::now();
    const auto brute = EpsNeighborhoods(ds->data(), eps, {});
    const auto t1 = std::chrono::steady_clock::now();
    auto indexed = EpsNeighborhoodsIndexed(ds->data(), eps);
    const auto t2 = std::chrono::steady_clock::now();
    if (!indexed.ok()) continue;

    // Verify equivalence on a few objects.
    size_t checked = 0;
    for (size_t i = 0; i < brute.size(); i += brute.size() / 7 + 1) {
      if (brute[i].size() != (*indexed)[i].size()) {
        std::printf("MISMATCH at object %zu!\n", i);
        neighborhoods_identical = false;
      }
      ++checked;
    }
    (void)checked;

    auto index = GridIndex::Build(ds->data(), eps);
    const double speedup = Ms(t0, t1) / std::max(Ms(t1, t2), 1e-3);
    std::printf("%8zu %14.1f %14.1f %9.1fx %10zu\n", n, Ms(t0, t1),
                Ms(t1, t2), speedup,
                index.ok() ? index->num_cells() : 0);
    brute_series->Add(static_cast<double>(n), Ms(t0, t1));
    indexed_series->Add(static_cast<double>(n), Ms(t1, t2));
    cells_series->Add(static_cast<double>(n),
                      index.ok() ? static_cast<double>(index->num_cells())
                                 : 0.0);
    largest_speedup = std::max(largest_speedup, speedup);
  }
  bench::ValueOptions speedup_opts;
  speedup_opts.unit = "x";
  speedup_opts.timing = true;  // derived from wall-clock: warn-only in diffs
  h.Scalar("largest_speedup", largest_speedup, speedup_opts);
  h.Check("neighborhoods_identical", neighborhoods_identical,
          "indexed and brute-force neighbourhoods must agree exactly");
  h.WarnCheck("index_speeds_up_largest_n", largest_speedup > 1.0,
              "the grid index should beat brute force at the largest n "
              "(host-dependent)");
  std::printf("\nexpected shape: the brute-force cost grows quadratically,"
              " the indexed cost\nnear-linearly; identical neighbourhoods"
              " either way.\n");
  return h.Finish();
}
