// E7 (tutorial slides 69-73): the slide-73 curve — SCHISM's Chernoff-
// Hoeffding support threshold tau(s) decreases with subspace
// dimensionality, unlike CLIQUE's fixed tau — and its effect on dense-unit
// mining on planted high-dimensional data.
#include <cstdio>

#include "data/generators.h"
#include "stats/tails.h"
#include "subspace/clique.h"
#include "subspace/schism.h"

using namespace multiclust;

int main() {
  std::printf("E7: SCHISM adaptive threshold tau(s) (slide 73)\n\n");
  std::printf("threshold fraction per subspace dimensionality s"
              " (n = 1000, xi = 10):\n");
  std::printf("%4s", "s");
  for (size_t s = 1; s <= 10; ++s) std::printf(" %8zu", s);
  std::printf("\n%4s", "tau");
  for (size_t s = 1; s <= 10; ++s) {
    std::printf(" %8.4f", SchismThresholdFraction(s, 10, 1000, 0.05));
  }
  std::printf("\nfixed CLIQUE threshold for comparison:        "
              " 0.1000 at every s\n\n");

  // Effect on mining: planted clusters in 2-D and 3-D subspaces.
  std::vector<ViewSpec> views(2);
  views[0] = {2, 2, 10.0, 0.6, ""};
  views[1] = {3, 3, 10.0, 0.6, ""};
  auto ds = MakeMultiView(400, views, 1, 21);

  auto count_by_dim = [](const SubspaceClustering& sc, size_t max_d) {
    std::vector<size_t> counts(max_d + 1, 0);
    for (const auto& c : sc.clusters) {
      if (c.dims.size() <= max_d) ++counts[c.dims.size()];
    }
    return counts;
  };

  CliqueOptions clique;
  clique.xi = 12;
  clique.tau = 0.12;  // calibrated for 1-D cell densities
  clique.max_dims = 3;
  auto rc = RunClique(ds->data(), clique);
  SchismOptions schism;
  schism.xi = 12;
  schism.tau = 0.01;
  schism.max_dims = 3;
  auto rs = RunSchism(ds->data(), schism);

  const auto cc = count_by_dim(*rc, 3);
  const auto cs = count_by_dim(*rs, 3);
  std::printf("clusters found by subspace dimensionality (planted: 2-D and"
              " 3-D structure):\n");
  std::printf("%18s %8s %8s %8s\n", "", "1-D", "2-D", "3-D");
  std::printf("%18s %8zu %8zu %8zu\n", "CLIQUE (fixed)", cc[1], cc[2],
              cc[3]);
  std::printf("%18s %8zu %8zu %8zu\n", "SCHISM (adaptive)", cs[1], cs[2],
              cs[3]);
  std::printf("\nexpected shape: tau(s) decreases in s; the fixed CLIQUE"
              " threshold misses the\nhigher-dimensional planted clusters"
              " that SCHISM keeps.\n");
  return 0;
}
