// E7 (tutorial slides 69-73): the slide-73 curve — SCHISM's Chernoff-
// Hoeffding support threshold tau(s) decreases with subspace
// dimensionality, unlike CLIQUE's fixed tau — and its effect on dense-unit
// mining on planted high-dimensional data.
#include <cstdio>

#include "data/generators.h"
#include "harness.h"
#include "stats/tails.h"
#include "subspace/clique.h"
#include "subspace/schism.h"

using namespace multiclust;

int main(int argc, char** argv) {
  bench::Harness h("bench_schism_threshold",
                   "E7: SCHISM adaptive threshold tau(s)");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  std::printf("E7: SCHISM adaptive threshold tau(s) (slide 73)\n\n");
  std::printf("threshold fraction per subspace dimensionality s"
              " (n = 1000, xi = 10):\n");
  std::printf("%4s", "s");
  for (size_t s = 1; s <= 10; ++s) std::printf(" %8zu", s);
  std::printf("\n%4s", "tau");
  bench::Series* tau_series = h.AddSeries(
      "tau_of_s", "s", "threshold fraction",
      bench::ValueOptions::Tolerance(1e-9));
  bool tau_decreasing = true;
  double prev_tau = 1.0;
  for (size_t s = 1; s <= 10; ++s) {
    const double tau = SchismThresholdFraction(s, 10, 1000, 0.05);
    std::printf(" %8.4f", tau);
    tau_series->Add(static_cast<double>(s), tau);
    if (tau > prev_tau + 1e-12) tau_decreasing = false;
    prev_tau = tau;
  }
  std::printf("\nfixed CLIQUE threshold for comparison:        "
              " 0.1000 at every s\n\n");
  h.Check("tau_monotone_decreasing", tau_decreasing,
          "tau(s) must decrease towards the Hoeffding slack term");

  // Effect on mining: planted clusters in 2-D and 3-D subspaces.
  std::vector<ViewSpec> views(2);
  views[0] = {2, 2, 10.0, 0.6, ""};
  views[1] = {3, 3, 10.0, 0.6, ""};
  auto ds = MakeMultiView(h.quick() ? 300 : 400, views, 1, 21);

  auto count_by_dim = [](const SubspaceClustering& sc, size_t max_d) {
    std::vector<size_t> counts(max_d + 1, 0);
    for (const auto& c : sc.clusters) {
      if (c.dims.size() <= max_d) ++counts[c.dims.size()];
    }
    return counts;
  };

  CliqueOptions clique;
  clique.xi = 12;
  clique.tau = 0.12;  // calibrated for 1-D cell densities
  clique.max_dims = 3;
  auto rc = RunClique(ds->data(), clique);
  SchismOptions schism;
  schism.xi = 12;
  schism.tau = 0.01;
  schism.max_dims = 3;
  auto rs = RunSchism(ds->data(), schism);

  const auto cc = count_by_dim(*rc, 3);
  const auto cs = count_by_dim(*rs, 3);
  std::printf("clusters found by subspace dimensionality (planted: 2-D and"
              " 3-D structure):\n");
  std::printf("%18s %8s %8s %8s\n", "", "1-D", "2-D", "3-D");
  std::printf("%18s %8zu %8zu %8zu\n", "CLIQUE (fixed)", cc[1], cc[2],
              cc[3]);
  std::printf("%18s %8zu %8zu %8zu\n", "SCHISM (adaptive)", cs[1], cs[2],
              cs[3]);
  bench::Table* by_dim = h.AddTable(
      "clusters_by_dimensionality", {"method", "d1", "d2", "d3"});
  by_dim->Row();
  by_dim->TextCell("clique_fixed");
  by_dim->Cell(static_cast<double>(cc[1]));
  by_dim->Cell(static_cast<double>(cc[2]));
  by_dim->Cell(static_cast<double>(cc[3]));
  by_dim->Row();
  by_dim->TextCell("schism_adaptive");
  by_dim->Cell(static_cast<double>(cs[1]));
  by_dim->Cell(static_cast<double>(cs[2]));
  by_dim->Cell(static_cast<double>(cs[3]));
  h.Check("adaptive_keeps_multidim_clusters",
          cs[2] > cc[2],
          "SCHISM should keep multidimensional clusters fixed-tau CLIQUE "
          "misses");
  std::printf("\nexpected shape: tau(s) decreases in s; the fixed CLIQUE"
              " threshold misses the\nhigher-dimensional planted clusters"
              " that SCHISM keeps.\n");
  return h.Finish();
}
