// E18 (tutorial slide 66): projected-clustering substrate comparison.
// PROCLUS (axis-parallel, iterative medoids), DOC (Monte-Carlo boxes) and
// ORCLUS (arbitrarily oriented subspaces) on (a) axis-parallel planted
// clusters and (b) diagonally oriented clusters that axis-parallel methods
// cannot represent.
#include <cstdio>

#include "common/rng.h"
#include "data/generators.h"
#include "metrics/partition_similarity.h"
#include "subspace/doc.h"
#include "subspace/orclus.h"
#include "subspace/proclus.h"

using namespace multiclust;

namespace {

struct Workload {
  Matrix data;
  std::vector<int> truth;
};

// Three axis-parallel clusters in dims {0,1,2} with 2 noise dims.
Workload MakeAxisParallel(uint64_t seed) {
  std::vector<ViewSpec> views(1);
  views[0] = {3, 3, 12.0, 0.5, ""};
  auto ds = MakeMultiView(240, views, 2, seed);
  return {ds->data(), ds->GroundTruth("view0").value()};
}

// Two elongated diagonal clusters plus an irrelevant dimension.
Workload MakeOriented(uint64_t seed) {
  Rng rng(seed);
  const size_t per = 90;
  Workload w;
  w.data = Matrix(2 * per, 3);
  w.truth.resize(2 * per);
  for (size_t i = 0; i < 2 * per; ++i) {
    const bool second = i >= per;
    const double t = rng.Gaussian(0, 4.0);
    const double s = rng.Gaussian(0, 0.3);
    w.data.at(i, 0) = t + (second ? 2.5 : -2.5);
    w.data.at(i, 1) = t + s + (second ? -2.5 : 2.5);
    w.data.at(i, 2) = rng.Gaussian(0, 2.0);
    w.truth[i] = second ? 1 : 0;
  }
  return w;
}

void Evaluate(const char* workload, const Workload& w, size_t k,
              size_t dims, size_t orclus_l) {
  ProclusOptions po;
  po.k = k;
  po.avg_dims = dims;
  po.seed = 5;
  auto proclus = RunProclus(w.data, po);

  DocOptions doco;
  doco.k = k;
  doco.w = 2.0;
  doco.seed = 5;
  doco.outer_trials = 40;
  auto doc = RunDoc(w.data, doco);
  // DOC yields subspace clusters; flatten to a labeling for comparison.
  std::vector<int> doc_labels(w.data.rows(), -1);
  if (doc.ok()) {
    int next = 0;
    for (const auto& c : doc->clusters) {
      for (int obj : c.objects) doc_labels[obj] = next;
      ++next;
    }
  }

  OrclusOptions oo;
  oo.k = k;
  oo.l = orclus_l;
  oo.restarts = 8;
  oo.seed = 5;
  auto orclus = RunOrclus(w.data, oo);

  std::printf("%-14s | PROCLUS ARI=%.3f | DOC ARI=%.3f | ORCLUS ARI=%.3f\n",
              workload,
              proclus.ok()
                  ? AdjustedRandIndex(proclus->clustering.labels, w.truth)
                        .value()
                  : -1.0,
              doc.ok() ? AdjustedRandIndex(doc_labels, w.truth).value()
                       : -1.0,
              orclus.ok()
                  ? AdjustedRandIndex(orclus->clustering.labels, w.truth)
                        .value()
                  : -1.0);
}

}  // namespace

int main() {
  std::printf("E18: projected clustering — axis-parallel vs oriented"
              " (slide 66)\n\n");
  // ORCLUS's l is set to the planted intrinsic dimensionality in each
  // case (3 for the axis-parallel blobs, 1 for the diagonal strips) — the
  // parameter the original paper also assumes is user-provided.
  Evaluate("axis-parallel", MakeAxisParallel(31), 3, 3, 3);
  Evaluate("axis-parallel", MakeAxisParallel(32), 3, 3, 3);
  Evaluate("oriented", MakeOriented(33), 2, 2, 1);
  Evaluate("oriented", MakeOriented(34), 2, 2, 1);
  std::printf("\nexpected shape: all three methods handle axis-parallel"
              " structure; on oriented\nclusters only ORCLUS's eigen-derived"
              " subspaces separate the strips — the\ngeneralisation the"
              " tutorial credits to Aggarwal & Yu 2000.\n");
  return 0;
}
