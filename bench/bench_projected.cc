// E18 (tutorial slide 66): projected-clustering substrate comparison.
// PROCLUS (axis-parallel, iterative medoids), DOC (Monte-Carlo boxes) and
// ORCLUS (arbitrarily oriented subspaces) on (a) axis-parallel planted
// clusters and (b) diagonally oriented clusters that axis-parallel methods
// cannot represent.
#include <cstdio>

#include "common/rng.h"
#include "data/generators.h"
#include "harness.h"
#include "metrics/partition_similarity.h"
#include "subspace/doc.h"
#include "subspace/orclus.h"
#include "subspace/proclus.h"

using namespace multiclust;

namespace {

struct Workload {
  Matrix data;
  std::vector<int> truth;
};

// Three axis-parallel clusters in dims {0,1,2} with 2 noise dims.
Workload MakeAxisParallel(uint64_t seed) {
  std::vector<ViewSpec> views(1);
  views[0] = {3, 3, 12.0, 0.5, ""};
  auto ds = MakeMultiView(240, views, 2, seed);
  return {ds->data(), ds->GroundTruth("view0").value()};
}

// Two elongated diagonal clusters plus an irrelevant dimension.
Workload MakeOriented(uint64_t seed) {
  Rng rng(seed);
  const size_t per = 90;
  Workload w;
  w.data = Matrix(2 * per, 3);
  w.truth.resize(2 * per);
  for (size_t i = 0; i < 2 * per; ++i) {
    const bool second = i >= per;
    const double t = rng.Gaussian(0, 4.0);
    const double s = rng.Gaussian(0, 0.3);
    w.data.at(i, 0) = t + (second ? 2.5 : -2.5);
    w.data.at(i, 1) = t + s + (second ? -2.5 : 2.5);
    w.data.at(i, 2) = rng.Gaussian(0, 2.0);
    w.truth[i] = second ? 1 : 0;
  }
  return w;
}

struct AriTriple {
  double proclus = -1.0, doc = -1.0, orclus = -1.0;
};

AriTriple Evaluate(bench::Table* table, const char* workload,
                   const Workload& w, size_t k, size_t dims,
                   size_t orclus_l) {
  ProclusOptions po;
  po.k = k;
  po.avg_dims = dims;
  po.seed = 5;
  auto proclus = RunProclus(w.data, po);

  DocOptions doco;
  doco.k = k;
  doco.w = 2.0;
  doco.seed = 5;
  doco.outer_trials = 40;
  auto doc = RunDoc(w.data, doco);
  // DOC yields subspace clusters; flatten to a labeling for comparison.
  std::vector<int> doc_labels(w.data.rows(), -1);
  if (doc.ok()) {
    int next = 0;
    for (const auto& c : doc->clusters) {
      for (int obj : c.objects) doc_labels[obj] = next;
      ++next;
    }
  }

  OrclusOptions oo;
  oo.k = k;
  oo.l = orclus_l;
  oo.restarts = 8;
  oo.seed = 5;
  auto orclus = RunOrclus(w.data, oo);

  AriTriple t;
  if (proclus.ok()) {
    t.proclus =
        AdjustedRandIndex(proclus->clustering.labels, w.truth).value();
  }
  if (doc.ok()) t.doc = AdjustedRandIndex(doc_labels, w.truth).value();
  if (orclus.ok()) {
    t.orclus =
        AdjustedRandIndex(orclus->clustering.labels, w.truth).value();
  }
  std::printf("%-14s | PROCLUS ARI=%.3f | DOC ARI=%.3f | ORCLUS ARI=%.3f\n",
              workload, t.proclus, t.doc, t.orclus);
  table->Row();
  table->TextCell(workload);
  table->Cell(t.proclus);
  table->Cell(t.doc);
  table->Cell(t.orclus);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_projected",
                   "E18: projected clustering, axis-parallel vs oriented");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  std::printf("E18: projected clustering — axis-parallel vs oriented"
              " (slide 66)\n\n");
  bench::Table* table = h.AddTable(
      "workloads", {"workload", "proclus_ari", "doc_ari", "orclus_ari"},
      bench::ValueOptions::Tolerance(1e-6));
  // ORCLUS's l is set to the planted intrinsic dimensionality in each
  // case (3 for the axis-parallel blobs, 1 for the diagonal strips) — the
  // parameter the original paper also assumes is user-provided.
  const AriTriple a1 =
      Evaluate(table, "axis-parallel", MakeAxisParallel(31), 3, 3, 3);
  if (!h.quick()) {
    Evaluate(table, "axis-parallel", MakeAxisParallel(32), 3, 3, 3);
  }
  const AriTriple o1 = Evaluate(table, "oriented", MakeOriented(33), 2, 2, 1);
  AriTriple o2 = o1;
  if (!h.quick()) o2 = Evaluate(table, "oriented", MakeOriented(34), 2, 2, 1);
  h.Check("all_handle_axis_parallel",
          a1.proclus > 0.4 && a1.doc > 0.4 && a1.orclus > 0.9,
          "every method must find usable structure on axis-parallel data");
  h.Check("only_orclus_handles_oriented",
          o1.orclus > 0.9 && o2.orclus > 0.9 && o1.proclus < 0.6 &&
              o1.doc < 0.6,
          "only eigen-derived subspaces separate the diagonal strips");
  std::printf("\nexpected shape: all three methods handle axis-parallel"
              " structure; on oriented\nclusters only ORCLUS's eigen-derived"
              " subspaces separate the strips — the\ngeneralisation the"
              " tutorial credits to Aggarwal & Yu 2000.\n");
  return h.Finish();
}
