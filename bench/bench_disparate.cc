// E17 (tutorial slide 44): dual clustering through contingency tables
// (Hossain et al. 2010). Disparate mode drives the table towards
// uniformity (independent clusterings); dependent mode towards diagonality
// (aligned clusterings) — the same framework solving opposite goals.
#include <cstdio>

#include "altspace/disparate.h"
#include "data/generators.h"
#include "metrics/multi_solution.h"
#include "metrics/partition_similarity.h"

using namespace multiclust;

int main() {
  auto ds = MakeFourSquares(40, 10.0, 0.8, 17);
  const auto horizontal = ds->GroundTruth("horizontal").value();
  const auto vertical = ds->GroundTruth("vertical").value();

  std::printf("E17: contingency-table dual clustering (slide 44)\n\n");
  std::printf("%12s %8s | %12s %14s | %10s\n", "goal", "lambda",
              "NMI(C1,C2)", "tbl deviation", "recovery");
  for (const auto goal :
       {ContingencyGoal::kDisparate, ContingencyGoal::kDependent}) {
    for (double lambda : {0.0, 0.5, 1.0, 2.0}) {
      DisparateOptions opts;
      opts.k1 = 2;
      opts.k2 = 2;
      opts.goal = goal;
      opts.lambda = lambda;
      opts.restarts = 4;
      opts.seed = 17;
      auto r = RunDisparateClustering(ds->data(), opts);
      if (!r.ok()) continue;
      const double nmi =
          NormalizedMutualInformation(r->solutions.at(0).labels,
                                      r->solutions.at(1).labels)
              .value();
      auto match = MatchSolutionsToTruths({horizontal, vertical},
                                          r->solutions.Labels());
      std::printf("%12s %8.1f | %12.3f %14.3f | %10.3f\n",
                  goal == ContingencyGoal::kDisparate ? "disparate"
                                                      : "dependent",
                  lambda, nmi, r->uniformity_deviation,
                  match->mean_recovery);
    }
  }
  std::printf("\nexpected shape: disparate mode holds NMI(C1,C2) ~ 0 with a"
              " uniform table and\nfull recovery of both planted splits at"
              " every lambda (the four-squares toy has\ntwo equal"
              " compactness optima, so independent starts already diverge;"
              " the\npenalty keeps them apart). Dependent mode flips the"
              " regime once lambda is\nlarge enough: NMI(C1,C2) -> 1 and"
              " the table turns diagonal (deviation\n-> max), halving"
              " recovery because both solutions collapse onto one split.\n");
  return 0;
}
