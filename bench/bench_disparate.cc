// E17 (tutorial slide 44): dual clustering through contingency tables
// (Hossain et al. 2010). Disparate mode drives the table towards
// uniformity (independent clusterings); dependent mode towards diagonality
// (aligned clusterings) — the same framework solving opposite goals.
#include <cstdio>

#include "altspace/disparate.h"
#include "data/generators.h"
#include "harness.h"
#include "metrics/multi_solution.h"
#include "metrics/partition_similarity.h"

using namespace multiclust;

int main(int argc, char** argv) {
  bench::Harness h("bench_disparate",
                   "E17: contingency-table dual clustering");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  auto ds = MakeFourSquares(h.quick() ? 25 : 40, 10.0, 0.8, 17);
  const auto horizontal = ds->GroundTruth("horizontal").value();
  const auto vertical = ds->GroundTruth("vertical").value();

  std::printf("E17: contingency-table dual clustering (slide 44)\n\n");
  std::printf("%12s %8s | %12s %14s | %10s\n", "goal", "lambda",
              "NMI(C1,C2)", "tbl deviation", "recovery");
  bench::Table* table = h.AddTable(
      "sweep", {"goal", "lambda", "nmi_c1_c2", "deviation", "recovery"},
      bench::ValueOptions::Tolerance(1e-6));
  bool disparate_independent = true;
  double dependent_high_lambda_nmi = 0.0;
  for (const auto goal :
       {ContingencyGoal::kDisparate, ContingencyGoal::kDependent}) {
    for (double lambda : {0.0, 0.5, 1.0, 2.0}) {
      DisparateOptions opts;
      opts.k1 = 2;
      opts.k2 = 2;
      opts.goal = goal;
      opts.lambda = lambda;
      opts.restarts = 4;
      opts.seed = 17;
      auto r = RunDisparateClustering(ds->data(), opts);
      if (!r.ok()) continue;
      const double nmi =
          NormalizedMutualInformation(r->solutions.at(0).labels,
                                      r->solutions.at(1).labels)
              .value();
      auto match = MatchSolutionsToTruths({horizontal, vertical},
                                          r->solutions.Labels());
      const bool disparate = goal == ContingencyGoal::kDisparate;
      std::printf("%12s %8.1f | %12.3f %14.3f | %10.3f\n",
                  disparate ? "disparate" : "dependent", lambda, nmi,
                  r->uniformity_deviation, match->mean_recovery);
      table->Row();
      table->TextCell(disparate ? "disparate" : "dependent");
      table->Cell(lambda);
      table->Cell(nmi);
      table->Cell(r->uniformity_deviation);
      table->Cell(match->mean_recovery);
      if (disparate) {
        disparate_independent = disparate_independent && nmi < 0.1 &&
                                match->mean_recovery > 0.9;
      } else if (lambda >= 2.0) {
        dependent_high_lambda_nmi = nmi;
      }
    }
  }
  h.Check("disparate_mode_independent", disparate_independent,
          "disparate mode must hold NMI ~ 0 and full recovery at every "
          "lambda");
  h.Check("dependent_mode_aligns", dependent_high_lambda_nmi > 0.9,
          "dependent mode must align the clusterings once lambda is large");
  std::printf("\nexpected shape: disparate mode holds NMI(C1,C2) ~ 0 with a"
              " uniform table and\nfull recovery of both planted splits at"
              " every lambda (the four-squares toy has\ntwo equal"
              " compactness optima, so independent starts already diverge;"
              " the\npenalty keeps them apart). Dependent mode flips the"
              " regime once lambda is\nlarge enough: NMI(C1,C2) -> 1 and"
              " the table turns diagonal (deviation\n-> max), halving"
              " recovery because both solutions collapse onto one split.\n");
  return h.Finish();
}
