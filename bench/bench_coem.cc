// E11 (tutorial slides 98-104): co-EM multi-view clustering. Claims to
// reproduce: (a) multi-view bootstrapping recovers the shared structure,
// (b) single-view EM re-initialised from co-EM's final parameters reaches a
// log-likelihood at least as high as plain single-view EM (slide 104).
#include <cstdio>

#include "cluster/gmm.h"
#include "common/rng.h"
#include "data/generators.h"
#include "harness.h"
#include "metrics/partition_similarity.h"
#include "multiview/co_em.h"

using namespace multiclust;

namespace {

struct Views {
  Matrix v1;
  Matrix v2;
  std::vector<int> truth;
};

Views MakeViews(uint64_t seed, size_t n, double noise) {
  Rng rng(seed);
  Views v;
  v.v1 = Matrix(n, 2);
  v.v2 = Matrix(n, 2);
  v.truth.resize(n);
  const double c1[3][2] = {{0, 0}, {7, 0}, {0, 7}};
  const double c2[3][2] = {{4, 4}, {-4, 4}, {0, -5}};
  for (size_t i = 0; i < n; ++i) {
    const size_t c = rng.NextIndex(3);
    v.truth[i] = static_cast<int>(c);
    for (size_t j = 0; j < 2; ++j) {
      v.v1.at(i, j) = rng.Gaussian(c1[c][j], noise);
      v.v2.at(i, j) = rng.Gaussian(c2[c][j], noise);
    }
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_coem", "E11: co-EM vs single-view EM");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  std::printf("E11: co-EM vs single-view EM (slides 98-104)\n\n");
  std::printf("%6s %8s | %10s %10s | %12s %14s %16s\n", "seed", "noise",
              "ARI(1view)", "ARI(coEM)", "LL(single)", "LL(coEM-init)",
              "agreement");
  bench::Table* runs = h.AddTable(
      "per_run",
      {"seed", "noise", "ari_single", "ari_coem", "ll_single", "ll_warm",
       "agreement"},
      bench::ValueOptions::Tolerance(1e-6, 1e-6));
  int coem_init_wins = 0;
  bool coem_never_worse = true;
  const int kRuns = h.quick() ? 2 : 6;
  for (int run = 0; run < kRuns; ++run) {
    // In quick mode keep one run per noise level so both regimes appear.
    const double noise = (h.quick() ? run < 1 : run < 3) ? 1.2 : 1.5;
    const Views v = MakeViews(100 + run, h.quick() ? 140 : 200, noise);

    // Plain single-view EM on view 1.
    GmmOptions gmm;
    gmm.k = 3;
    gmm.seed = 100 + run;
    gmm.restarts = 1;
    auto single = FitGmm(v.v1, gmm);
    const double single_ll = single->log_likelihood;
    const double single_ari =
        AdjustedRandIndex(single->HardAssign(v.v1), v.truth).value();

    // co-EM across both views.
    CoEmOptions coem;
    coem.k = 3;
    coem.seed = 100 + run;
    auto r = RunCoEm(v.v1, v.v2, coem);
    const double coem_ari =
        AdjustedRandIndex(r->consensus.labels, v.truth).value();

    // Slide-104 claim: single-view EM *initialised from* co-EM's final
    // view-1 parameters reaches at least the plain single-view optimum.
    GmmModel warm = r->model_view1;
    for (int iter = 0; iter < 200; ++iter) {
      auto ll = EmStep(v.v1, 1e-6, &warm);
      if (!ll.ok()) break;
    }
    const double warm_ll = warm.TotalLogLikelihood(v.v1);
    if (warm_ll >= single_ll - 1e-6) ++coem_init_wins;
    if (coem_ari < single_ari - 1e-9) coem_never_worse = false;

    std::printf("%6d %8.1f | %10.3f %10.3f | %12.1f %14.1f %16.3f\n",
                100 + run, noise, single_ari, coem_ari, single_ll, warm_ll,
                r->agreement);
    runs->Row();
    runs->Cell(100 + run);
    runs->Cell(noise);
    runs->Cell(single_ari);
    runs->Cell(coem_ari);
    runs->Cell(single_ll);
    runs->Cell(warm_ll);
    runs->Cell(r->agreement);
  }
  std::printf("\nco-EM-initialised single-view EM matched or beat plain"
              " single-view EM in %d/%d runs\n",
              coem_init_wins, kRuns);
  h.Scalar("coem_init_wins", coem_init_wins);
  h.Scalar("runs", kRuns);
  h.Check("warm_start_reaches_single_view_likelihood",
          coem_init_wins == kRuns,
          "slide-104 claim: warm-started EM >= plain EM in every run");
  h.Check("coem_matches_or_beats_single_view", coem_never_worse,
          "consensus ARI must never fall below the single-view ARI");
  std::printf("expected shape: co-EM's consensus ARI >= single-view ARI"
              " (especially at high\nnoise), and warm-started EM confirms"
              " the slide-104 likelihood claim.\n");
  return h.Finish();
}
