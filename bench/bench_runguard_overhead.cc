// Measures what the run-guard layer (RunBudget bookkeeping + fault-site
// checks + ValidateMatrix at entry) adds to the k-means and GMM hot loops.
// Each pair runs the identical workload with no budget (guards on their
// fast path) and with a full budget (deadline + iteration cap + cancel
// token armed, none of which fire). The acceptance bar is < 2% overhead.
//
// The TracingArmed/TracingDisarmed pairs do the same for the observability
// layer: identical workloads with a ConvergenceTrace sink attached, once
// with the span tracer + metrics recording live and once with the tracer
// disabled (the production default). Same < 2% bar.
#include <benchmark/benchmark.h>

#include "cluster/gmm.h"
#include "cluster/kmeans.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "data/generators.h"

using namespace multiclust;

namespace {

Matrix BenchData() {
  auto ds = MakeBlobs({{{0, 0, 0, 0, 0, 0, 0, 0}, 1.0, 250},
                       {{8, 0, 8, 0, 8, 0, 8, 0}, 1.0, 250},
                       {{0, 8, 0, 8, 0, 8, 0, 8}, 1.0, 250}},
                      7);
  return ds->data();
}

KMeansOptions KmOptions() {
  KMeansOptions opts;
  opts.k = 3;
  opts.restarts = 3;
  opts.max_iters = 50;
  opts.seed = 7;
  return opts;
}

GmmOptions GmOptions() {
  GmmOptions opts;
  opts.k = 3;
  opts.restarts = 2;
  opts.max_iters = 30;
  opts.seed = 7;
  return opts;
}

// A budget wide enough that no limit ever fires: the run takes the exact
// same path as an unlimited one but pays every guard check.
RunBudget WideBudget(const CancelToken* cancel) {
  RunBudget budget;
  budget.deadline_ms = 3.6e6;  // one hour
  budget.max_iterations = 1u << 20;
  budget.cancel = cancel;
  return budget;
}

void BM_KMeansNoBudget(benchmark::State& state) {
  const Matrix data = BenchData();
  const KMeansOptions opts = KmOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunKMeans(data, opts));
  }
}
BENCHMARK(BM_KMeansNoBudget);

void BM_KMeansFullBudget(benchmark::State& state) {
  const Matrix data = BenchData();
  CancelToken cancel;
  KMeansOptions opts = KmOptions();
  opts.budget = WideBudget(&cancel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunKMeans(data, opts));
  }
}
BENCHMARK(BM_KMeansFullBudget);

void BM_GmmNoBudget(benchmark::State& state) {
  const Matrix data = BenchData();
  const GmmOptions opts = GmOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitGmm(data, opts));
  }
}
BENCHMARK(BM_GmmNoBudget);

void BM_GmmFullBudget(benchmark::State& state) {
  const Matrix data = BenchData();
  CancelToken cancel;
  GmmOptions opts = GmOptions();
  opts.budget = WideBudget(&cancel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitGmm(data, opts));
  }
}
BENCHMARK(BM_GmmFullBudget);

void BM_KMeansTracingDisarmed(benchmark::State& state) {
  const Matrix data = BenchData();
  KMeansOptions opts = KmOptions();
  RunDiagnostics diag;
  opts.diagnostics = &diag;
  trace::Disable();
  for (auto _ : state) {
    diag = RunDiagnostics();
    benchmark::DoNotOptimize(RunKMeans(data, opts));
  }
}
BENCHMARK(BM_KMeansTracingDisarmed);

void BM_KMeansTracingArmed(benchmark::State& state) {
  const Matrix data = BenchData();
  KMeansOptions opts = KmOptions();
  RunDiagnostics diag;
  opts.diagnostics = &diag;
  trace::Enable();
  for (auto _ : state) {
    // Reset inside the timed region: a real consumer drains the buffers
    // periodically, and without it the armed run would also be measuring
    // unbounded buffer growth.
    trace::Reset();
    metrics::Reset();
    diag = RunDiagnostics();
    benchmark::DoNotOptimize(RunKMeans(data, opts));
  }
  trace::Disable();
  trace::Reset();
}
BENCHMARK(BM_KMeansTracingArmed);

void BM_GmmTracingDisarmed(benchmark::State& state) {
  const Matrix data = BenchData();
  GmmOptions opts = GmOptions();
  RunDiagnostics diag;
  opts.diagnostics = &diag;
  trace::Disable();
  for (auto _ : state) {
    diag = RunDiagnostics();
    benchmark::DoNotOptimize(FitGmm(data, opts));
  }
}
BENCHMARK(BM_GmmTracingDisarmed);

void BM_GmmTracingArmed(benchmark::State& state) {
  const Matrix data = BenchData();
  GmmOptions opts = GmOptions();
  RunDiagnostics diag;
  opts.diagnostics = &diag;
  trace::Enable();
  for (auto _ : state) {
    trace::Reset();
    metrics::Reset();
    diag = RunDiagnostics();
    benchmark::DoNotOptimize(FitGmm(data, opts));
  }
  trace::Disable();
  trace::Reset();
}
BENCHMARK(BM_GmmTracingArmed);

}  // namespace

BENCHMARK_MAIN();
