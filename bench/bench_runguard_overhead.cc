// Measures what the run-guard layer (RunBudget bookkeeping + fault-site
// checks + ValidateMatrix at entry) adds to the k-means and GMM hot loops.
// Each pair runs the identical workload with no budget (guards on their
// fast path) and with a full budget (deadline + iteration cap + cancel
// token armed, none of which fire). The acceptance bar is < 2% overhead.
//
// The TracingArmed/TracingDisarmed pairs do the same for the observability
// layer: identical workloads with a ConvergenceTrace sink attached, once
// with the span tracer + metrics recording live and once with the tracer
// disabled (the production default). Same < 2% bar.
//
// The CheckpointArmed/CheckpointDisarmed pairs measure the checkpoint
// subsystem's hook cost: a Checkpointer attached via RunBudget::checkpoint
// with a policy whose triggers are all disabled, so every persistence point
// pays the restore probe + policy evaluation but no snapshot is ever
// written (writes are policy-paced I/O, not per-iteration overhead). The
// disarmed side is a null checkpoint pointer — one pointer test per
// iteration, the production default. Same < 2% bar.
//
// The TelemetryArmed/Disarmed pairs measure the live progress stream: an
// NdjsonProgressSink swallowing events into /dev/null versus no sink. The
// SamplerArmed/Disarmed pair measures the span sampler's tick thread
// against an identical tracer-armed run. Same < 2% bar (see
// EXPERIMENTS.md §T3).
//
// Harness flags (--json=PATH, --quick) are consumed before
// benchmark::Initialize; the overhead ratios land in the JSON document as
// timing scalars plus warn-severity checks against the 2% bar.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/gmm.h"
#include "cluster/kmeans.h"
#include "common/checkpoint.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "common/profile.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "data/generators.h"
#include "harness.h"

using namespace multiclust;

namespace {

Matrix BenchData() {
  auto ds = MakeBlobs({{{0, 0, 0, 0, 0, 0, 0, 0}, 1.0, 250},
                       {{8, 0, 8, 0, 8, 0, 8, 0}, 1.0, 250},
                       {{0, 8, 0, 8, 0, 8, 0, 8}, 1.0, 250}},
                      7);
  return ds->data();
}

KMeansOptions KmOptions() {
  KMeansOptions opts;
  opts.k = 3;
  opts.restarts = 3;
  opts.max_iters = 50;
  opts.seed = 7;
  return opts;
}

GmmOptions GmOptions() {
  GmmOptions opts;
  opts.k = 3;
  opts.restarts = 2;
  opts.max_iters = 30;
  opts.seed = 7;
  return opts;
}

// A budget wide enough that no limit ever fires: the run takes the exact
// same path as an unlimited one but pays every guard check.
RunBudget WideBudget(const CancelToken* cancel) {
  RunBudget budget;
  budget.deadline_ms = 3.6e6;  // one hour
  budget.max_iterations = 1u << 20;
  budget.cancel = cancel;
  return budget;
}

void BM_KMeansNoBudget(benchmark::State& state) {
  const Matrix data = BenchData();
  const KMeansOptions opts = KmOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunKMeans(data, opts));
  }
}
BENCHMARK(BM_KMeansNoBudget);

void BM_KMeansFullBudget(benchmark::State& state) {
  const Matrix data = BenchData();
  CancelToken cancel;
  KMeansOptions opts = KmOptions();
  opts.budget = WideBudget(&cancel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunKMeans(data, opts));
  }
}
BENCHMARK(BM_KMeansFullBudget);

void BM_GmmNoBudget(benchmark::State& state) {
  const Matrix data = BenchData();
  const GmmOptions opts = GmOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitGmm(data, opts));
  }
}
BENCHMARK(BM_GmmNoBudget);

void BM_GmmFullBudget(benchmark::State& state) {
  const Matrix data = BenchData();
  CancelToken cancel;
  GmmOptions opts = GmOptions();
  opts.budget = WideBudget(&cancel);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitGmm(data, opts));
  }
}
BENCHMARK(BM_GmmFullBudget);

void BM_KMeansTracingDisarmed(benchmark::State& state) {
  const Matrix data = BenchData();
  KMeansOptions opts = KmOptions();
  RunDiagnostics diag;
  opts.diagnostics = &diag;
  trace::Disable();
  for (auto _ : state) {
    diag = RunDiagnostics();
    benchmark::DoNotOptimize(RunKMeans(data, opts));
  }
}
BENCHMARK(BM_KMeansTracingDisarmed);

void BM_KMeansTracingArmed(benchmark::State& state) {
  const Matrix data = BenchData();
  KMeansOptions opts = KmOptions();
  RunDiagnostics diag;
  opts.diagnostics = &diag;
  trace::Enable();
  for (auto _ : state) {
    // Reset inside the timed region: a real consumer drains the buffers
    // periodically, and without it the armed run would also be measuring
    // unbounded buffer growth.
    trace::Reset();
    metrics::Reset();
    diag = RunDiagnostics();
    benchmark::DoNotOptimize(RunKMeans(data, opts));
  }
  trace::Disable();
  trace::Reset();
}
BENCHMARK(BM_KMeansTracingArmed);

void BM_GmmTracingDisarmed(benchmark::State& state) {
  const Matrix data = BenchData();
  GmmOptions opts = GmOptions();
  RunDiagnostics diag;
  opts.diagnostics = &diag;
  trace::Disable();
  for (auto _ : state) {
    diag = RunDiagnostics();
    benchmark::DoNotOptimize(FitGmm(data, opts));
  }
}
BENCHMARK(BM_GmmTracingDisarmed);

void BM_GmmTracingArmed(benchmark::State& state) {
  const Matrix data = BenchData();
  GmmOptions opts = GmOptions();
  RunDiagnostics diag;
  opts.diagnostics = &diag;
  trace::Enable();
  for (auto _ : state) {
    trace::Reset();
    metrics::Reset();
    diag = RunDiagnostics();
    benchmark::DoNotOptimize(FitGmm(data, opts));
  }
  trace::Disable();
  trace::Reset();
}
BENCHMARK(BM_GmmTracingArmed);

// Telemetry-plane pairs: identical tracer-armed workloads, once with no
// progress sink (the production default — ProgressEnabled() is one relaxed
// load per recorded iteration) and once with an NdjsonProgressSink
// swallowing every event into /dev/null, so each recorded iteration pays
// event construction, JSON serialization and a flushed write. Same < 2%
// bar.
void BM_KMeansTelemetryDisarmed(benchmark::State& state) {
  const Matrix data = BenchData();
  KMeansOptions opts = KmOptions();
  RunDiagnostics diag;
  opts.diagnostics = &diag;
  trace::Enable();
  for (auto _ : state) {
    trace::Reset();
    metrics::Reset();
    diag = RunDiagnostics();
    benchmark::DoNotOptimize(RunKMeans(data, opts));
  }
  trace::Disable();
  trace::Reset();
}
BENCHMARK(BM_KMeansTelemetryDisarmed);

void BM_KMeansTelemetryArmed(benchmark::State& state) {
  const Matrix data = BenchData();
  KMeansOptions opts = KmOptions();
  RunDiagnostics diag;
  opts.diagnostics = &diag;
  trace::Enable();
  telemetry::NdjsonProgressSink sink(std::fopen("/dev/null", "w"),
                                     /*take_ownership=*/true);
  telemetry::SetProgressSink(&sink);
  for (auto _ : state) {
    trace::Reset();
    metrics::Reset();
    diag = RunDiagnostics();
    benchmark::DoNotOptimize(RunKMeans(data, opts));
  }
  telemetry::SetProgressSink(nullptr);
  trace::Disable();
  trace::Reset();
}
BENCHMARK(BM_KMeansTelemetryArmed);

void BM_GmmTelemetryDisarmed(benchmark::State& state) {
  const Matrix data = BenchData();
  GmmOptions opts = GmOptions();
  RunDiagnostics diag;
  opts.diagnostics = &diag;
  trace::Enable();
  for (auto _ : state) {
    trace::Reset();
    metrics::Reset();
    diag = RunDiagnostics();
    benchmark::DoNotOptimize(FitGmm(data, opts));
  }
  trace::Disable();
  trace::Reset();
}
BENCHMARK(BM_GmmTelemetryDisarmed);

void BM_GmmTelemetryArmed(benchmark::State& state) {
  const Matrix data = BenchData();
  GmmOptions opts = GmOptions();
  RunDiagnostics diag;
  opts.diagnostics = &diag;
  trace::Enable();
  telemetry::NdjsonProgressSink sink(std::fopen("/dev/null", "w"),
                                     /*take_ownership=*/true);
  telemetry::SetProgressSink(&sink);
  for (auto _ : state) {
    trace::Reset();
    metrics::Reset();
    diag = RunDiagnostics();
    benchmark::DoNotOptimize(FitGmm(data, opts));
  }
  telemetry::SetProgressSink(nullptr);
  trace::Disable();
  trace::Reset();
}
BENCHMARK(BM_GmmTelemetryArmed);

// Sampler pair: tracer armed either way; the armed side additionally runs
// the span sampler at its default 2 ms tick, so the workload pays the
// span-stack bookkeeping contention plus the background thread's CPU share
// (significant on a single-core host — the bar stays warn-severity).
void BM_KMeansSamplerDisarmed(benchmark::State& state) {
  const Matrix data = BenchData();
  const KMeansOptions opts = KmOptions();
  trace::Enable();
  for (auto _ : state) {
    trace::Reset();
    benchmark::DoNotOptimize(RunKMeans(data, opts));
  }
  trace::Disable();
  trace::Reset();
}
BENCHMARK(BM_KMeansSamplerDisarmed);

void BM_KMeansSamplerArmed(benchmark::State& state) {
  const Matrix data = BenchData();
  const KMeansOptions opts = KmOptions();
  trace::Enable();
  const bool sampling = telemetry::StartSampler().ok();
  for (auto _ : state) {
    trace::Reset();
    benchmark::DoNotOptimize(RunKMeans(data, opts));
  }
  if (sampling) telemetry::StopSampler();
  telemetry::ResetSamples();
  trace::Disable();
  trace::Reset();
}
BENCHMARK(BM_KMeansSamplerArmed);

// Armed-but-silent snapshot channel: both cadence triggers disabled, so
// AtPersistencePoint evaluates the policy and returns without touching the
// filesystem. TryRestore at algorithm entry scans an empty scratch
// directory — part of the honest armed cost.
Checkpointer* SilentCheckpointer() {
  static Checkpointer* ck = [] {
    char tmpl[] = "/tmp/multiclust_bench_ckpt_XXXXXX";
    char* dir = mkdtemp(tmpl);
    CheckpointPolicy policy;
    policy.every_iterations = 0;
    policy.min_interval_ms = 0.0;
    return new Checkpointer(dir != nullptr ? dir : "/tmp", policy);
  }();
  return ck;
}

void BM_KMeansCheckpointDisarmed(benchmark::State& state) {
  const Matrix data = BenchData();
  const KMeansOptions opts = KmOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunKMeans(data, opts));
  }
}
BENCHMARK(BM_KMeansCheckpointDisarmed);

void BM_KMeansCheckpointArmed(benchmark::State& state) {
  const Matrix data = BenchData();
  KMeansOptions opts = KmOptions();
  opts.budget.checkpoint = SilentCheckpointer();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunKMeans(data, opts));
  }
}
BENCHMARK(BM_KMeansCheckpointArmed);

void BM_GmmCheckpointDisarmed(benchmark::State& state) {
  const Matrix data = BenchData();
  const GmmOptions opts = GmOptions();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitGmm(data, opts));
  }
}
BENCHMARK(BM_GmmCheckpointDisarmed);

void BM_GmmCheckpointArmed(benchmark::State& state) {
  const Matrix data = BenchData();
  GmmOptions opts = GmOptions();
  opts.budget.checkpoint = SilentCheckpointer();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitGmm(data, opts));
  }
}
BENCHMARK(BM_GmmCheckpointArmed);

// Armed-but-idle fault injector: a spec armed against a site that never
// matches, so every MC_FAULT_FIRES hook in the hot loop leaves the
// one-atomic-load fast path and takes the registry mutex, but nothing
// fires and the computed result is untouched. This is the worst case a
// chaos campaign imposes on iterations its schedule does not target.
void BM_KMeansFaultDisarmed(benchmark::State& state) {
  const Matrix data = BenchData();
  const KMeansOptions opts = KmOptions();
  fault::Reset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunKMeans(data, opts));
  }
}
BENCHMARK(BM_KMeansFaultDisarmed);

void BM_KMeansFaultArmedIdle(benchmark::State& state) {
  const Matrix data = BenchData();
  const KMeansOptions opts = KmOptions();
  fault::Reset();
  fault::Arm({"no-such-site", FaultKind::kInjectNaN, 0, 0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunKMeans(data, opts));
  }
  fault::Reset();
}
BENCHMARK(BM_KMeansFaultArmedIdle);

void BM_GmmFaultDisarmed(benchmark::State& state) {
  const Matrix data = BenchData();
  const GmmOptions opts = GmOptions();
  fault::Reset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitGmm(data, opts));
  }
}
BENCHMARK(BM_GmmFaultDisarmed);

void BM_GmmFaultArmedIdle(benchmark::State& state) {
  const Matrix data = BenchData();
  const GmmOptions opts = GmOptions();
  fault::Reset();
  fault::Arm({"no-such-site", FaultKind::kInjectNaN, 0, 0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitGmm(data, opts));
  }
  fault::Reset();
}
BENCHMARK(BM_GmmFaultArmedIdle);

double TimeUnitToMs(benchmark::TimeUnit unit) {
  switch (unit) {
    case benchmark::kNanosecond:
      return 1e-6;
    case benchmark::kMicrosecond:
      return 1e-3;
    case benchmark::kMillisecond:
      return 1.0;
    case benchmark::kSecond:
      return 1e3;
  }
  return 1e-6;
}

// ConsoleReporter that also records each run into the harness.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(bench::Harness* harness) : harness_(harness) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.report_big_o ||
          run.report_rms || run.error_occurred) {
        continue;
      }
      harness_->Timing(run.benchmark_name() + "_ms",
                       run.GetAdjustedRealTime() * TimeUnitToMs(run.time_unit));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::Harness* harness_;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_runguard_overhead",
                   "run-guard and tracing overhead on the hot loops");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  std::vector<char*> args(argv, argv + argc);
  std::string min_time = "--benchmark_min_time=0.01";
  if (h.quick()) args.push_back(min_time.data());
  args.push_back(nullptr);
  int bench_argc = static_cast<int>(args.size()) - 1;
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }

  CapturingReporter reporter(&h);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  // Overhead ratios from the captured pairs. Warn severity: the <2% bar is
  // an acceptance target on a quiet host, not a determinism guarantee.
  struct Pair {
    const char* metric;
    const char* base;
    const char* with;
  };
  const Pair pairs[] = {
      {"kmeans_budget_overhead_pct", "BM_KMeansNoBudget_ms",
       "BM_KMeansFullBudget_ms"},
      {"gmm_budget_overhead_pct", "BM_GmmNoBudget_ms", "BM_GmmFullBudget_ms"},
      {"kmeans_tracing_overhead_pct", "BM_KMeansTracingDisarmed_ms",
       "BM_KMeansTracingArmed_ms"},
      {"gmm_tracing_overhead_pct", "BM_GmmTracingDisarmed_ms",
       "BM_GmmTracingArmed_ms"},
      {"kmeans_telemetry_overhead_pct", "BM_KMeansTelemetryDisarmed_ms",
       "BM_KMeansTelemetryArmed_ms"},
      {"gmm_telemetry_overhead_pct", "BM_GmmTelemetryDisarmed_ms",
       "BM_GmmTelemetryArmed_ms"},
      {"kmeans_sampler_overhead_pct", "BM_KMeansSamplerDisarmed_ms",
       "BM_KMeansSamplerArmed_ms"},
      {"kmeans_checkpoint_overhead_pct", "BM_KMeansCheckpointDisarmed_ms",
       "BM_KMeansCheckpointArmed_ms"},
      {"gmm_checkpoint_overhead_pct", "BM_GmmCheckpointDisarmed_ms",
       "BM_GmmCheckpointArmed_ms"},
      {"kmeans_fault_idle_overhead_pct", "BM_KMeansFaultDisarmed_ms",
       "BM_KMeansFaultArmedIdle_ms"},
      {"gmm_fault_idle_overhead_pct", "BM_GmmFaultDisarmed_ms",
       "BM_GmmFaultArmedIdle_ms"},
  };
  for (const Pair& p : pairs) {
    const double base = h.ScalarValue(p.base, 0.0);
    const double with = h.ScalarValue(p.with, 0.0);
    if (base <= 0.0 || with <= 0.0) {
      h.Check(p.metric, false, "both runs of the pair must have completed");
      continue;
    }
    const double pct = 100.0 * (with - base) / base;
    std::printf("%s: %+.2f%%\n", p.metric, pct);
    bench::ValueOptions pct_opts;
    pct_opts.unit = "%";
    pct_opts.timing = true;  // derived from wall-clock: warn-only in diffs
    h.Scalar(p.metric, pct, pct_opts);
    h.WarnCheck(std::string(p.metric) + "_under_2pct", pct < 2.0,
                "guard/tracing overhead should stay under the 2% bar "
                "(host-dependent)");
  }
  return h.Finish();
}
