// A2 (ablation): the in-house Jacobi eigensolver behind spectral
// clustering. Sweeps the convergence tolerance and measures wall time and
// clustering quality on the two-rings benchmark — documenting that the
// library default (1e-12) buys accuracy at modest cost.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "cluster/kmeans.h"
#include "data/generators.h"
#include "harness.h"
#include "linalg/decomposition.h"
#include "metrics/partition_similarity.h"
#include "stats/hsic.h"

using namespace multiclust;

namespace {

// Spectral clustering with an explicit eigensolver tolerance (mirrors
// RunSpectral but exposes the knob under ablation).
Result<Clustering> SpectralWithTol(const Matrix& data, size_t k, double gamma,
                                   double tol, uint64_t seed) {
  const size_t n = data.rows();
  Matrix w = GaussianKernelMatrix(data, gamma);
  for (size_t i = 0; i < n; ++i) w.at(i, i) = 0.0;
  std::vector<double> inv_sqrt_deg(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double deg = 0.0;
    for (size_t j = 0; j < n; ++j) deg += w.at(i, j);
    inv_sqrt_deg[i] = deg > 1e-12 ? 1.0 / std::sqrt(deg) : 0.0;
  }
  Matrix norm(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      norm.at(i, j) = inv_sqrt_deg[i] * w.at(i, j) * inv_sqrt_deg[j];
    }
  }
  MC_ASSIGN_OR_RETURN(SymmetricEigen eig, EigenSymmetric(norm, tol));
  Matrix embed(n, k);
  for (size_t i = 0; i < n; ++i) {
    double norm_sq = 0.0;
    for (size_t c = 0; c < k; ++c) {
      embed.at(i, c) = eig.vectors.at(i, c);
      norm_sq += embed.at(i, c) * embed.at(i, c);
    }
    if (norm_sq > 1e-24) {
      const double inv = 1.0 / std::sqrt(norm_sq);
      for (size_t c = 0; c < k; ++c) embed.at(i, c) *= inv;
    }
  }
  KMeansOptions km;
  km.k = k;
  km.restarts = 5;
  km.seed = seed;
  return RunKMeans(embed, km);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_spectral_ablation",
                   "A2: Jacobi eigensolver tolerance vs spectral quality");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  auto ds = MakeTwoRings(h.quick() ? 80 : 100, 1.5, 6.0, 0.08, 111);
  const auto truth = ds->GroundTruth("rings").value();

  std::printf("A2: Jacobi eigensolver tolerance vs spectral quality\n\n");
  std::printf("%10s %12s %10s\n", "tol", "time(ms)", "ARI");
  bench::Series* ari_series = h.AddSeries(
      "ari_vs_tol", "-log10(tol)", "ARI",
      bench::ValueOptions::Tolerance(1e-6));
  bench::Series* time_series = h.AddSeries(
      "time_vs_tol", "-log10(tol)", "ms", bench::ValueOptions::Timing());
  bool tight_exact = true;
  double loose_ari = 1.0;
  const std::vector<double> tols =
      h.quick() ? std::vector<double>{0.5, 1e-2, 1e-12}
                : std::vector<double>{0.5, 1e-1, 1e-2, 1e-4, 1e-6, 1e-9,
                                      1e-12};
  for (double tol : tols) {
    const auto t0 = std::chrono::steady_clock::now();
    auto c = SpectralWithTol(ds->data(), 2, 2.0, tol, 111);
    const auto t1 = std::chrono::steady_clock::now();
    if (!c.ok()) continue;
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double ari = AdjustedRandIndex(c->labels, truth).value();
    std::printf("%10.0e %12.1f %10.3f\n", tol, ms, ari);
    ari_series->Add(-std::log10(tol), ari);
    time_series->Add(-std::log10(tol), ms);
    if (tol <= 1e-2 && ari < 0.999) tight_exact = false;
    if (tol >= 0.5) loose_ari = ari;
  }
  h.Check("loose_tolerance_breaks_embedding", loose_ari < 0.9,
          "tol=0.5 should terminate the sweeps before the rings separate");
  h.Check("tight_tolerance_exact", tight_exact,
          "every tol <= 1e-2 must separate the rings exactly");
  std::printf("\nexpected shape: extremely loose tolerances terminate the"
              " Jacobi sweeps before\nthe embedding separates the rings;"
              " once the sweeps run (<= ~1e-2 here) the\nresult is exact"
              " and tightening further only adds modest cost — the 1e-12\n"
              "library default buys determinism at little expense.\n");
  return h.Finish();
}
