// E6 (tutorial slides 57-60): the orthogonal-projection iteration of Cui et
// al. 2007 extracts one view per round and stops when the residual space is
// exhausted — determining the number of clusterings automatically.
#include <cstdio>

#include "cluster/kmeans.h"
#include "data/generators.h"
#include "harness.h"
#include "metrics/multi_solution.h"
#include "metrics/partition_similarity.h"
#include "orthogonal/ortho_projection.h"

using namespace multiclust;

int main(int argc, char** argv) {
  bench::Harness h("bench_ortho_views",
                   "E6: orthogonal projection iteration");
  if (!h.ParseArgs(&argc, argv)) return h.ExitCode();

  // Three independent planted views in 6 dimensions, with staggered
  // strengths: each clustering round locks onto the strongest remaining
  // factor, which the projection then removes (slide 57).
  std::vector<ViewSpec> views(3);
  views[0] = {2, 2, 26.0, 0.7, "v0"};
  views[1] = {2, 2, 16.0, 0.7, "v1"};
  views[2] = {2, 2, 9.0, 0.7, "v2"};
  auto ds = MakeMultiView(h.quick() ? 180 : 240, views, 0, 9);
  std::vector<std::vector<int>> truths = {ds->GroundTruth("v0").value(),
                                          ds->GroundTruth("v1").value(),
                                          ds->GroundTruth("v2").value()};

  std::printf("E6: orthogonal projection iteration (slides 57-60)\n");
  std::printf("data: 6 dims, 3 planted views (strong, medium, weak)\n\n");

  KMeansOptions km;
  km.k = 2;
  km.restarts = 8;
  km.seed = 9;
  KMeansClusterer clusterer(km);
  OrthoProjectionOptions opts;
  opts.max_views = 5;
  opts.min_residual_variance = 0.05;
  auto r = RunOrthoProjection(ds->data(), &clusterer, opts);
  if (!r.ok()) return 1;

  std::printf("%6s %18s %18s %18s %12s\n", "iter", "NMI(v0)", "NMI(v1)",
              "NMI(v2)", "residualVar");
  bench::Series* residual = h.AddSeries(
      "residual_variance", "iteration", "residual variance",
      bench::ValueOptions::Tolerance(1e-6));
  bench::Table* iters = h.AddTable(
      "per_iteration_nmi", {"iteration", "nmi_v0", "nmi_v1", "nmi_v2"},
      bench::ValueOptions::Tolerance(1e-6));
  bool residual_monotone = true;
  for (size_t i = 0; i < r->views.size(); ++i) {
    const auto& labels = r->views[i].clustering.labels;
    const double n0 = NormalizedMutualInformation(labels, truths[0]).value();
    const double n1 = NormalizedMutualInformation(labels, truths[1]).value();
    const double n2 = NormalizedMutualInformation(labels, truths[2]).value();
    std::printf("%6zu %18.3f %18.3f %18.3f %12.4f\n", i, n0, n1, n2,
                r->views[i].residual_variance);
    residual->Add(static_cast<double>(i), r->views[i].residual_variance);
    iters->Row();
    iters->Cell(static_cast<double>(i));
    iters->Cell(n0);
    iters->Cell(n1);
    iters->Cell(n2);
    if (i > 0 && r->views[i].residual_variance >
                     r->views[i - 1].residual_variance + 1e-9) {
      residual_monotone = false;
    }
  }
  auto match = MatchSolutionsToTruths(truths, r->solutions.Labels());
  std::printf("\nviews extracted: %zu; matched recovery of the 3 planted"
              " views: %.3f\n",
              r->views.size(), match->mean_recovery);
  h.Scalar("views_extracted", static_cast<double>(r->views.size()));
  h.Scalar("mean_recovery", match->mean_recovery,
           bench::ValueOptions::Tolerance(1e-6));
  h.Check("one_view_per_round_all_recovered",
          r->views.size() == truths.size() && match->mean_recovery > 0.95,
          "iteration should stop after exactly 3 views, recovering each");
  h.Check("residual_variance_decreases", residual_monotone,
          "removing an explanatory subspace must not add variance back");
  std::printf("expected shape: each iteration aligns with a different"
              " planted view, the\nresidual variance drops monotonically,"
              " and iteration stops on its own.\n");
  return h.Finish();
}
